#pragma once
// sim::Scenario -- one run's environment: who can call whom (Topology) and
// who fails when (FaultSchedule), plus the global-clock offset that lets
// multi-phase pipelines thread a single fault schedule through per-phase
// Network instances.  Kept separate from engine.hpp so protocol headers
// can name Scenario in their signatures without the Network template.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

using NodeId = std::uint32_t;

/// death round of a node that never crashes.
inline constexpr std::uint32_t kNeverCrashes = static_cast<std::uint32_t>(-1);

/// One run's environment.  The implicit FaultSchedule conversion keeps the
/// historical call shape `run_xxx(n, ..., faults, config)` working: a plain
/// fault model is the scenario with the complete topology and a zero clock
/// offset.
struct Scenario {
  Topology topology{};
  FaultSchedule faults{};
  /// Global round at which this network's clock starts (multi-phase
  /// pipelines bump it by each phase's executed rounds so one churn
  /// schedule spans the whole execution).
  std::uint32_t start_round = 0;

  Scenario() = default;
  Scenario(FaultSchedule f) : faults(std::move(f)) {}  // NOLINT(google-explicit-constructor)
  Scenario(Topology t, FaultSchedule f) : topology(std::move(t)), faults(std::move(f)) {}

  /// Copy of this scenario with the clock advanced to global round `r`.
  [[nodiscard]] Scenario at_round(std::uint32_t r) const {
    Scenario s = *this;
    s.start_round = r;
    return s;
  }
};

/// The full death timeline every Network sharing `rngs` draws:
/// death_round[v] == 0 iff v is down from the start, r > 0 iff v crashes at
/// the start of global round r, kNeverCrashes iff v survives the schedule.
/// A pure function of the root seed (purpose-independent) so that all
/// phases of a multi-phase pipeline -- and result adapters that need
/// survivor ground truth for algorithms whose outcome struct carries no
/// alive mask -- agree on the same sets.  The initial-crash draw sequence
/// is identical to the historical crash_mask.
[[nodiscard]] inline std::vector<std::uint32_t> fault_timeline(
    std::uint32_t n, const RngFactory& rngs, const FaultSchedule& faults) {
  std::vector<std::uint32_t> death(n, kNeverCrashes);
  if (faults.crash_fraction <= 0.0 && faults.churn.empty()) return death;
  Rng crash_rng = rngs.engine_stream(0xdeadULL);
  std::uint32_t alive = n;
  if (faults.crash_fraction > 0.0) {
    const auto target =
        static_cast<std::uint32_t>(faults.crash_fraction * static_cast<double>(n));
    std::uint32_t count = 0;
    while (count < target && count < n - 1) {  // keep >= 1 node alive
      const auto v = static_cast<NodeId>(crash_rng.next_below(n));
      if (death[v] == kNeverCrashes) {
        death[v] = 0;
        ++count;
      }
    }
    alive -= count;
  }
  std::vector<CrashEvent> events = faults.churn;
  std::stable_sort(events.begin(), events.end(),
                   [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
  for (const CrashEvent& e : events) {
    if (e.fraction <= 0.0) continue;
    const std::uint32_t round = std::max<std::uint32_t>(e.round, 1);
    const auto target =
        static_cast<std::uint32_t>(e.fraction * static_cast<double>(alive));
    std::uint32_t count = 0;
    while (count < target && alive > 1) {
      const auto v = static_cast<NodeId>(crash_rng.next_below(n));
      if (death[v] == kNeverCrashes) {
        death[v] = round;
        ++count;
        --alive;
      }
    }
  }
  return death;
}

/// The start-time crash set alone (historical helper): crashed[v] == true
/// iff node v is down from round 0.
[[nodiscard]] inline std::vector<bool> crash_mask(std::uint32_t n, const RngFactory& rngs,
                                                  double crash_fraction) {
  std::vector<bool> crashed(n, false);
  if (crash_fraction <= 0.0) return crashed;
  Rng crash_rng = rngs.engine_stream(0xdeadULL);
  const auto target = static_cast<std::uint32_t>(crash_fraction * static_cast<double>(n));
  std::uint32_t count = 0;
  while (count < target && count < n - 1) {  // keep >= 1 node alive
    const auto v = static_cast<NodeId>(crash_rng.next_below(n));
    if (!crashed[v]) {
      crashed[v] = true;
      ++count;
    }
  }
  return crashed;
}

/// Final survivors of the schedule as seen by a run that executed
/// `rounds_executed` global rounds: participating[v] == true iff v was
/// still alive when the run ended (a churn event scheduled beyond the
/// run's horizon never fired, so its would-be victims did participate).
/// The default horizon covers the whole schedule.  This is the
/// RunReport.participating ground truth for algorithms that do not track
/// crashes themselves.
[[nodiscard]] inline std::vector<bool> survivor_mask(
    std::uint32_t n, const RngFactory& rngs, const FaultSchedule& faults,
    std::uint32_t rounds_executed = kNeverCrashes) {
  const auto death = fault_timeline(n, rngs, faults);
  std::vector<bool> participating(n, true);
  for (std::uint32_t v = 0; v < n; ++v)
    participating[v] = death[v] >= rounds_executed;
  return participating;
}

}  // namespace drrg::sim
