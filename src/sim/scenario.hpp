#pragma once
// sim::Scenario -- one run's environment: who can call whom (Topology) and
// who fails when (FaultSchedule), plus the global-clock offset that lets
// multi-phase pipelines thread a single fault schedule through per-phase
// Network instances.  Kept separate from engine.hpp so protocol headers
// can name Scenario in their signatures without the Network template.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

using NodeId = std::uint32_t;

/// death round of a node that never crashes.
inline constexpr std::uint32_t kNeverCrashes = static_cast<std::uint32_t>(-1);

// Large-n width guards: the fault timelines index nodes with 32-bit ids
// and the two "never" sentinels must stay numerically interchangeable
// (timeline code compares death rounds against both).
static_assert(sizeof(NodeId) == 4, "fault timelines assume 32-bit node ids");
static_assert(kNeverCrashes == kNeverRound,
              "kNeverCrashes and kNeverRound must coincide");

/// One run's environment.  The implicit FaultSchedule conversion keeps the
/// historical call shape `run_xxx(n, ..., faults, config)` working: a plain
/// fault model is the scenario with the complete topology and a zero clock
/// offset.
struct Scenario {
  Topology topology{};
  FaultSchedule faults{};
  /// Global round at which this network's clock starts (multi-phase
  /// pipelines bump it by each phase's executed rounds so one churn
  /// schedule spans the whole execution).
  std::uint32_t start_round = 0;
  /// Worker budget for deterministic intra-round sharding (engine.hpp):
  /// 1 keeps the historical serial scan, 0 means one worker per hardware
  /// core (the RunSpec::intra_threads convention).  Sharding is
  /// observationally invisible -- reports are byte-identical at any value
  /// -- so this is a pure throughput knob for protocols that opt in
  /// (kShardable).
  std::uint32_t intra_threads = 1;

  Scenario() = default;
  Scenario(FaultSchedule f) : faults(std::move(f)) {}  // NOLINT(google-explicit-constructor)
  Scenario(Topology t, FaultSchedule f) : topology(std::move(t)), faults(std::move(f)) {}

  /// Copy of this scenario with the clock advanced to global round `r`.
  [[nodiscard]] Scenario at_round(std::uint32_t r) const {
    Scenario s = *this;
    s.start_round = r;
    return s;
  }
};

/// birth round of a node present from the start.
inline constexpr std::uint32_t kBornAtStart = 0;

/// Death and birth timelines together: death[v] as in fault_timeline;
/// birth[v] == 0 iff v is present from round 0, r > 0 iff v joins at the
/// start of global round r (absent -- effectively crashed -- before it).
struct FaultTimeline {
  std::vector<std::uint32_t> death;
  std::vector<std::uint32_t> birth;
};

namespace detail {
/// Rejection-sampling draw cap.  Uniform draws over n with k free slots
/// succeed with probability k/n, so for every schedule the validation
/// layer admits (fractions in [0, 1], cumulative targets capped by the
/// >=1-survivor guards) the expected draw count is O(n log n) and a run
/// exhausting 32n + 1024 draws has vanishing probability -- none of the
/// pinned seeds comes near it.  When a pathological schedule does exhaust
/// the cap, the remaining quota is filled by a deterministic ascending id
/// scan instead of spinning: termination is unconditional, and every
/// schedule that completes within the cap keeps its historical draw
/// sequence bit-identically.
[[nodiscard]] constexpr std::uint64_t draw_cap(std::uint32_t n) noexcept {
  return 32ULL * n + 1024ULL;
}
}  // namespace detail

/// The full death+birth timeline every Network sharing `rngs` draws.
/// A pure function of the root seed (purpose-independent) so that all
/// phases of a multi-phase pipeline -- and result adapters that need
/// survivor ground truth for algorithms whose outcome struct carries no
/// alive mask -- agree on the same sets.
///
/// Draw-order contract (what keeps historical schedules bit-identical):
/// join births come first, from their own engine stream (0xb117), so a
/// schedule without joins draws nothing there; then initial crashes and
/// churn from the historical crash stream (0xdead), with the original
/// draw sequence -- the birth-skip condition only fires for deferred ids,
/// of which there are none without joins.  Block events select
/// arithmetically (no draws).  Random crash victims are drawn from the
/// round-0 cohort only; block outages may also take out an already-joined
/// node.
[[nodiscard]] inline FaultTimeline full_timeline(std::uint32_t n, const RngFactory& rngs,
                                                 const FaultSchedule& faults) {
  FaultTimeline t;
  t.death.assign(n, kNeverCrashes);
  t.birth.assign(n, kBornAtStart);
  if (faults.crash_fraction <= 0.0 && faults.churn.empty() && faults.blocks.empty() &&
      faults.joins.empty()) {
    return t;
  }
  std::vector<std::uint32_t>& death = t.death;
  std::vector<std::uint32_t>& birth = t.birth;
  const std::uint64_t cap = detail::draw_cap(n);

  // 1. Births (join stream; no-op without join events).
  std::uint32_t deferred = 0;
  if (!faults.joins.empty()) {
    Rng join_rng = rngs.engine_stream(0xb117ULL);
    std::vector<JoinEvent> joins = faults.joins;
    std::stable_sort(joins.begin(), joins.end(),
                     [](const JoinEvent& a, const JoinEvent& b) { return a.round < b.round; });
    for (const JoinEvent& e : joins) {
      if (e.fraction <= 0.0) continue;
      const std::uint32_t round = std::max<std::uint32_t>(e.round, 1);
      const auto target =
          static_cast<std::uint32_t>(e.fraction * static_cast<double>(n));
      std::uint32_t count = 0;
      std::uint64_t draws = 0;
      while (count < target && deferred < n - 1 && draws < cap) {
        ++draws;
        const auto v = static_cast<NodeId>(join_rng.next_below(n));
        if (birth[v] == kBornAtStart) {
          birth[v] = round;
          ++count;
          ++deferred;
        }
      }
      for (NodeId v = 0; count < target && deferred < n - 1 && v < n; ++v) {
        if (birth[v] == kBornAtStart) {
          birth[v] = round;
          ++count;
          ++deferred;
        }
      }
    }
  }

  // 2. Initial crashes (historical crash stream and sequence; the birth
  //    skip only rejects deferred ids).
  Rng crash_rng = rngs.engine_stream(0xdeadULL);
  std::uint32_t alive = n - deferred;
  if (faults.crash_fraction > 0.0) {
    const auto target =
        static_cast<std::uint32_t>(faults.crash_fraction * static_cast<double>(n));
    std::uint32_t count = 0;
    std::uint64_t draws = 0;
    while (count < target && count < n - 1 && alive > 1 && draws < cap) {
      ++draws;
      const auto v = static_cast<NodeId>(crash_rng.next_below(n));
      if (death[v] == kNeverCrashes && birth[v] == kBornAtStart) {
        death[v] = 0;
        ++count;
        --alive;
      }
    }
    for (NodeId v = 0; count < target && count < n - 1 && alive > 1 && v < n; ++v) {
      if (death[v] == kNeverCrashes && birth[v] == kBornAtStart) {
        death[v] = 0;
        ++count;
        --alive;
      }
    }
  }

  // 3. Scheduled events in round order.  Joins bump the alive count at
  //    their round (so later churn fractions see arrivals); churn draws
  //    random victims; blocks kill their ranges arithmetically.  At equal
  //    rounds: joins, then churn, then blocks -- and with no blocks/joins
  //    the churn walk is the historical one.
  std::vector<CrashEvent> events = faults.churn;
  std::stable_sort(events.begin(), events.end(),
                   [](const CrashEvent& a, const CrashEvent& b) { return a.round < b.round; });
  std::vector<BlockCrashEvent> blocks = faults.blocks;
  std::stable_sort(blocks.begin(), blocks.end(),
                   [](const BlockCrashEvent& a, const BlockCrashEvent& b) {
                     return a.round < b.round;
                   });
  std::vector<std::pair<std::uint32_t, std::uint32_t>> join_counts;  // (round, count)
  for (NodeId v = 0; v < n; ++v) {
    if (birth[v] != kBornAtStart) join_counts.push_back({birth[v], 1});
  }
  std::sort(join_counts.begin(), join_counts.end());
  std::size_t next_join = 0, next_block = 0;
  auto advance_to = [&](std::uint32_t round) {
    while (next_join < join_counts.size() && join_counts[next_join].first <= round) {
      alive += join_counts[next_join].second;
      ++next_join;
    }
  };
  auto apply_blocks_through = [&](std::uint32_t round) {
    while (next_block < blocks.size() && blocks[next_block].round <= round) {
      const BlockCrashEvent& b = blocks[next_block];
      advance_to(b.round);
      for (NodeId v = b.lo; v < b.hi && v < n; ++v) {
        if (alive <= 1) break;  // never take out the last node
        if (b.covers(v) && death[v] == kNeverCrashes && birth[v] <= b.round) {
          death[v] = b.round;
          --alive;
        }
      }
      ++next_block;
    }
  };
  for (const CrashEvent& e : events) {
    if (e.fraction <= 0.0) continue;
    const std::uint32_t round = std::max<std::uint32_t>(e.round, 1);
    advance_to(round);
    apply_blocks_through(round == 0 ? 0 : round - 1);
    const auto target =
        static_cast<std::uint32_t>(e.fraction * static_cast<double>(alive));
    std::uint32_t count = 0;
    std::uint64_t draws = 0;
    while (count < target && alive > 1 && draws < cap) {
      ++draws;
      const auto v = static_cast<NodeId>(crash_rng.next_below(n));
      if (death[v] == kNeverCrashes && birth[v] == kBornAtStart) {
        death[v] = round;
        ++count;
        --alive;
      }
    }
    for (NodeId v = 0; count < target && alive > 1 && v < n; ++v) {
      if (death[v] == kNeverCrashes && birth[v] == kBornAtStart) {
        death[v] = round;
        ++count;
        --alive;
      }
    }
  }
  apply_blocks_through(kNeverRound - 1);
  return t;
}

/// The death timeline alone (historical shape): death_round[v] == 0 iff v
/// is down from the start, r > 0 iff v crashes at the start of global
/// round r, kNeverCrashes iff v survives the schedule.  The initial-crash
/// draw sequence is identical to the historical crash_mask.
[[nodiscard]] inline std::vector<std::uint32_t> fault_timeline(
    std::uint32_t n, const RngFactory& rngs, const FaultSchedule& faults) {
  return full_timeline(n, rngs, faults).death;
}

/// The start-time crash set alone (historical helper): crashed[v] == true
/// iff node v is down from round 0.
[[nodiscard]] inline std::vector<bool> crash_mask(std::uint32_t n, const RngFactory& rngs,
                                                  double crash_fraction) {
  std::vector<bool> crashed(n, false);
  if (crash_fraction <= 0.0) return crashed;
  Rng crash_rng = rngs.engine_stream(0xdeadULL);
  const auto target = static_cast<std::uint32_t>(crash_fraction * static_cast<double>(n));
  std::uint32_t count = 0;
  while (count < target && count < n - 1) {  // keep >= 1 node alive
    const auto v = static_cast<NodeId>(crash_rng.next_below(n));
    if (!crashed[v]) {
      crashed[v] = true;
      ++count;
    }
  }
  return crashed;
}

/// Final survivors of the schedule as seen by a run that executed
/// `rounds_executed` global rounds: participating[v] == true iff v was
/// still alive when the run ended (a churn event scheduled beyond the
/// run's horizon never fired, so its would-be victims did participate)
/// AND v had joined by then (a joiner whose birth round lies beyond the
/// horizon never arrived).  The default horizon covers the whole
/// schedule.  This is the RunReport.participating ground truth for
/// algorithms that do not track crashes themselves.
[[nodiscard]] inline std::vector<bool> survivor_mask(
    std::uint32_t n, const RngFactory& rngs, const FaultSchedule& faults,
    std::uint32_t rounds_executed = kNeverCrashes) {
  const FaultTimeline t = full_timeline(n, rngs, faults);
  std::vector<bool> participating(n, true);
  for (std::uint32_t v = 0; v < n; ++v)
    participating[v] = t.death[v] >= rounds_executed && t.birth[v] < rounds_executed;
  return participating;
}

/// The round-0 cohort that survived: like survivor_mask but excluding
/// every late joiner regardless of birth round.  Tree-building pipelines
/// (DRR/convergecast) fix their membership -- and their ground truth --
/// in Phase I; a node arriving later can carry routed traffic but holds
/// no input value, so it is not part of the aggregate.
[[nodiscard]] inline std::vector<bool> founder_mask(
    std::uint32_t n, const RngFactory& rngs, const FaultSchedule& faults,
    std::uint32_t rounds_executed = kNeverCrashes) {
  const FaultTimeline t = full_timeline(n, rngs, faults);
  std::vector<bool> participating(n, true);
  for (std::uint32_t v = 0; v < n; ++v)
    participating[v] = t.death[v] >= rounds_executed && t.birth[v] == kBornAtStart;
  return participating;
}

}  // namespace drrg::sim
