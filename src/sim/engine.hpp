#pragma once
// Synchronous random-phone-call network simulator (the model of §2).
//
// Time advances in discrete rounds.  In each round every live node gets an
// on_round() upcall in which it may *call* other nodes by sending messages;
// a message sent in round t is delivered at the delivery step of round t
// (the call happens within the round).  A recipient may reply() on the
// established call; replies are delivered in the same round and are
// reliable, while call-initiating send()s are lost independently with
// probability FaultModel::loss_prob.  Messages emitted *during* delivery
// (forwarding) are queued for the next round: each forwarding hop costs one
// round, exactly the "at most two hops of G per edge of G~" accounting the
// paper uses for Phase III.
//
// Protocols are plain structs; the engine discovers optional hooks with
// C++20 `requires`, so a protocol only implements what it needs:
//
//   void on_round(Network<Msg>&, NodeId)                      -- initiate calls
//   void on_message(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_reply(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_round_end(Network<Msg>&, NodeId)                  -- detect lost calls
//   bool done(const Network<Msg>&)                            -- early termination
//
// Determinism: all protocol randomness comes from per-node streams and all
// engine randomness (loss, crashes) from separate engine streams, both
// derived from one root seed; deliveries are processed in send order.

#include <cassert>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// The crash set every Network sharing `rngs` draws: crashed[v] == true iff
/// node v is down from the start.  A pure function of the root seed
/// (purpose-independent) so that all phases of a multi-phase pipeline --
/// and result adapters that need survivor ground truth for algorithms
/// whose outcome struct carries no alive mask -- agree on the same set.
[[nodiscard]] inline std::vector<bool> crash_mask(std::uint32_t n, const RngFactory& rngs,
                                                  double crash_fraction) {
  std::vector<bool> crashed(n, false);
  if (crash_fraction <= 0.0) return crashed;
  Rng crash_rng = rngs.engine_stream(0xdeadULL);
  const auto target = static_cast<std::uint32_t>(crash_fraction * static_cast<double>(n));
  std::uint32_t count = 0;
  while (count < target && count < n - 1) {  // keep >= 1 node alive
    const auto v = static_cast<NodeId>(crash_rng.next_below(n));
    if (!crashed[v]) {
      crashed[v] = true;
      ++count;
    }
  }
  return crashed;
}

template <class Msg>
class Network {
 public:
  /// `purpose` namespaces the per-node RNG streams so that consecutive
  /// protocol phases sharing one RngFactory draw independent randomness.
  Network(std::uint32_t n, const RngFactory& rngs, FaultModel faults = {},
          std::uint64_t purpose = 0)
      : n_(n),
        faults_(faults),
        loss_rng_(rngs.engine_stream(derive_seed(purpose, 0x105eULL))),
        crashed_(crash_mask(n, rngs, faults.crash_fraction)) {
    node_rngs_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) node_rngs_.push_back(rngs.node_stream(i, purpose));
    alive_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
      if (!crashed_[i]) alive_.push_back(i);
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] bool alive(NodeId v) const noexcept { return !crashed_[v]; }
  [[nodiscard]] const std::vector<NodeId>& alive_nodes() const noexcept { return alive_; }
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const FaultModel& faults() const noexcept { return faults_; }

  /// Per-node private randomness stream.
  [[nodiscard]] Rng& node_rng(NodeId v) noexcept { return node_rngs_[v]; }

  /// Samples a node independently and uniformly at random from all of V
  /// (the random phone call primitive; crashed nodes can be sampled -- a
  /// call to a crashed node is simply lost).
  [[nodiscard]] NodeId sample_uniform(NodeId caller) noexcept {
    return static_cast<NodeId>(node_rngs_[caller].next_below(n_));
  }

  /// Initiates a call: delivered this round at the delivery step, lost with
  /// probability loss_prob.  `bits` is the payload size for the
  /// O(log n + log s) message-size accounting.
  void send(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(dst < n_);
    counters_.sent += 1;
    counters_.bits += bits;
    outbox_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Replies on an established call (only valid inside on_message).
  /// Reliable and delivered in the same round's reply step.
  void reply(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(in_delivery_ && "reply() is only valid while handling a delivery");
    counters_.sent += 1;
    counters_.bits += bits;
    replies_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Runs the protocol for at most max_rounds rounds; returns the number of
  /// rounds executed (== max_rounds unless proto.done() fired earlier).
  template <class P>
  std::uint32_t run(P& proto, std::uint32_t max_rounds) {
    std::uint32_t executed = 0;
    for (std::uint32_t r = 0; r < max_rounds; ++r) {
      step(proto);
      ++executed;
      if constexpr (requires { { proto.done(*this) } -> std::convertible_to<bool>; }) {
        if (proto.done(*this)) break;
      }
    }
    return executed;
  }

  /// Executes a single synchronous round (exposed for tests and for
  /// pipelines that interleave protocols).
  template <class P>
  void step(P& proto) {
    ++counters_.rounds;
    for (NodeId v : alive_) {
      if constexpr (requires { proto.on_round(*this, v); }) proto.on_round(*this, v);
    }
    deliver_queue(proto, outbox_, /*lossy=*/true, /*as_reply=*/false);
    // Replies generated while delivering; drains until quiet so that a
    // reply chain within one established call completes this round.
    while (!replies_.empty()) {
      deliver_queue(proto, replies_, /*lossy=*/false, /*as_reply=*/true);
    }
    for (NodeId v : alive_) {
      if constexpr (requires { proto.on_round_end(*this, v); }) proto.on_round_end(*this, v);
    }
    ++round_;
  }

 private:
  struct Envelope {
    NodeId src;
    NodeId dst;
    Msg msg;
  };

  template <class P>
  void deliver_queue(P& proto, std::vector<Envelope>& queue, bool lossy, bool as_reply) {
    std::vector<Envelope> batch;
    batch.swap(queue);  // sends made during delivery land in the next batch
    in_delivery_ = true;
    for (auto& e : batch) {
      if (crashed_[e.dst] || (lossy && loss_rng_.next_bernoulli(faults_.loss_prob))) {
        ++counters_.lost;
        continue;
      }
      ++counters_.delivered;
      if (as_reply) {
        if constexpr (requires { proto.on_reply(*this, e.src, e.dst, e.msg); }) {
          proto.on_reply(*this, e.src, e.dst, e.msg);
        } else if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      } else {
        if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      }
    }
    in_delivery_ = false;
  }

  std::uint32_t n_;
  FaultModel faults_;
  Rng loss_rng_;
  std::vector<bool> crashed_;
  std::vector<NodeId> alive_;
  std::vector<Rng> node_rngs_;
  std::vector<Envelope> outbox_;
  std::vector<Envelope> replies_;
  Counters counters_{};
  std::uint32_t round_ = 0;
  bool in_delivery_ = false;
};

}  // namespace drrg::sim
