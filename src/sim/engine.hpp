#pragma once
// Synchronous random-phone-call network simulator (the model of §2),
// generalised into a scenario engine: the communication substrate
// (sim::Topology) and the fault model (sim::FaultSchedule) are first-class,
// swappable components bundled into a sim::Scenario.
//
// Network<Msg> is the lockstep implementation of the net::Transport
// seam (src/net/transport.hpp): the surface protocols rely on --
// size/alive/round, node_rng, sample_peer, send/reply, counters,
// scenario -- is the concept's contract, statically asserted there.
// The multi-process UDP runtime (src/net/) is the other implementation
// of that contract; this engine stays byte-identical to the pre-seam
// behavior (pinned by the FNV-1a sweep checksums in test_determinism
// and the engine-sweep sha256 hashes in BENCH_engine.json).
//
// Time advances in discrete rounds.  In each round every live node gets an
// on_round() upcall in which it may *call* other nodes by sending messages;
// a message sent in round t is delivered at the delivery step of round t
// (the call happens within the round).  A recipient may reply() on the
// established call; replies are delivered in the same round and are
// reliable, while call-initiating send()s are lost independently with
// probability FaultSchedule::loss_prob.  Messages emitted *during* delivery
// (forwarding) are queued for the next round: each forwarding hop costs one
// round, exactly the "at most two hops of G per edge of G~" accounting the
// paper uses for Phase III.
//
// Faults: a crash_fraction of nodes is down from the start, and scheduled
// CrashEvents kill further nodes mid-run.  The engine maintains the alive
// set incrementally: a node with death round r participates in (global)
// rounds < r and is gone from round r on.  Scenario::start_round offsets
// this network's clock so multi-phase pipelines can thread one global
// schedule through per-phase Network instances.
//
// Protocols are plain structs; the engine discovers optional hooks with
// C++20 `requires`, so a protocol only implements what it needs:
//
//   void on_round(Network<Msg>&, NodeId)                      -- initiate calls
//   void on_message(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_reply(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_round_end(Network<Msg>&, NodeId)                  -- detect lost calls
//   bool done(const Network<Msg>&)                            -- early termination
//   span<const NodeId> active_nodes()                         -- upcall thinning
//
// active_nodes() is a pure optimisation contract: a protocol whose
// per-round work is confined to a known node subset (Phase III acts only
// on the forest roots) returns that subset -- sorted ascending, a superset
// of every node whose on_round/on_round_end does anything -- and the
// engine iterates it instead of the whole alive set.  The engine still
// filters crashed nodes, and ascending order keeps the send sequence (and
// therefore every downstream delivery and RNG draw) bit-identical to the
// full alive scan.
//
// Determinism: all protocol randomness comes from per-node streams and all
// engine randomness (loss, crashes) from separate engine streams, both
// derived from one root seed; deliveries are processed in send order.
// Per-node streams are constructed lazily (first use), which is invisible:
// stream state is a pure function of (root seed, node, purpose).
//
// Hot-path notes: the delivery queues are pooled (capacity survives across
// rounds, so steady-state rounds allocate nothing), the crash flags are a
// flat byte array, and the loss coin is skipped entirely for loss-free
// runs (the loss stream feeds nothing else, so eliding the draws cannot
// perturb any observable).

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

template <class Msg>
class Network {
 public:
  /// `purpose` namespaces the per-node RNG streams so that consecutive
  /// protocol phases sharing one RngFactory draw independent randomness.
  Network(std::uint32_t n, const RngFactory& rngs, Scenario scenario = {},
          std::uint64_t purpose = 0)
      : n_(n),
        scenario_(std::move(scenario)),
        rngs_(rngs),
        purpose_(purpose),
        loss_rng_(rngs.engine_stream(derive_seed(purpose, 0x105eULL))),
        lossy_run_(scenario_.faults.loss_prob > 0.0) {
    assert(scenario_.topology.is_complete() || scenario_.topology.size() == n);
    node_rngs_.resize(n);  // lazily seeded on first use
    const std::vector<std::uint32_t> death = fault_timeline(n, rngs, scenario_.faults);
    crashed_.assign(n, 0);
    alive_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (death[v] <= scenario_.start_round) {
        crashed_[v] = 1;
      } else {
        alive_.push_back(v);
        if (death[v] != kNeverCrashes) pending_deaths_.push_back({death[v], v});
      }
    }
    std::sort(pending_deaths_.begin(), pending_deaths_.end());
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] bool alive(NodeId v) const noexcept { return crashed_[v] == 0; }
  [[nodiscard]] const std::vector<NodeId>& alive_nodes() const noexcept { return alive_; }
  /// Rounds executed by *this* network (local clock).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  /// start_round + round(): the position on the scenario's global clock.
  [[nodiscard]] std::uint32_t global_round() const noexcept {
    return scenario_.start_round + round_;
  }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const FaultSchedule& faults() const noexcept { return scenario_.faults; }
  [[nodiscard]] const Topology& topology() const noexcept { return scenario_.topology; }
  /// True when no sends or replies are queued for delivery.
  [[nodiscard]] bool quiescent() const noexcept {
    return outbox_.empty() && replies_.empty();
  }

  /// Per-node private randomness stream (constructed on first use).
  [[nodiscard]] Rng& node_rng(NodeId v) noexcept {
    std::optional<Rng>& slot = node_rngs_[v];
    if (!slot.has_value()) slot.emplace(rngs_.node_stream(v, purpose_));
    return *slot;
  }

  /// Samples a call target for `caller` from the scenario's topology: the
  /// random phone call primitive.  Uniform over all of V on the complete
  /// topology (crashed nodes can be sampled -- a call to a crashed node is
  /// simply lost); uniform over the caller's neighbors on an explicit one.
  [[nodiscard]] NodeId sample_peer(NodeId caller) noexcept {
    return scenario_.topology.sample_peer(caller, n_, node_rng(caller));
  }

  /// Historical name for sample_peer.
  [[nodiscard]] NodeId sample_uniform(NodeId caller) noexcept {
    return sample_peer(caller);
  }

  /// Initiates a call: delivered this round at the delivery step, lost with
  /// probability loss_prob.  `bits` is the payload size for the
  /// O(log n + log s) message-size accounting.
  void send(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(dst < n_);
    counters_.sent += 1;
    counters_.bits += bits;
    outbox_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Replies on an established call (only valid inside on_message).
  /// Reliable and delivered in the same round's reply step.
  void reply(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(in_delivery_ && "reply() is only valid while handling a delivery");
    counters_.sent += 1;
    counters_.bits += bits;
    replies_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Runs the protocol for at most max_rounds rounds; returns the number of
  /// rounds executed (== max_rounds unless proto.done() fired earlier).
  template <class P>
  std::uint32_t run(P& proto, std::uint32_t max_rounds) {
    std::uint32_t executed = 0;
    for (std::uint32_t r = 0; r < max_rounds; ++r) {
      step(proto);
      ++executed;
      if constexpr (requires { { proto.done(*this) } -> std::convertible_to<bool>; }) {
        if (proto.done(*this)) break;
      }
    }
    return executed;
  }

  /// Executes a single synchronous round (exposed for tests and for
  /// pipelines that interleave protocols).
  template <class P>
  void step(P& proto) {
    apply_scheduled_deaths(global_round());
    ++counters_.rounds;
    const bool check_crash = alive_.size() != n_;  // crash-free fast path
    for (NodeId v : upcall_set(proto)) {
      if (check_crash && crashed_[v]) continue;
      if constexpr (requires { proto.on_round(*this, v); }) proto.on_round(*this, v);
    }
    deliver_queue(proto, outbox_, /*lossy=*/true, /*as_reply=*/false);
    // Replies generated while delivering; drains until quiet so that a
    // reply chain within one established call completes this round.
    while (!replies_.empty()) {
      deliver_queue(proto, replies_, /*lossy=*/false, /*as_reply=*/true);
    }
    if constexpr (requires(NodeId v) { proto.on_round_end(*this, v); }) {
      for (NodeId v : upcall_set(proto)) {
        if (check_crash && crashed_[v]) continue;
        proto.on_round_end(*this, v);
      }
    }
    ++round_;
  }

 private:
  struct Envelope {
    NodeId src;
    NodeId dst;
    Msg msg;
  };

  /// The node set scanned for per-round upcalls: the protocol's declared
  /// active set when it has one, the full alive list otherwise.  Both are
  /// ascending, and the engine re-checks crashed_ per node, so the two
  /// scans produce identical observable behavior.
  template <class P>
  [[nodiscard]] std::span<const NodeId> upcall_set(P& proto) const noexcept {
    if constexpr (requires {
                    { proto.active_nodes() } -> std::convertible_to<std::span<const NodeId>>;
                  }) {
      return proto.active_nodes();
    } else {
      return {alive_.data(), alive_.size()};
    }
  }

  /// Kills every node whose scheduled death round has arrived.  Runs at
  /// the top of each round, so a node dying at round r is absent from
  /// round r's upcalls and deliveries.
  void apply_scheduled_deaths(std::uint32_t global_round) {
    bool any = false;
    while (next_death_ < pending_deaths_.size() &&
           pending_deaths_[next_death_].first <= global_round) {
      crashed_[pending_deaths_[next_death_].second] = 1;
      ++next_death_;
      any = true;
    }
    if (any) {
      alive_.erase(std::remove_if(alive_.begin(), alive_.end(),
                                  [this](NodeId v) { return crashed_[v] != 0; }),
                   alive_.end());
    }
  }

  template <class P>
  void deliver_queue(P& proto, std::vector<Envelope>& queue, bool lossy, bool as_reply) {
    scratch_.swap(queue);  // sends made during delivery land in the next batch
    in_delivery_ = true;
    const bool coin = lossy && lossy_run_;
    const double loss_prob = scenario_.faults.loss_prob;
    // Drop counters are accumulated locally and flushed once: the handlers
    // bump counters_.sent through send(), so the compiler cannot keep the
    // members in registers across the upcalls.
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    const bool check_crash = alive_.size() != n_;
    for (Envelope& e : scratch_) {
      if ((check_crash && crashed_[e.dst]) ||
          (coin && loss_rng_.next_bernoulli(loss_prob))) {
        ++lost;
        continue;
      }
      ++delivered;
      if (as_reply) {
        if constexpr (requires { proto.on_reply(*this, e.src, e.dst, e.msg); }) {
          proto.on_reply(*this, e.src, e.dst, e.msg);
        } else if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      } else {
        if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      }
    }
    counters_.delivered += delivered;
    counters_.lost += lost;
    in_delivery_ = false;
    scratch_.clear();  // keeps capacity: steady-state rounds allocate nothing
  }

  std::uint32_t n_;
  Scenario scenario_;
  RngFactory rngs_;
  std::uint64_t purpose_;
  Rng loss_rng_;
  bool lossy_run_;
  std::vector<std::pair<std::uint32_t, NodeId>> pending_deaths_;  // sorted
  std::size_t next_death_ = 0;
  std::vector<std::uint8_t> crashed_;  // flat byte array: branch-light delivery check
  std::vector<NodeId> alive_;
  std::vector<std::optional<Rng>> node_rngs_;  // lazily seeded
  std::vector<Envelope> outbox_;
  std::vector<Envelope> replies_;
  std::vector<Envelope> scratch_;  // pooled delivery batch (double buffer)
  Counters counters_{};
  std::uint32_t round_ = 0;
  bool in_delivery_ = false;
};

}  // namespace drrg::sim
