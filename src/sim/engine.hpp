#pragma once
// Synchronous random-phone-call network simulator (the model of §2),
// generalised into a scenario engine: the communication substrate
// (sim::Topology) and the fault model (sim::FaultSchedule) are first-class,
// swappable components bundled into a sim::Scenario.
//
// Time advances in discrete rounds.  In each round every live node gets an
// on_round() upcall in which it may *call* other nodes by sending messages;
// a message sent in round t is delivered at the delivery step of round t
// (the call happens within the round).  A recipient may reply() on the
// established call; replies are delivered in the same round and are
// reliable, while call-initiating send()s are lost independently with
// probability FaultSchedule::loss_prob.  Messages emitted *during* delivery
// (forwarding) are queued for the next round: each forwarding hop costs one
// round, exactly the "at most two hops of G per edge of G~" accounting the
// paper uses for Phase III.
//
// Faults: a crash_fraction of nodes is down from the start, and scheduled
// CrashEvents kill further nodes mid-run.  The engine maintains the alive
// set incrementally: a node with death round r participates in (global)
// rounds < r and is gone from round r on.  Scenario::start_round offsets
// this network's clock so multi-phase pipelines can thread one global
// schedule through per-phase Network instances.
//
// Protocols are plain structs; the engine discovers optional hooks with
// C++20 `requires`, so a protocol only implements what it needs:
//
//   void on_round(Network<Msg>&, NodeId)                      -- initiate calls
//   void on_message(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_reply(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_round_end(Network<Msg>&, NodeId)                  -- detect lost calls
//   bool done(const Network<Msg>&)                            -- early termination
//
// Determinism: all protocol randomness comes from per-node streams and all
// engine randomness (loss, crashes) from separate engine streams, both
// derived from one root seed; deliveries are processed in send order.

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

template <class Msg>
class Network {
 public:
  /// `purpose` namespaces the per-node RNG streams so that consecutive
  /// protocol phases sharing one RngFactory draw independent randomness.
  Network(std::uint32_t n, const RngFactory& rngs, Scenario scenario = {},
          std::uint64_t purpose = 0)
      : n_(n),
        scenario_(std::move(scenario)),
        loss_rng_(rngs.engine_stream(derive_seed(purpose, 0x105eULL))) {
    assert(scenario_.topology.is_complete() || scenario_.topology.size() == n);
    node_rngs_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) node_rngs_.push_back(rngs.node_stream(i, purpose));
    const std::vector<std::uint32_t> death = fault_timeline(n, rngs, scenario_.faults);
    crashed_.assign(n, false);
    alive_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (death[v] <= scenario_.start_round) {
        crashed_[v] = true;
      } else {
        alive_.push_back(v);
        if (death[v] != kNeverCrashes) pending_deaths_.push_back({death[v], v});
      }
    }
    std::sort(pending_deaths_.begin(), pending_deaths_.end());
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] bool alive(NodeId v) const noexcept { return !crashed_[v]; }
  [[nodiscard]] const std::vector<NodeId>& alive_nodes() const noexcept { return alive_; }
  /// Rounds executed by *this* network (local clock).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  /// start_round + round(): the position on the scenario's global clock.
  [[nodiscard]] std::uint32_t global_round() const noexcept {
    return scenario_.start_round + round_;
  }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const FaultSchedule& faults() const noexcept { return scenario_.faults; }
  [[nodiscard]] const Topology& topology() const noexcept { return scenario_.topology; }
  /// True when no sends or replies are queued for delivery.
  [[nodiscard]] bool quiescent() const noexcept {
    return outbox_.empty() && replies_.empty();
  }

  /// Per-node private randomness stream.
  [[nodiscard]] Rng& node_rng(NodeId v) noexcept { return node_rngs_[v]; }

  /// Samples a call target for `caller` from the scenario's topology: the
  /// random phone call primitive.  Uniform over all of V on the complete
  /// topology (crashed nodes can be sampled -- a call to a crashed node is
  /// simply lost); uniform over the caller's neighbors on an explicit one.
  [[nodiscard]] NodeId sample_peer(NodeId caller) noexcept {
    return scenario_.topology.sample_peer(caller, n_, node_rngs_[caller]);
  }

  /// Historical name for sample_peer.
  [[nodiscard]] NodeId sample_uniform(NodeId caller) noexcept {
    return sample_peer(caller);
  }

  /// Initiates a call: delivered this round at the delivery step, lost with
  /// probability loss_prob.  `bits` is the payload size for the
  /// O(log n + log s) message-size accounting.
  void send(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(dst < n_);
    counters_.sent += 1;
    counters_.bits += bits;
    outbox_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Replies on an established call (only valid inside on_message).
  /// Reliable and delivered in the same round's reply step.
  void reply(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(in_delivery_ && "reply() is only valid while handling a delivery");
    counters_.sent += 1;
    counters_.bits += bits;
    replies_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Runs the protocol for at most max_rounds rounds; returns the number of
  /// rounds executed (== max_rounds unless proto.done() fired earlier).
  template <class P>
  std::uint32_t run(P& proto, std::uint32_t max_rounds) {
    std::uint32_t executed = 0;
    for (std::uint32_t r = 0; r < max_rounds; ++r) {
      step(proto);
      ++executed;
      if constexpr (requires { { proto.done(*this) } -> std::convertible_to<bool>; }) {
        if (proto.done(*this)) break;
      }
    }
    return executed;
  }

  /// Executes a single synchronous round (exposed for tests and for
  /// pipelines that interleave protocols).
  template <class P>
  void step(P& proto) {
    apply_scheduled_deaths(global_round());
    ++counters_.rounds;
    for (NodeId v : alive_) {
      if constexpr (requires { proto.on_round(*this, v); }) proto.on_round(*this, v);
    }
    deliver_queue(proto, outbox_, /*lossy=*/true, /*as_reply=*/false);
    // Replies generated while delivering; drains until quiet so that a
    // reply chain within one established call completes this round.
    while (!replies_.empty()) {
      deliver_queue(proto, replies_, /*lossy=*/false, /*as_reply=*/true);
    }
    for (NodeId v : alive_) {
      if constexpr (requires { proto.on_round_end(*this, v); }) proto.on_round_end(*this, v);
    }
    ++round_;
  }

 private:
  struct Envelope {
    NodeId src;
    NodeId dst;
    Msg msg;
  };

  /// Kills every node whose scheduled death round has arrived.  Runs at
  /// the top of each round, so a node dying at round r is absent from
  /// round r's upcalls and deliveries.
  void apply_scheduled_deaths(std::uint32_t global_round) {
    bool any = false;
    while (next_death_ < pending_deaths_.size() &&
           pending_deaths_[next_death_].first <= global_round) {
      crashed_[pending_deaths_[next_death_].second] = true;
      ++next_death_;
      any = true;
    }
    if (any) {
      alive_.erase(std::remove_if(alive_.begin(), alive_.end(),
                                  [this](NodeId v) { return crashed_[v]; }),
                   alive_.end());
    }
  }

  template <class P>
  void deliver_queue(P& proto, std::vector<Envelope>& queue, bool lossy, bool as_reply) {
    std::vector<Envelope> batch;
    batch.swap(queue);  // sends made during delivery land in the next batch
    in_delivery_ = true;
    for (auto& e : batch) {
      if (crashed_[e.dst] || (lossy && loss_rng_.next_bernoulli(scenario_.faults.loss_prob))) {
        ++counters_.lost;
        continue;
      }
      ++counters_.delivered;
      if (as_reply) {
        if constexpr (requires { proto.on_reply(*this, e.src, e.dst, e.msg); }) {
          proto.on_reply(*this, e.src, e.dst, e.msg);
        } else if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      } else {
        if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      }
    }
    in_delivery_ = false;
  }

  std::uint32_t n_;
  Scenario scenario_;
  Rng loss_rng_;
  std::vector<std::pair<std::uint32_t, NodeId>> pending_deaths_;  // sorted
  std::size_t next_death_ = 0;
  std::vector<bool> crashed_;
  std::vector<NodeId> alive_;
  std::vector<Rng> node_rngs_;
  std::vector<Envelope> outbox_;
  std::vector<Envelope> replies_;
  Counters counters_{};
  std::uint32_t round_ = 0;
  bool in_delivery_ = false;
};

}  // namespace drrg::sim
