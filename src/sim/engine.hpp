#pragma once
// Synchronous random-phone-call network simulator (the model of §2),
// generalised into a scenario engine: the communication substrate
// (sim::Topology) and the fault model (sim::FaultSchedule) are first-class,
// swappable components bundled into a sim::Scenario.
//
// Network<Msg> is the lockstep implementation of the net::Transport
// seam (src/net/transport.hpp): the surface protocols rely on --
// size/alive/round, node_rng, sample_peer, send/reply, counters,
// scenario -- is the concept's contract, statically asserted there.
// The multi-process UDP runtime (src/net/) is the other implementation
// of that contract; this engine stays byte-identical to the pre-seam
// behavior (pinned by the FNV-1a sweep checksums in test_determinism
// and the engine-sweep sha256 hashes in BENCH_engine.json).
//
// Time advances in discrete rounds.  In each round every live node gets an
// on_round() upcall in which it may *call* other nodes by sending messages;
// a message sent in round t is delivered at the delivery step of round t
// (the call happens within the round).  A recipient may reply() on the
// established call; replies are delivered in the same round and are
// reliable, while call-initiating send()s are lost independently with
// probability FaultSchedule::loss_prob.  Messages emitted *during* delivery
// (forwarding) are queued for the next round: each forwarding hop costs one
// round, exactly the "at most two hops of G per edge of G~" accounting the
// paper uses for Phase III.
//
// Faults: a crash_fraction of nodes is down from the start, and scheduled
// CrashEvents kill further nodes mid-run.  The engine maintains the alive
// set incrementally: a node with death round r participates in (global)
// rounds < r and is gone from round r on.  Scenario::start_round offsets
// this network's clock so multi-phase pipelines can thread one global
// schedule through per-phase Network instances.
//
// Structured adversity (all byte-invisible when absent from the schedule):
//   * LatencyModel -- each call draws a per-message delay d from the
//     engine's latency stream and arrives at the delivery step d rounds
//     after it normally would (event-time delivery via a future-bucket
//     ring).  Replies ride the established call and stay same-round.
//     With the model zero() no draw happens and no code path changes.
//   * BlockCrashEvent -- correlated rack/rectangle outages, folded into
//     the same death timeline as churn (sim::full_timeline).
//   * PartitionEvent -- while active, every message straddling the
//     boundary is dropped (replies included: the cut is physical).
//   * JoinEvent -- deferred births: an unborn node is crashed until its
//     birth round, then revives, is inserted into the alive set, and the
//     protocol's optional on_join(net, v) hook fires so it can bootstrap
//     state from a live peer.
//
// Protocols are plain structs; the engine discovers optional hooks with
// C++20 `requires`, so a protocol only implements what it needs:
//
//   void on_round(Network<Msg>&, NodeId)                      -- initiate calls
//   void on_message(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_reply(Network<Msg>&, NodeId src, NodeId dst, const Msg&)
//   void on_round_end(Network<Msg>&, NodeId)                  -- detect lost calls
//   bool done(const Network<Msg>&)                            -- early termination
//   span<const NodeId> active_nodes()                         -- upcall thinning
//
// active_nodes() is a pure optimisation contract: a protocol whose
// per-round work is confined to a known node subset (Phase III acts only
// on the forest roots) returns that subset -- sorted ascending, a superset
// of every node whose on_round/on_round_end does anything -- and the
// engine iterates it instead of the whole alive set.  The engine still
// filters crashed nodes, and ascending order keeps the send sequence (and
// therefore every downstream delivery and RNG draw) bit-identical to the
// full alive scan.
//
// Determinism: all protocol randomness comes from per-node streams and all
// engine randomness (loss, crashes) from separate engine streams, both
// derived from one root seed; deliveries are processed in send order.
// Per-node streams are constructed lazily (first use), which is invisible:
// stream state is a pure function of (root seed, node, purpose).
//
// Intra-round sharding: a protocol may declare
//
//   static constexpr bool kShardable = true;
//
// promising that on_round(v)/on_round_end(v) touch only v-local state (plus
// node_rng(v)/sample_peer(v)/send) and on_message/on_reply touch only
// dst-local state (plus reply/send/node_rng(dst)) -- no shared mutable
// counters, no cross-node writes.  Under that contract, when
// Scenario::intra_threads asks for more than one worker (and no latency
// model is active), the engine shards the per-round upcall scan into
// contiguous node ranges and the delivery batch into contiguous dst ranges
// across the support/parallel.hpp pool.  Every emission lands in a
// per-shard queue and is merged back in node-index (scan) or
// send-order (delivery) sequence, and the loss coins are pre-drawn
// serially, so the observable behavior -- every counter, every RNG stream,
// every delivery order -- is byte-identical to the serial scan at any
// worker count.  Protocols with shared mutable state (Karp's transmission
// tally) simply do not opt in and always run serially.
//
// Hot-path notes: the delivery queues are pooled (capacity survives across
// rounds, so steady-state rounds allocate nothing), the crash flags are a
// flat byte array, the per-node RNG pool is flat SoA (32-byte xoshiro
// state + 1-byte seeded flag per node, not vector<optional> -- at n = 16M
// the pool is two flat allocations and stays lazily seeded), and the loss
// coin is skipped entirely for loss-free runs (the loss stream feeds
// nothing else, so eliding the draws cannot perturb any observable).

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace drrg::sim {

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

template <class Msg>
class Network {
 public:
  /// `purpose` namespaces the per-node RNG streams so that consecutive
  /// protocol phases sharing one RngFactory draw independent randomness.
  Network(std::uint32_t n, const RngFactory& rngs, Scenario scenario = {},
          std::uint64_t purpose = 0)
      : n_(n),
        scenario_(std::move(scenario)),
        rngs_(rngs),
        purpose_(purpose),
        loss_rng_(rngs.engine_stream(derive_seed(purpose, 0x105eULL))),
        latency_rng_(rngs.engine_stream(derive_seed(purpose, 0x1a7eULL))),
        lossy_run_(scenario_.faults.loss_prob > 0.0),
        latency_on_(!scenario_.faults.latency.zero()),
        partitioned_(scenario_.faults.has_partitions()) {
    assert(scenario_.topology.is_complete() || scenario_.topology.size() == n);
    node_rngs_.resize(n);  // lazily seeded on first use (flags below)
    rng_seeded_.assign(n, 0);
    const std::uint32_t req = scenario_.intra_threads;
    const std::uint32_t budget =
        req == 0 ? std::max(1u, std::thread::hardware_concurrency()) : req;
    shard_workers_ = (budget > 1 && !latency_on_) ? budget : 1;
    const FaultTimeline timeline = full_timeline(n, rngs, scenario_.faults);
    crashed_.assign(n, 0);
    alive_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      const bool born = timeline.birth[v] <= scenario_.start_round;
      const bool dead = timeline.death[v] <= scenario_.start_round;
      if (born && !dead) {
        alive_.push_back(v);
      } else {
        crashed_[v] = 1;
      }
      if (!born) {
        pending_births_.push_back({timeline.birth[v], v});
        if (unborn_.empty()) unborn_.assign(n, 0);
        unborn_[v] = 1;
      }
      if (!dead && timeline.death[v] != kNeverCrashes) {
        pending_deaths_.push_back({timeline.death[v], v});
      }
    }
    std::sort(pending_deaths_.begin(), pending_deaths_.end());
    std::sort(pending_births_.begin(), pending_births_.end());
    if (latency_on_) future_.resize(scenario_.faults.latency.bound() + 2);
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] bool alive(NodeId v) const noexcept { return crashed_[v] == 0; }
  [[nodiscard]] const std::vector<NodeId>& alive_nodes() const noexcept { return alive_; }
  /// Rounds executed by *this* network (local clock).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  /// start_round + round(): the position on the scenario's global clock.
  [[nodiscard]] std::uint32_t global_round() const noexcept {
    return scenario_.start_round + round_;
  }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const FaultSchedule& faults() const noexcept { return scenario_.faults; }
  [[nodiscard]] const Topology& topology() const noexcept { return scenario_.topology; }
  /// True when no sends or replies are queued for delivery (including
  /// delayed messages still in flight under a latency model).
  [[nodiscard]] bool quiescent() const noexcept {
    return outbox_.empty() && replies_.empty() && future_count_ == 0;
  }

  /// Per-node private randomness stream (constructed on first use; the
  /// seeded flags live in their own flat array so the pool stays SoA).
  [[nodiscard]] Rng& node_rng(NodeId v) noexcept {
    if (rng_seeded_[v] == 0) {
      node_rngs_[v] = rngs_.node_stream(v, purpose_);
      rng_seeded_[v] = 1;
    }
    return node_rngs_[v];
  }

  /// Samples a call target for `caller` from the scenario's topology: the
  /// random phone call primitive.  Uniform over all of V on the complete
  /// topology (crashed nodes can be sampled -- a call to a crashed node is
  /// simply lost); uniform over the caller's neighbors on an explicit one.
  /// A node whose scheduled join has not happened yet has no address
  /// anybody could dial, so unborn targets are resampled (bounded spin;
  /// mass-conserving protocols would otherwise leak shares into nodes
  /// that are not part of the system yet).  Without a join schedule the
  /// mask stays empty and not a single extra draw happens.
  [[nodiscard]] NodeId sample_peer(NodeId caller) noexcept {
    NodeId peer = scenario_.topology.sample_peer(caller, n_, node_rng(caller));
    if (!unborn_.empty()) {
      for (int spin = 0; spin < 16 && unborn_[peer]; ++spin)
        peer = scenario_.topology.sample_peer(caller, n_, node_rng(caller));
    }
    return peer;
  }

  /// Historical name for sample_peer.
  [[nodiscard]] NodeId sample_uniform(NodeId caller) noexcept {
    return sample_peer(caller);
  }

  /// Initiates a call: delivered at the delivery step it is scheduled for
  /// (this round from on_round, next round when forwarding), plus a
  /// per-message delay drawn from the latency model when one is active;
  /// lost with probability loss_prob at delivery time.  `bits` is the
  /// payload size for the O(log n + log s) message-size accounting.
  void send(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(dst < n_);
    if (ShardSink* sink = shard_sink_) {
      // Sharded upcall in flight: emissions land in the worker's private
      // queue (tagged with the triggering step for the delivery merge)
      // and are spliced back in serial order afterwards.  Latency is
      // never active here -- sharding is gated on !latency_on_.
      sink->sent += 1;
      sink->bits += bits;
      sink->sends.push_back(Envelope{src, dst, std::move(m)});
      sink->send_tags.push_back(shard_tag_);
      return;
    }
    counters_.sent += 1;
    counters_.bits += bits;
    if (latency_on_) {
      // Arrival = the round this send would legacy-deliver in, plus the
      // drawn delay.  Sends made during delivery or on_round_end target
      // the next round's step (the forwarding-costs-a-round accounting).
      const std::uint32_t base = (in_delivery_ || post_delivery_) ? round_ + 1 : round_;
      const std::uint32_t arrival = base + scenario_.faults.latency.draw(latency_rng_);
      if (arrival != round_) {
        future_[arrival % future_.size()].push_back(Envelope{src, dst, std::move(m)});
        ++future_count_;
        return;
      }
    }
    outbox_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Replies on an established call (only valid inside on_message).
  /// Reliable and delivered in the same round's reply step.
  void reply(NodeId src, NodeId dst, Msg m, std::uint32_t bits) {
    assert(in_delivery_ && "reply() is only valid while handling a delivery");
    if (ShardSink* sink = shard_sink_) {
      sink->sent += 1;
      sink->bits += bits;
      sink->replies.push_back(Envelope{src, dst, std::move(m)});
      sink->reply_tags.push_back(shard_tag_);
      return;
    }
    counters_.sent += 1;
    counters_.bits += bits;
    replies_.push_back(Envelope{src, dst, std::move(m)});
  }

  /// Runs the protocol for at most max_rounds rounds; returns the number of
  /// rounds executed (== max_rounds unless proto.done() fired earlier).
  template <class P>
  std::uint32_t run(P& proto, std::uint32_t max_rounds) {
    std::uint32_t executed = 0;
    for (std::uint32_t r = 0; r < max_rounds; ++r) {
      step(proto);
      ++executed;
      if constexpr (requires { { proto.done(*this) } -> std::convertible_to<bool>; }) {
        if (proto.done(*this)) break;
      }
    }
    return executed;
  }

  /// Executes a single synchronous round (exposed for tests and for
  /// pipelines that interleave protocols).
  template <class P>
  void step(P& proto) {
    apply_scheduled_births(proto, global_round());
    apply_scheduled_deaths(global_round());
    ++counters_.rounds;
    const bool check_crash = alive_.size() != n_;  // crash-free fast path
    if constexpr (requires(NodeId v) { proto.on_round(*this, v); }) {
      const std::span<const NodeId> ups = upcall_set(proto);
      if (use_sharding<P>(ups.size())) {
        sharded_upcalls<P, /*RoundEnd=*/false>(proto, ups, check_crash);
      } else {
        for (NodeId v : ups) {
          if (check_crash && crashed_[v]) continue;
          proto.on_round(*this, v);
        }
      }
    }
    if (latency_on_) {
      // Delayed messages due this round deliver first: they were sent in
      // earlier rounds, so they precede this round's fresh calls -- the
      // same relative order the legacy outbox gives forwards vs. new
      // sends.  Sends made while delivering them land in the future ring
      // (arrival >= round_ + 1), never back in the batch being drained.
      auto& due = future_[round_ % future_.size()];
      future_count_ -= due.size();
      deliver_queue(proto, due, /*lossy=*/true, /*as_reply=*/false);
    }
    deliver_queue(proto, outbox_, /*lossy=*/true, /*as_reply=*/false);
    // Replies generated while delivering; drains until quiet so that a
    // reply chain within one established call completes this round.
    while (!replies_.empty()) {
      deliver_queue(proto, replies_, /*lossy=*/false, /*as_reply=*/true);
    }
    post_delivery_ = true;
    if constexpr (requires(NodeId v) { proto.on_round_end(*this, v); }) {
      const std::span<const NodeId> ups = upcall_set(proto);
      if (use_sharding<P>(ups.size())) {
        sharded_upcalls<P, /*RoundEnd=*/true>(proto, ups, check_crash);
      } else {
        for (NodeId v : ups) {
          if (check_crash && crashed_[v]) continue;
          proto.on_round_end(*this, v);
        }
      }
    }
    post_delivery_ = false;
    ++round_;
  }

 private:
  struct Envelope {
    NodeId src;
    NodeId dst;
    Msg msg;
  };

  // --- intra-round sharding (kShardable protocols only) --------------------

  /// Minimum batch (upcall set or delivery queue) worth forking for; below
  /// it the serial scan wins on thread-spawn overhead alone.
  static constexpr std::size_t kShardMinBatch = 2048;

  template <class P>
  static constexpr bool kShardableV = requires { requires P::kShardable; };

  template <class P>
  [[nodiscard]] bool use_sharding(std::size_t batch) const noexcept {
    if constexpr (kShardableV<P>) {
      return shard_workers_ > 1 && batch >= kShardMinBatch;
    } else {
      (void)batch;
      return false;
    }
  }

  /// One worker's private emission queue.  Tags record the triggering
  /// step (envelope index during delivery), so the merge can restore the
  /// exact serial emission order.
  struct ShardSink {
    std::vector<Envelope> sends;
    std::vector<std::uint32_t> send_tags;
    std::vector<Envelope> replies;
    std::vector<std::uint32_t> reply_tags;
    std::uint64_t sent = 0;
    std::uint64_t bits = 0;

    void clear() noexcept {
      sends.clear();
      send_tags.clear();
      replies.clear();
      reply_tags.clear();
      sent = 0;
      bits = 0;
    }
  };

  /// While a worker runs sharded upcalls, send()/reply() divert into its
  /// sink.  thread_local (not a member): workers share `this`.  Set/reset
  /// per task, so pool threads that run several shards stay clean.
  inline static thread_local ShardSink* shard_sink_ = nullptr;
  inline static thread_local std::uint32_t shard_tag_ = 0;

  void ensure_shards(std::uint32_t workers) {
    if (shard_states_.size() < workers) shard_states_.resize(workers);
    if (shard_buckets_.size() < workers) shard_buckets_.resize(workers);
  }

  /// Round-scan merge: shards are ascending node ranges, so appending the
  /// per-shard queues in shard order IS the serial send order.
  void merge_shards_concat(std::uint32_t workers) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      ShardSink& s = shard_states_[w];
      counters_.sent += s.sent;
      counters_.bits += s.bits;
      for (Envelope& e : s.sends) outbox_.push_back(std::move(e));
      assert(s.replies.empty() && "reply() outside delivery");
      s.clear();
    }
  }

  /// Delivery merge: each shard's tag stream ascends (buckets are scanned
  /// in envelope-index order) and the streams are disjoint across shards
  /// (one dst shard owns each envelope), so a cursor merge by tag restores
  /// the serial emission order exactly.
  void merge_tagged(std::uint32_t workers, bool sends) {
    merge_cursors_.assign(workers, 0);
    std::vector<Envelope>& out = sends ? outbox_ : replies_;
    for (;;) {
      std::uint32_t best = workers;
      std::uint32_t best_tag = 0;
      for (std::uint32_t w = 0; w < workers; ++w) {
        ShardSink& s = shard_states_[w];
        const std::vector<std::uint32_t>& tags = sends ? s.send_tags : s.reply_tags;
        const std::size_t c = merge_cursors_[w];
        if (c < tags.size() && (best == workers || tags[c] < best_tag)) {
          best = w;
          best_tag = tags[c];
        }
      }
      if (best == workers) break;
      ShardSink& s = shard_states_[best];
      std::vector<Envelope>& vec = sends ? s.sends : s.replies;
      const std::vector<std::uint32_t>& tags = sends ? s.send_tags : s.reply_tags;
      std::size_t& c = merge_cursors_[best];
      do {  // consume every emission of this triggering envelope
        out.push_back(std::move(vec[c]));
        ++c;
      } while (c < tags.size() && tags[c] == best_tag);
    }
  }

  void merge_shards_by_tag(std::uint32_t workers) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      counters_.sent += shard_states_[w].sent;
      counters_.bits += shard_states_[w].bits;
    }
    merge_tagged(workers, /*sends=*/true);
    merge_tagged(workers, /*sends=*/false);
    for (std::uint32_t w = 0; w < workers; ++w) shard_states_[w].clear();
  }

  /// Sharded per-round upcall scan: contiguous index ranges of the upcall
  /// set, one per worker, emissions merged back in node-index order.
  template <class P, bool RoundEnd>
  void sharded_upcalls(P& proto, std::span<const NodeId> ups, bool check_crash) {
    const std::uint32_t workers = shard_workers_;
    ensure_shards(workers);
    const std::size_t count = ups.size();
    parallel_map(workers, workers, [&](std::size_t w) {
      ShardSink& sink = shard_states_[w];
      shard_sink_ = &sink;
      shard_tag_ = 0;
      const std::size_t lo = count * w / workers;
      const std::size_t hi = count * (w + 1) / workers;
      for (std::size_t i = lo; i < hi; ++i) {
        const NodeId v = ups[i];
        if (check_crash && crashed_[v]) continue;
        if constexpr (RoundEnd) {
          proto.on_round_end(*this, v);
        } else {
          proto.on_round(*this, v);
        }
      }
      shard_sink_ = nullptr;
      return 0;
    });
    merge_shards_concat(workers);
  }

  /// Sharded delivery.  The drop decisions stay serial -- loss coins must
  /// come off loss_rng_ in send order, with the crashed/cut short-circuit
  /// eliding coins exactly as the serial path does -- and survivors are
  /// bucketed by contiguous dst range so every handler write to dst-local
  /// state is shard-private.  Workers then run the handlers; their tagged
  /// emissions merge back into send order.
  template <class P>
  void deliver_queue_sharded(P& proto, std::vector<Envelope>& queue, bool lossy,
                             bool as_reply) {
    scratch_.swap(queue);
    in_delivery_ = true;
    const bool coin = lossy && lossy_run_;
    const double loss_prob = scenario_.faults.loss_prob;
    const bool check_crash = alive_.size() != n_;
    const bool check_cut = partitioned_;
    const std::uint32_t g = global_round();
    const std::uint32_t workers = shard_workers_;
    ensure_shards(workers);
    for (std::uint32_t w = 0; w < workers; ++w) shard_buckets_[w].clear();
    const std::uint32_t per = (n_ + workers - 1) / workers;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      const Envelope& e = scratch_[i];
      if ((check_crash && crashed_[e.dst]) || (check_cut && cut_now(g, e.src, e.dst)) ||
          (coin && loss_rng_.next_bernoulli(loss_prob))) {
        ++lost;
        continue;
      }
      ++delivered;
      shard_buckets_[e.dst / per].push_back(static_cast<std::uint32_t>(i));
    }
    counters_.delivered += delivered;
    counters_.lost += lost;
    parallel_map(workers, workers, [&](std::size_t w) {
      ShardSink& sink = shard_states_[w];
      shard_sink_ = &sink;
      for (std::uint32_t idx : shard_buckets_[w]) {
        shard_tag_ = idx;
        Envelope& e = scratch_[idx];
        if (as_reply) {
          if constexpr (requires { proto.on_reply(*this, e.src, e.dst, e.msg); }) {
            proto.on_reply(*this, e.src, e.dst, e.msg);
          } else if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
            proto.on_message(*this, e.src, e.dst, e.msg);
          }
        } else {
          if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
            proto.on_message(*this, e.src, e.dst, e.msg);
          }
        }
      }
      shard_sink_ = nullptr;
      return 0;
    });
    merge_shards_by_tag(workers);
    in_delivery_ = false;
    scratch_.clear();
  }

  /// The node set scanned for per-round upcalls: the protocol's declared
  /// active set when it has one, the full alive list otherwise.  Both are
  /// ascending, and the engine re-checks crashed_ per node, so the two
  /// scans produce identical observable behavior.
  template <class P>
  [[nodiscard]] std::span<const NodeId> upcall_set(P& proto) const noexcept {
    if constexpr (requires {
                    { proto.active_nodes() } -> std::convertible_to<std::span<const NodeId>>;
                  }) {
      return proto.active_nodes();
    } else {
      return {alive_.data(), alive_.size()};
    }
  }

  /// Revives every node whose scheduled birth round has arrived: it joins
  /// the alive set (sorted insert, preserving upcall order) and the
  /// protocol's optional on_join hook fires so the joiner can bootstrap
  /// state -- sends made from on_join are delivered this round.  Births
  /// run before deaths so a block outage scheduled at a node's own birth
  /// round still kills it.
  template <class P>
  void apply_scheduled_births(P& proto, std::uint32_t global_round) {
    if (next_birth_ >= pending_births_.size()) return;
    joined_now_.clear();
    while (next_birth_ < pending_births_.size() &&
           pending_births_[next_birth_].first <= global_round) {
      const NodeId v = pending_births_[next_birth_].second;
      ++next_birth_;
      crashed_[v] = 0;
      unborn_[v] = 0;
      alive_.insert(std::lower_bound(alive_.begin(), alive_.end(), v), v);
      joined_now_.push_back(v);
    }
    // Deaths scheduled for this same round (a block outage covering the
    // joiner) must fire before the join upcall, so apply them eagerly.
    apply_scheduled_deaths(global_round);
    if constexpr (requires(NodeId v) { proto.on_join(*this, v); }) {
      for (NodeId v : joined_now_) {
        if (crashed_[v] == 0) proto.on_join(*this, v);
      }
    }
  }

  /// Kills every node whose scheduled death round has arrived.  Runs at
  /// the top of each round, so a node dying at round r is absent from
  /// round r's upcalls and deliveries.
  void apply_scheduled_deaths(std::uint32_t global_round) {
    bool any = false;
    while (next_death_ < pending_deaths_.size() &&
           pending_deaths_[next_death_].first <= global_round) {
      crashed_[pending_deaths_[next_death_].second] = 1;
      ++next_death_;
      any = true;
    }
    if (any) {
      alive_.erase(std::remove_if(alive_.begin(), alive_.end(),
                                  [this](NodeId v) { return crashed_[v] != 0; }),
                   alive_.end());
    }
  }

  template <class P>
  void deliver_queue(P& proto, std::vector<Envelope>& queue, bool lossy, bool as_reply) {
    if (use_sharding<P>(queue.size())) {
      deliver_queue_sharded(proto, queue, lossy, as_reply);
      return;
    }
    scratch_.swap(queue);  // sends made during delivery land in the next batch
    in_delivery_ = true;
    const bool coin = lossy && lossy_run_;
    const double loss_prob = scenario_.faults.loss_prob;
    // Drop counters are accumulated locally and flushed once: the handlers
    // bump counters_.sent through send(), so the compiler cannot keep the
    // members in registers across the upcalls.
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    const bool check_crash = alive_.size() != n_;
    // Partition cuts are evaluated at delivery time against the current
    // global round, so a delayed message crossing a since-healed cut gets
    // through and one arriving mid-partition is dropped.  The cut is
    // physical: it precedes (and so elides) the loss coin, and it applies
    // to replies too.
    const bool check_cut = partitioned_;
    const std::uint32_t g = global_round();
    for (Envelope& e : scratch_) {
      if ((check_crash && crashed_[e.dst]) || (check_cut && cut_now(g, e.src, e.dst)) ||
          (coin && loss_rng_.next_bernoulli(loss_prob))) {
        ++lost;
        continue;
      }
      ++delivered;
      if (as_reply) {
        if constexpr (requires { proto.on_reply(*this, e.src, e.dst, e.msg); }) {
          proto.on_reply(*this, e.src, e.dst, e.msg);
        } else if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      } else {
        if constexpr (requires { proto.on_message(*this, e.src, e.dst, e.msg); }) {
          proto.on_message(*this, e.src, e.dst, e.msg);
        }
      }
    }
    counters_.delivered += delivered;
    counters_.lost += lost;
    in_delivery_ = false;
    scratch_.clear();  // keeps capacity: steady-state rounds allocate nothing
  }

  [[nodiscard]] bool cut_now(std::uint32_t global_round, NodeId src,
                             NodeId dst) const noexcept {
    for (const PartitionEvent& p : scenario_.faults.partitions) {
      if (p.active_at(global_round) && p.cuts(src, dst)) return true;
    }
    return false;
  }

  std::uint32_t n_;
  Scenario scenario_;
  RngFactory rngs_;
  std::uint64_t purpose_;
  Rng loss_rng_;
  Rng latency_rng_;
  bool lossy_run_;
  bool latency_on_;
  bool partitioned_;
  std::vector<std::pair<std::uint32_t, NodeId>> pending_deaths_;  // sorted
  std::size_t next_death_ = 0;
  std::vector<std::pair<std::uint32_t, NodeId>> pending_births_;  // sorted
  /// Non-empty iff the schedule has joins; unborn_[v] = 1 until v's birth
  /// (sample_peer resamples these -- an unjoined node has no address).
  std::vector<std::uint8_t> unborn_;
  std::size_t next_birth_ = 0;
  std::vector<NodeId> joined_now_;  // this round's arrivals (pooled)
  std::vector<std::vector<Envelope>> future_;  // latency ring, slot = round % size
  std::size_t future_count_ = 0;
  std::vector<std::uint8_t> crashed_;  // flat byte array: branch-light delivery check
  std::vector<NodeId> alive_;
  std::vector<Rng> node_rngs_;            // flat SoA pool, lazily seeded...
  std::vector<std::uint8_t> rng_seeded_;  // ...per these flags
  std::uint32_t shard_workers_ = 1;
  std::vector<ShardSink> shard_states_;                 // pooled, sized on demand
  std::vector<std::vector<std::uint32_t>> shard_buckets_;  // delivery dst buckets
  std::vector<std::size_t> merge_cursors_;
  std::vector<Envelope> outbox_;
  std::vector<Envelope> replies_;
  std::vector<Envelope> scratch_;  // pooled delivery batch (double buffer)
  Counters counters_{};
  std::uint32_t round_ = 0;
  bool in_delivery_ = false;
  bool post_delivery_ = false;  // inside on_round_end (latency base round)
};

}  // namespace drrg::sim
