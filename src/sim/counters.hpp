#pragma once
// Message/round accounting.  The paper's claims are *counts*: rounds used
// and messages sent.  Every send is tallied here, including messages that
// the fault model subsequently drops (a lost message still consumed
// bandwidth, which is what message complexity measures).

#include <cstdint>
#include <utility>
#include <vector>

namespace drrg::sim {

struct Counters {
  std::uint64_t sent = 0;       ///< messages handed to the network
  std::uint64_t delivered = 0;  ///< messages that reached a live node
  std::uint64_t lost = 0;       ///< dropped by the loss model or dead target
  std::uint64_t bits = 0;       ///< total payload bits sent
  std::uint32_t rounds = 0;     ///< synchronous rounds executed

  constexpr Counters& operator+=(const Counters& o) noexcept {
    sent += o.sent;
    delivered += o.delivered;
    lost += o.lost;
    bits += o.bits;
    rounds += o.rounds;
    return *this;
  }

  constexpr void reset() noexcept { *this = Counters{}; }
};

/// One scheduled churn event: at the start of global round `round` a
/// `fraction` of the then-alive nodes crash (selected deterministically
/// from the engine's crash stream).  A node that crashes at round r takes
/// part in rounds 0..r-1 and is gone from round r on: it neither sends
/// nor receives, and in-flight messages to it are lost.
struct CrashEvent {
  std::uint32_t round = 0;
  double fraction = 0.0;
};

/// Fault model of §2, generalised to a *schedule*: a fraction of nodes may
/// crash before the algorithm starts, further fractions may crash at
/// scheduled rounds mid-run (churn), and each *call-initiating* message is
/// lost independently with probability loss_prob.  Replies on an
/// established call are reliable, matching "once a call is established ...
/// information can be exchanged in both directions along the link".  The
/// paper assumes static start-time crashes only (empty `churn`) and
/// 1/log n < δ < 1/8.
struct FaultSchedule {
  double loss_prob = 0.0;
  double crash_fraction = 0.0;
  /// Mid-run crash events, applied in round order.  Rounds are *global*:
  /// multi-phase pipelines thread an accumulated round offset through
  /// their phases so one schedule spans the whole execution.
  std::vector<CrashEvent> churn;

  FaultSchedule() = default;
  /// The historical two-field shape `FaultModel{loss, crash}`.
  FaultSchedule(double loss, double crash, std::vector<CrashEvent> events = {})
      : loss_prob(loss), crash_fraction(crash), churn(std::move(events)) {}

  [[nodiscard]] bool has_churn() const noexcept { return !churn.empty(); }

  /// True when the schedule can neither lose nor crash anything.  This is
  /// the dispatch predicate for the protocols' flat fault-free executors:
  /// under it, the generic engine path and the flat path are step-for-step
  /// equivalent, so keep it the single source of truth when extending the
  /// fault model.
  [[nodiscard]] bool fault_free() const noexcept {
    return loss_prob <= 0.0 && crash_fraction <= 0.0 && !has_churn();
  }

  /// True when the schedule never kills a node (loss may still drop
  /// messages).  This is the dispatch predicate for the routed crash-free
  /// fast path: with every node alive for the whole run, the stabilized
  /// liveness detours are identities, so routing can skip the liveness
  /// oracle entirely.  Loss is irrelevant to it -- a lossy-but-crash-free
  /// run drops envelopes in the engine's delivery step, never en route.
  [[nodiscard]] bool crash_free() const noexcept {
    return crash_fraction <= 0.0 && !has_churn();
  }
};

/// Historical name (static start-time crashes + link loss); every
/// FaultModel is the degenerate schedule with no churn events.
using FaultModel = FaultSchedule;

}  // namespace drrg::sim
