#pragma once
// Message/round accounting.  The paper's claims are *counts*: rounds used
// and messages sent.  Every send is tallied here, including messages that
// the fault model subsequently drops (a lost message still consumed
// bandwidth, which is what message complexity measures).

#include <cstdint>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace drrg::sim {

/// Sentinel round for events that never fire (a partition that never
/// heals).  Matches kNeverCrashes in scenario.hpp numerically.
inline constexpr std::uint32_t kNeverRound = static_cast<std::uint32_t>(-1);

struct Counters {
  std::uint64_t sent = 0;       ///< messages handed to the network
  std::uint64_t delivered = 0;  ///< messages that reached a live node
  std::uint64_t lost = 0;       ///< dropped by the loss model or dead target
  std::uint64_t bits = 0;       ///< total payload bits sent
  std::uint32_t rounds = 0;     ///< synchronous rounds executed

  constexpr Counters& operator+=(const Counters& o) noexcept {
    sent += o.sent;
    delivered += o.delivered;
    lost += o.lost;
    bits += o.bits;
    rounds += o.rounds;
    return *this;
  }

  constexpr void reset() noexcept { *this = Counters{}; }
};

/// One scheduled churn event: at the start of global round `round` a
/// `fraction` of the then-alive nodes crash (selected deterministically
/// from the engine's crash stream).  A node that crashes at round r takes
/// part in rounds 0..r-1 and is gone from round r on: it neither sends
/// nor receives, and in-flight messages to it are lost.
struct CrashEvent {
  std::uint32_t round = 0;
  double fraction = 0.0;
};

/// Correlated ("rack-shaped") outage: at the start of `round`, every node
/// in [lo, hi) whose offset satisfies (v - lo) % stride < width crashes.
/// stride == 0 (the default) takes out the whole contiguous range; the
/// stride/width form expresses a grid rectangle on a row-major lattice
/// (lo = r0*cols + c0, hi = r1*cols, stride = cols, width = c1 - c0).
/// Selection is purely arithmetic: a block event draws no randomness, so
/// adding one cannot perturb any other stream.
struct BlockCrashEvent {
  std::uint32_t round = 0;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  std::uint32_t stride = 0;
  std::uint32_t width = 0;

  [[nodiscard]] bool covers(std::uint32_t v) const noexcept {
    if (v < lo || v >= hi) return false;
    return stride == 0 || (v - lo) % stride < width;
  }
};

/// Network partition: from the start of `round` until the start of
/// `heal_round`, every message whose endpoints straddle `boundary`
/// (src < boundary XOR dst < boundary) is dropped by the engine --
/// replies included, the cut is physical.  Nodes stay alive; on a
/// row-major lattice boundary = r*cols slices between rows r-1 and r.
/// heal_round == kNeverRound never heals.
struct PartitionEvent {
  std::uint32_t round = 0;
  std::uint32_t heal_round = kNeverRound;
  std::uint32_t boundary = 0;

  [[nodiscard]] bool active_at(std::uint32_t global_round) const noexcept {
    return global_round >= round && global_round < heal_round;
  }
  [[nodiscard]] bool cuts(std::uint32_t src, std::uint32_t dst) const noexcept {
    return (src < boundary) != (dst < boundary);
  }
};

/// Mid-run arrival: at the start of `round`, a `fraction` of the id space
/// joins.  Joiners are ids deferred out of the round-0 cohort (selected
/// deterministically from the engine's join stream); until their birth
/// round they neither send nor receive and messages to them are lost,
/// exactly like crashed nodes.  On joining they bootstrap protocol state
/// from a live peer (the protocols' on_join upcall).
struct JoinEvent {
  std::uint32_t round = 0;
  double fraction = 0.0;
};

/// Per-link latency distribution.  A call sent in round t is delivered at
/// the delivery step of round t + d, d drawn per message from the engine's
/// latency stream.  d == 0 for every message reproduces the historical
/// lockstep schedule exactly -- and when the model is zero() the engine
/// draws nothing at all, keeping the latency-free path byte-identical.
/// Replies ride the already-established call and stay same-round reliable:
/// latency models call setup, not the answer on an open link.
struct LatencyModel {
  enum class Kind : std::uint8_t {
    kZero = 0,     ///< no extra delay (historical behavior)
    kFixed,        ///< every call delayed exactly min_delay rounds
    kUniform,      ///< delay uniform in [min_delay, max_delay]
    kHeavyTail,    ///< min_delay, but with prob tail_prob a straggler
                   ///< uniform in [min_delay, max_delay]
  };

  Kind kind = Kind::kZero;
  std::uint32_t min_delay = 0;
  std::uint32_t max_delay = 0;
  double tail_prob = 0.0;

  bool operator==(const LatencyModel&) const = default;

  [[nodiscard]] bool zero() const noexcept {
    return kind == Kind::kZero || bound() == 0;
  }
  /// Largest delay the model can produce (sizes the engine's future ring).
  [[nodiscard]] std::uint32_t bound() const noexcept {
    return kind == Kind::kFixed ? min_delay
           : kind == Kind::kZero ? 0
                                 : max_delay;
  }
  /// Expected delay, for round-budget scaling.
  [[nodiscard]] double mean() const noexcept {
    switch (kind) {
      case Kind::kZero: return 0.0;
      case Kind::kFixed: return min_delay;
      case Kind::kUniform: return (min_delay + max_delay) / 2.0;
      case Kind::kHeavyTail:
        return min_delay + tail_prob * (max_delay - min_delay) / 2.0;
    }
    return 0.0;
  }
  /// One per-message delay draw.  Only called when !zero().
  [[nodiscard]] std::uint32_t draw(Rng& rng) const noexcept {
    switch (kind) {
      case Kind::kZero: return 0;
      case Kind::kFixed: return min_delay;
      case Kind::kUniform:
        return min_delay + static_cast<std::uint32_t>(
                               rng.next_below(max_delay - min_delay + 1ULL));
      case Kind::kHeavyTail:
        if (!rng.next_bernoulli(tail_prob)) return min_delay;
        return min_delay + static_cast<std::uint32_t>(
                               rng.next_below(max_delay - min_delay + 1ULL));
    }
    return 0;
  }
};

/// Fault model of §2, generalised to a *schedule*: a fraction of nodes may
/// crash before the algorithm starts, further fractions may crash at
/// scheduled rounds mid-run (churn), and each *call-initiating* message is
/// lost independently with probability loss_prob.  Replies on an
/// established call are reliable, matching "once a call is established ...
/// information can be exchanged in both directions along the link".  The
/// paper assumes static start-time crashes only (empty `churn`) and
/// 1/log n < δ < 1/8.
struct FaultSchedule {
  double loss_prob = 0.0;
  double crash_fraction = 0.0;
  /// Mid-run crash events, applied in round order.  Rounds are *global*:
  /// multi-phase pipelines thread an accumulated round offset through
  /// their phases so one schedule spans the whole execution.
  std::vector<CrashEvent> churn;
  /// Correlated outages (rack / grid-rectangle), applied in round order
  /// interleaved with `churn` on the same global clock.
  std::vector<BlockCrashEvent> blocks;
  /// Substrate cuts with optional heal rounds.
  std::vector<PartitionEvent> partitions;
  /// Mid-run arrivals (bidirectional churn).
  std::vector<JoinEvent> joins;
  /// Per-link latency distribution (event-time delivery).
  LatencyModel latency{};

  FaultSchedule() = default;
  /// The historical two-field shape `FaultModel{loss, crash}`.
  FaultSchedule(double loss, double crash, std::vector<CrashEvent> events = {})
      : loss_prob(loss), crash_fraction(crash), churn(std::move(events)) {}

  [[nodiscard]] bool has_churn() const noexcept { return !churn.empty(); }
  [[nodiscard]] bool has_blocks() const noexcept { return !blocks.empty(); }
  [[nodiscard]] bool has_partitions() const noexcept { return !partitions.empty(); }
  [[nodiscard]] bool has_joins() const noexcept { return !joins.empty(); }

  /// True when the schedule can neither lose, delay, disconnect nor crash
  /// anything.  This is the dispatch predicate for the protocols' flat
  /// fault-free executors: under it, the generic engine path and the flat
  /// path are step-for-step equivalent, so keep it the single source of
  /// truth when extending the fault model.
  [[nodiscard]] bool fault_free() const noexcept {
    return loss_prob <= 0.0 && crash_fraction <= 0.0 && !has_churn() &&
           !has_blocks() && !has_partitions() && !has_joins() && latency.zero();
  }

  /// True when the schedule never kills a node and none arrives late (loss,
  /// latency and partitions may still drop or delay messages).  This is the
  /// dispatch predicate for the routed crash-free fast path: with every
  /// node alive for the whole run, the stabilized liveness detours are
  /// identities, so routing can skip the liveness oracle entirely.  Loss is
  /// irrelevant to it -- a lossy-but-crash-free run drops envelopes in the
  /// engine's delivery step, never en route.
  [[nodiscard]] bool crash_free() const noexcept {
    return crash_fraction <= 0.0 && !has_churn() && !has_blocks() && !has_joins();
  }
};

/// Historical name (static start-time crashes + link loss); every
/// FaultModel is the degenerate schedule with no churn events.
using FaultModel = FaultSchedule;

}  // namespace drrg::sim
