#pragma once
// Message/round accounting.  The paper's claims are *counts*: rounds used
// and messages sent.  Every send is tallied here, including messages that
// the fault model subsequently drops (a lost message still consumed
// bandwidth, which is what message complexity measures).

#include <cstdint>

namespace drrg::sim {

struct Counters {
  std::uint64_t sent = 0;       ///< messages handed to the network
  std::uint64_t delivered = 0;  ///< messages that reached a live node
  std::uint64_t lost = 0;       ///< dropped by the loss model or dead target
  std::uint64_t bits = 0;       ///< total payload bits sent
  std::uint32_t rounds = 0;     ///< synchronous rounds executed

  constexpr Counters& operator+=(const Counters& o) noexcept {
    sent += o.sent;
    delivered += o.delivered;
    lost += o.lost;
    bits += o.bits;
    rounds += o.rounds;
    return *this;
  }

  constexpr void reset() noexcept { *this = Counters{}; }
};

/// Fault model of §2: a fraction of nodes may crash before the algorithm
/// starts (they never send, and messages to them are lost), and each
/// *call-initiating* message is lost independently with probability
/// loss_prob.  Replies on an established call are reliable, matching
/// "once a call is established ... information can be exchanged in both
/// directions along the link".  The paper assumes 1/log n < δ < 1/8.
struct FaultModel {
  double loss_prob = 0.0;
  double crash_fraction = 0.0;
};

}  // namespace drrg::sim
