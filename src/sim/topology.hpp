#pragma once
// Pluggable communication substrate for the simulator.
//
// The paper's model (§2) is the random phone call over the complete graph:
// any node can call any other, and the "sample a partner" primitive is
// uniform over V.  Real gossip runtimes treat peer sampling as a policy
// (libgossip-style), so the engine factors it out:
//
//   * Topology::complete()      -- K_n, the paper's model (default; K_n is
//                                  implicit, no O(n^2) storage);
//   * Topology::of_graph(G)     -- an explicit undirected graph; the
//                                  sampling primitive becomes "uniform
//                                  random neighbor of the caller".
//
// The topology constrains only *random peer sampling*.  Addressed sends to
// nodes learned through sampling or tree construction (a DRR parent, a
// root address distributed in Phase II) model established overlay
// connections and remain point-to-point -- the same convention the paper
// uses when roots reply "directly to the inquiring root" in Algorithm 4.
//
// Graphs are held by shared_ptr so Scenario/Topology values copy in O(1)
// and are safe to share read-only across the parallel trial executor.
// The CSR arrays (offsets + flat neighbor storage) are additionally cached
// as raw pointers at construction, so the sample_peer hot path is a single
// offset computation -- no shared_ptr chase, no span materialisation, no
// per-call neighbor list.  The graph's pseudo-diameter is measured once
// here too; the DRR pipelines read it to scale the Phase III round budget
// on diameter-heavy substrates.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace drrg::sim {

class Topology {
 public:
  /// Implicit complete graph (of whatever size the network has).
  Topology() = default;

  [[nodiscard]] static Topology complete() { return Topology{}; }

  [[nodiscard]] static Topology of_graph(Graph g) {
    Topology t;
    if (!g.is_complete()) {
      t.graph_ = std::make_shared<const Graph>(std::move(g));
      t.offsets_ = t.graph_->csr_offsets().data();
      t.adjacency_ = t.graph_->csr_adjacency().data();
      t.diameter_ = t.graph_->pseudo_diameter();
    }
    return t;
  }

  /// A rows x cols lattice (row-major node ids) with its layout recorded,
  /// so consumers that route by coordinates (the sparse pipeline's
  /// Assumption-2 sampler) need not re-derive the builder's shape.
  [[nodiscard]] static Topology of_grid(std::uint32_t rows, std::uint32_t cols,
                                        bool torus);

  [[nodiscard]] bool is_complete() const noexcept { return graph_ == nullptr; }

  /// The explicit graph; nullptr for the implicit complete topology.
  [[nodiscard]] const Graph* graph() const noexcept { return graph_.get(); }

  /// Number of nodes the topology was built for (0 = any, complete).
  [[nodiscard]] std::uint32_t size() const noexcept {
    return graph_ ? graph_->size() : 0;
  }

  /// Degree of v on an explicit topology (straight off the cached CSR
  /// offsets; callers special-case the complete topology).
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Measured (pseudo-)diameter of the substrate: 1 for the complete
  /// topology, Graph::pseudo_diameter() for an explicit one.  Cached at
  /// construction -- reading it per run costs nothing.
  [[nodiscard]] std::uint32_t diameter() const noexcept { return diameter_; }

  /// Lattice layout when the topology was built with of_grid (node id =
  /// row * grid_cols() + col); grid_rows() == 0 otherwise.
  [[nodiscard]] bool is_grid() const noexcept { return grid_rows_ != 0; }
  [[nodiscard]] std::uint32_t grid_rows() const noexcept { return grid_rows_; }
  [[nodiscard]] std::uint32_t grid_cols() const noexcept { return grid_cols_; }
  [[nodiscard]] bool grid_torus() const noexcept { return grid_torus_; }

  /// The random phone call primitive: a call target for `caller`, uniform
  /// over all of V on the complete topology (self-samples possible,
  /// historical behavior) and uniform over neighbors(caller) on an
  /// explicit graph (an isolated node calls itself; the call is a no-op).
  /// One index computation on the cached CSR arrays -- the engine's
  /// hottest call after the RNG itself.
  [[nodiscard]] NodeId sample_peer(NodeId caller, std::uint32_t n, Rng& rng) const {
    if (adjacency_ == nullptr) return static_cast<NodeId>(rng.next_below(n));
    const std::uint64_t begin = offsets_[caller];
    const std::uint64_t deg = offsets_[caller + 1] - begin;
    if (deg == 0) return caller;
    return adjacency_[begin + rng.next_below(deg)];
  }

  /// Value-type view of the sampling arrays for tight loops: a stack-local
  /// sampler lets the compiler keep the CSR pointers in registers across
  /// calls that also touch the heap (which would force member reloads).
  /// Samples identically to sample_peer.
  struct PeerSampler {
    const std::uint64_t* offsets;
    const NodeId* adjacency;
    std::uint32_t n;

    [[nodiscard]] NodeId operator()(NodeId caller, Rng& rng) const {
      if (adjacency == nullptr) return static_cast<NodeId>(rng.next_below(n));
      const std::uint64_t begin = offsets[caller];
      const std::uint64_t deg = offsets[caller + 1] - begin;
      if (deg == 0) return caller;
      return adjacency[begin + rng.next_below(deg)];
    }
  };

  [[nodiscard]] PeerSampler sampler(std::uint32_t n) const noexcept {
    return {offsets_, adjacency_, n};
  }

 private:
  std::shared_ptr<const Graph> graph_;
  // Cached views into *graph_ (stable: the Graph is immutable and shared);
  // null for the implicit complete topology.
  const std::uint64_t* offsets_ = nullptr;
  const NodeId* adjacency_ = nullptr;
  std::uint32_t diameter_ = 1;
  std::uint32_t grid_rows_ = 0;  // of_grid only: lattice layout for routing
  std::uint32_t grid_cols_ = 0;
  bool grid_torus_ = false;
};

// ---------------------------------------------------------------------------
// Named topology families for the scenario layer (CLI / api::RunSpec).

enum class TopologyKind : std::uint8_t {
  kComplete,       ///< K_n -- the paper's random phone call model
  kChordRing,      ///< successor + finger edges of a Chord ring
  kRandomRegular,  ///< random d-regular (configuration model)
  kGrid2d,         ///< 2D grid, rows x cols with rows*cols == n
};

/// Value-type description of a topology, copyable into RunSpecs.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kComplete;
  std::uint32_t degree = 8;  ///< random-regular only
  bool torus = false;        ///< grid only

  [[nodiscard]] bool is_complete() const noexcept {
    return kind == TopologyKind::kComplete;
  }
};

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;

/// Parses "complete", "chord-ring", "random-regular", "grid", "torus".
[[nodiscard]] std::optional<TopologySpec> topology_from_name(
    std::string_view name) noexcept;

/// Materialises a spec for n nodes.  Randomized builders draw from `seed`.
/// Degree is bumped by one when n*degree is odd (the configuration model
/// needs an even degree sum); grids use the largest divisor of n that is
/// <= sqrt(n) as the row count (prime n degenerates to a 1 x n path).
[[nodiscard]] Topology make_topology(const TopologySpec& spec, std::uint32_t n,
                                     std::uint64_t seed);

}  // namespace drrg::sim
