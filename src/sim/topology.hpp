#pragma once
// Pluggable communication substrate for the simulator.
//
// The paper's model (§2) is the random phone call over the complete graph:
// any node can call any other, and the "sample a partner" primitive is
// uniform over V.  Real gossip runtimes treat peer sampling as a policy
// (libgossip-style), so the engine factors it out:
//
//   * Topology::complete()      -- K_n, the paper's model (default; K_n is
//                                  implicit, no O(n^2) storage);
//   * Topology::of_graph(G)     -- an explicit undirected graph; the
//                                  sampling primitive becomes "uniform
//                                  random neighbor of the caller".
//
// The topology constrains only *random peer sampling*.  Addressed sends to
// nodes learned through sampling or tree construction (a DRR parent, a
// root address distributed in Phase II) model established overlay
// connections and remain point-to-point -- the same convention the paper
// uses when roots reply "directly to the inquiring root" in Algorithm 4.
//
// Graphs are held by shared_ptr so Scenario/Topology values copy in O(1)
// and are safe to share read-only across the parallel trial executor.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace drrg::sim {

class Topology {
 public:
  /// Implicit complete graph (of whatever size the network has).
  Topology() = default;

  [[nodiscard]] static Topology complete() { return Topology{}; }

  [[nodiscard]] static Topology of_graph(Graph g) {
    Topology t;
    if (!g.is_complete()) t.graph_ = std::make_shared<const Graph>(std::move(g));
    return t;
  }

  [[nodiscard]] bool is_complete() const noexcept { return graph_ == nullptr; }

  /// The explicit graph; nullptr for the implicit complete topology.
  [[nodiscard]] const Graph* graph() const noexcept { return graph_.get(); }

  /// Number of nodes the topology was built for (0 = any, complete).
  [[nodiscard]] std::uint32_t size() const noexcept {
    return graph_ ? graph_->size() : 0;
  }

  /// The random phone call primitive: a call target for `caller`, uniform
  /// over all of V on the complete topology (self-samples possible,
  /// historical behavior) and uniform over neighbors(caller) on an
  /// explicit graph (an isolated node calls itself; the call is a no-op).
  [[nodiscard]] NodeId sample_peer(NodeId caller, std::uint32_t n, Rng& rng) const {
    if (graph_ == nullptr) return static_cast<NodeId>(rng.next_below(n));
    const auto nbrs = graph_->neighbors(caller);
    if (nbrs.empty()) return caller;
    return nbrs[rng.next_below(nbrs.size())];
  }

 private:
  std::shared_ptr<const Graph> graph_;
};

// ---------------------------------------------------------------------------
// Named topology families for the scenario layer (CLI / api::RunSpec).

enum class TopologyKind : std::uint8_t {
  kComplete,       ///< K_n -- the paper's random phone call model
  kChordRing,      ///< successor + finger edges of a Chord ring
  kRandomRegular,  ///< random d-regular (configuration model)
  kGrid2d,         ///< 2D grid, rows x cols with rows*cols == n
};

/// Value-type description of a topology, copyable into RunSpecs.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kComplete;
  std::uint32_t degree = 8;  ///< random-regular only
  bool torus = false;        ///< grid only

  [[nodiscard]] bool is_complete() const noexcept {
    return kind == TopologyKind::kComplete;
  }
};

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;

/// Parses "complete", "chord-ring", "random-regular", "grid", "torus".
[[nodiscard]] std::optional<TopologySpec> topology_from_name(
    std::string_view name) noexcept;

/// Materialises a spec for n nodes.  Randomized builders draw from `seed`.
/// Degree is bumped by one when n*degree is odd (the configuration model
/// needs an even degree sum); grids use the largest divisor of n that is
/// <= sqrt(n) as the row count (prime n degenerates to a 1 x n path).
[[nodiscard]] Topology make_topology(const TopologySpec& spec, std::uint32_t n,
                                     std::uint64_t seed);

}  // namespace drrg::sim
