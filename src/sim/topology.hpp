#pragma once
// Pluggable communication substrate for the simulator.
//
// The paper's model (§2) is the random phone call over the complete graph:
// any node can call any other, and the "sample a partner" primitive is
// uniform over V.  Real gossip runtimes treat peer sampling as a policy
// (libgossip-style), so the engine factors it out:
//
//   * Topology::complete()      -- K_n, the paper's model (default; K_n is
//                                  implicit, no O(n^2) storage);
//   * Topology::of_graph(G)     -- an explicit undirected graph; the
//                                  sampling primitive becomes "uniform
//                                  random neighbor of the caller".
//
// The topology constrains only *random peer sampling*.  Addressed sends to
// nodes learned through sampling or tree construction (a DRR parent, a
// root address distributed in Phase II) model established overlay
// connections and remain point-to-point -- the same convention the paper
// uses when roots reply "directly to the inquiring root" in Algorithm 4.
//
// Storage backends.  Structured families (chord ring, grid/torus) admit two
// representations that sample identically:
//
//   * CSR cache: offsets + flat neighbor array, adjacency sorted ascending
//     per node.  O(n log n) words for a chord ring -- 3.2 GB at n = 16M.
//     Needed whenever a consumer walks real adjacency (the sparse routed
//     pipeline, Local-DRR).
//   * implicit: neighbors computed from the node id on demand.  A chord
//     ring's undirected neighbor *offsets* {s, n-s : s = 1, 2, 4, ...} are
//     the same sorted table for every node, so the j-th smallest neighbor
//     of i is one binary search + a rotation; a lattice's <= 4 neighbors
//     are coordinate arithmetic.  O(log n) words total for the ring, zero
//     for the grid -- this is what makes n = 16M single-machine runs fit.
//
// Both backends enumerate identical sorted neighbor lists, so peer sampling
// (index rng.next_below(deg) into the sorted list) and the double-sweep
// pseudo-diameter are bit-identical across them; make_topology picks the
// backend by size (TopologyBackend::kAuto) unless the spec forces one.
//
// Graphs are held by shared_ptr so Scenario/Topology values copy in O(1)
// and are safe to share read-only across the parallel trial executor.
// The CSR arrays (offsets + flat neighbor storage) are additionally cached
// as raw pointers at construction, so the sample_peer hot path is a single
// offset computation -- no shared_ptr chase, no span materialisation, no
// per-call neighbor list.  The substrate's pseudo-diameter is measured once
// here too; the DRR pipelines read it to scale the Phase III round budget
// on diameter-heavy substrates.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace drrg::sim {

/// Which storage the structured families materialise.  kAuto picks the CSR
/// cache below kImplicitAutoThreshold nodes (cheap to build, reusable by
/// adjacency-walking consumers) and the implicit backend at or above it
/// (the CSR build's O(n log n) edge storage is the scaling bottleneck).
enum class TopologyBackend : std::uint8_t {
  kAuto = 0,
  kCsr,       ///< force the materialised CSR adjacency
  kImplicit,  ///< force id-arithmetic neighbors (chord-ring / grid only)
};

/// kAuto switches chord-ring and grid/torus to the implicit backend at
/// this size.  Below it both backends exist and are interchangeable.
inline constexpr std::uint32_t kImplicitAutoThreshold = 1u << 17;

class Topology {
 public:
  enum class Storage : std::uint8_t {
    kComplete = 0,   ///< K_n, no storage at all
    kCsr,            ///< explicit Graph, cached CSR views
    kImplicitChord,  ///< chord ring: shared sorted offset table
    kImplicitGrid,   ///< rows x cols lattice: coordinate arithmetic
  };

  /// Implicit complete graph (of whatever size the network has).
  Topology() = default;

  [[nodiscard]] static Topology complete() { return Topology{}; }

  /// Complete graph with its size recorded, so degree() is answerable
  /// without the caller's n.
  [[nodiscard]] static Topology complete_of(std::uint32_t n) {
    Topology t;
    t.n_ = n;
    return t;
  }

  [[nodiscard]] static Topology of_graph(Graph g) {
    Topology t;
    if (!g.is_complete()) {
      t.storage_ = Storage::kCsr;
      t.graph_ = std::make_shared<const Graph>(std::move(g));
      t.offsets_ = t.graph_->csr_offsets().data();
      t.adjacency_ = t.graph_->csr_adjacency().data();
      t.diameter_ = t.graph_->pseudo_diameter();
      t.n_ = t.graph_->size();
    } else {
      t.n_ = g.size();
    }
    return t;
  }

  /// A rows x cols lattice (row-major node ids) with its layout recorded,
  /// so consumers that route by coordinates (the sparse pipeline's
  /// Assumption-2 sampler) need not re-derive the builder's shape.
  [[nodiscard]] static Topology of_grid(std::uint32_t rows, std::uint32_t cols,
                                        bool torus);

  /// Chord ring over n nodes without materialised adjacency: neighbors of
  /// i are (i + d) mod n for the node-independent sorted offset table
  /// d in {s, n-s : s = 1, 2, 4, ..., 2^k < n}.  Same neighbor sets, same
  /// sampling, same pseudo-diameter as of_graph(make_chord_graph(n)).
  [[nodiscard]] static Topology implicit_chord(std::uint32_t n);

  /// rows x cols lattice without materialised adjacency (same edge rules
  /// as make_grid, including torus wraps only on dimensions > 2).
  [[nodiscard]] static Topology implicit_grid(std::uint32_t rows,
                                              std::uint32_t cols, bool torus);

  [[nodiscard]] Storage storage() const noexcept { return storage_; }
  [[nodiscard]] bool is_complete() const noexcept {
    return storage_ == Storage::kComplete;
  }
  [[nodiscard]] bool is_implicit() const noexcept {
    return storage_ == Storage::kImplicitChord ||
           storage_ == Storage::kImplicitGrid;
  }

  /// The explicit graph; nullptr for complete and implicit backends.
  [[nodiscard]] const Graph* graph() const noexcept { return graph_.get(); }

  /// Number of nodes the topology was built for (0 = any, unsized complete).
  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }

  /// Degree of v.  Complete topologies answer n-1 when their size was
  /// recorded (complete_of / make_topology) and hard-abort otherwise --
  /// the historical behavior was a silent nullptr dereference.
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    switch (storage_) {
      case Storage::kCsr:
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
      case Storage::kImplicitChord:
        return chord_degree_;
      case Storage::kImplicitGrid: {
        NodeId scratch[4];
        return grid_neighbors(v, scratch);
      }
      case Storage::kComplete:
        if (n_ == 0) {
          // An unsized complete topology has no answer; aborting beats the
          // historical nullptr dereference (and is testable as a death).
          std::abort();
        }
        return n_ - 1;
    }
    return 0;
  }

  /// Measured (pseudo-)diameter of the substrate: 1 for the complete
  /// topology, the double-sweep BFS bound for explicit and implicit ones.
  /// Cached at construction -- reading it per run costs nothing.
  [[nodiscard]] std::uint32_t diameter() const noexcept { return diameter_; }

  /// Lattice layout when the topology was built with of_grid/implicit_grid
  /// (node id = row * grid_cols() + col); grid_rows() == 0 otherwise.
  [[nodiscard]] bool is_grid() const noexcept { return grid_rows_ != 0; }
  [[nodiscard]] std::uint32_t grid_rows() const noexcept { return grid_rows_; }
  [[nodiscard]] std::uint32_t grid_cols() const noexcept { return grid_cols_; }
  [[nodiscard]] bool grid_torus() const noexcept { return grid_torus_; }

  /// Value-type view of the sampling state for tight loops: a stack-local
  /// sampler lets the compiler keep the hot pointers in registers across
  /// calls that also touch the heap (which would force member reloads).
  /// Samples identically to sample_peer on every backend.
  struct PeerSampler {
    const std::uint64_t* offsets = nullptr;
    const NodeId* adjacency = nullptr;  // CSR backend
    std::uint32_t n = 0;
    const NodeId* chord = nullptr;  // implicit chord: sorted offset table
    std::uint32_t chord_degree = 0;
    std::uint32_t rows = 0;  // implicit grid
    std::uint32_t cols = 0;
    bool torus = false;

    [[nodiscard]] NodeId operator()(NodeId caller, Rng& rng) const {
      if (adjacency != nullptr) {
        const std::uint64_t begin = offsets[caller];
        const std::uint64_t deg = offsets[caller + 1] - begin;
        if (deg == 0) return caller;
        return adjacency[begin + rng.next_below(deg)];
      }
      if (chord != nullptr) {
        // j-th smallest of {(caller + d) mod n : d in table}: offsets with
        // d >= n - caller wrap below caller and sort first, so the sorted
        // rank is a rotation of the offset table by that split point.
        const auto j = static_cast<std::uint32_t>(rng.next_below(chord_degree));
        const NodeId* lb =
            std::lower_bound(chord, chord + chord_degree, n - caller);
        std::uint32_t k = static_cast<std::uint32_t>(lb - chord) + j;
        if (k >= chord_degree) k -= chord_degree;
        const std::uint64_t id = static_cast<std::uint64_t>(caller) + chord[k];
        return static_cast<NodeId>(id >= n ? id - n : id);
      }
      if (rows != 0) {
        NodeId nb[4];
        const std::uint32_t deg = grid_neighbors_of(rows, cols, torus, caller, nb);
        if (deg == 0) return caller;
        return nb[rng.next_below(deg)];
      }
      return static_cast<NodeId>(rng.next_below(n));
    }
  };

  /// The random phone call primitive: a call target for `caller`, uniform
  /// over all of V on the complete topology (self-samples possible,
  /// historical behavior) and uniform over the sorted neighbor list
  /// otherwise (an isolated node calls itself; the call is a no-op).
  [[nodiscard]] NodeId sample_peer(NodeId caller, std::uint32_t n, Rng& rng) const {
    return sampler(n)(caller, rng);
  }

  [[nodiscard]] PeerSampler sampler(std::uint32_t n) const noexcept {
    PeerSampler s;
    s.offsets = offsets_;
    s.adjacency = adjacency_;
    s.n = n;
    s.chord = chord_;
    s.chord_degree = chord_degree_;
    if (storage_ == Storage::kImplicitGrid) {
      s.rows = grid_rows_;
      s.cols = grid_cols_;
      s.torus = grid_torus_;
    }
    return s;
  }

  /// Sorted neighbors of v written into `out` (capacity >= degree(v)) on
  /// the implicit backends; returns the count.  Matches the CSR adjacency
  /// slice of the equivalent explicit build element-for-element.
  std::uint32_t implicit_neighbors(NodeId v, NodeId* out) const;

 private:
  static std::uint32_t grid_neighbors_of(std::uint32_t rows, std::uint32_t cols,
                                         bool torus, NodeId v, NodeId out[4]);
  [[nodiscard]] std::uint32_t grid_neighbors(NodeId v, NodeId out[4]) const {
    return grid_neighbors_of(grid_rows_, grid_cols_, grid_torus_, v, out);
  }

  Storage storage_ = Storage::kComplete;
  std::shared_ptr<const Graph> graph_;
  // Cached views into *graph_ (stable: the Graph is immutable and shared);
  // null for the complete and implicit topologies.
  const std::uint64_t* offsets_ = nullptr;
  const NodeId* adjacency_ = nullptr;
  // Implicit chord: shared sorted offset table (O(log n) entries).
  std::shared_ptr<const std::vector<NodeId>> chord_table_;
  const NodeId* chord_ = nullptr;
  std::uint32_t chord_degree_ = 0;
  std::uint32_t n_ = 0;
  std::uint32_t diameter_ = 1;
  std::uint32_t grid_rows_ = 0;  // of_grid/implicit_grid: lattice layout
  std::uint32_t grid_cols_ = 0;
  bool grid_torus_ = false;
};

// ---------------------------------------------------------------------------
// Named topology families for the scenario layer (CLI / api::RunSpec).

enum class TopologyKind : std::uint8_t {
  kComplete,       ///< K_n -- the paper's random phone call model
  kChordRing,      ///< successor + finger edges of a Chord ring
  kRandomRegular,  ///< random d-regular (configuration model)
  kGrid2d,         ///< 2D grid, rows x cols with rows*cols == n
};

/// Value-type description of a topology, copyable into RunSpecs.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kComplete;
  std::uint32_t degree = 8;  ///< random-regular only
  bool torus = false;        ///< grid only
  TopologyBackend backend = TopologyBackend::kAuto;

  [[nodiscard]] bool is_complete() const noexcept {
    return kind == TopologyKind::kComplete;
  }
};

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;

/// Parses "complete", "chord-ring", "random-regular", "grid", "torus".
[[nodiscard]] std::optional<TopologySpec> topology_from_name(
    std::string_view name) noexcept;

/// Parses "auto", "csr", "implicit".
[[nodiscard]] std::optional<TopologyBackend> backend_from_name(
    std::string_view name) noexcept;
[[nodiscard]] std::string_view to_string(TopologyBackend backend) noexcept;

/// The rows x cols layout make_topology gives a grid of n nodes: rows is
/// the largest divisor of n that is <= sqrt(n).  rows == 1 (n prime or
/// n < 4) has no 2d shape and make_topology rejects it.
struct GridShape {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
};
[[nodiscard]] GridShape grid_shape(std::uint32_t n) noexcept;

/// Materialises a spec for n nodes.  Randomized builders draw from `seed`.
/// Degree is bumped by one when n*degree is odd (the configuration model
/// needs an even degree sum); grids use the largest divisor of n that is
/// <= sqrt(n) as the row count and *reject* a prime n (a 1 x n "grid" is a
/// path with diameter n-1, silently invalidating grid-family results) with
/// std::invalid_argument.  Chord rings and grids honour spec.backend;
/// kAuto materialises CSR below kImplicitAutoThreshold nodes and goes
/// implicit at or above it.
[[nodiscard]] Topology make_topology(const TopologySpec& spec, std::uint32_t n,
                                     std::uint64_t seed);

}  // namespace drrg::sim
