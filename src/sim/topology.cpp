#include "sim/topology.hpp"

#include <cmath>
#include <stdexcept>

#include "topology/builders.hpp"

namespace drrg::sim {

namespace {

constexpr std::uint32_t kNeverSeen = static_cast<std::uint32_t>(-1);

/// Double-sweep BFS over implicitly-enumerated neighbors: the exact
/// algorithm of Graph::pseudo_diameter (same farthest-node tie-break,
/// which is enumeration-order independent), so the implicit and CSR
/// backends report identical diameters.
template <typename ForEachNeighbor>
std::uint32_t pseudo_diameter_implicit(std::uint32_t n,
                                       ForEachNeighbor&& neighbors_of) {
  if (n <= 1) return 0;
  std::vector<std::uint32_t> dist(n);
  auto bfs = [&](NodeId start) -> NodeId {
    std::fill(dist.begin(), dist.end(), kNeverSeen);
    std::vector<NodeId> frontier{start};
    dist[start] = 0;
    NodeId farthest = start;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        neighbors_of(v, [&](NodeId w) {
          if (dist[w] == kNeverSeen) {
            dist[w] = dist[v] + 1;
            if (dist[w] > dist[farthest] ||
                (dist[w] == dist[farthest] && w < farthest))
              farthest = w;
            next.push_back(w);
          }
        });
      }
      frontier = std::move(next);
    }
    return farthest;
  };
  const NodeId u = bfs(0);
  const NodeId w = bfs(u);
  return dist[w];
}

/// Node-independent sorted chord offset table: the undirected neighbor set
/// of any node i is {(i + d) mod n : d in table}.  Mirrors the edge set of
/// make_chord_graph (successor step 1 plus finger steps 2, 4, ...), with
/// each step s contributing both directions s and n - s.
std::vector<NodeId> chord_offset_table(std::uint32_t n) {
  std::vector<NodeId> table;
  auto add = [&](std::uint32_t s) {
    table.push_back(s);
    table.push_back(n - s);
  };
  add(1);
  for (std::uint64_t step = 2; step < n; step <<= 1)
    add(static_cast<std::uint32_t>(step));
  std::sort(table.begin(), table.end());
  table.erase(std::unique(table.begin(), table.end()), table.end());
  return table;
}

}  // namespace

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kChordRing: return "chord-ring";
    case TopologyKind::kRandomRegular: return "random-regular";
    case TopologyKind::kGrid2d: return "grid";
  }
  return "complete";
}

std::string_view to_string(TopologyBackend backend) noexcept {
  switch (backend) {
    case TopologyBackend::kAuto: return "auto";
    case TopologyBackend::kCsr: return "csr";
    case TopologyBackend::kImplicit: return "implicit";
  }
  return "auto";
}

std::optional<TopologySpec> topology_from_name(std::string_view name) noexcept {
  TopologySpec spec;
  if (name == "complete") {
    spec.kind = TopologyKind::kComplete;
  } else if (name == "chord-ring" || name == "chord") {
    spec.kind = TopologyKind::kChordRing;
  } else if (name == "random-regular" || name == "regular") {
    spec.kind = TopologyKind::kRandomRegular;
  } else if (name == "grid") {
    spec.kind = TopologyKind::kGrid2d;
  } else if (name == "torus") {
    spec.kind = TopologyKind::kGrid2d;
    spec.torus = true;
  } else {
    return std::nullopt;
  }
  return spec;
}

std::optional<TopologyBackend> backend_from_name(std::string_view name) noexcept {
  if (name == "auto") return TopologyBackend::kAuto;
  if (name == "csr") return TopologyBackend::kCsr;
  if (name == "implicit") return TopologyBackend::kImplicit;
  return std::nullopt;
}

Topology Topology::of_grid(std::uint32_t rows, std::uint32_t cols, bool torus) {
  Topology t = of_graph(make_grid(rows, cols, torus));
  t.grid_rows_ = rows;
  t.grid_cols_ = cols;
  t.grid_torus_ = torus;
  return t;
}

std::uint32_t Topology::grid_neighbors_of(std::uint32_t rows, std::uint32_t cols,
                                          bool torus, NodeId v, NodeId out[4]) {
  // Mirror make_grid's emission rules exactly: lattice edges plus torus
  // wraps only on dimensions > 2 (a wrap on a 2-wide dimension would
  // coincide with the lattice edge).
  const std::uint32_t r = v / cols;
  const std::uint32_t c = v % cols;
  std::uint32_t m = 0;
  auto push = [&](std::uint32_t rr, std::uint32_t cc) {
    out[m++] = rr * cols + cc;
  };
  if (c > 0) push(r, c - 1);
  else if (torus && cols > 2) push(r, cols - 1);
  if (c + 1 < cols) push(r, c + 1);
  else if (torus && cols > 2) push(r, 0);
  if (r > 0) push(r - 1, c);
  else if (torus && rows > 2) push(rows - 1, c);
  if (r + 1 < rows) push(r + 1, c);
  else if (torus && rows > 2) push(0, c);
  // Insertion-sort the <= 4 entries: the CSR slice is sorted ascending and
  // sampling indexes into the sorted order.
  for (std::uint32_t i = 1; i < m; ++i) {
    const NodeId x = out[i];
    std::uint32_t j = i;
    for (; j > 0 && out[j - 1] > x; --j) out[j] = out[j - 1];
    out[j] = x;
  }
  return m;
}

std::uint32_t Topology::implicit_neighbors(NodeId v, NodeId* out) const {
  if (storage_ == Storage::kImplicitGrid) {
    NodeId nb[4];
    const std::uint32_t deg = grid_neighbors(v, nb);
    for (std::uint32_t i = 0; i < deg; ++i) out[i] = nb[i];
    return deg;
  }
  if (storage_ == Storage::kImplicitChord) {
    // Sorted neighbor list of v = rotation of the offset table at the
    // wrap point (see PeerSampler::operator()).
    const NodeId* lb = std::lower_bound(chord_, chord_ + chord_degree_, n_ - v);
    const auto split = static_cast<std::uint32_t>(lb - chord_);
    std::uint32_t m = 0;
    for (std::uint32_t k = split; k < chord_degree_; ++k)
      out[m++] = static_cast<NodeId>(
          static_cast<std::uint64_t>(v) + chord_[k] - n_);
    for (std::uint32_t k = 0; k < split; ++k)
      out[m++] = v + chord_[k];
    return m;
  }
  return 0;
}

Topology Topology::implicit_chord(std::uint32_t n) {
  if (n < 4) throw std::invalid_argument("implicit_chord: need n >= 4");
  Topology t;
  t.storage_ = Storage::kImplicitChord;
  t.n_ = n;
  t.chord_table_ = std::make_shared<const std::vector<NodeId>>(chord_offset_table(n));
  t.chord_ = t.chord_table_->data();
  t.chord_degree_ = static_cast<std::uint32_t>(t.chord_table_->size());
  const NodeId* table = t.chord_;
  const std::uint32_t deg = t.chord_degree_;
  std::vector<NodeId> scratch(deg);
  t.diameter_ = pseudo_diameter_implicit(n, [&](NodeId v, auto&& visit) {
    const NodeId* lb = std::lower_bound(table, table + deg, n - v);
    const auto split = static_cast<std::uint32_t>(lb - table);
    for (std::uint32_t k = split; k < deg; ++k)
      visit(static_cast<NodeId>(static_cast<std::uint64_t>(v) + table[k] - n));
    for (std::uint32_t k = 0; k < split; ++k) visit(v + table[k]);
  });
  return t;
}

Topology Topology::implicit_grid(std::uint32_t rows, std::uint32_t cols,
                                 bool torus) {
  if (rows < 2 || cols < 2)
    throw std::invalid_argument("implicit_grid: need rows, cols >= 2");
  const std::uint64_t n64 = static_cast<std::uint64_t>(rows) * cols;
  if (n64 > kNeverSeen)
    throw std::invalid_argument("implicit_grid: rows * cols overflows NodeId");
  Topology t;
  t.storage_ = Storage::kImplicitGrid;
  t.n_ = static_cast<std::uint32_t>(n64);
  t.grid_rows_ = rows;
  t.grid_cols_ = cols;
  t.grid_torus_ = torus;
  t.diameter_ = pseudo_diameter_implicit(t.n_, [&](NodeId v, auto&& visit) {
    NodeId nb[4];
    const std::uint32_t deg = grid_neighbors_of(rows, cols, torus, v, nb);
    for (std::uint32_t i = 0; i < deg; ++i) visit(nb[i]);
  });
  return t;
}

GridShape grid_shape(std::uint32_t n) noexcept {
  GridShape shape;
  if (n == 0) return shape;
  std::uint32_t rows = 1;
  const auto limit = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
  for (std::uint32_t r = 1; r <= limit; ++r)
    if (n % r == 0) rows = r;
  shape.rows = rows;
  shape.cols = n / rows;
  return shape;
}

Topology make_topology(const TopologySpec& spec, std::uint32_t n, std::uint64_t seed) {
  const bool implicit =
      spec.backend == TopologyBackend::kImplicit ||
      (spec.backend == TopologyBackend::kAuto && n >= kImplicitAutoThreshold);
  switch (spec.kind) {
    case TopologyKind::kComplete:
      return Topology::complete_of(n);
    case TopologyKind::kChordRing:
      if (implicit) return Topology::implicit_chord(n);
      return Topology::of_graph(make_chord_graph(n));
    case TopologyKind::kRandomRegular: {
      if (spec.backend == TopologyBackend::kImplicit)
        throw std::invalid_argument(
            "make_topology: random-regular has no implicit backend");
      std::uint32_t d = spec.degree;
      if (d == 0) d = 1;
      if (d >= n) d = n - 1;
      if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;  // even degree sum
      if (d >= n) return Topology::complete_of(n);            // tiny n: K_n
      return Topology::of_graph(make_random_regular(n, d, seed));
    }
    case TopologyKind::kGrid2d: {
      const GridShape shape = grid_shape(n);
      if (shape.rows < 2)
        throw std::invalid_argument(
            "make_topology: grid needs a composite n >= 4 (n = " +
            std::to_string(n) +
            " has no rows x cols shape; a 1 x n \"grid\" is a path whose "
            "diameter n-1 invalidates grid-family results)");
      if (implicit)
        return Topology::implicit_grid(shape.rows, shape.cols, spec.torus);
      return Topology::of_grid(shape.rows, shape.cols, spec.torus);
    }
  }
  return Topology::complete_of(n);
}

}  // namespace drrg::sim
