#include "sim/topology.hpp"

#include <cmath>

#include "topology/builders.hpp"

namespace drrg::sim {

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kChordRing: return "chord-ring";
    case TopologyKind::kRandomRegular: return "random-regular";
    case TopologyKind::kGrid2d: return "grid";
  }
  return "complete";
}

std::optional<TopologySpec> topology_from_name(std::string_view name) noexcept {
  TopologySpec spec;
  if (name == "complete") {
    spec.kind = TopologyKind::kComplete;
  } else if (name == "chord-ring" || name == "chord") {
    spec.kind = TopologyKind::kChordRing;
  } else if (name == "random-regular" || name == "regular") {
    spec.kind = TopologyKind::kRandomRegular;
  } else if (name == "grid") {
    spec.kind = TopologyKind::kGrid2d;
  } else if (name == "torus") {
    spec.kind = TopologyKind::kGrid2d;
    spec.torus = true;
  } else {
    return std::nullopt;
  }
  return spec;
}

Topology Topology::of_grid(std::uint32_t rows, std::uint32_t cols, bool torus) {
  Topology t = of_graph(make_grid(rows, cols, torus));
  t.grid_rows_ = rows;
  t.grid_cols_ = cols;
  t.grid_torus_ = torus;
  return t;
}

Topology make_topology(const TopologySpec& spec, std::uint32_t n, std::uint64_t seed) {
  switch (spec.kind) {
    case TopologyKind::kComplete:
      return Topology::complete();
    case TopologyKind::kChordRing:
      return Topology::of_graph(make_chord_graph(n));
    case TopologyKind::kRandomRegular: {
      std::uint32_t d = spec.degree;
      if (d == 0) d = 1;
      if (d >= n) d = n - 1;
      if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;  // even degree sum
      if (d >= n) return Topology::complete();                // tiny n: K_n
      return Topology::of_graph(make_random_regular(n, d, seed));
    }
    case TopologyKind::kGrid2d: {
      std::uint32_t rows = 1;
      const auto limit = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
      for (std::uint32_t r = 1; r <= limit; ++r)
        if (n % r == 0) rows = r;
      return Topology::of_grid(rows, n / rows, spec.torus);
    }
  }
  return Topology::complete();
}

}  // namespace drrg::sim
