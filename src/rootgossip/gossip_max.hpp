#pragma once
// Phase III: Gossip-max (Algorithm 4) and Data-spread (Algorithm 5).
//
// All roots of the ranking forest run uniform gossip over the virtual
// clique G~ = clique(V~).  In each round of the *gossip procedure* every
// root selects a node uniformly at random from all of V and sends it its
// current maximum; a non-root forwards the message to its root (one extra
// round and message -- at most two hops of G per edge of G~, and the
// non-address-oblivious step, since the forwarding uses the root address
// learned in Phase II).  Theorem 5: after O(log n) such rounds a constant
// fraction of the roots holds the global Max.  In the *sampling procedure*
// every root inquires O(log n) random nodes; the inquired root replies
// directly to the origin.  Theorem 6: afterwards all roots know Max whp.
// Both procedures cost O(n) messages since |V~| = O(n / log n).
//
// Data-spread is Gossip-max started from a single root's key with every
// other root at "-infinity" (kKeyBottom).

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct GossipMaxConfig {
  /// Gossip-procedure rounds = gossip_multiplier * ceil(log2 n).
  double gossip_multiplier = 4.0;
  /// Sampling-procedure rounds = sampling_multiplier * ceil(log2 n).
  double sampling_multiplier = 2.0;
  /// Drain rounds appended after each procedure so in-flight forwarded
  /// messages settle.
  std::uint32_t drain_rounds = 4;
  /// Multiplies both procedures' round budgets (1.0 = the paper's O(log n)
  /// schedule).  The DRR pipelines raise it on diameter-heavy substrates
  /// where neighbor-constrained sampling spreads information in O(diam)
  /// rounds, not O(log n) -- see DrrGossipConfig::phase3_diameter_multiplier.
  double round_budget_scale = 1.0;
  /// On explicit topologies, leave the tree through a uniform random tree
  /// member (the G~ overlay then inherits the substrate's tree-adjacency
  /// connectivity).  No effect on the complete topology.  false restores
  /// the historical root-node-only sampling.
  bool member_relay = true;
  /// Disambiguates RNG streams when one pipeline runs the protocol twice.
  std::uint64_t stream_tag = 0;
};

struct GossipMaxResult {
  /// Final key at each node (meaningful at roots).
  std::vector<std::uint64_t> key;
  /// Snapshot of root keys when the gossip procedure ended (Theorem 5
  /// inspects this: the sampling procedure has not run yet).
  std::vector<std::uint64_t> key_after_gossip;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

/// Runs Gossip-max over the roots of `forest`.  `init_key[v]` is read for
/// every root v (non-root entries ignored).
[[nodiscard]] GossipMaxResult run_gossip_max(const Forest& forest,
                                             std::span<const std::uint64_t> init_key,
                                             const RngFactory& rngs,
                                             const sim::Scenario& scenario = {},
                                             GossipMaxConfig config = {});

/// Data-spread (Algorithm 5): diffuses `key` from `source_root` to all
/// roots; every other root starts at kKeyBottom.
[[nodiscard]] GossipMaxResult run_data_spread(const Forest& forest, NodeId source_root,
                                              std::uint64_t key, const RngFactory& rngs,
                                              const sim::Scenario& scenario = {},
                                              GossipMaxConfig config = {});

/// Fraction of roots whose key equals `key` (used by the Theorem 5/6
/// benches and the pipeline's consensus checks).
[[nodiscard]] double fraction_of_roots_with_key(const Forest& forest,
                                                std::span<const std::uint64_t> keys,
                                                std::uint64_t key);

}  // namespace drrg
