#include "rootgossip/gossip_max.hpp"

#include <stdexcept>

#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct GmMsg {
  enum class Kind : std::uint8_t { kGossip, kInquiry, kInquiryReply };
  Kind kind;
  std::uint64_t key = 0;
  sim::NodeId origin = sim::kNoNode;  // inquiring root (kInquiry)
};

struct GossipMaxProtocol {
  GossipMaxProtocol(const Forest& f, std::span<const std::uint64_t> init,
                    const GossipMaxConfig& cfg, std::uint32_t n)
      : forest(f),
        key(n, kKeyBottom),
        key_bits(64 + 2 * address_bits(n)),
        gossip_rounds(static_cast<std::uint32_t>(
            cfg.gossip_multiplier * static_cast<double>(ceil_log2(n)))),
        sampling_rounds(static_cast<std::uint32_t>(
            cfg.sampling_multiplier * static_cast<double>(ceil_log2(n)))),
        drain(cfg.drain_rounds) {
    for (NodeId r : f.roots()) key[r] = init[r];
  }

  const Forest& forest;
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> key_after_gossip;  // filled by the runner
  std::uint32_t key_bits;
  std::uint32_t gossip_rounds;
  std::uint32_t sampling_rounds;
  std::uint32_t drain;

  [[nodiscard]] std::uint32_t total_rounds() const {
    return gossip_rounds + drain + sampling_rounds + drain;
  }
  [[nodiscard]] bool in_gossip(std::uint32_t r) const { return r < gossip_rounds; }
  [[nodiscard]] bool in_sampling(std::uint32_t r) const {
    return r >= gossip_rounds + drain && r < gossip_rounds + drain + sampling_rounds;
  }

  void on_round(sim::Network<GmMsg>& net, sim::NodeId v) {
    if (!forest.is_root(v)) return;
    const std::uint32_t r = net.round();
    if (in_gossip(r)) {
      const sim::NodeId target = net.sample_peer(v);
      net.send(v, target, GmMsg{GmMsg::Kind::kGossip, key[v], sim::kNoNode}, key_bits);
    } else if (in_sampling(r)) {
      const sim::NodeId target = net.sample_peer(v);
      net.send(v, target, GmMsg{GmMsg::Kind::kInquiry, 0, v}, key_bits);
    }
  }

  void on_message(sim::Network<GmMsg>& net, sim::NodeId, sim::NodeId dst, const GmMsg& m) {
    if (!forest.is_root(dst)) {
      // Forward to this node's root: the address learned in Phase II.
      // One extra round and message -- the second hop of the G~ edge.
      net.send(dst, forest.root_of(dst), m, key_bits);
      return;
    }
    switch (m.kind) {
      case GmMsg::Kind::kGossip:
        key[dst] = std::max(key[dst], m.key);
        break;
      case GmMsg::Kind::kInquiry:
        // Reply directly to the inquiring root (its address travelled in
        // the message): one hop on G.
        net.send(dst, m.origin, GmMsg{GmMsg::Kind::kInquiryReply, key[dst], sim::kNoNode},
                 key_bits);
        break;
      case GmMsg::Kind::kInquiryReply:
        key[dst] = std::max(key[dst], m.key);
        break;
    }
  }
};

}  // namespace

GossipMaxResult run_gossip_max(const Forest& forest,
                               std::span<const std::uint64_t> init_key,
                               const RngFactory& rngs, const sim::Scenario& scenario,
                               GossipMaxConfig config) {
  const std::uint32_t n = forest.size();
  if (init_key.size() < n) throw std::invalid_argument("run_gossip_max: keys too short");

  sim::Network<GmMsg> net{n, rngs, scenario, derive_seed(0x3099, config.stream_tag)};
  GossipMaxProtocol proto{forest, init_key, config, n};

  // Run the gossip procedure (plus drain), snapshot for Theorem 5, then
  // the sampling procedure (plus drain).
  for (std::uint32_t r = 0; r < proto.gossip_rounds + proto.drain; ++r) net.step(proto);
  proto.key_after_gossip = proto.key;
  for (std::uint32_t r = 0; r < proto.sampling_rounds + proto.drain; ++r) net.step(proto);

  GossipMaxResult result;
  result.key = std::move(proto.key);
  result.key_after_gossip = std::move(proto.key_after_gossip);
  result.counters = net.counters();
  result.rounds = proto.total_rounds();
  return result;
}

GossipMaxResult run_data_spread(const Forest& forest, NodeId source_root,
                                std::uint64_t key, const RngFactory& rngs,
                                const sim::Scenario& scenario, GossipMaxConfig config) {
  if (!forest.is_root(source_root))
    throw std::invalid_argument("run_data_spread: source is not a root");
  std::vector<std::uint64_t> init(forest.size(), kKeyBottom);
  init[source_root] = key;
  return run_gossip_max(forest, init, rngs, scenario, config);
}

double fraction_of_roots_with_key(const Forest& forest,
                                  std::span<const std::uint64_t> keys,
                                  std::uint64_t key) {
  if (forest.roots().empty()) return 0.0;
  std::size_t holders = 0;
  for (NodeId r : forest.roots())
    if (keys[r] == key) ++holders;
  return static_cast<double>(holders) / static_cast<double>(forest.roots().size());
}

}  // namespace drrg
