#include "rootgossip/gossip_max.hpp"

#include <span>
#include <stdexcept>

#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct GmMsg {
  // kRelay*: first hop of the member relay on explicit topologies -- the
  // root hands its message to a uniform random member of its own tree,
  // which then samples *its* substrate neighbor.  This makes the G~
  // overlay inherit the tree-adjacency connectivity of the substrate
  // (connected whenever G is); sampling only the root node's own 2-4
  // neighbors strands keys in enclosed trees, the historical grid
  // consensus = 0 failure.
  enum class Kind : std::uint8_t {
    kGossip, kInquiry, kInquiryReply, kRelayGossip, kRelayInquiry
  };
  // Field order keeps the struct at 16 bytes (24-byte queue envelopes):
  // the queues are the engine's hottest memory traffic.
  std::uint64_t key = 0;
  sim::NodeId origin = sim::kNoNode;  // inquiring root (kInquiry)
  Kind kind = Kind::kGossip;
};

struct GossipMaxProtocol {
  GossipMaxProtocol(const Forest& f, std::span<const std::uint64_t> init,
                    const GossipMaxConfig& cfg, std::uint32_t n, bool relay_members)
      : forest(f),
        relay(relay_members),
        key(n, kKeyBottom),
        key_bits(64 + 2 * address_bits(n)),
        gossip_rounds(static_cast<std::uint32_t>(cfg.gossip_multiplier *
                                                 static_cast<double>(ceil_log2(n)) *
                                                 cfg.round_budget_scale)),
        sampling_rounds(static_cast<std::uint32_t>(cfg.sampling_multiplier *
                                                   static_cast<double>(ceil_log2(n)) *
                                                   cfg.round_budget_scale)),
        drain(cfg.drain_rounds) {
    for (NodeId r : f.roots()) key[r] = init[r];
  }

  const Forest& forest;
  bool relay;  // explicit topology: leave the tree via a random member
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> key_after_gossip;  // filled by the runner
  std::uint32_t key_bits;
  std::uint32_t gossip_rounds;
  std::uint32_t sampling_rounds;
  std::uint32_t drain;

  /// Only roots act in Algorithm 4/5; the engine thins its upcall scans
  /// to the (ascending) root list.
  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return forest.roots();
  }

  [[nodiscard]] std::uint32_t total_rounds() const {
    return gossip_rounds + drain + sampling_rounds + drain;
  }
  [[nodiscard]] bool in_gossip(std::uint32_t r) const { return r < gossip_rounds; }
  [[nodiscard]] bool in_sampling(std::uint32_t r) const {
    return r >= gossip_rounds + drain && r < gossip_rounds + drain + sampling_rounds;
  }

  void on_round(sim::Network<GmMsg>& net, sim::NodeId v) {
    const std::uint32_t r = net.round();
    const bool gossip = in_gossip(r);
    if (!gossip && !in_sampling(r)) return;
    if (relay) {
      // Pick the member that will carry this round's call (the root
      // itself carries it with probability 1/|tree|, the size-1 tree
      // degenerating to the direct path).
      const auto members = forest.tree_members(v);
      const auto m = static_cast<sim::NodeId>(
          members[net.node_rng(v).next_below(members.size())]);
      if (m != v) {
        net.send(v, m,
                 gossip ? GmMsg{key[v], sim::kNoNode, GmMsg::Kind::kRelayGossip}
                        : GmMsg{0, v, GmMsg::Kind::kRelayInquiry},
                 key_bits);
        return;
      }
    }
    const sim::NodeId target = net.sample_peer(v);
    net.send(v, target,
             gossip ? GmMsg{key[v], sim::kNoNode, GmMsg::Kind::kGossip}
                    : GmMsg{0, v, GmMsg::Kind::kInquiry},
             key_bits);
  }

  void on_message(sim::Network<GmMsg>& net, sim::NodeId, sim::NodeId dst, const GmMsg& m) {
    if (m.kind == GmMsg::Kind::kRelayGossip || m.kind == GmMsg::Kind::kRelayInquiry) {
      // Relay hop: this member samples *its* neighbor on the substrate.
      const sim::NodeId target = net.sample_peer(dst);
      net.send(dst, target,
               m.kind == GmMsg::Kind::kRelayGossip
                   ? GmMsg{m.key, sim::kNoNode, GmMsg::Kind::kGossip}
                   : GmMsg{0, m.origin, GmMsg::Kind::kInquiry},
               key_bits);
      return;
    }
    // A mid-run joiner that arrived after the forest was fixed is alive
    // but outside the overlay: it has no root to forward to, so the call
    // dies here exactly like a call to a crashed address.
    if (!forest.is_member(dst)) return;
    // root_of(v) == v iff v is a member root: one load replaces the
    // member/parent double lookup on the hottest delivery path.
    const sim::NodeId root = forest.root_of(dst);
    if (root != dst) {
      // Forward to this node's root: the address learned in Phase II.
      // One extra round and message -- the second hop of the G~ edge.
      net.send(dst, root, m, key_bits);
      return;
    }
    switch (m.kind) {
      case GmMsg::Kind::kGossip:
        key[dst] = std::max(key[dst], m.key);
        break;
      case GmMsg::Kind::kInquiry:
        // Reply directly to the inquiring root (its address travelled in
        // the message): one hop on G.
        net.send(dst, m.origin, GmMsg{key[dst], sim::kNoNode, GmMsg::Kind::kInquiryReply},
                 key_bits);
        break;
      case GmMsg::Kind::kInquiryReply:
        key[dst] = std::max(key[dst], m.key);
        break;
      default:
        break;  // relay kinds handled above
    }
  }
};

/// Flat fault-free executor: the same protocol unrolled onto two pooled
/// plain-array queues, with no engine dispatch, no crash/loss checks and
/// no reply machinery.  Every send, every delivery, every RNG draw and
/// every key update happens in exactly the order the Network path produces
/// (forwards queued during round r's delivery are carried over and
/// delivered at the *front* of round r+1's batch, ahead of that round's
/// fresh root sends -- the engine's leftover-outbox order), so counters
/// and results are bit-identical -- the golden determinism tests pin
/// this.  Roughly 2x the throughput of the generic path, which matters
/// because Phase III dominates pipeline wall-clock.  NOTE: the lazy
/// rng_at slots, the relay-carrier pick and the cur/nxt queue discipline
/// are mirrored in run_push_sum_flat (gossip_ave.cpp); keep the two in
/// lockstep or the checksums will tell you.
GossipMaxResult run_gossip_max_flat(const Forest& forest,
                                    std::span<const std::uint64_t> init_key,
                                    const RngFactory& rngs, const sim::Scenario& scenario,
                                    const GossipMaxConfig& config, std::uint32_t n) {
  const bool relay = config.member_relay && !scenario.topology.is_complete();
  GossipMaxProtocol proto{forest, init_key, config, n, relay};
  const std::uint64_t purpose = derive_seed(0x3099, config.stream_tag);
  const sim::Topology& topology = scenario.topology;
  const std::vector<NodeId>& roots = forest.roots();

  // Per-node sampling streams, identical to Network::node_rng(v): lazily
  // constructed (relay touches arbitrary members, roots always draw).
  std::vector<Rng> rng_slot(relay ? n : roots.size(), Rng{});
  std::vector<std::uint8_t> rng_init(relay ? n : roots.size(), 0);
  auto rng_at = [&](NodeId v, std::size_t slot) -> Rng& {
    if (!rng_init[slot]) {
      rng_slot[slot] = rngs.node_stream(v, purpose);
      rng_init[slot] = 1;
    }
    return rng_slot[slot];
  };

  struct Pending {
    NodeId dst;
    std::uint64_t key;
    NodeId origin;
    GmMsg::Kind kind;
  };
  std::vector<Pending> cur, nxt;
  cur.reserve(roots.size() * 2);
  nxt.reserve(roots.size() * 2);

  // Every message carries key_bits; locals keep the tallies in registers.
  std::uint64_t msgs = 0;
  std::uint64_t delivered = 0;
  const sim::Topology::PeerSampler sample = topology.sampler(n);
  const NodeId* root_of = forest.root_of_table();
  auto key_of = proto.key.data();
  for (std::uint32_t r = 0; r < proto.total_rounds(); ++r) {
    const bool gossip = proto.in_gossip(r);
    const bool sampling = proto.in_sampling(r);
    if (gossip || sampling) {
      for (std::size_t i = 0; i < roots.size(); ++i) {
        const NodeId v = roots[i];
        Rng& vrng = rng_at(v, relay ? v : i);
        ++msgs;
        if (relay) {
          const auto members = forest.tree_members(v);
          const auto m =
              static_cast<NodeId>(members[vrng.next_below(members.size())]);
          if (m != v) {
            cur.push_back(gossip
                              ? Pending{m, key_of[v], sim::kNoNode, GmMsg::Kind::kRelayGossip}
                              : Pending{m, 0, v, GmMsg::Kind::kRelayInquiry});
            continue;
          }
        }
        const NodeId target = sample(v, vrng);
        cur.push_back(gossip ? Pending{target, key_of[v], sim::kNoNode, GmMsg::Kind::kGossip}
                             : Pending{target, 0, v, GmMsg::Kind::kInquiry});
      }
    }
    for (const Pending& e : cur) {
      ++delivered;
      if (e.kind == GmMsg::Kind::kRelayGossip || e.kind == GmMsg::Kind::kRelayInquiry) {
        // Relay hop: this member samples *its* substrate neighbor.
        const NodeId target = sample(e.dst, rng_at(e.dst, e.dst));
        ++msgs;
        nxt.push_back(e.kind == GmMsg::Kind::kRelayGossip
                          ? Pending{target, e.key, sim::kNoNode, GmMsg::Kind::kGossip}
                          : Pending{target, 0, e.origin, GmMsg::Kind::kInquiry});
        continue;
      }
      const NodeId root = root_of[e.dst];
      if (root != e.dst) {  // second hop of the G~ edge, next round
        ++msgs;
        nxt.push_back(Pending{root, e.key, e.origin, e.kind});
        continue;
      }
      switch (e.kind) {
        case GmMsg::Kind::kGossip:
          key_of[e.dst] = std::max(key_of[e.dst], e.key);
          break;
        case GmMsg::Kind::kInquiry:
          ++msgs;
          nxt.push_back(Pending{e.origin, key_of[e.dst], sim::kNoNode,
                                GmMsg::Kind::kInquiryReply});
          break;
        case GmMsg::Kind::kInquiryReply:
          key_of[e.dst] = std::max(key_of[e.dst], e.key);
          break;
        default:
          break;  // relay kinds handled above
      }
    }
    cur.swap(nxt);
    nxt.clear();
    if (r + 1 == proto.gossip_rounds + proto.drain) proto.key_after_gossip = proto.key;
  }

  GossipMaxResult result;
  result.key = std::move(proto.key);
  result.key_after_gossip = std::move(proto.key_after_gossip);
  result.counters.sent = msgs;
  result.counters.delivered = delivered;
  result.counters.bits = msgs * proto.key_bits;
  result.counters.rounds = proto.total_rounds();
  result.rounds = proto.total_rounds();
  return result;
}

}  // namespace

GossipMaxResult run_gossip_max(const Forest& forest,
                               std::span<const std::uint64_t> init_key,
                               const RngFactory& rngs, const sim::Scenario& scenario,
                               GossipMaxConfig config) {
  const std::uint32_t n = forest.size();
  if (init_key.size() < n) throw std::invalid_argument("run_gossip_max: keys too short");

  if (scenario.faults.fault_free())
    return run_gossip_max_flat(forest, init_key, rngs, scenario, config, n);

  sim::Network<GmMsg> net{n, rngs, scenario, derive_seed(0x3099, config.stream_tag)};
  GossipMaxProtocol proto{forest, init_key, config, n,
                          config.member_relay && !scenario.topology.is_complete()};

  // Run the gossip procedure (plus drain), snapshot for Theorem 5, then
  // the sampling procedure (plus drain).
  for (std::uint32_t r = 0; r < proto.gossip_rounds + proto.drain; ++r) net.step(proto);
  proto.key_after_gossip = proto.key;
  for (std::uint32_t r = 0; r < proto.sampling_rounds + proto.drain; ++r) net.step(proto);

  GossipMaxResult result;
  result.key = std::move(proto.key);
  result.key_after_gossip = std::move(proto.key_after_gossip);
  result.counters = net.counters();
  result.rounds = proto.total_rounds();
  return result;
}

GossipMaxResult run_data_spread(const Forest& forest, NodeId source_root,
                                std::uint64_t key, const RngFactory& rngs,
                                const sim::Scenario& scenario, GossipMaxConfig config) {
  if (!forest.is_root(source_root))
    throw std::invalid_argument("run_data_spread: source is not a root");
  std::vector<std::uint64_t> init(forest.size(), kKeyBottom);
  init[source_root] = key;
  return run_gossip_max(forest, init, rngs, scenario, config);
}

double fraction_of_roots_with_key(const Forest& forest,
                                  std::span<const std::uint64_t> keys,
                                  std::uint64_t key) {
  if (forest.roots().empty()) return 0.0;
  std::size_t holders = 0;
  for (NodeId r : forest.roots())
    if (keys[r] == key) ++holders;
  return static_cast<double>(holders) / static_cast<double>(forest.roots().size());
}

}  // namespace drrg
