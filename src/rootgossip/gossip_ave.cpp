#include "rootgossip/gossip_ave.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct PsMsg {
  enum class Kind : std::uint8_t { kMass, kAck };
  Kind kind = Kind::kMass;
  double num = 0.0;
  double den = 0.0;
  // True on the initiating hop from the sending root; the first receiver
  // acknowledges it so the sender can detect a lost call.
  bool first_hop = false;
  // Contribution half-row (track_potential only; empty otherwise).  The
  // vector is bookkeeping for the Lemma 8 measurement, not protocol
  // payload -- bit accounting charges only the (num, den) pair.
  std::vector<double> y;
};

struct PushSumProtocol {
  PushSumProtocol(const Forest& f, std::span<const double> num0,
                  std::span<const double> den0, const PushSumConfig& cfg,
                  std::uint32_t n)
      : forest(f),
        forward(cfg.forward_via_trees),
        track(cfg.track_potential),
        recover(cfg.recover_lost_mass),
        num(n, 0.0),
        den(n, 0.0),
        pending(n),
        root_index(n, 0),
        push_rounds(static_cast<std::uint32_t>(
                        cfg.rounds_multiplier * static_cast<double>(ceil_log2(n))) +
                    cfg.extra_rounds),
        pair_bits(2 * 64 + address_bits(n)) {
    const auto& roots = f.roots();
    for (std::uint32_t i = 0; i < roots.size(); ++i) root_index[roots[i]] = i;
    for (NodeId r : roots) {
      num[r] = num0[r];
      den[r] = den0[r];
    }
    if (track) {
      // y_{0,i} = e_i over the m roots.
      Y.assign(roots.size(), std::vector<double>(roots.size(), 0.0));
      for (std::uint32_t i = 0; i < roots.size(); ++i) Y[i][i] = 1.0;
    }
  }

  /// The half sent this round, held until the first receiver's ack; a
  /// missing ack at round end means the call was lost (crashed target or
  /// loss coin) and the mass is re-absorbed, restoring the conservation
  /// law sum(num), sum(den) that the push-sum limit relies on.
  struct Outstanding {
    bool active = false;
    double num = 0.0;
    double den = 0.0;
    std::vector<double> y;
  };

  const Forest& forest;
  bool forward;
  bool track;
  bool recover;
  std::vector<double> num;
  std::vector<double> den;
  std::vector<Outstanding> pending;
  std::vector<std::uint32_t> root_index;
  std::vector<std::vector<double>> Y;  // contribution rows, root-index order
  std::uint32_t push_rounds;
  std::uint32_t pair_bits;

  void on_round(sim::Network<PsMsg>& net, sim::NodeId v) {
    if (!forest.is_root(v) || net.round() >= push_rounds) return;
    // Keep half, send half (computed before any of this round's receipts).
    num[v] *= 0.5;
    den[v] *= 0.5;
    PsMsg m{PsMsg::Kind::kMass, num[v], den[v], /*first_hop=*/true, {}};
    if (track) {
      auto& row = Y[root_index[v]];
      for (double& yj : row) yj *= 0.5;
      m.y = row;
    }
    if (recover) pending[v] = Outstanding{true, m.num, m.den, m.y};
    sim::NodeId target = net.sample_peer(v);
    if (!forward && forest.is_member(target)) {
      // Analysis mode: the G~ edge collapses to one direct hop, with the
      // selection probability still proportional to tree size.
      target = forest.root_of(target);
    }
    net.send(v, target, std::move(m), pair_bits);
  }

  void on_message(sim::Network<PsMsg>& net, sim::NodeId src, sim::NodeId dst, const PsMsg& m) {
    if (m.kind == PsMsg::Kind::kAck) return;  // acks ride the reply path
    if (recover && m.first_hop) {
      // Acknowledge on the established call: the sender now knows its
      // half arrived (replies are reliable in the §2 model).
      net.reply(dst, src, PsMsg{PsMsg::Kind::kAck, 0.0, 0.0, false, {}}, 1);
    }
    if (!forest.is_root(dst)) {
      PsMsg fwd = m;
      fwd.first_hop = false;
      net.send(dst, forest.root_of(dst), std::move(fwd), pair_bits);
      return;
    }
    num[dst] += m.num;
    den[dst] += m.den;
    if (track && !m.y.empty()) {
      auto& row = Y[root_index[dst]];
      for (std::size_t j = 0; j < row.size(); ++j) row[j] += m.y[j];
    }
  }

  void on_reply(sim::Network<PsMsg>&, sim::NodeId, sim::NodeId dst, const PsMsg& m) {
    if (m.kind == PsMsg::Kind::kAck) pending[dst].active = false;
  }

  void on_round_end(sim::Network<PsMsg>&, sim::NodeId v) {
    if (!recover || !pending[v].active) return;
    // No ack: the initiating call was lost.  Re-absorb the sent half so
    // no (num, den) mass leaves the system.
    num[v] += pending[v].num;
    den[v] += pending[v].den;
    if (track && !pending[v].y.empty()) {
      auto& row = Y[root_index[v]];
      for (std::size_t j = 0; j < row.size(); ++j) row[j] += pending[v].y[j];
    }
    pending[v].active = false;
  }

  /// Phi_t of Lemma 8 over the current contribution rows.
  [[nodiscard]] double potential() const {
    const auto m = static_cast<double>(Y.size());
    double phi = 0.0;
    for (const auto& row : Y) {
      double w = 0.0;
      for (double yj : row) w += yj;
      const double target = w / m;
      for (double yj : row) {
        const double d = yj - target;
        phi += d * d;
      }
    }
    return phi;
  }
};

}  // namespace

PushSumResult run_root_push_sum(const Forest& forest, std::span<const double> num0,
                                std::span<const double> den0, const RngFactory& rngs,
                                const sim::Scenario& scenario, PushSumConfig config) {
  const std::uint32_t n = forest.size();
  if (num0.size() < n || den0.size() < n)
    throw std::invalid_argument("run_root_push_sum: inputs too short");
  if (config.track_potential && config.forward_via_trees)
    throw std::invalid_argument(
        "run_root_push_sum: potential tracking requires analysis mode "
        "(forward_via_trees = false)");

  sim::Network<PsMsg> net{n, rngs, scenario, derive_seed(0xa4e, config.stream_tag)};
  PushSumProtocol proto{forest, num0, den0, config, n};

  PushSumResult result;
  const NodeId z = forest.largest_tree_root();
  const std::uint32_t drain = config.forward_via_trees ? 3 : 0;
  for (std::uint32_t r = 0; r < proto.push_rounds + drain; ++r) {
    net.step(proto);
    if (config.track_potential) {
      result.potential_per_round.push_back(proto.potential());
      result.z_estimate_per_round.push_back(
          proto.den[z] > 0.0 ? proto.num[z] / proto.den[z] : 0.0);
    }
  }

  result.num = std::move(proto.num);
  result.den = std::move(proto.den);
  result.estimate.assign(n, 0.0);
  for (NodeId r : forest.roots())
    if (result.den[r] > 0.0) result.estimate[r] = result.num[r] / result.den[r];
  result.counters = net.counters();
  result.rounds = proto.push_rounds + drain;
  return result;
}

}  // namespace drrg
