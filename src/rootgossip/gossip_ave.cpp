#include "rootgossip/gossip_ave.hpp"

#include <span>
#include <stdexcept>
#include <type_traits>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

// The protocol is compiled twice: the measurement variant (kTrack) carries
// the Lemma 8 contribution half-rows in every message, the production
// variant carries a 24-byte POD -- no vector member, no heap traffic on
// the engine's hottest queue.  Both draw identical randomness (streams are
// a function of seed/purpose only), so the split is observationally free.
struct NoPayload {};

template <bool kTrack>
struct PsMsg {
  // kRelayMass: first hop of the member relay on explicit topologies (the
  // root hands its half to a uniform random member of its own tree, which
  // samples *its* substrate neighbor) -- see GmMsg for the rationale.
  enum class Kind : std::uint8_t { kMass, kAck, kRelayMass };
  // Field order keeps the production variant at 24 bytes (32-byte queue
  // envelopes): the queues are the engine's hottest memory traffic.
  double num = 0.0;
  double den = 0.0;
  // Sender-local sequence number of the initiating half, echoed by the
  // first-hop ack: under event-time latency several halves from one root
  // are outstanding at once, and the ack must resolve the right one.
  std::uint32_t seq = 0;
  // True on the initiating hop from the sending root; the first receiver
  // acknowledges it so the sender can detect a lost call.
  bool first_hop = false;
  Kind kind = Kind::kMass;
  // Contribution half-row (kTrack only).  The vector is bookkeeping for
  // the Lemma 8 measurement, not protocol payload -- bit accounting
  // charges only the (num, den) pair.
  [[no_unique_address]] std::conditional_t<kTrack, std::vector<double>, NoPayload> y{};
};

template <bool kTrack>
struct PushSumProtocol {
  using Msg = PsMsg<kTrack>;

  PushSumProtocol(const Forest& f, std::span<const double> num0,
                  std::span<const double> den0, const PushSumConfig& cfg,
                  std::uint32_t n, bool relay_members, std::uint32_t latency_bound)
      : forest(f),
        forward(cfg.forward_via_trees),
        relay(relay_members && cfg.forward_via_trees),
        recover(cfg.recover_lost_mass),
        ack_deadline(latency_bound),
        num(n, 0.0),
        den(n, 0.0),
        pending(n),
        next_seq(n, 0),
        root_index(n, 0),
        push_rounds(static_cast<std::uint32_t>(cfg.rounds_multiplier *
                                               static_cast<double>(ceil_log2(n)) *
                                               cfg.round_budget_scale) +
                    cfg.extra_rounds),
        pair_bits(2 * 64 + address_bits(n)) {
    const auto& roots = f.roots();
    for (std::uint32_t i = 0; i < roots.size(); ++i) root_index[roots[i]] = i;
    for (NodeId r : roots) {
      num[r] = num0[r];
      den[r] = den0[r];
    }
    if constexpr (kTrack) {
      // y_{0,i} = e_i over the m roots.
      Y.assign(roots.size(), std::vector<double>(roots.size(), 0.0));
      for (std::uint32_t i = 0; i < roots.size(); ++i) Y[i][i] = 1.0;
    }
  }

  /// A sent half held until the first receiver's ack.  The re-absorption
  /// deadline is latency-aware: a half sent at round S arrives at the
  /// latest in round S + bound (the model's maximum delay) and its ack
  /// rides the reliable reply path of that same round, so no ack by the
  /// end of round S + bound means the call was lost (crashed target, loss
  /// coin, partition cut) and the mass is re-absorbed -- restoring the
  /// conservation law sum(num), sum(den) that the push-sum limit relies
  /// on, without double-counting halves that were merely delayed.
  struct Outstanding {
    std::uint32_t seq = 0;
    std::uint32_t sent_round = 0;
    double num = 0.0;
    double den = 0.0;
    [[no_unique_address]] std::conditional_t<kTrack, std::vector<double>, NoPayload> y{};
  };

  const Forest& forest;
  bool forward;
  bool relay;  // explicit topology: leave the tree via a random member
  bool recover;
  std::uint32_t ack_deadline;  // latency bound; 0 = same-round resolution
  std::vector<double> num;
  std::vector<double> den;
  std::vector<std::vector<Outstanding>> pending;  // per-root outstanding halves
  std::vector<std::uint32_t> next_seq;
  std::vector<std::uint32_t> root_index;
  std::vector<std::vector<double>> Y;  // contribution rows, root-index order
  std::uint32_t push_rounds;
  std::uint32_t pair_bits;

  /// Only roots push mass or hold pending halves; the engine thins its
  /// per-round upcall scans to the (ascending) root list.
  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return forest.roots();
  }

  void on_round(sim::Network<Msg>& net, sim::NodeId v) {
    if (net.round() >= push_rounds) return;
    // Keep half, send half (computed before any of this round's receipts).
    num[v] *= 0.5;
    den[v] *= 0.5;
    Msg m{num[v], den[v], next_seq[v]++, /*first_hop=*/true, Msg::Kind::kMass, {}};
    if constexpr (kTrack) {
      auto& row = Y[root_index[v]];
      for (double& yj : row) yj *= 0.5;
      m.y = row;
    }
    if (recover) {
      if constexpr (kTrack) {
        pending[v].push_back(Outstanding{m.seq, net.round(), m.num, m.den, m.y});
      } else {
        pending[v].push_back(Outstanding{m.seq, net.round(), m.num, m.den, {}});
      }
    }
    if (relay) {
      const auto members = forest.tree_members(v);
      const auto carrier = static_cast<sim::NodeId>(
          members[net.node_rng(v).next_below(members.size())]);
      if (carrier != v) {
        m.kind = Msg::Kind::kRelayMass;
        net.send(v, carrier, std::move(m), pair_bits);
        return;
      }
    }
    sim::NodeId target = net.sample_peer(v);
    if (!forward && forest.is_member(target)) {
      // Analysis mode: the G~ edge collapses to one direct hop, with the
      // selection probability still proportional to tree size.
      target = forest.root_of(target);
    }
    net.send(v, target, std::move(m), pair_bits);
  }

  void on_message(sim::Network<Msg>& net, sim::NodeId src, sim::NodeId dst, const Msg& m) {
    if (m.kind == Msg::Kind::kAck) return;  // acks ride the reply path
    if (!forest.is_member(dst)) {
      // A mid-run joiner outside the forest overlay cannot forward the
      // share (it has no root).  Crucially it must not ack either: the
      // sender's recovery deadline then re-absorbs the half, so no mass
      // leaks into bystanders.
      return;
    }
    if (recover && m.first_hop) {
      // Acknowledge on the established call: the sender now knows its
      // half arrived (replies are reliable in the §2 model).
      net.reply(dst, src, Msg{0.0, 0.0, m.seq, false, Msg::Kind::kAck, {}}, 1);
    }
    if (m.kind == Msg::Kind::kRelayMass) {
      // Relay hop: this member samples *its* substrate neighbor.
      Msg fwd = m;
      fwd.first_hop = false;
      fwd.kind = Msg::Kind::kMass;
      const sim::NodeId target = net.sample_peer(dst);
      net.send(dst, target, std::move(fwd), pair_bits);
      return;
    }
    // root_of(v) == v iff v is a member root: one load on the hot path.
    const sim::NodeId root = forest.root_of(dst);
    if (root != dst) {
      Msg fwd = m;
      fwd.first_hop = false;
      net.send(dst, root, std::move(fwd), pair_bits);
      return;
    }
    num[dst] += m.num;
    den[dst] += m.den;
    if constexpr (kTrack) {
      if (!m.y.empty()) {
        auto& row = Y[root_index[dst]];
        for (std::size_t j = 0; j < row.size(); ++j) row[j] += m.y[j];
      }
    }
  }

  void on_reply(sim::Network<Msg>&, sim::NodeId, sim::NodeId dst, const Msg& m) {
    if (m.kind != Msg::Kind::kAck) return;
    auto& q = pending[dst];
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].seq == m.seq) {
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));  // stable: FP order
        break;
      }
    }
  }

  void on_round_end(sim::Network<Msg>& net, sim::NodeId v) {
    if (!recover || pending[v].empty()) return;
    // Every half whose latest possible ack round has passed was lost:
    // re-absorb it so no (num, den) mass leaves the system.  Halves still
    // inside the latency window stay parked.
    auto& q = pending[v];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].sent_round + ack_deadline <= net.round()) {
        num[v] += q[i].num;
        den[v] += q[i].den;
        if constexpr (kTrack) {
          if (!q[i].y.empty()) {
            auto& row = Y[root_index[v]];
            for (std::size_t j = 0; j < row.size(); ++j) row[j] += q[i].y[j];
          }
        }
      } else {
        if (keep != i) q[keep] = std::move(q[i]);
        ++keep;
      }
    }
    q.resize(keep);
  }

  /// Phi_t of Lemma 8 over the current contribution rows.
  [[nodiscard]] double potential() const {
    const auto m = static_cast<double>(Y.size());
    double phi = 0.0;
    for (const auto& row : Y) {
      double w = 0.0;
      for (double yj : row) w += yj;
      const double target = w / m;
      for (double yj : row) {
        const double d = yj - target;
        phi += d * d;
      }
    }
    return phi;
  }
};

template <bool kTrack>
PushSumResult run_push_sum_impl(const Forest& forest, std::span<const double> num0,
                                std::span<const double> den0, const RngFactory& rngs,
                                const sim::Scenario& scenario,
                                const PushSumConfig& config) {
  const std::uint32_t n = forest.size();
  sim::Network<PsMsg<kTrack>> net{n, rngs, scenario, derive_seed(0xa4e, config.stream_tag)};
  PushSumProtocol<kTrack> proto{forest, num0, den0, config, n,
                                config.member_relay && !scenario.topology.is_complete(),
                                scenario.faults.latency.bound()};

  PushSumResult result;
  const NodeId z = forest.largest_tree_root();
  // The forwarding drain flushes the G~ relay chain (up to three hops);
  // under event-time latency every hop can additionally sit in flight for
  // the model's bound, so the drain stretches accordingly (exactly 3 for
  // the zero model -- the historical schedule).
  const std::uint32_t drain =
      config.forward_via_trees ? 3 * (1 + scenario.faults.latency.bound()) : 0;
  for (std::uint32_t r = 0; r < proto.push_rounds + drain; ++r) {
    net.step(proto);
    if constexpr (kTrack) {
      result.potential_per_round.push_back(proto.potential());
      result.z_estimate_per_round.push_back(
          proto.den[z] > 0.0 ? proto.num[z] / proto.den[z] : 0.0);
    }
  }

  result.num = std::move(proto.num);
  result.den = std::move(proto.den);
  result.estimate.assign(n, 0.0);
  for (NodeId r : forest.roots())
    if (result.den[r] > 0.0) result.estimate[r] = result.num[r] / result.den[r];
  result.counters = net.counters();
  result.rounds = proto.push_rounds + drain;
  return result;
}

/// Flat fault-free executor (production mode: forwarding on, no potential
/// tracking).  The same protocol unrolled onto two pooled plain-array
/// queues: forwards queued during round r's delivery are carried over and
/// delivered at the *front* of round r+1's batch, ahead of that round's
/// fresh root pushes (the engine's leftover-outbox order), and (num, den)
/// absorption happens in exact delivery order -- so every counter and
/// every IEEE-754 accumulation is bit-identical to the Network path (the
/// golden determinism tests pin this).  With no faults possible, every
/// first hop is acknowledged: the ack is pure message accounting and the
/// lost-mass bookkeeping never fires.  NOTE: the lazy rng_at slots, the
/// relay-carrier pick and the cur/nxt queue discipline mirror
/// run_gossip_max_flat (gossip_max.cpp); keep the two in lockstep or the
/// checksums will tell you.
PushSumResult run_push_sum_flat(const Forest& forest, std::span<const double> num0,
                                std::span<const double> den0, const RngFactory& rngs,
                                const sim::Scenario& scenario,
                                const PushSumConfig& config) {
  const std::uint32_t n = forest.size();
  const bool relay = config.member_relay && !scenario.topology.is_complete();
  PushSumProtocol<false> proto{forest, num0, den0, config, n, relay,
                               /*latency_bound=*/0};  // flat = fault-free
  const std::uint64_t purpose = derive_seed(0xa4e, config.stream_tag);
  const sim::Topology& topology = scenario.topology;
  const std::vector<NodeId>& roots = forest.roots();

  // Per-node sampling streams, identical to Network::node_rng(v): lazily
  // constructed (relay touches arbitrary members, roots always draw).
  std::vector<Rng> rng_slot(relay ? n : roots.size(), Rng{});
  std::vector<std::uint8_t> rng_init(relay ? n : roots.size(), 0);
  auto rng_at = [&](NodeId v, std::size_t slot) -> Rng& {
    if (!rng_init[slot]) {
      rng_slot[slot] = rngs.node_stream(v, purpose);
      rng_init[slot] = 1;
    }
    return rng_slot[slot];
  };

  enum class Hop : std::uint8_t { kFirst, kRelayFirst, kForward };
  struct Pending {
    NodeId dst;
    Hop hop;
    double num;
    double den;
  };
  std::vector<Pending> cur, nxt;
  cur.reserve(roots.size() * 2);
  nxt.reserve(roots.size() * 2);

  // Locals keep the tallies in registers; (num, den) pairs all carry
  // pair_bits and acks carry 1 bit, so the bit total factors out.
  std::uint64_t pair_msgs = 0;
  std::uint64_t pairs_delivered = 0;
  std::uint64_t acks = 0;
  const sim::Topology::PeerSampler sample = topology.sampler(n);
  const NodeId* root_of = forest.root_of_table();
  double* num = proto.num.data();
  double* den = proto.den.data();
  const bool recover = proto.recover;
  const std::uint32_t drain = 3;  // forward_via_trees
  for (std::uint32_t r = 0; r < proto.push_rounds + drain; ++r) {
    if (r < proto.push_rounds) {
      for (std::size_t i = 0; i < roots.size(); ++i) {
        const NodeId v = roots[i];
        num[v] *= 0.5;
        den[v] *= 0.5;
        Rng& vrng = rng_at(v, relay ? v : i);
        ++pair_msgs;
        if (relay) {
          const auto members = forest.tree_members(v);
          const auto carrier =
              static_cast<NodeId>(members[vrng.next_below(members.size())]);
          if (carrier != v) {
            cur.push_back(Pending{carrier, Hop::kRelayFirst, num[v], den[v]});
            continue;
          }
        }
        const NodeId target = sample(v, vrng);
        cur.push_back(Pending{target, Hop::kFirst, num[v], den[v]});
      }
    }
    for (const Pending& e : cur) {
      ++pairs_delivered;
      if (recover && e.hop != Hop::kForward) ++acks;  // 1-bit ack, established call
      if (e.hop == Hop::kRelayFirst) {
        // Relay hop: this member samples *its* substrate neighbor.
        const NodeId target = sample(e.dst, rng_at(e.dst, e.dst));
        ++pair_msgs;
        nxt.push_back(Pending{target, Hop::kForward, e.num, e.den});
        continue;
      }
      const NodeId root = root_of[e.dst];
      if (root != e.dst) {  // second hop of the G~ edge, next round
        ++pair_msgs;
        nxt.push_back(Pending{root, Hop::kForward, e.num, e.den});
        continue;
      }
      num[e.dst] += e.num;
      den[e.dst] += e.den;
    }
    cur.swap(nxt);
    nxt.clear();
  }

  PushSumResult result;
  result.num = std::move(proto.num);
  result.den = std::move(proto.den);
  result.estimate.assign(n, 0.0);
  for (NodeId v : roots)
    if (result.den[v] > 0.0) result.estimate[v] = result.num[v] / result.den[v];
  result.counters.sent = pair_msgs + acks;
  result.counters.delivered = pairs_delivered + acks;
  result.counters.bits = pair_msgs * proto.pair_bits + acks;
  result.counters.rounds = proto.push_rounds + drain;
  result.rounds = proto.push_rounds + drain;
  return result;
}

}  // namespace

PushSumResult run_root_push_sum(const Forest& forest, std::span<const double> num0,
                                std::span<const double> den0, const RngFactory& rngs,
                                const sim::Scenario& scenario, PushSumConfig config) {
  const std::uint32_t n = forest.size();
  if (num0.size() < n || den0.size() < n)
    throw std::invalid_argument("run_root_push_sum: inputs too short");
  if (config.track_potential && config.forward_via_trees)
    throw std::invalid_argument(
        "run_root_push_sum: potential tracking requires analysis mode "
        "(forward_via_trees = false)");
  if (!config.track_potential && config.forward_via_trees && scenario.faults.fault_free())
    return run_push_sum_flat(forest, num0, den0, rngs, scenario, config);
  return config.track_potential
             ? run_push_sum_impl<true>(forest, num0, den0, rngs, scenario, config)
             : run_push_sum_impl<false>(forest, num0, den0, rngs, scenario, config);
}

}  // namespace drrg
