#pragma once
// Order-preserving encodings used by Gossip-max.
//
// Gossip-max is agnostic to what it maximises: it diffuses 64-bit keys
// under the max operator.  Two key families are used:
//   * encode_ordered(double): a strictly order-preserving bijection from
//     non-NaN doubles to uint64 (the classic IEEE-754 trick), so Max/Min
//     of real values ride on integer comparison;
//   * encode_size_id(size, id): lexicographic (tree size, smaller-id-wins)
//     keys used by DRR-gossip-ave to elect the largest-tree root z.
// Key 0 (kKeyBottom) is strictly below every encoded value, playing the
// role of "-infinity" in Data-spread (Algorithm 5).

#include <bit>
#include <cstdint>
#include <limits>

namespace drrg {

inline constexpr std::uint64_t kKeyBottom = 0;

/// Strictly monotone double -> uint64 (NaN is the caller's bug).
/// Every encoded value is > kKeyBottom (even -infinity).
[[nodiscard]] inline std::uint64_t encode_ordered(double d) noexcept {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  constexpr std::uint64_t sign = std::uint64_t{1} << 63;
  return (bits & sign) ? ~bits : (bits | sign);
}

/// Inverse of encode_ordered.
[[nodiscard]] inline double decode_ordered(std::uint64_t key) noexcept {
  constexpr std::uint64_t sign = std::uint64_t{1} << 63;
  const std::uint64_t bits = (key & sign) ? (key ^ sign) : ~key;
  return std::bit_cast<double>(bits);
}

/// Key ordering (size asc, then id desc) so that max-diffusion elects the
/// largest tree, breaking ties towards the smaller root id -- the same
/// (size, id) order as Forest::largest_tree_root().
[[nodiscard]] inline std::uint64_t encode_size_id(std::uint32_t size,
                                                  std::uint32_t id) noexcept {
  return (static_cast<std::uint64_t>(size) << 32) |
         (std::numeric_limits<std::uint32_t>::max() - id);
}

[[nodiscard]] inline std::uint32_t decode_size(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key >> 32);
}

[[nodiscard]] inline std::uint32_t decode_id(std::uint64_t key) noexcept {
  return std::numeric_limits<std::uint32_t>::max() -
         static_cast<std::uint32_t>(key & 0xffffffffULL);
}

}  // namespace drrg
