#pragma once
// Phase III: Gossip-ave (Algorithm 6) -- push-sum over the forest roots.
//
// Every root holds a pair (s, g) initialised from Convergecast-sum (local
// value sum, tree size).  Each round it keeps (s/2, g/2) and sends the
// other half to a node selected uniformly at random from all of V; a
// non-root forwards to its root (the two-hop G~ edge).  All estimates
// s/g converge to sum(v_i)/n = Ave; Theorem 7 guarantees relative error
// <= 2/(n^alpha - 1) at the largest-tree root z after O(log n) rounds.
//
// The implementation is generic in the pair (num, den), which also yields
// Sum and Count: start den as the indicator of a single designated root
// and the common ratio limit becomes sum(num)/1.
//
// Analysis mode (forward_via_trees = false) delivers straight to the
// selected node's root in the same round -- exactly the G~ = clique(V~)
// process Lemma 8 analyses, with selection probability proportional to
// tree size -- and can track the contribution vectors y_{t,i} to report
// the potential Phi_t = sum_{i,j} (y_{t,i,j} - w_{t,i}/m)^2 per round.

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct PushSumConfig {
  /// Push rounds = rounds_multiplier * ceil(log2 n) + extra_rounds.
  double rounds_multiplier = 4.0;
  std::uint32_t extra_rounds = 8;
  /// Multiplies the push-round budget (1.0 = the paper's O(log n)
  /// schedule); raised by the DRR pipelines on diameter-heavy substrates.
  double round_budget_scale = 1.0;
  /// On explicit topologies, leave the tree through a uniform random tree
  /// member (see GossipMaxConfig::member_relay).  No effect on K_n.
  bool member_relay = true;
  /// Realistic mode: route via the selected node (2 hops per G~ edge).
  /// Analysis mode (false): deliver directly to the selected node's root.
  bool forward_via_trees = true;
  /// Re-absorb a pushed half whose initiating call was lost (crashed
  /// target or loss coin), detected via a 1-bit ack on the established
  /// call.  Restores push-sum's conservation law -- without it, mass
  /// leaking to crashed nodes skews Ave/Sum/Count badly under crashes
  /// even at loss 0 (the historical Count drift).  Forward-hop losses
  /// (probability loss_prob per hop) are still unrecovered: the residual
  /// drift is O(loss_prob), zero at loss 0.
  bool recover_lost_mass = true;
  /// Routed pipelines only (sparse/chord substrates): arm the hop-level
  /// carry-ack.  Every forwarded share hop becomes a custody transfer --
  /// the sender parks the mass until the next carrier acks on the
  /// established call, and re-homes it on a fresh route when the ack
  /// window lapses (lost hop, carrier crashed mid-flight, or a route
  /// stranded by dead lattice regions).  Closes the per-hop O(loss) mass
  /// leak recover_lost_mass cannot see (that ack covers only the
  /// initiating call).  Off by default: armed runs trade ~1 ack per hop
  /// and a wider upcall scan for conservation under loss.
  bool hop_carry_ack = false;
  /// Track contribution vectors (O(m^2) memory; analysis mode only).
  bool track_potential = false;
  /// Disambiguates RNG streams when one pipeline runs the protocol twice.
  std::uint64_t stream_tag = 0;
};

struct PushSumResult {
  std::vector<double> num;       ///< final numerator at each node (roots)
  std::vector<double> den;       ///< final denominator at each node (roots)
  std::vector<double> estimate;  ///< num/den where den > 0, else 0
  sim::Counters counters;
  std::uint32_t rounds = 0;
  /// track_potential: Phi_t after each round (Lemma 8 predicts halving).
  std::vector<double> potential_per_round;
  /// track_potential: estimate at the largest-tree root z after each round
  /// (Theorem 7's subject).
  std::vector<double> z_estimate_per_round;
};

/// Runs push-sum over the roots of `forest` with initial pairs
/// (num0[r], den0[r]) (non-root entries ignored).
[[nodiscard]] PushSumResult run_root_push_sum(const Forest& forest,
                                              std::span<const double> num0,
                                              std::span<const double> den0,
                                              const RngFactory& rngs,
                                              const sim::Scenario& scenario = {},
                                              PushSumConfig config = {});

}  // namespace drrg
