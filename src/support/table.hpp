#pragma once
// Minimal aligned-console-table writer.  The bench binaries reproduce the
// paper's Table 1 and per-theorem series as plain-text tables on stdout
// (in addition to google-benchmark counters), and the examples use it to
// report phase metrics.

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace drrg {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; values are appended with add()/add_int()/add_real().
  Table& row();
  Table& add(std::string cell);
  Table& add_int(long long v);
  Table& add_uint(unsigned long long v);
  Table& add_real(double v, int precision = 3);

  /// Convenience: whole row at once.
  Table& add_row(std::initializer_list<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  /// Renders with per-column width alignment and a rule under the header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace drrg
