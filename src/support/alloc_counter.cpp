#include "support/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

namespace drrg::support {

std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace drrg::support

// Counting replacement of the global allocator (linking binaries only).
// GCC flags malloc-backed operator new paired with free() as a mismatch
// even though that pairing is exactly what the replacement defines;
// silence it for these definitions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
