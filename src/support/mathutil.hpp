#pragma once
// Small integer/real math helpers used throughout the complexity
// accounting: the paper's bounds are expressed in terms of log n,
// log log n and the harmonic numbers, so these appear everywhere in
// benches and tests.

#include <cstdint>

namespace drrg {

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// Smallest power of two >= x.
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::uint64_t{1} << ceil_log2(x);
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// log2(n) as a real, clamped below at 1 so it can safely appear in
/// denominators of normalised complexity columns for tiny n.
[[nodiscard]] double log2_clamped(double n) noexcept;

/// ln(n) clamped below at 1.
[[nodiscard]] double ln_clamped(double n) noexcept;

/// log2(log2(n)) clamped below at 1 -- the "log log n" of the paper's
/// message bounds.
[[nodiscard]] double loglog2_clamped(double n) noexcept;

/// n-th harmonic number H_n = sum_{i=1..n} 1/i (exact summation for the
/// sizes we simulate; used by tree-count predictions).
[[nodiscard]] double harmonic(std::uint64_t n) noexcept;

/// The DRR probe budget of Algorithm 1: log2(n) - 1 samples, at least 1.
[[nodiscard]] constexpr std::uint32_t drr_probe_budget(std::uint64_t n) noexcept {
  const std::uint32_t lg = ceil_log2(n);
  return lg > 1 ? lg - 1 : 1;
}

/// Number of bits needed to address n nodes (message-size accounting:
/// the model caps messages at O(log n + log s) bits).
[[nodiscard]] constexpr std::uint32_t address_bits(std::uint64_t n) noexcept {
  return ceil_log2(n < 2 ? 2 : n);
}

}  // namespace drrg
