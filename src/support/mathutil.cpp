#include "support/mathutil.hpp"

#include <cmath>

namespace drrg {

double log2_clamped(double n) noexcept {
  const double v = std::log2(n);
  return v < 1.0 ? 1.0 : v;
}

double ln_clamped(double n) noexcept {
  const double v = std::log(n);
  return v < 1.0 ? 1.0 : v;
}

double loglog2_clamped(double n) noexcept {
  const double v = std::log2(log2_clamped(n));
  return v < 1.0 ? 1.0 : v;
}

double harmonic(std::uint64_t n) noexcept {
  // Exact for small n; Euler-Maclaurin beyond 1e6 keeps this O(1) while
  // staying far below 1e-12 relative error.
  if (n == 0) return 0.0;
  if (n <= 1'000'000) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  constexpr double kEulerGamma = 0.57721566490153286060651209;
  const double x = static_cast<double>(n);
  return std::log(x) + kEulerGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
}

}  // namespace drrg
