#pragma once
// Deterministic parallel map over an index range.
//
// Monte-Carlo sweeps (api::run_trials, api::run_matrix) and intra-run
// fan-outs (the quantile bracket, the histogram's rank queries) are
// embarrassingly parallel: every task is a pure function of its index
// (all randomness flows from derived seeds, no globals are mutated).  The
// executor therefore guarantees *bit-identical* output for any thread
// count, including 1:
//
//   * the task list and each task's inputs are fixed up front (derived
//     seeds / salted stream tags, never execution order);
//   * workers pull task indices from an atomic counter and write results
//     into a pre-sized slot array -- results are ordered by task index,
//     not completion order;
//   * nothing about scheduling feeds back into any task's computation.
//
// So `threads` is purely a wall-clock knob; correctness tests can run the
// same sweep at --threads 1/4/8 and memcmp the reports.  Lives in
// support/ so the aggregate layer can nest fan-outs without depending on
// the api facade; api/parallel.hpp re-exports the historical names.

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace drrg {

/// Resolves a thread-count request: 0 = one thread per hardware core,
/// otherwise the request itself, clamped to the task count.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested, std::size_t tasks) {
  unsigned t = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (tasks < t) t = static_cast<unsigned>(tasks == 0 ? 1 : tasks);
  return t;
}

/// Runs fn(i) for every i in [0, count) on `threads` workers and returns
/// the results ordered by index.  With threads <= 1 the loop runs inline
/// (no thread is spawned).  The first exception (by task index) is
/// rethrown after all workers join.
template <class F>
auto parallel_map(std::size_t count, unsigned threads, F&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(count);
  if (count == 0) return results;

  const unsigned workers = resolve_threads(threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  // One error slot per *worker*, not per task: each worker keeps only the
  // lowest-index exception it saw, and the winner across workers is the
  // lowest-index exception overall -- first-error-by-index semantics
  // without an O(tasks) bookkeeping array on large sweeps.
  struct WorkerError {
    std::size_t index;
    std::exception_ptr error;
  };
  std::atomic<std::size_t> next{0};
  std::vector<WorkerError> errors(workers, WorkerError{0, nullptr});
  auto worker = [&](unsigned w) {
    WorkerError& slot = errors[w];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        if (slot.error == nullptr || i < slot.index) {
          slot.index = i;
          slot.error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
  const WorkerError* first = nullptr;
  for (const WorkerError& e : errors)
    if (e.error != nullptr && (first == nullptr || e.index < first->index)) first = &e;
  if (first != nullptr) std::rethrow_exception(first->error);
  return results;
}

}  // namespace drrg
