#pragma once
// Statistics utilities for the experiment harnesses.
//
// The paper states "with high probability" bounds; empirically we validate
// them by running many independent seeds and summarising the distribution
// of the measured quantity (mean, max, quantiles) and by fitting the
// predicted shape (e.g. messages ~ a + b * n log log n) with least squares
// to confirm the scaling exponent/normalised constant is flat.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drrg {

/// Welford online mean/variance accumulator.  Numerically stable for the
/// long Monte-Carlo streams the benches generate.
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;   // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of a normal-approximation 95% confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a full sample (kept in memory): adds exact quantiles on top of
/// the running moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double q95 = 0.0;
  double max = 0.0;
};

/// Computes the summary of a sample (copies + sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Result of an ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// OLS fit; xs and ys must be equal-length with >= 2 points.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = c * x^p in log-log space; returns {log c, p, r2-in-log-space}.
/// Used to estimate scaling exponents (e.g. total messages vs n).
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket.  Used for tree-size and height distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Multi-line ASCII rendering (for examples / EXPERIMENTS.md appendix).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pearson chi-square statistic of observed counts vs uniform expectation;
/// used by the Chord sampling near-uniformity test.
[[nodiscard]] double chi_square_uniform(std::span<const std::uint64_t> observed);

}  // namespace drrg
