#pragma once
// Pooled per-thread scratch buffers for per-run payload staging.
//
// The pipelines stage Phase II/III payloads (root addresses, initial keys,
// push-sum mass vectors, final root values) in n-sized vectors that live
// only for the duration of one phase call.  Allocating them fresh every
// run is the payload-side analog of the pre-PR-4 envelope queues; pooling
// them the same way (capacity survives, contents are fully overwritten by
// assign() before every use) makes repeated runs -- Monte-Carlo trials,
// bench iterations, the streaming workloads the ROADMAP aims at --
// allocation-free in steady state.
//
// Each (T, Tag) pair owns a distinct thread_local buffer, so call sites
// with overlapping lifetimes (a staging vector spanning a nested phase
// call) pick distinct tags and can never alias.  Thread-locality keeps the
// trial executor's workers independent: determinism never depended on
// payload storage addresses, only on values, which assign() fully rewrites.

#include <vector>

namespace drrg::support {

template <class T, int Tag>
[[nodiscard]] inline std::vector<T>& scratch_buffer() {
  thread_local std::vector<T> buf;
  return buf;
}

}  // namespace drrg::support
