#pragma once
// Process-wide heap allocation counter for perf instrumentation.
//
// alloc_count() reads a counter that is bumped by a counting replacement
// of the global operator new.  The replacement lives in alloc_counter.cpp,
// which is deliberately NOT part of the drrg library: only binaries that
// opt in by linking the drrg_alloc_counter target (bench_engine, the
// allocation-regression test) swap their global allocator.  A replaceable
// operator new must be a single out-of-line definition, so this cannot be
// header-inline.

#include <cstdint>

namespace drrg::support {

/// Number of global operator-new calls since process start (relaxed read).
[[nodiscard]] std::uint64_t alloc_count() noexcept;

}  // namespace drrg::support
