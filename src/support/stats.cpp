#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace drrg {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.959963985 * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  RunningStat rs;
  for (double x : v) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = v.front();
  s.max = v.back();
  s.q25 = quantile_sorted(v, 0.25);
  s.median = quantile_sorted(v, 0.50);
  s.q75 = quantile_sorted(v, 0.75);
  s.q95 = quantile_sorted(v, 0.95);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < std::min(xs.size(), ys.size()); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  return fit_linear(lx, ly);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  std::size_t idx = 0;
  if (span > 0.0) {
    const double t = (x - lo_) / span;
    const auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
    idx = static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1));
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << '[';
    os.width(10);
    os << bucket_lo(i) << ", ";
    os.width(10);
    os << bucket_hi(i) << ") ";
    os.width(10);
    os << counts_[i] << ' ';
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << '\n';
  }
  return os.str();
}

double chi_square_uniform(std::span<const std::uint64_t> observed) {
  if (observed.empty()) return 0.0;
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  if (total == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(observed.size());
  double chi = 0.0;
  for (auto c : observed) {
    const double d = static_cast<double>(c) - expected;
    chi += d * d / expected;
  }
  return chi;
}

}  // namespace drrg
