#pragma once
// Deterministic random number generation for the simulator.
//
// Every stochastic component of the system (node ranks, probe targets,
// gossip partners, link loss, workload values) draws from an explicitly
// seeded stream so that a whole simulation is reproducible from a single
// 64-bit seed.  Per-node streams are derived with splitmix64 so that the
// random choices of one node are statistically independent of another's
// and independent of the engine's own loss coin-flips -- mirroring the
// paper's assumption that nodes randomize independently.

#include <cstdint>
#include <limits>

namespace drrg {

/// splitmix64 step: used both as a stand-alone mixer for seed derivation
/// and to bootstrap xoshiro state.  Passes BigCrush when used as a PRNG.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes an arbitrary tuple of 64-bit tags into a single derived seed.
/// Used to build independent sub-streams: derive_seed(seed, node, purpose).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t a, std::uint64_t b,
                                                  std::uint64_t c = 0) noexcept {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64(s);
  s ^= 0x9e3779b97f4a7c15ULL * (b + 1);
  out ^= splitmix64(s);
  s ^= 0xc2b2ae3d27d4eb4fULL * (c + 1);
  out ^= splitmix64(s);
  return out;
}

/// xoshiro256** 1.0 (Blackman & Vigna).  Small, fast, and strong enough for
/// Monte-Carlo simulation.  Satisfies std::uniform_random_bit_generator so
/// it can feed <random> distributions, though we provide the handful of
/// distributions the algorithms need directly (faster and bit-reproducible
/// across standard library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() noexcept : Rng(0xdeadbeefcafef00dULL) {}

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53-bit mantissa construction; this is the
  /// distribution DRR ranks are drawn from (Algorithm 1 draws from [0,1]).
  [[nodiscard]] double next_unit() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  Lemire's multiply-shift with rejection;
  /// unbiased and branch-light.  bound must be nonzero.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool next_bernoulli(double p) noexcept { return next_unit() < p; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator state a pure function of the draw count).
  [[nodiscard]] double next_normal() noexcept {
    for (;;) {
      const double u = next_uniform(-1.0, 1.0);
      const double v = next_uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) return u * sqrt_ratio(s);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_ratio(double s) noexcept;  // sqrt(-2 ln s / s), in .cpp

  std::uint64_t state_[4]{};
};

/// Factory for the independent streams used across a simulation.  All
/// derivations are pure functions of (root seed, tags), so any component can
/// recreate its stream without coordination.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t root_seed) noexcept : root_(root_seed) {}

  [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_; }

  /// Stream for node-local decisions, disambiguated by purpose tag.
  [[nodiscard]] Rng node_stream(std::uint32_t node, std::uint64_t purpose = 0) const noexcept {
    return Rng{derive_seed(root_, node, purpose)};
  }

  /// Stream for engine-level randomness (message loss, crash selection).
  [[nodiscard]] Rng engine_stream(std::uint64_t purpose) const noexcept {
    return Rng{derive_seed(root_, 0xe6e6e6e6ULL, purpose)};
  }

 private:
  std::uint64_t root_;
};

}  // namespace drrg
