#include "support/rng.hpp"

#include <cmath>

namespace drrg {

double Rng::sqrt_ratio(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace drrg
