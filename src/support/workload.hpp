#pragma once
// Shared synthetic-workload generation and ground-truth computation.
//
// Every consumer of the library -- the CLI, the bench harnesses, the
// examples and the tests -- needs the same two ingredients: a
// deterministic vector of per-node values derived from a seed, and the
// exact aggregate of those values over the surviving nodes to compare
// the protocol's output against.  This is the single implementation all
// of them share (the api::Registry adapters call compute_truth for the
// RunReport's truth/error fields).

#include <cstdint>
#include <span>
#include <vector>

namespace drrg::workload {

/// Value interval of the synthetic workload.  The default straddles zero
/// so that sign-sensitive bugs (e.g. in push-sum weights) surface.
struct ValueRange {
  double lo = -25.0;
  double hi = 75.0;
};

/// Strictly positive variant for algorithms that require it (extrema
/// propagation draws exponentials with rate v_i > 0).
[[nodiscard]] constexpr ValueRange positive_range() noexcept { return {1.0, 100.0}; }

/// Deterministic per-node values: node v's value depends only on
/// (seed, v, range).  Identical to the historical bench::make_values
/// stream for the default range.
[[nodiscard]] std::vector<double> make_values(std::uint32_t n, std::uint64_t seed,
                                              ValueRange range = {});

/// Seeds used for Monte-Carlo repetition inside one experiment.
[[nodiscard]] std::vector<std::uint64_t> trial_seeds(int trials,
                                                     std::uint64_t base = 1000);

/// Exact aggregates over the participating nodes.
struct Truth {
  double max = 0.0;
  double min = 0.0;
  double sum = 0.0;
  double ave = 0.0;
  double count = 0.0;
  double rank = 0.0;    ///< |{ alive v : values[v] < rank_threshold }|
  double median = 0.0;  ///< lower median of the participating values
};

/// Computes the exact aggregates of `values` restricted to nodes with
/// participating[v] set (an empty mask means every node participates).
[[nodiscard]] Truth compute_truth(std::span<const double> values,
                                  const std::vector<bool>& participating = {},
                                  double rank_threshold = 0.0);

}  // namespace drrg::workload
