#include "support/workload.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace drrg::workload {

std::vector<double> make_values(std::uint32_t n, std::uint64_t seed, ValueRange range) {
  Rng rng{derive_seed(seed, 0xbe9c)};
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_uniform(range.lo, range.hi);
  return v;
}

std::vector<std::uint64_t> trial_seeds(int trials, std::uint64_t base) {
  std::vector<std::uint64_t> s(static_cast<std::size_t>(trials > 0 ? trials : 0));
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = base + i;
  return s;
}

Truth compute_truth(std::span<const double> values,
                    const std::vector<bool>& participating, double rank_threshold) {
  std::vector<double> live;
  live.reserve(values.size());
  for (std::size_t v = 0; v < values.size(); ++v)
    if (participating.empty() || participating[v]) live.push_back(values[v]);
  Truth t;
  if (live.empty()) return t;
  std::sort(live.begin(), live.end());
  t.min = live.front();
  t.max = live.back();
  t.count = static_cast<double>(live.size());
  for (double v : live) {
    t.sum += v;
    if (v < rank_threshold) ++t.rank;
  }
  t.ave = t.sum / t.count;
  t.median = live[live.size() / 2];
  return t;
}

}  // namespace drrg::workload
