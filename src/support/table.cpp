#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace drrg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (cells_.empty()) cells_.emplace_back();
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add_int(long long v) { return add(std::to_string(v)); }

Table& Table::add_uint(unsigned long long v) { return add(std::to_string(v)); }

Table& Table::add_real(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return add(os.str());
}

Table& Table::add_row(std::initializer_list<std::string> cells) {
  row();
  for (const auto& c : cells) add(c);
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << r[c];
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : cells_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace drrg
