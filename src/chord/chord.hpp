#pragma once
// Chord overlay (Stoica et al. [25]) -- the sparse P2P substrate used by
// §4's application of DRR-gossip.
//
// n nodes are placed at distinct random identifiers on a 2^m ring.  Each
// node knows its successor and m fingers (finger k = the node owning
// id + 2^k), giving greedy key routing in O(log n) hops whp.
//
// §4 Assumption (2) requires a protocol that reaches a *random node* in
// T = O(log n) rounds and M = O(log n) messages.  The paper cites King et
// al. [10]; we substitute a successor-smearing scheme: route to the owner
// of a uniformly random key (that alone would select nodes proportionally
// to their arc length -- badly non-uniform, some nodes nearly never), then
// walk j more successor steps for j uniform in [0, S), S = Theta(log n).
// The selection probability of a node becomes the *average* of S
// consecutive arcs divided by the ring size; sums of S exponential-ish
// arcs concentrate around S * mean, so every node is selected with
// probability (1 +- O(1/sqrt(S))) / n -- near-uniform in exactly the sense
// the Phase III analysis needs -- at O(log n) hops per draw.  DESIGN.md
// documents this substitution.

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace drrg {

using NodeId = std::uint32_t;

class ChordOverlay {
 public:
  /// Places n nodes at distinct random ids on a ring of 2^ring_bits points.
  /// ring_bits is chosen automatically (>= log2 n + 8) unless forced.
  ChordOverlay(std::uint32_t n, std::uint64_t seed, std::uint32_t ring_bits = 0);

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t ring_bits() const noexcept { return m_; }
  [[nodiscard]] std::uint64_t ring_size() const noexcept { return std::uint64_t{1} << m_; }

  /// Ring identifier of node v (node indices are 0..n-1 in id order? No:
  /// node indices are arbitrary labels; id_of gives the ring position).
  [[nodiscard]] std::uint64_t id_of(NodeId v) const noexcept { return ids_[v]; }

  /// The node owning `key`: the first node clockwise at or after key.
  [[nodiscard]] NodeId owner_of_key(std::uint64_t key) const noexcept;

  /// Immediate successor of node v on the ring (one flat-array load).
  [[nodiscard]] NodeId successor(NodeId v) const noexcept;

  /// Finger k of node v: owner of (id_of(v) + 2^k) mod 2^m.
  [[nodiscard]] NodeId finger(NodeId v, std::uint32_t k) const noexcept;

  /// Flat row of v's finger *clockwise distances*: entry k is
  /// ring_dist(id_of(v), id_of(finger(v, k))), with finger(v, k) == v
  /// stored as ring_size() (a self-finger can never precede a key).  The
  /// row is non-decreasing in k -- finger k is the first node at clockwise
  /// distance >= 2^k, a non-decreasing function of a strictly increasing
  /// target -- so greedy closest-preceding-finger selection is a binary
  /// search over it (see SparseRouter::next_hop_fast).
  [[nodiscard]] const std::uint64_t* finger_dist_row(NodeId v) const noexcept {
    return finger_dist_.data() + static_cast<std::size_t>(v) * m_;
  }

  /// Flat row of v's finger table (m_ entries, index by k).
  [[nodiscard]] const NodeId* finger_row(NodeId v) const noexcept {
    return fingers_.data() + static_cast<std::size_t>(v) * m_;
  }

  /// Length of the arc (number of ring points) owned by v.
  [[nodiscard]] std::uint64_t arc_length(NodeId v) const noexcept;

  /// Greedy routing step from v toward key's owner; returns v itself when
  /// v already owns the key.
  [[nodiscard]] NodeId next_hop(NodeId v, std::uint64_t key) const noexcept;

  /// Full greedy route src -> owner(key), inclusive of both endpoints.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, std::uint64_t key) const;

  /// Number of overlay hops of route(src, key).
  [[nodiscard]] std::uint32_t route_hops(NodeId src, std::uint64_t key) const;

  /// Near-uniform random node selection (see file comment) as performed by
  /// node `src`: route a random key from src, then walk a uniform number
  /// of successor steps in [0, smear_width()).  Adds the overlay hops
  /// consumed (routing + successor walk) to *hops if non-null.
  [[nodiscard]] NodeId sample_near_uniform(NodeId src, Rng& rng,
                                           std::uint32_t* hops = nullptr) const;

  /// Successor-walk width S of the sampler: max(8, ceil(log2 n)).
  [[nodiscard]] std::uint32_t smear_width() const noexcept;

 private:
  [[nodiscard]] bool in_open_interval(std::uint64_t x, std::uint64_t a,
                                      std::uint64_t b) const noexcept;

  std::uint32_t n_;
  std::uint32_t m_;
  std::vector<std::uint64_t> ids_;         // id of node v
  std::vector<std::uint64_t> sorted_ids_;  // ids in ring order
  std::vector<NodeId> sorted_nodes_;       // node labels in ring order
  std::vector<std::uint32_t> ring_pos_;    // position of node v in sorted order
  std::vector<NodeId> succ_;               // successor(v), flat
  std::vector<NodeId> fingers_;            // n_ * m_ finger table
  std::vector<std::uint64_t> finger_dist_;  // n_ * m_ clockwise finger distances
};

}  // namespace drrg
