#include "chord/chord.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "support/mathutil.hpp"

namespace drrg {

ChordOverlay::ChordOverlay(std::uint32_t n, std::uint64_t seed, std::uint32_t ring_bits)
    : n_(n) {
  if (n < 2) throw std::invalid_argument("ChordOverlay: need n >= 2");
  m_ = ring_bits != 0 ? ring_bits : std::min<std::uint32_t>(62, ceil_log2(n) + 8);
  if ((std::uint64_t{1} << m_) < n)
    throw std::invalid_argument("ChordOverlay: ring smaller than node count");

  Rng rng{derive_seed(seed, 0xc403dULL)};
  const std::uint64_t ring = std::uint64_t{1} << m_;
  // Distinct-id dedup via a flat open-addressing probe table (load factor
  // <= 0.5): one allocation instead of the O(n) node allocations of a
  // tree/chained set.  The accept/reject decision per draw is pure set
  // membership, so the id sequence is bit-identical to the historical
  // std::unordered_set build.  ~0 is a safe empty marker: ids live in
  // [0, 2^m) with m <= 62.
  constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  std::size_t cap = 16;
  while (cap < 2 * static_cast<std::size_t>(n)) cap *= 2;
  std::vector<std::uint64_t> used(cap, kEmpty);
  auto insert_new = [&used, cap](std::uint64_t id) {
    std::uint64_t mix = id;
    std::size_t h = static_cast<std::size_t>(splitmix64(mix)) & (cap - 1);
    while (used[h] != kEmpty) {
      if (used[h] == id) return false;
      h = (h + 1) & (cap - 1);
    }
    used[h] = id;
    return true;
  };
  ids_.reserve(n);
  while (ids_.size() < n) {
    const std::uint64_t id = rng.next_below(ring);
    if (insert_new(id)) ids_.push_back(id);
  }

  sorted_nodes_.resize(n);
  for (NodeId v = 0; v < n; ++v) sorted_nodes_[v] = v;
  std::sort(sorted_nodes_.begin(), sorted_nodes_.end(),
            [this](NodeId a, NodeId b) { return ids_[a] < ids_[b]; });
  sorted_ids_.resize(n);
  ring_pos_.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    sorted_ids_[p] = ids_[sorted_nodes_[p]];
    ring_pos_[sorted_nodes_[p]] = p;
  }

  succ_.resize(n);
  for (std::uint32_t p = 0; p < n; ++p)
    succ_[sorted_nodes_[p]] = sorted_nodes_[(p + 1) % n];

  fingers_.resize(static_cast<std::size_t>(n) * m_);
  finger_dist_.resize(static_cast<std::size_t>(n) * m_);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t k = 0; k < m_; ++k) {
      const std::uint64_t target = (ids_[v] + (std::uint64_t{1} << k)) & (ring - 1);
      const NodeId f = owner_of_key(target);
      const std::size_t slot = static_cast<std::size_t>(v) * m_ + k;
      fingers_[slot] = f;
      // Clockwise distance to the finger; a self-finger (the 2^k arc wraps
      // all the way back to v) is stored as the full ring so it never wins
      // a closest-preceding comparison.  The row is non-decreasing in k:
      // finger k sits at min{d >= 2^k} over node distances (v contributing
      // d = ring), a non-decreasing function of the increasing 2^k.
      finger_dist_[slot] = f == v ? ring : ((ids_[f] - ids_[v]) & (ring - 1));
      assert(k == 0 || finger_dist_[slot - 1] <= finger_dist_[slot]);
    }
  }
}

NodeId ChordOverlay::owner_of_key(std::uint64_t key) const noexcept {
  // First node with id >= key, wrapping to the smallest id.
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), key);
  const std::size_t pos =
      it == sorted_ids_.end() ? 0 : static_cast<std::size_t>(it - sorted_ids_.begin());
  return sorted_nodes_[pos];
}

NodeId ChordOverlay::successor(NodeId v) const noexcept { return succ_[v]; }

NodeId ChordOverlay::finger(NodeId v, std::uint32_t k) const noexcept {
  return fingers_[static_cast<std::size_t>(v) * m_ + k];
}

std::uint64_t ChordOverlay::arc_length(NodeId v) const noexcept {
  // v owns (id_of(predecessor), id_of(v)]: arc length = id(v) - id(pred) mod ring.
  const std::uint32_t pos = ring_pos_[v];
  const std::uint64_t prev = sorted_ids_[(pos + n_ - 1) % n_];
  return (ids_[v] - prev) & (ring_size() - 1);
}

bool ChordOverlay::in_open_interval(std::uint64_t x, std::uint64_t a,
                                    std::uint64_t b) const noexcept {
  // x in (a, b) clockwise on the ring; empty when a == b.
  if (a < b) return x > a && x < b;
  if (a > b) return x > a || x < b;
  return false;
}

NodeId ChordOverlay::next_hop(NodeId v, std::uint64_t key) const noexcept {
  if (owner_of_key(key) == v) return v;
  // Closest preceding finger of key, else the successor.
  for (std::uint32_t k = m_; k-- > 0;) {
    const NodeId c = finger(v, k);
    if (c != v && in_open_interval(ids_[c], ids_[v], key)) return c;
  }
  return successor(v);
}

std::vector<NodeId> ChordOverlay::route(NodeId src, std::uint64_t key) const {
  std::vector<NodeId> path{src};
  NodeId v = src;
  // 2m is a generous hard cap; greedy Chord routing halves the clockwise
  // distance per hop, so the loop terminates well before it.
  for (std::uint32_t guard = 0; guard < 2 * m_ + 2; ++guard) {
    const NodeId nxt = next_hop(v, key);
    if (nxt == v) break;
    path.push_back(nxt);
    v = nxt;
  }
  return path;
}

std::uint32_t ChordOverlay::route_hops(NodeId src, std::uint64_t key) const {
  return static_cast<std::uint32_t>(route(src, key).size() - 1);
}

std::uint32_t ChordOverlay::smear_width() const noexcept {
  return std::max<std::uint32_t>(8, ceil_log2(n_));
}

NodeId ChordOverlay::sample_near_uniform(NodeId src, Rng& rng, std::uint32_t* hops) const {
  const std::uint64_t key = rng.next_below(ring_size());
  const NodeId landing = owner_of_key(key);
  const auto walk = static_cast<std::uint32_t>(rng.next_below(smear_width()));
  if (hops != nullptr) *hops += route_hops(src, key) + walk;
  // Walk `walk` successor steps from the landing node.
  const std::uint32_t pos = ring_pos_[landing];
  return sorted_nodes_[(pos + walk) % n_];
}

}  // namespace drrg
