#include "net/membership.hpp"

#include <algorithm>

namespace drrg::net {

namespace {

/// dead > suspect > alive for the equal-heartbeat tie-break.
int badness(PeerState s) noexcept { return static_cast<int>(s); }

}  // namespace

Membership::Membership(std::uint32_t n, std::uint32_t self, MembershipConfig cfg)
    : self_(self), cfg_(cfg), peers_(n) {}

void Membership::heard_from(std::uint32_t peer, std::int64_t now_ms) {
  if (peer >= peers_.size() || peer == self_) return;
  Peer& p = peers_[peer];
  p.last_heard = now_ms;
  p.last_update = now_ms;
  // Direct evidence beats any gossiped death: the peer is demonstrably
  // up, so let it re-enter with a heartbeat ahead of the rumor.
  if (p.state != PeerState::kAlive) {
    p.state = PeerState::kAlive;
    p.heartbeat += 1;
    flaps_ += 1;
  }
}

void Membership::merge(const MemberEntry& entry, std::int64_t now_ms) {
  if (entry.node >= peers_.size() || entry.node == self_) return;
  Peer& p = peers_[entry.node];
  const bool newer = entry.heartbeat > p.heartbeat;
  const bool worse_tie =
      entry.heartbeat == p.heartbeat && badness(entry.state) > badness(p.state);
  if (!newer && !worse_tie) return;
  if (p.state != PeerState::kAlive && entry.state == PeerState::kAlive) flaps_ += 1;
  if (p.state != PeerState::kSuspect && entry.state == PeerState::kSuspect)
    p.suspect_since = now_ms;
  p.heartbeat = entry.heartbeat;
  p.state = entry.state;
  p.last_update = now_ms;
  // A gossiped "alive" refreshes the silence clock too: someone heard
  // from the peer more recently than we did.
  if (entry.state == PeerState::kAlive) p.last_heard = std::max(p.last_heard, now_ms);
}

void Membership::age(std::int64_t now_ms) {
  for (std::uint32_t v = 0; v < peers_.size(); ++v) {
    if (v == self_) continue;
    Peer& p = peers_[v];
    const std::int64_t silent = now_ms - p.last_heard;
    if (p.state == PeerState::kAlive && silent >= cfg_.suspect_after_ms) {
      p.state = PeerState::kSuspect;
      p.suspect_since = now_ms;
      p.last_update = now_ms;
    }
    // The confirmation window: silence alone cannot kill a peer until it
    // has been continuously suspect for suspect_confirm_ms (a delayed
    // frame landing mid-window revives it via heard_from instead).
    if (p.state == PeerState::kSuspect && silent >= cfg_.dead_after_ms &&
        now_ms - p.suspect_since >= cfg_.suspect_confirm_ms) {
      p.state = PeerState::kDead;
      p.last_update = now_ms;
    }
  }
}

void Membership::fill_digest(Frame& frame) const {
  frame.id = MsgId::kMemberGossip;
  frame.n_members = 0;
  auto push = [&frame](std::uint32_t node, const Peer& p) {
    if (frame.n_members >= kMaxMemberEntries) return;
    frame.members[frame.n_members++] = MemberEntry{node, p.state, p.heartbeat};
  };
  push(self_, peers_[self_]);
  // Most recently updated first: fresh state (new deaths, revivals)
  // spreads ahead of stable old news.
  std::vector<std::uint32_t> order;
  order.reserve(peers_.size() - 1);
  for (std::uint32_t v = 0; v < peers_.size(); ++v)
    if (v != self_) order.push_back(v);
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (peers_[a].last_update != peers_[b].last_update)
      return peers_[a].last_update > peers_[b].last_update;
    return a < b;
  });
  for (std::uint32_t v : order) push(v, peers_[v]);
}

std::uint32_t Membership::sample_live_peer(Rng& rng) const {
  const auto n = static_cast<std::uint32_t>(peers_.size());
  // Rejection sampling with a fallback scan: cheap in the common case
  // (few deaths), still terminating when almost everyone is gone.
  for (int tries = 0; tries < 16; ++tries) {
    const auto v = static_cast<std::uint32_t>(rng.next_below(n));
    if (v != self_ && !is_dead(v)) return v;
  }
  std::vector<std::uint32_t> live;
  for (std::uint32_t v = 0; v < n; ++v)
    if (v != self_ && !is_dead(v)) live.push_back(v);
  if (live.empty()) return n;
  return live[rng.next_below(live.size())];
}

std::uint32_t Membership::alive_count() const noexcept {
  std::uint32_t alive = 0;
  for (std::uint32_t v = 0; v < peers_.size(); ++v)
    if (v == self_ || !is_dead(v)) ++alive;
  return alive;
}

}  // namespace drrg::net
