#pragma once
// The versioned POD wire format for envelopes crossing a real transport.
//
// Frames are explicit little-endian byte layouts (no struct punning: the
// encoder writes bytes, the decoder reads bytes, so the format is
// identical across compilers and architectures).  Every frame starts
// with a fixed 20-byte header
//
//   magic   u32  'D''R''R''G' (0x47525244 read back as LE u32)
//   version u16  kWireVersion
//   id      u16  MsgId
//   src     u32  sending node id
//   dst     u32  intended recipient node id
//   seq     u32  per-sender sequence number (acks echo it)
//
// followed by a payload whose layout -- and exact length -- is fixed by
// the message id (the two table-carrying messages declare an entry count
// whose bound is part of the format), followed by a u32 FNV-1a checksum
// of every preceding byte.  decode_frame() is strict: a frame that is
// truncated, oversized, version-skewed, count-overflowing, checksum-
// mismatched or garbage is rejected with a typed DecodeError and zero
// undefined behavior, which the wire-codec property tests (and the
// ASan+UBSan CI job they run under) pin.  Because each FNV-1a step is a
// bijection of the hash state, any single-byte flip anywhere in the
// frame is guaranteed to be rejected -- the property the chaos
// harness's corruption injection leans on.
//
// Message vocabulary (libgossip frames SYNC/ACK1/ACK2 the same way:
// one id byte dispatching onto a fixed serialization per id):
//
//   bootstrap + membership      kHello/kHelloAck, kPing/kPong,
//                               kMemberGossip
//   Phase I (DRR forest)        kProbe/kProbeAck, kConnect/kConnectAck
//   Phase II (convergecast)     kTreeValue/kTreeAck,
//                               kTreeLeave/kTreeLeaveAck (slot retract)
//   Phase III (root gossip)     kRootExchange/kRootAck
//   result spread               kFinal/kFinalAck

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace drrg::net {

inline constexpr std::uint32_t kWireMagic = 0x47525244u;  // "DRRG" as LE bytes
inline constexpr std::uint16_t kWireVersion = 2;          // v2: FNV-1a trailer + kTreeLeave
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kChecksumBytes = 4;

/// FNV-1a-32 over `bytes` -- the trailer checksum.  Exposed so tests can
/// forge/verify trailers directly.
[[nodiscard]] std::uint32_t wire_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// Hard bounds of the two variable-count payloads: part of the format,
/// chosen so every frame fits one un-fragmented localhost datagram.
inline constexpr std::size_t kMaxMemberEntries = 16;
inline constexpr std::size_t kMaxRootEntries = 24;

enum class MsgId : std::uint16_t {
  kHello = 1,         ///< bootstrap announce: here I am, on this port
  kHelloAck = 2,      ///< bootstrap ack
  kPing = 3,          ///< liveness probe (nonce echoed by kPong)
  kPong = 4,
  kMemberGossip = 5,  ///< membership digest push (merged, not acked)
  kProbe = 6,         ///< DRR rank probe
  kProbeAck = 7,      ///< carries the responder's rank
  kConnect = 8,       ///< DRR child -> parent connection request
  kConnectAck = 9,
  kTreeValue = 10,    ///< convergecast: child's current subtree stats
  kTreeAck = 11,
  kRootExchange = 12,  ///< Phase III: root table push (relayed up-tree)
  kRootAck = 13,       ///< responding root's table (anti-entropy pull)
  kFinal = 14,         ///< folded result, spread root -> tree
  kFinalAck = 15,
  kTreeLeave = 16,     ///< re-homed child retracts its slot at the old parent
  kTreeLeaveAck = 17,
};

/// All ids, for enumeration in tests.
inline constexpr MsgId kAllMsgIds[] = {
    MsgId::kHello,     MsgId::kHelloAck,   MsgId::kPing,         MsgId::kPong,
    MsgId::kMemberGossip, MsgId::kProbe,   MsgId::kProbeAck,     MsgId::kConnect,
    MsgId::kConnectAck, MsgId::kTreeValue, MsgId::kTreeAck,      MsgId::kRootExchange,
    MsgId::kRootAck,   MsgId::kFinal,      MsgId::kFinalAck,     MsgId::kTreeLeave,
    MsgId::kTreeLeaveAck,
};

[[nodiscard]] std::string_view to_string(MsgId id) noexcept;

/// Membership digest entry (9 wire bytes: node u32, state u8, heartbeat
/// u32).  States follow the lissandra stage machine collapsed to the
/// three that cross the wire.
enum class PeerState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

struct MemberEntry {
  std::uint32_t node = 0;
  PeerState state = PeerState::kAlive;
  std::uint32_t heartbeat = 0;

  bool operator==(const MemberEntry&) const = default;
};

/// One root's contribution to the Phase III table (40 wire bytes).
/// `ver` is bumped by the owning root whenever its subtree stats change
/// (a late convergecast arrival), so table merges are last-writer-wins
/// per root with a total order.
struct RootEntry {
  std::uint32_t root = 0;
  std::uint32_t ver = 0;
  std::uint64_t count = 0;  ///< participating nodes in the subtree
  double max = 0.0;
  double min = 0.0;
  double sum = 0.0;

  bool operator==(const RootEntry&) const = default;
};

/// Decoded envelope: header plus the flat union of per-id payload
/// fields (only the subset the id defines is encoded / decoded; the
/// rest stay zero).  Kept flat rather than a variant so the frame is a
/// POD the state machines can stack-allocate and memcmp in tests.
struct Frame {
  MsgId id = MsgId::kHello;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t seq = 0;

  std::uint32_t a = 0;      ///< kHello: udp port; kProbe: attempt idx;
                            ///< kRootExchange: relay TTL
  std::uint64_t nonce = 0;  ///< kPing/kPong
  double max = 0.0;         ///< kTreeValue/kFinal subtree stats
  double min = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
  std::uint32_t ver = 0;    ///< kTreeValue: sender's subtree version

  std::uint8_t n_members = 0;  ///< kMemberGossip entry count
  std::array<MemberEntry, kMaxMemberEntries> members{};
  std::uint8_t n_roots = 0;  ///< kRootExchange/kRootAck entry count
  std::array<RootEntry, kMaxRootEntries> roots{};

  bool operator==(const Frame&) const = default;
};

enum class DecodeError : std::uint8_t {
  kOk = 0,
  kTooShort,      ///< shorter than the fixed header
  kBadMagic,
  kBadVersion,
  kUnknownId,
  kTruncated,     ///< payload shorter than the id requires
  kOversized,     ///< trailing bytes after the id's payload
  kCountOverflow, ///< declared entry count exceeds the format bound
  kBadChecksum,   ///< FNV-1a trailer does not match the frame bytes
};

[[nodiscard]] std::string_view to_string(DecodeError err) noexcept;

/// Exact wire size of `frame` (header + its id's payload).
[[nodiscard]] std::size_t encoded_size(const Frame& frame) noexcept;

/// Appends the frame's wire bytes to `out`.  Entry counts beyond the
/// format bounds are clamped (the caller chunks tables instead).
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Strict decode: returns kOk and fills `out` only when `bytes` is
/// exactly one well-formed frame.  Never reads out of bounds and never
/// invokes UB on arbitrary input.
[[nodiscard]] DecodeError decode_frame(std::span<const std::uint8_t> bytes, Frame& out);

}  // namespace drrg::net
