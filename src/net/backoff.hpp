#pragma once
// Capped exponential backoff with deterministic jitter for the UDP
// runtime's retransmission timers.
//
// Every retry path in node.cpp (hello / probe / connect / tree / final)
// used to rearm at a fixed interval, which under loss or delay chaos
// synchronizes retransmission bursts across the whole cluster and keeps
// hammering dead peers at full rate.  The policy here doubles the wait
// per attempt up to a cap and stretches it by a jitter fraction drawn
// from the node's own seeded stream -- so two runs with the same root
// seed retransmit at identical times (the chaos matrix leans on this),
// while within one run no two nodes share a schedule.

#include <cstdint>

#include "support/rng.hpp"

namespace drrg::net {

struct BackoffPolicy {
  std::int64_t base_ms = 150;  ///< first-retry wait (attempt 0)
  std::int64_t cap_ms = 1000;  ///< raw delay ceiling before jitter
  double jitter = 0.25;        ///< extra fraction of the raw delay, in [0, jitter)

  /// Delay before retry number `attempt` (0-based: delay(0) == base_ms
  /// plus jitter).  Pure in (attempt, rng state): the schedule is a
  /// deterministic function of the node's seed.
  [[nodiscard]] std::int64_t delay(std::uint32_t attempt, Rng& rng) const {
    std::int64_t raw = base_ms < 1 ? 1 : base_ms;
    for (std::uint32_t i = 0; i < attempt && raw < cap_ms; ++i) raw *= 2;
    if (raw > cap_ms) raw = cap_ms;
    std::int64_t jit = 0;
    if (jitter > 0.0)
      jit = static_cast<std::int64_t>(static_cast<double>(raw) * jitter * rng.next_unit());
    return raw + jit;
  }
};

}  // namespace drrg::net
