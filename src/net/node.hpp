#pragma once
// The drrg_node runtime: one OS process, one protocol node.
//
// run_node() executes the full DRR-gossip pipeline over a real
// UdpTransport, as a single-threaded event loop of per-message state
// machines (the lissandra shape: periodic ticks + stage machines, no
// lockstep rounds):
//
//   bootstrap   hello/ack against the seed list until a small quorum
//               answers or a deadline passes -- a dropped bootstrap
//               packet degrades (retry, then proceed) instead of
//               hanging;
//   Phase I     DRR (Algorithm 1) over kProbe/kConnect envelopes: the
//               node draws its rank from the *same* RngFactory stream
//               the simulator uses, probes log2(n)-1 peers with
//               per-peer retry/timeout, and connects to the first
//               higher-ranked responder (retry-capped, root on
//               exhaustion -- the paper's loss semantics);
//   Phase II    convergecast as monotone push: every settled node
//               (re)sends its current subtree stats {max,min,sum,count}
//               up-tree whenever they change, parents merge per-child
//               slots keyed by child id (idempotent under duplicates),
//               so late joiners and retries never double-count;
//   Phase III   root gossip as push-pull anti-entropy over per-root
//               table entries: roots push their table at a uniformly
//               random peer (non-roots relay the envelope up-tree, the
//               paper's tree-member relay), the landing root merges and
//               answers with its own table, and a root finalizes after
//               a minimum exchange budget plus a quiet streak;
//   spread      the folded result travels root -> children (kFinal,
//               acked + retried), then the node lingers briefly to
//               serve stragglers and exits with a machine-readable
//               report.
//
// Fault schedule: the node computes sim::fault_timeline(n, seed,
// faults) -- a pure function of the root seed, so every process and the
// simulator agree on it without coordination.  A node whose death round
// is 0 reports itself crashed and never binds; a mid-run death round r
// halts the node after r protocol steps (an approximation of the
// simulator's global round clock -- real processes have no lockstep
// rounds).  Link loss can be injected on the send path with the same
// Bernoulli model the simulator applies.
//
// Every wall-clock knob lives in NodeOptions with conservative localhost
// defaults, and the whole run is bounded by deadline_ms: a wedged peer
// set produces a failed report, never a hung process.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/counters.hpp"
#include "net/chaos.hpp"
#include "net/udp_transport.hpp"

namespace drrg::net {

struct NodeOptions {
  std::uint32_t node = 0;  ///< this process's node id in [0, n)
  std::uint32_t n = 0;
  std::uint64_t seed = 42;
  sim::FaultSchedule faults{};

  /// Per-node inputs; empty = workload::make_values(n, seed).
  std::vector<double> values;

  std::uint16_t port_base = 29600;  ///< node v listens on port_base + v
  std::uint16_t bind_port = 0;      ///< 0 = port_base + node
  std::vector<PeerAddr> seed_list;  ///< position i = node i (overrides port_base)

  // -- bootstrap -------------------------------------------------------
  std::uint32_t bootstrap_quorum = 3;      ///< hello-acks before proceeding
  std::int64_t bootstrap_min_ms = 250;     ///< floor (lets slow peers bind)
  std::int64_t bootstrap_timeout_ms = 4000;  ///< proceed regardless after this
  std::int64_t hello_retry_ms = 150;

  // -- Phase I ---------------------------------------------------------
  std::uint32_t probe_budget = 0;  ///< 0 = the paper's log2(n) - 1
  std::int64_t probe_timeout_ms = 150;
  std::uint32_t probe_retries = 3;     ///< resends per attempt (then spent)
  std::uint32_t connect_attempt_cap = 8;  ///< as DrrConfig
  std::int64_t connect_timeout_ms = 150;

  // -- Phase II / III --------------------------------------------------
  std::int64_t tree_timeout_ms = 150;
  std::uint32_t tree_retries = 25;       ///< then orphan-promote to root
  std::int64_t subtree_stable_ms = 400;  ///< root quiescence before gossip
  std::int64_t gossip_tick_ms = 100;
  std::uint32_t min_exchanges = 0;  ///< 0 = max(8, 2 log2 n)
  std::uint32_t quiet_exchanges = 3;
  /// Roots hold the finalize until the fold covers every peer membership
  /// still presumes live; past this mark they finalize on quiescence
  /// alone (liveness under pathological loss -- degrade, don't hang).
  std::int64_t finalize_fallback_ms = 8000;
  std::uint32_t relay_ttl = 24;
  std::int64_t final_timeout_ms = 150;
  std::uint32_t final_retries = 25;
  std::int64_t linger_ms = 2000;

  /// Hard wall-clock bound on the whole run.
  std::int64_t deadline_ms = 30000;

  // -- adversity / timing ----------------------------------------------
  /// Datagram-level chaos (drop/dup/reorder/delay/corrupt/cut), layered
  /// on by ChaosTransport; zero = byte-identical passthrough.
  ChaosSpec chaos{};
  /// >0: wall-clock milliseconds per scheduled round -- death rounds and
  /// join births become wall marks at round * round_ms, and the fault
  /// schedule's partitions/latency fold into the chaos spec.  0 keeps
  /// the legacy protocol-steps approximation.
  std::int64_t round_ms = 0;
  /// false: the multiproc driver owns mid-run deaths (real SIGKILL); the
  /// node never halts itself on its death mark.
  bool self_halt = true;
  // Retransmission backoff (see net/backoff.hpp): each pending's timeout
  // is the base; retries double it up to the cap plus seeded jitter.
  std::int64_t backoff_cap_ms = 1000;
  double backoff_jitter = 0.25;
};

/// What one node process reports when it exits (serialised over a pipe
/// by the multi-process driver, or as JSON by the drrg_node daemon).
struct NodeReport {
  std::uint32_t node = 0;
  bool scheduled_crash = false;  ///< fault timeline killed it at round 0
  bool ok = false;               ///< produced a final value before the deadline
  bool root = false;
  std::uint32_t parent = 0xffffffffu;  ///< 0xffffffff = none
  // The folded consensus stats (valid when ok).
  double max = 0.0;
  double min = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
  // Accounting.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bits = 0;
  std::uint64_t retries = 0;
  std::uint32_t steps = 0;  ///< protocol steps executed (round estimate)
  std::uint32_t roots_seen = 0;
  std::int64_t wall_ms = 0;
  // Degradation accounting: how much adversity the node absorbed.
  std::uint64_t duplicates_dropped = 0;  ///< dedup window suppressions
  std::uint64_t corrupt_rejected = 0;    ///< datagrams failing strict decode
  std::uint64_t reorders_buffered = 0;   ///< datagrams chaos held for later sends
  std::uint64_t backoff_ms_total = 0;    ///< extra wait added over fixed-interval retry
  std::uint64_t suspect_flaps = 0;       ///< peers rescued from suspect/dead
  std::string error;
};

/// Runs the node to completion (or its deadline).  Blocking.
[[nodiscard]] NodeReport run_node(const NodeOptions& options);

/// One-line pipe encodings for the multi-process driver (stable field
/// order, '|' separated, doubles at full round-trip precision).
[[nodiscard]] std::string encode_report(const NodeReport& report);
[[nodiscard]] bool decode_report(const std::string& line, NodeReport& out);

/// JSON rendering for the drrg_node daemon's stdout.
[[nodiscard]] std::string report_json(const NodeReport& report);

}  // namespace drrg::net
