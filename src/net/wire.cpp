#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace drrg::net {

namespace {

// --- little-endian primitives ----------------------------------------------
// Byte-at-a-time shifts: endian-agnostic, no alignment requirements, and
// fully defined on arbitrary input (the decoder's contract).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-unchecked readers: every call site has already verified the
/// total length against the id's exact payload size, so offsets are in
/// range by construction.
std::uint8_t get_u8(std::span<const std::uint8_t> b, std::size_t& off) {
  return b[off++];
}

std::uint16_t get_u16(std::span<const std::uint8_t> b, std::size_t& off) {
  const auto v = static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
  off += 2;
  return v;
}

std::uint32_t get_u32(std::span<const std::uint8_t> b, std::size_t& off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[off + i]) << (8 * i);
  off += 4;
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> b, std::size_t& off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  off += 8;
  return v;
}

double get_f64(std::span<const std::uint8_t> b, std::size_t& off) {
  return std::bit_cast<double>(get_u64(b, off));
}

// --- per-id payload sizes ---------------------------------------------------

constexpr std::size_t kMemberEntryBytes = 9;   // node u32 + state u8 + heartbeat u32
constexpr std::size_t kRootEntryBytes = 40;    // root + ver + count + 3 doubles
constexpr std::size_t kStatsBytes = 8 * 3 + 8 + 4;  // max/min/sum + count + ver

/// Payload size for `id` given the (already validated) entry count.
/// Returns SIZE_MAX for an unknown id.
std::size_t payload_size(MsgId id, std::size_t entries) noexcept {
  switch (id) {
    case MsgId::kHello: return 4;          // udp port (u32: room for growth)
    case MsgId::kHelloAck: return 0;
    case MsgId::kPing:
    case MsgId::kPong: return 8;           // nonce
    case MsgId::kMemberGossip: return 1 + entries * kMemberEntryBytes;
    case MsgId::kProbe: return 4;          // attempt index
    case MsgId::kProbeAck: return 8;       // rank
    case MsgId::kConnect:
    case MsgId::kConnectAck: return 0;
    case MsgId::kTreeValue: return kStatsBytes;
    case MsgId::kTreeAck: return 4;        // acked subtree version
    case MsgId::kRootExchange: return 4 + 1 + entries * kRootEntryBytes;  // ttl + n
    case MsgId::kRootAck: return 1 + entries * kRootEntryBytes;
    case MsgId::kFinal: return kStatsBytes;
    case MsgId::kFinalAck: return 0;
    case MsgId::kTreeLeave:
    case MsgId::kTreeLeaveAck: return 4;   // retracted subtree version
  }
  return static_cast<std::size_t>(-1);
}

/// The wire position of the entry-count byte for the two table messages
/// (relative to the payload start); kNoCount for fixed-size payloads.
constexpr std::size_t kNoCount = static_cast<std::size_t>(-1);

std::size_t count_offset(MsgId id) noexcept {
  switch (id) {
    case MsgId::kMemberGossip: return 0;
    case MsgId::kRootExchange: return 4;  // after the TTL word
    case MsgId::kRootAck: return 0;
    default: return kNoCount;
  }
}

std::size_t count_bound(MsgId id) noexcept {
  switch (id) {
    case MsgId::kMemberGossip: return kMaxMemberEntries;
    case MsgId::kRootExchange:
    case MsgId::kRootAck: return kMaxRootEntries;
    default: return 0;
  }
}

bool known_id(std::uint16_t raw) noexcept {
  return raw >= static_cast<std::uint16_t>(MsgId::kHello) &&
         raw <= static_cast<std::uint16_t>(MsgId::kTreeLeaveAck);
}

std::size_t clamped_entries(const Frame& f) noexcept {
  switch (f.id) {
    case MsgId::kMemberGossip:
      return std::min<std::size_t>(f.n_members, kMaxMemberEntries);
    case MsgId::kRootExchange:
    case MsgId::kRootAck:
      return std::min<std::size_t>(f.n_roots, kMaxRootEntries);
    default:
      return 0;
  }
}

void put_stats(std::vector<std::uint8_t>& out, const Frame& f) {
  put_f64(out, f.max);
  put_f64(out, f.min);
  put_f64(out, f.sum);
  put_u64(out, f.count);
  put_u32(out, f.ver);
}

void get_stats(std::span<const std::uint8_t> b, std::size_t& off, Frame& f) {
  f.max = get_f64(b, off);
  f.min = get_f64(b, off);
  f.sum = get_f64(b, off);
  f.count = get_u64(b, off);
  f.ver = get_u32(b, off);
}

}  // namespace

std::string_view to_string(MsgId id) noexcept {
  switch (id) {
    case MsgId::kHello: return "hello";
    case MsgId::kHelloAck: return "hello-ack";
    case MsgId::kPing: return "ping";
    case MsgId::kPong: return "pong";
    case MsgId::kMemberGossip: return "member-gossip";
    case MsgId::kProbe: return "probe";
    case MsgId::kProbeAck: return "probe-ack";
    case MsgId::kConnect: return "connect";
    case MsgId::kConnectAck: return "connect-ack";
    case MsgId::kTreeValue: return "tree-value";
    case MsgId::kTreeAck: return "tree-ack";
    case MsgId::kRootExchange: return "root-exchange";
    case MsgId::kRootAck: return "root-ack";
    case MsgId::kFinal: return "final";
    case MsgId::kFinalAck: return "final-ack";
    case MsgId::kTreeLeave: return "tree-leave";
    case MsgId::kTreeLeaveAck: return "tree-leave-ack";
  }
  return "unknown";
}

std::string_view to_string(DecodeError err) noexcept {
  switch (err) {
    case DecodeError::kOk: return "ok";
    case DecodeError::kTooShort: return "too-short";
    case DecodeError::kBadMagic: return "bad-magic";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kUnknownId: return "unknown-id";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kOversized: return "oversized";
    case DecodeError::kCountOverflow: return "count-overflow";
    case DecodeError::kBadChecksum: return "bad-checksum";
  }
  return "unknown";
}

std::uint32_t wire_checksum(std::span<const std::uint8_t> bytes) noexcept {
  // FNV-1a-32.  Each step is a bijection of the running state, so two
  // inputs differing in exactly one byte can never collide.
  std::uint32_t h = 0x811c9dc5u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

std::size_t encoded_size(const Frame& frame) noexcept {
  return kHeaderBytes + payload_size(frame.id, clamped_entries(frame)) + kChecksumBytes;
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.reserve(out.size() + encoded_size(frame));
  put_u32(out, kWireMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.id));
  put_u32(out, frame.src);
  put_u32(out, frame.dst);
  put_u32(out, frame.seq);
  const std::size_t entries = clamped_entries(frame);
  switch (frame.id) {
    case MsgId::kHello:
      put_u32(out, frame.a);
      break;
    case MsgId::kHelloAck:
    case MsgId::kConnect:
    case MsgId::kConnectAck:
    case MsgId::kFinalAck:
      break;
    case MsgId::kPing:
    case MsgId::kPong:
      put_u64(out, frame.nonce);
      break;
    case MsgId::kMemberGossip:
      put_u8(out, static_cast<std::uint8_t>(entries));
      for (std::size_t i = 0; i < entries; ++i) {
        put_u32(out, frame.members[i].node);
        put_u8(out, static_cast<std::uint8_t>(frame.members[i].state));
        put_u32(out, frame.members[i].heartbeat);
      }
      break;
    case MsgId::kProbe:
      put_u32(out, frame.a);
      break;
    case MsgId::kProbeAck:
      put_f64(out, frame.max);  // the responder's rank rides the max slot
      break;
    case MsgId::kTreeValue:
    case MsgId::kFinal:
      put_stats(out, frame);
      break;
    case MsgId::kTreeAck:
    case MsgId::kTreeLeave:
    case MsgId::kTreeLeaveAck:
      put_u32(out, frame.ver);
      break;
    case MsgId::kRootExchange:
      put_u32(out, frame.a);  // relay TTL
      [[fallthrough]];
    case MsgId::kRootAck:
      put_u8(out, static_cast<std::uint8_t>(entries));
      for (std::size_t i = 0; i < entries; ++i) {
        const RootEntry& e = frame.roots[i];
        put_u32(out, e.root);
        put_u32(out, e.ver);
        put_u64(out, e.count);
        put_f64(out, e.max);
        put_f64(out, e.min);
        put_f64(out, e.sum);
      }
      break;
  }
  put_u32(out, wire_checksum({out.data() + start, out.size() - start}));
}

DecodeError decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
  if (bytes.size() < kHeaderBytes) return DecodeError::kTooShort;
  std::size_t off = 0;
  if (get_u32(bytes, off) != kWireMagic) return DecodeError::kBadMagic;
  if (get_u16(bytes, off) != kWireVersion) return DecodeError::kBadVersion;
  const std::uint16_t raw_id = get_u16(bytes, off);
  if (!known_id(raw_id)) return DecodeError::kUnknownId;

  Frame f;
  f.id = static_cast<MsgId>(raw_id);
  f.src = get_u32(bytes, off);
  f.dst = get_u32(bytes, off);
  f.seq = get_u32(bytes, off);

  // Resolve the exact expected length, reading the entry count first for
  // the table messages (guarding the read itself against truncation).
  std::size_t entries = 0;
  const std::size_t coff = count_offset(f.id);
  if (coff != kNoCount) {
    if (bytes.size() < kHeaderBytes + coff + 1) return DecodeError::kTruncated;
    entries = bytes[kHeaderBytes + coff];
    if (entries > count_bound(f.id)) return DecodeError::kCountOverflow;
  }
  const std::size_t body = kHeaderBytes + payload_size(f.id, entries);
  const std::size_t expect = body + kChecksumBytes;
  if (bytes.size() < expect) return DecodeError::kTruncated;
  if (bytes.size() > expect) return DecodeError::kOversized;

  // Verify the trailer before interpreting any payload field.
  std::size_t sum_off = body;
  if (get_u32(bytes, sum_off) != wire_checksum(bytes.first(body)))
    return DecodeError::kBadChecksum;

  switch (f.id) {
    case MsgId::kHello:
      f.a = get_u32(bytes, off);
      break;
    case MsgId::kHelloAck:
    case MsgId::kConnect:
    case MsgId::kConnectAck:
    case MsgId::kFinalAck:
      break;
    case MsgId::kPing:
    case MsgId::kPong:
      f.nonce = get_u64(bytes, off);
      break;
    case MsgId::kMemberGossip: {
      f.n_members = get_u8(bytes, off);
      for (std::size_t i = 0; i < entries; ++i) {
        MemberEntry& e = f.members[i];
        e.node = get_u32(bytes, off);
        const std::uint8_t s = get_u8(bytes, off);
        // Unknown future states degrade to suspect rather than UB.
        e.state = s <= 2 ? static_cast<PeerState>(s) : PeerState::kSuspect;
        e.heartbeat = get_u32(bytes, off);
      }
      break;
    }
    case MsgId::kProbe:
      f.a = get_u32(bytes, off);
      break;
    case MsgId::kProbeAck:
      f.max = get_f64(bytes, off);
      break;
    case MsgId::kTreeValue:
    case MsgId::kFinal:
      get_stats(bytes, off, f);
      break;
    case MsgId::kTreeAck:
    case MsgId::kTreeLeave:
    case MsgId::kTreeLeaveAck:
      f.ver = get_u32(bytes, off);
      break;
    case MsgId::kRootExchange:
      f.a = get_u32(bytes, off);
      [[fallthrough]];
    case MsgId::kRootAck: {
      f.n_roots = get_u8(bytes, off);
      for (std::size_t i = 0; i < entries; ++i) {
        RootEntry& e = f.roots[i];
        e.root = get_u32(bytes, off);
        e.ver = get_u32(bytes, off);
        e.count = get_u64(bytes, off);
        e.max = get_f64(bytes, off);
        e.min = get_f64(bytes, off);
        e.sum = get_f64(bytes, off);
      }
      break;
    }
  }
  out = f;
  return DecodeError::kOk;
}

}  // namespace drrg::net
