#pragma once
// Fork-based multi-process driver: runs one drrg_node runtime per OS
// process on localhost and collects every process's NodeReport over a
// pipe.  This is how the test suite and the API facade execute the UDP
// transport end to end without shelling out to the drrg_node binary --
// the daemon is the same run_node() loop behind an argv parser.
//
// Isolation is real: each child is a separate process with its own
// socket, heap and RNG state; the only shared inputs are the (seed,
// faults) pair every node derives its world from, exactly like N
// machines reading the same experiment config.
//
// Robustness contract: the parent enforces a hard wall-clock deadline
// (node deadline + teardown margin).  Children that miss it are killed
// and reported as failed -- a wedged cluster degrades into a failed
// ClusterReport, never a hung test run.

#include <cstdint>
#include <string>
#include <vector>

#include "net/node.hpp"

namespace drrg::net {

struct ClusterOptions {
  std::uint32_t n = 0;
  std::uint64_t seed = 42;
  sim::FaultSchedule faults{};
  /// Per-node inputs; empty = workload::make_values(n, seed) in every child.
  std::vector<double> values;
  /// First UDP port (node v binds port_base + v); 0 = probe for a free range.
  std::uint16_t port_base = 0;
  /// Explicit addresses, position i = node i (overrides port_base).  The
  /// fork-based driver runs on one host, so these must be loopback; a
  /// non-local address simply fails each child's bind.
  std::vector<PeerAddr> seed_list;
  /// Template for per-node timing knobs (node/n/seed/faults/ports are
  /// overwritten per child).  chaos / round_ms / self_halt flow through
  /// to every child unchanged (except as real_kills overrides below).
  NodeOptions node_template{};
  /// With node_template.round_ms > 0: mid-run deaths from the fault
  /// timeline become *real* SIGKILLs delivered by the parent at
  /// death_round * round_ms on the cluster clock, instead of the
  /// victim's own clean self-halt -- the victim runs with self_halt off
  /// and dies mid-syscall like an actual crash.  Round-0 victims still
  /// never spawn (the child reports scheduled_crash and exits).
  bool real_kills = false;
};

struct ClusterReport {
  bool ok = false;  ///< every non-crashed node reported ok
  std::string error;
  std::uint16_t port_base = 0;  ///< the range actually used
  std::vector<NodeReport> nodes;  ///< index == node id, always n entries
  std::int64_t wall_ms = 0;
};

/// True when this platform can fork and bind UDP sockets.
[[nodiscard]] bool multiproc_available() noexcept;

/// Finds a base port such that [base, base + n) all bind on loopback.
/// Returns 0 if no range was found.  Best-effort: the range is released
/// before the caller's children rebind it.
[[nodiscard]] std::uint16_t probe_port_range(std::uint32_t n, std::uint16_t hint);

/// Forks n node processes, waits for their reports, kills stragglers.
/// Serialised process-wide (one cluster at a time) so concurrent tests
/// do not fight over ports.
[[nodiscard]] ClusterReport run_cluster(const ClusterOptions& options);

}  // namespace drrg::net
