#include "net/udp_transport.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define DRRG_HAVE_UDP 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRRG_HAVE_UDP 0
#endif

namespace drrg::net {

std::optional<std::vector<PeerAddr>> parse_seed_list(const std::string& text) {
  std::vector<PeerAddr> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) return std::nullopt;
    PeerAddr addr;
    const std::size_t colon = item.rfind(':');
    std::string port_text;
    if (colon == std::string::npos) {
      port_text = item;  // bare port, localhost
    } else {
      if (colon == 0 || colon + 1 >= item.size()) return std::nullopt;
      addr.host = item.substr(0, colon);
      port_text = item.substr(colon + 1);
    }
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) return std::nullopt;
    addr.port = static_cast<std::uint16_t>(port);
    out.push_back(std::move(addr));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

bool udp_available() noexcept { return DRRG_HAVE_UDP != 0; }

#if DRRG_HAVE_UDP

namespace {

/// Packs an IPv4 address + port into the flat per-node table slot.
std::uint64_t pack_addr(std::uint32_t ip_be, std::uint16_t port) noexcept {
  return (static_cast<std::uint64_t>(ip_be) << 16) | port;
}

sockaddr_in unpack_addr(std::uint64_t packed) noexcept {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = static_cast<std::uint32_t>(packed >> 16);
  sa.sin_port = htons(static_cast<std::uint16_t>(packed & 0xffff));
  return sa;
}

}  // namespace

UdpTransport::~UdpTransport() { close(); }

void UdpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpTransport::bind(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string{"socket: "} + std::strerror(errno);
    return false;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    error_ = std::string{"bind port "} + std::to_string(port) + ": " + std::strerror(errno);
    close();
    return false;
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    error_ = std::string{"getsockname: "} + std::strerror(errno);
    close();
    return false;
  }
  port_ = ntohs(sa.sin_port);
  return true;
}

bool UdpTransport::set_peers(std::uint32_t n, std::uint16_t port_base,
                             const std::vector<PeerAddr>& seed_list) {
  peer_addr_.assign(n, 0);
  const std::uint32_t loopback_be = htonl(INADDR_LOOPBACK);
  if (seed_list.empty()) {
    if (port_base == 0 || static_cast<std::uint32_t>(port_base) + n > 65535) {
      error_ = "port base out of range for n nodes";
      return false;
    }
    for (std::uint32_t v = 0; v < n; ++v)
      peer_addr_[v] = pack_addr(loopback_be, static_cast<std::uint16_t>(port_base + v));
    return true;
  }
  if (seed_list.size() != n) {
    error_ = "seed list must name exactly n nodes (position i = node i)";
    return false;
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    in_addr ip{};
    if (::inet_pton(AF_INET, seed_list[v].host.c_str(), &ip) != 1) {
      error_ = "seed list: bad IPv4 address '" + seed_list[v].host + "'";
      return false;
    }
    peer_addr_[v] = pack_addr(ip.s_addr, seed_list[v].port);
  }
  return true;
}

bool UdpTransport::send(const Frame& frame) {
  if (fd_ < 0 || frame.dst >= peer_addr_.size()) return false;
  buf_.clear();
  encode_frame(frame, buf_);
  return send_raw(frame.dst, {buf_.data(), buf_.size()});
}

bool UdpTransport::send_raw(std::uint32_t dst, std::span<const std::uint8_t> bytes) {
  if (fd_ < 0 || dst >= peer_addr_.size()) return false;
  stats_.sent += 1;
  stats_.bits += static_cast<std::uint64_t>(bytes.size()) * 8;
  if (loss_prob_ > 0.0 && loss_rng_.next_bernoulli(loss_prob_)) {
    stats_.dropped += 1;  // injected loss: consumed bandwidth, never lands
    return true;
  }
  const sockaddr_in sa = unpack_addr(peer_addr_[dst]);
  const ssize_t wrote =
      ::sendto(fd_, bytes.data(), bytes.size(), 0, reinterpret_cast<const sockaddr*>(&sa),
               sizeof(sa));
  // ECONNREFUSED and friends (dead peer, scheduler races) are the loss
  // model of real life: the protocol's retries own recovery.
  return wrote == static_cast<ssize_t>(bytes.size());
}

bool UdpTransport::poll(Frame& out, int timeout_ms) {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return false;
  buf_.resize(2048);  // comfortably above the largest frame
  const ssize_t got = ::recvfrom(fd_, buf_.data(), buf_.size(), 0, nullptr, nullptr);
  if (got <= 0) return false;
  const DecodeError err =
      decode_frame(std::span<const std::uint8_t>{buf_.data(), static_cast<std::size_t>(got)},
                   out);
  if (err != DecodeError::kOk) {
    stats_.rejected += 1;
    return false;
  }
  stats_.delivered += 1;
  return true;
}

#else  // !DRRG_HAVE_UDP: stubs so non-POSIX builds still link.

UdpTransport::~UdpTransport() = default;
void UdpTransport::close() {}
bool UdpTransport::bind(std::uint16_t) {
  error_ = "UDP transport unavailable on this platform";
  return false;
}
bool UdpTransport::set_peers(std::uint32_t, std::uint16_t, const std::vector<PeerAddr>&) {
  error_ = "UDP transport unavailable on this platform";
  return false;
}
bool UdpTransport::send(const Frame&) { return false; }
bool UdpTransport::send_raw(std::uint32_t, std::span<const std::uint8_t>) { return false; }
bool UdpTransport::poll(Frame&, int) { return false; }

#endif  // DRRG_HAVE_UDP

}  // namespace drrg::net
