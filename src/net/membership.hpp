#pragma once
// Membership maintenance for the multi-process runtime: who, as far as
// this node can tell, is up.
//
// The design follows the two related systems the ROADMAP names:
// lissandra's ker/src/common/gossip.c keeps a per-node stage machine and
// runs periodic gossip rounds against a seed list, and deerlets/libgossip
// spreads (node, heartbeat) tuples over UDP with higher-heartbeat-wins
// merges.  Here each peer carries
//
//   state      alive | suspect | dead   (PeerState on the wire)
//   heartbeat  the peer's self-reported monotone counter
//   last_heard local receive timestamp of the peer's latest frame
//
// and the merge rule is: a higher heartbeat always wins; at equal
// heartbeat the worse state wins (dead > suspect > alive), so a death
// observed anywhere sticks until the node itself proves otherwise by
// beating the counter.  Silence degrades a peer locally: suspect after
// suspect_after_ms without a frame, dead after dead_after_ms -- but
// never before the peer has sat in suspect for suspect_confirm_ms
// (hysteresis: a heavy-tail-delayed frame that lands mid-window revives
// the peer instead of letting latency alone evict it; each such rescue
// is counted in flaps()).  All time is injected by the caller
// (steady-clock milliseconds), keeping the class deterministic under
// test.
//
// The protocol layer consults is_dead() to fail fast -- a DRR probe to
// a confirmed-dead peer spends its attempt after one send instead of a
// full retry ladder -- which is exactly the degrade-don't-hang behavior
// the bootstrap path needs when seed contacts are down.

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "support/rng.hpp"

namespace drrg::net {

struct MembershipConfig {
  std::int64_t suspect_after_ms = 700;
  std::int64_t dead_after_ms = 1800;
  /// Minimum continuous time in suspect before a *local* silence-based
  /// death verdict (gossiped deaths merge regardless: someone else
  /// already confirmed).  Zero restores the no-hysteresis behavior.
  std::int64_t suspect_confirm_ms = 500;
  std::uint32_t gossip_fanout = 2;  ///< digests pushed per gossip tick
};

class Membership {
 public:
  Membership(std::uint32_t n, std::uint32_t self, MembershipConfig cfg = {});

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(peers_.size());
  }

  /// Any frame from `peer` proves it alive right now.
  void heard_from(std::uint32_t peer, std::int64_t now_ms);

  /// Merges one received digest entry (higher heartbeat wins; ties take
  /// the worse state).
  void merge(const MemberEntry& entry, std::int64_t now_ms);

  /// Applies the silence thresholds; call once per event-loop tick.
  void age(std::int64_t now_ms);

  /// Bumps the self heartbeat (one per gossip tick).
  void beat() { peers_[self_].heartbeat += 1; }

  /// Fills `frame` (id kMemberGossip) with the self entry plus the most
  /// recently updated others, newest first, up to the wire bound.
  void fill_digest(Frame& frame) const;

  /// Uniformly samples a peer this node does not believe dead (self
  /// excluded); returns size() when every other peer looks dead.
  [[nodiscard]] std::uint32_t sample_live_peer(Rng& rng) const;

  [[nodiscard]] PeerState state(std::uint32_t peer) const noexcept {
    return peers_[peer].state;
  }
  [[nodiscard]] bool is_dead(std::uint32_t peer) const noexcept {
    return peers_[peer].state == PeerState::kDead;
  }
  /// Peers not currently believed dead, self included: also the node's
  /// best estimate of how many values a complete aggregate must cover.
  [[nodiscard]] std::uint32_t alive_count() const noexcept;
  [[nodiscard]] std::uint32_t gossip_fanout() const noexcept { return cfg_.gossip_fanout; }
  /// Peers rescued from suspect/dead by later direct or gossiped
  /// evidence -- the "latency almost evicted someone" diagnostic.
  [[nodiscard]] std::uint64_t flaps() const noexcept { return flaps_; }

 private:
  struct Peer {
    PeerState state = PeerState::kAlive;  // optimistic until silence says otherwise
    std::uint32_t heartbeat = 0;
    std::int64_t last_heard = 0;
    std::int64_t last_update = 0;   // merge/heard recency, drives digest choice
    std::int64_t suspect_since = 0; // entry time of the current suspect spell
  };

  std::uint32_t self_;
  MembershipConfig cfg_;
  std::vector<Peer> peers_;
  std::uint64_t flaps_ = 0;
};

}  // namespace drrg::net
