#include "net/chaos.hpp"

#include <algorithm>
#include <chrono>

namespace drrg::net {

ChaosSpec chaos_with_faults(ChaosSpec base, const sim::FaultSchedule& faults,
                            std::int64_t round_ms) {
  if (round_ms <= 0) return base;
  for (const sim::PartitionEvent& p : faults.partitions) {
    ChaosCut cut;
    cut.start_ms = static_cast<std::int64_t>(p.round) * round_ms;
    cut.heal_ms = p.heal_round == sim::kNeverRound
                      ? ChaosCut::kNoHeal
                      : static_cast<std::int64_t>(p.heal_round) * round_ms;
    cut.boundary = p.boundary;
    base.cuts.push_back(cut);
  }
  if (base.delay.zero() && !faults.latency.zero()) {
    base.delay = faults.latency;
    base.delay.min_delay = static_cast<std::uint32_t>(
        std::min<std::int64_t>(faults.latency.min_delay * round_ms, 60'000));
    base.delay.max_delay = static_cast<std::uint32_t>(
        std::min<std::int64_t>(faults.latency.max_delay * round_ms, 60'000));
  }
  return base;
}

ChaosDecision ChaosEngine::next() {
  ChaosDecision d;
  if (spec_.drop > 0.0 && rng_.next_bernoulli(spec_.drop)) {
    d.drop = true;
    return d;  // the datagram is gone; no further fate to decide
  }
  if (spec_.dup > 0.0 && rng_.next_bernoulli(spec_.dup)) d.duplicate = true;
  if (spec_.reorder > 0.0 && rng_.next_bernoulli(spec_.reorder)) {
    d.hold_sends = 1 + static_cast<std::uint32_t>(
                           rng_.next_below(std::max(1u, spec_.reorder_span)));
  } else if (!spec_.delay.zero()) {
    d.delay_ms = static_cast<std::int64_t>(spec_.delay.draw(rng_));
  }
  if (spec_.corrupt > 0.0 && rng_.next_bernoulli(spec_.corrupt)) {
    d.corrupt = true;
    d.corrupt_pos = static_cast<std::uint32_t>(rng_.next_below(1u << 16));
    d.corrupt_mask = static_cast<std::uint8_t>(1 + rng_.next_below(255));
  }
  return d;
}

bool ChaosEngine::cut(std::uint32_t src, std::uint32_t dst,
                      std::int64_t now_ms) const noexcept {
  for (const ChaosCut& c : spec_.cuts)
    if (c.active_at(now_ms) && c.cuts(src, dst)) return true;
  return false;
}

std::int64_t ChaosTransport::now_ms() const {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count() - t0_ms_;
}

void ChaosTransport::set_chaos(const ChaosSpec& spec, std::uint32_t self, Rng rng,
                               std::int64_t clock_offset_ms) {
  armed_ = !spec.zero();
  self_ = self;
  engine_ = ChaosEngine{spec, rng};
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  t0_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(now).count() -
           clock_offset_ms;
}

void ChaosTransport::pump() {
  if (held_.empty()) return;
  const std::int64_t now = now_ms();
  for (std::size_t i = 0; i < held_.size();) {
    Held& h = held_[i];
    if (send_index_ >= h.release_send || now >= h.release_ms) {
      (void)inner_.send_raw(h.dst, h.bytes);
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool ChaosTransport::send(const Frame& frame) {
  if (!armed_) return inner_.send(frame);
  pump();
  ++send_index_;
  const std::int64_t now = now_ms();
  buf_.clear();
  encode_frame(frame, buf_);
  if (engine_.cut(self_, frame.dst, now)) {
    chaos_stats_.cut_drops += 1;
    inner_.note_dropped(buf_.size());
    return true;
  }
  const ChaosDecision d = engine_.next();
  if (d.drop) {
    chaos_stats_.injected_drops += 1;
    inner_.note_dropped(buf_.size());
    return true;
  }
  if (d.corrupt && !buf_.empty()) {
    buf_[d.corrupt_pos % buf_.size()] ^= d.corrupt_mask;
    chaos_stats_.corruptions += 1;
  }
  bool ok = true;
  if (d.duplicate) {
    chaos_stats_.duplicates += 1;
    ok = inner_.send_raw(frame.dst, buf_);
  }
  if (d.hold_sends > 0 || d.delay_ms > 0) {
    if (held_.size() >= kMaxHeldDatagrams) {  // bounded: evict the oldest
      (void)inner_.send_raw(held_.front().dst, held_.front().bytes);
      held_.erase(held_.begin());
    }
    Held h;
    h.dst = frame.dst;
    h.release_send =
        d.hold_sends > 0 ? send_index_ + d.hold_sends : static_cast<std::uint64_t>(-1);
    h.release_ms = d.delay_ms > 0 ? now + d.delay_ms : INT64_MAX;
    h.bytes = buf_;
    held_.push_back(std::move(h));
    if (d.hold_sends > 0)
      chaos_stats_.reorders += 1;
    else
      chaos_stats_.delays += 1;
    return ok;
  }
  return inner_.send_raw(frame.dst, buf_) && ok;
}

bool ChaosTransport::poll(Frame& out, int timeout_ms) {
  if (!armed_) return inner_.poll(out, timeout_ms);
  pump();
  // Cap the wait so a held datagram is released close to its due time
  // even when nothing is arriving.
  const bool got = inner_.poll(out, held_.empty() ? timeout_ms
                                                  : std::min(timeout_ms, 5));
  pump();
  return got;
}

}  // namespace drrg::net
