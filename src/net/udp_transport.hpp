#pragma once
// UdpTransport: one node's datagram endpoint plus the peer address
// table.  This is the real-socket counterpart of the lockstep
// sim::Network (see net/transport.hpp for the seam): it moves wire.hpp
// frames between processes and keeps the same sent/delivered/bits
// accounting, but delivery is asynchronous and unreliable -- retry and
// timeout policy lives with the protocol state machines in node.hpp.
//
// Addressing: node v resolves to 127.0.0.1:(port_base + v) unless an
// explicit seed list ("host:port,host:port,..." -- position i is node
// i's address, lissandra-style) overrides it.  Loss injection
// (send_loss_prob) drops outgoing datagrams with the same deterministic
// per-node coin the simulator uses, so a multi-process run can be
// subjected to the fault schedule's loss model.
//
// POSIX sockets only; non-POSIX builds get a stub that reports the
// transport as unavailable (the simulator path is portable).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "support/rng.hpp"

namespace drrg::net {

/// Parsed "host:port" seed-list entry.
struct PeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Parses "host:port,host:port,..." (bare "port" entries default the
/// host to 127.0.0.1).  std::nullopt on malformed input.
[[nodiscard]] std::optional<std::vector<PeerAddr>> parse_seed_list(const std::string& text);

/// True when this build carries a real UDP transport (POSIX).
[[nodiscard]] bool udp_available() noexcept;

struct UdpStats {
  std::uint64_t sent = 0;        ///< frames handed to the socket (incl. injected drops)
  std::uint64_t delivered = 0;   ///< frames received and decoded
  std::uint64_t bits = 0;        ///< payload bits sent (wire bytes * 8)
  std::uint64_t dropped = 0;     ///< injected loss drops
  std::uint64_t rejected = 0;    ///< datagrams failing strict decode
};

class UdpTransport {
 public:
  UdpTransport() = default;
  ~UdpTransport();
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds 127.0.0.1:port (port 0 lets the kernel pick; see port()).
  /// Returns false (with a message in error()) on failure.
  [[nodiscard]] bool bind(std::uint16_t port);

  /// Installs the node-id -> address table: explicit seed list when
  /// non-empty, else the port_base + id scheme for all n nodes.
  [[nodiscard]] bool set_peers(std::uint32_t n, std::uint16_t port_base,
                               const std::vector<PeerAddr>& seed_list);

  /// Deterministic injected-loss model: outgoing frames are dropped with
  /// probability p using `rng` (pass the node's engine-derived stream).
  void set_loss(double p, Rng rng) {
    loss_prob_ = p;
    loss_rng_ = rng;
  }

  /// Encodes and sends one frame to frame.dst.  Injected losses count
  /// as sent (a lost message still consumed bandwidth -- the same
  /// accounting rule as sim::Network).  Returns false only on a local
  /// socket error.
  bool send(const Frame& frame);

  /// Sends pre-encoded wire bytes to node `dst` (the seam a decorating
  /// transport uses after mutating/duplicating/holding the datagram).
  /// Applies the same loss coin and sent/bits/dropped accounting as
  /// send().
  bool send_raw(std::uint32_t dst, std::span<const std::uint8_t> bytes);

  /// Accounting hook for a decorator that eats an encoded frame before
  /// the socket (injected chaos drop / partition cut): the datagram
  /// still consumed bandwidth, same rule as an injected loss.
  void note_dropped(std::size_t bytes) noexcept {
    stats_.sent += 1;
    stats_.bits += static_cast<std::uint64_t>(bytes) * 8;
    stats_.dropped += 1;
  }

  /// Receives at most one datagram, waiting up to timeout_ms (0 = pure
  /// poll).  Strictly decoded; malformed datagrams are counted and
  /// dropped.  Returns true and fills `out` when a frame arrived.
  [[nodiscard]] bool poll(Frame& out, int timeout_ms);

  [[nodiscard]] bool bound() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const UdpStats& stats() const noexcept { return stats_; }

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string error_;
  UdpStats stats_{};
  double loss_prob_ = 0.0;
  Rng loss_rng_{};
  std::vector<std::uint64_t> peer_addr_;  // packed sockaddr (ip<<16|port) per node
  std::vector<std::uint8_t> buf_;         // reusable encode/decode buffer
};

}  // namespace drrg::net
