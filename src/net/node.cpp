#include "net/node.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>

#include "net/backoff.hpp"
#include "net/membership.hpp"
#include "sim/scenario.hpp"
#include "support/mathutil.hpp"
#include "support/workload.hpp"

namespace drrg::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kNone = 0xffffffffu;

/// Retry budget for the kTreeLeave retraction: generous because it must
/// survive a whole partition (backoff caps the per-try cost).
constexpr std::uint32_t kTreeLeaveRetryCap = 64;

/// The monotone aggregate bundle one subtree (or root table fold)
/// carries.  Exact double equality is the change detector: merges move
/// the same bit patterns around, so equal means nothing new arrived.
struct Stats {
  double max = -std::numeric_limits<double>::infinity();
  double min = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  std::uint64_t count = 0;

  bool operator==(const Stats&) const = default;

  void merge(const Stats& o) noexcept {
    max = std::max(max, o.max);
    min = std::min(min, o.min);
    sum += o.sum;
    count += o.count;
  }
};

struct ChildSlot {
  std::uint32_t child = kNone;
  std::uint32_t ver = 0;
  Stats stats{};
  bool seen = false;
  /// Highest kTreeLeave version from this child: the subtree retracted
  /// itself (orphan promotion across a partition) and tree values at or
  /// below this version are stale echoes, never re-adopted.
  std::uint32_t departed_ver = 0;
};

/// Per-source window of recently seen (id, seq) keys: retries and chaos
/// duplicates of a request are re-acked without re-processing, and
/// duplicate non-requests are dropped.  Handlers stay idempotent -- the
/// window is bandwidth hygiene plus a diagnosable counter, not a
/// correctness dependency.
struct DedupRing {
  std::array<std::uint64_t, 16> keys{};
  std::uint32_t next = 0;
};

/// One in-flight request awaiting its ack.
struct Pending {
  MsgId kind;
  std::uint32_t dst;
  std::uint32_t seq;
  Frame frame;
  std::int64_t deadline;
  std::int64_t timeout;
  std::uint32_t attempts;
  std::uint32_t cap;
};

enum class Phase : std::uint8_t {
  kBootstrap,
  kProbing,    // Phase I: probing / connecting
  kTree,       // settled non-root: convergecast + wait for kFinal
  kRootWait,   // root: waiting for the subtree to quiesce
  kGossip,     // root: Phase III anti-entropy
  kSpread,     // pushing kFinal to children
  kLinger,     // answer stragglers, then exit
};

class NodeRuntime {
 public:
  explicit NodeRuntime(const NodeOptions& opt) : opt_(opt), rngs_(opt.seed) {}

  NodeReport run() {
    NodeReport report;
    report.node = opt_.node;
    if (opt_.n < 2 || opt_.node >= opt_.n) {
      report.error = "need n >= 2 and node < n";
      return report;
    }

    // The fault timeline is a pure function of (seed, faults): every
    // process and the simulator agree on it without coordination.  Each
    // node consults only its *own* fate; peer liveness is learned the
    // distributed way (timeouts + membership gossip).
    const sim::FaultTimeline timeline = sim::full_timeline(opt_.n, rngs_, opt_.faults);
    death_round_ = timeline.death[opt_.node];
    birth_round_ = timeline.birth[opt_.node];
    if (death_round_ == 0) {
      report.scheduled_crash = true;
      return report;  // down from the start: never binds
    }
    // A joiner sleeps through its absence: with a wall-clock round scale
    // the process exists from launch but only binds (and starts its own
    // clocks) at birth_round * round_ms on the cluster clock.
    if (birth_round_ != sim::kBornAtStart && opt_.round_ms > 0) {
      start_delay_ = static_cast<std::int64_t>(birth_round_) * opt_.round_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(start_delay_));
    }

    values_ = opt_.values;
    if (values_.empty()) values_ = workload::make_values(opt_.n, opt_.seed);
    if (values_.size() != opt_.n) {
      report.error = "values length != n";
      return report;
    }

    const std::uint16_t port =
        opt_.bind_port != 0
            ? opt_.bind_port
            : static_cast<std::uint16_t>(opt_.port_base + opt_.node);
    if (!udp_.bind(port) || !udp_.set_peers(opt_.n, opt_.port_base, opt_.seed_list)) {
      report.error = udp_.error();
      return report;
    }
    if (opt_.faults.loss_prob > 0.0) {
      udp_.set_loss(opt_.faults.loss_prob,
                    rngs_.engine_stream(derive_seed(0x105eULL, opt_.node)));
    }
    // Fold the schedule's transport-level adversity (partitions,
    // latency) into the chaos spec; deaths/births stay real (SIGKILL /
    // late spawn).  A zero spec keeps the transport in passthrough.
    chaos_ = chaos_with_faults(opt_.chaos, opt_.faults, opt_.round_ms);
    if (!chaos_.zero()) {
      udp_.set_chaos(chaos_, opt_.node, rngs_.node_stream(opt_.node, 0xc4a05ULL),
                     start_delay_);
    }
    // Partitions heal and joiners arrive after roots may already have
    // finalized: arm the post-final re-convergence machinery (versioned
    // finals, retraction, resurrection sampling) only for those runs so
    // every other schedule keeps today's termination behavior.
    reconverge_ = !chaos_.cuts.empty() ||
                  (opt_.round_ms > 0 && !opt_.faults.joins.empty());
    backoff_rng_ = rngs_.node_stream(opt_.node, 0xb0ffULL);
    dedup_.assign(opt_.n, DedupRing{});

    // Same stream discipline as the simulator's run_drr: purpose 0x11dd,
    // first draw is the rank, subsequent draws sample probe targets.
    drr_rng_ = rngs_.node_stream(opt_.node, 0x11ddULL);
    rank_ = drr_rng_.next_unit();
    aux_rng_ = rngs_.node_stream(opt_.node, 0x90551bULL);

    probe_budget_ = opt_.probe_budget != 0 ? opt_.probe_budget : drr_probe_budget(opt_.n);
    min_exchanges_ = opt_.min_exchanges != 0
                         ? opt_.min_exchanges
                         : std::max<std::uint32_t>(8, 2 * log2_ceil(opt_.n));
    membership_ = std::make_unique<Membership>(opt_.n, opt_.node);
    own_stats_ = Stats{values_[opt_.node], values_[opt_.node], values_[opt_.node], 1};
    // Joiners match the simulator's founder semantics: they carry
    // traffic (probe, relay, adopt the final) but hold no founding
    // value, so the fold stays the surviving round-0 cohort's aggregate.
    joiner_.assign(opt_.n, false);
    if (opt_.round_ms > 0) {
      for (std::uint32_t v = 0; v < opt_.n; ++v)
        joiner_[v] = timeline.birth[v] != sim::kBornAtStart;
      if (joiner_[opt_.node]) own_stats_ = Stats{};
    }

    t0_ = Clock::now();
    loop();

    report.ok = have_final_ && error_.empty();
    report.scheduled_crash = halted_by_schedule_;
    report.root = root_;
    report.parent = parent_;
    report.max = final_.max;
    report.min = final_.min;
    report.sum = final_.sum;
    report.count = final_.count;
    report.sent = udp_.stats().sent;
    report.delivered = udp_.stats().delivered;
    report.bits = udp_.stats().bits;
    report.retries = retries_;
    report.steps = steps_;
    report.roots_seen = static_cast<std::uint32_t>(table_.size());
    report.wall_ms = now_ms();
    report.duplicates_dropped = duplicates_dropped_;
    report.corrupt_rejected = udp_.stats().rejected;
    report.reorders_buffered = udp_.chaos_stats().reorders;
    report.backoff_ms_total = backoff_ms_total_;
    report.suspect_flaps = membership_->flaps();
    report.error = error_;
    if (!report.ok && report.error.empty() && !halted_by_schedule_)
      report.error = "deadline before final value";
    return report;
  }

 private:
  [[nodiscard]] std::int64_t now_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0_)
        .count();
  }

  static std::uint32_t log2_ceil(std::uint32_t n) noexcept {
    std::uint32_t bits = 0;
    while ((1u << bits) < n) ++bits;
    return bits;
  }

  // --- event loop -----------------------------------------------------

  void loop() {
    std::int64_t next_gossip = 0;
    std::int64_t next_hello = 0;
    while (true) {
      const std::int64_t now = now_ms();
      if (now >= opt_.deadline_ms) return;
      if (death_round_ != sim::kNeverCrashes && opt_.self_halt) {
        // Mid-run churn: go silent, as scheduled.  With a wall-clock
        // round scale the mark is on the cluster clock (start_delay_
        // re-bases a joiner); otherwise the legacy protocol-step count
        // approximates the round.  self_halt == false leaves the death
        // to the driver's SIGKILL -- a real crash, not a clean return.
        const bool due =
            opt_.round_ms > 0
                ? now + start_delay_ >=
                      static_cast<std::int64_t>(death_round_) * opt_.round_ms
                : steps_ >= death_round_;
        if (due) {
          halted_by_schedule_ = true;
          return;
        }
      }
      if (phase_ == Phase::kLinger && now >= linger_until_) return;

      Frame f;
      if (udp_.poll(f, 1)) handle(f, now);

      expire_pending(now);

      // Membership heartbeat + digest push, every gossip tick, in every
      // phase (lissandra runs its gossip timer independent of request
      // traffic for the same reason: failure detection must not stall
      // behind the workload).
      if (now >= next_gossip) {
        next_gossip = now + opt_.gossip_tick_ms;
        membership_->beat();
        membership_->age(now);
        for (std::uint32_t i = 0; i < membership_->gossip_fanout(); ++i) {
          const std::uint32_t peer = membership_->sample_live_peer(aux_rng_);
          if (peer >= opt_.n) break;
          Frame d;
          membership_->fill_digest(d);
          d.src = opt_.node;
          d.dst = peer;
          d.seq = next_seq();
          udp_.send(d);
        }
        if (phase_ == Phase::kGossip) {
          gossip_tick(now);
        } else if (reconverge_ && root_ && have_final_ &&
                   (phase_ == Phase::kSpread || phase_ == Phase::kLinger)) {
          post_final_tick(now);
        }
      }

      switch (phase_) {
        case Phase::kBootstrap:
          if ((hello_acks_ >= effective_quorum() && now >= opt_.bootstrap_min_ms) ||
              now >= opt_.bootstrap_timeout_ms) {
            phase_ = Phase::kProbing;
          } else if (now >= next_hello) {
            // Backoff'd tick, two fresh contacts per tick: same early
            // aggregate rate as the old fixed interval, but under loss
            // or delay chaos the cluster's hello bursts de-synchronize
            // instead of hammering in lockstep.
            next_hello =
                now + BackoffPolicy{opt_.hello_retry_ms, opt_.backoff_cap_ms,
                                    opt_.backoff_jitter}
                          .delay(hello_tries_++, backoff_rng_);
            send_hello();
            send_hello();
          }
          break;
        case Phase::kProbing:
          advance_phase1(now);
          break;
        case Phase::kTree:
          if (dirty_ && find_pending(MsgId::kTreeValue) == nullptr) {
            push_tree(now);
          } else if (!dirty_ && find_pending(MsgId::kTreeValue) == nullptr &&
                     parent_ != kNone && membership_->is_dead(parent_)) {
            // Value acked, now passively waiting for the parent's final --
            // but the failure detector says the parent died (mid-run
            // churn).  There is no pending send whose retries could
            // notice, so the detector breaks the wait: promote and reach
            // a value through Phase III instead of the deadline.
            promote_to_root(now);
          }
          break;
        case Phase::kRootWait:
          if (now - last_subtree_change_ >= opt_.subtree_stable_ms) {
            phase_ = Phase::kGossip;
          }
          break;
        case Phase::kGossip:
          break;  // driven by gossip_tick above
        case Phase::kSpread:
          if (reconverge_ && !root_ && dirty_ && parent_ != kNone &&
              find_pending(MsgId::kTreeValue) == nullptr) {
            push_tree(now);  // post-final correction (a child retracted)
          }
          if (find_pending(MsgId::kFinal) == nullptr) {
            linger_until_ = now + opt_.linger_ms;
            phase_ = Phase::kLinger;
          }
          break;
        case Phase::kLinger:
          if (reconverge_ && !root_ && dirty_ && parent_ != kNone &&
              find_pending(MsgId::kTreeValue) == nullptr) {
            push_tree(now);
          }
          break;
      }
    }
  }

  [[nodiscard]] std::uint32_t effective_quorum() const {
    return std::min(opt_.bootstrap_quorum, opt_.n - 1);
  }

  // --- message handling -----------------------------------------------

  void handle(const Frame& f, std::int64_t now) {
    if (f.dst != opt_.node || f.src >= opt_.n) return;  // stray datagram
    if (f.src != opt_.node) {
      membership_->heard_from(f.src, now);  // duplicates still prove liveness
      if (suppress_duplicate(f)) return;
    }
    switch (f.id) {
      case MsgId::kHello: {
        reply(f, MsgId::kHelloAck);
        break;
      }
      case MsgId::kHelloAck:
        if (f.src < opt_.n && !helloed_[f.src]) {
          helloed_[f.src] = true;
          ++hello_acks_;
        }
        drop_pending(MsgId::kHello, f.src);
        break;
      case MsgId::kPing: {
        Frame pong = make_frame(MsgId::kPong, f.src);
        pong.seq = f.seq;
        pong.nonce = f.nonce;
        udp_.send(pong);
        break;
      }
      case MsgId::kPong:
        break;  // heard_from above did the work
      case MsgId::kMemberGossip:
        for (std::uint8_t i = 0; i < f.n_members; ++i)
          membership_->merge(f.members[i], now);
        break;
      case MsgId::kProbe: {
        Frame ack = make_frame(MsgId::kProbeAck, f.src);
        ack.seq = f.seq;
        ack.max = rank_;
        udp_.send(ack);
        break;
      }
      case MsgId::kProbeAck:
        on_probe_ack(f, now);
        break;
      case MsgId::kConnect: {
        add_child(f.src, now);
        reply(f, MsgId::kConnectAck);
        break;
      }
      case MsgId::kConnectAck:
        on_connect_ack(f, now);
        break;
      case MsgId::kTreeValue:
        on_tree_value(f, now);
        break;
      case MsgId::kTreeAck: {
        const Pending* p = find_pending(MsgId::kTreeValue);
        if (p != nullptr && p->dst == f.src && f.ver >= p->frame.ver)
          drop_pending(MsgId::kTreeValue, f.src);
        break;
      }
      case MsgId::kRootExchange:
        on_root_exchange(f, now);
        break;
      case MsgId::kRootAck:
        on_root_ack(f, now);
        break;
      case MsgId::kTreeLeave:
        on_tree_leave(f, now);
        break;
      case MsgId::kTreeLeaveAck:
        drop_pending_seq(MsgId::kTreeLeave, f.src, f.seq);
        break;
      case MsgId::kFinal:
        on_final(f, now);
        break;
      case MsgId::kFinalAck:
        // Seq-matched: a delayed ack for a superseded final must not
        // cancel the re-spread of a newer one.
        drop_pending_seq(MsgId::kFinal, f.src, f.seq);
        break;
    }
  }

  /// True when (src, id, seq) was already seen recently.  Requests are
  /// re-acked (the retry means our ack was lost); everything else is
  /// dropped -- the first copy already did the work.
  bool suppress_duplicate(const Frame& f) {
    DedupRing& ring = dedup_[f.src];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(f.id)) << 32) | f.seq;
    for (const std::uint64_t k : ring.keys) {
      if (k != key) continue;
      ++duplicates_dropped_;
      reack(f);
      return true;
    }
    ring.keys[ring.next] = key;
    ring.next = (ring.next + 1) % static_cast<std::uint32_t>(ring.keys.size());
    return false;
  }

  /// Re-acks a suppressed duplicate request so the sender's retry ladder
  /// terminates even when our first ack was lost.
  void reack(const Frame& f) {
    switch (f.id) {
      case MsgId::kHello:
        reply(f, MsgId::kHelloAck);
        break;
      case MsgId::kPing: {
        Frame pong = make_frame(MsgId::kPong, f.src);
        pong.seq = f.seq;
        pong.nonce = f.nonce;
        udp_.send(pong);
        break;
      }
      case MsgId::kProbe: {
        Frame ack = make_frame(MsgId::kProbeAck, f.src);
        ack.seq = f.seq;
        ack.max = rank_;
        udp_.send(ack);
        break;
      }
      case MsgId::kConnect:
        reply(f, MsgId::kConnectAck);
        break;
      case MsgId::kTreeValue: {
        Frame ack = make_frame(MsgId::kTreeAck, f.src);
        ack.seq = f.seq;
        ack.ver = f.ver;
        udp_.send(ack);
        break;
      }
      case MsgId::kTreeLeave: {
        Frame ack = make_frame(MsgId::kTreeLeaveAck, f.src);
        ack.seq = f.seq;
        ack.ver = f.ver;
        udp_.send(ack);
        break;
      }
      case MsgId::kFinal:
        reply(f, MsgId::kFinalAck);
        break;
      default:
        break;  // acks, gossip, exchanges: the duplicate just dies here
    }
  }

  // --- bootstrap ------------------------------------------------------

  void send_hello() {
    // A fresh random contact each tick: a dropped packet (or a dead
    // seed) costs one retry interval, never a hang.
    const auto peer = static_cast<std::uint32_t>(aux_rng_.next_below(opt_.n));
    if (peer == opt_.node) return;
    Frame h = make_frame(MsgId::kHello, peer);
    h.a = udp_.port();
    udp_.send(h);
  }

  // --- Phase I: DRR ---------------------------------------------------

  void advance_phase1(std::int64_t now) {
    if (settled_) return;
    if (pending_parent_ != kNone) return;  // connect in flight (pending-driven)
    if (find_pending(MsgId::kProbe) != nullptr) return;
    if (attempts_ < probe_budget_) {
      issue_probe(now);
    } else {
      become_root(now);  // budget exhausted, nobody higher-ranked: root
    }
  }

  void issue_probe(std::int64_t now) {
    auto target = static_cast<std::uint32_t>(drr_rng_.next_below(opt_.n));
    if (target == opt_.node) target = (target + 1) % opt_.n;  // complete graph
    ++attempts_;
    ++steps_;
    Frame p = make_frame(MsgId::kProbe, target);
    p.a = attempts_;
    // A confirmed-dead target gets one send and a spent attempt -- the
    // simulator's lost-probe semantics, at one timeout's cost.
    const std::uint32_t cap = membership_->is_dead(target) ? 1 : opt_.probe_retries;
    add_pending(p, now, opt_.probe_timeout_ms, cap);
    udp_.send(p);
  }

  void on_probe_ack(const Frame& f, std::int64_t now) {
    const Pending* p = find_pending(MsgId::kProbe);
    if (p == nullptr || p->dst != f.src || p->seq != f.seq) return;
    drop_pending(MsgId::kProbe, f.src);
    if (f.max > rank_) {  // responder's rank rides the max slot
      pending_parent_ = f.src;
      start_connect(now);
    }
  }

  void start_connect(std::int64_t now) {
    ++steps_;
    Frame c = make_frame(MsgId::kConnect, pending_parent_);
    add_pending(c, now, opt_.connect_timeout_ms, opt_.connect_attempt_cap);
    udp_.send(c);
  }

  void on_connect_ack(const Frame& f, std::int64_t now) {
    if (settled_ || f.src != pending_parent_) return;
    drop_pending(MsgId::kConnect, f.src);
    parent_ = pending_parent_;
    pending_parent_ = kNone;
    settle(now);
  }

  void become_root(std::int64_t now) {
    root_ = true;
    parent_ = kNone;
    pending_parent_ = kNone;
    settle(now);
  }

  /// Orphan promotion: an already-settled child whose parent is gone
  /// re-enters the pipeline as a root of its own subtree, so the subtree
  /// reaches Phase III instead of vanishing (and the child terminates
  /// with a value instead of waiting for a final that will never come).
  void promote_to_root(std::int64_t now) {
    if (root_ || !settled_) return;
    const std::uint32_t old_parent = parent_;
    root_ = true;
    parent_ = kNone;
    last_subtree_change_ = now;
    // Insert our authoritative table entry directly: recompute_subtree
    // would early-return (the subtree stats are unchanged) and never
    // reach its root-only upsert.  The version bump marks the entry
    // fresher than any rumor.
    ++subtree_ver_;
    upsert_table(RootEntry{opt_.node, subtree_ver_, subtree_.count, subtree_.max,
                           subtree_.min, subtree_.sum});
    quiet_ = 0;
    phase_ = Phase::kRootWait;
    // Retract our subtree from the old parent's slot: we now announce it
    // ourselves, and without the retraction the fold counts it twice
    // once a healed partition lets both announcements meet.  Retried
    // through the cut (exempt from the dead-peer fast path) until acked.
    if (reconverge_ && old_parent != kNone) {
      Frame lv = make_frame(MsgId::kTreeLeave, old_parent);
      lv.ver = subtree_ver_;
      add_pending(lv, now, opt_.tree_timeout_ms, kTreeLeaveRetryCap);
      udp_.send(lv);
    }
  }

  void settle(std::int64_t now) {
    settled_ = true;
    recompute_subtree(now);
    if (root_) {
      last_subtree_change_ = now;
      phase_ = Phase::kRootWait;
    } else {
      phase_ = Phase::kTree;
      dirty_ = true;
    }
  }

  // --- Phase II: convergecast as monotone push ------------------------

  void add_child(std::uint32_t child, std::int64_t now) {
    for (const ChildSlot& s : children_)
      if (s.child == child) return;
    children_.push_back(ChildSlot{child, 0, Stats{}, false, 0});
    // A child attaching after the result went out (a late joiner, or a
    // straggler whose connect crossed a heal) still gets the current
    // final; its value then re-folds through the normal tree push.
    if (reconverge_ && have_final_) {
      Frame fin = make_frame(MsgId::kFinal, child);
      fin.max = final_.max;
      fin.min = final_.min;
      fin.sum = final_.sum;
      fin.count = final_.count;
      fin.ver = final_ver_;
      add_pending(fin, now, opt_.final_timeout_ms, opt_.final_retries);
      udp_.send(fin);
    }
  }

  void on_tree_value(const Frame& f, std::int64_t now) {
    add_child(f.src, now);  // a retried connect-ack may have been lost: adopt
    for (ChildSlot& s : children_) {
      if (s.child != f.src) continue;
      // Values at or below the child's retraction version are stale
      // echoes (a reordered datagram from before it promoted away):
      // ack them -- the sender is not waiting -- but never re-adopt.
      if (f.ver > s.departed_ver && (!s.seen || f.ver >= s.ver)) {
        s.seen = true;
        s.ver = f.ver;
        s.stats = Stats{f.max, f.min, f.sum, f.count};
        recompute_subtree(now);
      }
      break;
    }
    Frame ack = make_frame(MsgId::kTreeAck, f.src);
    ack.seq = f.seq;
    ack.ver = f.ver;
    udp_.send(ack);
  }

  void on_tree_leave(const Frame& f, std::int64_t now) {
    for (ChildSlot& s : children_) {
      if (s.child != f.src) continue;
      if (f.ver > s.departed_ver) {
        s.departed_ver = f.ver;
        s.seen = false;  // the subtree is the child's to announce now
        recompute_subtree(now);
      }
      break;
    }
    Frame ack = make_frame(MsgId::kTreeLeaveAck, f.src);
    ack.seq = f.seq;
    ack.ver = f.ver;
    udp_.send(ack);  // always: the retraction must stop retrying
  }

  void recompute_subtree(std::int64_t now) {
    if (!settled_) return;
    Stats next = own_stats_;
    for (const ChildSlot& s : children_)
      if (s.seen) next.merge(s.stats);
    if (next == subtree_ && subtree_ver_ != 0) return;
    subtree_ = next;
    ++subtree_ver_;
    last_subtree_change_ = now;
    if (root_) {
      upsert_table(RootEntry{opt_.node, subtree_ver_, subtree_.count, subtree_.max,
                             subtree_.min, subtree_.sum});
      quiet_ = 0;  // our own entry changed: re-spread before finalizing
      refinalize(now);
    } else {
      dirty_ = true;
    }
  }

  void push_tree(std::int64_t now) {
    dirty_ = false;
    ++steps_;
    Frame t = make_frame(MsgId::kTreeValue, parent_);
    t.max = subtree_.max;
    t.min = subtree_.min;
    t.sum = subtree_.sum;
    t.count = subtree_.count;
    t.ver = subtree_ver_;
    add_pending(t, now, opt_.tree_timeout_ms, opt_.tree_retries);
    udp_.send(t);
  }

  // --- Phase III: root-table anti-entropy -----------------------------

  bool upsert_table(const RootEntry& e) {
    for (RootEntry& mine : table_) {
      if (mine.root != e.root) continue;
      if (e.ver <= mine.ver) return false;
      mine = e;
      return true;
    }
    table_.push_back(e);
    return true;
  }

  /// Merges a received table; the entry for *this* root is authoritative
  /// locally and never overwritten by rumor.
  bool merge_table(const Frame& f) {
    bool changed = false;
    for (std::uint8_t i = 0; i < f.n_roots; ++i) {
      if (f.roots[i].root == opt_.node) continue;
      changed = upsert_table(f.roots[i]) || changed;
    }
    return changed;
  }

  void send_table(MsgId id, std::uint32_t dst, std::uint32_t ttl) {
    for (std::size_t base = 0; base < table_.size() || base == 0;
         base += kMaxRootEntries) {
      Frame x = make_frame(id, dst);
      x.a = ttl;
      const std::size_t chunk = std::min(kMaxRootEntries, table_.size() - base);
      x.n_roots = static_cast<std::uint8_t>(chunk);
      for (std::size_t i = 0; i < chunk; ++i) x.roots[i] = table_[base + i];
      udp_.send(x);
      if (base + kMaxRootEntries >= table_.size()) break;
    }
  }

  void gossip_tick(std::int64_t now) {
    ++steps_;
    ++exchanges_;
    const std::uint32_t peer = membership_->sample_live_peer(aux_rng_);
    if (peer >= opt_.n) {
      ++quiet_;  // nobody left to learn from
    } else {
      send_table(MsgId::kRootExchange, peer, opt_.relay_ttl);
    }
    // Completeness gate on top of the stability heuristics: a laggard
    // subtree (CPU-starved process, slow link) can announce its entry
    // *after* min_exchanges went quiet, so quiescence alone may finalize
    // a partial fold.  The membership view knows how many peers are not
    // (yet) believed dead; hold the finalize until the fold covers them
    // all.  Crashed peers leave the estimate via silence aging, so the
    // gate converges; the fallback deadline keeps pathological loss from
    // blocking termination (degrade, don't hang).
    std::uint64_t covered = 0;
    for (const RootEntry& e : table_) covered += e.count;
    // Joiners hold no founding value: a live joiner raises the
    // membership estimate but can never raise the covered count, so it
    // is excluded from the completeness target.
    std::uint32_t expect = membership_->alive_count();
    for (std::uint32_t v = 0; v < opt_.n; ++v)
      if (joiner_[v] && (v == opt_.node || !membership_->is_dead(v)) && expect > 0)
        --expect;
    const bool complete = covered >= expect;
    if (exchanges_ >= min_exchanges_ && quiet_ >= opt_.quiet_exchanges &&
        now - last_table_change_ >= 2 * opt_.gossip_tick_ms &&
        (complete || now >= opt_.finalize_fallback_ms)) {
      finalize(now);
    }
  }

  void on_root_exchange(const Frame& f, std::int64_t now) {
    if (!settled_) return;  // cannot relay yet; originator will retry
    if (!root_) {
      if (f.a == 0 || parent_ == kNone) return;  // TTL exhausted / orphaned
      Frame relay = f;  // src stays the originator: the ack goes direct
      relay.a -= 1;
      relay.dst = parent_;
      udp_.send(relay);
      return;
    }
    if (f.src == opt_.node) return;  // an exchange of ours walked home
    if (merge_table(f)) {
      last_table_change_ = now;
      quiet_ = 0;
      refinalize(now);
    }
    send_table(MsgId::kRootAck, f.src, 0);  // anti-entropy pull half
  }

  void on_root_ack(const Frame& f, std::int64_t now) {
    if (!root_ || f.src == opt_.node) return;
    if (merge_table(f)) {
      last_table_change_ = now;
      quiet_ = 0;
      refinalize(now);
    } else {
      ++quiet_;
    }
  }

  /// Fold of the current table in root-id order: every root holding the
  /// same table computes the bit-identical result regardless of arrival
  /// order.
  [[nodiscard]] Stats fold_table() const {
    std::vector<RootEntry> sorted = table_;
    std::sort(sorted.begin(), sorted.end(),
              [](const RootEntry& a, const RootEntry& b) { return a.root < b.root; });
    Stats folded{};
    for (const RootEntry& e : sorted)
      folded.merge(Stats{e.max, e.min, e.sum, e.count});
    return folded;
  }

  void finalize(std::int64_t now) {
    final_ = fold_table();
    have_final_ = true;
    ++final_ver_;
    spread_final(now);
  }

  /// Post-final convergence: when the table changes after the result
  /// went out (a healed partition delivered another island's entries, a
  /// joiner's subtree landed), a root folds again and re-spreads under a
  /// higher version.  Gated on reconverge_ so ordinary runs never
  /// reopen a finalized result.
  void refinalize(std::int64_t now) {
    if (!reconverge_ || !root_ || !have_final_) return;
    const Stats next = fold_table();
    if (next == final_) return;
    final_ = next;
    ++final_ver_;
    spread_final(now);
  }

  // --- result spread --------------------------------------------------

  void spread_final(std::int64_t now) {
    phase_ = Phase::kSpread;
    drop_pending_all(MsgId::kFinal);  // superseded spreads stop retrying
    for (const ChildSlot& s : children_) {
      if (s.departed_ver > 0 && !s.seen) continue;  // promoted away: a root now
      Frame fin = make_frame(MsgId::kFinal, s.child);
      fin.max = final_.max;
      fin.min = final_.min;
      fin.sum = final_.sum;
      fin.count = final_.count;
      fin.ver = final_ver_;
      add_pending(fin, now, opt_.final_timeout_ms, opt_.final_retries);
      udp_.send(fin);
    }
  }

  void on_final(const Frame& f, std::int64_t now) {
    reply(f, MsgId::kFinalAck);
    // A promoted orphan is a root in its own right: it acks (the old
    // parent must stop retrying) but reaches its result through Phase
    // III, never by adopting a fold that may lack its retracted subtree.
    if (root_) return;
    // Monotone adoption by version: a re-spread after re-convergence
    // supersedes, a duplicate or reordered older final never regresses.
    if (have_final_ && f.ver <= final_ver_) return;
    final_ = Stats{f.max, f.min, f.sum, f.count};
    final_ver_ = f.ver;
    have_final_ = true;
    drop_pending(MsgId::kTreeValue, parent_);  // the tree's job is done
    spread_final(now);
  }

  /// Root gossip after the result went out: alternates the membership's
  /// live sample with a uniform draw over *all* ids, because after a
  /// heal the peers that matter most are exactly the ones membership
  /// still believes dead -- only an unconditional contact can revive
  /// them (resurrection sampling).
  void post_final_tick(std::int64_t now) {
    (void)now;
    ++steps_;
    resurrect_ = !resurrect_;
    std::uint32_t peer;
    if (resurrect_) {
      peer = static_cast<std::uint32_t>(aux_rng_.next_below(opt_.n));
      if (peer == opt_.node) peer = (peer + 1) % opt_.n;
    } else {
      peer = membership_->sample_live_peer(aux_rng_);
      if (peer >= opt_.n) return;
    }
    send_table(MsgId::kRootExchange, peer, opt_.relay_ttl);
  }

  // --- pending / retry machinery --------------------------------------

  std::uint32_t next_seq() { return ++seq_; }

  Frame make_frame(MsgId id, std::uint32_t dst) {
    Frame f;
    f.id = id;
    f.src = opt_.node;
    f.dst = dst;
    f.seq = next_seq();
    return f;
  }

  void add_pending(const Frame& f, std::int64_t now, std::int64_t timeout,
                   std::uint32_t cap) {
    pending_.push_back(Pending{f.id, f.dst, f.seq, f, now + timeout, timeout, 1, cap});
  }

  [[nodiscard]] const Pending* find_pending(MsgId kind) const {
    for (const Pending& p : pending_)
      if (p.kind == kind) return &p;
    return nullptr;
  }

  void drop_pending(MsgId kind, std::uint32_t dst) {
    std::erase_if(pending_, [&](const Pending& p) {
      return p.kind == kind && p.dst == dst;
    });
  }

  /// Seq-matched variant: retries reuse the request's seq, so the ack of
  /// any retry matches, while a stale ack for a superseded request (an
  /// earlier final, a delayed duplicate) matches nothing.
  void drop_pending_seq(MsgId kind, std::uint32_t dst, std::uint32_t seq) {
    std::erase_if(pending_, [&](const Pending& p) {
      return p.kind == kind && p.dst == dst && p.seq == seq;
    });
  }

  void drop_pending_all(MsgId kind) {
    std::erase_if(pending_, [&](const Pending& p) { return p.kind == kind; });
  }

  void expire_pending(std::int64_t now) {
    // Collect expirations first: give-up handlers mutate pending_.
    std::vector<Pending> exhausted;
    for (Pending& p : pending_) {
      if (now < p.deadline) continue;
      // Confirmed-dead destination: spend the remaining budget at once
      // instead of walking the whole backoff ladder -- except for the
      // retraction, which must keep trying *through* a cut the failure
      // detector mistakes for a death.
      const bool dead_fast =
          membership_->is_dead(p.dst) &&
          (p.kind == MsgId::kConnect || p.kind == MsgId::kTreeValue ||
           p.kind == MsgId::kFinal);
      if (p.attempts >= p.cap || dead_fast) {
        exhausted.push_back(p);
        continue;
      }
      // Capped exponential backoff with seeded jitter (net/backoff.hpp):
      // retry number `attempts - 1` of this request, so consecutive
      // resends spread out instead of re-colliding with whatever chaos
      // ate the original.
      const std::int64_t wait =
          BackoffPolicy{p.timeout, opt_.backoff_cap_ms, opt_.backoff_jitter}.delay(
              p.attempts - 1, backoff_rng_);
      backoff_ms_total_ +=
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, wait - p.timeout));
      ++p.attempts;
      ++retries_;
      p.deadline = now + wait;
      udp_.send(p.frame);
    }
    for (const Pending& p : exhausted) {
      drop_pending(p.kind, p.dst);
      give_up(p, now);
    }
  }

  void give_up(const Pending& p, std::int64_t now) {
    switch (p.kind) {
      case MsgId::kHello:
        break;  // bootstrap keeps trying fresh peers on its own timer
      case MsgId::kProbe:
        break;  // attempt spent (the sampled node told us nothing)
      case MsgId::kConnect:
        // Retry budget exhausted: root by exhaustion, the paper's loss
        // fallback.
        pending_parent_ = kNone;
        become_root(now);
        break;
      case MsgId::kTreeValue:
        // Parent unreachable (crashed mid-run): promote to root so this
        // subtree still reaches Phase III instead of vanishing.
        promote_to_root(now);
        break;
      case MsgId::kFinal:
        break;  // child likely dead; the rest of the tree still exits
      default:
        break;
    }
  }

  // --- state ----------------------------------------------------------

  NodeOptions opt_;
  RngFactory rngs_;
  ChaosTransport udp_;
  std::unique_ptr<Membership> membership_;
  Clock::time_point t0_{};

  std::vector<double> values_;
  std::vector<bool> joiner_;  ///< birth > 0 per id (empty-valued peers)
  std::uint32_t death_round_ = sim::kNeverCrashes;
  std::uint32_t birth_round_ = sim::kBornAtStart;
  std::int64_t start_delay_ = 0;  ///< joiner: cluster-clock ms slept before bind
  bool halted_by_schedule_ = false;

  Rng drr_rng_{};
  Rng aux_rng_{};
  Rng backoff_rng_{};
  double rank_ = 0.0;
  std::uint32_t probe_budget_ = 0;
  std::uint32_t min_exchanges_ = 0;

  ChaosSpec chaos_{};
  bool reconverge_ = false;  ///< post-final re-convergence machinery armed
  std::vector<DedupRing> dedup_;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t backoff_ms_total_ = 0;
  std::uint32_t hello_tries_ = 0;
  bool resurrect_ = false;  ///< post_final_tick sampling alternator

  Phase phase_ = Phase::kBootstrap;
  std::uint32_t seq_ = 0;
  std::vector<Pending> pending_;
  std::uint64_t retries_ = 0;
  std::uint32_t steps_ = 0;

  std::vector<bool> helloed_ = std::vector<bool>(opt_.n, false);
  std::uint32_t hello_acks_ = 0;

  std::uint32_t attempts_ = 0;
  std::uint32_t pending_parent_ = kNone;
  std::uint32_t parent_ = kNone;
  bool settled_ = false;
  bool root_ = false;

  Stats own_stats_{};
  Stats subtree_{};
  std::uint32_t subtree_ver_ = 0;
  bool dirty_ = false;
  std::vector<ChildSlot> children_;
  std::int64_t last_subtree_change_ = 0;

  std::vector<RootEntry> table_;
  std::int64_t last_table_change_ = 0;
  std::uint32_t exchanges_ = 0;
  std::uint32_t quiet_ = 0;

  Stats final_{};
  bool have_final_ = false;
  std::uint32_t final_ver_ = 0;  ///< monotone per spread lineage
  std::int64_t linger_until_ = 0;
  std::string error_;

  void reply(const Frame& to, MsgId id) {
    Frame r = make_frame(id, to.src);
    r.seq = to.seq;  // acks echo the request's sequence number
    udp_.send(r);
  }
};

}  // namespace

NodeReport run_node(const NodeOptions& options) {
  NodeRuntime runtime{options};
  return runtime.run();
}

std::string encode_report(const NodeReport& r) {
  char buf[768];
  std::string err = r.error;
  for (char& c : err)
    if (c == '|' || c == '\n') c = '/';
  std::snprintf(buf, sizeof(buf),
                "%u|%d|%d|%d|%u|%.17g|%.17g|%.17g|%" PRIu64 "|%" PRIu64 "|%" PRIu64
                "|%" PRIu64 "|%" PRIu64 "|%u|%u|%" PRId64 "|%" PRIu64 "|%" PRIu64
                "|%" PRIu64 "|%" PRIu64 "|%" PRIu64 "|%s",
                r.node, r.scheduled_crash ? 1 : 0, r.ok ? 1 : 0, r.root ? 1 : 0,
                r.parent, r.max, r.min, r.sum, r.count, r.sent, r.delivered, r.bits,
                r.retries, r.steps, r.roots_seen, r.wall_ms, r.duplicates_dropped,
                r.corrupt_rejected, r.reorders_buffered, r.backoff_ms_total,
                r.suspect_flaps, err.c_str());
  return std::string{buf};
}

bool decode_report(const std::string& line, NodeReport& out) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (fields.size() < 21) {
    const std::size_t bar = line.find('|', pos);
    if (bar == std::string::npos) return false;
    fields.push_back(line.substr(pos, bar - pos));
    pos = bar + 1;
  }
  fields.push_back(line.substr(pos));  // error text (may be empty)
  try {
    NodeReport r;
    r.node = static_cast<std::uint32_t>(std::stoul(fields[0]));
    r.scheduled_crash = fields[1] == "1";
    r.ok = fields[2] == "1";
    r.root = fields[3] == "1";
    r.parent = static_cast<std::uint32_t>(std::stoul(fields[4]));
    r.max = std::strtod(fields[5].c_str(), nullptr);
    r.min = std::strtod(fields[6].c_str(), nullptr);
    r.sum = std::strtod(fields[7].c_str(), nullptr);
    r.count = std::stoull(fields[8]);
    r.sent = std::stoull(fields[9]);
    r.delivered = std::stoull(fields[10]);
    r.bits = std::stoull(fields[11]);
    r.retries = std::stoull(fields[12]);
    r.steps = static_cast<std::uint32_t>(std::stoul(fields[13]));
    r.roots_seen = static_cast<std::uint32_t>(std::stoul(fields[14]));
    r.wall_ms = std::stoll(fields[15]);
    r.duplicates_dropped = std::stoull(fields[16]);
    r.corrupt_rejected = std::stoull(fields[17]);
    r.reorders_buffered = std::stoull(fields[18]);
    r.backoff_ms_total = std::stoull(fields[19]);
    r.suspect_flaps = std::stoull(fields[20]);
    r.error = fields[21];
    out = r;
  } catch (...) {
    return false;
  }
  return true;
}

std::string report_json(const NodeReport& r) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"node\":%u,\"crashed\":%s,\"ok\":%s,\"root\":%s,\"parent\":%d,"
      "\"max\":%.17g,\"min\":%.17g,\"sum\":%.17g,\"count\":%" PRIu64
      ",\"sent\":%" PRIu64 ",\"delivered\":%" PRIu64 ",\"bits\":%" PRIu64
      ",\"retries\":%" PRIu64 ",\"steps\":%u,\"roots_seen\":%u,\"wall_ms\":%" PRId64
      ",\"duplicates_dropped\":%" PRIu64 ",\"corrupt_rejected\":%" PRIu64
      ",\"reorders_buffered\":%" PRIu64 ",\"backoff_ms_total\":%" PRIu64
      ",\"suspect_flaps\":%" PRIu64 ",\"error\":\"%s\"}",
      r.node, r.scheduled_crash ? "true" : "false", r.ok ? "true" : "false",
      r.root ? "true" : "false",
      r.parent == 0xffffffffu ? -1 : static_cast<int>(r.parent), r.max, r.min, r.sum,
      r.count, r.sent, r.delivered, r.bits, r.retries, r.steps, r.roots_seen, r.wall_ms,
      r.duplicates_dropped, r.corrupt_rejected, r.reorders_buffered, r.backoff_ms_total,
      r.suspect_flaps, r.error.c_str());
  return std::string{buf};
}

}  // namespace drrg::net
