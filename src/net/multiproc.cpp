#include "net/multiproc.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "sim/scenario.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DRRG_HAVE_FORK 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define DRRG_HAVE_FORK 0
#endif

namespace drrg::net {

bool multiproc_available() noexcept { return DRRG_HAVE_FORK != 0 && udp_available(); }

#if DRRG_HAVE_FORK

namespace {

using Clock = std::chrono::steady_clock;

std::mutex& cluster_mutex() {
  static std::mutex m;
  return m;
}

/// Tries to bind every port in [base, base + n) on loopback at once.
bool range_free(std::uint16_t base, std::uint32_t n) {
  std::vector<int> fds;
  fds.reserve(n);
  bool ok = true;
  for (std::uint32_t v = 0; v < n && ok; ++v) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) {
      ok = false;
      break;
    }
    fds.push_back(fd);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<std::uint16_t>(base + v));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) ok = false;
  }
  for (const int fd : fds) ::close(fd);
  return ok;
}

}  // namespace

std::uint16_t probe_port_range(std::uint32_t n, std::uint16_t hint) {
  if (n == 0 || n > 4096) return 0;
  // A pid-dependent start spreads concurrent clusters (parallel ctest
  // jobs) across the ephemeral space before the mutex even matters.
  std::uint32_t base = hint != 0 ? hint
                                 : 20000 + (static_cast<std::uint32_t>(::getpid()) * 131) %
                                               30000;
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (base + n > 65000) base = 20000 + (base % 1000);
    if (range_free(static_cast<std::uint16_t>(base), n))
      return static_cast<std::uint16_t>(base);
    base += n + 17;  // odd stride: de-correlates from other probers
  }
  return 0;
}

ClusterReport run_cluster(const ClusterOptions& options) {
  std::lock_guard<std::mutex> lock(cluster_mutex());
  const auto t0 = Clock::now();
  ClusterReport out;
  out.nodes.resize(options.n);
  for (std::uint32_t v = 0; v < options.n; ++v) {
    out.nodes[v].node = v;
    out.nodes[v].error = "no report";
  }
  if (options.n < 2) {
    out.error = "cluster needs n >= 2";
    return out;
  }
  const bool explicit_seeds = !options.seed_list.empty();
  std::uint16_t base = 0;
  if (explicit_seeds) {
    if (options.seed_list.size() != options.n) {
      out.error = "seed list must name exactly n nodes (position i = node i)";
      return out;
    }
  } else {
    base = options.port_base != 0 ? options.port_base : probe_port_range(options.n, 0);
    if (base == 0 || !range_free(base, options.n)) {
      out.error = "no free UDP port range for the cluster";
      return out;
    }
  }
  out.port_base = base;

  // With a wall-clock round scale the parent shares the fault timeline
  // with every child (it is a pure function of seed + schedule): it
  // needs the death marks to deliver real SIGKILLs and the birth marks
  // to widen the deadline past the latest joiner.
  const std::int64_t round_ms = options.node_template.round_ms;
  sim::FaultTimeline timeline;
  if (round_ms > 0) {
    timeline = sim::full_timeline(options.n, RngFactory{options.seed}, options.faults);
  }
  const auto midrun_victim = [&](std::uint32_t v) {
    return options.real_kills && round_ms > 0 && v < timeline.death.size() &&
           timeline.death[v] != 0 && timeline.death[v] != sim::kNeverCrashes;
  };

  struct Child {
    pid_t pid = -1;
    int fd = -1;  // read end of the report pipe
    std::string line;
    bool done = false;
    bool killed = false;  // parent delivered its scheduled SIGKILL
  };
  std::vector<Child> children(options.n);

  for (std::uint32_t v = 0; v < options.n; ++v) {
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      out.error = std::string{"pipe: "} + std::strerror(errno);
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      out.error = std::string{"fork: "} + std::strerror(errno);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
      break;
    }
    if (pid == 0) {
      // Child: run the node, ship one report line, vanish.  _exit (not
      // exit) keeps the forked copy from running parent-side atexit
      // hooks or flushing inherited stdio buffers twice.
      ::close(pipefd[0]);
      NodeOptions opt = options.node_template;
      opt.node = v;
      opt.n = options.n;
      opt.seed = options.seed;
      opt.faults = options.faults;
      opt.values = options.values;
      // A real-kill victim must not exit cleanly at its mark -- the
      // parent's SIGKILL is the death, arriving mid-whatever.
      if (midrun_victim(v)) opt.self_halt = false;
      if (explicit_seeds) {
        opt.seed_list = options.seed_list;
        opt.port_base = 0;
        opt.bind_port = options.seed_list[v].port;
      } else {
        opt.port_base = base;
        opt.bind_port = 0;
        opt.seed_list.clear();
      }
      const NodeReport report = run_node(opt);
      const std::string line = encode_report(report) + "\n";
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t wrote = ::write(pipefd[1], line.data() + off, line.size() - off);
        if (wrote <= 0) break;
        off += static_cast<std::size_t>(wrote);
      }
      ::close(pipefd[1]);
      ::_exit(0);
    }
    ::close(pipefd[1]);
    children[v].pid = pid;
    children[v].fd = pipefd[0];
  }

  // Collect until every pipe closes or the cluster deadline passes.  A
  // joiner's own deadline clock only starts after its birth sleep, so
  // the cluster-wide bound stretches past the latest birth mark.
  std::int64_t deadline_ms = options.node_template.deadline_ms + 5000;
  if (round_ms > 0) {
    for (const std::uint32_t b : timeline.birth) {
      deadline_ms = std::max(deadline_ms, static_cast<std::int64_t>(b) * round_ms +
                                              options.node_template.deadline_ms + 5000);
    }
  }
  const auto deadline = t0 + std::chrono::milliseconds(deadline_ms);
  char buf[512];
  while (true) {
    // Deliver scheduled kills whose wall marks have passed: correlated
    // block outages land as a burst of real SIGKILLs, not clean exits.
    if (options.real_kills && round_ms > 0) {
      const std::int64_t now = std::chrono::duration_cast<std::chrono::milliseconds>(
                                   Clock::now() - t0)
                                   .count();
      for (std::uint32_t v = 0; v < options.n; ++v) {
        Child& c = children[v];
        if (c.killed || c.pid <= 0 || !midrun_victim(v)) continue;
        if (now < static_cast<std::int64_t>(timeline.death[v]) * round_ms) continue;
        ::kill(c.pid, SIGKILL);
        c.killed = true;
      }
    }
    std::vector<pollfd> pfds;
    std::vector<std::uint32_t> who;
    for (std::uint32_t v = 0; v < options.n; ++v) {
      if (children[v].fd >= 0 && !children[v].done) {
        pfds.push_back(pollfd{children[v].fd, POLLIN, 0});
        who.push_back(v);
      }
    }
    if (pfds.empty()) break;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) break;
    const int ready = ::poll(pfds.data(), pfds.size(),
                             static_cast<int>(std::min<std::int64_t>(left, 200)));
    if (ready <= 0) continue;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP)) == 0) continue;
      Child& c = children[who[i]];
      const ssize_t got = ::read(c.fd, buf, sizeof(buf));
      if (got > 0) {
        c.line.append(buf, static_cast<std::size_t>(got));
      } else {
        ::close(c.fd);
        c.fd = -1;
        c.done = true;
      }
    }
  }

  // Deadline or EOF: reap everyone, killing whatever is still running.
  for (std::uint32_t v = 0; v < options.n; ++v) {
    Child& c = children[v];
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    if (c.pid > 0) {
      int status = 0;
      if (::waitpid(c.pid, &status, WNOHANG) == 0) {
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, &status, 0);
        out.nodes[v].error = "killed at cluster deadline";
      }
    }
    NodeReport parsed;
    const std::size_t nl = c.line.find('\n');
    if (nl != std::string::npos && decode_report(c.line.substr(0, nl), parsed)) {
      out.nodes[v] = parsed;
    }
    if (c.killed) {
      // A SIGKILLed victim reports nothing, by design: account it as
      // its scheduled crash so the cluster verdict skips it.
      out.nodes[v].node = v;
      out.nodes[v].ok = false;
      out.nodes[v].scheduled_crash = true;
      out.nodes[v].error = "SIGKILLed at its death mark";
    }
  }

  bool all_ok = true;
  for (const NodeReport& r : out.nodes) {
    if (r.scheduled_crash) continue;
    if (!r.ok) {
      all_ok = false;
      if (out.error.empty())
        out.error = "node " + std::to_string(r.node) + ": " +
                    (r.error.empty() ? std::string{"no final value"} : r.error);
    }
  }
  out.ok = all_ok && out.error.empty();
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0).count();

  // Debuggability hook for the chaos matrix / CI: when set, dump every
  // node's report as JSON into the named directory (one file per node),
  // so a failed cluster run leaves per-node degradation counters behind
  // as artifacts instead of one aggregated error string.
  if (const char* dir = std::getenv("DRRG_UDP_REPORT_DIR"); dir != nullptr && *dir) {
    for (const NodeReport& r : out.nodes) {
      const std::string path =
          std::string{dir} + "/node_" + std::to_string(r.node) + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        const std::string json = report_json(r) + "\n";
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      }
    }
  }
  return out;
}

#else  // !DRRG_HAVE_FORK

std::uint16_t probe_port_range(std::uint32_t, std::uint16_t) { return 0; }

ClusterReport run_cluster(const ClusterOptions& options) {
  ClusterReport out;
  out.nodes.resize(options.n);
  out.error = "multi-process runtime unavailable on this platform";
  return out;
}

#endif  // DRRG_HAVE_FORK

}  // namespace drrg::net
