#pragma once
// The Transport seam: the compile-time contract between the protocol
// implementations and whatever carries their messages.
//
// Historically the protocols were written directly against
// sim::Network<Msg>, the lockstep round simulator of §2.  This header
// extracts the surface they actually rely on into a named concept so the
// dependency is explicit and checkable:
//
//   * Transport<T, Msg>  -- what a protocol may ask of its carrier:
//     population/liveness queries, per-node deterministic randomness,
//     the random-phone-call peer sampler, send/reply with bit
//     accounting, and the message/round cost counters.
//
// sim::Network<Msg> is the lockstep *implementation* of this concept
// (statically asserted below) and remains byte-identical to the
// pre-seam engine: the FNV-1a sweep checksums in test_determinism and
// the engine-sweep sha256 hashes in BENCH_engine.json pin that.
//
// The second implementation lives beside this header: the src/net/ UDP
// runtime (wire.hpp envelope codec, udp_transport.hpp datagram socket,
// membership.hpp failure detection, node.hpp per-process protocol state
// machines).  It does not instantiate C++ protocol objects over a
// Transport -- real processes exchange *wire* envelopes, so the node
// runtime ports the protocol state machines onto the codec the same way
// lissandra's gossip.c and libgossip's SYNC/ACK rounds do -- but it
// honours the same contract: the same per-node RngFactory streams, the
// same fault-timeline vocabulary (sim::fault_timeline), and the same
// counters, which is what makes a multi-process run comparable to a
// simulated one on the same schedule (the CI udp-smoke acceptance
// test).
//
// Protocol hook set (discovered per-hook by the engine with `requires`,
// see sim/engine.hpp): on_round, on_message, on_reply, on_round_end,
// done, active_nodes.

#include <concepts>
#include <cstdint>

#include "sim/counters.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace drrg::net {

/// What a protocol may ask of the thing carrying its messages.  Keep
/// this the *intersection* of what the protocol families use: anything
/// added here must be implementable both by the lockstep simulator and
/// by a real asynchronous transport.
template <class T, class Msg>
concept Transport = requires(T& t, const T& ct, sim::NodeId v, Msg m, std::uint32_t bits) {
  // Population and liveness.
  { ct.size() } -> std::convertible_to<std::uint32_t>;
  { ct.alive(v) } -> std::convertible_to<bool>;
  { ct.round() } -> std::convertible_to<std::uint32_t>;
  { ct.global_round() } -> std::convertible_to<std::uint32_t>;
  // Deterministic per-node randomness (pure function of root seed, node,
  // purpose -- any implementation can reconstruct a node's stream).
  { t.node_rng(v) } -> std::same_as<Rng&>;
  // The random phone call primitive: sample a callee for `v` from the
  // scenario's topology.
  { t.sample_peer(v) } -> std::convertible_to<sim::NodeId>;
  // Calls and replies, with payload-bit accounting.
  t.send(v, v, m, bits);
  t.reply(v, v, m, bits);
  // Cost accounting (the paper's claims are message/round counts).
  { ct.counters() } -> std::same_as<const sim::Counters&>;
  { ct.scenario() } -> std::same_as<const sim::Scenario&>;
};

namespace detail {
struct ProbeMsg {
  std::uint8_t kind = 0;
  double rank = 0.0;
};
}  // namespace detail

// The lockstep simulator is one Transport.  (Checked against a
// representative POD message type; Network is uniform in Msg.)
static_assert(Transport<sim::Network<detail::ProbeMsg>, detail::ProbeMsg>,
              "sim::Network must model the Transport seam");

}  // namespace drrg::net
