#pragma once
// Deterministic adversity injection for the real UDP runtime.
//
// ChaosTransport decorates UdpTransport with the simulator's adversity
// vocabulary applied at the datagram level, driven entirely by a seeded
// per-node RNG stream so a chaos run is reproducible from the root
// seed:
//
//   drop      Bernoulli loss of the encoded datagram (on top of the
//             transport's own loss model)
//   dup       the datagram is sent twice
//   reorder   the datagram is held back until `reorder_span` later
//             sends have gone out (bounded hold-back queue)
//   delay     the datagram is held for a per-message draw from a
//             sim::LatencyModel reinterpreted in milliseconds
//   corrupt   one byte of the encoded frame is XOR-flipped (the wire
//             checksum guarantees the receiver rejects it)
//   cut       id-boundary partitions with optional heal: while a cut is
//             active, datagrams straddling the boundary are eaten --
//             both directions, since every node runs the same spec
//
// The decorator exposes the same surface as UdpTransport (bind /
// set_peers / set_loss / send / poll / stats), so net::NodeRuntime runs
// unmodified over either.  With a zero ChaosSpec every call forwards
// straight to the inner transport -- a byte-identical passthrough, no
// RNG draws, no buffering -- which is what keeps clean UDP runs
// bit-comparable with the pre-chaos runtime.
//
// ChaosEngine is the pure decision core (spec + RNG in, per-datagram
// decisions out) split from the socket plumbing so determinism is unit
// testable without opening sockets.

#include <cstdint>
#include <vector>

#include "net/udp_transport.hpp"
#include "net/wire.hpp"
#include "sim/counters.hpp"
#include "support/rng.hpp"

namespace drrg::net {

/// A partition on the chaos layer's wall clock: from start_ms until
/// heal_ms, datagrams whose endpoints straddle `boundary` are dropped.
struct ChaosCut {
  std::int64_t start_ms = 0;
  std::int64_t heal_ms = kNoHeal;  ///< kNoHeal: never heals
  std::uint32_t boundary = 0;

  static constexpr std::int64_t kNoHeal = INT64_MAX;

  [[nodiscard]] bool active_at(std::int64_t now_ms) const noexcept {
    return now_ms >= start_ms && now_ms < heal_ms;
  }
  [[nodiscard]] bool cuts(std::uint32_t src, std::uint32_t dst) const noexcept {
    return (src < boundary) != (dst < boundary);
  }

  bool operator==(const ChaosCut&) const = default;
};

struct ChaosSpec {
  double drop = 0.0;
  double dup = 0.0;
  double corrupt = 0.0;
  double reorder = 0.0;
  std::uint32_t reorder_span = 4;  ///< hold-back horizon, in subsequent sends
  sim::LatencyModel delay{};       ///< per-datagram delay, min/max in *ms*
  std::vector<ChaosCut> cuts;

  /// True when the spec can perturb nothing: the passthrough predicate.
  [[nodiscard]] bool zero() const noexcept {
    return drop <= 0.0 && dup <= 0.0 && corrupt <= 0.0 && reorder <= 0.0 &&
           delay.zero() && cuts.empty();
  }

  bool operator==(const ChaosSpec&) const = default;
};

/// Folds a FaultSchedule's transport-level adversity into a chaos spec:
/// PartitionEvents become wall-clock cuts at round * round_ms, and the
/// schedule's LatencyModel (round units) becomes a delay model in ms.
/// Node deaths/births are NOT mapped -- those are real SIGKILLs and
/// late spawns, owned by the multiproc driver.
[[nodiscard]] ChaosSpec chaos_with_faults(ChaosSpec base, const sim::FaultSchedule& faults,
                                          std::int64_t round_ms);

/// What to do with one outgoing datagram.
struct ChaosDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::uint32_t corrupt_pos = 0;   ///< caller applies pos % frame_size
  std::uint8_t corrupt_mask = 1;   ///< non-zero XOR mask
  std::uint32_t hold_sends = 0;    ///< >0: hold until this many later sends
  std::int64_t delay_ms = 0;       ///< >0: hold for this long

  bool operator==(const ChaosDecision&) const = default;
};

/// The pure decision core: a spec plus one RNG stream.  Decisions are a
/// deterministic function of (spec, seed, call index) -- same seed, same
/// delivery schedule, which test_chaos pins.
class ChaosEngine {
 public:
  ChaosEngine() = default;
  ChaosEngine(ChaosSpec spec, Rng rng) : spec_(std::move(spec)), rng_(rng) {}

  [[nodiscard]] const ChaosSpec& spec() const noexcept { return spec_; }

  /// Decision for the next outgoing datagram.  Fixed draw order
  /// (drop, dup, reorder, delay, corrupt), each model consulted only
  /// when configured, so the stream of decisions is reproducible.
  [[nodiscard]] ChaosDecision next();

  /// True when an active cut separates src from dst at `now_ms`.
  [[nodiscard]] bool cut(std::uint32_t src, std::uint32_t dst,
                         std::int64_t now_ms) const noexcept;

 private:
  ChaosSpec spec_{};
  Rng rng_{};
};

/// Injection counters, surfaced through NodeReport for diagnosability.
struct ChaosStats {
  std::uint64_t injected_drops = 0;  ///< chaos drop decisions
  std::uint64_t cut_drops = 0;       ///< datagrams eaten by an active cut
  std::uint64_t duplicates = 0;      ///< extra copies sent
  std::uint64_t reorders = 0;        ///< datagrams held for later sends
  std::uint64_t delays = 0;          ///< datagrams held on the clock
  std::uint64_t corruptions = 0;     ///< bytes flipped
};

class ChaosTransport {
 public:
  ChaosTransport() = default;

  [[nodiscard]] bool bind(std::uint16_t port) { return inner_.bind(port); }
  [[nodiscard]] bool set_peers(std::uint32_t n, std::uint16_t port_base,
                               const std::vector<PeerAddr>& seed_list) {
    return inner_.set_peers(n, port_base, seed_list);
  }
  void set_loss(double p, Rng rng) { inner_.set_loss(p, rng); }

  /// Arms the chaos layer.  `self` is this node's id (for cut sidedness);
  /// `clock_offset_ms` shifts the chaos clock so late-spawned joiners
  /// share the cluster's t=0 (cut marks are cluster-relative).  A zero
  /// spec leaves the transport in passthrough mode.
  void set_chaos(const ChaosSpec& spec, std::uint32_t self, Rng rng,
                 std::int64_t clock_offset_ms = 0);

  bool send(const Frame& frame);
  [[nodiscard]] bool poll(Frame& out, int timeout_ms);

  [[nodiscard]] bool bound() const noexcept { return inner_.bound(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return inner_.port(); }
  [[nodiscard]] const std::string& error() const noexcept { return inner_.error(); }
  [[nodiscard]] const UdpStats& stats() const noexcept { return inner_.stats(); }
  [[nodiscard]] const ChaosStats& chaos_stats() const noexcept { return chaos_stats_; }
  [[nodiscard]] bool chaotic() const noexcept { return armed_; }

  void close() { inner_.close(); }

 private:
  struct Held {
    std::uint32_t dst = 0;
    std::uint64_t release_send = 0;   ///< release once send_index_ reaches this
    std::int64_t release_ms = 0;      ///< ...or once the clock reaches this
    std::vector<std::uint8_t> bytes;
  };

  [[nodiscard]] std::int64_t now_ms() const;
  void pump();  ///< flush every held datagram that has come due

  UdpTransport inner_;
  bool armed_ = false;
  std::uint32_t self_ = 0;
  ChaosEngine engine_{};
  ChaosStats chaos_stats_{};
  std::uint64_t send_index_ = 0;
  std::int64_t t0_ms_ = 0;  ///< steady-clock epoch of cluster t=0
  std::vector<Held> held_;
  std::vector<std::uint8_t> buf_;
};

/// Bound on the hold-back queue: past it the oldest datagram is
/// released immediately (reorder/delay never become unbounded memory).
inline constexpr std::size_t kMaxHeldDatagrams = 64;

}  // namespace drrg::net
