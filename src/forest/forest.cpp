#include "forest/forest.hpp"

#include <algorithm>
#include <stdexcept>

namespace drrg {

Forest Forest::from_parents(std::vector<NodeId> parent, std::vector<bool> member) {
  Forest f;
  const auto n = static_cast<std::uint32_t>(parent.size());
  if (member.empty()) member.assign(n, true);
  if (member.size() != parent.size())
    throw std::invalid_argument("Forest: member mask size mismatch");
  f.parent_ = std::move(parent);
  f.member_ = std::move(member);

  for (NodeId v = 0; v < n; ++v) {
    if (!f.member_[v]) continue;
    const NodeId p = f.parent_[v];
    if (p == kNoParent) continue;
    if (p >= n || !f.member_[p]) throw std::invalid_argument("Forest: parent not a member");
    if (p == v) throw std::invalid_argument("Forest: self-parent");
  }

  // Children lists in CSR form.
  std::vector<std::uint32_t> child_count(n, 0);
  for (NodeId v = 0; v < n; ++v)
    if (f.member_[v] && f.parent_[v] != kNoParent) ++child_count[f.parent_[v]];
  f.child_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) f.child_offsets_[v + 1] = f.child_offsets_[v] + child_count[v];
  f.child_storage_.assign(f.child_offsets_[n], 0);
  {
    std::vector<std::uint64_t> cursor(f.child_offsets_.begin(), f.child_offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v)
      if (f.member_[v] && f.parent_[v] != kNoParent)
        f.child_storage_[cursor[f.parent_[v]]++] = v;
  }

  // Depth/root via path walking with memoisation; also detects cycles
  // (a cycle would walk more than n steps).
  f.root_of_.assign(n, kNoParent);
  f.depth_.assign(n, 0);
  std::vector<NodeId> path;
  for (NodeId v = 0; v < n; ++v) {
    if (!f.member_[v] || f.root_of_[v] != kNoParent) continue;
    path.clear();
    NodeId cur = v;
    while (f.parent_[cur] != kNoParent && f.root_of_[cur] == kNoParent) {
      path.push_back(cur);
      cur = f.parent_[cur];
      if (path.size() > n) throw std::invalid_argument("Forest: cycle detected");
    }
    NodeId root;
    std::uint32_t base_depth;
    if (f.root_of_[cur] != kNoParent) {
      root = f.root_of_[cur];
      base_depth = f.depth_[cur];
    } else {
      root = cur;
      base_depth = 0;
      f.root_of_[cur] = cur;
      f.depth_[cur] = 0;
    }
    for (std::size_t i = path.size(); i-- > 0;) {
      const NodeId u = path[i];
      f.root_of_[u] = root;
      f.depth_[u] = base_depth + static_cast<std::uint32_t>(path.size() - i);
    }
  }

  f.tree_size_.assign(n, 0);
  f.tree_height_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!f.member_[v]) continue;
    const NodeId r = f.root_of_[v];
    ++f.tree_size_[r];
    f.tree_height_[r] = std::max(f.tree_height_[r], f.depth_[v]);
    if (f.parent_[v] == kNoParent) f.roots_.push_back(v);
  }

  // Per-tree member lists (CSR by root id, members ascending).
  f.member_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) f.member_offsets_[v + 1] = f.member_offsets_[v] + f.tree_size_[v];
  f.member_storage_.assign(f.member_offsets_[n], 0);
  {
    std::vector<std::uint64_t> cursor(f.member_offsets_.begin(), f.member_offsets_.end() - 1);
    for (NodeId v = 0; v < n; ++v)
      if (f.member_[v]) f.member_storage_[cursor[f.root_of_[v]]++] = v;
  }
  return f;
}

std::span<const NodeId> Forest::children(NodeId v) const noexcept {
  return {child_storage_.data() + child_offsets_[v],
          child_storage_.data() + child_offsets_[v + 1]};
}

std::uint32_t Forest::max_tree_size() const noexcept {
  std::uint32_t m = 0;
  for (NodeId r : roots_) m = std::max(m, tree_size_[r]);
  return m;
}

std::uint32_t Forest::max_tree_height() const noexcept {
  std::uint32_t m = 0;
  for (NodeId r : roots_) m = std::max(m, tree_height_[r]);
  return m;
}

std::vector<std::uint32_t> Forest::tree_sizes() const {
  std::vector<std::uint32_t> out;
  out.reserve(roots_.size());
  for (NodeId r : roots_) out.push_back(tree_size_[r]);
  return out;
}

NodeId Forest::largest_tree_root() const noexcept {
  NodeId best = kNoParent;
  std::uint32_t best_size = 0;
  for (NodeId r : roots_) {
    if (tree_size_[r] > best_size || (tree_size_[r] == best_size && r < best)) {
      best = r;
      best_size = tree_size_[r];
    }
  }
  return best;
}

bool Forest::respects_ranks(std::span<const double> rank) const noexcept {
  for (NodeId v = 0; v < size(); ++v) {
    if (!member_[v] || parent_[v] == kNoParent) continue;
    if (!(rank[parent_[v]] > rank[v])) return false;
  }
  return true;
}

}  // namespace drrg
