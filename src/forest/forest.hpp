#pragma once
// The ranking forest produced by Phase I (DRR / Local-DRR).
//
// A Forest is an immutable view over parent pointers: children lists,
// per-tree roots, sizes, heights and per-node depths are derived once at
// construction.  Phase II (convergecast/broadcast) walks these trees, and
// the Theorem 2/3/11/13 benches read the derived statistics.

#include <cstdint>
#include <span>
#include <vector>

namespace drrg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoParent = static_cast<NodeId>(-1);

class Forest {
 public:
  /// Empty forest (useful as a default-constructed result slot).
  Forest() = default;

  /// Builds from parent pointers; parent[v] == kNoParent marks a root.
  /// `member[v] == false` excludes v entirely (crashed nodes).  Throws
  /// std::invalid_argument on cycles or edges to non-members.
  static Forest from_parents(std::vector<NodeId> parent,
                             std::vector<bool> member = {});

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(parent_.size());
  }
  [[nodiscard]] bool is_member(NodeId v) const noexcept { return member_[v]; }
  [[nodiscard]] bool is_root(NodeId v) const noexcept {
    return member_[v] && parent_[v] == kNoParent;
  }
  [[nodiscard]] NodeId parent(NodeId v) const noexcept { return parent_[v]; }
  [[nodiscard]] std::span<const NodeId> children(NodeId v) const noexcept;
  /// Base index of v's slice in the flat child storage.  Protocols keep
  /// per-child state (broadcast acks) in one flat array indexed by
  /// child_offset(v) + i instead of n per-node vectors.
  [[nodiscard]] std::uint64_t child_offset(NodeId v) const noexcept {
    return child_offsets_[v];
  }
  /// Members of the tree rooted at r, ascending, r included (empty slice
  /// for non-roots).  Phase III's member relay on explicit topologies
  /// samples from this: gossip leaving a tree through a uniform random
  /// member reaches the tree's whole boundary, not just the root node's
  /// own neighbors.
  [[nodiscard]] std::span<const NodeId> tree_members(NodeId r) const noexcept {
    return {member_storage_.data() + member_offsets_[r],
            member_storage_.data() + member_offsets_[r + 1]};
  }
  /// Total number of child slots (== members that have a parent).
  [[nodiscard]] std::uint64_t child_slots() const noexcept {
    return child_storage_.size();
  }
  [[nodiscard]] const std::vector<NodeId>& roots() const noexcept { return roots_; }

  /// Root of the tree containing v (v itself if root).
  [[nodiscard]] NodeId root_of(NodeId v) const noexcept { return root_of_[v]; }
  /// Raw root-of table for tight loops (root_of_table()[v] == root_of(v);
  /// a stack-local pointer stays in a register where the member access
  /// would be reloaded around heap writes).
  [[nodiscard]] const NodeId* root_of_table() const noexcept { return root_of_.data(); }
  /// Number of nodes in the tree rooted at r (queried by any member).
  [[nodiscard]] std::uint32_t tree_size(NodeId v) const noexcept {
    return tree_size_[root_of_[v]];
  }
  /// Edge-count height of the tree containing v.
  [[nodiscard]] std::uint32_t tree_height(NodeId v) const noexcept {
    return tree_height_[root_of_[v]];
  }
  /// Depth of v below its root (root depth 0).
  [[nodiscard]] std::uint32_t depth(NodeId v) const noexcept { return depth_[v]; }

  [[nodiscard]] std::uint32_t num_trees() const noexcept {
    return static_cast<std::uint32_t>(roots_.size());
  }
  [[nodiscard]] std::uint32_t max_tree_size() const noexcept;
  [[nodiscard]] std::uint32_t max_tree_height() const noexcept;
  /// Sizes of all trees (aligned with roots()).
  [[nodiscard]] std::vector<std::uint32_t> tree_sizes() const;

  /// The root owning the largest tree; ties broken towards the smaller
  /// node id (matches the (size, id) ordering used by DRR-gossip-ave to
  /// elect the data-spread source).
  [[nodiscard]] NodeId largest_tree_root() const noexcept;

  /// Checks the DRR invariant: every non-root member's parent has a
  /// strictly higher rank.  Returns true iff it holds for all members.
  [[nodiscard]] bool respects_ranks(std::span<const double> rank) const noexcept;

 private:
  std::vector<NodeId> parent_;
  std::vector<bool> member_;
  std::vector<std::uint64_t> child_offsets_;
  std::vector<NodeId> child_storage_;
  std::vector<std::uint64_t> member_offsets_;  // per-tree member CSR, by root id
  std::vector<NodeId> member_storage_;
  std::vector<NodeId> roots_;
  std::vector<NodeId> root_of_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> tree_size_;    // indexed by root id
  std::vector<std::uint32_t> tree_height_;  // indexed by root id
};

}  // namespace drrg
