#pragma once
// Local-DRR (§4): the DRR variant for sparse networks where nodes only
// talk to graph neighbors but may message *all* neighbors in one round
// (the standard message-passing model assumption (1) of §4).
//
// Each node draws a rank in [0,1), exchanges ranks with its neighbors,
// and connects to its highest-ranked neighbor if that neighbor outranks
// it; a node that is a local rank maximum becomes a root.  Theorem 11
// bounds every produced tree's height by O(log n) on any graph, and
// Theorem 13 gives the expected number of trees as sum_i 1/(d_i + 1).
//
// Under message loss the rank exchange is repeated a constant number of
// rounds; the connection is acknowledged and retried, and a node whose
// connections all fail becomes a root.  A node only ever connects to a
// neighbor it has *heard* a higher rank from, so the rank-increasing
// (hence acyclic) invariant survives arbitrary loss.

#include <cstdint>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace drrg {

struct LocalDrrConfig {
  /// Rank-exchange rounds (loss resilience); 1 suffices at delta = 0.
  std::uint32_t exchange_rounds = 2;
  /// Connection (re)send attempts before giving up and becoming a root.
  std::uint32_t connect_attempt_cap = 8;
};

struct LocalDrrResult {
  Forest forest;
  std::vector<double> ranks;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

/// Runs Local-DRR on an explicit graph.  Deterministic in
/// (graph, rngs root seed, scenario, config).
[[nodiscard]] LocalDrrResult run_local_drr(const Graph& g, const RngFactory& rngs,
                                           const sim::Scenario& scenario = {},
                                           LocalDrrConfig config = {});

}  // namespace drrg
