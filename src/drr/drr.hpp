#pragma once
// Phase I: Distributed Random Ranking (Algorithm 1).
//
// Every node draws a rank uniformly from [0,1) and probes up to
// log2(n) - 1 uniformly random nodes, one per round, until it finds one
// with a higher rank; it then connects to that node (with an acknowledged
// connection message).  Nodes that never find a higher-ranked node -- or
// whose connection attempts exhaust their retry budget under message loss
// -- become roots.  The result is a forest of disjoint rank-increasing
// trees: Theorem 2 bounds the number of trees by O(n / log n) and
// Theorem 3 every tree's size by O(log n), both whp.
//
// Loss handling follows the §2 model: a lost probe wastes that attempt
// (the sampled node told us nothing), and connection messages are retried
// a constant number of times -- the paper notes O(1 / log(1/delta))
// repeated calls suffice for delta < 1/8.

#include <cstdint>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct DrrConfig {
  /// Probes per node; 0 means the paper's log2(n) - 1.
  std::uint32_t probe_budget = 0;
  /// Connection (re)send attempts before giving up and becoming a root.
  std::uint32_t connect_attempt_cap = 8;
  /// Disambiguates the per-node RNG streams when several Phase I runs
  /// share one root seed (e.g. the quantile bisection's sub-runs, which
  /// must share a crash set but draw fresh ranks).  0 keeps the
  /// historical stream.
  std::uint64_t stream_tag = 0;
};

struct DrrResult {
  Forest forest;
  std::vector<double> ranks;    ///< rank drawn by each node (members only)
  sim::Counters counters;       ///< Phase I message/round accounting
  std::uint64_t total_probes = 0;  ///< probes actually issued (Theorem 4: O(n log log n))
  std::uint32_t rounds = 0;
};

/// Runs Algorithm 1 on the complete graph (random phone call model).
/// Deterministic in (n, rngs root seed, scenario, config).
[[nodiscard]] DrrResult run_drr(std::uint32_t n, const RngFactory& rngs,
                                const sim::Scenario& scenario = {}, DrrConfig config = {});

}  // namespace drrg
