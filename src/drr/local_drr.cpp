#include "drr/local_drr.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct LocalMsg {
  enum class Kind : std::uint8_t { kRank, kConnect, kConnectAck };
  Kind kind;
  double rank = 0.0;
};

struct LocalDrrProtocol {
  LocalDrrProtocol(const Graph& graph, const LocalDrrConfig& cfg)
      : g(graph),
        exchange_rounds(cfg.exchange_rounds == 0 ? 1 : cfg.exchange_rounds),
        connect_cap(cfg.connect_attempt_cap),
        rank_bits(3 * address_bits(graph.size())),
        addr_bits(address_bits(graph.size())),
        state(graph.size()) {}

  struct NodeState {
    double rank = 0.0;
    double best_rank = -1.0;            // highest neighbor rank heard so far
    sim::NodeId best_neighbor = sim::kNoNode;
    std::uint32_t connect_attempts = 0;
    sim::NodeId parent = sim::kNoNode;  // acknowledged parent
    bool settled = false;
  };

  const Graph& g;
  std::uint32_t exchange_rounds;
  std::uint32_t connect_cap;
  std::uint32_t rank_bits;
  std::uint32_t addr_bits;
  std::vector<NodeState> state;
  std::uint32_t unsettled = 0;

  void init_ranks(sim::Network<LocalMsg>& net) {
    for (sim::NodeId v : net.alive_nodes()) state[v].rank = net.node_rng(v).next_unit();
    unsettled = static_cast<std::uint32_t>(net.alive_nodes().size());
  }

  void settle(NodeState& s) {
    if (!s.settled) {
      s.settled = true;
      --unsettled;
    }
  }

  void on_round(sim::Network<LocalMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (net.round() < exchange_rounds) {
      // Assumption (1) of §4: one round reaches all neighbors.
      for (NodeId w : g.neighbors(v))
        net.send(v, w, LocalMsg{LocalMsg::Kind::kRank, s.rank}, rank_bits);
      return;
    }
    if (s.settled) return;
    if (net.round() == exchange_rounds) {
      // Exchange finished: decide between root and connection target.
      if (s.best_neighbor == sim::kNoNode || s.best_rank <= s.rank) {
        settle(s);  // local maximum (among heard neighbors): root
        return;
      }
    }
    if (s.best_neighbor != sim::kNoNode && s.best_rank > s.rank) {
      ++s.connect_attempts;
      net.send(v, s.best_neighbor, LocalMsg{LocalMsg::Kind::kConnect, 0.0}, addr_bits);
    }
  }

  void on_message(sim::Network<LocalMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const LocalMsg& m) {
    NodeState& s = state[dst];
    switch (m.kind) {
      case LocalMsg::Kind::kRank:
        if (m.rank > s.best_rank || (m.rank == s.best_rank && src < s.best_neighbor)) {
          s.best_rank = m.rank;
          s.best_neighbor = src;
        }
        break;
      case LocalMsg::Kind::kConnect:
        net.reply(dst, src, LocalMsg{LocalMsg::Kind::kConnectAck, 0.0}, addr_bits);
        break;
      default:
        break;
    }
  }

  void on_reply(sim::Network<LocalMsg>&, sim::NodeId src, sim::NodeId dst,
                const LocalMsg& m) {
    if (m.kind != LocalMsg::Kind::kConnectAck) return;
    NodeState& s = state[dst];
    s.parent = src;
    settle(s);
  }

  void on_round_end(sim::Network<LocalMsg>& net, sim::NodeId v) {
    if (net.round() < exchange_rounds) return;
    NodeState& s = state[v];
    if (!s.settled && s.connect_attempts >= connect_cap) settle(s);  // root by exhaustion
  }

  [[nodiscard]] bool done(const sim::Network<LocalMsg>& net) const {
    return net.round() >= exchange_rounds && unsettled == 0;
  }
};

}  // namespace

LocalDrrResult run_local_drr(const Graph& g, const RngFactory& rngs,
                             const sim::Scenario& scenario, LocalDrrConfig config) {
  if (g.is_complete())
    throw std::invalid_argument("run_local_drr: use run_drr for the complete graph");
  if (g.size() < 2) throw std::invalid_argument("run_local_drr: need n >= 2");

  sim::Network<LocalMsg> net{g.size(), rngs, scenario, /*purpose=*/0x10ca1};
  LocalDrrProtocol proto{g, config};
  proto.init_ranks(net);

  const std::uint32_t max_rounds =
      proto.exchange_rounds + config.connect_attempt_cap + 2;
  const std::uint32_t rounds = net.run(proto, max_rounds);

  const std::uint32_t n = g.size();
  std::vector<NodeId> parent(n, kNoParent);
  std::vector<bool> member(n, false);
  std::vector<double> ranks(n, 0.0);
  for (sim::NodeId v : net.alive_nodes()) {
    member[v] = true;
    parent[v] = proto.state[v].parent;
    ranks[v] = proto.state[v].rank;
  }

  return LocalDrrResult{Forest::from_parents(std::move(parent), std::move(member)),
                        std::move(ranks), net.counters(), rounds};
}

}  // namespace drrg
