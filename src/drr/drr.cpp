#include "drr/drr.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct DrrMsg {
  enum class Kind : std::uint8_t { kProbe, kProbeReply, kConnect, kConnectAck };
  Kind kind;
  double rank = 0.0;  // kProbeReply: responder's rank
};

/// Per-node payload sizes in bits: probes carry only the sender address
/// (implicit in the call); replies carry a rank (an O(log n)-bit
/// discretised value suffices -- see Algorithm 1's remark that ranks from
/// [1, n^3] give the same bounds, i.e. 3 log n bits).
struct DrrProtocol {
  explicit DrrProtocol(std::uint32_t n, const DrrConfig& cfg)
      : budget(cfg.probe_budget != 0 ? cfg.probe_budget : drr_probe_budget(n)),
        connect_cap(cfg.connect_attempt_cap),
        rank_bits(3 * address_bits(n)),
        addr_bits(address_bits(n)),
        rank(n, 0.0),
        state(n) {}

  struct NodeState {
    std::uint32_t attempts = 0;         // probes consumed
    bool probe_outstanding = false;     // sent this round, awaiting reply
    std::uint32_t connect_attempts = 0;
    sim::NodeId pending_parent = sim::kNoNode;  // found, not yet acked
    sim::NodeId parent = sim::kNoNode;          // acknowledged parent
    bool settled = false;
  };

  std::uint32_t budget;
  std::uint32_t connect_cap;
  std::uint32_t rank_bits;
  std::uint32_t addr_bits;
  /// Ranks live in their own dense array: the probe-reply handler touches
  /// nothing else, and probes hit random nodes -- a 32 KB rank table stays
  /// cache-resident where the full state records would not.
  std::vector<double> rank;
  std::vector<NodeState> state;
  std::vector<sim::NodeId> active;  // unsettled nodes, ascending
  std::uint64_t total_probes = 0;
  std::uint32_t unsettled = 0;  // maintained by the runner

  void init_ranks(sim::Network<DrrMsg>& net) {
    for (sim::NodeId v : net.alive_nodes()) rank[v] = net.node_rng(v).next_unit();
    unsettled = static_cast<std::uint32_t>(net.alive_nodes().size());
    active = net.alive_nodes();
  }

  /// Settled nodes are pure no-ops in on_round/on_round_end; handing the
  /// engine the shrinking unsettled list keeps the late rounds (few
  /// stragglers retrying connects) from scanning all n nodes.  Pruned in
  /// done(), which runs between rounds -- never while the engine iterates.
  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return active;
  }

  void settle(NodeState& s) {
    if (!s.settled) {
      s.settled = true;
      --unsettled;
    }
  }

  void on_round(sim::Network<DrrMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.settled) return;
    if (s.pending_parent != sim::kNoNode) {
      // Connection phase: call the chosen parent until acknowledged.
      ++s.connect_attempts;
      net.send(v, s.pending_parent, DrrMsg{DrrMsg::Kind::kConnect, 0.0}, addr_bits);
      return;
    }
    if (s.attempts < budget) {
      // Probe a random peer of the scenario topology.
      sim::NodeId u = net.sample_peer(v);
      // Self-samples tell us nothing; on the complete graph skip them
      // cheaply (the analysis assumes distinct samples whp).  On an
      // explicit topology only an isolated node self-samples: its probe
      // is a spent attempt and it becomes a root by exhaustion.
      if (u == v && net.topology().is_complete()) u = (u + 1) % net.size();
      s.probe_outstanding = true;
      ++total_probes;
      net.send(v, u, DrrMsg{DrrMsg::Kind::kProbe, 0.0}, addr_bits);
    }
  }

  void on_message(sim::Network<DrrMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const DrrMsg& m) {
    switch (m.kind) {
      case DrrMsg::Kind::kProbe:
        net.reply(dst, src, DrrMsg{DrrMsg::Kind::kProbeReply, rank[dst]}, rank_bits);
        break;
      case DrrMsg::Kind::kConnect:
        // Record the child; duplicates from retries are idempotent because
        // children are reconstructed from child->parent pointers later.
        net.reply(dst, src, DrrMsg{DrrMsg::Kind::kConnectAck, 0.0}, addr_bits);
        break;
      default:
        break;  // replies handled in on_reply
    }
  }

  void on_reply(sim::Network<DrrMsg>&, sim::NodeId src, sim::NodeId dst, const DrrMsg& m) {
    NodeState& s = state[dst];
    switch (m.kind) {
      case DrrMsg::Kind::kProbeReply:
        s.probe_outstanding = false;
        ++s.attempts;
        if (m.rank > rank[dst]) s.pending_parent = src;
        break;
      case DrrMsg::Kind::kConnectAck:
        s.parent = src;
        settle(s);
        break;
      default:
        break;
    }
  }

  void on_round_end(sim::Network<DrrMsg>&, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.settled) return;
    if (s.probe_outstanding) {
      // The call was lost: the sampled node told us nothing, the attempt
      // is spent (conservative -- can only create extra roots).
      s.probe_outstanding = false;
      ++s.attempts;
    }
    if (s.pending_parent != sim::kNoNode) {
      if (s.connect_attempts >= connect_cap) settle(s);  // root by exhaustion
      return;
    }
    if (s.attempts >= budget) settle(s);  // no higher-ranked node found: root
  }

  [[nodiscard]] bool done(const sim::Network<DrrMsg>&) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [this](sim::NodeId v) { return state[v].settled; }),
                 active.end());
    return unsettled == 0;
  }
};

/// Flat fault-free executor.  With no losses possible, every probe is
/// answered in its own round and the first connect call is acknowledged
/// immediately, so the whole round resolves inline: probe replies read
/// only the static rank table and connect acks read nothing, so no
/// handler can observe another node's same-round mutations -- inlining
/// the two delivery passes is exactly the engine's schedule.  Counters,
/// RNG draw order (ranks then probes, one stream per node) and the
/// resulting forest are bit-identical to the Network path (pinned by the
/// golden determinism tests).
DrrResult run_drr_flat(std::uint32_t n, const RngFactory& rngs,
                       const sim::Scenario& scenario, const DrrConfig& config,
                       std::uint64_t purpose) {
  DrrProtocol proto{n, config};
  const sim::Topology& topology = scenario.topology;
  const bool complete = topology.is_complete();

  // One stream per node, first draw the rank -- the engine's init_ranks.
  std::vector<Rng> rng;
  rng.reserve(n);
  for (NodeId v = 0; v < n; ++v) rng.push_back(rngs.node_stream(v, purpose));
  for (NodeId v = 0; v < n; ++v) proto.rank[v] = rng[v].next_unit();
  proto.unsettled = n;
  proto.active.resize(n);
  for (NodeId v = 0; v < n; ++v) proto.active[v] = v;

  std::uint64_t probes = 0;    // probe + rank-reply exchanges
  std::uint64_t connects = 0;  // connect + ack exchanges
  const sim::Topology::PeerSampler sample = topology.sampler(n);
  const double* rank_of = proto.rank.data();
  const std::uint32_t max_rounds = proto.budget + config.connect_attempt_cap + 2;
  std::uint32_t rounds = 0;
  for (std::uint32_t r = 0; r < max_rounds; ++r) {
    ++rounds;
    for (NodeId v : proto.active) {
      DrrProtocol::NodeState& s = proto.state[v];
      if (s.pending_parent != sim::kNoNode) {
        // Connect + ack, both delivered this round: settled.
        ++s.connect_attempts;
        ++connects;
        s.parent = s.pending_parent;
        proto.settle(s);
        continue;
      }
      if (s.attempts < proto.budget) {
        NodeId u = sample(v, rng[v]);
        if (u == v && complete) u = (u + 1) % n;
        // Probe out, rank reply back, both delivered this round.
        ++probes;
        ++s.attempts;
        if (rank_of[u] > rank_of[v]) s.pending_parent = u;
      }
      if (s.pending_parent == sim::kNoNode && s.attempts >= proto.budget)
        proto.settle(s);  // no higher-ranked node found: root
    }
    proto.active.erase(std::remove_if(proto.active.begin(), proto.active.end(),
                                      [&proto](sim::NodeId v) {
                                        return proto.state[v].settled;
                                      }),
                       proto.active.end());
    if (proto.unsettled == 0) break;
  }

  proto.total_probes = probes;
  sim::Counters counters;
  counters.sent = 2 * (probes + connects);
  counters.delivered = 2 * (probes + connects);
  counters.bits = probes * (proto.addr_bits + proto.rank_bits) +
                  connects * 2 * proto.addr_bits;
  counters.rounds = rounds;
  std::vector<NodeId> parent(n, kNoParent);
  std::vector<bool> member(n, true);
  for (NodeId v = 0; v < n; ++v) parent[v] = proto.state[v].parent;
  DrrResult result{Forest::from_parents(std::move(parent), std::move(member)),
                   std::move(proto.rank), counters, proto.total_probes, rounds};
  return result;
}

}  // namespace

DrrResult run_drr(std::uint32_t n, const RngFactory& rngs, const sim::Scenario& scenario,
                  DrrConfig config) {
  if (n < 2) throw std::invalid_argument("run_drr: need n >= 2");
  const std::uint64_t purpose =
      config.stream_tag != 0 ? derive_seed(0x11ddULL, config.stream_tag) : 0x11ddULL;
  if (scenario.faults.fault_free()) return run_drr_flat(n, rngs, scenario, config, purpose);
  sim::Network<DrrMsg> net{n, rngs, scenario, purpose};
  DrrProtocol proto{n, config};
  proto.init_ranks(net);

  // Probe budget rounds plus connection retries; done() usually fires
  // earlier.  The +2 covers the final connect/ack exchange.
  const std::uint32_t max_rounds = proto.budget + config.connect_attempt_cap + 2;
  const std::uint32_t rounds = net.run(proto, max_rounds);

  std::vector<NodeId> parent(n, kNoParent);
  std::vector<bool> member(n, false);
  std::vector<double> ranks(n, 0.0);
  for (sim::NodeId v : net.alive_nodes()) {
    member[v] = true;
    parent[v] = proto.state[v].parent;
    // A parent that crashed mid-phase (churn) is gone: its orphaned child
    // becomes a root, exactly as if the connection had never been acked.
    if (parent[v] != kNoParent && !net.alive(parent[v])) parent[v] = kNoParent;
    ranks[v] = proto.rank[v];
  }

  DrrResult result{Forest::from_parents(std::move(parent), std::move(member)),
                   std::move(ranks), net.counters(), proto.total_probes, rounds};
  return result;
}

}  // namespace drrg
