#include "drr/drr.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct DrrMsg {
  enum class Kind : std::uint8_t { kProbe, kProbeReply, kConnect, kConnectAck };
  Kind kind;
  double rank = 0.0;  // kProbeReply: responder's rank
};

/// Per-node payload sizes in bits: probes carry only the sender address
/// (implicit in the call); replies carry a rank (an O(log n)-bit
/// discretised value suffices -- see Algorithm 1's remark that ranks from
/// [1, n^3] give the same bounds, i.e. 3 log n bits).
struct DrrProtocol {
  explicit DrrProtocol(std::uint32_t n, const DrrConfig& cfg)
      : budget(cfg.probe_budget != 0 ? cfg.probe_budget : drr_probe_budget(n)),
        connect_cap(cfg.connect_attempt_cap),
        rank_bits(3 * address_bits(n)),
        addr_bits(address_bits(n)),
        state(n) {}

  struct NodeState {
    double rank = 0.0;
    std::uint32_t attempts = 0;         // probes consumed
    bool probe_outstanding = false;     // sent this round, awaiting reply
    std::uint32_t connect_attempts = 0;
    sim::NodeId pending_parent = sim::kNoNode;  // found, not yet acked
    sim::NodeId parent = sim::kNoNode;          // acknowledged parent
    bool settled = false;
  };

  std::uint32_t budget;
  std::uint32_t connect_cap;
  std::uint32_t rank_bits;
  std::uint32_t addr_bits;
  std::vector<NodeState> state;
  std::uint64_t total_probes = 0;
  std::uint32_t unsettled = 0;  // maintained by the runner

  void init_ranks(sim::Network<DrrMsg>& net) {
    for (sim::NodeId v : net.alive_nodes()) state[v].rank = net.node_rng(v).next_unit();
    unsettled = static_cast<std::uint32_t>(net.alive_nodes().size());
  }

  void settle(NodeState& s) {
    if (!s.settled) {
      s.settled = true;
      --unsettled;
    }
  }

  void on_round(sim::Network<DrrMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.settled) return;
    if (s.pending_parent != sim::kNoNode) {
      // Connection phase: call the chosen parent until acknowledged.
      ++s.connect_attempts;
      net.send(v, s.pending_parent, DrrMsg{DrrMsg::Kind::kConnect, 0.0}, addr_bits);
      return;
    }
    if (s.attempts < budget) {
      // Probe a random peer of the scenario topology.
      sim::NodeId u = net.sample_peer(v);
      // Self-samples tell us nothing; on the complete graph skip them
      // cheaply (the analysis assumes distinct samples whp).  On an
      // explicit topology only an isolated node self-samples: its probe
      // is a spent attempt and it becomes a root by exhaustion.
      if (u == v && net.topology().is_complete()) u = (u + 1) % net.size();
      s.probe_outstanding = true;
      ++total_probes;
      net.send(v, u, DrrMsg{DrrMsg::Kind::kProbe, 0.0}, addr_bits);
    }
  }

  void on_message(sim::Network<DrrMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const DrrMsg& m) {
    switch (m.kind) {
      case DrrMsg::Kind::kProbe:
        net.reply(dst, src, DrrMsg{DrrMsg::Kind::kProbeReply, state[dst].rank}, rank_bits);
        break;
      case DrrMsg::Kind::kConnect:
        // Record the child; duplicates from retries are idempotent because
        // children are reconstructed from child->parent pointers later.
        net.reply(dst, src, DrrMsg{DrrMsg::Kind::kConnectAck, 0.0}, addr_bits);
        break;
      default:
        break;  // replies handled in on_reply
    }
  }

  void on_reply(sim::Network<DrrMsg>&, sim::NodeId src, sim::NodeId dst, const DrrMsg& m) {
    NodeState& s = state[dst];
    switch (m.kind) {
      case DrrMsg::Kind::kProbeReply:
        s.probe_outstanding = false;
        ++s.attempts;
        if (m.rank > s.rank) s.pending_parent = src;
        break;
      case DrrMsg::Kind::kConnectAck:
        s.parent = src;
        settle(s);
        break;
      default:
        break;
    }
  }

  void on_round_end(sim::Network<DrrMsg>&, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.settled) return;
    if (s.probe_outstanding) {
      // The call was lost: the sampled node told us nothing, the attempt
      // is spent (conservative -- can only create extra roots).
      s.probe_outstanding = false;
      ++s.attempts;
    }
    if (s.pending_parent != sim::kNoNode) {
      if (s.connect_attempts >= connect_cap) settle(s);  // root by exhaustion
      return;
    }
    if (s.attempts >= budget) settle(s);  // no higher-ranked node found: root
  }

  [[nodiscard]] bool done(const sim::Network<DrrMsg>&) const { return unsettled == 0; }
};

}  // namespace

DrrResult run_drr(std::uint32_t n, const RngFactory& rngs, const sim::Scenario& scenario,
                  DrrConfig config) {
  if (n < 2) throw std::invalid_argument("run_drr: need n >= 2");
  const std::uint64_t purpose =
      config.stream_tag != 0 ? derive_seed(0x11ddULL, config.stream_tag) : 0x11ddULL;
  sim::Network<DrrMsg> net{n, rngs, scenario, purpose};
  DrrProtocol proto{n, config};
  proto.init_ranks(net);

  // Probe budget rounds plus connection retries; done() usually fires
  // earlier.  The +2 covers the final connect/ack exchange.
  const std::uint32_t max_rounds = proto.budget + config.connect_attempt_cap + 2;
  const std::uint32_t rounds = net.run(proto, max_rounds);

  std::vector<NodeId> parent(n, kNoParent);
  std::vector<bool> member(n, false);
  std::vector<double> ranks(n, 0.0);
  for (sim::NodeId v : net.alive_nodes()) {
    member[v] = true;
    parent[v] = proto.state[v].parent;
    // A parent that crashed mid-phase (churn) is gone: its orphaned child
    // becomes a root, exactly as if the connection had never been acked.
    if (parent[v] != kNoParent && !net.alive(parent[v])) parent[v] = kNoParent;
    ranks[v] = proto.state[v].rank;
  }

  DrrResult result{Forest::from_parents(std::move(parent), std::move(member)),
                   std::move(ranks), net.counters(), proto.total_probes, rounds};
  return result;
}

}  // namespace drrg
