#pragma once
// Umbrella header: the whole public surface of the drrg library.
//
//   #include "drrg.hpp"
//   auto out = drrg::drr_gossip_ave(n, values, seed);
//
// or, through the uniform runner facade (any algorithm, any aggregate):
//
//   drrg::api::RunSpec spec{.n = n, .aggregate = drrg::api::Aggregate::kAve};
//   auto report = drrg::api::run("drr", spec);
//
// Fine-grained headers remain available for users who want a single
// subsystem (e.g. only the simulator or only the Chord overlay).

#include "aggregate/derived.hpp"       // Any/All, leader election, histogram
#include "aggregate/drr_gossip.hpp"    // Algorithms 7-8: the headline API
#include "aggregate/extrema.hpp"       // loss-robust Count/Sum extension
#include "aggregate/quantile.hpp"      // quantile/median via Rank
#include "aggregate/sparse.hpp"        // §4: Local-DRR + routed gossip on Chord
#include "api/api.hpp"                 // uniform RunSpec/RunReport vocabulary
#include "api/registry.hpp"            // algorithm registry + run/run_trials/run_matrix
#include "baselines/chord_uniform.hpp"
#include "baselines/efficient_gossip.hpp"
#include "baselines/pairwise_averaging.hpp"
#include "baselines/uniform_gossip.hpp"
#include "chord/chord.hpp"
#include "drr/drr.hpp"
#include "drr/local_drr.hpp"
#include "forest/forest.hpp"
#include "rootgossip/gossip_ave.hpp"
#include "rootgossip/gossip_max.hpp"
#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "topology/builders.hpp"
#include "topology/graph.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"
