#pragma once
// drrg::api -- the uniform runner facade over every algorithm in the
// library.
//
// The library grew as ~10 free-function families (the DRR-gossip
// pipelines, four baselines, the §4 sparse/Chord variants), each with
// its own signature and result struct.  This layer gives all of them one
// vocabulary:
//
//   * Aggregate        -- what is being computed (Max .. Leader);
//   * RunSpec          -- one run's inputs: n, values (or a synthetic
//                         workload derived from the seed), faults, an
//                         optional per-algorithm config, and the
//                         aggregate (plus its rank threshold);
//   * RunReport        -- one run's outputs: computed value, exact
//                         ground truth, errors, consensus, and the
//                         message/round accounting (per-phase where the
//                         algorithm has phases);
//   * Registry         -- see api/registry.hpp: named algorithms with
//                         declared aggregate support and an
//                         invoke(RunSpec) -> RunReport adapter.
//
// The CLI, the bench harnesses, the examples and the matrix tests all
// sit on this seam, so a newly registered algorithm (or aggregate)
// becomes visible to every consumer at once.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "aggregate/extrema.hpp"
#include "aggregate/quantile.hpp"
#include "aggregate/sparse.hpp"
#include "aggregate/types.hpp"
#include "baselines/chord_uniform.hpp"
#include "baselines/efficient_gossip.hpp"
#include "baselines/pairwise_averaging.hpp"
#include "baselines/uniform_gossip.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"
#include "support/workload.hpp"

namespace drrg::api {

/// The aggregate families of the paper's abstract (§1), plus the derived
/// Leader election of §6.
enum class Aggregate : std::uint8_t {
  kMax,
  kMin,
  kAve,
  kSum,
  kCount,
  kRank,
  kMedian,
  kLeader,
};

/// Every aggregate, in a fixed order (for matrix enumeration).
inline constexpr Aggregate kAllAggregates[] = {
    Aggregate::kMax,  Aggregate::kMin,    Aggregate::kAve,    Aggregate::kSum,
    Aggregate::kCount, Aggregate::kRank,  Aggregate::kMedian, Aggregate::kLeader,
};

[[nodiscard]] std::string_view to_string(Aggregate agg) noexcept;
[[nodiscard]] std::optional<Aggregate> aggregate_from_name(std::string_view name) noexcept;

/// Which pipeline the `drr` algorithm family runs.
enum class Pipeline : std::uint8_t {
  kDense,   ///< Algorithms 7-8: random phone call pipelines (default)
  kSparse,  ///< §4: Local-DRR + tree aggregation + routed root gossip on
            ///< the spec's explicit substrate (accurate sparse Ave)
};

[[nodiscard]] std::string_view to_string(Pipeline pipeline) noexcept;
[[nodiscard]] std::optional<Pipeline> pipeline_from_name(std::string_view name) noexcept;

/// How a run executes: in the lockstep simulator (one process, global
/// round clock -- the default, and the substrate of every published
/// number), or as n real OS processes exchanging UDP datagrams on
/// localhost (the drrg_node runtime behind the same facade).
enum class Transport : std::uint8_t {
  kSim,  ///< sim::Network lockstep simulator (deterministic, any n)
  kUdp,  ///< forked drrg_node processes over 127.0.0.1 UDP sockets
};

[[nodiscard]] std::string_view to_string(Transport transport) noexcept;
[[nodiscard]] std::optional<Transport> transport_from_name(std::string_view name) noexcept;

/// Per-algorithm configuration.  std::monostate selects the algorithm's
/// defaults (the paper's parameters); otherwise the variant must hold the
/// config type of the algorithm being invoked, else the run is rejected.
using AlgorithmConfig =
    std::variant<std::monostate, DrrGossipConfig, UniformPushMaxConfig,
                 UniformPushSumConfig, PairwiseConfig, EfficientGossipConfig,
                 ExtremaConfig, QuantileConfig, SparseGossipConfig, ChordUniformConfig>;

/// Everything one run needs.  Deterministic: two identical RunSpecs
/// produce identical RunReports.
struct RunSpec {
  std::uint32_t n = 4096;
  Aggregate aggregate = Aggregate::kAve;
  std::uint64_t seed = 42;
  /// Fault schedule: loss + start-time crashes + scheduled mid-run churn.
  sim::FaultSchedule faults{};
  /// Communication substrate (complete graph = the paper's model).
  /// Randomized topologies are materialised per run from the spec's seed.
  sim::TopologySpec topology{};
  /// `drr` only: dense (default) or the §4 sparse pipeline, which
  /// requires an explicit topology (Local-DRR runs on its CSR adjacency
  /// and Phase III routes on it hop by hop).
  Pipeline pipeline = Pipeline::kDense;
  /// Execution substrate: the lockstep simulator (default), or -- for
  /// algorithms that declare it -- real forked processes over UDP.
  Transport transport = Transport::kSim;
  /// kUdp only: first UDP port (node v binds udp_port_base + v);
  /// 0 = probe for a free range.
  std::uint16_t udp_port_base = 0;
  /// kUdp only: explicit "host:port,host:port,..." list, position i =
  /// node i (overrides udp_port_base; must be loopback addresses for the
  /// fork-based runner).  Empty = the udp_port_base + v scheme.
  std::string udp_seed_list;
  /// kUdp only: datagram-level chaos spec in the scenario_text grammar
  /// ("drop:0.1,dup:0.05,reorder:0.2/4,cut:24@500-4000"); empty = none.
  std::string udp_chaos;
  /// kUdp only: wall-clock milliseconds per scheduled round.  > 0 maps
  /// the fault schedule's block-crash/partition/join/latency events onto
  /// the real runtime (SIGKILL marks, chaos cuts, late spawns); 0 keeps
  /// the legacy loss/crash/churn-only behavior and rejects the rest.
  std::int64_t udp_round_ms = 0;
  /// Per-node inputs.  Empty = synthesize workload::make_values(n, seed,
  /// workload_range) (algorithms requiring positive inputs substitute
  /// workload::positive_range() when the range admits values <= 0).
  std::vector<double> values;
  workload::ValueRange workload_range{};
  /// Threshold x of the Rank aggregate: |{ alive v : values[v] < x }|.
  double rank_threshold = 0.0;
  /// Worker threads for *intra-run* fan-outs -- through the facade that
  /// is the Median bisection's Min/Max/Count bracket (the direct-call
  /// drr_gossip_histogram API takes the same knob as a parameter).
  /// 1 = inline, 0 = all hardware cores; bit-identical for any value.
  /// run_trials threads its leftover budget through here, so nesting
  /// under the trial executor never oversubscribes: outer workers x
  /// intra threads <= the requested total.
  unsigned intra_threads = 1;
  AlgorithmConfig config{};
};

/// Uniform result of one run, whichever algorithm produced it.
struct RunReport {
  std::string algorithm;
  Aggregate aggregate = Aggregate::kAve;
  std::uint32_t n = 0;
  std::uint64_t seed = 0;

  /// False iff the algorithm does not implement the requested aggregate.
  bool supported = true;
  /// Non-empty when the run could not produce a value (unsupported pair,
  /// config type mismatch, or an exception from the algorithm).
  std::string error;

  double value = 0.0;  ///< the consensus value the algorithm computed
  double truth = 0.0;  ///< exact aggregate over the participating nodes
  bool consensus = false;
  std::uint32_t rounds = 0;
  sim::Counters cost;    ///< whole-run message/round accounting
  PhaseMetrics phases;   ///< per-phase breakdown (zeroed where the
                         ///< algorithm has no DRR-gossip phase structure)
  ForestSummary forest;  ///< Phase I forest shape (DRR family only)
  /// Final-survivor mask: nodes alive after the whole fault schedule
  /// (empty when the run has no crashes to track).
  std::vector<bool> participating;

  [[nodiscard]] bool ok() const noexcept { return supported && error.empty(); }
  [[nodiscard]] double abs_error() const noexcept;
  /// abs_error / max(1, |truth|): the guarded relative error used by the
  /// failure benches (finite even when the truth is near zero).
  [[nodiscard]] double rel_error() const noexcept;
};

/// Validates a fault schedule at the facade seam: probabilities and
/// fractions must lie in [0, 1] (event fractions in (0, 1)), churn/join
/// events may not fire at round 0 (start-time crashes belong in
/// crash_fraction; a round-0 join is a node that was simply present),
/// partition heals must follow their cuts, and latency windows must be
/// ordered.  Returns the first violation as a message, nullopt when the
/// schedule is well-formed.  api::run rejects invalid schedules with this
/// message instead of letting fault_timeline mis-cast a negative or
/// saturated fraction.
[[nodiscard]] std::optional<std::string> validate_faults(
    const sim::FaultSchedule& faults);

}  // namespace drrg::api
