#include "api/registry.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "api/parallel.hpp"
#include "support/rng.hpp"

namespace drrg::api {

namespace {

constexpr std::string_view kAggregateNames[] = {
    "max", "min", "ave", "sum", "count", "rank", "median", "leader",
};

}  // namespace

std::string_view to_string(Aggregate agg) noexcept {
  return kAggregateNames[static_cast<std::size_t>(agg)];
}

std::optional<Aggregate> aggregate_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < std::size(kAggregateNames); ++i)
    if (kAggregateNames[i] == name) return static_cast<Aggregate>(i);
  return std::nullopt;
}

std::string_view to_string(Pipeline pipeline) noexcept {
  return pipeline == Pipeline::kSparse ? "sparse" : "dense";
}

std::optional<Pipeline> pipeline_from_name(std::string_view name) noexcept {
  if (name == "dense") return Pipeline::kDense;
  if (name == "sparse") return Pipeline::kSparse;
  return std::nullopt;
}

std::string_view to_string(Transport transport) noexcept {
  return transport == Transport::kUdp ? "udp" : "sim";
}

std::optional<Transport> transport_from_name(std::string_view name) noexcept {
  if (name == "sim") return Transport::kSim;
  if (name == "udp") return Transport::kUdp;
  return std::nullopt;
}

std::optional<std::string> validate_faults(const sim::FaultSchedule& faults) {
  const auto bad = [](double x) { return !(x >= 0.0) || x > 1.0; };  // NaN-safe
  if (bad(faults.loss_prob)) return "loss_prob must lie in [0, 1]";
  if (bad(faults.crash_fraction) || faults.crash_fraction >= 1.0)
    return "crash_fraction must lie in [0, 1)";
  for (const sim::CrashEvent& e : faults.churn) {
    if (e.round == 0)
      return "churn events start at round 1 (round-0 crashes belong in "
             "crash_fraction)";
    if (bad(e.fraction) || e.fraction == 0.0 || e.fraction >= 1.0)
      return "churn fractions must lie in (0, 1)";
  }
  for (const sim::JoinEvent& e : faults.joins) {
    if (e.round == 0)
      return "join events start at round 1 (a round-0 joiner is simply a "
             "present node)";
    if (bad(e.fraction) || e.fraction == 0.0 || e.fraction >= 1.0)
      return "join fractions must lie in (0, 1)";
  }
  for (const sim::BlockCrashEvent& b : faults.blocks) {
    if (b.lo >= b.hi) return "block-crash events need lo < hi";
    if (b.stride != 0 && b.width == 0)
      return "strided block-crash events need width >= 1";
    if (b.stride != 0 && b.width > b.stride)
      return "block-crash width must not exceed its stride";
  }
  for (const sim::PartitionEvent& p : faults.partitions) {
    if (p.heal_round <= p.round) return "partition heal rounds must follow the cut";
    if (p.boundary == 0) return "partition boundary 0 cuts nothing";
  }
  const sim::LatencyModel& l = faults.latency;
  if (l.kind == sim::LatencyModel::Kind::kUniform ||
      l.kind == sim::LatencyModel::Kind::kHeavyTail) {
    if (l.max_delay < l.min_delay) return "latency window needs min <= max";
  }
  if (bad(l.tail_prob)) return "latency tail_prob must lie in [0, 1]";
  return std::nullopt;
}

double RunReport::abs_error() const noexcept { return std::fabs(value - truth); }

double RunReport::rel_error() const noexcept {
  return abs_error() / std::max(1.0, std::fabs(truth));
}

bool AlgorithmInfo::supports(Aggregate agg) const noexcept {
  return std::find(aggregates.begin(), aggregates.end(), agg) != aggregates.end();
}

bool AlgorithmInfo::supports(Transport transport) const noexcept {
  return std::find(transports.begin(), transports.end(), transport) != transports.end();
}

Registry& Registry::instance() {
  static Registry registry;
  static std::once_flag builtins_once;
  std::call_once(builtins_once, [] { detail::register_builtin_algorithms(registry); });
  return registry;
}

void Registry::add(AlgorithmInfo info) {
  if (info.name.empty()) throw std::invalid_argument("algorithm name must be non-empty");
  if (!info.invoke)
    throw std::invalid_argument("algorithm '" + info.name + "' has no invoke adapter");
  if (find(info.name) != nullptr)
    throw std::invalid_argument("algorithm '" + info.name + "' registered twice");
  if (info.transports.empty()) info.transports = {Transport::kSim};
  algos_.push_back(std::move(info));
}

const AlgorithmInfo* Registry::find(std::string_view name) const noexcept {
  for (const AlgorithmInfo& a : algos_)
    if (a.name == name) return &a;
  return nullptr;
}

std::vector<const AlgorithmInfo*> Registry::algorithms() const {
  std::vector<const AlgorithmInfo*> out;
  out.reserve(algos_.size());
  for (const AlgorithmInfo& a : algos_) out.push_back(&a);
  return out;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const AlgorithmInfo& a : algos_) out.push_back(a.name);
  return out;
}

Registration::Registration(AlgorithmInfo info) {
  Registry::instance().add(std::move(info));
}

RunReport run(std::string_view algorithm, const RunSpec& spec) {
  RunReport report;
  report.algorithm = std::string{algorithm};
  report.aggregate = spec.aggregate;
  report.n = spec.n;
  report.seed = spec.seed;

  const AlgorithmInfo* algo = Registry::instance().find(algorithm);
  if (algo == nullptr) {
    report.supported = false;
    report.error = "unknown algorithm '" + report.algorithm + "'";
    return report;
  }
  if (!algo->supports(spec.aggregate)) {
    report.supported = false;
    report.error = "aggregate '" + std::string{to_string(spec.aggregate)} +
                   "' not supported by '" + algo->name + "'";
    return report;
  }
  if (!algo->supports(spec.transport)) {
    report.supported = false;
    report.error = "transport '" + std::string{to_string(spec.transport)} +
                   "' not supported by '" + algo->name + "'";
    return report;
  }
  if (std::optional<std::string> bad = validate_faults(spec.faults)) {
    report.error = "invalid fault schedule: " + *bad;
    return report;
  }
  try {
    report = algo->invoke(spec);
  } catch (const std::exception& e) {
    report.error = e.what();
  } catch (...) {
    report.error = "algorithm '" + algo->name + "' threw a non-std::exception";
  }
  report.algorithm = algo->name;
  report.aggregate = spec.aggregate;
  report.n = spec.n;
  report.seed = spec.seed;
  return report;
}

std::uint64_t trial_seed(std::uint64_t base_seed, int t) noexcept {
  if (t == 0) return base_seed;  // trial 0 is the spec's own seed
  return derive_seed(base_seed, 0x7261ULL, static_cast<std::uint64_t>(t));
}

std::vector<RunReport> run_trials(std::string_view algorithm, const RunSpec& spec,
                                  int trials, unsigned threads) {
  if (trials < 0) trials = 0;
  (void)Registry::instance();  // build the registry before workers race to it
  // Shared thread budget: trial-level workers take priority, whatever is
  // left over flows into each trial's intra-run fan-outs (e.g. a Median
  // sweep of 2 trials at --threads 8 runs 2 trial workers x 4 intra
  // threads).  Purely a scheduling decision -- results are bit-identical.
  const unsigned outer = resolve_threads(threads, static_cast<std::size_t>(trials));
  const unsigned total = resolve_threads(threads, std::size_t{1} << 20);
  const unsigned leftover = outer > 0 ? std::max(1u, total / outer) : 1;
  return parallel_map(static_cast<std::size_t>(trials), threads, [&](std::size_t t) {
    RunSpec trial = spec;
    trial.seed = trial_seed(spec.seed, static_cast<int>(t));
    // 0 means "all hardware cores" and must survive the merge.
    trial.intra_threads =
        spec.intra_threads == 0 ? 0 : std::max(spec.intra_threads, leftover);
    return run(algorithm, trial);
  });
}

std::vector<RunReport> run_matrix(const RunSpec& base, unsigned threads) {
  const auto algos = Registry::instance().algorithms();
  constexpr std::size_t kAggs = std::size(kAllAggregates);
  return parallel_map(algos.size() * kAggs, threads, [&](std::size_t i) {
    RunSpec spec = base;
    spec.aggregate = kAllAggregates[i % kAggs];
    return run(algos[i / kAggs]->name, spec);
  });
}

}  // namespace drrg::api
