#pragma once
// Canonical 64-bit digest of a RunReport (FNV-1a over a fixed-order byte
// serialisation of every result field).  Two reports hash equal iff they
// are bit-identical in everything the facade promises to be deterministic:
// the computed value and truth (as IEEE-754 bit patterns), consensus, the
// whole message/round accounting, the forest shape and the participation
// mask.  The golden determinism tests pin these digests across engine
// rewrites and thread counts; the bench goldens diff them across PRs.

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/api.hpp"

namespace drrg::api {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] inline std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                                               std::uint64_t h) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) noexcept {
  return fnv1a_bytes(&v, sizeof(v), h);
}

[[nodiscard]] inline std::uint64_t hash_counters(const sim::Counters& c,
                                                 std::uint64_t h) noexcept {
  h = fnv1a_u64(c.sent, h);
  h = fnv1a_u64(c.delivered, h);
  h = fnv1a_u64(c.lost, h);
  h = fnv1a_u64(c.bits, h);
  h = fnv1a_u64(c.rounds, h);
  return h;
}

/// Digest of one report.  Field order is part of the golden contract: do
/// not reorder without regenerating every committed golden.
[[nodiscard]] inline std::uint64_t report_checksum(const RunReport& r) noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_bytes(r.algorithm.data(), r.algorithm.size(), h);
  h = fnv1a_u64(static_cast<std::uint64_t>(r.aggregate), h);
  h = fnv1a_u64(r.n, h);
  h = fnv1a_u64(r.seed, h);
  h = fnv1a_u64(r.supported ? 1 : 0, h);
  h = fnv1a_bytes(r.error.data(), r.error.size(), h);
  h = fnv1a_u64(std::bit_cast<std::uint64_t>(r.value), h);
  h = fnv1a_u64(std::bit_cast<std::uint64_t>(r.truth), h);
  h = fnv1a_u64(r.consensus ? 1 : 0, h);
  h = fnv1a_u64(r.rounds, h);
  h = hash_counters(r.cost, h);
  h = hash_counters(r.phases.drr, h);
  h = hash_counters(r.phases.convergecast, h);
  h = hash_counters(r.phases.root_broadcast, h);
  h = hash_counters(r.phases.gossip, h);
  h = hash_counters(r.phases.spread, h);
  h = hash_counters(r.phases.value_broadcast, h);
  h = fnv1a_u64(r.forest.num_trees, h);
  h = fnv1a_u64(r.forest.max_tree_size, h);
  h = fnv1a_u64(r.forest.max_tree_height, h);
  h = fnv1a_u64(r.forest.largest_tree_root, h);
  h = fnv1a_u64(r.participating.size(), h);
  for (bool b : r.participating) h = fnv1a_u64(b ? 1 : 0, h);
  return h;
}

/// Digest of a whole sweep (order-sensitive).
[[nodiscard]] inline std::uint64_t sweep_checksum(
    const std::vector<RunReport>& reports) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const RunReport& r : reports) h = fnv1a_u64(report_checksum(r), h);
  return h;
}

}  // namespace drrg::api
