#pragma once
// The algorithm registry: the one place an algorithm plugs into to become
// visible to the CLI (--list and dispatch), the benches, the examples and
// the matrix tests.
//
// Each entry declares a stable name, a one-line description, the set of
// aggregates it implements, and an invoke adapter that maps the uniform
// RunSpec onto the algorithm's native signature and its native result
// back onto a RunReport.  The built-in algorithms (drr, uniform,
// efficient, pairwise, extrema, chord-drr, chord-uniform) register
// themselves when the registry is first touched; external code adds more
// via Registry::instance().add(...) or a static api::Registration object.

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "api/api.hpp"

namespace drrg::api {

struct AlgorithmInfo {
  std::string name;         ///< CLI-facing identifier, e.g. "chord-drr"
  std::string description;  ///< one line for --list / README tables
  std::vector<Aggregate> aggregates;  ///< supported aggregate set
  /// Execution substrates the adapter implements; empty = {kSim}
  /// (normalised by Registry::add, so consumers can iterate directly).
  std::vector<Transport> transports;
  std::function<RunReport(const RunSpec&)> invoke;

  [[nodiscard]] bool supports(Aggregate agg) const noexcept;
  [[nodiscard]] bool supports(Transport transport) const noexcept;
};

class Registry {
 public:
  /// The process-wide registry; built-ins are registered on first use.
  [[nodiscard]] static Registry& instance();

  /// Registers an algorithm.  Throws std::invalid_argument on a duplicate
  /// name or a missing invoke adapter.
  void add(AlgorithmInfo info);

  /// Looks an algorithm up by name; nullptr when absent.  The pointer is
  /// stable for the registry's lifetime.
  [[nodiscard]] const AlgorithmInfo* find(std::string_view name) const noexcept;

  /// All algorithms in registration order.
  [[nodiscard]] std::vector<const AlgorithmInfo*> algorithms() const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  Registry() = default;
  std::deque<AlgorithmInfo> algos_;  // deque: element pointers stay valid across add()
};

/// RAII registrar for static registration of out-of-library algorithms:
///   static const api::Registration reg{{.name = "mine", ...}};
struct Registration {
  explicit Registration(AlgorithmInfo info);
};

/// Runs `algorithm` on `spec`.  Never throws: an unknown algorithm, an
/// unsupported (algorithm, aggregate) pair, a config type mismatch or an
/// exception inside the algorithm comes back as a RunReport with
/// ok() == false and a populated error.
[[nodiscard]] RunReport run(std::string_view algorithm, const RunSpec& spec);

/// The root seed trial `t` of a sweep starting from `base_seed` runs
/// with: derived (not consecutive) so trials are decorrelated and
/// independent of execution order.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed, int t) noexcept;

/// Monte-Carlo helper: `trials` runs with per-trial derived root seeds
/// (a fresh synthetic workload per trial when spec.values is empty),
/// executed on a deterministic thread pool.  Results are ordered by trial
/// index and bit-identical for every `threads` value (0 = all hardware
/// cores, 1 = serial).
[[nodiscard]] std::vector<RunReport> run_trials(std::string_view algorithm,
                                                const RunSpec& spec, int trials,
                                                unsigned threads = 1);

/// The full algorithm x aggregate matrix on one base spec: every
/// registered algorithm crossed with every Aggregate, unsupported pairs
/// reported (not skipped) with supported == false.  Cells run on the same
/// deterministic executor as run_trials.
[[nodiscard]] std::vector<RunReport> run_matrix(const RunSpec& base,
                                                unsigned threads = 1);

namespace detail {
/// Defined in algorithms.cpp; called once by Registry::instance().  The
/// hard symbol reference keeps the adapters' object file linked into
/// static-library consumers.
void register_builtin_algorithms(Registry& registry);
}  // namespace detail

}  // namespace drrg::api
