#pragma once
// Text <-> scenario parsing shared by drrg_cli and the bench harnesses,
// so every front-end spells topologies and fault schedules the same way:
//
//   --topology    complete | chord-ring | random-regular | grid | torus
//   --churn       R:F[,R:F...]   e.g. "10:0.1,20:0.05" -- crash 10% of the
//                 then-alive nodes at round 10 and 5% more at round 20.
//   --join        R:F[,R:F...]   e.g. "8:0.05" -- 5% of the id space joins
//                 at round 8 (deferred out of the round-0 cohort).
//   --block-crash R:LO-HI[:STRIDE/WIDTH][,...]  e.g. "10:64-128" (rack) or
//                 "10:132-192:16/4" (grid rectangle on a 16-wide lattice).
//   --partition   R:B[:H][,...]  e.g. "10:128:20" -- cut the id space at
//                 boundary 128 from round 10, heal at round 20 (no :H =
//                 never heals).
//   --latency     fixed:D | uniform:A-B | tail:A-B:P  -- per-call delay in
//                 rounds (event-time delivery); absent/zero = historical
//                 lockstep.
//   --chaos       datagram-level adversity for the real UDP runtime,
//                 comma-joined tokens:
//                   drop:P            Bernoulli datagram loss
//                   dup:P             duplicate the datagram
//                   corrupt:P         flip one byte (wire checksum rejects)
//                   reorder:P[/SPAN]  hold back for up to SPAN later sends
//                   delay:<latency>   per-datagram delay, latency grammar
//                                     with ms units (e.g. delay:tail:5-150:0.1)
//                   cut:B@S[-H]       partition at boundary B from S ms,
//                                     healing at H ms (omit -H: never)
//                 e.g. "drop:0.1,dup:0.05,reorder:0.2/4,cut:24@500-4000".

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/chaos.hpp"
#include "sim/counters.hpp"
#include "sim/topology.hpp"

namespace drrg::api {

/// Parses a churn schedule "round:fraction[,round:fraction...]".
/// Fractions must be in (0, 1); rounds are global round indices.
/// Returns nullopt on malformed input; an empty string parses to {}.
[[nodiscard]] std::optional<std::vector<sim::CrashEvent>> parse_churn(
    std::string_view text);

/// "10:0.1,20:0.05" rendering of a schedule ("" when empty).
[[nodiscard]] std::string format_churn(const std::vector<sim::CrashEvent>& churn);

/// Parses a join schedule "round:fraction[,...]" (same grammar as churn).
[[nodiscard]] std::optional<std::vector<sim::JoinEvent>> parse_joins(
    std::string_view text);

[[nodiscard]] std::string format_joins(const std::vector<sim::JoinEvent>& joins);

/// Parses block-crash events "R:LO-HI[:STRIDE/WIDTH][,...]": at round R
/// every id in [LO, HI) crashes; with :STRIDE/WIDTH only offsets whose
/// (v - LO) % STRIDE < WIDTH do (a rectangle on a row-major lattice of
/// STRIDE columns).
[[nodiscard]] std::optional<std::vector<sim::BlockCrashEvent>> parse_blocks(
    std::string_view text);

[[nodiscard]] std::string format_blocks(const std::vector<sim::BlockCrashEvent>& blocks);

/// Parses partition events "R:B[:H][,...]": from round R messages
/// straddling boundary B are dropped; an optional :H heals the cut at
/// round H.
[[nodiscard]] std::optional<std::vector<sim::PartitionEvent>> parse_partitions(
    std::string_view text);

[[nodiscard]] std::string format_partitions(
    const std::vector<sim::PartitionEvent>& partitions);

/// Parses a latency model: "" or "zero" (no delay), "fixed:D",
/// "uniform:A-B", "tail:A-B:P" (delay A, but with probability P a
/// straggler uniform in [A, B]).
[[nodiscard]] std::optional<sim::LatencyModel> parse_latency(std::string_view text);

/// "fixed:3" / "uniform:0-4" / "tail:1-16:0.05" rendering ("" when zero).
[[nodiscard]] std::string format_latency(const sim::LatencyModel& latency);

/// Parses a chaos spec (grammar in the header comment).  "" and "none"
/// parse to the zero spec (passthrough).  Probabilities are in (0, 1].
[[nodiscard]] std::optional<net::ChaosSpec> parse_chaos(std::string_view text);

/// Canonical rendering of a chaos spec ("" when zero).
[[nodiscard]] std::string format_chaos(const net::ChaosSpec& spec);

/// All parseable topology names, space-separated (for usage strings).
[[nodiscard]] std::string topology_names();

}  // namespace drrg::api
