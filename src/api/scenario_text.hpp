#pragma once
// Text <-> scenario parsing shared by drrg_cli and the bench harnesses,
// so every front-end spells topologies and churn schedules the same way:
//
//   --topology complete | chord-ring | random-regular | grid | torus
//   --churn    R:F[,R:F...]   e.g. "10:0.1,20:0.05" -- crash 10% of the
//              then-alive nodes at round 10 and 5% more at round 20.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/counters.hpp"
#include "sim/topology.hpp"

namespace drrg::api {

/// Parses a churn schedule "round:fraction[,round:fraction...]".
/// Fractions must be in (0, 1); rounds are global round indices.
/// Returns nullopt on malformed input; an empty string parses to {}.
[[nodiscard]] std::optional<std::vector<sim::CrashEvent>> parse_churn(
    std::string_view text);

/// "10:0.1,20:0.05" rendering of a schedule ("" when empty).
[[nodiscard]] std::string format_churn(const std::vector<sim::CrashEvent>& churn);

/// All parseable topology names, space-separated (for usage strings).
[[nodiscard]] std::string topology_names();

}  // namespace drrg::api
