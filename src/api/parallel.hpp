#pragma once
// Historical location of the deterministic parallel executor.  The
// implementation moved to support/parallel.hpp so the aggregate layer can
// fan intra-run sub-runs (quantile bracket, histogram rank queries) onto
// the same executor without depending on the api facade; this header
// keeps the api::parallel_map / api::resolve_threads spellings working.

#include "support/parallel.hpp"

namespace drrg::api {

using drrg::parallel_map;
using drrg::resolve_threads;

}  // namespace drrg::api
