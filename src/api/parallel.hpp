#pragma once
// Deterministic parallel trial executor.
//
// Monte-Carlo sweeps (run_trials, run_matrix) are embarrassingly parallel:
// every cell is a pure function of its RunSpec (all randomness flows from
// the spec's root seed, no globals are mutated after the registry is
// built).  The executor therefore guarantees *bit-identical* output for
// any thread count, including 1:
//
//   * the task list and each task's inputs are fixed up front (per-trial
//     root seeds are derived from the base seed by index, never from
//     execution order);
//   * workers pull task indices from an atomic counter and write results
//     into a pre-sized slot array -- results are ordered by task index,
//     not completion order;
//   * nothing about scheduling feeds back into any task's computation.
//
// So `threads` is purely a wall-clock knob; correctness tests can run the
// same sweep at --threads 1/4/8 and memcmp the reports.

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

namespace drrg::api {

/// Resolves a thread-count request: 0 = one thread per hardware core,
/// otherwise the request itself, clamped to the task count.
[[nodiscard]] inline unsigned resolve_threads(unsigned requested, std::size_t tasks) {
  unsigned t = requested != 0 ? requested : std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (tasks < t) t = static_cast<unsigned>(tasks == 0 ? 1 : tasks);
  return t;
}

/// Runs fn(i) for every i in [0, count) on `threads` workers and returns
/// the results ordered by index.  With threads <= 1 the loop runs inline
/// (no thread is spawned).  The first exception (by task index) is
/// rethrown after all workers join.
template <class F>
auto parallel_map(std::size_t count, unsigned threads, F&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> results(count);
  if (count == 0) return results;

  const unsigned workers = resolve_threads(threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(count);
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

}  // namespace drrg::api
