#include "api/scenario_text.hpp"

#include <cstdio>
#include <cstdlib>

namespace drrg::api {

namespace {

// Splits "a,b,c" and hands each piece to `item_fn`; any piece it rejects
// rejects the whole schedule.  All the event grammars share this comma
// layer and differ only per item.
template <typename Fn>
bool for_each_item(std::string_view text, Fn&& item_fn) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    if (!item_fn(text.substr(pos, comma - pos))) return false;
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return true;
}

bool parse_u32(std::string_view text, std::uint32_t* out) {
  if (text.empty()) return false;
  const std::string str{text};
  char* end = nullptr;
  const unsigned long v = std::strtoul(str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_frac(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string str{text};
  char* end = nullptr;
  const double v = std::strtod(str.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (v <= 0.0 || v >= 1.0) return false;
  *out = v;
  return true;
}

// "A-B" -> two u32s with A <= B.
bool parse_range(std::string_view text, std::uint32_t* lo, std::uint32_t* hi) {
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos) return false;
  if (!parse_u32(text.substr(0, dash), lo)) return false;
  if (!parse_u32(text.substr(dash + 1), hi)) return false;
  return *lo <= *hi;
}

}  // namespace

std::optional<std::vector<sim::CrashEvent>> parse_churn(std::string_view text) {
  std::vector<sim::CrashEvent> events;
  if (text.empty()) return events;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= item.size())
      return std::nullopt;
    const std::string round_str{item.substr(0, colon)};
    const std::string frac_str{item.substr(colon + 1)};
    char* end = nullptr;
    const unsigned long round = std::strtoul(round_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return std::nullopt;
    const double fraction = std::strtod(frac_str.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    if (fraction <= 0.0 || fraction >= 1.0) return std::nullopt;
    events.push_back({static_cast<std::uint32_t>(round), fraction});
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return events;
}

std::string format_churn(const std::vector<sim::CrashEvent>& churn) {
  std::string out;
  char buf[64];
  for (const sim::CrashEvent& e : churn) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%u:%g", e.round, e.fraction);
    out += buf;
  }
  return out;
}

std::optional<std::vector<sim::JoinEvent>> parse_joins(std::string_view text) {
  std::vector<sim::JoinEvent> events;
  if (text.empty()) return events;
  const bool ok = for_each_item(text, [&](std::string_view item) {
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return false;
    sim::JoinEvent e{};
    if (!parse_u32(item.substr(0, colon), &e.round)) return false;
    if (!parse_frac(item.substr(colon + 1), &e.fraction)) return false;
    events.push_back(e);
    return true;
  });
  if (!ok) return std::nullopt;
  return events;
}

std::string format_joins(const std::vector<sim::JoinEvent>& joins) {
  std::string out;
  char buf[64];
  for (const sim::JoinEvent& e : joins) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%u:%g", e.round, e.fraction);
    out += buf;
  }
  return out;
}

std::optional<std::vector<sim::BlockCrashEvent>> parse_blocks(std::string_view text) {
  std::vector<sim::BlockCrashEvent> events;
  if (text.empty()) return events;
  const bool ok = for_each_item(text, [&](std::string_view item) {
    // R:LO-HI[:STRIDE/WIDTH]
    const std::size_t c1 = item.find(':');
    if (c1 == std::string_view::npos) return false;
    sim::BlockCrashEvent b{};
    if (!parse_u32(item.substr(0, c1), &b.round)) return false;
    std::string_view rest = item.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    const std::string_view range = rest.substr(0, std::min(c2, rest.size()));
    if (!parse_range(range, &b.lo, &b.hi) || b.lo == b.hi) return false;
    if (c2 != std::string_view::npos) {
      const std::string_view grid = rest.substr(c2 + 1);
      const std::size_t slash = grid.find('/');
      if (slash == std::string_view::npos) return false;
      if (!parse_u32(grid.substr(0, slash), &b.stride)) return false;
      if (!parse_u32(grid.substr(slash + 1), &b.width)) return false;
      if (b.stride == 0 || b.width == 0 || b.width > b.stride) return false;
    }
    events.push_back(b);
    return true;
  });
  if (!ok) return std::nullopt;
  return events;
}

std::string format_blocks(const std::vector<sim::BlockCrashEvent>& blocks) {
  std::string out;
  char buf[96];
  for (const sim::BlockCrashEvent& b : blocks) {
    if (!out.empty()) out += ',';
    if (b.stride != 0)
      std::snprintf(buf, sizeof buf, "%u:%u-%u:%u/%u", b.round, b.lo, b.hi, b.stride,
                    b.width);
    else
      std::snprintf(buf, sizeof buf, "%u:%u-%u", b.round, b.lo, b.hi);
    out += buf;
  }
  return out;
}

std::optional<std::vector<sim::PartitionEvent>> parse_partitions(
    std::string_view text) {
  std::vector<sim::PartitionEvent> events;
  if (text.empty()) return events;
  const bool ok = for_each_item(text, [&](std::string_view item) {
    // R:B[:H]
    const std::size_t c1 = item.find(':');
    if (c1 == std::string_view::npos) return false;
    sim::PartitionEvent p{};
    if (!parse_u32(item.substr(0, c1), &p.round)) return false;
    std::string_view rest = item.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    if (!parse_u32(rest.substr(0, std::min(c2, rest.size())), &p.boundary))
      return false;
    if (c2 != std::string_view::npos) {
      if (!parse_u32(rest.substr(c2 + 1), &p.heal_round)) return false;
      if (p.heal_round <= p.round) return false;
    }
    events.push_back(p);
    return true;
  });
  if (!ok) return std::nullopt;
  return events;
}

std::string format_partitions(const std::vector<sim::PartitionEvent>& partitions) {
  std::string out;
  char buf[96];
  for (const sim::PartitionEvent& p : partitions) {
    if (!out.empty()) out += ',';
    if (p.heal_round != sim::kNeverRound)
      std::snprintf(buf, sizeof buf, "%u:%u:%u", p.round, p.boundary, p.heal_round);
    else
      std::snprintf(buf, sizeof buf, "%u:%u", p.round, p.boundary);
    out += buf;
  }
  return out;
}

std::optional<sim::LatencyModel> parse_latency(std::string_view text) {
  sim::LatencyModel latency{};
  if (text.empty() || text == "zero") return latency;
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view kind = text.substr(0, colon);
  const std::string_view rest = text.substr(colon + 1);
  if (kind == "fixed") {
    if (!parse_u32(rest, &latency.min_delay)) return std::nullopt;
    latency.max_delay = latency.min_delay;
    latency.kind = latency.min_delay == 0 ? sim::LatencyModel::Kind::kZero
                                          : sim::LatencyModel::Kind::kFixed;
    return latency;
  }
  if (kind == "uniform") {
    if (!parse_range(rest, &latency.min_delay, &latency.max_delay)) return std::nullopt;
    latency.kind = sim::LatencyModel::Kind::kUniform;
    return latency;
  }
  if (kind == "tail") {
    const std::size_t c2 = rest.find(':');
    if (c2 == std::string_view::npos) return std::nullopt;
    if (!parse_range(rest.substr(0, c2), &latency.min_delay, &latency.max_delay))
      return std::nullopt;
    const std::string prob_str{rest.substr(c2 + 1)};
    char* end = nullptr;
    const double p = std::strtod(prob_str.c_str(), &end);
    if (end == nullptr || *end != '\0' || prob_str.empty()) return std::nullopt;
    if (!(p >= 0.0) || p > 1.0) return std::nullopt;
    latency.tail_prob = p;
    latency.kind = sim::LatencyModel::Kind::kHeavyTail;
    return latency;
  }
  return std::nullopt;
}

std::string format_latency(const sim::LatencyModel& latency) {
  if (latency.zero()) return "";
  char buf[96];
  switch (latency.kind) {
    case sim::LatencyModel::Kind::kZero:
      return "";
    case sim::LatencyModel::Kind::kFixed:
      std::snprintf(buf, sizeof buf, "fixed:%u", latency.min_delay);
      break;
    case sim::LatencyModel::Kind::kUniform:
      std::snprintf(buf, sizeof buf, "uniform:%u-%u", latency.min_delay,
                    latency.max_delay);
      break;
    case sim::LatencyModel::Kind::kHeavyTail:
      std::snprintf(buf, sizeof buf, "tail:%u-%u:%g", latency.min_delay,
                    latency.max_delay, latency.tail_prob);
      break;
  }
  return buf;
}

namespace {

// Chaos probabilities allow 1.0 ("corrupt:1" is the always-reject soak),
// unlike the (0, 1) crash fractions.
bool parse_prob(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string str{text};
  char* end = nullptr;
  const double v = std::strtod(str.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (v <= 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

bool parse_i64(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  const std::string str{text};
  char* end = nullptr;
  const long long v = std::strtoll(str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

}  // namespace

std::optional<net::ChaosSpec> parse_chaos(std::string_view text) {
  net::ChaosSpec spec;
  if (text.empty() || text == "none") return spec;
  const bool ok = for_each_item(text, [&](std::string_view item) {
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon + 1 >= item.size()) return false;
    const std::string_view key = item.substr(0, colon);
    const std::string_view rest = item.substr(colon + 1);
    if (key == "drop") return parse_prob(rest, &spec.drop);
    if (key == "dup") return parse_prob(rest, &spec.dup);
    if (key == "corrupt") return parse_prob(rest, &spec.corrupt);
    if (key == "reorder") {
      // P[/SPAN]
      const std::size_t slash = rest.find('/');
      if (!parse_prob(rest.substr(0, std::min(slash, rest.size())), &spec.reorder))
        return false;
      if (slash != std::string_view::npos) {
        if (!parse_u32(rest.substr(slash + 1), &spec.reorder_span)) return false;
        if (spec.reorder_span == 0) return false;
      }
      return true;
    }
    if (key == "delay") {
      const auto latency = parse_latency(rest);  // ms units on this layer
      if (!latency || latency->zero()) return false;
      spec.delay = *latency;
      return true;
    }
    if (key == "cut") {
      // B@S[-H]
      const std::size_t at = rest.find('@');
      if (at == std::string_view::npos) return false;
      net::ChaosCut cut;
      if (!parse_u32(rest.substr(0, at), &cut.boundary)) return false;
      const std::string_view marks = rest.substr(at + 1);
      const std::size_t dash = marks.find('-');
      if (!parse_i64(marks.substr(0, std::min(dash, marks.size())), &cut.start_ms))
        return false;
      if (dash != std::string_view::npos) {
        if (!parse_i64(marks.substr(dash + 1), &cut.heal_ms)) return false;
        if (cut.heal_ms <= cut.start_ms) return false;
      }
      spec.cuts.push_back(cut);
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return spec;
}

std::string format_chaos(const net::ChaosSpec& spec) {
  std::string out;
  char buf[96];
  const auto add = [&](const char* fmt, auto... args) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
  };
  if (spec.drop > 0.0) add("drop:%g", spec.drop);
  if (spec.dup > 0.0) add("dup:%g", spec.dup);
  if (spec.corrupt > 0.0) add("corrupt:%g", spec.corrupt);
  if (spec.reorder > 0.0) add("reorder:%g/%u", spec.reorder, spec.reorder_span);
  if (!spec.delay.zero()) {
    if (!out.empty()) out += ',';
    out += "delay:" + format_latency(spec.delay);
  }
  for (const net::ChaosCut& cut : spec.cuts) {
    if (cut.heal_ms != net::ChaosCut::kNoHeal)
      add("cut:%u@%lld-%lld", cut.boundary, static_cast<long long>(cut.start_ms),
          static_cast<long long>(cut.heal_ms));
    else
      add("cut:%u@%lld", cut.boundary, static_cast<long long>(cut.start_ms));
  }
  return out;
}

std::string topology_names() {
  return "complete chord-ring random-regular grid torus";
}

}  // namespace drrg::api
