#include "api/scenario_text.hpp"

#include <cstdio>
#include <cstdlib>

namespace drrg::api {

std::optional<std::vector<sim::CrashEvent>> parse_churn(std::string_view text) {
  std::vector<sim::CrashEvent> events;
  if (text.empty()) return events;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= item.size())
      return std::nullopt;
    const std::string round_str{item.substr(0, colon)};
    const std::string frac_str{item.substr(colon + 1)};
    char* end = nullptr;
    const unsigned long round = std::strtoul(round_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return std::nullopt;
    const double fraction = std::strtod(frac_str.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    if (fraction <= 0.0 || fraction >= 1.0) return std::nullopt;
    events.push_back({static_cast<std::uint32_t>(round), fraction});
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return events;
}

std::string format_churn(const std::vector<sim::CrashEvent>& churn) {
  std::string out;
  char buf[64];
  for (const sim::CrashEvent& e : churn) {
    if (!out.empty()) out += ',';
    std::snprintf(buf, sizeof buf, "%u:%g", e.round, e.fraction);
    out += buf;
  }
  return out;
}

std::string topology_names() {
  return "complete chord-ring random-regular grid torus";
}

}  // namespace drrg::api
