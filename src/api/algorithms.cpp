// Built-in registry entries: one invoke adapter per algorithm family,
// mapping the uniform RunSpec onto each family's native signature and its
// native result struct back onto the uniform RunReport.
//
// Conventions shared by every adapter:
//   * inputs: spec.values when provided, else a synthetic workload
//     derived from the seed (positive-only where the algorithm needs it);
//   * scenario: the spec's topology is materialised from the spec's seed
//     and bundled with the fault schedule into a sim::Scenario; adapters
//     whose algorithm fixes its own substrate (the Chord overlays) reject
//     a non-complete topology spec instead of silently ignoring it;
//   * truth: workload::compute_truth over the schedule's final survivors
//     when the run has crashes, over all nodes otherwise;
//   * consensus for the epsilon-convergent averagers (push-sum, pairwise)
//     keeps the historical CLI meaning: max relative error below the
//     family's epsilon threshold.

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "api/registry.hpp"
#include "api/scenario_text.hpp"
#include "aggregate/derived.hpp"
#include "aggregate/drr_gossip.hpp"
#include "net/multiproc.hpp"
#include "sim/engine.hpp"

namespace drrg::api {
namespace detail {
namespace {

using workload::compute_truth;
using workload::Truth;

/// spec.config as a T: monostate -> defaults; wrong alternative -> error.
template <class T>
[[nodiscard]] T config_as(const RunSpec& spec, RunReport& report) {
  if (std::holds_alternative<std::monostate>(spec.config)) return T{};
  if (const T* cfg = std::get_if<T>(&spec.config)) return *cfg;
  report.error = "config variant does not hold the algorithm's config type";
  return T{};
}

[[nodiscard]] RunReport make_report(const RunSpec& spec, std::string name) {
  RunReport report;
  report.algorithm = std::move(name);
  report.aggregate = spec.aggregate;
  report.n = spec.n;
  report.seed = spec.seed;
  return report;
}

[[nodiscard]] std::vector<double> materialize_values(const RunSpec& spec,
                                                     bool positive_only) {
  if (!spec.values.empty()) return spec.values;
  workload::ValueRange range = spec.workload_range;
  if (positive_only && range.lo <= 0.0) range = workload::positive_range();
  return workload::make_values(spec.n, spec.seed, range);
}

/// The run's environment: topology materialised from the spec's seed
/// (randomized builders resample per trial) plus the fault schedule.
/// Materialisation is memoised (last-used entry): a Monte-Carlo sweep over
/// a deterministic substrate (grid, chord-ring) rebuilds the same CSR
/// arrays for every trial otherwise.  Randomized builders key on the
/// derived seed, so distinct trials still resample.  Topology copies are
/// O(1) shared_ptr handles, safe to share across the trial executor.
[[nodiscard]] sim::Scenario make_scenario(const RunSpec& spec) {
  if (spec.topology.is_complete()) {
    sim::Scenario s{sim::Topology::complete_of(spec.n), spec.faults};
    s.intra_threads = spec.intra_threads;
    return s;
  }
  const std::uint64_t seed = derive_seed(spec.seed, 0x7090ULL);
  // The sparse pipeline walks real adjacency (substrate_graph), so it
  // always gets the CSR backend regardless of what kAuto would pick.
  sim::TopologySpec topo_spec = spec.topology;
  if (spec.pipeline == Pipeline::kSparse) topo_spec.backend = sim::TopologyBackend::kCsr;
  struct Key {
    sim::TopologyKind kind;
    std::uint32_t degree;
    bool torus;
    sim::TopologyBackend backend;
    std::uint32_t n;
    std::uint64_t seed;
    bool operator==(const Key&) const = default;
  };
  const bool randomized = spec.topology.kind == sim::TopologyKind::kRandomRegular;
  const Key key{topo_spec.kind, topo_spec.degree, topo_spec.torus, topo_spec.backend,
                spec.n, randomized ? seed : 0};
  static std::mutex mu;
  static std::optional<Key> cached_key;
  static sim::Topology cached;
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (cached_key.has_value() && *cached_key == key) {
      sim::Scenario s{cached, spec.faults};
      s.intra_threads = spec.intra_threads;
      return s;
    }
  }
  sim::Topology topology = sim::make_topology(topo_spec, spec.n, seed);
  {
    const std::lock_guard<std::mutex> lock(mu);
    cached_key = key;
    cached = topology;
  }
  sim::Scenario s{std::move(topology), spec.faults};
  s.intra_threads = spec.intra_threads;
  return s;
}

[[nodiscard]] bool has_crashes(const RunSpec& spec) {
  return spec.faults.crash_fraction > 0.0 || spec.faults.has_churn() ||
         spec.faults.has_blocks() || spec.faults.has_joins();
}

/// Final-survivor mask for algorithms whose result struct carries none:
/// every top-level entry point builds RngFactory{seed}, so the fault
/// timeline their engines will draw is reproducible here (empty mask when
/// nobody ever crashes).  `executed_rounds` bounds the schedule at the
/// run's actual horizon -- churn events the run never reached did not
/// fire, so their would-be victims count as participants.
[[nodiscard]] std::vector<bool> participating_mask(const RunSpec& spec,
                                                   std::uint32_t executed_rounds) {
  if (!has_crashes(spec)) return {};
  // Mid-run joiners bootstrap empty (they carry traffic but hold no
  // founding value), so the truth population is the surviving round-0
  // cohort whenever the schedule has joins.
  if (spec.faults.has_joins())
    return sim::founder_mask(spec.n, RngFactory{spec.seed}, spec.faults,
                             executed_rounds);
  return sim::survivor_mask(spec.n, RngFactory{spec.seed}, spec.faults,
                            executed_rounds);
}

/// Copies an AggregateOutcome (the DRR-family result) into a report.
void fill_from_outcome(RunReport& report, const AggregateOutcome& o) {
  report.value = o.value;
  report.consensus = o.consensus;
  report.rounds = o.rounds_total;
  report.phases = o.metrics;
  report.cost = o.metrics.total();
  report.forest = o.forest;
  report.participating = o.participating;
}

[[nodiscard]] double truth_for(Aggregate agg, const Truth& t) {
  switch (agg) {
    case Aggregate::kMax: return t.max;
    case Aggregate::kMin: return t.min;
    case Aggregate::kAve: return t.ave;
    case Aggregate::kSum: return t.sum;
    case Aggregate::kCount: return t.count;
    case Aggregate::kRank: return t.rank;
    case Aggregate::kMedian: return t.median;
    case Aggregate::kLeader: return 0.0;  // set by the leader adapter
  }
  return 0.0;
}

/// Memoised Chord substrate for the chord-* families (the overlay analog
/// of make_scenario's topology cache).  Both the overlay and its link
/// graph are pure functions of (n, seed), so a Monte-Carlo sweep -- or a
/// bench loop -- re-running one (n, seed) point reuses the finger tables
/// and the CSR adjacency instead of rebuilding them per run.  Last-used
/// entry only: distinct per-trial seeds still build their own overlays
/// (the resampling semantics), but the flat builders make that O(1)
/// allocations per build.  Handles are shared_ptr copies, safe to hold
/// across the trial executor's threads.
struct ChordSubstrate {
  std::shared_ptr<const ChordOverlay> overlay;
  std::shared_ptr<const Graph> links;  // only built when a caller wants it
};

[[nodiscard]] ChordSubstrate chord_substrate(std::uint32_t n, std::uint64_t seed,
                                             bool want_links) {
  struct Key {
    std::uint32_t n;
    std::uint64_t seed;
    bool operator==(const Key&) const = default;
  };
  const Key key{n, seed};
  static std::mutex mu;
  static std::optional<Key> cached_key;
  static ChordSubstrate cached;
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (cached_key.has_value() && *cached_key == key &&
        (!want_links || cached.links != nullptr))
      return cached;
  }
  ChordSubstrate fresh;
  fresh.overlay = std::make_shared<const ChordOverlay>(n, seed);
  if (want_links) fresh.links = std::make_shared<const Graph>(overlay_graph(*fresh.overlay));
  {
    const std::lock_guard<std::mutex> lock(mu);
    cached_key = key;
    cached = fresh;
  }
  return fresh;
}

/// Rejection helper for the Chord families, whose substrate is the
/// overlay itself: a non-complete topology spec would be ignored.
[[nodiscard]] bool reject_topology_spec(const RunSpec& spec, RunReport& report) {
  if (spec.topology.is_complete()) return false;
  report.error = std::string{"'"} + report.algorithm +
                 "' runs on its own Chord overlay; --topology does not apply";
  return true;
}

// ---------------------------------------------------------------------------
// drr: the full DRR-gossip pipelines (Algorithms 7-8 + derived aggregates),
// plus the §4 sparse pipeline on explicit substrates (--pipeline sparse).

/// The sparse pipeline on the spec's explicit substrate: Local-DRR on the
/// CSR adjacency, tree aggregation, routed root gossip.  Gives sparse
/// graphs an accurate Ave (tree sums + near-uniform routed push-sum)
/// where the dense pipeline's member-relay push-sum only diffuses.
RunReport run_drr_sparse(const RunSpec& spec, RunReport report) {
  if (spec.topology.is_complete()) {
    report.error =
        "--pipeline sparse needs an explicit substrate (--topology grid|torus|"
        "random-regular|chord-ring); the dense pipeline covers the complete graph";
    return report;
  }
  if (spec.aggregate != Aggregate::kMax && spec.aggregate != Aggregate::kAve) {
    report.error = "the sparse pipeline implements max and ave";
    return report;
  }
  SparseGossipConfig cfg;
  if (!std::holds_alternative<std::monostate>(spec.config)) {
    cfg = config_as<SparseGossipConfig>(spec, report);
    if (!report.error.empty()) return report;
  }
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const sim::Scenario scenario = make_scenario(spec);
  const AggregateOutcome o =
      spec.aggregate == Aggregate::kMax
          ? sparse_drr_gossip_max(values, spec.seed, scenario, cfg)
          : sparse_drr_gossip_ave(values, spec.seed, scenario, cfg);
  fill_from_outcome(report, o);
  const Truth t = compute_truth(values, o.participating);
  report.truth = spec.aggregate == Aggregate::kMax ? t.max : t.ave;
  return report;
}

/// The multi-process runtime behind the same facade: forks one drrg_node
/// process per node, collects their pipe reports, and folds them into a
/// RunReport so the CLI / tests can compare a real-socket run against a
/// simulated one field by field.  The daemon computes every aggregate
/// exactly (root-table union of per-tree {max,min,sum,count}), so `value`
/// equals the simulator's bit for bit on max/min over the same fault
/// schedule, and matches the exact survivor truth on sum/count/ave up to
/// fold order.
RunReport run_drr_udp(const RunSpec& spec, RunReport report) {
  if (!net::multiproc_available()) {
    report.error = "udp transport unavailable on this platform";
    return report;
  }
  if (!spec.topology.is_complete()) {
    report.error = "--transport udp runs on the complete graph (the paper's model)";
    return report;
  }
  if (spec.pipeline != Pipeline::kDense) {
    report.error = "--transport udp implements the dense pipeline only";
    return report;
  }
  const bool structured = spec.faults.has_blocks() || spec.faults.has_partitions() ||
                          spec.faults.has_joins() || !spec.faults.latency.zero();
  // Structured adversity needs a wall clock to land on: block SIGKILLs,
  // partition cuts and join births are marks at round * round_ms.
  const std::int64_t round_ms =
      spec.udp_round_ms > 0 ? spec.udp_round_ms : (structured ? 250 : 0);
  if (structured && round_ms <= 0) {
    report.error =
        "--transport udp needs --round-ms > 0 for block-crash, partition, "
        "join or latency events";
    return report;
  }
  net::ChaosSpec chaos;
  if (!spec.udp_chaos.empty()) {
    const auto parsed = parse_chaos(spec.udp_chaos);
    if (!parsed.has_value()) {
      report.error = "malformed --chaos spec: " + spec.udp_chaos;
      return report;
    }
    chaos = *parsed;
  }
  switch (spec.aggregate) {
    case Aggregate::kMax:
    case Aggregate::kMin:
    case Aggregate::kAve:
    case Aggregate::kSum:
    case Aggregate::kCount:
      break;
    default:
      report.error = "--transport udp implements max/min/ave/sum/count";
      return report;
  }
  const auto values = materialize_values(spec, /*positive_only=*/false);

  net::ClusterOptions copt;
  copt.n = spec.n;
  copt.seed = spec.seed;
  copt.faults = spec.faults;
  copt.values = values;
  copt.port_base = spec.udp_port_base;
  copt.node_template.chaos = chaos;
  copt.node_template.round_ms = round_ms;
  copt.real_kills = round_ms > 0;
  if (copt.real_kills) {
    // Real SIGKILLs land on the bootstrap barrier: every node holds in
    // bootstrap until the last scheduled death mark has passed, so a
    // victim answers hellos and then vanishes ungracefully but never
    // pushes a founding value into the tree.  That keeps the surviving
    // cohort's fold bit-comparable with the simulator truth (which is
    // computed over the survivor mask) even for max/min, where a value
    // leaked by a dead node could never be retracted.
    const sim::FaultTimeline timeline =
        sim::full_timeline(spec.n, RngFactory{spec.seed}, spec.faults);
    std::int64_t latest_death = 0;
    for (const std::uint32_t d : timeline.death)
      if (d != 0 && d != sim::kNeverCrashes)
        latest_death = std::max(latest_death, static_cast<std::int64_t>(d) * round_ms);
    if (latest_death > 0) {
      copt.node_template.bootstrap_min_ms =
          std::max(copt.node_template.bootstrap_min_ms, latest_death + 750);
      copt.node_template.bootstrap_timeout_ms =
          std::max(copt.node_template.bootstrap_timeout_ms,
                   copt.node_template.bootstrap_min_ms + 3000);
      copt.node_template.deadline_ms += latest_death;
    }
  }
  // Cuts that heal mid-run need every survivor still listening past the
  // heal, plus headroom for the post-final re-convergence to settle.
  const net::ChaosSpec effective =
      net::chaos_with_faults(chaos, spec.faults, round_ms);
  std::int64_t latest_heal = 0;
  for (const net::ChaosCut& cut : effective.cuts)
    if (cut.heal_ms != net::ChaosCut::kNoHeal)
      latest_heal = std::max(latest_heal, cut.heal_ms);
  if (latest_heal > 0) {
    copt.node_template.linger_ms =
        std::max(copt.node_template.linger_ms, latest_heal + 4000);
    copt.node_template.deadline_ms =
        std::max(copt.node_template.deadline_ms, latest_heal + 15000);
  }
  if (!spec.udp_seed_list.empty()) {
    const auto seeds = net::parse_seed_list(spec.udp_seed_list);
    if (!seeds.has_value()) {
      report.error = "malformed seed list (want host:port,host:port,...)";
      return report;
    }
    copt.seed_list = *seeds;
  }
  const net::ClusterReport cluster = net::run_cluster(copt);

  // The whole schedule applies: real processes run to quiescence, so
  // unlike a round-bounded sim run there is no "churn we never reached".
  // Joiners bootstrap empty in both runtimes, so the truth population
  // under joins is the surviving round-0 cohort (founder_mask).
  report.participating =
      !has_crashes(spec)
          ? std::vector<bool>{}
          : (spec.faults.has_joins()
                 ? sim::founder_mask(spec.n, RngFactory{spec.seed}, spec.faults)
                 : sim::survivor_mask(spec.n, RngFactory{spec.seed}, spec.faults));

  const auto node_value = [&](const net::NodeReport& r) {
    switch (spec.aggregate) {
      case Aggregate::kMax: return r.max;
      case Aggregate::kMin: return r.min;
      case Aggregate::kSum: return r.sum;
      case Aggregate::kCount: return static_cast<double>(r.count);
      default:
        return r.count != 0 ? r.sum / static_cast<double>(r.count) : 0.0;  // ave
    }
  };

  bool consensus = true;
  bool first = true;
  std::uint32_t max_steps = 0;
  for (const net::NodeReport& r : cluster.nodes) {
    report.cost.sent += r.sent;
    report.cost.delivered += r.delivered;
    report.cost.bits += r.bits;
    if (r.scheduled_crash) continue;
    max_steps = std::max(max_steps, r.steps);
    if (!r.ok) {
      consensus = false;
      continue;
    }
    if (first) {
      report.value = node_value(r);
      first = false;
    } else if (node_value(r) != report.value) {
      consensus = false;
    }
  }
  report.consensus = consensus && cluster.ok;
  report.rounds = max_steps;
  report.cost.rounds = max_steps;
  report.truth = truth_for(spec.aggregate,
                           compute_truth(values, report.participating, spec.rank_threshold));
  if (!cluster.ok && report.error.empty()) report.error = cluster.error;
  return report;
}

RunReport run_drr(const RunSpec& spec) {
  RunReport report = make_report(spec, "drr");
  if (spec.transport == Transport::kUdp) return run_drr_udp(spec, std::move(report));
  if (spec.pipeline == Pipeline::kSparse) return run_drr_sparse(spec, std::move(report));
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const sim::Scenario scenario = make_scenario(spec);

  if (spec.aggregate == Aggregate::kMedian) {
    // Accepts either a QuantileConfig or a plain DrrGossipConfig (used as
    // the per-query pipeline config of the rank bisection).
    QuantileConfig cfg;
    if (const QuantileConfig* qc = std::get_if<QuantileConfig>(&spec.config)) {
      cfg = *qc;
    } else {
      cfg.pipeline = config_as<DrrGossipConfig>(spec, report);
      if (!report.error.empty()) return report;
    }
    // The spec's intra-run budget fans the bisection's independent
    // bracket runs; an explicit QuantileConfig::threads wins if larger,
    // and 0 ("all hardware cores") on either side wins outright.
    cfg.threads = (cfg.threads == 0 || spec.intra_threads == 0)
                      ? 0
                      : std::max(cfg.threads, spec.intra_threads);
    const QuantileOutcome q = drr_gossip_median(spec.n, values, spec.seed, scenario, cfg);
    report.value = q.value;
    report.consensus = true;  // every query run reached consensus internally
    report.cost = q.total;
    report.rounds = q.total.rounds;
    // All bisection sub-runs share one root seed and therefore one crash
    // set, so a single survivor population exists again: report it and
    // measure the error against the survivor median.
    report.participating = q.participating;
    report.truth = compute_truth(values, report.participating).median;
    return report;
  }

  const auto cfg = config_as<DrrGossipConfig>(spec, report);
  if (!report.error.empty()) return report;

  if (spec.aggregate == Aggregate::kLeader) {
    const LeaderOutcome l = drr_gossip_elect_leader(spec.n, spec.seed, scenario, cfg);
    fill_from_outcome(report, l.detail);
    report.value = static_cast<double>(l.leader);
    // The elected leader must be the largest participating id.
    double expect = 0.0;
    for (std::uint32_t v = 0; v < spec.n; ++v)
      if (l.detail.participating.empty() || l.detail.participating[v])
        expect = static_cast<double>(v);
    report.truth = expect;
    return report;
  }

  AggregateOutcome o;
  switch (spec.aggregate) {
    case Aggregate::kMax:
      o = drr_gossip_max(spec.n, values, spec.seed, scenario, cfg);
      break;
    case Aggregate::kMin:
      o = drr_gossip_min(spec.n, values, spec.seed, scenario, cfg);
      break;
    case Aggregate::kAve:
      o = drr_gossip_ave(spec.n, values, spec.seed, scenario, cfg);
      break;
    case Aggregate::kSum:
      o = drr_gossip_sum(spec.n, values, spec.seed, scenario, cfg);
      break;
    case Aggregate::kCount:
      o = drr_gossip_count(spec.n, spec.seed, scenario, cfg);
      break;
    case Aggregate::kRank:
      o = drr_gossip_rank(spec.n, values, spec.rank_threshold, spec.seed, scenario, cfg);
      break;
    default: break;  // unreachable: handled above / filtered by the registry
  }
  fill_from_outcome(report, o);
  report.truth = truth_for(spec.aggregate,
                           compute_truth(values, o.participating, spec.rank_threshold));
  return report;
}

// ---------------------------------------------------------------------------
// uniform: address-oblivious uniform gossip (Kempe et al. [9]).

RunReport run_uniform(const RunSpec& spec) {
  RunReport report = make_report(spec, "uniform");
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const sim::Scenario scenario = make_scenario(spec);

  if (spec.aggregate == Aggregate::kMax) {
    const auto cfg = config_as<UniformPushMaxConfig>(spec, report);
    if (!report.error.empty()) return report;
    const UniformPushMaxResult r =
        uniform_push_max(spec.n, values, spec.seed, scenario, cfg);
    report.participating = participating_mask(spec, r.counters.rounds);
    // Max over survivors only: a crashed node keeps its stale initial
    // value, which may exceed the survivor maximum.
    double held = -std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < r.value.size(); ++v)
      if (report.participating.empty() || report.participating[v])
        held = std::max(held, r.value[v]);
    report.value = held;
    report.consensus = r.consensus;
    report.rounds = r.rounds_to_consensus;
    report.cost = r.counters;
    report.truth =
        compute_truth(values, report.participating, spec.rank_threshold).max;
    return report;
  }

  const auto cfg = config_as<UniformPushSumConfig>(spec, report);
  if (!report.error.empty()) return report;
  const UniformPushSumResult r =
      uniform_push_sum(spec.n, values, spec.seed, scenario, cfg);
  report.participating = participating_mask(spec, r.counters.rounds);
  double first = 0.0;
  for (double e : r.estimate)
    if (e != 0.0) {
      first = e;
      break;
    }
  report.value = first;
  report.consensus = r.max_relative_error < 1e-3;
  report.rounds = r.counters.rounds;
  report.cost = r.counters;
  report.truth = compute_truth(values, report.participating, spec.rank_threshold).ave;
  return report;
}

// ---------------------------------------------------------------------------
// efficient: Kashyap et al. [8] group-merge gossip.

RunReport run_efficient(const RunSpec& spec) {
  RunReport report = make_report(spec, "efficient");
  const auto cfg = config_as<EfficientGossipConfig>(spec, report);
  if (!report.error.empty()) return report;
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const sim::Scenario scenario = make_scenario(spec);
  const EfficientGossipResult r =
      spec.aggregate == Aggregate::kMax
          ? efficient_gossip_max(spec.n, values, spec.seed, scenario, cfg)
          : efficient_gossip_ave(spec.n, values, spec.seed, scenario, cfg);
  report.participating = participating_mask(spec, r.counters.rounds);
  const Truth t = compute_truth(values, report.participating, spec.rank_threshold);
  report.value = r.value;
  report.consensus = r.consensus;
  report.rounds = r.rounds_total;
  report.cost = r.counters;
  report.truth = spec.aggregate == Aggregate::kMax ? t.max : t.ave;
  return report;
}

// ---------------------------------------------------------------------------
// pairwise: randomized pairwise averaging (Boyd et al. [1]).

RunReport run_pairwise(const RunSpec& spec) {
  RunReport report = make_report(spec, "pairwise");
  const auto cfg = config_as<PairwiseConfig>(spec, report);
  if (!report.error.empty()) return report;
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const sim::Scenario scenario = make_scenario(spec);
  const PairwiseResult r = pairwise_average(spec.n, values, spec.seed, scenario, cfg);
  report.participating = participating_mask(spec, r.counters.rounds);
  // First surviving node's value (node 0 may have crashed with its input).
  report.value = r.value.front();
  for (std::size_t v = 0; v < r.value.size(); ++v)
    if (report.participating.empty() || report.participating[v]) {
      report.value = r.value[v];
      break;
    }
  report.consensus = r.max_relative_error < 1e-3;
  report.rounds = r.counters.rounds;
  report.cost = r.counters;
  report.truth = compute_truth(values, report.participating).ave;
  return report;
}

// ---------------------------------------------------------------------------
// extrema: loss-robust Count/Sum via extrema propagation ([16]).

RunReport run_extrema(const RunSpec& spec) {
  RunReport report = make_report(spec, "extrema");
  const auto cfg = config_as<ExtremaConfig>(spec, report);
  if (!report.error.empty()) return report;
  const auto values = materialize_values(spec, /*positive_only=*/true);
  const sim::Scenario scenario = make_scenario(spec);
  const ExtremaOutcome r =
      spec.aggregate == Aggregate::kCount
          ? drr_gossip_count_extrema(spec.n, spec.seed, scenario, cfg)
          : drr_gossip_sum_extrema(spec.n, values, spec.seed, scenario, cfg);
  const auto participating = participating_mask(spec, r.counters.rounds);
  const Truth t = compute_truth(values, participating);
  report.value = r.estimate;
  report.consensus = r.consensus;
  report.rounds = r.rounds_total;
  report.cost = r.counters;
  report.participating = participating;
  report.truth = spec.aggregate == Aggregate::kCount ? t.count : t.sum;
  return report;
}

// ---------------------------------------------------------------------------
// chord-drr / chord-uniform: the §4 sparse pipelines on a Chord overlay.

RunReport run_chord_drr(const RunSpec& spec) {
  RunReport report = make_report(spec, "chord-drr");
  if (reject_topology_spec(spec, report)) return report;
  const auto cfg = config_as<SparseGossipConfig>(spec, report);
  if (!report.error.empty()) return report;
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const ChordSubstrate sub = chord_substrate(spec.n, spec.seed, /*want_links=*/true);
  // Engine-ported Phase III: every G~ send expands hop by hop on the
  // shared sim::Network, so the full fault schedule -- including mid-run
  // churn, which the old RoutedTransport replay map had to reject --
  // applies to intermediate routing hops and tree walks alike.
  const sim::Scenario scenario{sim::Topology::complete(), spec.faults};
  const AggregateOutcome o =
      spec.aggregate == Aggregate::kMax
          ? sparse_drr_gossip_max(*sub.overlay, *sub.links, values, spec.seed, scenario,
                                  cfg)
          : sparse_drr_gossip_ave(*sub.overlay, *sub.links, values, spec.seed, scenario,
                                  cfg);
  fill_from_outcome(report, o);
  const Truth t = compute_truth(values, o.participating);
  report.truth = spec.aggregate == Aggregate::kMax ? t.max : t.ave;
  return report;
}

RunReport run_chord_uniform(const RunSpec& spec) {
  RunReport report = make_report(spec, "chord-uniform");
  if (reject_topology_spec(spec, report)) return report;
  const auto cfg = config_as<ChordUniformConfig>(spec, report);
  if (!report.error.empty()) return report;
  const auto values = materialize_values(spec, /*positive_only=*/false);
  const ChordSubstrate sub = chord_substrate(spec.n, spec.seed, /*want_links=*/false);
  const ChordOverlay& chord = *sub.overlay;
  // The engine port gave this baseline the full fault schedule: crashes
  // and churn hit intermediate routing hops like every other protocol.
  const sim::Scenario scenario{sim::Topology::complete(), spec.faults};
  const ChordUniformResult r =
      spec.aggregate == Aggregate::kMax
          ? chord_uniform_push_max(chord, values, spec.seed, scenario, cfg)
          : chord_uniform_push_sum(chord, values, spec.seed, scenario, cfg);
  report.participating = participating_mask(spec, r.counters.rounds);
  const Truth t = compute_truth(values, report.participating);
  double held = 0.0;
  for (std::size_t v = 0; v < r.value.size(); ++v)
    if (report.participating.empty() || report.participating[v]) {
      held = r.value[v];
      break;
    }
  if (spec.aggregate == Aggregate::kMax) {
    held = -std::numeric_limits<double>::infinity();
    for (std::size_t v = 0; v < r.value.size(); ++v)
      if (report.participating.empty() || report.participating[v])
        held = std::max(held, r.value[v]);
  }
  report.value = held;
  report.consensus =
      spec.aggregate == Aggregate::kMax ? r.consensus : r.max_relative_error < 1e-2;
  report.rounds = r.rounds;
  report.cost = r.counters;
  report.truth = spec.aggregate == Aggregate::kMax ? t.max : t.ave;
  return report;
}

}  // namespace

void register_builtin_algorithms(Registry& registry) {
  using A = Aggregate;
  registry.add({.name = "drr",
                .description = "DRR-gossip pipelines (Algorithms 7-8 + derived)",
                .aggregates = {A::kMax, A::kMin, A::kAve, A::kSum, A::kCount, A::kRank,
                               A::kMedian, A::kLeader},
                .transports = {Transport::kSim, Transport::kUdp},
                .invoke = run_drr});
  registry.add({.name = "uniform",
                .description = "uniform gossip / push-sum (Kempe et al. [9])",
                .aggregates = {A::kMax, A::kAve},
                .transports = {Transport::kSim},
                .invoke = run_uniform});
  registry.add({.name = "efficient",
                .description = "group-merge gossip (Kashyap et al. [8])",
                .aggregates = {A::kMax, A::kAve},
                .transports = {Transport::kSim},
                .invoke = run_efficient});
  registry.add({.name = "pairwise",
                .description = "pairwise averaging (Boyd et al. [1])",
                .aggregates = {A::kAve},
                .transports = {Transport::kSim},
                .invoke = run_pairwise});
  registry.add({.name = "extrema",
                .description = "loss-robust Count/Sum via extrema propagation [16]",
                .aggregates = {A::kCount, A::kSum},
                .transports = {Transport::kSim},
                .invoke = run_extrema});
  registry.add({.name = "chord-drr",
                .description =
                    "sparse DRR-gossip on a Chord overlay (Theorem 14; engine port)",
                .aggregates = {A::kMax, A::kAve},
                .transports = {Transport::kSim},
                .invoke = run_chord_drr});
  registry.add({.name = "chord-uniform",
                .description = "routed uniform gossip on Chord (engine port; §4 baseline)",
                .aggregates = {A::kMax, A::kAve},
                .transports = {Transport::kSim},
                .invoke = run_chord_uniform});
}

}  // namespace detail
}  // namespace drrg::api
