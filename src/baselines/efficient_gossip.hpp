#pragma once
// Reconstruction of the "efficient gossip" of Kashyap et al. [8]
// (Table 1's middle row: O(n log log n) messages, O(log n log log n) time,
// non-address-oblivious).
//
// The PODS'06 paper describes the scheme as: randomly cluster the nodes
// into groups of size O(log n), aggregate within each group at a group
// representative, and let the representatives gossip among themselves.
// Following that structure we implement the clustering as
// ceil(log2 log2 n) *merge phases* of binomial-style group doubling:
//
//   * every node starts as the leader of a singleton group holding its
//     own (sum, count, max) aggregate;
//   * in each phase, every unmerged leader probes uniformly random nodes;
//     a probe landing on a group member is forwarded up the group's
//     leader chain; the probed leader accepts (transferring its whole
//     group aggregate in O(1) messages and handing over leadership) iff
//     its group is no larger and has not merged this phase;
//   * each phase is *scheduled* for ceil(log2 n) rounds -- a synchronous
//     algorithm cannot detect global phase completion, which is exactly
//     where the Theta(log n log log n) running time comes from, while the
//     expected number of probe/transfer messages stays O(n) per phase.
//
// After the merge phases every node resolves its group leader's address
// by one query up the chain (O(n log log n) messages), the leaders run
// the same root-gossip machinery as DRR-gossip (reused verbatim), and
// members fetch the result from their leader with one direct query.
//
// All handshakes are acknowledged so that a group aggregate is never
// duplicated or lost under message loss (the accept/confirm pair rides an
// established call, which the §2 model makes reliable).

#include <cstdint>
#include <span>
#include <vector>

#include "rootgossip/gossip_ave.hpp"
#include "rootgossip/gossip_max.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"

namespace drrg {

struct EfficientGossipConfig {
  /// Merge phases; 0 = ceil(log2 log2 n).
  std::uint32_t phases = 0;
  /// Scheduled rounds per phase; 0 = ceil(log2 n).
  std::uint32_t phase_rounds = 0;
  /// Rounds a prober waits for an accept/reject before retrying;
  /// 0 = phases + 4 (covers the forwarding chain).
  std::uint32_t probe_timeout = 0;
  /// Query (re)tries for address/value resolution.
  std::uint32_t query_attempt_cap = 8;
  GossipMaxConfig gossip_max;
  PushSumConfig push_sum;
};

struct EfficientGossipResult {
  double value = 0.0;            ///< aggregate at the group leaders
  std::vector<double> per_node;  ///< value each node fetched (0 if fetch failed)
  bool consensus = false;        ///< all leaders (and fetches) agree
  std::uint32_t num_groups = 0;
  std::uint32_t max_group_size = 0;
  sim::Counters counters;        ///< whole-algorithm accounting
  std::uint32_t rounds_total = 0;
};

[[nodiscard]] EfficientGossipResult efficient_gossip_max(std::uint32_t n,
                                                         std::span<const double> values,
                                                         std::uint64_t seed,
                                                         const sim::Scenario& scenario = {},
                                                         EfficientGossipConfig config = {});

[[nodiscard]] EfficientGossipResult efficient_gossip_ave(std::uint32_t n,
                                                         std::span<const double> values,
                                                         std::uint64_t seed,
                                                         const sim::Scenario& scenario = {},
                                                         EfficientGossipConfig config = {});

}  // namespace drrg
