#pragma once
// Randomized pairwise-averaging gossip (Boyd, Ghosh, Prabhakar, Shah,
// "Randomized gossip algorithms", IEEE Trans. IT 2006 -- reference [1]
// of the paper).
//
// The classic *averaging* alternative to push-sum: in each round every
// node calls a uniformly random partner (or a random graph neighbor in
// the sparse variant) and the pair REPLACES both values by their mean.
// Pairwise averaging conserves the exact sum at every step, so unlike
// push-sum it needs no weight bookkeeping; its mixing on the complete
// graph is likewise geometric.  It serves as a second address-oblivious
// Average baseline: Theta(n log n) messages to epsilon-accuracy, and it
// cannot exploit the DRR forest, so it inherits the Theorem 15 wall.
//
// A call is an established connection: the callee's reply (its value) is
// reliable, and both ends then hold the mean.  A *lost* call averages
// nothing.  If several callers hit one node in a round, the callee
// serves them sequentially against its running value (the standard
// asynchronous-to-synchronous adaptation).

#include <cstdint>
#include <span>
#include <vector>

#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"
#include "topology/graph.hpp"

namespace drrg {

struct PairwiseConfig {
  /// Rounds = round_multiplier * ceil(log2 n) + extra_rounds.
  double round_multiplier = 6.0;
  std::uint32_t extra_rounds = 8;
  /// Record the first round with max relative error < epsilon.
  double epsilon = 1e-6;
};

struct PairwiseResult {
  std::vector<double> value;  ///< final value at each node
  double max_relative_error = 0.0;
  std::uint32_t rounds_to_epsilon = 0;  ///< 0 if never reached
  std::uint64_t messages_to_epsilon = 0;
  std::vector<double> error_per_round;
  sim::Counters counters;
};

/// Pairwise averaging with uniform partner selection (complete graph).
[[nodiscard]] PairwiseResult pairwise_average(std::uint32_t n,
                                              std::span<const double> values,
                                              std::uint64_t seed,
                                              const sim::Scenario& scenario = {},
                                              PairwiseConfig config = {});

/// Pairwise averaging where partners are uniform random *neighbors* of an
/// explicit graph (the distributed-averaging setting of [1]).
[[nodiscard]] PairwiseResult pairwise_average_on_graph(const Graph& g,
                                                       std::span<const double> values,
                                                       std::uint64_t seed,
                                                       const sim::Scenario& scenario = {},
                                                       PairwiseConfig config = {});

}  // namespace drrg
