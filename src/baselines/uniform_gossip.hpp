#pragma once
// Baselines on the complete graph (random phone call model):
//
//  * uniform_push_max  -- the address-oblivious uniform gossip of Kempe et
//    al. [9] specialised to Max: every node pushes its current maximum to
//    a uniformly random node each round.  Time O(log n), messages
//    Theta(n log n) until global consensus -- the Table 1 "uniform gossip"
//    row and the empirical companion of the Theorem 15 lower bound.
//
//  * uniform_push_sum  -- Push-Sum of Kempe et al. [9]: every node holds
//    (s, w), keeps half and pushes half each round; all ratios s/w
//    converge to the average.  Address-oblivious; O(log n + log 1/eps)
//    rounds, Theta(n log n) messages.
//
//  * karp_push_pull    -- rumor spreading of Karp et al. [7] with the age
//    cutoff: push-pull for ceil(log3 n) + O(log log n) rounds of rumor
//    transmission.  O(log n) rounds and O(n log log n) *transmissions*
//    (the quantity Karp et al. bound); used to demonstrate that aggregate
//    computation is strictly harder than rumor spreading in the
//    address-oblivious model (§5).

#include <cstdint>
#include <span>
#include <vector>

#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct UniformPushMaxConfig {
  /// Hard cap = round_multiplier * ceil(log2 n) rounds.
  double round_multiplier = 8.0;
  /// Stop as soon as every alive node holds the global maximum.
  bool stop_on_consensus = true;
};

struct UniformPushMaxResult {
  std::vector<double> value;  ///< final value at each node
  /// First round after which every alive node held the maximum (0 if never).
  std::uint32_t rounds_to_consensus = 0;
  /// Messages sent up to (and including) that round.
  std::uint64_t messages_to_consensus = 0;
  bool consensus = false;
  sim::Counters counters;
};

[[nodiscard]] UniformPushMaxResult uniform_push_max(std::uint32_t n,
                                                    std::span<const double> values,
                                                    std::uint64_t seed,
                                                    const sim::Scenario& scenario = {},
                                                    UniformPushMaxConfig config = {});

/// Push-pull variant: every call exchanges maxima in both directions
/// (the reply rides the established connection).  Converges in fewer
/// rounds than push-only (the pull direction has no coupon-collector
/// tail) but still costs Theta(n log n) messages to consensus -- the
/// address-oblivious wall of Theorem 15 applies to it as well.
[[nodiscard]] UniformPushMaxResult uniform_push_pull_max(std::uint32_t n,
                                                         std::span<const double> values,
                                                         std::uint64_t seed,
                                                         const sim::Scenario& scenario = {},
                                                         UniformPushMaxConfig config = {});

struct UniformPushSumConfig {
  /// Rounds = round_multiplier * ceil(log2 n) + extra_rounds.
  double round_multiplier = 4.0;
  std::uint32_t extra_rounds = 8;
  /// Also record the first round where every node's relative error
  /// dropped below this epsilon.
  double epsilon = 1e-6;
};

struct UniformPushSumResult {
  std::vector<double> estimate;  ///< s/w at each node after the last round
  double max_relative_error = 0.0;
  /// First round with max relative error < epsilon (0 if never reached).
  std::uint32_t rounds_to_epsilon = 0;
  std::uint64_t messages_to_epsilon = 0;
  /// Max relative error across nodes after each round.
  std::vector<double> error_per_round;
  sim::Counters counters;
};

[[nodiscard]] UniformPushSumResult uniform_push_sum(std::uint32_t n,
                                                    std::span<const double> values,
                                                    std::uint64_t seed,
                                                    const sim::Scenario& scenario = {},
                                                    UniformPushSumConfig config = {});

struct KarpPushPullConfig {
  /// Exponential-growth phase: ceil(log3 n) rounds; the rumor then stays
  /// transmittable for extra_loglog * ceil(log2 log2 n) more rounds.
  double extra_loglog = 3.0;
  /// Additional pull-only rounds after pushes stop.
  std::uint32_t pull_tail = 4;
};

struct KarpPushPullResult {
  std::uint32_t informed = 0;       ///< nodes knowing the rumor at the end
  std::uint32_t rounds = 0;
  std::uint64_t transmissions = 0;  ///< rumor-carrying messages (Karp's metric)
  bool all_informed = false;
  sim::Counters counters;           ///< includes empty calls
};

/// Spreads a rumor from node 0.
[[nodiscard]] KarpPushPullResult karp_push_pull(std::uint32_t n, std::uint64_t seed,
                                                const sim::Scenario& scenario = {},
                                                KarpPushPullConfig config = {});

}  // namespace drrg
