#include "baselines/chord_uniform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

// Ported onto the shared sim::Network engine: every overlay hop is one
// engine message forwarded during delivery, so a routed push lands after
// its hop count in rounds, per-hop link loss comes from the engine's loss
// coin, and the FaultSchedule (start-time crashes *and* mid-run churn)
// applies to intermediate hops for free -- none of which the old bespoke
// pending-queue scheduler modelled.

namespace {

struct CuMsg {
  double a = 0.0;            // value / numerator half
  double b = 0.0;            // weight half (push-sum only)
  std::uint64_t key = 0;     // routing target on the ring
  std::uint32_t smear = 0;   // remaining successor steps after the owner
  bool smearing = false;     // reached the key's owner; now walking successors
  bool pull_request = false; // a joiner asking its successor for state
};

/// Near-uniform routed push (the §4 Assumption-2 sampler, hop by hop):
/// route a uniformly random key greedily, then walk `smear` successor
/// steps.  `Absorb(dst, msg)` fires where the push lands.
template <class Absorb>
struct ChordPushProtocol {
  const ChordOverlay& chord;
  Absorb absorb;
  std::uint32_t initiate_rounds;
  std::uint32_t bits;
  bool halve = false;                 // push-sum: halve (s, w) before sending
  std::vector<double>* s = nullptr;   // push-sum state (halve mode)
  std::vector<double>* w = nullptr;
  std::vector<double>* value = nullptr;  // push-max state

  void hop(sim::Network<CuMsg>& net, sim::NodeId x, CuMsg m) {
    if (!m.smearing) {
      const sim::NodeId nh = chord.next_hop(x, m.key);
      if (nh != x) {
        net.send(x, nh, std::move(m), bits);
        return;
      }
      m.smearing = true;  // at the owner: switch to the successor walk
    }
    if (m.smear > 0) {
      --m.smear;
      net.send(x, chord.successor(x), std::move(m), bits);
      return;
    }
    absorb(x, m);
  }

  /// Mid-run joiner: bootstrap from the Chord successor.  Push-sum mode
  /// joins with the canonical (0, 0) pair (no founding mass -- the
  /// founders' average is conserved); push-max mode holds no founding
  /// value and pulls the successor's current maximum, the one overlay
  /// neighbor a freshly stabilized node is guaranteed to know.
  void on_join(sim::Network<CuMsg>& net, sim::NodeId v) {
    if (halve) {
      (*s)[v] = 0.0;
      (*w)[v] = 0.0;
      return;
    }
    (*value)[v] = -std::numeric_limits<double>::infinity();
    CuMsg m;
    m.pull_request = true;
    net.send(v, chord.successor(v), std::move(m), 1);
  }

  void on_round(sim::Network<CuMsg>& net, sim::NodeId v) {
    if (net.round() >= initiate_rounds) return;
    CuMsg m;
    if (halve) {
      (*s)[v] *= 0.5;
      (*w)[v] *= 0.5;
      m.a = (*s)[v];
      m.b = (*w)[v];
    } else {
      m.a = (*value)[v];
    }
    Rng& rng = net.node_rng(v);
    m.key = rng.next_below(chord.ring_size());
    m.smear = static_cast<std::uint32_t>(rng.next_below(chord.smear_width()));
    hop(net, v, std::move(m));
  }

  void on_message(sim::Network<CuMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const CuMsg& m) {
    if (m.pull_request) {
      if (value != nullptr) {
        CuMsg r;
        r.a = (*value)[dst];
        net.reply(dst, src, std::move(r), bits);
      }
      return;
    }
    hop(net, dst, m);
  }

  void on_reply(sim::Network<CuMsg>&, sim::NodeId, sim::NodeId dst, const CuMsg& m) {
    absorb(dst, m);
  }
};

/// Initiation rounds followed by a drain until the network is quiescent
/// (every in-flight routed push has landed or been lost).  Under an
/// event-time latency model each hop can sit up to `bound` extra rounds
/// in the future ring, so the drain horizon stretches accordingly
/// (factor 1 at latency 0).
template <class P>
std::uint32_t run_with_drain(sim::Network<CuMsg>& net, P& proto, std::uint32_t n,
                             const sim::Scenario& scenario) {
  for (std::uint32_t r = 0; r < proto.initiate_rounds; ++r) net.step(proto);
  const std::uint32_t drain_cap =
      (1 + scenario.faults.latency.bound()) * (4 * ceil_log2(n) + 16);
  for (std::uint32_t r = 0; r < drain_cap && !net.quiescent(); ++r) net.step(proto);
  return net.counters().rounds;
}

}  // namespace

ChordUniformResult chord_uniform_push_max(const ChordOverlay& chord,
                                          std::span<const double> values,
                                          std::uint64_t seed,
                                          const sim::Scenario& scenario,
                                          ChordUniformConfig config) {
  const std::uint32_t n = chord.size();
  if (values.size() < n) throw std::invalid_argument("chord_uniform: values too short");
  RngFactory rngs{seed};
  sim::Network<CuMsg> net{n, rngs, scenario, /*purpose=*/0xc0d1};

  ChordUniformResult result;
  result.value.assign(values.begin(), values.begin() + n);

  auto absorb = [&result](sim::NodeId dst, const CuMsg& m) {
    result.value[dst] = std::max(result.value[dst], m.a);
  };
  ChordPushProtocol<decltype(absorb)> proto{
      chord, absorb,
      static_cast<std::uint32_t>(config.round_multiplier *
                                 static_cast<double>(ceil_log2(n))) +
          config.extra_rounds,
      64 + address_bits(n)};
  proto.value = &result.value;

  result.rounds = run_with_drain(net, proto, n, scenario);
  // Consensus = the final survivors agree on one value.  Under churn that
  // common value can legitimately exceed the survivor maximum (a value
  // already circulated before its holder crashed), so agreement -- not
  // equality with the start-time maximum -- is the criterion; accuracy is
  // judged separately against the survivor truth by the caller.
  result.consensus =
      !net.alive_nodes().empty() &&
      std::all_of(net.alive_nodes().begin(), net.alive_nodes().end(),
                  [&](sim::NodeId v) {
                    return result.value[v] == result.value[net.alive_nodes().front()];
                  });
  result.counters = net.counters();
  return result;
}

ChordUniformResult chord_uniform_push_sum(const ChordOverlay& chord,
                                          std::span<const double> values,
                                          std::uint64_t seed,
                                          const sim::Scenario& scenario,
                                          ChordUniformConfig config) {
  const std::uint32_t n = chord.size();
  if (values.size() < n) throw std::invalid_argument("chord_uniform: values too short");
  RngFactory rngs{seed};
  sim::Network<CuMsg> net{n, rngs, scenario, /*purpose=*/0xc0d2};

  std::vector<double> s(values.begin(), values.begin() + n);
  std::vector<double> w(n, 1.0);
  double total = 0.0;
  std::uint32_t alive0 = 0;
  for (sim::NodeId v : net.alive_nodes()) {
    total += s[v];
    ++alive0;
  }
  const double ave = total / static_cast<double>(std::max<std::uint32_t>(alive0, 1));
  const double scale = std::max(std::fabs(ave), 1e-300);

  auto absorb = [&s, &w](sim::NodeId dst, const CuMsg& m) {
    s[dst] += m.a;
    w[dst] += m.b;
  };
  ChordPushProtocol<decltype(absorb)> proto{
      chord, absorb,
      static_cast<std::uint32_t>(config.round_multiplier *
                                 static_cast<double>(ceil_log2(n))) +
          config.extra_rounds,
      2 * 64 + address_bits(n)};
  proto.halve = true;
  proto.s = &s;
  proto.w = &w;

  ChordUniformResult result;
  result.rounds = run_with_drain(net, proto, n, scenario);
  result.value.assign(n, 0.0);
  for (sim::NodeId v : net.alive_nodes()) {
    result.value[v] = w[v] > 0.0 ? s[v] / w[v] : 0.0;
    result.max_relative_error =
        std::max(result.max_relative_error, std::fabs(result.value[v] - ave) / scale);
  }
  result.counters = net.counters();
  return result;
}

}  // namespace drrg
