#include "baselines/chord_uniform.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "support/mathutil.hpp"

namespace drrg {

namespace {

/// Minimal routed scheduler (no forest: deliveries land on the sampled
/// node itself).  Mirrors RoutedTransport's hop/loss accounting.
template <class Payload>
class NodeTransport {
 public:
  NodeTransport(const ChordOverlay& chord, double loss, Rng loss_rng, std::uint32_t bits)
      : chord_(chord), loss_(loss), loss_rng_(loss_rng), bits_(bits) {}

  void send_to_random(NodeId src, Payload payload, std::uint32_t now, Rng& rng) {
    std::uint32_t hops = 0;
    const NodeId landing = chord_.sample_near_uniform(src, rng, &hops);
    for (std::uint32_t h = 0; h < hops; ++h) {
      counters_.sent += 1;
      counters_.bits += bits_;
      if (loss_rng_.next_bernoulli(loss_)) {
        counters_.lost += 1;
        return;
      }
    }
    counters_.delivered += 1;
    pending_[now + std::max<std::uint32_t>(1, hops)].push_back({landing, std::move(payload)});
  }

  [[nodiscard]] std::vector<std::pair<NodeId, Payload>> collect(std::uint32_t t) {
    auto it = pending_.find(t);
    if (it == pending_.end()) return {};
    auto out = std::move(it->second);
    pending_.erase(it);
    return out;
  }

  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }
  [[nodiscard]] sim::Counters& counters() noexcept { return counters_; }

 private:
  const ChordOverlay& chord_;
  double loss_;
  Rng loss_rng_;
  std::uint32_t bits_;
  sim::Counters counters_{};
  std::map<std::uint32_t, std::vector<std::pair<NodeId, Payload>>> pending_;
};

}  // namespace

ChordUniformResult chord_uniform_push_max(const ChordOverlay& chord,
                                          std::span<const double> values,
                                          std::uint64_t seed, double loss_prob,
                                          ChordUniformConfig config) {
  const std::uint32_t n = chord.size();
  if (values.size() < n) throw std::invalid_argument("chord_uniform: values too short");
  RngFactory rngs{seed};

  ChordUniformResult result;
  result.value.assign(values.begin(), values.begin() + n);
  const double true_max = *std::max_element(result.value.begin(), result.value.end());

  NodeTransport<double> transport{chord, loss_prob,
                                  rngs.engine_stream(0xc0de), 64 + address_bits(n)};
  std::vector<Rng> node_rng;
  node_rng.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_rng.push_back(rngs.node_stream(v, 0xc0d1));

  const auto T = static_cast<std::uint32_t>(config.round_multiplier *
                                            static_cast<double>(ceil_log2(n))) +
                 config.extra_rounds;
  std::uint32_t t = 0;
  while (t < T || !transport.idle()) {
    for (auto& [dst, v] : transport.collect(t)) result.value[dst] = std::max(result.value[dst], v);
    if (t < T)
      for (NodeId v = 0; v < n; ++v)
        transport.send_to_random(v, result.value[v], t, node_rng[v]);
    ++t;
  }

  result.consensus = std::all_of(result.value.begin(), result.value.end(),
                                 [&](double v) { return v == true_max; });
  result.counters = transport.counters();
  result.counters.rounds = t;
  result.rounds = t;
  return result;
}

ChordUniformResult chord_uniform_push_sum(const ChordOverlay& chord,
                                          std::span<const double> values,
                                          std::uint64_t seed, double loss_prob,
                                          ChordUniformConfig config) {
  const std::uint32_t n = chord.size();
  if (values.size() < n) throw std::invalid_argument("chord_uniform: values too short");
  RngFactory rngs{seed};

  struct Pair {
    double s;
    double w;
  };
  std::vector<double> s(values.begin(), values.begin() + n);
  std::vector<double> w(n, 1.0);
  double total = 0.0;
  for (double x : s) total += x;
  const double ave = total / static_cast<double>(n);
  const double scale = std::max(std::fabs(ave), 1e-300);

  NodeTransport<Pair> transport{chord, loss_prob, rngs.engine_stream(0xc0df),
                                2 * 64 + address_bits(n)};
  std::vector<Rng> node_rng;
  node_rng.reserve(n);
  for (NodeId v = 0; v < n; ++v) node_rng.push_back(rngs.node_stream(v, 0xc0d2));

  const auto T = static_cast<std::uint32_t>(config.round_multiplier *
                                            static_cast<double>(ceil_log2(n))) +
                 config.extra_rounds;
  std::uint32_t t = 0;
  while (t < T || !transport.idle()) {
    for (auto& [dst, p] : transport.collect(t)) {
      s[dst] += p.s;
      w[dst] += p.w;
    }
    if (t < T) {
      for (NodeId v = 0; v < n; ++v) {
        s[v] *= 0.5;
        w[v] *= 0.5;
        transport.send_to_random(v, Pair{s[v], w[v]}, t, node_rng[v]);
      }
    }
    ++t;
  }

  ChordUniformResult result;
  result.value.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    result.value[v] = w[v] > 0.0 ? s[v] / w[v] : 0.0;
    result.max_relative_error =
        std::max(result.max_relative_error, std::fabs(result.value[v] - ave) / scale);
  }
  result.counters = transport.counters();
  result.counters.rounds = t;
  result.rounds = t;
  return result;
}

}  // namespace drrg
