#include "baselines/efficient_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "forest/forest.hpp"
#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

// ---------------------------------------------------------------------------
// Stage 1: phased group merging.

struct MergeMsg {
  enum class Kind : std::uint8_t {
    kProbe,        // forwarded up chains to a leader
    kReject,       // direct to the probing leader
    kAccept,       // direct to the probing leader, carries the group aggregate
    kConfirm       // reply to kAccept (reliable): finalises the transfer
  };
  Kind kind;
  sim::NodeId origin = sim::kNoNode;  // probing leader
  std::uint32_t origin_size = 0;
  double sum = 0.0;
  double cnt = 0.0;
  double mx = 0.0;
  std::uint32_t size = 0;
};

struct MergeProtocol {
  MergeProtocol(std::uint32_t n, std::span<const double> values,
                std::uint32_t phases_, std::uint32_t phase_rounds_,
                std::uint32_t timeout_)
      : phases(phases_), phase_rounds(phase_rounds_), timeout(timeout_),
        msg_bits(3 * 64 + 2 * address_bits(n)), state(n) {
    for (std::uint32_t v = 0; v < n; ++v) {
      state[v].sum = values[v];
      state[v].mx = values[v];
    }
  }

  struct NodeState {
    bool leader = true;
    sim::NodeId parent = sim::kNoNode;
    bool merged_phase = false;   // already took part in a merge this phase
    std::uint32_t size = 1;
    double sum = 0.0;
    double cnt = 1.0;
    double mx = 0.0;
    // Prober side.
    bool outstanding = false;
    std::uint32_t probe_timer = 0;
    // Acceptor side (tentative until the confirm arrives).
    bool accept_pending = false;
    std::uint32_t accept_timer = 0;
    sim::NodeId accept_target = sim::kNoNode;
  };

  std::uint32_t phases;
  std::uint32_t phase_rounds;
  std::uint32_t timeout;
  std::uint32_t msg_bits;
  std::vector<NodeState> state;

  [[nodiscard]] std::uint32_t phase_of(std::uint32_t round) const {
    return round / phase_rounds;
  }

  void on_round(sim::Network<MergeMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (net.round() % phase_rounds == 0) s.merged_phase = false;  // phase boundary
    if (!s.leader || s.merged_phase || s.outstanding || s.accept_pending) return;
    // Randomized role: with probability 1/2 probe, otherwise listen.  If
    // every leader probed simultaneously, every probe would land on a
    // busy leader and be rejected -- the coin keeps half the leaders
    // acceptor-eligible each round.
    if (!net.node_rng(v).next_bernoulli(0.5)) return;
    const sim::NodeId u = net.sample_peer(v);
    if (u == v) return;  // try again next round
    s.outstanding = true;
    s.probe_timer = 0;
    net.send(v, u, MergeMsg{MergeMsg::Kind::kProbe, v, s.size, 0, 0, 0, 0}, msg_bits);
  }

  void on_message(sim::Network<MergeMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const MergeMsg& m) {
    NodeState& s = state[dst];
    switch (m.kind) {
      case MergeMsg::Kind::kProbe: {
        if (!s.leader) {
          net.send(dst, s.parent, m, msg_bits);  // walk the chain upward
          return;
        }
        const bool acceptable = m.origin != dst && !s.merged_phase && !s.outstanding &&
                                !s.accept_pending && s.size <= m.origin_size;
        if (!acceptable) {
          net.send(dst, m.origin, MergeMsg{MergeMsg::Kind::kReject, dst, 0, 0, 0, 0, 0},
                   msg_bits);
          return;
        }
        // Tentatively hand the group over; finalised by the confirm.
        s.accept_pending = true;
        s.accept_timer = 0;
        s.accept_target = m.origin;
        s.merged_phase = true;
        net.send(dst, m.origin,
                 MergeMsg{MergeMsg::Kind::kAccept, dst, 0, s.sum, s.cnt, s.mx, s.size},
                 msg_bits);
        break;
      }
      case MergeMsg::Kind::kReject:
        if (s.outstanding) s.outstanding = false;  // retry next round
        break;
      case MergeMsg::Kind::kAccept:
        // A very late accept (probe delayed on a long chain) can reach a
        // node that has since been absorbed or is itself mid-handover;
        // without the confirm the offering group reverts, so no aggregate
        // is ever lost or duplicated.
        if (!s.leader || s.accept_pending) break;
        s.sum += m.sum;
        s.cnt += m.cnt;
        s.mx = std::max(s.mx, m.mx);
        s.size += m.size;
        s.merged_phase = true;
        s.outstanding = false;
        net.reply(dst, src, MergeMsg{MergeMsg::Kind::kConfirm, dst, 0, 0, 0, 0, 0}, 1);
        break;
      case MergeMsg::Kind::kConfirm:
        break;  // handled in on_reply
    }
  }

  void on_reply(sim::Network<MergeMsg>&, sim::NodeId src, sim::NodeId dst,
                const MergeMsg& m) {
    if (m.kind != MergeMsg::Kind::kConfirm) return;
    NodeState& s = state[dst];
    if (!s.accept_pending || s.accept_target != src) return;
    // Transfer finalised: stop being a leader, join src's group.
    s.accept_pending = false;
    s.leader = false;
    s.parent = src;
    s.sum = s.cnt = s.mx = 0.0;
    s.size = 0;
  }

  void on_round_end(sim::Network<MergeMsg>&, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.outstanding && ++s.probe_timer >= timeout) s.outstanding = false;
    if (s.accept_pending && ++s.accept_timer >= 2) {
      // The accept was lost in flight: the transfer did not happen.
      s.accept_pending = false;
      s.merged_phase = false;
    }
  }
};

// ---------------------------------------------------------------------------
// Stage 2/4: chain queries (address resolution, then value fetch).

struct QueryMsg {
  enum class Kind : std::uint8_t { kQuery, kReply };
  Kind kind;
  sim::NodeId origin = sim::kNoNode;
  double payload = 0.0;
};

/// Every non-root sends a query towards its leader (multi-hop along
/// `parent` for address resolution; direct once addresses are known); the
/// leader answers straight back to the origin.  Lossy sends are retried.
struct QueryProtocol {
  QueryProtocol(const std::vector<sim::NodeId>& parent_, std::span<const double> answer_,
                std::uint32_t timeout_, std::uint32_t attempt_cap_, bool direct_,
                const std::vector<sim::NodeId>& leader_, std::uint32_t n)
      : parent(parent_), answer(answer_.begin(), answer_.end()), timeout(timeout_),
        attempt_cap(attempt_cap_), direct(direct_), leader(leader_),
        msg_bits(64 + 2 * address_bits(n)), state(n) {}

  struct NodeState {
    bool resolved = false;
    double received = 0.0;
    std::uint32_t attempts = 0;
    std::uint32_t timer = 0;
    bool waiting = false;
  };

  const std::vector<sim::NodeId>& parent;
  std::vector<double> answer;  // at leaders: the value to serve
  std::uint32_t timeout;
  std::uint32_t attempt_cap;
  bool direct;                          // send straight to leader[] target
  const std::vector<sim::NodeId>& leader;  // used when direct
  std::uint32_t msg_bits;
  std::vector<NodeState> state;
  std::uint32_t unresolved = 0;  // maintained by runner

  void on_round(sim::Network<QueryMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.resolved || s.waiting || parent[v] == sim::kNoNode) return;
    if (s.attempts >= attempt_cap) return;
    ++s.attempts;
    s.waiting = true;
    s.timer = 0;
    const sim::NodeId target = direct ? leader[v] : parent[v];
    net.send(v, target, QueryMsg{QueryMsg::Kind::kQuery, v, 0.0}, msg_bits);
  }

  void on_message(sim::Network<QueryMsg>& net, sim::NodeId, sim::NodeId dst,
                  const QueryMsg& m) {
    if (m.kind == QueryMsg::Kind::kQuery) {
      if (parent[dst] != sim::kNoNode && !direct) {
        net.send(dst, parent[dst], m, msg_bits);  // keep walking up
        return;
      }
      net.send(dst, m.origin, QueryMsg{QueryMsg::Kind::kReply, dst, answer[dst]},
               msg_bits);
      return;
    }
    NodeState& s = state[dst];
    if (!s.resolved) {
      s.resolved = true;
      s.received = m.payload;
      s.waiting = false;
      if (unresolved > 0) --unresolved;
    }
  }

  void on_round_end(sim::Network<QueryMsg>&, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.waiting && ++s.timer >= timeout) s.waiting = false;  // retry
  }

  [[nodiscard]] bool done(const sim::Network<QueryMsg>&) const { return unresolved == 0; }
};

struct QueryOutcome {
  std::vector<double> received;
  std::vector<bool> resolved;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

QueryOutcome run_query(const std::vector<sim::NodeId>& parent,
                       std::span<const double> answer, const RngFactory& rngs,
                       const sim::Scenario& scenario, std::uint32_t timeout,
                       std::uint32_t attempt_cap, bool direct,
                       const std::vector<sim::NodeId>& leader, std::uint64_t purpose) {
  const auto n = static_cast<std::uint32_t>(parent.size());
  sim::Network<QueryMsg> net{n, rngs, scenario, purpose};
  QueryProtocol proto{parent, answer, timeout, attempt_cap, direct, leader, n};
  for (sim::NodeId v : net.alive_nodes())
    if (parent[v] != sim::kNoNode) ++proto.unresolved;

  const std::uint32_t max_rounds = attempt_cap * (timeout + 1) + 4;
  const std::uint32_t rounds = net.run(proto, max_rounds);

  QueryOutcome out;
  out.received.assign(n, 0.0);
  out.resolved.assign(n, false);
  for (sim::NodeId v = 0; v < n; ++v) {
    out.received[v] = proto.state[v].received;
    out.resolved[v] = proto.state[v].resolved || parent[v] == sim::kNoNode;
  }
  out.counters = net.counters();
  out.rounds = rounds;
  return out;
}

// ---------------------------------------------------------------------------
// Shared driver.

struct MergeOutcome {
  std::vector<sim::NodeId> parent;  // chain pointers (kNoNode at leaders)
  std::vector<double> sum, cnt, mx;
  Forest forest;                    // flattened chains
  std::vector<sim::NodeId> leader;  // resolved leader per node
  sim::Counters counters;
  std::uint32_t rounds = 0;
  bool resolution_complete = false;
};

MergeOutcome run_merge_stages(std::uint32_t n, std::span<const double> values,
                              const RngFactory& rngs, const sim::Scenario& scenario,
                              const EfficientGossipConfig& config) {
  const std::uint32_t lg = ceil_log2(n);
  const std::uint32_t phases =
      config.phases != 0 ? config.phases
                         : std::max<std::uint32_t>(1, ceil_log2(std::max<std::uint32_t>(2, lg)));
  const std::uint32_t phase_rounds =
      config.phase_rounds != 0 ? config.phase_rounds : std::max<std::uint32_t>(4, lg);
  const std::uint32_t timeout =
      config.probe_timeout != 0 ? config.probe_timeout : phases + 4;

  sim::Network<MergeMsg> net{n, rngs, scenario, /*purpose=*/0xe99};
  MergeProtocol proto{n, values, phases, phase_rounds, timeout};

  // The merge schedule is fixed: synchronous nodes cannot detect global
  // completion, so the full phases x phase_rounds budget is always run --
  // this is precisely the O(log n log log n) time of [8].
  const std::uint32_t scheduled = phases * phase_rounds;
  for (std::uint32_t r = 0; r < scheduled; ++r) net.step(proto);

  MergeOutcome out;
  out.parent.assign(n, sim::kNoNode);
  out.sum.assign(n, 0.0);
  out.cnt.assign(n, 0.0);
  out.mx.assign(n, 0.0);
  std::vector<bool> member(n, false);
  for (sim::NodeId v : net.alive_nodes()) {
    member[v] = true;
    out.parent[v] = proto.state[v].leader ? kNoParent : proto.state[v].parent;
    out.sum[v] = proto.state[v].sum;
    out.cnt[v] = proto.state[v].cnt;
    out.mx[v] = proto.state[v].mx;
  }
  // A chain parent that crashed mid-merge (churn) is gone: its orphaned
  // followers become leaders of what they have absorbed so far.
  for (sim::NodeId v = 0; v < n; ++v)
    if (member[v] && out.parent[v] != kNoParent && !member[out.parent[v]])
      out.parent[v] = kNoParent;
  out.forest = Forest::from_parents(out.parent, member);
  out.counters = net.counters();
  out.rounds = scheduled;

  // Address resolution: one query per node up its chain, resuming the
  // scenario's global clock after the merge rounds.
  std::vector<double> leader_addr(n, 0.0);
  for (NodeId r : out.forest.roots()) leader_addr[r] = static_cast<double>(r);
  std::vector<sim::NodeId> no_leader;  // unused in chain mode
  const QueryOutcome addr = run_query(
      out.parent, leader_addr, rngs,
      scenario.at_round(scenario.start_round + scheduled), timeout,
      config.query_attempt_cap, /*direct=*/false, no_leader, 0xadd2);
  out.counters += addr.counters;
  out.rounds += addr.rounds;
  out.leader.assign(n, sim::kNoNode);
  out.resolution_complete = true;
  for (sim::NodeId v = 0; v < n; ++v) {
    if (!member[v]) continue;
    if (out.parent[v] == kNoParent) {
      out.leader[v] = v;
    } else if (addr.resolved[v]) {
      out.leader[v] = static_cast<sim::NodeId>(addr.received[v]);
    } else {
      out.resolution_complete = false;
      out.leader[v] = out.forest.root_of(v);  // fallback, flagged above
    }
  }
  return out;
}

void fetch_results(const MergeOutcome& merge, std::span<const double> leader_value,
                   const RngFactory& rngs, const sim::Scenario& scenario,
                   const EfficientGossipConfig& config, EfficientGossipResult& out) {
  // Members fetch the result from their (now known) leader: one direct
  // query + direct reply each.
  std::vector<double> answer(leader_value.begin(), leader_value.end());
  const QueryOutcome fetch =
      run_query(merge.parent, answer, rngs, scenario, /*timeout=*/2,
                config.query_attempt_cap, /*direct=*/true, merge.leader, 0xfe7c);
  out.counters += fetch.counters;
  out.rounds_total += fetch.rounds;
  out.per_node.assign(merge.parent.size(), 0.0);
  for (std::size_t v = 0; v < merge.parent.size(); ++v) {
    if (merge.parent[v] == kNoParent) {
      out.per_node[v] = answer[v];
    } else if (fetch.resolved[v]) {
      out.per_node[v] = fetch.received[v];
    } else {
      out.consensus = false;
    }
  }
}

}  // namespace

EfficientGossipResult efficient_gossip_max(std::uint32_t n,
                                           std::span<const double> values,
                                           std::uint64_t seed, const sim::Scenario& scenario,
                                           EfficientGossipConfig config) {
  if (values.size() < n) throw std::invalid_argument("efficient_gossip: values too short");
  RngFactory rngs{seed};
  MergeOutcome merge = run_merge_stages(n, values, rngs, scenario, config);

  EfficientGossipResult out;
  out.counters = merge.counters;
  out.rounds_total = merge.rounds;
  out.num_groups = merge.forest.num_trees();
  out.max_group_size = merge.forest.max_tree_size();

  // Leaders gossip their group maxima (same machinery as DRR Phase III);
  // every later phase resumes the scenario's global clock.
  auto clock = [&scenario, &out] {
    return scenario.at_round(scenario.start_round + out.rounds_total);
  };
  std::vector<std::uint64_t> keys(n, kKeyBottom);
  for (NodeId r : merge.forest.roots()) keys[r] = encode_ordered(merge.mx[r]);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 0xe91);
  const GossipMaxResult gm = run_gossip_max(merge.forest, keys, rngs, clock(), gm_cfg);
  out.counters += gm.counters;
  out.rounds_total += gm.rounds;

  std::vector<double> leader_value(n, 0.0);
  out.consensus = true;
  for (NodeId r : merge.forest.roots()) {
    leader_value[r] = decode_ordered(gm.key[r]);
    if (gm.key[r] != gm.key[merge.forest.roots().front()]) out.consensus = false;
  }
  out.value = leader_value[merge.forest.largest_tree_root()];
  if (!merge.resolution_complete) out.consensus = false;

  fetch_results(merge, leader_value, rngs, clock(), config, out);
  return out;
}

EfficientGossipResult efficient_gossip_ave(std::uint32_t n,
                                           std::span<const double> values,
                                           std::uint64_t seed, const sim::Scenario& scenario,
                                           EfficientGossipConfig config) {
  if (values.size() < n) throw std::invalid_argument("efficient_gossip: values too short");
  RngFactory rngs{seed};
  MergeOutcome merge = run_merge_stages(n, values, rngs, scenario, config);

  EfficientGossipResult out;
  out.counters = merge.counters;
  out.rounds_total = merge.rounds;
  out.num_groups = merge.forest.num_trees();
  out.max_group_size = merge.forest.max_tree_size();

  // Elect the largest group, push-sum the (sum, count) pairs, spread the
  // elected leader's estimate -- the Algorithm 8 shape over groups; every
  // later phase resumes the scenario's global clock.
  auto clock = [&scenario, &out] {
    return scenario.at_round(scenario.start_round + out.rounds_total);
  };
  std::vector<std::uint64_t> size_keys(n, kKeyBottom);
  for (NodeId r : merge.forest.roots())
    size_keys[r] = encode_size_id(static_cast<std::uint32_t>(merge.cnt[r]), r);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 0xe92);
  const GossipMaxResult election =
      run_gossip_max(merge.forest, size_keys, rngs, clock(), gm_cfg);
  out.counters += election.counters;
  out.rounds_total += election.rounds;

  PushSumConfig ps_cfg = config.push_sum;
  ps_cfg.stream_tag = derive_seed(ps_cfg.stream_tag, 0xe93);
  const PushSumResult ps =
      run_root_push_sum(merge.forest, merge.sum, merge.cnt, rngs, clock(), ps_cfg);
  out.counters += ps.counters;
  out.rounds_total += ps.rounds;

  std::vector<std::uint64_t> spread_init(n, kKeyBottom);
  for (NodeId r : merge.forest.roots())
    if (election.key[r] == size_keys[r] && ps.den[r] > 0.0)
      spread_init[r] = encode_ordered(ps.num[r] / ps.den[r]);
  GossipMaxConfig spread_cfg = config.gossip_max;
  spread_cfg.stream_tag = derive_seed(spread_cfg.stream_tag, 0xe94);
  const GossipMaxResult spread =
      run_gossip_max(merge.forest, spread_init, rngs, clock(), spread_cfg);
  out.counters += spread.counters;
  out.rounds_total += spread.rounds;

  std::vector<double> leader_value(n, 0.0);
  out.consensus = true;
  for (NodeId r : merge.forest.roots()) {
    leader_value[r] = spread.key[r] == kKeyBottom ? 0.0 : decode_ordered(spread.key[r]);
    if (spread.key[r] != spread.key[merge.forest.roots().front()]) out.consensus = false;
  }
  out.value = leader_value[merge.forest.largest_tree_root()];
  if (!merge.resolution_complete) out.consensus = false;

  fetch_results(merge, leader_value, rngs, clock(), config, out);
  return out;
}

}  // namespace drrg
