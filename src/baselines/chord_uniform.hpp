#pragma once
// Uniform gossip on the Chord overlay -- the §4 comparison baseline.
//
// "The straightforward uniform gossip [9] gives O(T log n) = O(log^2 n)
// rounds and O(M n log n) = O(n log^2 n) messages whp" (Theorem 14
// discussion): *every* node gossips each conceptual round, and every
// gossip call must be routed (T = M = O(log n) on Chord), because the
// overlay has no short-cut to a uniformly random node.
//
// We implement push-max (consensus on the maximum) and push-sum (average)
// on the shared sim::Network engine: every overlay hop is one engine
// message forwarded during delivery, so hop latency, per-hop link loss
// and the full FaultSchedule (start-time crashes + mid-run churn) apply
// exactly as they do to every other protocol in the library.

#include <cstdint>
#include <span>
#include <vector>

#include "chord/chord.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct ChordUniformConfig {
  /// Conceptual gossip rounds = round_multiplier * ceil(log2 n) + extra.
  /// Push-only dissemination pays a coupon-collector tail (the *last*
  /// node must be pushed to), so the default is generous.
  double round_multiplier = 8.0;
  std::uint32_t extra_rounds = 4;
};

struct ChordUniformResult {
  std::vector<double> value;  ///< final value/estimate at each node
  double max_relative_error = 0.0;  ///< push-sum only
  bool consensus = false;           ///< push-max only: all nodes hold Max
  sim::Counters counters;
  std::uint32_t rounds = 0;  ///< engine rounds (hops included)
};

/// Push-max over Chord: each node pushes its current maximum to a
/// near-uniform random node each conceptual round (routed hop by hop).
[[nodiscard]] ChordUniformResult chord_uniform_push_max(const ChordOverlay& chord,
                                                        std::span<const double> values,
                                                        std::uint64_t seed,
                                                        const sim::Scenario& scenario = {},
                                                        ChordUniformConfig config = {});

/// Push-sum over Chord: averages with routed pushes.
[[nodiscard]] ChordUniformResult chord_uniform_push_sum(const ChordOverlay& chord,
                                                        std::span<const double> values,
                                                        std::uint64_t seed,
                                                        const sim::Scenario& scenario = {},
                                                        ChordUniformConfig config = {});

}  // namespace drrg
