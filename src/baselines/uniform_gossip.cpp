#include "baselines/uniform_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

// ---------------------------------------------------------------------------
// uniform_push_max

namespace {

struct MaxMsg {
  double value;
  bool pull_request = false;  // a joiner asking for the callee's maximum
};

struct PushMaxProtocol {
  /// Engine contract: on_round touches only value[v] + v's stream; the
  /// handlers touch only value[dst] (+ a reply on the established call).
  /// No shared mutable state, so intra-round sharding is sound.
  static constexpr bool kShardable = true;

  std::vector<double> value;
  std::uint32_t value_bits;
  bool pull = false;  // push-pull: the callee replies with its own maximum

  void on_round(sim::Network<MaxMsg>& net, sim::NodeId v) {
    net.send(v, net.sample_peer(v), MaxMsg{value[v]}, value_bits);
  }
  /// Mid-run joiner: it holds no founding value (the aggregate is over the
  /// start-time cohort), so it bootstraps by pulling the current maximum
  /// from a uniform live peer -- the reply lands within its birth round.
  void on_join(sim::Network<MaxMsg>& net, sim::NodeId v) {
    value[v] = -std::numeric_limits<double>::infinity();
    net.send(v, net.sample_peer(v), MaxMsg{value[v], /*pull_request=*/true}, 1);
  }
  void on_message(sim::Network<MaxMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const MaxMsg& m) {
    if (m.pull_request) {
      net.reply(dst, src, MaxMsg{value[dst]}, value_bits);
      return;
    }
    if (pull) net.reply(dst, src, MaxMsg{value[dst]}, value_bits);
    value[dst] = std::max(value[dst], m.value);
  }
  void on_reply(sim::Network<MaxMsg>&, sim::NodeId, sim::NodeId dst, const MaxMsg& m) {
    value[dst] = std::max(value[dst], m.value);
  }
};

UniformPushMaxResult run_uniform_max(std::uint32_t n, std::span<const double> values,
                                     std::uint64_t seed, const sim::Scenario& scenario,
                                     const UniformPushMaxConfig& config, bool pull) {
  if (values.size() < n) throw std::invalid_argument("uniform_push_max: values too short");
  RngFactory rngs{seed};
  sim::Network<MaxMsg> net{n, rngs, scenario,
                           /*purpose=*/pull ? std::uint64_t{0x0b5f} : std::uint64_t{0x0b5e}};

  PushMaxProtocol proto{std::vector<double>(values.begin(), values.begin() + n),
                        64 + address_bits(n), pull};
  double true_max = -std::numeric_limits<double>::infinity();
  for (sim::NodeId v : net.alive_nodes()) true_max = std::max(true_max, proto.value[v]);

  const auto cap = static_cast<std::uint32_t>(config.round_multiplier *
                                              static_cast<double>(ceil_log2(n))) +
                   4;
  UniformPushMaxResult result;
  for (std::uint32_t r = 0; r < cap; ++r) {
    net.step(proto);
    const bool all = std::all_of(net.alive_nodes().begin(), net.alive_nodes().end(),
                                 [&](sim::NodeId v) { return proto.value[v] == true_max; });
    if (all && !result.consensus) {
      result.consensus = true;
      result.rounds_to_consensus = r + 1;
      result.messages_to_consensus = net.counters().sent;
      if (config.stop_on_consensus) break;
    }
  }
  result.value = std::move(proto.value);
  result.counters = net.counters();
  return result;
}

}  // namespace

UniformPushMaxResult uniform_push_max(std::uint32_t n, std::span<const double> values,
                                      std::uint64_t seed, const sim::Scenario& scenario,
                                      UniformPushMaxConfig config) {
  return run_uniform_max(n, values, seed, scenario, config, /*pull=*/false);
}

UniformPushMaxResult uniform_push_pull_max(std::uint32_t n, std::span<const double> values,
                                           std::uint64_t seed, const sim::Scenario& scenario,
                                           UniformPushMaxConfig config) {
  return run_uniform_max(n, values, seed, scenario, config, /*pull=*/true);
}

// ---------------------------------------------------------------------------
// uniform_push_sum

namespace {

struct SumMsg {
  double s;
  double w;
};

struct PushSumAllProtocol {
  /// on_round halves (s, w) of v only; on_message accumulates into dst
  /// only.  No shared mutable state, so intra-round sharding is sound.
  /// (KarpProtocol's shared transmissions tally keeps it serial.)
  static constexpr bool kShardable = true;

  std::vector<double> s;
  std::vector<double> w;
  std::uint32_t pair_bits;

  void on_round(sim::Network<SumMsg>& net, sim::NodeId v) {
    s[v] *= 0.5;
    w[v] *= 0.5;
    net.send(v, net.sample_peer(v), SumMsg{s[v], w[v]}, pair_bits);
  }
  /// Mid-run joiner: the canonical push-sum join is (0, 0) -- it carries
  /// traffic and accumulates mass from incoming shares, but contributes
  /// nothing, so sum(s)/sum(w) (and thus the founders' average) is
  /// conserved.  Without this hook a joiner would pop in with its stale
  /// start-time pair and inject mass the protocol never mixed.
  void on_join(sim::Network<SumMsg>&, sim::NodeId v) {
    s[v] = 0.0;
    w[v] = 0.0;
  }
  void on_message(sim::Network<SumMsg>&, sim::NodeId, sim::NodeId dst, const SumMsg& m) {
    s[dst] += m.s;
    w[dst] += m.w;
  }
};

}  // namespace

UniformPushSumResult uniform_push_sum(std::uint32_t n, std::span<const double> values,
                                      std::uint64_t seed, const sim::Scenario& scenario,
                                      UniformPushSumConfig config) {
  if (values.size() < n) throw std::invalid_argument("uniform_push_sum: values too short");
  RngFactory rngs{seed};
  sim::Network<SumMsg> net{n, rngs, scenario, /*purpose=*/0x0b50};

  PushSumAllProtocol proto{std::vector<double>(values.begin(), values.begin() + n),
                           std::vector<double>(n, 1.0), 2 * 64};
  // True average over alive nodes.
  double sum = 0.0;
  for (sim::NodeId v : net.alive_nodes()) sum += proto.s[v];
  const double ave = sum / static_cast<double>(net.alive_nodes().size());
  const double scale = std::max(std::fabs(ave), 1e-300);

  const auto rounds = static_cast<std::uint32_t>(config.round_multiplier *
                                                 static_cast<double>(ceil_log2(n))) +
                      config.extra_rounds;
  UniformPushSumResult result;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    net.step(proto);
    double err = 0.0;
    for (sim::NodeId v : net.alive_nodes()) {
      const double est = proto.w[v] > 0.0 ? proto.s[v] / proto.w[v] : 0.0;
      err = std::max(err, std::fabs(est - ave) / scale);
    }
    result.error_per_round.push_back(err);
    if (result.rounds_to_epsilon == 0 && err < config.epsilon) {
      result.rounds_to_epsilon = r + 1;
      result.messages_to_epsilon = net.counters().sent;
    }
  }
  result.estimate.assign(n, 0.0);
  for (sim::NodeId v : net.alive_nodes())
    result.estimate[v] = proto.w[v] > 0.0 ? proto.s[v] / proto.w[v] : 0.0;
  result.max_relative_error =
      result.error_per_round.empty() ? 0.0 : result.error_per_round.back();
  result.counters = net.counters();
  return result;
}

// ---------------------------------------------------------------------------
// karp_push_pull

namespace {

struct RumorMsg {
  enum class Kind : std::uint8_t { kPush, kPullRequest, kPullReply };
  Kind kind;
  std::uint32_t age = 0;  // rounds since the rumor's birth, as known to sender
};

struct KarpProtocol {
  KarpProtocol(std::uint32_t n, std::uint32_t cutoff_rounds, sim::NodeId source)
      : informed(n, false), age(n, 0), cutoff(cutoff_rounds) {
    informed[source] = true;
  }

  std::vector<bool> informed;
  std::vector<std::uint32_t> age;  // sender-local age estimate
  std::uint32_t cutoff;
  std::uint64_t transmissions = 0;
  std::uint32_t informed_count = 1;
  std::uint32_t rumor_bits = 64;

  /// Mid-run joiner: uninformed by construction; ask a uniform live peer
  /// for the rumor right away (the pull it would otherwise issue next
  /// round, moved into the birth round).
  void on_join(sim::Network<RumorMsg>& net, sim::NodeId v) {
    net.send(v, net.sample_peer(v), RumorMsg{RumorMsg::Kind::kPullRequest, 0}, 1);
  }

  void on_round(sim::Network<RumorMsg>& net, sim::NodeId v) {
    // Every node calls one random partner each round (the model's free
    // connection); the rumor itself is transmitted only while young.
    const sim::NodeId u = net.sample_peer(v);
    if (informed[v] && age[v] <= cutoff) {
      ++transmissions;
      net.send(v, u, RumorMsg{RumorMsg::Kind::kPush, age[v]}, rumor_bits);
    } else {
      // Uninformed (or quiescent) caller: pull.
      net.send(v, u, RumorMsg{RumorMsg::Kind::kPullRequest, 0}, 1);
    }
  }

  void learn(sim::NodeId v, std::uint32_t rumor_age) {
    if (!informed[v]) {
      informed[v] = true;
      ++informed_count;
      age[v] = rumor_age;
    } else {
      age[v] = std::max(age[v], rumor_age);
    }
  }

  void on_message(sim::Network<RumorMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const RumorMsg& m) {
    switch (m.kind) {
      case RumorMsg::Kind::kPush:
        learn(dst, m.age);
        break;
      case RumorMsg::Kind::kPullRequest:
        if (informed[dst] && age[dst] <= cutoff) {
          ++transmissions;
          net.reply(dst, src, RumorMsg{RumorMsg::Kind::kPullReply, age[dst]}, rumor_bits);
        }
        break;
      case RumorMsg::Kind::kPullReply:
        break;  // handled in on_reply
    }
  }

  void on_reply(sim::Network<RumorMsg>&, sim::NodeId, sim::NodeId dst, const RumorMsg& m) {
    if (m.kind == RumorMsg::Kind::kPullReply) learn(dst, m.age);
  }

  void on_round_end(sim::Network<RumorMsg>&, sim::NodeId v) {
    if (informed[v]) ++age[v];
  }
};

}  // namespace

KarpPushPullResult karp_push_pull(std::uint32_t n, std::uint64_t seed,
                                  const sim::Scenario& scenario, KarpPushPullConfig config) {
  if (n < 2) throw std::invalid_argument("karp_push_pull: need n >= 2");
  RngFactory rngs{seed};
  sim::Network<RumorMsg> net{n, rngs, scenario, /*purpose=*/0x0ca9};

  // Karp et al.: log3 n rounds of exponential growth (push-pull triples the
  // informed set), then O(log log n) rounds in which pull finishes the
  // stragglers; the rumor stops being transmitted after the cutoff.
  const double log3n = std::log2(static_cast<double>(n)) / std::log2(3.0);
  const auto cutoff = static_cast<std::uint32_t>(
      std::ceil(log3n) +
      config.extra_loglog * static_cast<double>(ceil_log2(std::max<std::uint32_t>(
                                2, ceil_log2(n)))));
  KarpProtocol proto{n, cutoff, net.alive_nodes().front()};

  const std::uint32_t total_rounds = cutoff + config.pull_tail;
  for (std::uint32_t r = 0; r < total_rounds; ++r) net.step(proto);

  KarpPushPullResult result;
  result.informed = proto.informed_count;
  result.rounds = total_rounds;
  result.transmissions = proto.transmissions;
  result.all_informed = proto.informed_count == net.alive_nodes().size();
  result.counters = net.counters();
  return result;
}

}  // namespace drrg
