#include "baselines/pairwise_averaging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct PaMsg {
  enum class Kind : std::uint8_t { kOffer, kMean, kBusy };
  Kind kind;
  double value = 0.0;
};

/// One round: a random half of the nodes are *active* and offer their
/// value to a partner; the rest are *passive* and accept at most one
/// offer, replacing both values by the pair mean (the reply rides the
/// established call, so the exchange is atomic).  Busy/active targets
/// decline, which keeps all exchanges of a round on disjoint pairs --
/// otherwise a node could be averaged twice concurrently and the sum
/// invariant would break.  A lost offer simply averages nothing.
///
/// Under event-time latency the offer (and with it the reply) can land
/// several rounds after the send, so the offerer stays *locked* until the
/// exchange resolves: it initiates nothing, declines incoming offers, and
/// keeps its value untouched -- the delayed kMean replaces a value that is
/// provably still the one the partner averaged, preserving the sum
/// invariant.  An offer unresolved past the model's delay bound was lost
/// (the reply rides the reliable same-round path of the delivery round),
/// so the lock times out.  With the zero model every exchange resolves in
/// its own round and the lock is invisible.
struct PairwiseProtocol {
  explicit PairwiseProtocol(std::vector<double> v, const Graph* graph,
                            std::uint32_t bits, std::uint32_t latency_bound)
      : value(std::move(v)), active(value.size(), false),
        paired(value.size(), false), locked(value.size(), 0),
        offer_round(value.size(), 0), g(graph), value_bits(bits),
        ack_deadline(latency_bound) {}

  std::vector<double> value;
  std::vector<bool> active;  // this round's role
  std::vector<bool> paired;  // passive node already matched this round
  std::vector<std::uint8_t> locked;  // offer in flight: mid-exchange
  std::vector<std::uint32_t> offer_round;
  const Graph* g;            // nullptr = complete graph, uniform partners
  std::uint32_t value_bits;
  std::uint32_t ack_deadline;  // latency bound; 0 = same-round resolution

  void on_round(sim::Network<PaMsg>& net, sim::NodeId v) {
    paired[v] = false;
    if (locked[v]) {
      // Outstanding offer: hold the value (and the decline stance) until
      // the exchange resolves or times out.
      active[v] = true;
      return;
    }
    active[v] = net.node_rng(v).next_bernoulli(0.5);
    if (!active[v]) return;
    sim::NodeId partner;
    if (g == nullptr) {
      partner = net.sample_peer(v);
      if (partner == v) partner = (partner + 1) % net.size();
    } else {
      const auto nb = g->neighbors(v);
      if (nb.empty()) return;
      partner = nb[net.node_rng(v).next_below(nb.size())];
    }
    locked[v] = 1;
    offer_round[v] = net.round();
    net.send(v, partner, PaMsg{PaMsg::Kind::kOffer, value[v]}, value_bits);
  }

  void on_message(sim::Network<PaMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const PaMsg& m) {
    if (m.kind != PaMsg::Kind::kOffer) return;
    if (active[dst] || paired[dst] || locked[dst]) {
      net.reply(dst, src, PaMsg{PaMsg::Kind::kBusy, 0.0}, 1);
      return;
    }
    paired[dst] = true;
    const double mean = 0.5 * (value[dst] + m.value);
    value[dst] = mean;
    net.reply(dst, src, PaMsg{PaMsg::Kind::kMean, mean}, value_bits);
  }

  void on_reply(sim::Network<PaMsg>&, sim::NodeId, sim::NodeId dst, const PaMsg& m) {
    locked[dst] = 0;
    if (m.kind == PaMsg::Kind::kMean) value[dst] = m.value;
  }

  void on_round_end(sim::Network<PaMsg>& net, sim::NodeId v) {
    // Past the delay bound the reply would already have arrived: the
    // offer was lost (crashed partner, loss coin), nothing was averaged.
    if (locked[v] && offer_round[v] + ack_deadline <= net.round()) locked[v] = 0;
  }
};

PairwiseResult run_pairwise(std::uint32_t n, std::span<const double> values,
                            const Graph* g, std::uint64_t seed, const sim::Scenario& scenario,
                            const PairwiseConfig& config) {
  if (values.size() < n) throw std::invalid_argument("pairwise_average: values too short");
  RngFactory rngs{seed};
  sim::Network<PaMsg> net{n, rngs, scenario, /*purpose=*/0x9a19};

  PairwiseProtocol proto{std::vector<double>(values.begin(), values.begin() + n), g,
                         64 + address_bits(n), scenario.faults.latency.bound()};
  double sum = 0.0;
  for (sim::NodeId v : net.alive_nodes()) sum += proto.value[v];
  const double ave = sum / static_cast<double>(net.alive_nodes().size());
  const double scale = std::max(std::fabs(ave), 1e-300);

  // Each exchange holds its offerer locked for the call's flight time, so
  // a node attempts an exchange only every ~(1 + E[delay]) rounds; on top
  // of that an offer in flight lands on a partner whose lock state is
  // sampled at the *delivery* round, and partners spend an E[delay]/(1 +
  // E[delay]) fraction of their time locked, cutting the per-attempt
  // acceptance rate by the same factor.  Both penalties compound, so the
  // budget stretches quadratically (exactly 1 under the zero model).
  const double per = 1.0 + scenario.faults.latency.mean();
  const double lat = per * per;
  const auto rounds = static_cast<std::uint32_t>(config.round_multiplier *
                                                 static_cast<double>(ceil_log2(n)) * lat) +
                      config.extra_rounds;
  PairwiseResult result;
  for (std::uint32_t r = 0; r < rounds; ++r) {
    net.step(proto);
    double err = 0.0;
    for (sim::NodeId v : net.alive_nodes())
      err = std::max(err, std::fabs(proto.value[v] - ave) / scale);
    result.error_per_round.push_back(err);
    if (result.rounds_to_epsilon == 0 && err < config.epsilon) {
      result.rounds_to_epsilon = r + 1;
      result.messages_to_epsilon = net.counters().sent;
    }
  }
  result.value = std::move(proto.value);
  result.max_relative_error =
      result.error_per_round.empty() ? 0.0 : result.error_per_round.back();
  result.counters = net.counters();
  return result;
}

}  // namespace

PairwiseResult pairwise_average(std::uint32_t n, std::span<const double> values,
                                std::uint64_t seed, const sim::Scenario& scenario,
                                PairwiseConfig config) {
  return run_pairwise(n, values, nullptr, seed, scenario, config);
}

PairwiseResult pairwise_average_on_graph(const Graph& g, std::span<const double> values,
                                         std::uint64_t seed, const sim::Scenario& scenario,
                                         PairwiseConfig config) {
  if (g.is_complete())
    return run_pairwise(g.size(), values, nullptr, seed, scenario, config);
  return run_pairwise(g.size(), values, &g, seed, scenario, config);
}

}  // namespace drrg
