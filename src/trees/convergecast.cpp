#include "trees/convergecast.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct CcMsg {
  enum class Kind : std::uint8_t { kValue, kAck };
  Kind kind;
  double a = 0.0;  // aggregate
  double b = 0.0;  // weight (kSum)
};

struct CcProtocol {
  CcProtocol(const Forest& f, std::span<const double> values, ConvergecastOp o,
             std::uint32_t n)
      : forest(f), op(o), value_bits(64 + address_bits(n)), state(n),
        reported(n, 0) {
    for (NodeId v = 0; v < n; ++v) {
      if (!f.is_member(v)) continue;
      NodeState& s = state[v];
      s.acc_a = values[v];
      s.acc_b = 1.0;
      s.pending_children = static_cast<std::uint32_t>(f.children(v).size());
      if (!f.is_root(v)) {
        ++unfinished;
        active.push_back(v);  // roots never act in on_round
      }
    }
    for (NodeId r : f.roots())
      if (state[r].pending_children > 0) ++unfinished_roots;
  }

  struct NodeState {
    double acc_a = 0.0;
    double acc_b = 0.0;
    std::uint32_t pending_children = 0;
    bool sent_up = false;  // parent acknowledged
  };

  const Forest& forest;
  ConvergecastOp op;
  std::uint32_t value_bits;
  std::vector<NodeState> state;
  /// reported[c]: c's kValue was absorbed at its parent.  Every node has
  /// exactly one parent, so one flag per child edge.  Under event-time
  /// latency the resend loop puts several copies of the same kValue in
  /// flight before the first ack returns; absorbing a duplicate would
  /// double-count the subtree and wrap pending_children, so duplicates
  /// are acked (to stop the resends) but never absorbed.
  std::vector<std::uint8_t> reported;
  std::vector<NodeId> active;          // non-roots not yet acked, ascending
  std::uint32_t unfinished = 0;        // non-roots that have not been acked
  std::uint32_t unfinished_roots = 0;  // roots still waiting on children

  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return active;
  }

  void absorb(NodeState& s, double a, double b) {
    switch (op) {
      case ConvergecastOp::kMax: s.acc_a = std::max(s.acc_a, a); break;
      case ConvergecastOp::kMin: s.acc_a = std::min(s.acc_a, a); break;
      case ConvergecastOp::kSum:
        s.acc_a += a;
        s.acc_b += b;
        break;
    }
  }

  void on_round(sim::Network<CcMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (s.sent_up || s.pending_children > 0) return;
    // All children reported: push the partial aggregate to the parent,
    // repeating each round until the ack arrives.
    net.send(v, forest.parent(v), CcMsg{CcMsg::Kind::kValue, s.acc_a, s.acc_b}, value_bits);
  }

  void on_message(sim::Network<CcMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const CcMsg& m) {
    if (m.kind != CcMsg::Kind::kValue) return;
    if (!reported[src]) {
      reported[src] = 1;
      NodeState& s = state[dst];
      absorb(s, m.a, m.b);
      --s.pending_children;
      if (s.pending_children == 0 && forest.is_root(dst) && unfinished_roots > 0)
        --unfinished_roots;
    }
    net.reply(dst, src, CcMsg{CcMsg::Kind::kAck, 0.0, 0.0}, 1);
  }

  void on_reply(sim::Network<CcMsg>&, sim::NodeId, sim::NodeId dst, const CcMsg& m) {
    if (m.kind != CcMsg::Kind::kAck) return;
    NodeState& s = state[dst];
    if (!s.sent_up) {
      s.sent_up = true;
      --unfinished;
    }
  }

  [[nodiscard]] bool done(const sim::Network<CcMsg>&) {
    // Acked nodes are pure no-ops from here on; pruning runs between
    // rounds (never while the engine iterates the active span).
    active.erase(std::remove_if(active.begin(), active.end(),
                                [this](NodeId v) { return state[v].sent_up; }),
                 active.end());
    return unfinished == 0 && unfinished_roots == 0;
  }
};

/// Flat fault-free executor.  Each ready node's value reaches its parent
/// (and is acked) within its own round, so the round resolves inline.
/// The ordering hazard -- a parent whose last child reports in round r
/// must not push upward until round r+1 (the engine runs all upcalls
/// before any delivery) -- is handled by stamping ready_at when
/// pending_children hits zero.  A parent absorbing inline is safe in
/// either id order: a parent still waiting on children never sends in
/// that same round, so no same-round send can observe the absorption
/// early.  Per-parent absorption order is the ascending-child send order
/// the engine produces, keeping the IEEE-754 sums bit-identical (pinned
/// by the golden determinism tests); no RNG is ever drawn by either path.
ConvergecastResult run_convergecast_flat(const Forest& forest,
                                         std::span<const double> values,
                                         ConvergecastOp op, std::uint32_t n,
                                         std::uint32_t max_rounds) {
  CcProtocol proto{forest, values, op, n};
  std::vector<std::uint32_t> ready_at(n, 0);  // leaves: ready from round 0

  sim::Counters counters;
  std::uint32_t rounds = 0;
  while (rounds < max_rounds) {
    const std::uint32_t r = rounds;
    ++counters.rounds;
    ++rounds;
    for (NodeId v : proto.active) {
      CcProtocol::NodeState& s = proto.state[v];
      if (s.sent_up || s.pending_children > 0 || ready_at[v] > r) continue;
      // Value up, absorbed at the parent, 1-bit ack back -- all this round.
      const NodeId p = forest.parent(v);
      counters.sent += 2;
      counters.delivered += 2;
      counters.bits += proto.value_bits + 1;
      CcProtocol::NodeState& ps = proto.state[p];
      proto.absorb(ps, s.acc_a, s.acc_b);
      --ps.pending_children;
      if (ps.pending_children == 0) {
        ready_at[p] = r + 1;  // pushes upward from the next round
        if (forest.is_root(p) && proto.unfinished_roots > 0) --proto.unfinished_roots;
      }
      s.sent_up = true;
      --proto.unfinished;
    }
    proto.active.erase(std::remove_if(proto.active.begin(), proto.active.end(),
                                      [&proto](NodeId v) { return proto.state[v].sent_up; }),
                       proto.active.end());
    if (proto.unfinished == 0 && proto.unfinished_roots == 0) break;
  }

  ConvergecastResult result;
  result.aggregate.assign(n, 0.0);
  result.weight.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    result.aggregate[v] = proto.state[v].acc_a;
    result.weight[v] = proto.state[v].acc_b;
  }
  result.counters = counters;
  result.rounds = rounds;
  result.complete = proto.unfinished == 0 && proto.unfinished_roots == 0;
  return result;
}

}  // namespace

ConvergecastResult run_convergecast(const Forest& forest, std::span<const double> values,
                                    ConvergecastOp op, const RngFactory& rngs,
                                    const sim::Scenario& scenario, ConvergecastConfig config) {
  const std::uint32_t n = forest.size();
  if (values.size() < n) throw std::invalid_argument("run_convergecast: values too short");

  std::uint32_t max_rounds = config.max_rounds;
  if (max_rounds == 0) {
    // height rounds at delta = 0; each level adds a geometric number of
    // retries under loss (delta < 1/8), so a 8x + 64 slack is far beyond
    // the whp horizon.
    max_rounds = 8 * (forest.max_tree_height() + 2) + 64;
  }
  if (scenario.faults.fault_free())
    return run_convergecast_flat(forest, values, op, n, max_rounds);

  sim::Network<CcMsg> net{n, rngs, scenario, derive_seed(0xcc, config.stream_tag)};
  CcProtocol proto{forest, values, op, n};

  const std::uint32_t rounds = net.run(proto, max_rounds);

  ConvergecastResult result;
  result.aggregate.assign(n, 0.0);
  result.weight.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    result.aggregate[v] = proto.state[v].acc_a;
    result.weight[v] = proto.state[v].acc_b;
  }
  result.counters = net.counters();
  result.rounds = rounds;
  result.complete = proto.done(net);
  return result;
}

}  // namespace drrg
