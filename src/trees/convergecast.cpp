#include "trees/convergecast.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct CcMsg {
  enum class Kind : std::uint8_t { kValue, kAck };
  Kind kind;
  double a = 0.0;  // aggregate
  double b = 0.0;  // weight (kSum)
};

struct CcProtocol {
  CcProtocol(const Forest& f, std::span<const double> values, ConvergecastOp o,
             std::uint32_t n)
      : forest(f), op(o), value_bits(64 + address_bits(n)), state(n) {
    for (NodeId v = 0; v < n; ++v) {
      if (!f.is_member(v)) continue;
      NodeState& s = state[v];
      s.acc_a = values[v];
      s.acc_b = 1.0;
      s.pending_children = static_cast<std::uint32_t>(f.children(v).size());
      if (!f.is_root(v)) ++unfinished;
    }
    for (NodeId r : f.roots())
      if (state[r].pending_children > 0) ++unfinished_roots;
  }

  struct NodeState {
    double acc_a = 0.0;
    double acc_b = 0.0;
    std::uint32_t pending_children = 0;
    bool sent_up = false;  // parent acknowledged
  };

  const Forest& forest;
  ConvergecastOp op;
  std::uint32_t value_bits;
  std::vector<NodeState> state;
  std::uint32_t unfinished = 0;        // non-roots that have not been acked
  std::uint32_t unfinished_roots = 0;  // roots still waiting on children

  void absorb(NodeState& s, double a, double b) {
    switch (op) {
      case ConvergecastOp::kMax: s.acc_a = std::max(s.acc_a, a); break;
      case ConvergecastOp::kMin: s.acc_a = std::min(s.acc_a, a); break;
      case ConvergecastOp::kSum:
        s.acc_a += a;
        s.acc_b += b;
        break;
    }
  }

  void on_round(sim::Network<CcMsg>& net, sim::NodeId v) {
    if (forest.is_root(v) || !forest.is_member(v)) return;
    NodeState& s = state[v];
    if (s.sent_up || s.pending_children > 0) return;
    // All children reported: push the partial aggregate to the parent,
    // repeating each round until the ack arrives.
    net.send(v, forest.parent(v), CcMsg{CcMsg::Kind::kValue, s.acc_a, s.acc_b}, value_bits);
  }

  void on_message(sim::Network<CcMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const CcMsg& m) {
    if (m.kind != CcMsg::Kind::kValue) return;
    NodeState& s = state[dst];
    absorb(s, m.a, m.b);
    --s.pending_children;
    if (s.pending_children == 0 && forest.is_root(dst) && unfinished_roots > 0)
      --unfinished_roots;
    net.reply(dst, src, CcMsg{CcMsg::Kind::kAck, 0.0, 0.0}, 1);
  }

  void on_reply(sim::Network<CcMsg>&, sim::NodeId, sim::NodeId dst, const CcMsg& m) {
    if (m.kind != CcMsg::Kind::kAck) return;
    NodeState& s = state[dst];
    if (!s.sent_up) {
      s.sent_up = true;
      --unfinished;
    }
  }

  [[nodiscard]] bool done(const sim::Network<CcMsg>&) const {
    return unfinished == 0 && unfinished_roots == 0;
  }
};

}  // namespace

ConvergecastResult run_convergecast(const Forest& forest, std::span<const double> values,
                                    ConvergecastOp op, const RngFactory& rngs,
                                    const sim::Scenario& scenario, ConvergecastConfig config) {
  const std::uint32_t n = forest.size();
  if (values.size() < n) throw std::invalid_argument("run_convergecast: values too short");

  sim::Network<CcMsg> net{n, rngs, scenario, derive_seed(0xcc, config.stream_tag)};
  CcProtocol proto{forest, values, op, n};

  std::uint32_t max_rounds = config.max_rounds;
  if (max_rounds == 0) {
    // height rounds at delta = 0; each level adds a geometric number of
    // retries under loss (delta < 1/8), so a 8x + 64 slack is far beyond
    // the whp horizon.
    max_rounds = 8 * (forest.max_tree_height() + 2) + 64;
  }
  const std::uint32_t rounds = net.run(proto, max_rounds);

  ConvergecastResult result;
  result.aggregate.assign(n, 0.0);
  result.weight.assign(n, 0.0);
  for (NodeId v = 0; v < n; ++v) {
    result.aggregate[v] = proto.state[v].acc_a;
    result.weight[v] = proto.state[v].acc_b;
  }
  result.counters = net.counters();
  result.rounds = rounds;
  result.complete = proto.done(net);
  return result;
}

}  // namespace drrg
