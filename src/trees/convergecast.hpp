#pragma once
// Phase II, upward half: Convergecast (Algorithms 2 and 3).
//
// Aggregation proceeds from the leaves of each ranking tree to its root.
// A node sends its (partial) aggregate to its parent once all of its
// children have reported; sends are acknowledged calls, retried under
// loss.  Convergecast-max/min carry a single value; Convergecast-sum
// carries the (value-sum, node-count) vector of Algorithm 3, so the root
// z ends up with covsum(z,1) = local sum and covsum(z,2) = tree size.
//
// The paper bounds Phase II time by the tree size; in the random phone
// call model a parent may *receive* from several children in one round,
// so the measured time is Theta(height + retries) -- strictly within the
// paper's bound (see DESIGN.md).

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

enum class ConvergecastOp : std::uint8_t { kMax, kMin, kSum };

struct ConvergecastConfig {
  /// 0 = auto: generous bound from forest height plus loss slack.
  std::uint32_t max_rounds = 0;
  /// Disambiguates RNG streams when one pipeline runs the protocol twice.
  std::uint64_t stream_tag = 0;
};

struct ConvergecastResult {
  /// Aggregate value per node; meaningful at roots (kMax/kMin: the local
  /// extreme; kSum: the local value sum).
  std::vector<double> aggregate;
  /// kSum only: node count of the subtree (at roots: the tree size).
  std::vector<double> weight;
  sim::Counters counters;
  std::uint32_t rounds = 0;
  /// True iff every root heard from all of its children (always true at
  /// delta = 0; under loss the retry budget is the max_rounds horizon).
  bool complete = false;
};

/// Runs convergecast over `forest` with per-node inputs `values` (entries
/// of non-members are ignored).
[[nodiscard]] ConvergecastResult run_convergecast(const Forest& forest,
                                                  std::span<const double> values,
                                                  ConvergecastOp op,
                                                  const RngFactory& rngs,
                                                  const sim::Scenario& scenario = {},
                                                  ConvergecastConfig config = {});

}  // namespace drrg
