#include "trees/broadcast.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct BcMsg {
  enum class Kind : std::uint8_t { kValue, kAck };
  Kind kind;
  double payload = 0.0;
};

struct BcProtocol {
  BcProtocol(const Forest& f, std::span<const double> payload, std::uint32_t n,
             bool simultaneous)
      : forest(f), all_children_at_once(simultaneous), value_bits(64 + address_bits(n)),
        state(n), child_acked(f.child_slots(), 0), child_slot(n, 0) {
    for (NodeId v = 0; v < n; ++v) {
      if (!f.is_member(v)) continue;
      ++uninformed;
      if (f.is_root(v)) {
        state[v].informed = true;
        state[v].payload = payload[v];
        --uninformed;
      }
      // Only internal nodes ever act in on_round; leaves and childless
      // roots are upcall no-ops and stay off the engine's scan list.
      const auto children = f.children(v);
      if (!children.empty()) {
        active.push_back(v);
        for (std::size_t i = 0; i < children.size(); ++i)
          child_slot[children[i]] = f.child_offset(v) + i;
      }
    }
  }

  struct NodeState {
    bool informed = false;
    double payload = 0.0;
    std::uint32_t acked_count = 0;
    /// First child index that might be unacked (acked prefix skip: the
    /// per-round resend scan is O(1) amortised instead of O(children)).
    std::uint32_t resend_cursor = 0;
  };

  const Forest& forest;
  bool all_children_at_once;
  std::uint32_t value_bits;
  std::vector<NodeState> state;
  /// Ack flags for every (parent, child) edge, flat in the forest's CSR
  /// child order -- one array instead of n per-node vectors.
  std::vector<std::uint8_t> child_acked;
  /// child_slot[c]: c's index into child_acked (valid for members with a
  /// parent).
  std::vector<std::uint64_t> child_slot;
  std::vector<NodeId> active;  // internal nodes not yet fully acked, ascending
  std::uint32_t uninformed = 0;

  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return active;
  }

  void on_round(sim::Network<BcMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    const auto children = forest.children(v);
    if (!s.informed || s.acked_count == children.size()) return;
    const std::uint64_t base = forest.child_offset(v);
    if (all_children_at_once) {
      // §4 Assumption (1): one round reaches all (graph-neighbor) children.
      for (std::size_t i = 0; i < children.size(); ++i)
        if (!child_acked[base + i])
          net.send(v, children[i], BcMsg{BcMsg::Kind::kValue, s.payload}, value_bits);
    } else {
      // Random phone call model: one call per round; (re)send to the first
      // child that has not acknowledged yet.
      while (s.resend_cursor < children.size() && child_acked[base + s.resend_cursor])
        ++s.resend_cursor;
      if (s.resend_cursor < children.size()) {
        net.send(v, children[s.resend_cursor], BcMsg{BcMsg::Kind::kValue, s.payload},
                 value_bits);
      }
    }
  }

  void on_message(sim::Network<BcMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const BcMsg& m) {
    if (m.kind != BcMsg::Kind::kValue) return;
    NodeState& s = state[dst];
    if (!s.informed) {
      s.informed = true;
      s.payload = m.payload;
      --uninformed;
    }
    net.reply(dst, src, BcMsg{BcMsg::Kind::kAck, 0.0}, 1);
  }

  void on_reply(sim::Network<BcMsg>&, sim::NodeId src, sim::NodeId dst, const BcMsg& m) {
    if (m.kind != BcMsg::Kind::kAck) return;
    const std::uint64_t slot = child_slot[src];
    if (!child_acked[slot]) {
      child_acked[slot] = 1;
      ++state[dst].acked_count;
    }
  }

  [[nodiscard]] bool done(const sim::Network<BcMsg>&) {
    // Fully-acked internal nodes never act again; pruning runs between
    // rounds (never while the engine iterates the active span).
    active.erase(std::remove_if(active.begin(), active.end(),
                                [this](NodeId v) {
                                  return state[v].acked_count ==
                                         forest.children(v).size();
                                }),
                 active.end());
    return uninformed == 0;
  }
};

/// Flat fault-free executor.  Every kValue is delivered and acknowledged
/// within its own round, so the round resolves inline.  The one ordering
/// hazard -- the engine runs all upcalls before any delivery, so a child
/// informed in round r must not itself send until round r+1 -- is handled
/// by stamping the informing round and gating sends on informed_at < r.
/// Counters and the informed/payload state are bit-identical to the
/// Network path (pinned by the golden determinism tests); no RNG is ever
/// drawn by either path.
BroadcastResult run_broadcast_flat(const Forest& forest, std::span<const double> payload,
                                   std::uint32_t n, bool simultaneous,
                                   std::uint32_t max_rounds) {
  BcProtocol proto{forest, payload, n, simultaneous};
  std::vector<std::uint32_t> informed_at(n, 0);  // roots: round 0 (pre-informed)

  sim::Counters counters;
  std::uint32_t rounds = 0;
  while (rounds < max_rounds) {
    const std::uint32_t r = rounds;
    ++counters.rounds;
    ++rounds;
    for (NodeId v : proto.active) {
      BcProtocol::NodeState& s = proto.state[v];
      const auto children = forest.children(v);
      if (!s.informed || informed_at[v] > r || s.acked_count == children.size())
        continue;
      const std::uint64_t base = forest.child_offset(v);
      auto inform = [&](std::size_t i) {
        const NodeId c = children[i];
        // kValue out, child informed, 1-bit ack back -- all this round.
        counters.sent += 2;
        counters.delivered += 2;
        counters.bits += proto.value_bits + 1;
        BcProtocol::NodeState& cs = proto.state[c];
        if (!cs.informed) {
          cs.informed = true;
          cs.payload = s.payload;
          informed_at[c] = r + 1;  // acts from the next round, engine order
          --proto.uninformed;
        }
        proto.child_acked[base + i] = 1;
        ++s.acked_count;
      };
      if (proto.all_children_at_once) {
        for (std::size_t i = 0; i < children.size(); ++i)
          if (!proto.child_acked[base + i]) inform(i);
      } else {
        while (s.resend_cursor < children.size() &&
               proto.child_acked[base + s.resend_cursor])
          ++s.resend_cursor;
        if (s.resend_cursor < children.size()) inform(s.resend_cursor);
      }
    }
    proto.active.erase(std::remove_if(proto.active.begin(), proto.active.end(),
                                      [&proto, &forest](NodeId v) {
                                        return proto.state[v].acked_count ==
                                               forest.children(v).size();
                                      }),
                       proto.active.end());
    if (proto.uninformed == 0) break;
  }

  BroadcastResult result;
  result.received.assign(n, 0.0);
  result.informed.assign(n, false);
  for (NodeId v = 0; v < n; ++v) {
    result.received[v] = proto.state[v].payload;
    result.informed[v] = proto.state[v].informed;
  }
  result.counters = counters;
  result.rounds = rounds;
  result.complete = proto.uninformed == 0;
  return result;
}

}  // namespace

BroadcastResult run_broadcast(const Forest& forest, std::span<const double> payload,
                              const RngFactory& rngs, const sim::Scenario& scenario,
                              BroadcastConfig config) {
  const std::uint32_t n = forest.size();
  if (payload.size() < n) throw std::invalid_argument("run_broadcast: payload too short");

  std::uint32_t max_rounds = config.max_rounds;
  if (max_rounds == 0) {
    max_rounds = config.simultaneous_children
                     ? 8 * (forest.max_tree_height() + 2) + 64
                     : 8 * (forest.max_tree_size() + 2) + 64;
  }
  if (scenario.faults.fault_free())
    return run_broadcast_flat(forest, payload, n, config.simultaneous_children,
                              max_rounds);

  sim::Network<BcMsg> net{n, rngs, scenario, derive_seed(0xbc, config.stream_tag)};
  BcProtocol proto{forest, payload, n, config.simultaneous_children};

  const std::uint32_t rounds = net.run(proto, max_rounds);

  BroadcastResult result;
  result.received.assign(n, 0.0);
  result.informed.assign(n, false);
  for (NodeId v = 0; v < n; ++v) {
    result.received[v] = proto.state[v].payload;
    result.informed[v] = proto.state[v].informed;
  }
  result.counters = net.counters();
  result.rounds = rounds;
  result.complete = proto.uninformed == 0;
  return result;
}

}  // namespace drrg
