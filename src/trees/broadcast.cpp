#include "trees/broadcast.hpp"

#include <stdexcept>

#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

struct BcMsg {
  enum class Kind : std::uint8_t { kValue, kAck };
  Kind kind;
  double payload = 0.0;
};

struct BcProtocol {
  BcProtocol(const Forest& f, std::span<const double> payload, std::uint32_t n,
             bool simultaneous)
      : forest(f), all_children_at_once(simultaneous), value_bits(64 + address_bits(n)),
        state(n) {
    for (NodeId v = 0; v < n; ++v) {
      if (!f.is_member(v)) continue;
      ++uninformed;
      state[v].child_acked.assign(f.children(v).size(), false);
      if (f.is_root(v)) {
        state[v].informed = true;
        state[v].payload = payload[v];
        --uninformed;
      }
    }
  }

  struct NodeState {
    bool informed = false;
    double payload = 0.0;
    std::vector<bool> child_acked;
    std::uint32_t acked_count = 0;
  };

  const Forest& forest;
  bool all_children_at_once;
  std::uint32_t value_bits;
  std::vector<NodeState> state;
  std::uint32_t uninformed = 0;

  void on_round(sim::Network<BcMsg>& net, sim::NodeId v) {
    NodeState& s = state[v];
    if (!s.informed || s.acked_count == s.child_acked.size()) return;
    const auto children = forest.children(v);
    if (all_children_at_once) {
      // §4 Assumption (1): one round reaches all (graph-neighbor) children.
      for (std::size_t i = 0; i < children.size(); ++i)
        if (!s.child_acked[i])
          net.send(v, children[i], BcMsg{BcMsg::Kind::kValue, s.payload}, value_bits);
    } else {
      // Random phone call model: one call per round; (re)send to the first
      // child that has not acknowledged yet.
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (!s.child_acked[i]) {
          net.send(v, children[i], BcMsg{BcMsg::Kind::kValue, s.payload}, value_bits);
          break;
        }
      }
    }
  }

  void on_message(sim::Network<BcMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const BcMsg& m) {
    if (m.kind != BcMsg::Kind::kValue) return;
    NodeState& s = state[dst];
    if (!s.informed) {
      s.informed = true;
      s.payload = m.payload;
      --uninformed;
    }
    net.reply(dst, src, BcMsg{BcMsg::Kind::kAck, 0.0}, 1);
  }

  void on_reply(sim::Network<BcMsg>&, sim::NodeId src, sim::NodeId dst, const BcMsg& m) {
    if (m.kind != BcMsg::Kind::kAck) return;
    NodeState& s = state[dst];
    const auto children = forest.children(dst);
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (children[i] == src && !s.child_acked[i]) {
        s.child_acked[i] = true;
        ++s.acked_count;
        break;
      }
    }
  }

  [[nodiscard]] bool done(const sim::Network<BcMsg>&) const { return uninformed == 0; }
};

}  // namespace

BroadcastResult run_broadcast(const Forest& forest, std::span<const double> payload,
                              const RngFactory& rngs, const sim::Scenario& scenario,
                              BroadcastConfig config) {
  const std::uint32_t n = forest.size();
  if (payload.size() < n) throw std::invalid_argument("run_broadcast: payload too short");

  sim::Network<BcMsg> net{n, rngs, scenario, derive_seed(0xbc, config.stream_tag)};
  BcProtocol proto{forest, payload, n, config.simultaneous_children};

  std::uint32_t max_rounds = config.max_rounds;
  if (max_rounds == 0) {
    max_rounds = config.simultaneous_children
                     ? 8 * (forest.max_tree_height() + 2) + 64
                     : 8 * (forest.max_tree_size() + 2) + 64;
  }
  const std::uint32_t rounds = net.run(proto, max_rounds);

  BroadcastResult result;
  result.received.assign(n, 0.0);
  result.informed.assign(n, false);
  for (NodeId v = 0; v < n; ++v) {
    result.received[v] = proto.state[v].payload;
    result.informed[v] = proto.state[v].informed;
  }
  result.counters = net.counters();
  result.rounds = rounds;
  result.complete = proto.uninformed == 0;
  return result;
}

}  // namespace drrg
