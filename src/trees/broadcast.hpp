#pragma once
// Phase II, downward half: tree broadcast.
//
// After convergecast each root disseminates a payload down its tree: first
// its own address (so Phase III forwarding becomes possible -- the
// non-address-oblivious ingredient), and after Phase III the global
// aggregate itself.  A node informs one child per round (a node initiates
// at most one call per round in the model of §2); sends are acknowledged
// and retried under loss.  Time is O(tree size) worst case, exactly the
// paper's Phase II bound, and messages are O(n) in total.

#include <cstdint>
#include <span>
#include <vector>

#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

struct BroadcastConfig {
  /// 0 = auto: generous bound from max tree size plus loss slack.
  std::uint32_t max_rounds = 0;
  /// Disambiguates RNG streams when one pipeline runs the protocol twice.
  std::uint64_t stream_tag = 0;
  /// Sparse-network mode (§4 Assumption 1): a node may message all of its
  /// children (graph neighbors) in one round, making broadcast
  /// O(height) instead of O(tree size).
  bool simultaneous_children = false;
};

struct BroadcastResult {
  /// Payload each node ended with (roots keep their own input).
  std::vector<double> received;
  /// Whether the node was informed (false only on retry exhaustion).
  std::vector<bool> informed;
  sim::Counters counters;
  std::uint32_t rounds = 0;
  bool complete = false;  ///< all member nodes informed
};

/// Broadcasts `payload[root]` from every root down its tree.
[[nodiscard]] BroadcastResult run_broadcast(const Forest& forest,
                                            std::span<const double> payload,
                                            const RngFactory& rngs,
                                            const sim::Scenario& scenario = {},
                                            BroadcastConfig config = {});

}  // namespace drrg
