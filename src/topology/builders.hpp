#pragma once
// Graph builders for the sparse-network experiments (§4) and examples.
//
// The paper evaluates Local-DRR "on an arbitrary undirected graph"; the
// benches exercise it on the standard families below.  All randomized
// builders are deterministic functions of their seed.

#include <cstdint>

#include "topology/graph.hpp"

namespace drrg {

/// Cycle 0-1-...-n-1-0.  Minimum-degree-2 worst case for tree height.
[[nodiscard]] Graph make_ring(std::uint32_t n);

/// Simple path 0-1-...-n-1.
[[nodiscard]] Graph make_path(std::uint32_t n);

/// Star: node 0 adjacent to all others (hub-and-spoke extreme).
[[nodiscard]] Graph make_star(std::uint32_t n);

/// rows x cols grid, 4-neighborhood; torus wraps both dimensions.
[[nodiscard]] Graph make_grid(std::uint32_t rows, std::uint32_t cols, bool torus = false);

/// Hypercube on n = 2^dim nodes.
[[nodiscard]] Graph make_hypercube(std::uint32_t dim);

/// Complete binary tree with n nodes (heap indexing).
[[nodiscard]] Graph make_binary_tree(std::uint32_t n);

/// Random d-regular graph via the configuration model with restarts
/// (rejects self-loops/multi-edges).  Requires n*d even and d < n.
[[nodiscard]] Graph make_random_regular(std::uint32_t n, std::uint32_t d, std::uint64_t seed);

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed);

/// Random geometric graph on the unit square: nodes at uniform positions,
/// edge iff distance <= radius (the standard sensor-network model).
[[nodiscard]] Graph make_geometric(std::uint32_t n, double radius, std::uint64_t seed);

/// The static Chord graph: node i on a ring of n ids with successor edge
/// and finger edges to (i + 2^k) mod n.  (The full Chord overlay with
/// routing lives in src/chord; this builder only exposes its topology so
/// Local-DRR can run on it.)
[[nodiscard]] Graph make_chord_graph(std::uint32_t n);

/// Watts-Strogatz small world: ring lattice with k nearest neighbors per
/// side, each edge rewired with probability beta (endpoints never
/// duplicated).  Requires 1 <= k < n/2.
[[nodiscard]] Graph make_small_world(std::uint32_t n, std::uint32_t k, double beta,
                                     std::uint64_t seed);

/// Barabasi-Albert preferential attachment: starts from a small clique,
/// every new node attaches m edges biased towards high-degree nodes --
/// the classic heavy-tailed P2P degree profile.  Requires 1 <= m < n.
[[nodiscard]] Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m,
                                                 std::uint64_t seed);

}  // namespace drrg
