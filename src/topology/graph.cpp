#include "topology/graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace drrg {

namespace {
constexpr std::uint32_t kNeverSeen = static_cast<std::uint32_t>(-1);
}  // namespace

Graph Graph::from_edges(std::uint32_t n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g;
  g.n_ = n;
  g.complete_ = false;
  std::vector<std::uint32_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    if (u >= n || v >= n) throw std::invalid_argument("Graph: vertex out of range");
    if (u == v) throw std::invalid_argument("Graph: self-loop");
    ++deg[u];
    ++deg[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adjacency_.assign(g.offsets_[n], 0);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end)
      throw std::invalid_argument("Graph: duplicate edge");
  }
  return g;
}

Graph Graph::complete(std::uint32_t n) {
  Graph g;
  g.n_ = n;
  g.complete_ = true;
  return g;
}

std::uint64_t Graph::edge_count() const noexcept {
  if (complete_) return static_cast<std::uint64_t>(n_) * (n_ - 1) / 2;
  return adjacency_.size() / 2;
}

std::uint32_t Graph::degree(NodeId v) const noexcept {
  if (complete_) return n_ > 0 ? n_ - 1 : 0;
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const noexcept {
  if (complete_) return {};
  return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u == v || u >= n_ || v >= n_) return false;
  if (complete_) return true;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool Graph::connected() const {
  if (n_ == 0) return true;
  if (complete_) return true;
  std::vector<bool> seen(n_, false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        frontier.push(w);
      }
    }
  }
  return visited == n_;
}

std::uint32_t Graph::pseudo_diameter() const {
  if (n_ <= 1) return 0;
  if (complete_) return 1;
  // Two BFS sweeps: farthest node from 0, then the eccentricity of that
  // node.  Exact on trees/grids, a strong lower bound in general -- and a
  // lower bound only ever under-scales the Phase III budget, never
  // inflates it.
  std::vector<std::uint32_t> dist(n_);
  auto bfs = [&](NodeId start) -> NodeId {
    std::fill(dist.begin(), dist.end(), kNeverSeen);
    std::vector<NodeId> frontier{start};
    dist[start] = 0;
    NodeId farthest = start;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        for (NodeId w : neighbors(v)) {
          if (dist[w] == kNeverSeen) {
            dist[w] = dist[v] + 1;
            if (dist[w] > dist[farthest] || (dist[w] == dist[farthest] && w < farthest))
              farthest = w;
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
    }
    return farthest;
  };
  const NodeId u = bfs(0);
  const NodeId w = bfs(u);
  return dist[w];
}

std::uint32_t Graph::min_degree() const noexcept {
  if (n_ == 0) return 0;
  std::uint32_t m = degree(0);
  for (NodeId v = 1; v < n_; ++v) m = std::min(m, degree(v));
  return m;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t m = 0;
  for (NodeId v = 0; v < n_; ++v) m = std::max(m, degree(v));
  return m;
}

double Graph::inverse_degree_plus_one_sum() const noexcept {
  double s = 0.0;
  for (NodeId v = 0; v < n_; ++v) s += 1.0 / (static_cast<double>(degree(v)) + 1.0);
  return s;
}

}  // namespace drrg
