#include "topology/builders.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {

namespace {
using EdgeList = std::vector<std::pair<NodeId, NodeId>>;
}  // namespace

Graph make_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: need n >= 3");
  EdgeList edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Graph::from_edges(n, edges);
}

Graph make_path(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_path: need n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph::from_edges(n, edges);
}

Graph make_star(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_star: need n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph::from_edges(n, edges);
}

Graph make_grid(std::uint32_t rows, std::uint32_t cols, bool torus) {
  if (rows < 2 || cols < 2) throw std::invalid_argument("make_grid: need rows, cols >= 2");
  // rows * cols must be widened before the NodeId narrowing: 65536 x 65536
  // wraps to 0 in 32-bit arithmetic and would "succeed" with a 0-node graph.
  static_assert(sizeof(NodeId) == 4, "grid overflow guard assumes 32-bit ids");
  const std::uint64_t n64 = static_cast<std::uint64_t>(rows) * cols;
  if (n64 > static_cast<std::uint64_t>(static_cast<NodeId>(-1)))
    throw std::invalid_argument("make_grid: rows * cols overflows NodeId");
  const auto n = static_cast<std::uint32_t>(n64);
  auto id = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  // Direct emission -- grid edges are unique by construction.  The only
  // duplicate hazard is a torus wrap on a 2-wide dimension (the wrap edge
  // coincides with the lattice edge), so wraps are emitted only for
  // dimensions > 2.  Same edge set as the historical std::set build,
  // without the per-trial RB-tree churn.
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      else if (torus && cols > 2) edges.emplace_back(id(r, 0), id(r, c));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      else if (torus && rows > 2) edges.emplace_back(id(0, c), id(r, c));
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_hypercube(std::uint32_t dim) {
  if (dim == 0 || dim > 24) throw std::invalid_argument("make_hypercube: dim in [1,24]");
  const std::uint32_t n = 1u << dim;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (NodeId v = 0; v < n; ++v)
    for (std::uint32_t b = 0; b < dim; ++b) {
      const NodeId w = v ^ (1u << b);
      if (v < w) edges.emplace_back(v, w);
    }
  return Graph::from_edges(n, edges);
}

Graph make_binary_tree(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_binary_tree: need n >= 2");
  EdgeList edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(v, (v - 1) / 2);
  return Graph::from_edges(n, edges);
}

Graph make_random_regular(std::uint32_t n, std::uint32_t d, std::uint64_t seed) {
  if (d == 0 || d >= n) throw std::invalid_argument("make_random_regular: need 0 < d < n");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0)
    throw std::invalid_argument("make_random_regular: n*d must be even");
  Rng rng{derive_seed(seed, 0x2e97ULL)};
  // Configuration model with edge-swap repair: pair up the n*d stubs, then
  // fix each self-loop/multi-edge by a degree-preserving double swap with
  // a random good edge (the standard approach; whole-matching restarts
  // have vanishing success probability already for moderate d).
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  auto canon = [](NodeId a, NodeId b) {
    return a < b ? std::pair<NodeId, NodeId>{a, b} : std::pair<NodeId, NodeId>{b, a};
  };
  for (int attempt = 0; attempt < 64; ++attempt) {
    stubs.clear();
    for (NodeId v = 0; v < n; ++v)
      for (std::uint32_t k = 0; k < d; ++k) stubs.push_back(v);
    for (std::size_t i = stubs.size(); i > 1; --i)  // Fisher-Yates
      std::swap(stubs[i - 1], stubs[rng.next_below(i)]);

    std::set<std::pair<NodeId, NodeId>> edges;
    std::vector<std::pair<NodeId, NodeId>> good;      // random-access view
    std::vector<std::pair<NodeId, NodeId>> conflicts; // self-loops/dups
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId a = stubs[i], b = stubs[i + 1];
      if (a != b && edges.insert(canon(a, b)).second) {
        good.push_back(canon(a, b));
      } else {
        conflicts.push_back({a, b});
      }
    }

    bool ok = true;
    for (auto [a, b] : conflicts) {
      bool fixed = false;
      for (int tries = 0; tries < 400 && !good.empty(); ++tries) {
        auto& slot = good[rng.next_below(good.size())];
        auto [c, dd] = slot;
        if (rng.next_bernoulli(0.5)) std::swap(c, dd);
        // Rewire (a,b) + (c,dd) -> (a,c) + (b,dd).
        if (a == c || b == dd) continue;
        if (edges.count(canon(a, c)) != 0 || edges.count(canon(b, dd)) != 0) continue;
        edges.erase(canon(c, dd));
        slot = canon(a, c);
        edges.insert(slot);
        edges.insert(canon(b, dd));
        good.push_back(canon(b, dd));
        fixed = true;
        break;
      }
      if (!fixed) {
        ok = false;
        break;
      }
    }
    if (ok) return Graph::from_edges(n, EdgeList(edges.begin(), edges.end()));
  }
  throw std::runtime_error("make_random_regular: configuration model did not converge");
}

Graph make_erdos_renyi(std::uint32_t n, double p, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_erdos_renyi: need n >= 2");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("make_erdos_renyi: p in [0,1]");
  Rng rng{derive_seed(seed, 0xe23eULL)};
  EdgeList edges;
  // Geometric skipping enumerates present edges directly: O(n^2 p) expected.
  if (p > 0.0) {
    const double log1mp = std::log1p(-p);
    const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    std::uint64_t idx = 0;
    auto unrank = [n](std::uint64_t k) {
      // Map linear index k to the (u, v) pair in row-major upper triangle.
      NodeId u = 0;
      std::uint64_t rowlen = n - 1;
      while (k >= rowlen) {
        k -= rowlen;
        ++u;
        --rowlen;
      }
      return std::pair<NodeId, NodeId>{u, static_cast<NodeId>(u + 1 + k)};
    };
    if (p >= 1.0) {
      for (std::uint64_t k = 0; k < total; ++k) edges.push_back(unrank(k));
    } else {
      while (true) {
        const double u01 = std::max(rng.next_unit(), 1e-300);
        const auto skip = static_cast<std::uint64_t>(std::log(u01) / log1mp);
        if (skip > total || idx + skip >= total) break;
        idx += skip;
        edges.push_back(unrank(idx));
        ++idx;
        if (idx >= total) break;
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_geometric(std::uint32_t n, double radius, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("make_geometric: need n >= 2");
  Rng rng{derive_seed(seed, 0x6e0ULL)};
  std::vector<double> x(n), y(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    x[v] = rng.next_unit();
    y[v] = rng.next_unit();
  }
  // Bucket grid of cell size radius: only 3x3 neighborhoods need checking.
  const double r2 = radius * radius;
  const auto cells = static_cast<std::uint32_t>(std::max(1.0, std::floor(1.0 / radius)));
  std::vector<std::vector<NodeId>> grid(static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](NodeId v) {
    auto cx = std::min<std::uint32_t>(static_cast<std::uint32_t>(x[v] * cells), cells - 1);
    auto cy = std::min<std::uint32_t>(static_cast<std::uint32_t>(y[v] * cells), cells - 1);
    return std::pair<std::uint32_t, std::uint32_t>{cx, cy};
  };
  for (NodeId v = 0; v < n; ++v) {
    auto [cx, cy] = cell_of(v);
    grid[static_cast<std::size_t>(cx) * cells + cy].push_back(v);
  }
  EdgeList edges;
  for (NodeId v = 0; v < n; ++v) {
    auto [cx, cy] = cell_of(v);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const auto nx = static_cast<std::int64_t>(cx) + dx;
        const auto ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (NodeId w : grid[static_cast<std::size_t>(nx) * cells + static_cast<std::size_t>(ny)]) {
          if (w <= v) continue;
          const double ddx = x[v] - x[w];
          const double ddy = y[v] - y[w];
          if (ddx * ddx + ddy * ddy <= r2) edges.emplace_back(v, w);
        }
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_small_world(std::uint32_t n, std::uint32_t k, double beta, std::uint64_t seed) {
  if (n < 4) throw std::invalid_argument("make_small_world: need n >= 4");
  if (k == 0 || 2 * k >= n) throw std::invalid_argument("make_small_world: need 1 <= k < n/2");
  if (beta < 0.0 || beta > 1.0) throw std::invalid_argument("make_small_world: beta in [0,1]");
  Rng rng{derive_seed(seed, 0x5311ULL)};
  std::set<std::pair<NodeId, NodeId>> edges;
  auto canon = [](NodeId a, NodeId b) {
    return a < b ? std::pair<NodeId, NodeId>{a, b} : std::pair<NodeId, NodeId>{b, a};
  };
  // Ring lattice: v connected to its k clockwise successors.
  for (NodeId v = 0; v < n; ++v)
    for (std::uint32_t j = 1; j <= k; ++j) edges.insert(canon(v, (v + j) % n));
  // Rewiring pass: each lattice edge (v, v+j) may move its far endpoint.
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      if (!rng.next_bernoulli(beta)) continue;
      const NodeId old_w = (v + j) % n;
      // A few attempts to find a fresh endpoint; keep the edge otherwise.
      for (int tries = 0; tries < 16; ++tries) {
        const auto w = static_cast<NodeId>(rng.next_below(n));
        if (w == v || edges.count(canon(v, w)) != 0) continue;
        edges.erase(canon(v, old_w));
        edges.insert(canon(v, w));
        break;
      }
    }
  }
  return Graph::from_edges(n, std::vector<std::pair<NodeId, NodeId>>(edges.begin(), edges.end()));
}

Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m, std::uint64_t seed) {
  if (m == 0 || m >= n) throw std::invalid_argument("make_preferential_attachment: 1 <= m < n");
  Rng rng{derive_seed(seed, 0xba0aULL)};
  const std::uint32_t seed_nodes = m + 1;
  EdgeList edges;
  // Seed clique so every early node has degree >= m.
  for (NodeId a = 0; a < seed_nodes; ++a)
    for (NodeId b = a + 1; b < seed_nodes; ++b) edges.emplace_back(a, b);
  // Repeated-endpoints list: sampling a uniform entry is degree-biased.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * (static_cast<std::size_t>(n) * m + seed_nodes * seed_nodes));
  for (const auto& [a, b] : edges) {
    endpoints.push_back(a);
    endpoints.push_back(b);
  }
  std::set<std::pair<NodeId, NodeId>> present(edges.begin(), edges.end());
  for (NodeId v = seed_nodes; v < n; ++v) {
    std::set<NodeId> targets;
    int guard = 0;
    while (targets.size() < m && guard++ < 1000) {
      const NodeId t = endpoints[rng.next_below(endpoints.size())];
      if (t != v) targets.insert(t);
    }
    for (NodeId t : targets) {
      const auto e = std::pair<NodeId, NodeId>{std::min(v, t), std::max(v, t)};
      if (!present.insert(e).second) continue;
      edges.push_back(e);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_chord_graph(std::uint32_t n) {
  if (n < 4) throw std::invalid_argument("make_chord_graph: need n >= 4");
  // Emit successor + finger edges canonically, then sort/unique: same edge
  // set as the historical std::set build at a fraction of the cost.
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * (ceil_log2(n) + 1));
  auto add = [&edges](NodeId a, NodeId b) {
    if (a == b) return;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  };
  for (NodeId v = 0; v < n; ++v) {
    add(v, (v + 1) % n);  // successor
    for (std::uint64_t step = 2; step < n; step <<= 1) {
      add(v, static_cast<NodeId>((v + step) % n));  // fingers
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_edges(n, edges);
}

}  // namespace drrg
