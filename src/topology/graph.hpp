#pragma once
// Undirected graph abstraction for the sparse-network setting of §4.
//
// Two storage modes:
//   * explicit: CSR adjacency (offsets + flat neighbor array), built once
//     and immutable afterwards -- cache-friendly iteration for the
//     per-round neighbor scans of Local-DRR;
//   * implicit complete graph: the dense phases (§2-§3 assume every pair
//     can communicate) would need O(n^2) memory explicitly, so K_n is
//     represented by its size alone.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drrg {

using NodeId = std::uint32_t;

class Graph {
 public:
  /// Builds an explicit graph from an edge list (u, v) over n vertices.
  /// Self-loops and duplicate edges are rejected (throws std::invalid_argument).
  static Graph from_edges(std::uint32_t n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Implicit complete graph K_n.
  static Graph complete(std::uint32_t n);

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] bool is_complete() const noexcept { return complete_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept;

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept;

  /// Neighbors of v; valid only for explicit graphs (complete graphs would
  /// materialise n-1 entries -- callers special-case them).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept;

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Raw CSR views (explicit graphs; empty for implicit K_n).  The flat
  /// arrays back sim::Topology's allocation-free peer sampling.
  [[nodiscard]] std::span<const std::uint64_t> csr_offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const NodeId> csr_adjacency() const noexcept {
    return adjacency_;
  }

  /// True if every node can reach every other (BFS).
  [[nodiscard]] bool connected() const;

  /// Double-sweep BFS lower bound on the diameter (exact on trees and
  /// grids, a tight heuristic elsewhere).  1 for K_n; eccentricity within
  /// node 0's component on a disconnected graph.  Deterministic.
  [[nodiscard]] std::uint32_t pseudo_diameter() const;

  [[nodiscard]] std::uint32_t min_degree() const noexcept;
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Sum over nodes of 1/(deg+1): the Theorem 13 prediction for the number
  /// of Local-DRR trees.
  [[nodiscard]] double inverse_degree_plus_one_sum() const noexcept;

 private:
  Graph() = default;

  std::uint32_t n_ = 0;
  bool complete_ = false;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;       // sorted within each node's slice
};

}  // namespace drrg
