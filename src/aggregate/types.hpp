#pragma once
// Public result/configuration types of the DRR-gossip pipelines.

#include <cstdint>
#include <vector>

#include "drr/drr.hpp"
#include "rootgossip/gossip_ave.hpp"
#include "rootgossip/gossip_max.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

namespace drrg {

/// End-to-end configuration of a DRR-gossip run.  Defaults reproduce the
/// paper's parameters (probe budget log2(n) - 1, O(log n) gossip rounds).
struct DrrGossipConfig {
  DrrConfig drr;
  ConvergecastConfig convergecast;
  BroadcastConfig broadcast;
  GossipMaxConfig gossip_max;
  PushSumConfig push_sum;
  /// Whether to run the final value broadcast so every node (not just
  /// every root) ends with the aggregate.
  bool broadcast_result = true;
  /// Topology-aware Phase III on explicit substrates: (a) the root
  /// gossip's O(log n) round schedule is scaled by
  ///   max(1, phase3_diameter_multiplier * diameter / ceil(log2 n)),
  /// because neighbor-constrained sampling moves information O(1) grid
  /// distance per round, and (b) root gossip leaves each tree through a
  /// uniform random tree *member* (GossipMaxConfig::member_relay), so the
  /// G~ overlay inherits the substrate's tree-adjacency connectivity --
  /// without both, diameter-heavy substrates (grid, torus) finish with
  /// consensus = 0.  The complete topology (diameter 1) is bit-for-bit
  /// unaffected; 0 disables the whole adaptation (historical behavior,
  /// used by the pinned engine benchmarks for cross-PR comparability).
  double phase3_diameter_multiplier = 1.0;
};

/// Copy of `config` with every phase's RNG stream tag salted by `salt`.
/// Lets several full pipeline runs share one *root seed* -- and therefore
/// one crash set / fault timeline, which is a pure function of the root
/// seed -- while still drawing independent protocol randomness (the
/// quantile bisection and the histogram run their sub-queries this way).
[[nodiscard]] inline DrrGossipConfig with_stream_salt(DrrGossipConfig config,
                                                      std::uint64_t salt) {
  config.drr.stream_tag = derive_seed(config.drr.stream_tag, 0xd1ULL, salt);
  config.convergecast.stream_tag =
      derive_seed(config.convergecast.stream_tag, 0xd2ULL, salt);
  config.broadcast.stream_tag = derive_seed(config.broadcast.stream_tag, 0xd3ULL, salt);
  config.gossip_max.stream_tag =
      derive_seed(config.gossip_max.stream_tag, 0xd4ULL, salt);
  config.push_sum.stream_tag = derive_seed(config.push_sum.stream_tag, 0xd5ULL, salt);
  return config;
}

/// Per-phase message/round accounting of one pipeline run.
struct PhaseMetrics {
  sim::Counters drr;             ///< Phase I
  sim::Counters convergecast;    ///< Phase II (up)
  sim::Counters root_broadcast;  ///< Phase II (down, root addresses)
  sim::Counters gossip;          ///< Phase III (gossip-max / election + push-sum)
  sim::Counters spread;          ///< Phase III (data-spread, Ave-family only)
  sim::Counters value_broadcast; ///< final dissemination

  [[nodiscard]] sim::Counters total() const noexcept {
    sim::Counters t;
    t += drr;
    t += convergecast;
    t += root_broadcast;
    t += gossip;
    t += spread;
    t += value_broadcast;
    return t;
  }
};

/// Shape of the Phase I forest (the Theorem 2/3 observables).
struct ForestSummary {
  std::uint32_t num_trees = 0;
  std::uint32_t max_tree_size = 0;
  std::uint32_t max_tree_height = 0;
  NodeId largest_tree_root = kNoParent;
};

struct AggregateOutcome {
  /// The computed aggregate (consensus value held by the roots).
  double value = 0.0;
  /// Value each node ended with after the final broadcast (empty when
  /// broadcast_result is false).  Crashed nodes keep 0.
  std::vector<double> per_node;
  /// Mask of nodes that participated (alive nodes).
  std::vector<bool> participating;
  /// True iff every participating root (and node, after broadcast) agrees
  /// on `value`.
  bool consensus = false;
  ForestSummary forest;
  PhaseMetrics metrics;
  /// Sum of rounds across all phases (the paper's time complexity).
  std::uint32_t rounds_total = 0;
};

}  // namespace drrg
