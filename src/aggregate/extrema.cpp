#include "aggregate/extrema.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "drr/drr.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"

namespace drrg {

namespace {

using MinVec = std::vector<double>;

void absorb_min(MinVec& into, const MinVec& from) {
  for (std::size_t j = 0; j < into.size(); ++j) into[j] = std::min(into[j], from[j]);
}

// ---------------------------------------------------------------------------
// Vector convergecast-min (Phase II for the min-vectors).

struct VecMsg {
  enum class Kind : std::uint8_t { kValue, kAck, kGossip, kInquiry, kReply };
  Kind kind;
  MinVec vec;                         // kValue/kGossip/kReply payload
  sim::NodeId origin = sim::kNoNode;  // kInquiry
};

struct VecConvergecast {
  VecConvergecast(const Forest& f, std::vector<MinVec>& state_, std::uint32_t bits)
      : forest(f), state(state_), vec_bits(bits) {
    pending_children.assign(f.size(), 0);
    sent_up.assign(f.size(), false);
    for (NodeId v = 0; v < f.size(); ++v) {
      if (!f.is_member(v)) continue;
      pending_children[v] = static_cast<std::uint32_t>(f.children(v).size());
      if (!f.is_root(v)) ++unfinished;
    }
  }

  const Forest& forest;
  std::vector<MinVec>& state;
  std::uint32_t vec_bits;
  std::vector<std::uint32_t> pending_children;
  std::vector<bool> sent_up;
  std::uint32_t unfinished = 0;

  void on_round(sim::Network<VecMsg>& net, sim::NodeId v) {
    if (!forest.is_member(v) || forest.is_root(v)) return;
    if (sent_up[v] || pending_children[v] > 0) return;
    net.send(v, forest.parent(v), VecMsg{VecMsg::Kind::kValue, state[v], sim::kNoNode},
             vec_bits);
  }

  void on_message(sim::Network<VecMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const VecMsg& m) {
    if (m.kind != VecMsg::Kind::kValue) return;
    absorb_min(state[dst], m.vec);
    --pending_children[dst];
    net.reply(dst, src, VecMsg{VecMsg::Kind::kAck, {}, sim::kNoNode}, 1);
  }

  void on_reply(sim::Network<VecMsg>&, sim::NodeId, sim::NodeId dst, const VecMsg& m) {
    if (m.kind != VecMsg::Kind::kAck || sent_up[dst]) return;
    sent_up[dst] = true;
    --unfinished;
  }

  [[nodiscard]] bool done(const sim::Network<VecMsg>&) const { return unfinished == 0; }
};

// ---------------------------------------------------------------------------
// Vector root gossip (Phase III): gossip procedure + sampling, min-absorb.

struct VecGossip {
  VecGossip(const Forest& f, std::vector<MinVec>& state_, std::uint32_t bits,
            std::uint32_t gossip_rounds_, std::uint32_t sampling_rounds_)
      : forest(f), state(state_), vec_bits(bits), gossip_rounds(gossip_rounds_),
        sampling_rounds(sampling_rounds_) {}

  const Forest& forest;
  std::vector<MinVec>& state;
  std::uint32_t vec_bits;
  std::uint32_t gossip_rounds;
  std::uint32_t sampling_rounds;
  std::uint32_t drain = 4;

  [[nodiscard]] std::uint32_t total_rounds() const {
    return gossip_rounds + drain + sampling_rounds + drain;
  }

  void on_round(sim::Network<VecMsg>& net, sim::NodeId v) {
    if (!forest.is_root(v)) return;
    const std::uint32_t r = net.round();
    if (r < gossip_rounds) {
      net.send(v, net.sample_peer(v), VecMsg{VecMsg::Kind::kGossip, state[v], sim::kNoNode},
               vec_bits);
    } else if (r >= gossip_rounds + drain &&
               r < gossip_rounds + drain + sampling_rounds) {
      net.send(v, net.sample_peer(v), VecMsg{VecMsg::Kind::kInquiry, {}, v}, vec_bits);
    }
  }

  void on_message(sim::Network<VecMsg>& net, sim::NodeId, sim::NodeId dst, const VecMsg& m) {
    if (!forest.is_root(dst)) {
      net.send(dst, forest.root_of(dst), m, vec_bits);  // forward (2nd hop)
      return;
    }
    switch (m.kind) {
      case VecMsg::Kind::kGossip:
      case VecMsg::Kind::kReply:
        absorb_min(state[dst], m.vec);
        break;
      case VecMsg::Kind::kInquiry:
        net.send(dst, m.origin, VecMsg{VecMsg::Kind::kReply, state[dst], sim::kNoNode},
                 vec_bits);
        break;
      default:
        break;
    }
  }
};

// ---------------------------------------------------------------------------
// Shared driver: draw exponentials, run the three phases, estimate.

ExtremaOutcome run_extrema(std::uint32_t n, std::span<const double> rates,
                           std::uint64_t seed, const sim::Scenario& scenario,
                           ExtremaConfig config) {
  RngFactory rngs{seed};
  const DrrResult drr = run_drr(n, rngs, scenario, {});
  const Forest& forest = drr.forest;

  const std::uint32_t k =
      config.k != 0 ? config.k : 4 * std::max<std::uint32_t>(2, ceil_log2(n));
  const std::uint32_t vec_bits = k * 64 + address_bits(n);

  // Per-node exponential draws: w ~ Exp(rate) = -ln(U)/rate.
  std::vector<MinVec> state(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!forest.is_member(v)) continue;
    if (!(rates[v] > 0.0))
      throw std::invalid_argument("extrema propagation requires positive values");
    Rng draw = rngs.node_stream(v, 0xe87e);
    state[v].resize(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      const double u = std::max(draw.next_unit(), 1e-300);
      state[v][j] = -std::log(u) / rates[v];
    }
  }

  ExtremaOutcome out;
  out.k = k;
  out.predicted_rse = k > 2 ? 1.0 / std::sqrt(static_cast<double>(k - 2)) : 1.0;
  out.counters = drr.counters;
  out.rounds_total = drr.rounds;

  // Phase II: componentwise-min convergecast.  Each phase's Network
  // resumes the scenario's global clock where the previous one stopped,
  // so one churn schedule spans all three phases.
  {
    sim::Network<VecMsg> net{n, rngs,
                             scenario.at_round(scenario.start_round + out.rounds_total),
                             0xecc};
    VecConvergecast cc{forest, state, vec_bits};
    const std::uint32_t rounds = net.run(cc, 8 * (forest.max_tree_height() + 2) + 64);
    out.counters += net.counters();
    out.rounds_total += rounds;
  }

  // Phase III: vector gossip among the roots.
  {
    sim::Network<VecMsg> net{n, rngs,
                             scenario.at_round(scenario.start_round + out.rounds_total),
                             0xe90};
    const auto G = static_cast<std::uint32_t>(config.gossip.gossip_multiplier *
                                              static_cast<double>(ceil_log2(n)));
    const auto S = static_cast<std::uint32_t>(config.gossip.sampling_multiplier *
                                              static_cast<double>(ceil_log2(n)));
    VecGossip gossip{forest, state, vec_bits, G, S};
    for (std::uint32_t r = 0; r < gossip.total_rounds(); ++r) net.step(gossip);
    out.counters += net.counters();
    out.rounds_total += gossip.total_rounds();
  }

  // Estimate at every root; consensus iff all share the global min vector.
  const NodeId z = forest.largest_tree_root();
  double sum_min = 0.0;
  for (double m : state[z]) sum_min += m;
  out.estimate = sum_min > 0.0 ? static_cast<double>(k - 1) / sum_min : 0.0;
  out.consensus = true;
  for (NodeId r : forest.roots())
    if (state[r] != state[z]) out.consensus = false;
  return out;
}

}  // namespace

ExtremaOutcome drr_gossip_count_extrema(std::uint32_t n, std::uint64_t seed,
                                        const sim::Scenario& scenario, ExtremaConfig config) {
  std::vector<double> ones(n, 1.0);
  return run_extrema(n, ones, seed, scenario, config);
}

ExtremaOutcome drr_gossip_sum_extrema(std::uint32_t n, std::span<const double> values,
                                      std::uint64_t seed, const sim::Scenario& scenario,
                                      ExtremaConfig config) {
  if (values.size() < n) throw std::invalid_argument("extrema sum: values too short");
  return run_extrema(n, values, seed, scenario, config);
}

}  // namespace drrg
