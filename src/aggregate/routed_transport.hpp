#pragma once
// Hop-accurate message transport for Phase III on sparse networks (§4).
//
// On a sparse overlay a root cannot call a random node directly: the call
// is *routed* (Assumption 2 -- here, Chord greedy routing), and the
// receiving node forwards the message up its ranking tree to its root.
// This transport models exactly that: every logical G~ send is expanded
// into its overlay hop count (routing hops + tree depth of the landing
// node), one round and one message per hop, with independent per-hop loss.
// Deliveries are replayed to the caller round by round, so the driving
// loop observes the same latency the hop-by-hop execution would.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "chord/chord.hpp"
#include "forest/forest.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"
#include "support/rng.hpp"

namespace drrg {

template <class Payload>
class RoutedTransport {
 public:
  RoutedTransport(const ChordOverlay& chord, const Forest& forest, double loss_prob,
                  Rng loss_rng, std::uint32_t bits_per_message)
      : chord_(chord),
        forest_(forest),
        loss_(loss_prob),
        loss_rng_(loss_rng),
        bits_(bits_per_message) {}

  /// Root `src` calls a near-uniform random node (Assumption 2 sampling),
  /// which forwards to its own root.  The payload arrives at that root
  /// after (routing + tree-depth) rounds unless a hop loses it.
  void send_to_random_root(NodeId src, Payload payload, std::uint32_t now, Rng& rng) {
    std::uint32_t hops = 0;
    const NodeId landing = chord_.sample_near_uniform(src, rng, &hops);
    if (!forest_.is_member(landing)) {
      // Crashed landing node: the last routing hop is lost.
      charge_hops(hops);
      return;
    }
    hops += forest_.depth(landing);  // tree walk up to the landing node's root
    schedule(forest_.root_of(landing), std::move(payload), now, hops);
  }

  /// Directed send to a known root's ring position (used by the sampling
  /// procedure's replies -- the non-address-oblivious step).
  void send_to_root_direct(NodeId src, NodeId dst_root, Payload payload,
                           std::uint32_t now) {
    const std::uint32_t hops = chord_.route_hops(src, chord_.id_of(dst_root));
    schedule(dst_root, std::move(payload), now, hops);
  }

  /// Deliveries due at round t (call with ascending t).
  [[nodiscard]] std::vector<std::pair<NodeId, Payload>> collect(std::uint32_t t) {
    auto it = pending_.find(t);
    if (it == pending_.end()) return {};
    auto out = std::move(it->second);
    pending_.erase(it);
    return out;
  }

  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }

  [[nodiscard]] sim::Counters& counters() noexcept { return counters_; }

 private:
  void charge_hops(std::uint32_t hops) {
    counters_.sent += hops;
    counters_.bits += static_cast<std::uint64_t>(hops) * bits_;
  }

  void schedule(NodeId dst, Payload payload, std::uint32_t now, std::uint32_t hops) {
    // Hop-by-hop: each hop is one message in one round; a lost hop kills
    // the whole delivery (no end-to-end retransmit in Phase III -- the
    // gossip process itself provides the redundancy).
    for (std::uint32_t h = 0; h < hops; ++h) {
      counters_.sent += 1;
      counters_.bits += bits_;
      if (loss_rng_.next_bernoulli(loss_)) {
        counters_.lost += 1;
        return;
      }
    }
    counters_.delivered += 1;
    const std::uint32_t latency = hops == 0 ? 1 : hops;  // self-delivery: next round
    pending_[now + latency].push_back({dst, std::move(payload)});
  }

  const ChordOverlay& chord_;
  const Forest& forest_;
  double loss_;
  Rng loss_rng_;
  std::uint32_t bits_;
  sim::Counters counters_{};
  std::map<std::uint32_t, std::vector<std::pair<NodeId, Payload>>> pending_;
};

}  // namespace drrg
