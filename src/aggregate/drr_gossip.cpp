#include "aggregate/drr_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rootgossip/ordered_key.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/scratch.hpp"

namespace drrg {

namespace {

constexpr double kAgreeTolerance = 1e-9;  // relative, consensus checks

// Pooled payload-staging slots (support/scratch.hpp); tags 10+ keep these
// disjoint from the sparse pipeline's slots.  Contents are fully rewritten
// by assign() before every use.
enum ScratchTag : int {
  kScratchAddrPayload = 10,
  kScratchValuePayload,
  kScratchWork,
  kScratchKeys,
  kScratchRootValue,
  kScratchSizeKeys,
  kScratchNum0,
  kScratchDen0,
  kScratchSpreadInit,
  kScratchDerivedValues,
};

/// Phase III round-budget scale for the scenario's substrate: 1.0 on the
/// complete topology and on overlays whose diameter is within the O(log n)
/// schedule, diameter/log-proportional beyond that (the grid/torus fix).
/// Event-time latency stretches every mixing generation by the expected
/// call delay, so the budget is additionally scaled by 1 + E[delay] to
/// keep the number of *completed* generations -- a factor of exactly 1
/// under the zero model, leaving historical schedules untouched.
double phase3_scale(std::uint32_t n, const sim::Scenario& scenario,
                    const DrrGossipConfig& config) {
  const double latency_scale = 1.0 + scenario.faults.latency.mean();
  if (config.phase3_diameter_multiplier <= 0.0 || scenario.topology.is_complete())
    return latency_scale;
  const double diameter = scenario.topology.diameter();
  const double budget = static_cast<double>(ceil_log2(n));
  return latency_scale *
         std::max(1.0, config.phase3_diameter_multiplier * diameter / budget);
}

struct Phase12 {
  DrrResult drr;
  ConvergecastResult cc;
  BroadcastResult addr;
  std::uint32_t end_round = 0;  ///< global clock after Phase II
};

/// Phases I and II shared by all pipelines.  Each phase's Network starts
/// where the previous one stopped on the scenario's global clock, so one
/// churn schedule spans the whole pipeline.
Phase12 run_phase12(std::uint32_t n, std::span<const double> values,
                    ConvergecastOp op, const RngFactory& rngs,
                    const sim::Scenario& scenario, const DrrGossipConfig& config) {
  Phase12 p;
  std::uint32_t clock = scenario.start_round;
  p.drr = run_drr(n, rngs, scenario, config.drr);
  clock += p.drr.rounds;
  p.cc = run_convergecast(p.drr.forest, values, op, rngs, scenario.at_round(clock),
                          config.convergecast);
  clock += p.cc.rounds;
  // Root-address broadcast: after it, every tree member can forward Phase
  // III traffic to its root.  (Protocol-level forwarding reads the forest
  // structure, which this acknowledged broadcast provably distributed --
  // see DESIGN.md.)
  std::vector<double>& addr_payload =
      support::scratch_buffer<double, kScratchAddrPayload>();
  addr_payload.assign(n, 0.0);
  for (NodeId r : p.drr.forest.roots()) addr_payload[r] = static_cast<double>(r);
  BroadcastConfig addr_cfg = config.broadcast;
  addr_cfg.stream_tag = derive_seed(addr_cfg.stream_tag, 1);
  p.addr = run_broadcast(p.drr.forest, addr_payload, rngs, scenario.at_round(clock),
                         addr_cfg);
  p.end_round = clock + p.addr.rounds;
  return p;
}

/// Restricts the participating mask to the schedule's final survivors:
/// Phase I membership captures who was alive at the start, but under
/// churn a member crashed at round r must not be reported as
/// participating in the final result.
void apply_final_survivors(std::uint32_t n, const RngFactory& rngs,
                           const sim::Scenario& scenario, AggregateOutcome& out) {
  if (!scenario.faults.has_churn() && !scenario.faults.has_blocks() &&
      !scenario.faults.has_joins())
    return;
  const auto survivors = sim::survivor_mask(n, rngs, scenario.faults,
                                            scenario.start_round + out.rounds_total);
  for (std::uint32_t v = 0; v < n; ++v)
    out.participating[v] = out.participating[v] && survivors[v];
}

void fill_forest_summary(const Forest& f, AggregateOutcome& out) {
  out.forest.num_trees = f.num_trees();
  out.forest.max_tree_size = f.max_tree_size();
  out.forest.max_tree_height = f.max_tree_height();
  out.forest.largest_tree_root = f.largest_tree_root();
  out.participating.assign(f.size(), false);
  for (NodeId v = 0; v < f.size(); ++v) out.participating[v] = f.is_member(v);
}

/// Final value broadcast + consensus bookkeeping shared by all pipelines.
void finish(const Forest& forest, std::span<const double> root_value,
            const RngFactory& rngs, const sim::Scenario& scenario,
            const DrrGossipConfig& config, AggregateOutcome& out) {
  // Roots agree iff all root values coincide (within rounding).
  out.consensus = true;
  const double ref = root_value[forest.roots().front()];
  for (NodeId r : forest.roots()) {
    const double scale = std::max({std::fabs(ref), std::fabs(root_value[r]), 1.0});
    if (std::fabs(root_value[r] - ref) > kAgreeTolerance * scale) {
      out.consensus = false;
      break;
    }
  }
  out.value = root_value[out.forest.largest_tree_root];

  if (config.broadcast_result) {
    BroadcastConfig value_cfg = config.broadcast;
    value_cfg.stream_tag = derive_seed(value_cfg.stream_tag, 2);
    std::vector<double>& payload =
        support::scratch_buffer<double, kScratchValuePayload>();
    payload.assign(root_value.begin(), root_value.end());
    const BroadcastResult bc = run_broadcast(
        forest, payload, rngs,
        scenario.at_round(scenario.start_round + out.rounds_total), value_cfg);
    out.metrics.value_broadcast = bc.counters;
    out.rounds_total += bc.rounds;
    out.per_node = bc.received;
    if (!bc.complete) out.consensus = false;
  }
}

/// Shared Max skeleton; `negate` turns it into Min.
AggregateOutcome max_pipeline(std::uint32_t n, std::span<const double> values,
                              std::uint64_t seed, const sim::Scenario& scenario,
                              const DrrGossipConfig& config, bool negate) {
  if (values.size() < n) throw std::invalid_argument("drr_gossip: values too short");
  RngFactory rngs{seed};
  std::vector<double>& work = support::scratch_buffer<double, kScratchWork>();
  work.assign(values.begin(), values.begin() + n);
  if (negate)
    for (double& v : work) v = -v;

  Phase12 p = run_phase12(n, work, ConvergecastOp::kMax, rngs, scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_forest_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;

  // Phase III: gossip the per-tree maxima among the roots.
  std::vector<std::uint64_t>& keys =
      support::scratch_buffer<std::uint64_t, kScratchKeys>();
  keys.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) keys[r] = encode_ordered(p.cc.aggregate[r]);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 3);
  gm_cfg.round_budget_scale *= phase3_scale(n, scenario, config);
  gm_cfg.member_relay &= config.phase3_diameter_multiplier > 0.0;
  const GossipMaxResult gm =
      run_gossip_max(forest, keys, rngs, scenario.at_round(p.end_round), gm_cfg);
  out.metrics.gossip = gm.counters;
  out.rounds_total += gm.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots()) {
    root_value[r] = decode_ordered(gm.key[r]);
    if (negate) root_value[r] = -root_value[r];
  }
  finish(forest, root_value, rngs, scenario, config, out);
  apply_final_survivors(n, rngs, scenario, out);
  return out;
}

/// Shared Ave/Sum/Count skeleton (Algorithm 8).  In `sum_mode` the push-sum
/// denominator is the indicator of the elected root z, so the limit is the
/// global sum of the numerators instead of the average of the values.
AggregateOutcome ave_pipeline(std::uint32_t n, std::span<const double> values,
                              std::uint64_t seed, const sim::Scenario& scenario,
                              const DrrGossipConfig& config, bool sum_mode) {
  if (values.size() < n) throw std::invalid_argument("drr_gossip: values too short");
  RngFactory rngs{seed};

  Phase12 p = run_phase12(n, values, ConvergecastOp::kSum, rngs, scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_forest_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;

  // Phase III(a): Gossip-max on (tree size, id) keys elects the root of
  // the largest tree; each root then *locally* knows whether it is z.
  std::vector<std::uint64_t>& size_keys =
      support::scratch_buffer<std::uint64_t, kScratchSizeKeys>();
  size_keys.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) {
    // Tree sizes here come from Convergecast-sum (covsum(*, 2)), exactly
    // as Algorithm 8 prescribes -- not from global forest knowledge.
    size_keys[r] = encode_size_id(static_cast<std::uint32_t>(p.cc.weight[r]), r);
  }
  const double budget_scale = phase3_scale(n, scenario, config);
  const bool topology_adapt = config.phase3_diameter_multiplier > 0.0;
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 4);
  gm_cfg.round_budget_scale *= budget_scale;
  gm_cfg.member_relay &= topology_adapt;
  const GossipMaxResult election =
      run_gossip_max(forest, size_keys, rngs, scenario.at_round(p.end_round), gm_cfg);

  sim::Counters gossip_counters = election.counters;
  std::uint32_t gossip_rounds = election.rounds;

  // Phase III(b): push-sum on (local sum, tree size) -- or, for Sum/Count,
  // (local sum, indicator of believing to be z).
  std::vector<double>& num0 = support::scratch_buffer<double, kScratchNum0>();
  std::vector<double>& den0 = support::scratch_buffer<double, kScratchDen0>();
  num0.assign(n, 0.0);
  den0.assign(n, 0.0);
  for (NodeId r : forest.roots()) {
    num0[r] = p.cc.aggregate[r];
    if (sum_mode) {
      den0[r] = (election.key[r] == size_keys[r]) ? 1.0 : 0.0;
    } else {
      den0[r] = p.cc.weight[r];
    }
  }
  PushSumConfig ps_cfg = config.push_sum;
  ps_cfg.stream_tag = derive_seed(ps_cfg.stream_tag, 5);
  ps_cfg.round_budget_scale *= budget_scale;
  ps_cfg.member_relay &= topology_adapt;
  const PushSumResult ps = run_root_push_sum(
      forest, num0, den0, rngs, scenario.at_round(p.end_round + election.rounds), ps_cfg);
  gossip_counters += ps.counters;
  gossip_rounds += ps.rounds;
  out.metrics.gossip = gossip_counters;
  out.rounds_total += gossip_rounds;

  // Phase III(c): data-spread from every root that believes it is z (whp
  // exactly one).  The spread key carries that root's estimate.
  std::vector<std::uint64_t>& spread_init =
      support::scratch_buffer<std::uint64_t, kScratchSpreadInit>();
  spread_init.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) {
    if (election.key[r] == size_keys[r] && ps.den[r] > 0.0)
      spread_init[r] = encode_ordered(ps.num[r] / ps.den[r]);
  }
  GossipMaxConfig spread_cfg = config.gossip_max;
  spread_cfg.stream_tag = derive_seed(spread_cfg.stream_tag, 6);
  spread_cfg.round_budget_scale *= budget_scale;
  spread_cfg.member_relay &= topology_adapt;
  const GossipMaxResult spread = run_gossip_max(
      forest, spread_init, rngs,
      scenario.at_round(p.end_round + gossip_rounds), spread_cfg);
  out.metrics.spread = spread.counters;
  out.rounds_total += spread.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots())
    root_value[r] = spread.key[r] == kKeyBottom ? 0.0 : decode_ordered(spread.key[r]);
  finish(forest, root_value, rngs, scenario, config, out);
  apply_final_survivors(n, rngs, scenario, out);
  return out;
}

}  // namespace

AggregateOutcome drr_gossip_max(std::uint32_t n, std::span<const double> values,
                                std::uint64_t seed, const sim::Scenario& scenario,
                                const DrrGossipConfig& config) {
  return max_pipeline(n, values, seed, scenario, config, /*negate=*/false);
}

AggregateOutcome drr_gossip_min(std::uint32_t n, std::span<const double> values,
                                std::uint64_t seed, const sim::Scenario& scenario,
                                const DrrGossipConfig& config) {
  return max_pipeline(n, values, seed, scenario, config, /*negate=*/true);
}

AggregateOutcome drr_gossip_ave(std::uint32_t n, std::span<const double> values,
                                std::uint64_t seed, const sim::Scenario& scenario,
                                const DrrGossipConfig& config) {
  return ave_pipeline(n, values, seed, scenario, config, /*sum_mode=*/false);
}

AggregateOutcome drr_gossip_sum(std::uint32_t n, std::span<const double> values,
                                std::uint64_t seed, const sim::Scenario& scenario,
                                const DrrGossipConfig& config) {
  return ave_pipeline(n, values, seed, scenario, config, /*sum_mode=*/true);
}

AggregateOutcome drr_gossip_count(std::uint32_t n, std::uint64_t seed,
                                  const sim::Scenario& scenario, const DrrGossipConfig& config) {
  std::vector<double>& ones = support::scratch_buffer<double, kScratchDerivedValues>();
  ones.assign(n, 1.0);
  return ave_pipeline(n, ones, seed, scenario, config, /*sum_mode=*/true);
}

AggregateOutcome drr_gossip_rank(std::uint32_t n, std::span<const double> values,
                                 double x, std::uint64_t seed, const sim::Scenario& scenario,
                                 const DrrGossipConfig& config) {
  if (values.size() < n) throw std::invalid_argument("drr_gossip_rank: values too short");
  std::vector<double>& indicator =
      support::scratch_buffer<double, kScratchDerivedValues>();
  indicator.assign(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) indicator[v] = values[v] < x ? 1.0 : 0.0;
  return ave_pipeline(n, indicator, seed, scenario, config, /*sum_mode=*/true);
}

}  // namespace drrg
