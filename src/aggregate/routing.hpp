#pragma once
// Hop-by-hop substrate routing for the §4 sparse pipeline's Phase III.
//
// On a sparse substrate a root cannot call a random node directly: the
// call is *routed* (Assumption 2), and every logical G~ edge expands into
// real overlay hops.  This header gives the Phase III protocols the two
// verbs that expansion needs, with the per-message routing state kept as a
// small POD that travels inside the engine envelope -- so mid-run churn,
// per-hop loss and the round clock of sim::Network apply to every
// intermediate hop, exactly as they do for chord-uniform:
//
//   * begin_random(src)    -- start an Assumption-2 near-uniform sample;
//   * begin_directed(dst)  -- start a route to a specific known node (the
//                             non-address-oblivious reply step);
//   * next_hop(at, state)  -- advance one overlay hop; `at` unchanged
//                             means the route has arrived.
//
// Three samplers cover the substrate families:
//
//   * Chord overlay: greedy finger routing of a uniformly random key,
//     then a successor smear of j in [0, S) steps (the King et al. [10]
//     substitute documented in chord.hpp) -- O(log n) hops, near-uniform;
//   * grid / torus: row-then-column coordinate routing to an *exactly*
//     uniform random node id (torus wraps pick the shorter direction) --
//     O(diam) hops;
//   * everything else (random-regular, chord-ring-as-graph, ...): a
//     random walk of Theta(log n) steps; on the expander-like substrates
//     this family serves, the walk mixes to near-uniform.
//
// Directed routes exist for Chord (route to the target's ring id) and
// grids (route to the target's coordinates).  Walk substrates have no
// keyed routing scheme, so begin_directed degenerates to a single
// point-to-point send -- the established-connection convention the engine
// already uses for Algorithm 4's "reply directly to the inquiring root"
// (see sim/topology.hpp).

#include <cstdint>

#include "chord/chord.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg {

/// Liveness oracle for fault-aware routing: Chord hops detour around
/// crashed fingers/successors, modelling the overlay's stabilization
/// (each node pings its neighbors and repairs its successor pointers --
/// the successor-list guarantee of Stoica et al. [25]).  A default view
/// treats everyone as alive.  The Phase III protocols wrap the engine's
/// alive set; the pair is cheaper than a std::function on the hop path.
struct LivenessView {
  const void* ctx = nullptr;
  bool (*fn)(const void*, NodeId) = nullptr;
  [[nodiscard]] bool operator()(NodeId v) const {
    return fn == nullptr || fn(ctx, v);
  }
};

/// Per-message routing state (24 bytes, POD).  In the Chord modes `owner`
/// caches the key's *static* owner, resolved once at begin_* time:
/// owner_of_key is a pure function of the overlay, so hoisting its binary
/// search off the per-hop path is observationally invisible (the
/// stabilized liveness walk starts from the same static owner it always
/// did).  In kGrid the same two spare fields drive the perimeter detour:
/// `owner` holds the previous carrier (backtrack avoidance) and `steps` a
/// hop TTL -- both ignored by the crash-free fast hop, so setting them at
/// begin_* time is equally invisible.  The engine charges message size
/// through the explicit `bits` argument of send(), never sizeof, so the
/// wider state leaves every counter untouched.
struct RouteState {
  enum class Mode : std::uint8_t {
    kDone,        ///< arrived: the current holder is the route's endpoint
    kChordRoute,  ///< greedy finger routing toward `target` (a ring key)
    kChordSmear,  ///< successor walk, `steps` left
    kGrid,        ///< coordinate routing toward node id `target`
    kWalk,        ///< random walk, `steps` left
    kStranded,    ///< gave up en route (dead target / boxed in / TTL out):
                  ///< the holder is NOT the endpoint -- drop, or re-home
                  ///< under the push-sum carry-ack
  };
  std::uint64_t target = 0;
  std::uint32_t steps = 0;
  NodeId owner = 0;  ///< static key owner (kChord*) / previous carrier (kGrid)
  Mode mode = Mode::kDone;
};

class SparseRouter {
 public:
  /// Routes on a Chord overlay (the chord-drr family).
  [[nodiscard]] static SparseRouter on_chord(const ChordOverlay& chord);

  /// Routes on an explicit substrate: coordinate routing when the
  /// topology is a recorded lattice (Topology::of_grid), a Theta(log n)
  /// random walk otherwise.  The topology must be explicit.
  [[nodiscard]] static SparseRouter on_substrate(const sim::Topology& topology);

  /// Starts an Assumption-2 near-uniform sample from `src`, drawing the
  /// route's randomness (key + smear / target id / nothing) from `rng`.
  [[nodiscard]] RouteState begin_random(NodeId src, Rng& rng) const;

  /// Starts a route to the known node `dst`.  Mode kDone means the
  /// substrate has no keyed routing: deliver with one direct send.
  [[nodiscard]] RouteState begin_directed(NodeId dst) const;

  /// Advances the route one overlay hop from its current holder `at`;
  /// draws from `rng` (the holder's stream) only in kWalk mode.  Chord
  /// hops consult `alive` and detour around crashed nodes (stabilized
  /// overlay); lattice hops sidestep a dead static hop greedily around
  /// the obstacle's perimeter (see next_hop_live); walk hops are static
  /// -- a dead carrier kills the delivery, exactly like any other lost
  /// hop.  Returns the next carrier, or `at` itself when the route has
  /// ended (the state is then kDone on arrival, kStranded on a give-up).
  [[nodiscard]] NodeId next_hop(NodeId at, RouteState& state, Rng& rng,
                                const LivenessView& alive = {}) const;

  /// Crash-free fast hop for the keyed modes (kChordRoute / kChordSmear /
  /// kGrid): no liveness oracle (the function-pointer detour logic is
  /// compiled out, not just short-circuited), Chord finger selection by
  /// binary search over the precomputed monotone finger-distance row, and
  /// flat successor loads.  Step-for-step identical to next_hop under an
  /// all-alive view -- the dispatch predicate is FaultSchedule::crash_free().
  /// Precondition: state.mode != kWalk (walks draw per-hop randomness and
  /// go through next_hop).
  [[nodiscard]] NodeId next_hop_fast(NodeId at, RouteState& state) const noexcept;

  /// Liveness-aware hop for the keyed modes: the stabilized-detour path of
  /// next_hop without the unused Rng parameter, so forwarding a chord/grid
  /// envelope does not touch the holder's RNG slot.  kGrid routes detour
  /// greedily around dead lattice nodes: when the static coordinate hop is
  /// dead, the remaining axial neighbors are tried in toward-target-first
  /// order (avoiding an immediate backtrack unless forced), under a hop
  /// TTL; a dead target, a boxed-in carrier or an exhausted TTL ends the
  /// route as kStranded at the current holder.  Precondition: state.mode
  /// != kWalk.
  [[nodiscard]] NodeId next_hop_live(NodeId at, RouteState& state,
                                     const LivenessView& alive) const;

  /// Generous upper bound on the hops of any single route this router can
  /// emit (drain horizons are sized from it).
  [[nodiscard]] std::uint32_t max_route_hops() const noexcept;

  /// Expected hops of a begin_random route (the pipeline's latency
  /// estimate: routed push-sum scales its initiation window by
  /// 1 + typical/log2 n so the delayed shares still complete the paper's
  /// O(log n) mixing generations).
  [[nodiscard]] std::uint32_t typical_route_hops() const noexcept;

 private:
  /// kGrid hop TTL: the detour budget a route may burn walking around
  /// dead regions before it gives up (kStranded).  Twice the worst static
  /// path plus slack.
  [[nodiscard]] std::uint32_t grid_ttl() const noexcept {
    return 2 * (rows_ + cols_) + 16;
  }

  const ChordOverlay* chord_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint32_t rows_ = 0, cols_ = 0;  // lattice layout (kGrid)
  bool torus_ = false;
  std::uint32_t walk_len_ = 0;  // kWalk length
  sim::Topology::PeerSampler sampler_{};
};

}  // namespace drrg
