#pragma once
// DRR-gossip (Algorithms 7 and 8): the paper's headline protocols.
//
// Given a value at each of n nodes (random phone call model, complete
// communication graph), computes a global aggregate at every node in
// O(log n) rounds and O(n log log n) messages:
//
//   Phase I    DRR             -> forest of O(n/log n) trees of size O(log n)
//   Phase II   Convergecast    -> local aggregate at each root
//              Broadcast       -> every node learns its root's address
//   Phase III  Gossip-max      -> global extreme at all roots (Alg 7), or
//              Gossip-max on tree sizes (elect z) + Gossip-ave + Data-spread
//                              -> global average at all roots (Alg 8)
//   Finally    Broadcast       -> every node learns the aggregate
//
// The Sum/Count/Rank variants use the push-sum machinery with the
// denominator concentrated on the elected root z, making the common
// push-sum limit sum(num)/1.
//
// Every function is deterministic in (n, seed, scenario, config) and returns
// full per-phase metrics for the complexity benches.

#include <cstdint>
#include <span>

#include "aggregate/types.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"

namespace drrg {

/// Maximum of values[v] over alive nodes (Algorithm 7).
[[nodiscard]] AggregateOutcome drr_gossip_max(std::uint32_t n,
                                              std::span<const double> values,
                                              std::uint64_t seed,
                                              const sim::Scenario& scenario = {},
                                              const DrrGossipConfig& config = {});

/// Minimum (Algorithm 7 on negated values).
[[nodiscard]] AggregateOutcome drr_gossip_min(std::uint32_t n,
                                              std::span<const double> values,
                                              std::uint64_t seed,
                                              const sim::Scenario& scenario = {},
                                              const DrrGossipConfig& config = {});

/// Average (Algorithm 8).
[[nodiscard]] AggregateOutcome drr_gossip_ave(std::uint32_t n,
                                              std::span<const double> values,
                                              std::uint64_t seed,
                                              const sim::Scenario& scenario = {},
                                              const DrrGossipConfig& config = {});

/// Sum over alive nodes (push-sum with the denominator at z).
[[nodiscard]] AggregateOutcome drr_gossip_sum(std::uint32_t n,
                                              std::span<const double> values,
                                              std::uint64_t seed,
                                              const sim::Scenario& scenario = {},
                                              const DrrGossipConfig& config = {});

/// Number of alive nodes (Sum of all-ones).
[[nodiscard]] AggregateOutcome drr_gossip_count(std::uint32_t n, std::uint64_t seed,
                                                const sim::Scenario& scenario = {},
                                                const DrrGossipConfig& config = {});

/// Rank of `x`: |{ alive v : values[v] < x }| (Sum of indicators).
[[nodiscard]] AggregateOutcome drr_gossip_rank(std::uint32_t n,
                                               std::span<const double> values, double x,
                                               std::uint64_t seed,
                                               const sim::Scenario& scenario = {},
                                               const DrrGossipConfig& config = {});

}  // namespace drrg
