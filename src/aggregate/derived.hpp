#pragma once
// Derived aggregates on top of the DRR-gossip primitives: the long tail
// of "common aggregates" the paper's abstract alludes to, each reduced to
// Max/Min/Sum/Rank runs.
//
//   * Any / All     -- Max / Min over {0,1} indicators;
//   * leader election -- Max over (node id) keys: every node learns the
//     same surviving node id in O(log n) rounds / O(n log log n) messages
//     (a standard DRR-technique corollary: the §6 "other distributed
//     computing problems" direction);
//   * histogram     -- bucket counts via one Rank query per bucket edge.

#include <cstdint>
#include <span>
#include <vector>

#include "aggregate/drr_gossip.hpp"

namespace drrg {

struct BoolOutcome {
  bool value = false;
  AggregateOutcome detail;
};

/// True iff any participating node's flag is set.
[[nodiscard]] BoolOutcome drr_gossip_any(std::uint32_t n, const std::vector<bool>& flags,
                                         std::uint64_t seed, const sim::Scenario& scenario = {},
                                         const DrrGossipConfig& config = {});

/// True iff every participating node's flag is set.
[[nodiscard]] BoolOutcome drr_gossip_all(std::uint32_t n, const std::vector<bool>& flags,
                                         std::uint64_t seed, const sim::Scenario& scenario = {},
                                         const DrrGossipConfig& config = {});

struct LeaderOutcome {
  NodeId leader = kNoParent;
  AggregateOutcome detail;
};

/// Elects the participating node with the largest id; all nodes agree on
/// it whp (gossip-max consensus, Theorem 6).
[[nodiscard]] LeaderOutcome drr_gossip_elect_leader(std::uint32_t n, std::uint64_t seed,
                                                    const sim::Scenario& scenario = {},
                                                    const DrrGossipConfig& config = {});

struct HistogramOutcome {
  /// counts[i] = #nodes with edges[i] <= value < edges[i+1].
  std::vector<double> counts;
  sim::Counters total;  ///< cost across all Rank pipeline runs
  std::uint32_t pipeline_runs = 0;
};

/// Distributed histogram over `edges.size() - 1` buckets: one Rank run
/// per interior edge (edges must be strictly increasing, >= 2 entries).
/// The per-edge rank queries are independent (one shared crash set, per
/// query salted streams) and fan onto the deterministic executor:
/// `threads` is purely a wall-clock knob (1 = inline, 0 = all hardware
/// cores), bit-identical for any value.
[[nodiscard]] HistogramOutcome drr_gossip_histogram(std::uint32_t n,
                                                    std::span<const double> values,
                                                    std::span<const double> edges,
                                                    std::uint64_t seed,
                                                    const sim::Scenario& scenario = {},
                                                    const DrrGossipConfig& config = {},
                                                    unsigned threads = 1);

}  // namespace drrg
