#include "aggregate/routing.hpp"

#include <stdexcept>

#include "support/mathutil.hpp"

namespace drrg {

SparseRouter SparseRouter::on_chord(const ChordOverlay& chord) {
  SparseRouter r;
  r.chord_ = &chord;
  r.n_ = chord.size();
  return r;
}

SparseRouter SparseRouter::on_substrate(const sim::Topology& topology) {
  if (topology.is_complete())
    throw std::invalid_argument("SparseRouter: substrate topology must be explicit");
  SparseRouter r;
  r.n_ = topology.size();
  if (topology.is_grid()) {
    r.rows_ = topology.grid_rows();
    r.cols_ = topology.grid_cols();
    r.torus_ = topology.grid_torus();
  } else {
    // Walk length: on a constant-spectral-gap substrate the walk is within
    // O(1/n) of uniform after O(log n) steps; the factor 2 buys slack for
    // the moderately-expanding families without changing the O(log n) hop
    // bill Theorem 14 charges per G~ edge.
    r.walk_len_ = std::max<std::uint32_t>(8, 2 * ceil_log2(topology.size()));
    r.sampler_ = topology.sampler(topology.size());
  }
  return r;
}

RouteState SparseRouter::begin_random(NodeId src, Rng& rng) const {
  RouteState st;
  if (chord_ != nullptr) {
    st.mode = RouteState::Mode::kChordRoute;
    st.target = rng.next_below(chord_->ring_size());
    st.steps = static_cast<std::uint32_t>(rng.next_below(chord_->smear_width()));
    return st;
  }
  if (cols_ != 0) {
    st.mode = RouteState::Mode::kGrid;
    st.target = rng.next_below(n_);  // exactly uniform over V
    return st;
  }
  st.mode = RouteState::Mode::kWalk;
  st.steps = walk_len_;
  (void)src;
  return st;
}

RouteState SparseRouter::begin_directed(NodeId dst) const {
  RouteState st;
  if (chord_ != nullptr) {
    // Greedy routing on dst's own ring id lands exactly on dst.
    st.mode = RouteState::Mode::kChordRoute;
    st.target = chord_->id_of(dst);
    return st;
  }
  if (cols_ != 0) {
    st.mode = RouteState::Mode::kGrid;
    st.target = dst;
    return st;
  }
  return st;  // kDone: single point-to-point send
}

namespace {

/// (to - from) clockwise on a power-of-two ring.
[[nodiscard]] std::uint64_t ring_dist(std::uint64_t from, std::uint64_t to,
                                      std::uint64_t ring) noexcept {
  return (to - from) & (ring - 1);
}

/// First alive node clockwise after v (stabilized successor pointer).
[[nodiscard]] NodeId successor_live(const ChordOverlay& chord, NodeId v,
                                    const LivenessView& alive) {
  NodeId s = chord.successor(v);
  for (std::uint32_t guard = 0; guard < chord.size() && !alive(s); ++guard)
    s = chord.successor(s);
  return s;
}

/// The alive node owning `key` on the stabilized ring: the static owner,
/// or its first alive successor when the owner crashed.
[[nodiscard]] NodeId owner_live(const ChordOverlay& chord, std::uint64_t key,
                                const LivenessView& alive) {
  NodeId o = chord.owner_of_key(key);
  for (std::uint32_t guard = 0; guard < chord.size() && !alive(o); ++guard)
    o = chord.successor(o);
  return o;
}

/// Greedy Chord step on the stabilized overlay: the closest preceding
/// *alive* finger, else the alive successor chain.  Reduces to the static
/// ChordOverlay::next_hop when everyone is alive.
[[nodiscard]] NodeId chord_next_hop_live(const ChordOverlay& chord, NodeId v,
                                         std::uint64_t key, const LivenessView& alive) {
  if (owner_live(chord, key, alive) == v) return v;
  const std::uint64_t ring = chord.ring_size();
  const std::uint64_t dv = ring_dist(chord.id_of(v), key, ring);
  for (std::uint32_t k = chord.ring_bits(); k-- > 0;) {
    const NodeId c = chord.finger(v, k);
    if (c == v || !alive(c)) continue;
    const std::uint64_t dc = ring_dist(chord.id_of(c), key, ring);
    if (dc < dv) return c;  // fingers are scanned longest-jump first
  }
  return successor_live(chord, v, alive);
}

}  // namespace

NodeId SparseRouter::next_hop(NodeId at, RouteState& state, Rng& rng,
                              const LivenessView& alive) const {
  switch (state.mode) {
    case RouteState::Mode::kDone:
      return at;
    case RouteState::Mode::kChordRoute: {
      const NodeId nh = chord_next_hop_live(*chord_, at, state.target, alive);
      if (nh != at) return nh;
      state.mode =
          state.steps > 0 ? RouteState::Mode::kChordSmear : RouteState::Mode::kDone;
      return state.steps > 0 ? next_hop(at, state, rng, alive) : at;
    }
    case RouteState::Mode::kChordSmear:
      if (state.steps == 0) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      --state.steps;
      if (state.steps == 0) state.mode = RouteState::Mode::kDone;
      return successor_live(*chord_, at, alive);
    case RouteState::Mode::kGrid: {
      const auto target = static_cast<std::uint32_t>(state.target);
      if (target == at) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      const std::uint32_t ar = at / cols_, ac = at % cols_;
      const std::uint32_t tr = target / cols_, tc = target % cols_;
      // Row first, then column; torus wraps take the shorter direction,
      // and an exact tie (possible for any even dimension: down ==
      // rows - down at the antipode) deterministically goes forward --
      // the <= below is load-bearing for the pinned determinism sweeps.
      if (ar != tr) {
        const std::uint32_t down = (tr + rows_ - ar) % rows_;
        const bool forward = !torus_ ? tr > ar : down <= rows_ - down;
        const std::uint32_t nr = forward ? (ar + 1) % rows_ : (ar + rows_ - 1) % rows_;
        return nr * cols_ + ac;
      }
      const std::uint32_t right = (tc + cols_ - ac) % cols_;
      const bool forward = !torus_ ? tc > ac : right <= cols_ - right;
      const std::uint32_t nc = forward ? (ac + 1) % cols_ : (ac + cols_ - 1) % cols_;
      return ar * cols_ + nc;
    }
    case RouteState::Mode::kWalk:
      if (state.steps == 0) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      --state.steps;
      if (state.steps == 0) state.mode = RouteState::Mode::kDone;
      return sampler_(at, rng);
  }
  return at;
}

std::uint32_t SparseRouter::max_route_hops() const noexcept {
  if (chord_ != nullptr) return 2 * chord_->ring_bits() + chord_->smear_width() + 2;
  if (cols_ != 0) return rows_ + cols_;
  return walk_len_;
}

std::uint32_t SparseRouter::typical_route_hops() const noexcept {
  // Chord: greedy routing of a random key takes ~(log2 n)/2 expected hops
  // and the smear walk averages S/2 more.  Grids: expected per-dimension
  // distance to a uniform target is dim/3 (dim/4 on a torus).  Walks: the
  // length is fixed.
  if (chord_ != nullptr) return ceil_log2(n_) / 2 + chord_->smear_width() / 2 + 1;
  if (cols_ != 0) return torus_ ? (rows_ + cols_) / 4 : (rows_ + cols_) / 3;
  return walk_len_;
}

}  // namespace drrg
