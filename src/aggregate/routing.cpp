#include "aggregate/routing.hpp"

#include <cassert>
#include <stdexcept>

#include "support/mathutil.hpp"

namespace drrg {

SparseRouter SparseRouter::on_chord(const ChordOverlay& chord) {
  SparseRouter r;
  r.chord_ = &chord;
  r.n_ = chord.size();
  return r;
}

SparseRouter SparseRouter::on_substrate(const sim::Topology& topology) {
  if (topology.is_complete())
    throw std::invalid_argument("SparseRouter: substrate topology must be explicit");
  SparseRouter r;
  r.n_ = topology.size();
  if (topology.is_grid()) {
    r.rows_ = topology.grid_rows();
    r.cols_ = topology.grid_cols();
    r.torus_ = topology.grid_torus();
  } else {
    // Walk length: on a constant-spectral-gap substrate the walk is within
    // O(1/n) of uniform after O(log n) steps; the factor 2 buys slack for
    // the moderately-expanding families without changing the O(log n) hop
    // bill Theorem 14 charges per G~ edge.
    r.walk_len_ = std::max<std::uint32_t>(8, 2 * ceil_log2(topology.size()));
    r.sampler_ = topology.sampler(topology.size());
  }
  return r;
}

namespace {
/// No-previous-carrier sentinel for the kGrid detour state.
constexpr NodeId kNoPrev = static_cast<NodeId>(-1);
}  // namespace

RouteState SparseRouter::begin_random(NodeId src, Rng& rng) const {
  RouteState st;
  if (chord_ != nullptr) {
    st.mode = RouteState::Mode::kChordRoute;
    st.target = rng.next_below(chord_->ring_size());
    st.steps = static_cast<std::uint32_t>(rng.next_below(chord_->smear_width()));
    st.owner = chord_->owner_of_key(st.target);
    return st;
  }
  if (cols_ != 0) {
    st.mode = RouteState::Mode::kGrid;
    st.target = rng.next_below(n_);  // exactly uniform over V
    st.steps = grid_ttl();           // detour budget (fast hops ignore it)
    st.owner = kNoPrev;
    return st;
  }
  st.mode = RouteState::Mode::kWalk;
  st.steps = walk_len_;
  (void)src;
  return st;
}

RouteState SparseRouter::begin_directed(NodeId dst) const {
  RouteState st;
  if (chord_ != nullptr) {
    // Greedy routing on dst's own ring id lands exactly on dst.
    st.mode = RouteState::Mode::kChordRoute;
    st.target = chord_->id_of(dst);
    st.owner = dst;
    return st;
  }
  if (cols_ != 0) {
    st.mode = RouteState::Mode::kGrid;
    st.target = dst;
    st.steps = grid_ttl();
    st.owner = kNoPrev;
    return st;
  }
  return st;  // kDone: single point-to-point send
}

namespace {

/// (to - from) clockwise on a power-of-two ring.
[[nodiscard]] std::uint64_t ring_dist(std::uint64_t from, std::uint64_t to,
                                      std::uint64_t ring) noexcept {
  return (to - from) & (ring - 1);
}

/// First alive node clockwise after v (stabilized successor pointer).
[[nodiscard]] NodeId successor_live(const ChordOverlay& chord, NodeId v,
                                    const LivenessView& alive) {
  NodeId s = chord.successor(v);
  for (std::uint32_t guard = 0; guard < chord.size() && !alive(s); ++guard)
    s = chord.successor(s);
  return s;
}

/// The alive node owning the route's key on the stabilized ring: the
/// cached static owner, or its first alive successor when the owner
/// crashed.  Starting from RouteState::owner instead of re-running
/// owner_of_key keeps the per-hop path free of binary searches while
/// walking the exact successor chain the recomputation would.
[[nodiscard]] NodeId owner_live(const ChordOverlay& chord, NodeId static_owner,
                                const LivenessView& alive) {
  NodeId o = static_owner;
  for (std::uint32_t guard = 0; guard < chord.size() && !alive(o); ++guard)
    o = chord.successor(o);
  return o;
}

/// Greedy Chord step on the stabilized overlay: the closest preceding
/// *alive* finger, else the alive successor chain.  Reduces to the static
/// greedy step when everyone is alive.
[[nodiscard]] NodeId chord_next_hop_live(const ChordOverlay& chord, NodeId v,
                                         const RouteState& state,
                                         const LivenessView& alive) {
  if (owner_live(chord, state.owner, alive) == v) return v;
  const std::uint64_t ring = chord.ring_size();
  const std::uint64_t dv = ring_dist(chord.id_of(v), state.target, ring);
  for (std::uint32_t k = chord.ring_bits(); k-- > 0;) {
    const NodeId c = chord.finger(v, k);
    if (c == v || !alive(c)) continue;
    const std::uint64_t dc = ring_dist(chord.id_of(c), state.target, ring);
    if (dc < dv) return c;  // fingers are scanned longest-jump first
  }
  return successor_live(chord, v, alive);
}

/// Crash-free greedy Chord step: binary search for the largest k with
/// finger distance <= dv over the precomputed non-decreasing row.  For a
/// finger c != v, ring_dist(id_c, key) < dv  <=>  ring_dist(id_v, id_c)
/// <= dv (subtracting the finger offset modulo the ring), and self-fingers
/// are stored as the full ring, so the search selects exactly the finger
/// the longest-jump-first liveness scan would with everyone alive.
[[nodiscard]] NodeId chord_next_hop_fast(const ChordOverlay& chord, NodeId v,
                                         std::uint64_t key) noexcept {
  const std::uint64_t dv = ring_dist(chord.id_of(v), key, chord.ring_size());
  const std::uint64_t* fd = chord.finger_dist_row(v);
  std::uint32_t lo = 0, hi = chord.ring_bits();
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (fd[mid] <= dv) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo > 0 ? chord.finger_row(v)[lo - 1] : chord.successor(v);
}

/// One coordinate-routing step toward node id `target` (row first, then
/// column).  Torus wraps take the shorter direction, and an exact tie
/// (possible for any even dimension: down == rows - down at the antipode)
/// deterministically goes forward -- the <= below is load-bearing for the
/// pinned determinism sweeps.
[[nodiscard]] NodeId grid_step(NodeId at, std::uint32_t target, std::uint32_t rows,
                               std::uint32_t cols, bool torus) noexcept {
  const std::uint32_t ar = at / cols, ac = at % cols;
  const std::uint32_t tr = target / cols, tc = target % cols;
  if (ar != tr) {
    const std::uint32_t down = (tr + rows - ar) % rows;
    const bool forward = !torus ? tr > ar : down <= rows - down;
    const std::uint32_t nr = forward ? (ar + 1) % rows : (ar + rows - 1) % rows;
    return nr * cols + ac;
  }
  const std::uint32_t right = (tc + cols - ac) % cols;
  const bool forward = !torus ? tc > ac : right <= cols - right;
  const std::uint32_t nc = forward ? (ac + 1) % cols : (ac + cols - 1) % cols;
  return ar * cols + nc;
}

/// Liveness-aware lattice hop: the static coordinate step when its node is
/// alive, a greedy perimeter detour otherwise.  Detour preference order is
/// toward-target on the other axis first, then the remaining axial
/// neighbors, skipping the previous carrier unless it is the only live
/// exit.  Greedy sidesteps can live-lock on concave dead regions, so a hop
/// TTL (state.steps) bounds the walk: exhausting it -- or a dead target,
/// or a fully dead neighborhood -- ends the route kStranded at the current
/// holder (the push-sum carry-ack re-homes the payload from there; other
/// carriers drop it, exactly like the pre-detour dead-hop delivery).
[[nodiscard]] NodeId grid_hop_live(NodeId at, RouteState& state, std::uint32_t rows,
                                   std::uint32_t cols, bool torus,
                                   const LivenessView& alive) {
  const auto target = static_cast<NodeId>(state.target);
  if (target == at) {
    state.mode = RouteState::Mode::kDone;
    return at;
  }
  if (state.steps == 0 || !alive(target)) {
    state.mode = RouteState::Mode::kStranded;
    return at;
  }
  --state.steps;
  const NodeId prev = state.owner;
  const NodeId greedy = grid_step(at, target, rows, cols, torus);
  if (alive(greedy) && greedy != prev) {
    state.owner = at;
    return greedy;
  }
  const std::uint32_t ar = at / cols, ac = at % cols;
  const std::uint32_t tr = target / cols, tc = target % cols;
  NodeId cand[4];
  int m = 0;
  auto push = [&](std::uint32_t r, std::uint32_t c) {
    const NodeId v = r * cols + c;
    for (int i = 0; i < m; ++i) {
      if (cand[i] == v) return;
    }
    cand[m++] = v;
  };
  // The static greedy hop first (it may equal prev, kept as last resort
  // below), then the toward-target move on the other axis, then the rest.
  push(greedy / cols, greedy % cols);
  if (ar != tr && ac != tc) {
    const std::uint32_t right = (tc + cols - ac) % cols;
    const bool forward = !torus ? tc > ac : right <= cols - right;
    push(ar, forward ? (ac + 1) % cols : (ac + cols - 1) % cols);
  }
  if (torus || ar + 1 < rows) push((ar + 1) % rows, ac);
  if (torus || ar > 0) push((ar + rows - 1) % rows, ac);
  if (torus || ac + 1 < cols) push(ar, (ac + 1) % cols);
  if (torus || ac > 0) push(ar, (ac + cols - 1) % cols);
  NodeId last_resort = kNoPrev;
  for (int i = 0; i < m; ++i) {
    if (cand[i] == at || !alive(cand[i])) continue;
    if (cand[i] == prev) {
      last_resort = prev;
      continue;
    }
    state.owner = at;
    return cand[i];
  }
  if (last_resort != kNoPrev) {
    state.owner = at;
    return last_resort;
  }
  state.mode = RouteState::Mode::kStranded;  // boxed in by dead neighbors
  return at;
}

}  // namespace

NodeId SparseRouter::next_hop_fast(NodeId at, RouteState& state) const noexcept {
  switch (state.mode) {
    case RouteState::Mode::kDone:
      return at;
    case RouteState::Mode::kChordRoute: {
      if (state.owner != at) return chord_next_hop_fast(*chord_, at, state.target);
      state.mode =
          state.steps > 0 ? RouteState::Mode::kChordSmear : RouteState::Mode::kDone;
      return state.steps > 0 ? next_hop_fast(at, state) : at;
    }
    case RouteState::Mode::kChordSmear:
      if (state.steps == 0) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      --state.steps;
      if (state.steps == 0) state.mode = RouteState::Mode::kDone;
      return chord_->successor(at);
    case RouteState::Mode::kGrid: {
      const auto target = static_cast<std::uint32_t>(state.target);
      if (target == at) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      return grid_step(at, target, rows_, cols_, torus_);
    }
    case RouteState::Mode::kWalk:
      assert(false && "kWalk draws randomness; route it through next_hop");
      return at;
    case RouteState::Mode::kStranded:
      return at;
  }
  return at;
}

NodeId SparseRouter::next_hop_live(NodeId at, RouteState& state,
                                   const LivenessView& alive) const {
  switch (state.mode) {
    case RouteState::Mode::kDone:
      return at;
    case RouteState::Mode::kChordRoute: {
      const NodeId nh = chord_next_hop_live(*chord_, at, state, alive);
      if (nh != at) return nh;
      state.mode =
          state.steps > 0 ? RouteState::Mode::kChordSmear : RouteState::Mode::kDone;
      return state.steps > 0 ? next_hop_live(at, state, alive) : at;
    }
    case RouteState::Mode::kChordSmear:
      if (state.steps == 0) {
        state.mode = RouteState::Mode::kDone;
        return at;
      }
      --state.steps;
      if (state.steps == 0) state.mode = RouteState::Mode::kDone;
      return successor_live(*chord_, at, alive);
    case RouteState::Mode::kGrid:
      return grid_hop_live(at, state, rows_, cols_, torus_, alive);
    case RouteState::Mode::kWalk:
      assert(false && "kWalk draws randomness; route it through next_hop");
      return at;
    case RouteState::Mode::kStranded:
      return at;
  }
  return at;
}

NodeId SparseRouter::next_hop(NodeId at, RouteState& state, Rng& rng,
                              const LivenessView& alive) const {
  if (state.mode == RouteState::Mode::kWalk) {
    if (state.steps == 0) {
      state.mode = RouteState::Mode::kDone;
      return at;
    }
    --state.steps;
    if (state.steps == 0) state.mode = RouteState::Mode::kDone;
    return sampler_(at, rng);
  }
  return alive.fn == nullptr ? next_hop_fast(at, state) : next_hop_live(at, state, alive);
}

std::uint32_t SparseRouter::max_route_hops() const noexcept {
  if (chord_ != nullptr) return 2 * chord_->ring_bits() + chord_->smear_width() + 2;
  if (cols_ != 0) return grid_ttl() + 2;  // detours burn at most the TTL
  return walk_len_;
}

std::uint32_t SparseRouter::typical_route_hops() const noexcept {
  // Chord: greedy routing of a random key takes ~(log2 n)/2 expected hops
  // and the smear walk averages S/2 more.  Grids: expected per-dimension
  // distance to a uniform target is dim/3 (dim/4 on a torus).  Walks: the
  // length is fixed.
  if (chord_ != nullptr) return ceil_log2(n_) / 2 + chord_->smear_width() / 2 + 1;
  if (cols_ != 0) return torus_ ? (rows_ + cols_) / 4 : (rows_ + cols_) / 3;
  return walk_len_;
}

}  // namespace drrg
