#include "aggregate/derived.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace drrg {

namespace {

std::vector<double> indicators(const std::vector<bool>& flags) {
  std::vector<double> v(flags.size());
  for (std::size_t i = 0; i < flags.size(); ++i) v[i] = flags[i] ? 1.0 : 0.0;
  return v;
}

}  // namespace

BoolOutcome drr_gossip_any(std::uint32_t n, const std::vector<bool>& flags,
                           std::uint64_t seed, const sim::Scenario& scenario,
                           const DrrGossipConfig& config) {
  if (flags.size() < n) throw std::invalid_argument("drr_gossip_any: flags too short");
  BoolOutcome out;
  out.detail = drr_gossip_max(n, indicators(flags), seed, scenario, config);
  out.value = out.detail.value >= 0.5;
  return out;
}

BoolOutcome drr_gossip_all(std::uint32_t n, const std::vector<bool>& flags,
                           std::uint64_t seed, const sim::Scenario& scenario,
                           const DrrGossipConfig& config) {
  if (flags.size() < n) throw std::invalid_argument("drr_gossip_all: flags too short");
  BoolOutcome out;
  out.detail = drr_gossip_min(n, indicators(flags), seed, scenario, config);
  out.value = out.detail.value >= 0.5;
  return out;
}

LeaderOutcome drr_gossip_elect_leader(std::uint32_t n, std::uint64_t seed,
                                      const sim::Scenario& scenario,
                                      const DrrGossipConfig& config) {
  // Max over node ids: ids are exact in double up to 2^53.
  std::vector<double> ids(n);
  for (std::uint32_t v = 0; v < n; ++v) ids[v] = static_cast<double>(v);
  LeaderOutcome out;
  out.detail = drr_gossip_max(n, ids, seed, scenario, config);
  out.leader = static_cast<NodeId>(out.detail.value);
  return out;
}

HistogramOutcome drr_gossip_histogram(std::uint32_t n, std::span<const double> values,
                                      std::span<const double> edges, std::uint64_t seed,
                                      const sim::Scenario& scenario,
                                      const DrrGossipConfig& config, unsigned threads) {
  if (edges.size() < 2) throw std::invalid_argument("histogram: need >= 2 edges");
  if (!std::is_sorted(edges.begin(), edges.end()) ||
      std::adjacent_find(edges.begin(), edges.end()) != edges.end())
    throw std::invalid_argument("histogram: edges must be strictly increasing");

  HistogramOutcome out;
  // rank(e) = #values < e; bucket i = rank(e_{i+1}) - rank(e_i).  Every
  // rank query shares the root seed (one crash set across the histogram);
  // per-query randomness comes from salted stream tags.  The queries are
  // mutually independent, so they fan onto the deterministic executor and
  // are absorbed in fixed index order -- bit-identical at any `threads`.
  const std::vector<AggregateOutcome> queries =
      parallel_map(edges.size(), threads, [&](std::size_t i) {
        return drr_gossip_rank(n, values, edges[i], seed, scenario,
                               with_stream_salt(config, 0x8157ULL + i));
      });
  std::vector<double> ranks(edges.size(), 0.0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ranks[i] = queries[i].value;
    out.total += queries[i].metrics.total();
    ++out.pipeline_runs;
  }
  out.counts.resize(edges.size() - 1);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i)
    out.counts[i] = std::max(0.0, ranks[i + 1] - ranks[i]);
  return out;
}

}  // namespace drrg
