#include "aggregate/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "aggregate/routing.hpp"
#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"
#include "support/scratch.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

namespace drrg {

Graph overlay_graph(const ChordOverlay& chord) {
  // Flat collect + sort + unique: the same sorted duplicate-free edge list
  // a std::set yields in O(n log n) node allocations, in O(1) allocations.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(chord.size()) * (chord.ring_bits() + 1));
  auto add = [&edges](NodeId a, NodeId b) {
    if (a == b) return;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  };
  for (NodeId v = 0; v < chord.size(); ++v) {
    add(v, chord.successor(v));
    for (std::uint32_t k = 0; k < chord.ring_bits(); ++k) add(v, chord.finger(v, k));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_edges(chord.size(), edges);
}

namespace {

constexpr double kAgreeTolerance = 1e-9;

// Pooled payload-staging slots (support/scratch.hpp).  Distinct tags for
// buffers whose lifetimes overlap within one pipeline run; contents are
// fully rewritten by assign() before every use.
enum ScratchTag : int {
  kScratchAddrPayload,
  kScratchValuePayload,
  kScratchKeys,
  kScratchRootValue,
  kScratchNum0,
  kScratchDen0,
  kScratchSpreadKeys,
  kScratchSpreadAux,
};

// ---------------------------------------------------------------------------
// Phase III carriers.  A logical G~ send travels as one engine envelope
// that is re-sent hop by hop: first along the substrate route (SparseRouter
// state machine), then up the landing node's ranking tree.  Each hop is
// one engine message in one round, so the FaultSchedule applies to every
// intermediate carrier and a delivery's latency equals its hop count --
// the accounting the paper's "at most T hops of G per edge of G~" uses.

/// The engine's alive set as a routing liveness oracle: Chord hops detour
/// around crashed nodes (stabilized overlay, see routing.hpp).
template <class Msg>
[[nodiscard]] LivenessView liveness_of(const sim::Network<Msg>& net) noexcept {
  return LivenessView{&net, [](const void* p, NodeId v) {
                        return static_cast<const sim::Network<Msg>*>(p)->alive(v);
                      }};
}

/// Common hop step shared by both Phase III protocols.  Returns the root
/// the message has arrived at (absorption point), or kNoNode when the
/// message was forwarded (or stranded on a non-member).
///
/// `crash_free` selects the devirtualized fast hop (computed once per run
/// from FaultSchedule::crash_free()): with every node alive for the whole
/// run the stabilized detours are identities, so the keyed modes skip the
/// LivenessView indirection entirely.  Keyed modes draw no per-hop
/// randomness on either path, so the holder's RNG slot is only touched
/// for walks -- lazily constructed streams are pure functions of
/// (seed, node), making the elision observationally invisible.
template <class Msg>
[[nodiscard]] sim::NodeId route_or_climb(sim::Network<Msg>& net, const Forest& forest,
                                         const SparseRouter& router, bool crash_free,
                                         sim::NodeId x, Msg&& m, std::uint32_t bits) {
  if (!m.climbing) {
    if (m.route.mode != RouteState::Mode::kDone) {
      NodeId nh;
      if (m.route.mode == RouteState::Mode::kWalk) {
        nh = router.next_hop(x, m.route, net.node_rng(x));
      } else if (crash_free) {
        nh = router.next_hop_fast(x, m.route);
      } else {
        nh = router.next_hop_live(x, m.route, liveness_of(net));
      }
      if (nh != x) {
        net.send(x, nh, std::move(m), bits);
        return sim::kNoNode;
      }
    }
    m.climbing = true;  // the route has arrived at x
  }
  if (!forest.is_member(x)) return sim::kNoNode;  // stranded: delivery dies here
  const NodeId parent = forest.parent(x);
  if (parent != kNoParent) {
    // Tree walk: one more hop of G per level, forwarded next round.  A
    // crashed parent simply never delivers -- churn severs the path.
    net.send(x, parent, std::move(m), bits);
    return sim::kNoNode;
  }
  return x;  // x is a root: absorb
}

// ---------------------------------------------------------------------------
// Routed Gossip-max over the forest roots (Algorithm 4 on the substrate).

struct SgmMsg {
  enum class Kind : std::uint8_t { kGossip, kInquiry, kReply };
  std::uint64_t key = 0;
  std::uint64_t aux = 0;  // payload riding the key (spread: the estimate)
  RouteState route;
  sim::NodeId origin = sim::kNoNode;  // inquiring root (kInquiry)
  Kind kind = Kind::kGossip;
  bool climbing = false;  // routing finished; walking up the tree
};

struct SparseGmResult {
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> aux;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

struct SparseGossipMaxProtocol {
  enum class Procedure : std::uint8_t { kIdle, kGossip, kSampling };

  const Forest& forest;
  const SparseRouter& router;
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> aux;  // adopted alongside a larger key
  std::uint32_t bits;
  bool crash_free;
  Procedure procedure = Procedure::kIdle;

  SparseGossipMaxProtocol(const Forest& f, const SparseRouter& r, bool crash_free_run,
                          std::span<const std::uint64_t> init,
                          std::span<const std::uint64_t> init_aux, std::uint32_t n)
      : forest(f),
        router(r),
        key(n, kKeyBottom),
        aux(n, 0),
        bits((init_aux.empty() ? 64 : 2 * 64) + 2 * address_bits(n)),
        crash_free(crash_free_run) {
    for (NodeId root : f.roots()) {
      key[root] = init[root];
      if (!init_aux.empty()) aux[root] = init_aux[root];
    }
  }

  /// Only roots act; the engine thins its upcall scans to the root list.
  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return forest.roots();
  }

  void on_round(sim::Network<SgmMsg>& net, sim::NodeId v) {
    if (procedure == Procedure::kIdle) return;
    SgmMsg m;
    m.route = router.begin_random(v, net.node_rng(v));
    if (procedure == Procedure::kGossip) {
      m.key = key[v];
      m.aux = aux[v];
    } else {
      m.kind = SgmMsg::Kind::kInquiry;
      m.origin = v;
    }
    hop(net, v, std::move(m));
  }

  void on_message(sim::Network<SgmMsg>& net, sim::NodeId, sim::NodeId dst, const SgmMsg& m) {
    hop(net, dst, SgmMsg{m});
  }

  void hop(sim::Network<SgmMsg>& net, sim::NodeId x, SgmMsg&& m) {
    const sim::NodeId at =
        route_or_climb(net, forest, router, crash_free, x, std::move(m), bits);
    if (at == sim::kNoNode) return;
    switch (m.kind) {
      case SgmMsg::Kind::kGossip:
      case SgmMsg::Kind::kReply:
        if (m.key > key[at]) {
          key[at] = m.key;
          aux[at] = m.aux;
        }
        break;
      case SgmMsg::Kind::kInquiry: {
        // Reply to the inquiring root: routed where the substrate has a
        // keyed scheme, one direct send otherwise (the established-call
        // convention -- the non-address-oblivious step of Algorithm 4).
        SgmMsg reply;
        reply.key = key[at];
        reply.aux = aux[at];
        reply.kind = SgmMsg::Kind::kReply;
        reply.route = router.begin_directed(m.origin);
        if (reply.route.mode == RouteState::Mode::kDone && at != m.origin) {
          net.send(at, m.origin, std::move(reply), bits);
        } else {
          hop(net, at, std::move(reply));
        }
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Routed push-sum over the forest roots (Algorithm 6 on the substrate).

struct SpsMsg {
  double num = 0.0;
  double den = 0.0;
  RouteState route;
  bool climbing = false;
};

struct SparsePsResult {
  std::vector<double> num;
  std::vector<double> den;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

struct SparsePushSumProtocol {
  const Forest& forest;
  const SparseRouter& router;
  std::vector<double> num;
  std::vector<double> den;
  std::uint32_t bits;
  bool crash_free;
  bool initiate = false;

  SparsePushSumProtocol(const Forest& f, const SparseRouter& r, bool crash_free_run,
                        std::span<const double> num0, std::span<const double> den0,
                        std::uint32_t n)
      : forest(f),
        router(r),
        num(n, 0.0),
        den(n, 0.0),
        bits(2 * 64 + address_bits(n)),
        crash_free(crash_free_run) {
    for (NodeId root : f.roots()) {
      num[root] = num0[root];
      den[root] = den0[root];
    }
  }

  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return forest.roots();
  }

  void on_round(sim::Network<SpsMsg>& net, sim::NodeId v) {
    if (!initiate) return;
    num[v] *= 0.5;
    den[v] *= 0.5;
    SpsMsg m;
    m.num = num[v];
    m.den = den[v];
    m.route = router.begin_random(v, net.node_rng(v));
    hop(net, v, std::move(m));
  }

  void on_message(sim::Network<SpsMsg>& net, sim::NodeId, sim::NodeId dst, const SpsMsg& m) {
    hop(net, dst, SpsMsg{m});
  }

  void hop(sim::Network<SpsMsg>& net, sim::NodeId x, SpsMsg&& m) {
    const sim::NodeId at =
        route_or_climb(net, forest, router, crash_free, x, std::move(m), bits);
    if (at == sim::kNoNode) return;
    num[at] += m.num;
    den[at] += m.den;
  }
};

/// Runs `steps` initiation rounds with the protocol live, then drains
/// until the network is quiescent (every in-flight envelope has landed or
/// died), capped by the longest possible residual path.
template <class Msg, class P>
void run_then_drain(sim::Network<Msg>& net, P& proto, std::uint32_t steps,
                    std::uint32_t drain_cap) {
  for (std::uint32_t r = 0; r < steps; ++r) net.step(proto);
  for (std::uint32_t r = 0; r < drain_cap && !net.quiescent(); ++r) net.step(proto);
}

/// Residual-path bound: substrate route + tree climb + slack.
[[nodiscard]] std::uint32_t drain_cap(const SparseRouter& router, const Forest& forest,
                                      std::uint32_t slack) {
  return router.max_route_hops() + forest.max_tree_height() + slack + 2;
}

SparseGmResult run_sparse_gossip_max(std::uint32_t n, const SparseRouter& router,
                                     const Forest& forest,
                                     std::span<const std::uint64_t> init,
                                     const RngFactory& rngs, const sim::Scenario& scenario,
                                     const GossipMaxConfig& cfg,
                                     std::span<const std::uint64_t> init_aux = {}) {
  sim::Network<SgmMsg> net{n, rngs, scenario, derive_seed(0x59a2, cfg.stream_tag)};
  SparseGossipMaxProtocol proto{forest, router, scenario.faults.crash_free(), init,
                                init_aux, n};
  const auto G = static_cast<std::uint32_t>(cfg.gossip_multiplier *
                                            static_cast<double>(ceil_log2(n)));
  const auto S = static_cast<std::uint32_t>(cfg.sampling_multiplier *
                                            static_cast<double>(ceil_log2(n)));
  const std::uint32_t cap = drain_cap(router, forest, cfg.drain_rounds);

  // Procedures are gated off before each drain: with roots still
  // initiating, the quiescence exit would be unreachable and the drain
  // rounds would silently double the configured O(log n) G~ budget.
  proto.procedure = SparseGossipMaxProtocol::Procedure::kGossip;
  run_then_drain(net, proto, G, 0);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kIdle;
  run_then_drain(net, proto, 0, cap);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kSampling;
  run_then_drain(net, proto, S, 0);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kIdle;
  // Replies may chain one more routed leg; drain with double headroom.
  run_then_drain(net, proto, 0, 2 * cap);

  SparseGmResult result;
  result.key = std::move(proto.key);
  result.aux = std::move(proto.aux);
  result.counters = net.counters();
  result.rounds = net.counters().rounds;
  return result;
}

SparsePsResult run_sparse_push_sum(std::uint32_t n, const SparseRouter& router,
                                   const Forest& forest, std::span<const double> num0,
                                   std::span<const double> den0, const RngFactory& rngs,
                                   const sim::Scenario& scenario, const PushSumConfig& cfg) {
  sim::Network<SpsMsg> net{n, rngs, scenario, derive_seed(0x59b2, cfg.stream_tag)};
  SparsePushSumProtocol proto{forest, router, scenario.faults.crash_free(), num0, den0,
                              n};
  // Latency compensation: a share initiated now only re-mixes after its
  // ~typical_route_hops() round trip, so the O(log n) initiation window is
  // scaled by (1 + typical/log2 n) to preserve the number of completed
  // mixing generations.  On Chord (typical = Theta(log n)) this is a
  // constant factor; message complexity stays O(n log n).
  const double latency_scale =
      1.0 + static_cast<double>(router.typical_route_hops()) /
                static_cast<double>(ceil_log2(n));
  const std::uint32_t T = static_cast<std::uint32_t>(
                              cfg.rounds_multiplier * static_cast<double>(ceil_log2(n)) *
                              latency_scale) +
                          cfg.extra_rounds;

  proto.initiate = true;
  for (std::uint32_t r = 0; r < T; ++r) net.step(proto);
  proto.initiate = false;
  run_then_drain(net, proto, 0, drain_cap(router, forest, T));

  SparsePsResult result;
  result.num = std::move(proto.num);
  result.den = std::move(proto.den);
  result.counters = net.counters();
  result.rounds = net.counters().rounds;
  return result;
}

// ---------------------------------------------------------------------------
// Shared pipeline scaffolding.

struct SparsePhase12 {
  LocalDrrResult drr;
  ConvergecastResult cc;
  BroadcastResult addr;
  std::uint32_t end_round = 0;  ///< global clock after Phase II
};

/// Phases I and II.  Each phase's Network starts where the previous one
/// stopped on the scenario's global clock, so one churn schedule spans
/// the whole pipeline.
SparsePhase12 run_sparse_phase12(const Graph& links, std::span<const double> values,
                                 ConvergecastOp op, const RngFactory& rngs,
                                 const sim::Scenario& scenario,
                                 const SparseGossipConfig& config) {
  SparsePhase12 p;
  std::uint32_t clock = scenario.start_round;
  p.drr = run_local_drr(links, rngs, scenario, config.local_drr);
  clock += p.drr.rounds;
  p.cc = run_convergecast(p.drr.forest, values, op, rngs, scenario.at_round(clock),
                          config.convergecast);
  clock += p.cc.rounds;
  std::vector<double>& addr_payload =
      support::scratch_buffer<double, kScratchAddrPayload>();
  addr_payload.assign(links.size(), 0.0);
  for (NodeId r : p.drr.forest.roots()) addr_payload[r] = static_cast<double>(r);
  BroadcastConfig addr_cfg = config.broadcast;
  addr_cfg.simultaneous_children = true;
  addr_cfg.stream_tag = derive_seed(addr_cfg.stream_tag, 1);
  p.addr = run_broadcast(p.drr.forest, addr_payload, rngs, scenario.at_round(clock),
                         addr_cfg);
  p.end_round = clock + p.addr.rounds;
  return p;
}

void fill_summary(const Forest& f, AggregateOutcome& out) {
  out.forest.num_trees = f.num_trees();
  out.forest.max_tree_size = f.max_tree_size();
  out.forest.max_tree_height = f.max_tree_height();
  out.forest.largest_tree_root = f.largest_tree_root();
  out.participating.assign(f.size(), false);
  for (NodeId v = 0; v < f.size(); ++v) out.participating[v] = f.is_member(v);
}

void sparse_finish(std::uint32_t n, const Forest& forest,
                   std::span<const double> root_value, const RngFactory& rngs,
                   const sim::Scenario& scenario, const SparseGossipConfig& config,
                   AggregateOutcome& out) {
  bool bc_incomplete = false;
  if (config.broadcast_result) {
    BroadcastConfig value_cfg = config.broadcast;
    value_cfg.simultaneous_children = true;
    value_cfg.stream_tag = derive_seed(value_cfg.stream_tag, 2);
    std::vector<double>& payload =
        support::scratch_buffer<double, kScratchValuePayload>();
    payload.assign(root_value.begin(), root_value.end());
    const BroadcastResult bc = run_broadcast(
        forest, payload, rngs,
        scenario.at_round(scenario.start_round + out.rounds_total), value_cfg);
    out.metrics.value_broadcast = bc.counters;
    out.rounds_total += bc.rounds;
    out.per_node = bc.received;
    bc_incomplete = !bc.complete;
  }

  // Consensus is judged among the roots that survive the *whole* run
  // (value-broadcast rounds included, so the reported value never
  // originates from a root the participating mask excludes): a root
  // crashed mid-run holds a frozen key that no live participant can
  // observe.  Fault-free and crash-only runs see every root, the
  // historical criterion.  The same mask prunes the participating set
  // (Phase I membership captures who was alive at the *start*).
  std::vector<bool> alive;
  if (scenario.faults.has_churn()) {
    alive = sim::survivor_mask(n, rngs, scenario.faults,
                               scenario.start_round + out.rounds_total);
    for (std::uint32_t v = 0; v < n; ++v)
      out.participating[v] = out.participating[v] && alive[v];
  }

  NodeId agree_root = kNoParent;  // largest surviving tree, ties to small id
  for (NodeId r : forest.roots()) {
    if (!alive.empty() && !alive[r]) continue;
    if (agree_root == kNoParent || forest.tree_size(r) > forest.tree_size(agree_root))
      agree_root = r;
  }
  if (agree_root == kNoParent) {  // every root died: no consensus to report
    out.consensus = false;
    return;
  }
  out.consensus = true;
  const double ref = root_value[agree_root];
  for (NodeId r : forest.roots()) {
    if (!alive.empty() && !alive[r]) continue;
    const double scale = std::max({std::fabs(ref), std::fabs(root_value[r]), 1.0});
    if (std::fabs(root_value[r] - ref) > kAgreeTolerance * scale) {
      out.consensus = false;
      break;
    }
  }
  out.value = ref;
  // Under churn a tree whose root died is legitimately cut off; the
  // roots' agreement above is the consensus criterion then.  Without
  // churn, broadcast incompleteness means retry exhaustion: report it.
  if (bc_incomplete && !scenario.faults.has_churn()) out.consensus = false;
}

// ---------------------------------------------------------------------------
// The two pipelines, generic in the (links graph, router) pair.

AggregateOutcome sparse_max_pipeline(std::uint32_t n, const Graph& links,
                                     const SparseRouter& router,
                                     std::span<const double> values, std::uint64_t seed,
                                     const sim::Scenario& scenario,
                                     const SparseGossipConfig& config) {
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kMax, rngs,
                                       scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;
  if (forest.roots().empty()) return out;

  std::vector<std::uint64_t>& keys =
      support::scratch_buffer<std::uint64_t, kScratchKeys>();
  keys.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) keys[r] = encode_ordered(p.cc.aggregate[r]);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 3);
  const SparseGmResult gm = run_sparse_gossip_max(
      n, router, forest, keys, rngs, scenario.at_round(p.end_round), gm_cfg);
  out.metrics.gossip = gm.counters;
  out.rounds_total += gm.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots()) root_value[r] = decode_ordered(gm.key[r]);
  sparse_finish(n, forest, root_value, rngs, scenario, config, out);
  return out;
}

AggregateOutcome sparse_ave_pipeline(std::uint32_t n, const Graph& links,
                                     const SparseRouter& router,
                                     std::span<const double> values, std::uint64_t seed,
                                     const sim::Scenario& scenario,
                                     const SparseGossipConfig& config) {
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kSum, rngs,
                                       scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;
  if (forest.roots().empty()) return out;

  // Phase III(a): push-sum on (local sum, tree size).
  std::vector<double>& num0 = support::scratch_buffer<double, kScratchNum0>();
  std::vector<double>& den0 = support::scratch_buffer<double, kScratchDen0>();
  num0.assign(n, 0.0);
  den0.assign(n, 0.0);
  for (NodeId r : forest.roots()) {
    num0[r] = p.cc.aggregate[r];
    den0[r] = p.cc.weight[r];
  }
  PushSumConfig ps_cfg = config.push_sum;
  ps_cfg.stream_tag = derive_seed(ps_cfg.stream_tag, 5);
  const SparsePsResult ps = run_sparse_push_sum(
      n, router, forest, num0, den0, rngs, scenario.at_round(p.end_round), ps_cfg);
  out.metrics.gossip = ps.counters;
  out.rounds_total += ps.rounds;

  // Phase III(b): elect-and-spread.  Algorithm 8 first elects z (gossip-
  // max on (tree size, id)), then data-spreads z's estimate; that shape
  // deadlocks under churn when z crashes after its winning key circulated
  // -- no live root believes it is z and nothing spreads.  Fused here:
  // every root spreads (size-key, own estimate) and the estimate rides
  // the key through every max-merge, so all roots converge on the
  // estimate of the largest root that actually managed to spread -- z
  // itself whenever z survives, byte for byte the paper's outcome -- one
  // whole gossip phase cheaper, and immune to z's death.
  std::vector<std::uint64_t>& spread_keys =
      support::scratch_buffer<std::uint64_t, kScratchSpreadKeys>();
  std::vector<std::uint64_t>& spread_aux =
      support::scratch_buffer<std::uint64_t, kScratchSpreadAux>();
  spread_keys.assign(n, kKeyBottom);
  spread_aux.assign(n, 0);
  for (NodeId r : forest.roots()) {
    if (ps.den[r] > 0.0) {
      spread_keys[r] = encode_size_id(static_cast<std::uint32_t>(p.cc.weight[r]), r);
      spread_aux[r] = encode_ordered(ps.num[r] / ps.den[r]);
    }
  }
  GossipMaxConfig spread_cfg = config.gossip_max;
  spread_cfg.stream_tag = derive_seed(spread_cfg.stream_tag, 6);
  const SparseGmResult spread = run_sparse_gossip_max(
      n, router, forest, spread_keys, rngs,
      scenario.at_round(p.end_round + ps.rounds), spread_cfg, spread_aux);
  out.metrics.spread = spread.counters;
  out.rounds_total += spread.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots())
    root_value[r] = spread.key[r] == kKeyBottom ? 0.0 : decode_ordered(spread.aux[r]);
  sparse_finish(n, forest, root_value, rngs, scenario, config, out);
  return out;
}

void check_chord_args(const ChordOverlay& chord, const Graph& links,
                      const sim::Scenario& scenario) {
  if (links.size() != chord.size())
    throw std::invalid_argument("sparse_drr_gossip: graph/overlay mismatch");
  if (!scenario.topology.is_complete())
    throw std::invalid_argument(
        "sparse_drr_gossip: the Chord overlay is the substrate; scenario.topology "
        "must be complete");
}

[[nodiscard]] const Graph& substrate_graph(const sim::Scenario& scenario) {
  if (scenario.topology.is_complete())
    throw std::invalid_argument(
        "sparse_drr_gossip: explicit substrate required (use drr_gossip_* on the "
        "complete topology)");
  return *scenario.topology.graph();
}

}  // namespace

AggregateOutcome sparse_drr_gossip_max(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  check_chord_args(chord, links, scenario);
  return sparse_max_pipeline(chord.size(), links, SparseRouter::on_chord(chord), values,
                             seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_ave(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  check_chord_args(chord, links, scenario);
  return sparse_ave_pipeline(chord.size(), links, SparseRouter::on_chord(chord), values,
                             seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_max(std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  const Graph& g = substrate_graph(scenario);
  return sparse_max_pipeline(g.size(), g, SparseRouter::on_substrate(scenario.topology),
                             values, seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_ave(std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  const Graph& g = substrate_graph(scenario);
  return sparse_ave_pipeline(g.size(), g, SparseRouter::on_substrate(scenario.topology),
                             values, seed, scenario, config);
}

}  // namespace drrg
