#include "aggregate/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "aggregate/routing.hpp"
#include "rootgossip/ordered_key.hpp"
#include "sim/engine.hpp"
#include "support/mathutil.hpp"
#include "support/scratch.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

namespace drrg {

Graph overlay_graph(const ChordOverlay& chord) {
  // Flat collect + sort + unique: the same sorted duplicate-free edge list
  // a std::set yields in O(n log n) node allocations, in O(1) allocations.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(chord.size()) * (chord.ring_bits() + 1));
  auto add = [&edges](NodeId a, NodeId b) {
    if (a == b) return;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  };
  for (NodeId v = 0; v < chord.size(); ++v) {
    add(v, chord.successor(v));
    for (std::uint32_t k = 0; k < chord.ring_bits(); ++k) add(v, chord.finger(v, k));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph::from_edges(chord.size(), edges);
}

namespace {

constexpr double kAgreeTolerance = 1e-9;

// Pooled payload-staging slots (support/scratch.hpp).  Distinct tags for
// buffers whose lifetimes overlap within one pipeline run; contents are
// fully rewritten by assign() before every use.
enum ScratchTag : int {
  kScratchAddrPayload,
  kScratchValuePayload,
  kScratchKeys,
  kScratchRootValue,
  kScratchNum0,
  kScratchDen0,
  kScratchSpreadKeys,
  kScratchSpreadAux,
};

// ---------------------------------------------------------------------------
// Phase III carriers.  A logical G~ send travels as one engine envelope
// that is re-sent hop by hop: first along the substrate route (SparseRouter
// state machine), then up the landing node's ranking tree.  Each hop is
// one engine message in one round, so the FaultSchedule applies to every
// intermediate carrier and a delivery's latency equals its hop count --
// the accounting the paper's "at most T hops of G per edge of G~" uses.

/// The engine's alive set as a routing liveness oracle: Chord hops detour
/// around crashed nodes (stabilized overlay, see routing.hpp).
template <class Msg>
[[nodiscard]] LivenessView liveness_of(const sim::Network<Msg>& net) noexcept {
  return LivenessView{&net, [](const void* p, NodeId v) {
                        return static_cast<const sim::Network<Msg>*>(p)->alive(v);
                      }};
}

/// One hop's outcome, for callers that must distinguish "still traveling"
/// from "died at the holder" (the push-sum carry-ack re-homes the latter).
struct HopOutcome {
  sim::NodeId absorbed = sim::kNoNode;  ///< root that absorbed, or kNoNode
  bool stranded = false;  ///< route gave up / landed on a non-member: the
                          ///< payload is at the holder with nowhere to go
};

/// Common hop step shared by both Phase III protocols.  Returns the root
/// the message has arrived at (absorption point); absorbed == kNoNode
/// means the message was forwarded one hop, or -- when `stranded` is set
/// -- died at the current holder (a kStranded route around dead lattice
/// regions, or a landing on a non-member such as a mid-run joiner).
///
/// `crash_free` selects the devirtualized fast hop (computed once per run
/// from FaultSchedule::crash_free()): with every node alive for the whole
/// run the stabilized detours are identities, so the keyed modes skip the
/// LivenessView indirection entirely.  Keyed modes draw no per-hop
/// randomness on either path, so the holder's RNG slot is only touched
/// for walks -- lazily constructed streams are pure functions of
/// (seed, node), making the elision observationally invisible.
template <class Msg>
[[nodiscard]] HopOutcome route_or_climb(sim::Network<Msg>& net, const Forest& forest,
                                        const SparseRouter& router, bool crash_free,
                                        sim::NodeId x, Msg&& m, std::uint32_t bits) {
  if (!m.climbing) {
    if (m.route.mode != RouteState::Mode::kDone) {
      NodeId nh;
      if (m.route.mode == RouteState::Mode::kWalk) {
        nh = router.next_hop(x, m.route, net.node_rng(x));
      } else if (crash_free) {
        nh = router.next_hop_fast(x, m.route);
      } else {
        nh = router.next_hop_live(x, m.route, liveness_of(net));
      }
      if (nh != x) {
        net.send(x, nh, std::move(m), bits);
        return {};
      }
      if (m.route.mode == RouteState::Mode::kStranded)
        return {sim::kNoNode, true};  // dead-end detour: payload stuck at x
    }
    m.climbing = true;  // the route has arrived at x
  }
  if (!forest.is_member(x)) return {sim::kNoNode, true};  // joiner / non-member
  const NodeId parent = forest.parent(x);
  if (parent != kNoParent) {
    // Tree walk: one more hop of G per level, forwarded next round.  A
    // crashed parent simply never delivers -- churn severs the path.
    net.send(x, parent, std::move(m), bits);
    return {};
  }
  return {x, false};  // x is a root: absorb
}

// ---------------------------------------------------------------------------
// Routed Gossip-max over the forest roots (Algorithm 4 on the substrate).

struct SgmMsg {
  enum class Kind : std::uint8_t { kGossip, kInquiry, kReply };
  std::uint64_t key = 0;
  std::uint64_t aux = 0;  // payload riding the key (spread: the estimate)
  RouteState route;
  sim::NodeId origin = sim::kNoNode;  // inquiring root (kInquiry)
  Kind kind = Kind::kGossip;
  bool climbing = false;  // routing finished; walking up the tree
};

struct SparseGmResult {
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> aux;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

struct SparseGossipMaxProtocol {
  enum class Procedure : std::uint8_t { kIdle, kGossip, kSampling };

  const Forest& forest;
  const SparseRouter& router;
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> aux;  // adopted alongside a larger key
  std::uint32_t bits;
  bool crash_free;
  Procedure procedure = Procedure::kIdle;

  SparseGossipMaxProtocol(const Forest& f, const SparseRouter& r, bool crash_free_run,
                          std::span<const std::uint64_t> init,
                          std::span<const std::uint64_t> init_aux, std::uint32_t n)
      : forest(f),
        router(r),
        key(n, kKeyBottom),
        aux(n, 0),
        bits((init_aux.empty() ? 64 : 2 * 64) + 2 * address_bits(n)),
        crash_free(crash_free_run) {
    for (NodeId root : f.roots()) {
      key[root] = init[root];
      if (!init_aux.empty()) aux[root] = init_aux[root];
    }
  }

  /// Only roots act; the engine thins its upcall scans to the root list.
  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return forest.roots();
  }

  void on_round(sim::Network<SgmMsg>& net, sim::NodeId v) {
    if (procedure == Procedure::kIdle) return;
    SgmMsg m;
    m.route = router.begin_random(v, net.node_rng(v));
    if (procedure == Procedure::kGossip) {
      m.key = key[v];
      m.aux = aux[v];
    } else {
      m.kind = SgmMsg::Kind::kInquiry;
      m.origin = v;
    }
    hop(net, v, std::move(m));
  }

  void on_message(sim::Network<SgmMsg>& net, sim::NodeId, sim::NodeId dst, const SgmMsg& m) {
    hop(net, dst, SgmMsg{m});
  }

  void hop(sim::Network<SgmMsg>& net, sim::NodeId x, SgmMsg&& m) {
    // Stranded gossip dies at the holder: max-merge keys are idempotent
    // retransmitted state, so a lost copy costs redundancy, not mass.
    const sim::NodeId at =
        route_or_climb(net, forest, router, crash_free, x, std::move(m), bits).absorbed;
    if (at == sim::kNoNode) return;
    switch (m.kind) {
      case SgmMsg::Kind::kGossip:
      case SgmMsg::Kind::kReply:
        if (m.key > key[at]) {
          key[at] = m.key;
          aux[at] = m.aux;
        }
        break;
      case SgmMsg::Kind::kInquiry: {
        // Reply to the inquiring root: routed where the substrate has a
        // keyed scheme, one direct send otherwise (the established-call
        // convention -- the non-address-oblivious step of Algorithm 4).
        SgmMsg reply;
        reply.key = key[at];
        reply.aux = aux[at];
        reply.kind = SgmMsg::Kind::kReply;
        reply.route = router.begin_directed(m.origin);
        if (reply.route.mode == RouteState::Mode::kDone && at != m.origin) {
          net.send(at, m.origin, std::move(reply), bits);
        } else {
          hop(net, at, std::move(reply));
        }
        break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Routed push-sum over the forest roots (Algorithm 6 on the substrate).

struct SpsMsg {
  enum class Kind : std::uint8_t {
    kShare,  ///< a traveling (num, den) half
    kAck,    ///< carry-ack: custody of `seq` accepted (armed runs only)
  };
  double num = 0.0;
  double den = 0.0;
  RouteState route;
  std::uint32_t seq = 0;  ///< sender-local custody id (armed runs only)
  Kind kind = Kind::kShare;
  bool climbing = false;
};

struct SparsePsResult {
  std::vector<double> num;
  std::vector<double> den;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

/// Routed push-sum, optionally *armed* with the hop-level carry-ack
/// (PushSumConfig::hop_carry_ack).  Unarmed, a share whose next carrier
/// crashed -- or whose hop the loss coin ate -- vanishes, and push-sum's
/// conservation law (sum num, sum den invariant) erodes by O(loss) per
/// hop.  Armed, every hop is a custody transfer: the sender parks the
/// share's mass in a pending slot until the receiver acks custody on the
/// established call (reliable, same round as the delivery).  A pending
/// that outlives its ack window -- the hop was lost or the carrier died
/// mid-flight -- is retransmitted from the stored pre-hop route state: the
/// holder recomputes the same hop against *current* liveness (ARQ with
/// route progress kept; a freshly dead next carrier turns into a detour,
/// not a restart).  Only a share stranded at the holder itself re-homes on
/// a fresh random route -- its old route is a proven dead end.  Restarting
/// every lost hop from scratch would make long routes statistically
/// un-completable (success (1-loss)^hops per attempt); resuming keeps the
/// expected cost at hops * (1 + loss/(1-loss) * reclaim_after) rounds.
/// Mass held by a node that itself crashes dies with it (that is
/// physical); everything else is conserved.
///
/// No double-count: an ack rides the reply step of the delivery round,
/// which is at most sent_round + 1 + latency_bound; reclaim fires at
/// on_round_end of sent_round + 2 + latency_bound, strictly after any
/// possible ack has been drained.  Armed runs scan every node (any
/// carrier may hold pendings); unarmed runs keep the historical
/// roots-only upcall set and never touch the ack fields -- the unarmed
/// path is byte-identical to the pre-carry-ack protocol.
struct SparsePushSumProtocol {
  struct Pending {
    std::uint32_t seq = 0;
    std::uint32_t sent_round = 0;
    double num = 0.0;
    double den = 0.0;
    RouteState route;          ///< pre-hop route state (retransmit resumes here)
    bool climbing = false;     ///< pre-hop tree-walk flag
    bool stranded = false;     ///< no viable hop existed: re-home, don't resume
  };
  static constexpr std::uint32_t kAckBits = 32;  // custody id on the open call

  const Forest& forest;
  const SparseRouter& router;
  std::vector<double> num;
  std::vector<double> den;
  std::uint32_t bits;
  bool crash_free;
  bool armed;
  std::uint32_t reclaim_after;  ///< rounds before an unacked pending re-homes
  bool initiate = false;
  std::vector<std::vector<Pending>> pending;  // armed: per-node custody slots
  std::vector<std::uint32_t> next_seq;
  std::vector<sim::NodeId> all_ids;  // armed upcall set (every node)
  std::uint64_t pending_total = 0;

  SparsePushSumProtocol(const Forest& f, const SparseRouter& r, bool crash_free_run,
                        std::span<const double> num0, std::span<const double> den0,
                        std::uint32_t n, bool carry_ack, std::uint32_t latency_bound)
      : forest(f),
        router(r),
        num(n, 0.0),
        den(n, 0.0),
        bits(2 * 64 + address_bits(n)),
        crash_free(crash_free_run),
        armed(carry_ack),
        reclaim_after(2 + latency_bound) {
    for (NodeId root : f.roots()) {
      num[root] = num0[root];
      den[root] = den0[root];
    }
    if (armed) {
      pending.resize(n);
      next_seq.assign(n, 0);
      all_ids.resize(n);
      for (std::uint32_t v = 0; v < n; ++v) all_ids[v] = v;
    }
  }

  [[nodiscard]] std::span<const sim::NodeId> active_nodes() const noexcept {
    return armed ? std::span<const sim::NodeId>{all_ids} : forest.roots();
  }

  [[nodiscard]] bool is_root(sim::NodeId v) const noexcept {
    return forest.is_member(v) && forest.parent(v) == kNoParent;
  }

  void on_round(sim::Network<SpsMsg>& net, sim::NodeId v) {
    if (!initiate) return;
    if (armed && !is_root(v)) return;  // armed runs scan every node
    num[v] *= 0.5;
    den[v] *= 0.5;
    SpsMsg m;
    m.num = num[v];
    m.den = den[v];
    m.route = router.begin_random(v, net.node_rng(v));
    hop(net, v, std::move(m));
  }

  void on_message(sim::Network<SpsMsg>& net, sim::NodeId src, sim::NodeId dst,
                  const SpsMsg& m) {
    if (armed) {
      if (m.kind == SpsMsg::Kind::kAck) {
        drop_pending(dst, m.seq);  // custody transferred downstream
        return;
      }
      SpsMsg ack;
      ack.kind = SpsMsg::Kind::kAck;
      ack.seq = m.seq;
      net.reply(dst, src, std::move(ack), kAckBits);
    }
    hop(net, dst, SpsMsg{m});
  }

  void hop(sim::Network<SpsMsg>& net, sim::NodeId x, SpsMsg&& m) {
    if (!armed) {
      const sim::NodeId at =
          route_or_climb(net, forest, router, crash_free, x, std::move(m), bits)
              .absorbed;
      if (at == sim::kNoNode) return;
      num[at] += m.num;
      den[at] += m.den;
      return;
    }
    const double half_num = m.num, half_den = m.den;
    m.seq = next_seq[x]++;
    const std::uint32_t seq = m.seq;
    const RouteState pre_route = m.route;  // resume point for a lost hop
    const bool pre_climbing = m.climbing;
    const HopOutcome hr =
        route_or_climb(net, forest, router, crash_free, x, std::move(m), bits);
    if (hr.absorbed != sim::kNoNode) {
      num[hr.absorbed] += half_num;
      den[hr.absorbed] += half_den;
      return;
    }
    // Forwarded: custody parked until the next carrier acks; the reclaim
    // sweep retransmits from pre_route.  Stranded: the same slot with no
    // ack ever coming -- parked rather than re-launched inline, which also
    // breaks the boxed-in livelock of re-launching into the same dead
    // region within one round.
    pending[x].push_back(
        Pending{seq, net.round(), half_num, half_den, pre_route, pre_climbing,
                hr.stranded});
    ++pending_total;
  }

  void on_round_end(sim::Network<SpsMsg>& net, sim::NodeId v) {
    if (!armed || pending[v].empty()) return;
    std::vector<Pending>& pv = pending[v];
    for (std::size_t i = 0; i < pv.size();) {
      if (net.round() < pv[i].sent_round + reclaim_after) {
        ++i;
        continue;
      }
      const Pending p = pv[i];  // take it out, then resend (hop() appends)
      pv[i] = pv.back();
      pv.pop_back();
      --pending_total;
      SpsMsg m;
      m.num = p.num;
      m.den = p.den;
      if (p.stranded) {
        // The stored route dead-ended at v itself: only a fresh route (new
        // target, full TTL) can make progress.
        m.route = router.begin_random(v, net.node_rng(v));
      } else {
        // Lost hop (or carrier death): resume from the pre-hop state, so
        // route progress survives and the retransmit adapts to liveness.
        m.route = p.route;
        m.climbing = p.climbing;
      }
      hop(net, v, std::move(m));
    }
  }

  /// Folds every outstanding custody slot back into its holder's own
  /// pair.  Called once after the drain: by then any slot still pending
  /// was never delivered (acks are same-round), so the fold restores the
  /// conservation law exactly -- mass a crashed node held stays lost,
  /// which is the physical outcome.
  void fold_back_pending() {
    if (!armed) return;
    for (sim::NodeId v : all_ids) {
      for (const Pending& p : pending[v]) {
        num[v] += p.num;
        den[v] += p.den;
      }
      pending[v].clear();
    }
    pending_total = 0;
  }

 private:
  void drop_pending(sim::NodeId v, std::uint32_t seq) {
    std::vector<Pending>& pv = pending[v];
    for (std::size_t i = 0; i < pv.size(); ++i) {
      if (pv[i].seq == seq) {
        pv[i] = pv.back();
        pv.pop_back();
        --pending_total;
        return;
      }
    }
  }
};

/// Runs `steps` initiation rounds with the protocol live, then drains
/// until the network is quiescent (every in-flight envelope has landed or
/// died), capped by the longest possible residual path.
template <class Msg, class P>
void run_then_drain(sim::Network<Msg>& net, P& proto, std::uint32_t steps,
                    std::uint32_t drain_cap) {
  for (std::uint32_t r = 0; r < steps; ++r) net.step(proto);
  for (std::uint32_t r = 0; r < drain_cap && !net.quiescent(); ++r) net.step(proto);
}

/// Residual-path bound: substrate route + tree climb + slack.
[[nodiscard]] std::uint32_t drain_cap(const SparseRouter& router, const Forest& forest,
                                      std::uint32_t slack) {
  return router.max_route_hops() + forest.max_tree_height() + slack + 2;
}

SparseGmResult run_sparse_gossip_max(std::uint32_t n, const SparseRouter& router,
                                     const Forest& forest,
                                     std::span<const std::uint64_t> init,
                                     const RngFactory& rngs, const sim::Scenario& scenario,
                                     const GossipMaxConfig& cfg,
                                     std::span<const std::uint64_t> init_aux = {}) {
  sim::Network<SgmMsg> net{n, rngs, scenario, derive_seed(0x59a2, cfg.stream_tag)};
  SparseGossipMaxProtocol proto{forest, router, scenario.faults.crash_free(), init,
                                init_aux, n};
  // Event-time latency stretches each routed G~ generation by the expected
  // call delay; scale the budgets (and the drain horizon, by the worst
  // case) to keep the completed-generation count.  Factor 1 at latency 0.
  const double lat = 1.0 + scenario.faults.latency.mean();
  const auto G = static_cast<std::uint32_t>(
      cfg.gossip_multiplier * static_cast<double>(ceil_log2(n)) * lat);
  const auto S = static_cast<std::uint32_t>(
      cfg.sampling_multiplier * static_cast<double>(ceil_log2(n)) * lat);
  const std::uint32_t cap = (1 + scenario.faults.latency.bound()) *
                            drain_cap(router, forest, cfg.drain_rounds);

  // Procedures are gated off before each drain: with roots still
  // initiating, the quiescence exit would be unreachable and the drain
  // rounds would silently double the configured O(log n) G~ budget.
  proto.procedure = SparseGossipMaxProtocol::Procedure::kGossip;
  run_then_drain(net, proto, G, 0);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kIdle;
  run_then_drain(net, proto, 0, cap);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kSampling;
  run_then_drain(net, proto, S, 0);
  proto.procedure = SparseGossipMaxProtocol::Procedure::kIdle;
  // Replies may chain one more routed leg; drain with double headroom.
  run_then_drain(net, proto, 0, 2 * cap);

  SparseGmResult result;
  result.key = std::move(proto.key);
  result.aux = std::move(proto.aux);
  result.counters = net.counters();
  result.rounds = net.counters().rounds;
  return result;
}

SparsePsResult run_sparse_push_sum(std::uint32_t n, const SparseRouter& router,
                                   const Forest& forest, std::span<const double> num0,
                                   std::span<const double> den0, const RngFactory& rngs,
                                   const sim::Scenario& scenario, const PushSumConfig& cfg) {
  sim::Network<SpsMsg> net{n, rngs, scenario, derive_seed(0x59b2, cfg.stream_tag)};
  SparsePushSumProtocol proto{forest,
                              router,
                              scenario.faults.crash_free(),
                              num0,
                              den0,
                              n,
                              cfg.hop_carry_ack,
                              scenario.faults.latency.bound()};
  // Latency compensation: a share initiated now only re-mixes after its
  // ~typical_route_hops() round trip, so the O(log n) initiation window is
  // scaled by (1 + typical/log2 n) to preserve the number of completed
  // mixing generations.  On Chord (typical = Theta(log n)) this is a
  // constant factor; message complexity stays O(n log n).
  // Armed lossy runs retransmit each lost hop after reclaim_after rounds,
  // stretching a route by an expected (1 + loss/(1-loss) * reclaim_after)
  // factor; scale the initiation window to keep the completed mixing
  // generations.  Exactly 1 unarmed or lossless, so pins are untouched.
  const double loss = scenario.faults.loss_prob;
  const double arq_scale =
      (proto.armed && loss > 0.0 && loss < 1.0)
          ? 1.0 + loss / (1.0 - loss) * static_cast<double>(proto.reclaim_after)
          : 1.0;
  const double latency_scale =
      (1.0 + static_cast<double>(router.typical_route_hops()) /
                 static_cast<double>(ceil_log2(n))) *
      (1.0 + scenario.faults.latency.mean());
  const std::uint32_t T = static_cast<std::uint32_t>(
                              cfg.rounds_multiplier * static_cast<double>(ceil_log2(n)) *
                              latency_scale * arq_scale) +
                          cfg.extra_rounds;

  proto.initiate = true;
  for (std::uint32_t r = 0; r < T; ++r) net.step(proto);
  proto.initiate = false;
  const std::uint32_t cap =
      (1 + scenario.faults.latency.bound()) * drain_cap(router, forest, T);
  if (!proto.armed) {
    run_then_drain(net, proto, 0, cap);
  } else {
    // Armed drain: quiescence alone is not enough -- parked custody
    // re-homes after its ack window, re-launching traffic.  Allow a few
    // reclaim generations, then fold whatever is still boxed in back into
    // its holder (conservation over reachability).
    const std::uint32_t armed_cap = 4 * (cap + proto.reclaim_after);
    for (std::uint32_t r = 0;
         r < armed_cap && !(net.quiescent() && proto.pending_total == 0); ++r) {
      net.step(proto);
    }
    proto.fold_back_pending();
  }

  SparsePsResult result;
  result.num = std::move(proto.num);
  result.den = std::move(proto.den);
  result.counters = net.counters();
  result.rounds = net.counters().rounds;
  return result;
}

// ---------------------------------------------------------------------------
// Shared pipeline scaffolding.

struct SparsePhase12 {
  LocalDrrResult drr;
  ConvergecastResult cc;
  BroadcastResult addr;
  std::uint32_t end_round = 0;  ///< global clock after Phase II
};

/// Phases I and II.  Each phase's Network starts where the previous one
/// stopped on the scenario's global clock, so one churn schedule spans
/// the whole pipeline.
SparsePhase12 run_sparse_phase12(const Graph& links, std::span<const double> values,
                                 ConvergecastOp op, const RngFactory& rngs,
                                 const sim::Scenario& scenario,
                                 const SparseGossipConfig& config) {
  SparsePhase12 p;
  std::uint32_t clock = scenario.start_round;
  p.drr = run_local_drr(links, rngs, scenario, config.local_drr);
  clock += p.drr.rounds;
  p.cc = run_convergecast(p.drr.forest, values, op, rngs, scenario.at_round(clock),
                          config.convergecast);
  clock += p.cc.rounds;
  std::vector<double>& addr_payload =
      support::scratch_buffer<double, kScratchAddrPayload>();
  addr_payload.assign(links.size(), 0.0);
  for (NodeId r : p.drr.forest.roots()) addr_payload[r] = static_cast<double>(r);
  BroadcastConfig addr_cfg = config.broadcast;
  addr_cfg.simultaneous_children = true;
  addr_cfg.stream_tag = derive_seed(addr_cfg.stream_tag, 1);
  p.addr = run_broadcast(p.drr.forest, addr_payload, rngs, scenario.at_round(clock),
                         addr_cfg);
  p.end_round = clock + p.addr.rounds;
  return p;
}

void fill_summary(const Forest& f, AggregateOutcome& out) {
  out.forest.num_trees = f.num_trees();
  out.forest.max_tree_size = f.max_tree_size();
  out.forest.max_tree_height = f.max_tree_height();
  out.forest.largest_tree_root = f.largest_tree_root();
  out.participating.assign(f.size(), false);
  for (NodeId v = 0; v < f.size(); ++v) out.participating[v] = f.is_member(v);
}

void sparse_finish(std::uint32_t n, const Forest& forest,
                   std::span<const double> root_value, const RngFactory& rngs,
                   const sim::Scenario& scenario, const SparseGossipConfig& config,
                   AggregateOutcome& out) {
  bool bc_incomplete = false;
  if (config.broadcast_result) {
    BroadcastConfig value_cfg = config.broadcast;
    value_cfg.simultaneous_children = true;
    value_cfg.stream_tag = derive_seed(value_cfg.stream_tag, 2);
    std::vector<double>& payload =
        support::scratch_buffer<double, kScratchValuePayload>();
    payload.assign(root_value.begin(), root_value.end());
    const BroadcastResult bc = run_broadcast(
        forest, payload, rngs,
        scenario.at_round(scenario.start_round + out.rounds_total), value_cfg);
    out.metrics.value_broadcast = bc.counters;
    out.rounds_total += bc.rounds;
    out.per_node = bc.received;
    bc_incomplete = !bc.complete;
  }

  // Consensus is judged among the roots that survive the *whole* run
  // (value-broadcast rounds included, so the reported value never
  // originates from a root the participating mask excludes): a root
  // crashed mid-run holds a frozen key that no live participant can
  // observe.  Fault-free and crash-only runs see every root, the
  // historical criterion.  The same mask prunes the participating set
  // (Phase I membership captures who was alive at the *start*).
  std::vector<bool> alive;
  if (scenario.faults.has_churn() || scenario.faults.has_blocks() ||
      scenario.faults.has_joins()) {
    alive = sim::survivor_mask(n, rngs, scenario.faults,
                               scenario.start_round + out.rounds_total);
    for (std::uint32_t v = 0; v < n; ++v)
      out.participating[v] = out.participating[v] && alive[v];
  }

  NodeId agree_root = kNoParent;  // largest surviving tree, ties to small id
  for (NodeId r : forest.roots()) {
    if (!alive.empty() && !alive[r]) continue;
    if (agree_root == kNoParent || forest.tree_size(r) > forest.tree_size(agree_root))
      agree_root = r;
  }
  if (agree_root == kNoParent) {  // every root died: no consensus to report
    out.consensus = false;
    return;
  }
  out.consensus = true;
  const double ref = root_value[agree_root];
  for (NodeId r : forest.roots()) {
    if (!alive.empty() && !alive[r]) continue;
    const double scale = std::max({std::fabs(ref), std::fabs(root_value[r]), 1.0});
    if (std::fabs(root_value[r] - ref) > kAgreeTolerance * scale) {
      out.consensus = false;
      break;
    }
  }
  out.value = ref;
  // Under mid-run deaths (churn or block outages) a tree whose root died
  // is legitimately cut off; the roots' agreement above is the consensus
  // criterion then.  Otherwise incompleteness means retry exhaustion.
  if (bc_incomplete && !scenario.faults.has_churn() && !scenario.faults.has_blocks())
    out.consensus = false;
}

// ---------------------------------------------------------------------------
// The two pipelines, generic in the (links graph, router) pair.

AggregateOutcome sparse_max_pipeline(std::uint32_t n, const Graph& links,
                                     const SparseRouter& router,
                                     std::span<const double> values, std::uint64_t seed,
                                     const sim::Scenario& scenario,
                                     const SparseGossipConfig& config) {
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kMax, rngs,
                                       scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;
  if (forest.roots().empty()) return out;

  std::vector<std::uint64_t>& keys =
      support::scratch_buffer<std::uint64_t, kScratchKeys>();
  keys.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) keys[r] = encode_ordered(p.cc.aggregate[r]);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 3);
  const SparseGmResult gm = run_sparse_gossip_max(
      n, router, forest, keys, rngs, scenario.at_round(p.end_round), gm_cfg);
  out.metrics.gossip = gm.counters;
  out.rounds_total += gm.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots()) root_value[r] = decode_ordered(gm.key[r]);
  sparse_finish(n, forest, root_value, rngs, scenario, config, out);
  return out;
}

AggregateOutcome sparse_ave_pipeline(std::uint32_t n, const Graph& links,
                                     const SparseRouter& router,
                                     std::span<const double> values, std::uint64_t seed,
                                     const sim::Scenario& scenario,
                                     const SparseGossipConfig& config) {
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kSum, rngs,
                                       scenario, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;
  if (forest.roots().empty()) return out;

  // Phase III(a): push-sum on (local sum, tree size).
  std::vector<double>& num0 = support::scratch_buffer<double, kScratchNum0>();
  std::vector<double>& den0 = support::scratch_buffer<double, kScratchDen0>();
  num0.assign(n, 0.0);
  den0.assign(n, 0.0);
  for (NodeId r : forest.roots()) {
    num0[r] = p.cc.aggregate[r];
    den0[r] = p.cc.weight[r];
  }
  PushSumConfig ps_cfg = config.push_sum;
  ps_cfg.stream_tag = derive_seed(ps_cfg.stream_tag, 5);
  const SparsePsResult ps = run_sparse_push_sum(
      n, router, forest, num0, den0, rngs, scenario.at_round(p.end_round), ps_cfg);
  out.metrics.gossip = ps.counters;
  out.rounds_total += ps.rounds;

  // Phase III(b): elect-and-spread.  Algorithm 8 first elects z (gossip-
  // max on (tree size, id)), then data-spreads z's estimate; that shape
  // deadlocks under churn when z crashes after its winning key circulated
  // -- no live root believes it is z and nothing spreads.  Fused here:
  // every root spreads (size-key, own estimate) and the estimate rides
  // the key through every max-merge, so all roots converge on the
  // estimate of the largest root that actually managed to spread -- z
  // itself whenever z survives, byte for byte the paper's outcome -- one
  // whole gossip phase cheaper, and immune to z's death.
  std::vector<std::uint64_t>& spread_keys =
      support::scratch_buffer<std::uint64_t, kScratchSpreadKeys>();
  std::vector<std::uint64_t>& spread_aux =
      support::scratch_buffer<std::uint64_t, kScratchSpreadAux>();
  spread_keys.assign(n, kKeyBottom);
  spread_aux.assign(n, 0);
  for (NodeId r : forest.roots()) {
    if (ps.den[r] > 0.0) {
      spread_keys[r] = encode_size_id(static_cast<std::uint32_t>(p.cc.weight[r]), r);
      spread_aux[r] = encode_ordered(ps.num[r] / ps.den[r]);
    }
  }
  GossipMaxConfig spread_cfg = config.gossip_max;
  spread_cfg.stream_tag = derive_seed(spread_cfg.stream_tag, 6);
  const SparseGmResult spread = run_sparse_gossip_max(
      n, router, forest, spread_keys, rngs,
      scenario.at_round(p.end_round + ps.rounds), spread_cfg, spread_aux);
  out.metrics.spread = spread.counters;
  out.rounds_total += spread.rounds;

  std::vector<double>& root_value =
      support::scratch_buffer<double, kScratchRootValue>();
  root_value.assign(n, 0.0);
  for (NodeId r : forest.roots())
    root_value[r] = spread.key[r] == kKeyBottom ? 0.0 : decode_ordered(spread.aux[r]);
  sparse_finish(n, forest, root_value, rngs, scenario, config, out);
  return out;
}

void check_chord_args(const ChordOverlay& chord, const Graph& links,
                      const sim::Scenario& scenario) {
  if (links.size() != chord.size())
    throw std::invalid_argument("sparse_drr_gossip: graph/overlay mismatch");
  if (!scenario.topology.is_complete())
    throw std::invalid_argument(
        "sparse_drr_gossip: the Chord overlay is the substrate; scenario.topology "
        "must be complete");
}

[[nodiscard]] const Graph& substrate_graph(const sim::Scenario& scenario) {
  if (scenario.topology.is_complete())
    throw std::invalid_argument(
        "sparse_drr_gossip: explicit substrate required (use drr_gossip_* on the "
        "complete topology)");
  if (scenario.topology.graph() == nullptr)
    throw std::invalid_argument(
        "sparse_drr_gossip: the sparse pipeline walks real adjacency and needs "
        "the CSR backend (TopologyBackend::kCsr), not an implicit topology");
  return *scenario.topology.graph();
}

}  // namespace

AggregateOutcome sparse_drr_gossip_max(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  check_chord_args(chord, links, scenario);
  return sparse_max_pipeline(chord.size(), links, SparseRouter::on_chord(chord), values,
                             seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_ave(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  check_chord_args(chord, links, scenario);
  return sparse_ave_pipeline(chord.size(), links, SparseRouter::on_chord(chord), values,
                             seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_max(std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  const Graph& g = substrate_graph(scenario);
  return sparse_max_pipeline(g.size(), g, SparseRouter::on_substrate(scenario.topology),
                             values, seed, scenario, config);
}

AggregateOutcome sparse_drr_gossip_ave(std::span<const double> values, std::uint64_t seed,
                                       const sim::Scenario& scenario,
                                       const SparseGossipConfig& config) {
  const Graph& g = substrate_graph(scenario);
  return sparse_ave_pipeline(g.size(), g, SparseRouter::on_substrate(scenario.topology),
                             values, seed, scenario, config);
}

}  // namespace drrg
