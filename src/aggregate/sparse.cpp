#include "aggregate/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "aggregate/routed_transport.hpp"
#include "rootgossip/ordered_key.hpp"
#include "support/mathutil.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

namespace drrg {

Graph overlay_graph(const ChordOverlay& chord) {
  std::set<std::pair<NodeId, NodeId>> edges;
  auto add = [&edges](NodeId a, NodeId b) {
    if (a == b) return;
    edges.insert({std::min(a, b), std::max(a, b)});
  };
  for (NodeId v = 0; v < chord.size(); ++v) {
    add(v, chord.successor(v));
    for (std::uint32_t k = 0; k < chord.ring_bits(); ++k) add(v, chord.finger(v, k));
  }
  return Graph::from_edges(chord.size(),
                           std::vector<std::pair<NodeId, NodeId>>(edges.begin(), edges.end()));
}

namespace {

constexpr double kAgreeTolerance = 1e-9;

// ---------------------------------------------------------------------------
// Routed Gossip-max over the forest roots.

struct GmPayload {
  enum class Kind : std::uint8_t { kGossip, kInquiry, kReply };
  Kind kind;
  std::uint64_t key = 0;
  NodeId origin = kNoParent;
};

struct SparseGmResult {
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> key_after_gossip;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

SparseGmResult sparse_gossip_max(const ChordOverlay& chord, const Forest& forest,
                                 std::span<const std::uint64_t> init,
                                 const RngFactory& rngs, double loss,
                                 const GossipMaxConfig& cfg) {
  const std::uint32_t n = forest.size();
  SparseGmResult result;
  result.key.assign(n, kKeyBottom);
  for (NodeId r : forest.roots()) result.key[r] = init[r];

  const std::uint32_t bits = 64 + 2 * address_bits(n);
  RoutedTransport<GmPayload> transport{
      chord, forest, loss,
      rngs.engine_stream(derive_seed(0x59a2, cfg.stream_tag)), bits};
  std::vector<Rng> root_rng;
  root_rng.reserve(forest.roots().size());
  std::vector<std::uint32_t> root_slot(n, 0);
  for (std::uint32_t i = 0; i < forest.roots().size(); ++i) {
    root_slot[forest.roots()[i]] = i;
    root_rng.push_back(rngs.node_stream(forest.roots()[i], derive_seed(0x59a3, cfg.stream_tag)));
  }

  const auto G = static_cast<std::uint32_t>(cfg.gossip_multiplier *
                                            static_cast<double>(ceil_log2(n)));
  const auto S = static_cast<std::uint32_t>(cfg.sampling_multiplier *
                                            static_cast<double>(ceil_log2(n)));

  auto handle = [&](NodeId dst, const GmPayload& m, std::uint32_t now) {
    switch (m.kind) {
      case GmPayload::Kind::kGossip:
      case GmPayload::Kind::kReply:
        result.key[dst] = std::max(result.key[dst], m.key);
        break;
      case GmPayload::Kind::kInquiry:
        transport.send_to_root_direct(dst, m.origin,
                                      GmPayload{GmPayload::Kind::kReply, result.key[dst],
                                                kNoParent},
                                      now);
        break;
    }
  };

  std::uint32_t t = 0;
  // Gossip procedure, then drain in-flight messages.
  while (t < G || !transport.idle()) {
    for (auto& [dst, m] : transport.collect(t)) handle(dst, m, t);
    if (t < G)
      for (NodeId r : forest.roots())
        transport.send_to_random_root(
            r, GmPayload{GmPayload::Kind::kGossip, result.key[r], kNoParent}, t,
            root_rng[root_slot[r]]);
    ++t;
  }
  result.key_after_gossip = result.key;

  // Sampling procedure, then drain (replies may trigger further sends, so
  // the loop keeps collecting until the transport is quiet).
  const std::uint32_t base = t;
  while (t < base + S || !transport.idle()) {
    for (auto& [dst, m] : transport.collect(t)) handle(dst, m, t);
    if (t < base + S)
      for (NodeId r : forest.roots())
        transport.send_to_random_root(r, GmPayload{GmPayload::Kind::kInquiry, 0, r}, t,
                                      root_rng[root_slot[r]]);
    ++t;
  }

  result.counters = transport.counters();
  result.counters.rounds = t;
  result.rounds = t;
  return result;
}

// ---------------------------------------------------------------------------
// Routed push-sum over the forest roots.

struct PsPayload {
  double num = 0.0;
  double den = 0.0;
};

struct SparsePsResult {
  std::vector<double> num;
  std::vector<double> den;
  sim::Counters counters;
  std::uint32_t rounds = 0;
};

SparsePsResult sparse_push_sum(const ChordOverlay& chord, const Forest& forest,
                               std::span<const double> num0, std::span<const double> den0,
                               const RngFactory& rngs, double loss,
                               const PushSumConfig& cfg) {
  const std::uint32_t n = forest.size();
  SparsePsResult result;
  result.num.assign(n, 0.0);
  result.den.assign(n, 0.0);
  for (NodeId r : forest.roots()) {
    result.num[r] = num0[r];
    result.den[r] = den0[r];
  }

  const std::uint32_t bits = 2 * 64 + address_bits(n);
  RoutedTransport<PsPayload> transport{
      chord, forest, loss,
      rngs.engine_stream(derive_seed(0x59b2, cfg.stream_tag)), bits};
  std::vector<Rng> root_rng;
  std::vector<std::uint32_t> root_slot(n, 0);
  for (std::uint32_t i = 0; i < forest.roots().size(); ++i) {
    root_slot[forest.roots()[i]] = i;
    root_rng.push_back(rngs.node_stream(forest.roots()[i], derive_seed(0x59b3, cfg.stream_tag)));
  }

  const std::uint32_t T = static_cast<std::uint32_t>(
                              cfg.rounds_multiplier * static_cast<double>(ceil_log2(n))) +
                          cfg.extra_rounds;

  std::uint32_t t = 0;
  while (t < T || !transport.idle()) {
    for (auto& [dst, m] : transport.collect(t)) {
      result.num[dst] += m.num;
      result.den[dst] += m.den;
    }
    if (t < T) {
      for (NodeId r : forest.roots()) {
        result.num[r] *= 0.5;
        result.den[r] *= 0.5;
        transport.send_to_random_root(r, PsPayload{result.num[r], result.den[r]}, t,
                                      root_rng[root_slot[r]]);
      }
    }
    ++t;
  }

  result.counters = transport.counters();
  result.counters.rounds = t;
  result.rounds = t;
  return result;
}

// ---------------------------------------------------------------------------
// Shared pipeline scaffolding.

struct SparsePhase12 {
  LocalDrrResult drr;
  ConvergecastResult cc;
  BroadcastResult addr;
};

SparsePhase12 run_sparse_phase12(const Graph& links, std::span<const double> values,
                                 ConvergecastOp op, const RngFactory& rngs,
                                 sim::FaultModel faults, const SparseGossipConfig& config) {
  SparsePhase12 p;
  p.drr = run_local_drr(links, rngs, faults, config.local_drr);
  p.cc = run_convergecast(p.drr.forest, values, op, rngs, faults, config.convergecast);
  std::vector<double> addr_payload(links.size(), 0.0);
  for (NodeId r : p.drr.forest.roots()) addr_payload[r] = static_cast<double>(r);
  BroadcastConfig addr_cfg = config.broadcast;
  addr_cfg.simultaneous_children = true;
  addr_cfg.stream_tag = derive_seed(addr_cfg.stream_tag, 1);
  p.addr = run_broadcast(p.drr.forest, addr_payload, rngs, faults, addr_cfg);
  return p;
}

void fill_summary(const Forest& f, AggregateOutcome& out) {
  out.forest.num_trees = f.num_trees();
  out.forest.max_tree_size = f.max_tree_size();
  out.forest.max_tree_height = f.max_tree_height();
  out.forest.largest_tree_root = f.largest_tree_root();
  out.participating.assign(f.size(), false);
  for (NodeId v = 0; v < f.size(); ++v) out.participating[v] = f.is_member(v);
}

void sparse_finish(const Forest& forest, std::span<const double> root_value,
                   const RngFactory& rngs, sim::FaultModel faults,
                   const SparseGossipConfig& config, AggregateOutcome& out) {
  out.consensus = true;
  const double ref = root_value[forest.roots().front()];
  for (NodeId r : forest.roots()) {
    const double scale = std::max({std::fabs(ref), std::fabs(root_value[r]), 1.0});
    if (std::fabs(root_value[r] - ref) > kAgreeTolerance * scale) {
      out.consensus = false;
      break;
    }
  }
  out.value = root_value[out.forest.largest_tree_root];

  if (config.broadcast_result) {
    BroadcastConfig value_cfg = config.broadcast;
    value_cfg.simultaneous_children = true;
    value_cfg.stream_tag = derive_seed(value_cfg.stream_tag, 2);
    std::vector<double> payload(root_value.begin(), root_value.end());
    const BroadcastResult bc = run_broadcast(forest, payload, rngs, faults, value_cfg);
    out.metrics.value_broadcast = bc.counters;
    out.rounds_total += bc.rounds;
    out.per_node = bc.received;
    if (!bc.complete) out.consensus = false;
  }
}

}  // namespace

AggregateOutcome sparse_drr_gossip_max(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       sim::FaultModel faults,
                                       const SparseGossipConfig& config) {
  const std::uint32_t n = chord.size();
  if (links.size() != n) throw std::invalid_argument("sparse_drr_gossip: graph/overlay mismatch");
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kMax, rngs, faults, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;

  std::vector<std::uint64_t> keys(n, kKeyBottom);
  for (NodeId r : forest.roots()) keys[r] = encode_ordered(p.cc.aggregate[r]);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 3);
  const SparseGmResult gm =
      sparse_gossip_max(chord, forest, keys, rngs, faults.loss_prob, gm_cfg);
  out.metrics.gossip = gm.counters;
  out.rounds_total += gm.rounds;

  std::vector<double> root_value(n, 0.0);
  for (NodeId r : forest.roots()) root_value[r] = decode_ordered(gm.key[r]);
  sparse_finish(forest, root_value, rngs, faults, config, out);
  return out;
}

AggregateOutcome sparse_drr_gossip_ave(const ChordOverlay& chord, const Graph& links,
                                       std::span<const double> values, std::uint64_t seed,
                                       sim::FaultModel faults,
                                       const SparseGossipConfig& config) {
  const std::uint32_t n = chord.size();
  if (links.size() != n) throw std::invalid_argument("sparse_drr_gossip: graph/overlay mismatch");
  if (values.size() < n) throw std::invalid_argument("sparse_drr_gossip: values too short");
  RngFactory rngs{seed};

  SparsePhase12 p = run_sparse_phase12(links, values, ConvergecastOp::kSum, rngs, faults, config);
  const Forest& forest = p.drr.forest;

  AggregateOutcome out;
  fill_summary(forest, out);
  out.metrics.drr = p.drr.counters;
  out.metrics.convergecast = p.cc.counters;
  out.metrics.root_broadcast = p.addr.counters;
  out.rounds_total = p.drr.rounds + p.cc.rounds + p.addr.rounds;

  // Elect z on (tree size, id) keys.
  std::vector<std::uint64_t> size_keys(n, kKeyBottom);
  for (NodeId r : forest.roots())
    size_keys[r] = encode_size_id(static_cast<std::uint32_t>(p.cc.weight[r]), r);
  GossipMaxConfig gm_cfg = config.gossip_max;
  gm_cfg.stream_tag = derive_seed(gm_cfg.stream_tag, 4);
  const SparseGmResult election =
      sparse_gossip_max(chord, forest, size_keys, rngs, faults.loss_prob, gm_cfg);
  sim::Counters gossip_counters = election.counters;
  std::uint32_t gossip_rounds = election.rounds;

  // Push-sum on (local sum, tree size).
  std::vector<double> num0(n, 0.0), den0(n, 0.0);
  for (NodeId r : forest.roots()) {
    num0[r] = p.cc.aggregate[r];
    den0[r] = p.cc.weight[r];
  }
  PushSumConfig ps_cfg = config.push_sum;
  ps_cfg.stream_tag = derive_seed(ps_cfg.stream_tag, 5);
  const SparsePsResult ps =
      sparse_push_sum(chord, forest, num0, den0, rngs, faults.loss_prob, ps_cfg);
  gossip_counters += ps.counters;
  gossip_rounds += ps.rounds;
  out.metrics.gossip = gossip_counters;
  out.rounds_total += gossip_rounds;

  // Data-spread from the believed-largest root(s).
  std::vector<std::uint64_t> spread_init(n, kKeyBottom);
  for (NodeId r : forest.roots()) {
    if (election.key[r] == size_keys[r] && ps.den[r] > 0.0)
      spread_init[r] = encode_ordered(ps.num[r] / ps.den[r]);
  }
  GossipMaxConfig spread_cfg = config.gossip_max;
  spread_cfg.stream_tag = derive_seed(spread_cfg.stream_tag, 6);
  const SparseGmResult spread =
      sparse_gossip_max(chord, forest, spread_init, rngs, faults.loss_prob, spread_cfg);
  out.metrics.spread = spread.counters;
  out.rounds_total += spread.rounds;

  std::vector<double> root_value(n, 0.0);
  for (NodeId r : forest.roots())
    root_value[r] = spread.key[r] == kKeyBottom ? 0.0 : decode_ordered(spread.key[r]);
  sparse_finish(forest, root_value, rngs, faults, config, out);
  return out;
}

}  // namespace drrg
