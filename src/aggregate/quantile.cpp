#include "aggregate/quantile.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace drrg {

QuantileOutcome drr_gossip_quantile(std::uint32_t n, std::span<const double> values,
                                    double q, std::uint64_t seed,
                                    const sim::Scenario& scenario,
                                    const QuantileConfig& config) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");

  QuantileOutcome out;
  auto absorb = [&out](const AggregateOutcome& r) {
    out.total += r.metrics.total();
    ++out.pipeline_runs;
  };

  // Every sub-run shares the *same* root seed, so all of them draw the
  // same crash set / fault timeline (a purpose-independent function of the
  // root seed): the model crashes each node at most once, for the whole
  // logical query.  Per-sub-run randomness is decorrelated through the
  // config stream tags instead of fresh root seeds.
  auto sub_config = [&config](std::uint64_t k) {
    return with_stream_salt(config.pipeline, k + 1);
  };

  // Bracket the domain with Min/Max runs, then count participants.  The
  // three runs are independent (each is a pure function of its salted
  // config), so they fan onto the deterministic executor; results are
  // absorbed in fixed index order, bit-identical for any thread count.
  std::vector<AggregateOutcome> bracket =
      parallel_map(3, config.threads, [&](std::size_t i) {
        switch (i) {
          case 0: return drr_gossip_min(n, values, seed, scenario, sub_config(0));
          case 1: return drr_gossip_max(n, values, seed, scenario, sub_config(1));
          default: return drr_gossip_count(n, seed, scenario, sub_config(2));
        }
      });
  const AggregateOutcome& lo_run = bracket[0];
  const AggregateOutcome& hi_run = bracket[1];
  const AggregateOutcome& count_run = bracket[2];
  absorb(lo_run);
  absorb(hi_run);
  absorb(count_run);
  out.participating = count_run.participating;

  double lo = lo_run.value;
  double hi = hi_run.value;
  const double target_rank = q * count_run.value;

  out.value = (lo + hi) / 2.0;
  out.achieved_rank = 0.0;
  for (std::uint32_t it = 0; it < config.iterations && lo < hi; ++it) {
    const double mid = lo + (hi - lo) / 2.0;
    if (mid <= lo || mid >= hi) break;  // domain exhausted (denormal gap)
    const AggregateOutcome rank_run =
        drr_gossip_rank(n, values, mid, seed, scenario, sub_config(3 + it));
    absorb(rank_run);
    out.value = mid;
    out.achieved_rank = rank_run.value;
    if (rank_run.value < target_rank) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return out;
}

QuantileOutcome drr_gossip_median(std::uint32_t n, std::span<const double> values,
                                  std::uint64_t seed, const sim::Scenario& scenario,
                                  const QuantileConfig& config) {
  return drr_gossip_quantile(n, values, 0.5, seed, scenario, config);
}

}  // namespace drrg
