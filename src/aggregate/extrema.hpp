#pragma once
// Loss-robust Count/Sum via extrema propagation (Mosk-Aoyama & Shah,
// "Computing separable functions via gossip", PODC 2006 -- reference [16]
// of the paper), composed with the DRR-gossip machinery.
//
// Motivation: the push-sum Sum/Count variants concentrate the denominator
// mass on a single root, so one lost message early in Phase III can shift
// the estimate by a large factor (see EXPERIMENTS.md).  Extrema
// propagation replaces mass-splitting with *minimum diffusion*, which --
// like Max -- is idempotent and therefore immune to message loss and
// duplication:
//
//   * every node draws k independent exponentials; for Count with rate 1,
//     for Sum with rate v_i (values must be positive);
//   * the componentwise minimum over all nodes is distributed
//     Exp(n) resp. Exp(sum v_i), and diffuses through exactly the same
//     three phases as Max: convergecast-min up the DRR trees, then
//     root gossip with componentwise-min absorption;
//   * each root estimates n (resp. the sum) as (k-1) / sum_j min_j --
//     the unbiased inverse-Gamma estimator with relative standard error
//     1/sqrt(k-2).
//
// Trade-off: messages carry k values instead of one, so the message-size
// cap becomes O(k log s) bits -- the known cost of the scheme (we default
// k to 4 log2 n, giving ~1/sqrt(4 log n) relative error).  Message
// *counts* keep the DRR-gossip O(n log log n) shape.

#include <cstdint>
#include <span>

#include "rootgossip/gossip_max.hpp"
#include "sim/counters.hpp"
#include "sim/scenario.hpp"

namespace drrg {

struct ExtremaConfig {
  /// Number of exponentials per node; 0 = 4 * ceil(log2 n).
  std::uint32_t k = 0;
  /// Phase III schedule (reuses the Gossip-max multipliers).
  GossipMaxConfig gossip;
};

struct ExtremaOutcome {
  double estimate = 0.0;       ///< consensus estimate of Count / Sum
  double predicted_rse = 0.0;  ///< 1/sqrt(k-2): expected relative std error
  bool consensus = false;      ///< all roots share the final min-vector
  std::uint32_t k = 0;
  sim::Counters counters;      ///< all phases
  std::uint32_t rounds_total = 0;
};

/// Number of alive nodes, robust to message loss.
[[nodiscard]] ExtremaOutcome drr_gossip_count_extrema(std::uint32_t n, std::uint64_t seed,
                                                      const sim::Scenario& scenario = {},
                                                      ExtremaConfig config = {});

/// Sum of strictly positive values, robust to message loss.  Throws
/// std::invalid_argument if any participating value is <= 0.
[[nodiscard]] ExtremaOutcome drr_gossip_sum_extrema(std::uint32_t n,
                                                    std::span<const double> values,
                                                    std::uint64_t seed,
                                                    const sim::Scenario& scenario = {},
                                                    ExtremaConfig config = {});

}  // namespace drrg
