#pragma once
// Quantile/median estimation on top of DRR-gossip (the "Rank" aggregate
// family of §1).  Kempe et al. [9] estimate quantiles by repeated rank
// queries; we follow the same scheme with DRR-gossip as the rank engine:
// binary-search the value domain, each probe costing one full
// DRR-gossip-rank run (O(log n) rounds, O(n log log n) messages), so a
// quantile costs O(log(range/tolerance)) pipeline runs.

#include <cstdint>
#include <span>
#include <vector>

#include "aggregate/drr_gossip.hpp"

namespace drrg {

struct QuantileConfig {
  /// Bisection iterations on the value domain.
  std::uint32_t iterations = 40;
  /// Worker threads for the *independent* sub-runs (the Min/Max/Count
  /// bracket).  The bisection itself is inherently sequential.  1 = run
  /// inline; 0 = one thread per hardware core.  Any value is
  /// bit-identical (the sub-runs are pure functions of their salted
  /// configs); api::run_trials threads its leftover budget through here
  /// via RunSpec::intra_threads.
  unsigned threads = 1;
  DrrGossipConfig pipeline;
};

struct QuantileOutcome {
  double value = 0.0;          ///< estimated q-quantile
  double achieved_rank = 0.0;  ///< rank of `value` per the final query
  sim::Counters total;         ///< cost across all pipeline runs
  std::uint32_t pipeline_runs = 0;
  /// Alive mask shared by every sub-run (all sub-runs draw the same crash
  /// set because they share one root seed; see quantile.cpp).
  std::vector<bool> participating;
};

/// Estimates the q-quantile (q in [0,1]) of values over alive nodes.
/// Deterministic in (n, seed, q, scenario, config).  All sub-runs share
/// the root seed (hence one crash set); each derives distinct protocol
/// randomness via config stream tags.
[[nodiscard]] QuantileOutcome drr_gossip_quantile(std::uint32_t n,
                                                  std::span<const double> values,
                                                  double q, std::uint64_t seed,
                                                  const sim::Scenario& scenario = {},
                                                  const QuantileConfig& config = {});

/// Median: quantile(0.5).
[[nodiscard]] QuantileOutcome drr_gossip_median(std::uint32_t n,
                                                std::span<const double> values,
                                                std::uint64_t seed,
                                                const sim::Scenario& scenario = {},
                                                const QuantileConfig& config = {});

}  // namespace drrg
