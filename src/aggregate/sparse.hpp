#pragma once
// DRR-gossip on sparse networks (§4): Local-DRR + tree aggregation +
// routed root gossip, executed end to end on the shared sim::Engine.
//
// Theorem 14 (instantiated for Chord, T = M = O(log n)): the pipeline
// takes O(log^2 n) time and O(n log n) messages whp, versus
// O(log^2 n) time and O(n log^2 n) messages for uniform gossip -- the
// log n message reduction comes from gossiping among O(n / d) = O(n / log n)
// roots instead of all n nodes.
//
//   Phase I    Local-DRR       O(1) time*, O(|E|) messages
//   Phase II   Convergecast + broadcast along tree (overlay) edges,
//              O(log n) time by Theorem 11, O(n) messages
//   Phase III  root gossip, O(log n) G~-rounds x O(T) routed hops each
//
// (*plus the constant-round loss-resilient rank re-exchange.)
//
// Phase III runs on sim::Network: every logical G~ send is expanded into
// real hop-by-hop envelopes (substrate routing via SparseRouter, then the
// tree walk up to the landing node's root), so mid-run churn kills
// intermediate carriers, per-hop loss comes from the engine's loss coin,
// and one global round clock spans all phases -- the full sim::Scenario
// fault schedule applies exactly as it does to every other family.
//
// Two substrate shapes are supported:
//   * the Chord overlay of §4 (sparse_drr_gossip_* overloads taking a
//     ChordOverlay) -- greedy finger routing + successor smear;
//   * any explicit sim::Topology (grid, torus, random-regular, ...) --
//     Local-DRR runs on the substrate's CSR adjacency and Phase III
//     routes by coordinates (grids) or a Theta(log n) random walk.
//     Because the routed sampler is (near-)uniform over V, the root
//     push-sum mixes like the complete graph instead of diffusing along
//     the lattice -- this is the accurate sparse Ave that the dense
//     pipeline's member-relay push-sum (Theta(diam^2) mixing) cannot
//     reach at an O(diam log n) budget.

#include <cstdint>
#include <span>

#include "aggregate/types.hpp"
#include "chord/chord.hpp"
#include "drr/local_drr.hpp"
#include "topology/graph.hpp"

namespace drrg {

/// The overlay's link graph: successor + finger edges.  Local-DRR and the
/// tree phases run on these edges.
[[nodiscard]] Graph overlay_graph(const ChordOverlay& chord);

struct SparseGossipConfig {
  LocalDrrConfig local_drr;
  ConvergecastConfig convergecast;
  BroadcastConfig broadcast;  ///< simultaneous_children is forced on (§4 A1)
  GossipMaxConfig gossip_max;
  PushSumConfig push_sum;
  bool broadcast_result = true;
};

/// Maximum over alive nodes on the Chord overlay.  `scenario` supplies
/// the full fault schedule (loss + start-time crashes + mid-run churn);
/// its topology must be complete -- the overlay *is* the substrate.
[[nodiscard]] AggregateOutcome sparse_drr_gossip_max(const ChordOverlay& chord,
                                                     const Graph& links,
                                                     std::span<const double> values,
                                                     std::uint64_t seed,
                                                     const sim::Scenario& scenario = {},
                                                     const SparseGossipConfig& config = {});

/// Average over alive nodes on the Chord overlay (Algorithm 8 shape).
[[nodiscard]] AggregateOutcome sparse_drr_gossip_ave(const ChordOverlay& chord,
                                                     const Graph& links,
                                                     std::span<const double> values,
                                                     std::uint64_t seed,
                                                     const sim::Scenario& scenario = {},
                                                     const SparseGossipConfig& config = {});

/// Maximum over alive nodes on an explicit substrate: Local-DRR on
/// scenario.topology's CSR adjacency, Phase III routed on the substrate.
/// Throws std::invalid_argument when the topology is complete (use the
/// dense drr_gossip_max there).
[[nodiscard]] AggregateOutcome sparse_drr_gossip_max(std::span<const double> values,
                                                     std::uint64_t seed,
                                                     const sim::Scenario& scenario,
                                                     const SparseGossipConfig& config = {});

/// Average over alive nodes on an explicit substrate (accurate Ave via
/// tree aggregation + routed root push-sum).
[[nodiscard]] AggregateOutcome sparse_drr_gossip_ave(std::span<const double> values,
                                                     std::uint64_t seed,
                                                     const sim::Scenario& scenario,
                                                     const SparseGossipConfig& config = {});

}  // namespace drrg
