#pragma once
// DRR-gossip on sparse networks (§4): Local-DRR + tree aggregation +
// routed root gossip on a Chord overlay.
//
// Theorem 14 (instantiated for Chord, T = M = O(log n)): the pipeline
// takes O(log^2 n) time and O(n log n) messages whp, versus
// O(log^2 n) time and O(n log^2 n) messages for uniform gossip -- the
// log n message reduction comes from gossiping among O(n / d) = O(n / log n)
// roots instead of all n nodes.
//
//   Phase I    Local-DRR       O(1) time*, O(|E|) messages
//   Phase II   Convergecast + broadcast along tree (overlay) edges,
//              O(log n) time by Theorem 11, O(n) messages
//   Phase III  root gossip, O(log n) G~-rounds x O(log n) hops each
//
// (*plus the constant-round loss-resilient rank re-exchange.)

#include <cstdint>
#include <span>

#include "aggregate/types.hpp"
#include "chord/chord.hpp"
#include "drr/local_drr.hpp"
#include "topology/graph.hpp"

namespace drrg {

/// The overlay's link graph: successor + finger edges.  Local-DRR and the
/// tree phases run on these edges.
[[nodiscard]] Graph overlay_graph(const ChordOverlay& chord);

struct SparseGossipConfig {
  LocalDrrConfig local_drr;
  ConvergecastConfig convergecast;
  BroadcastConfig broadcast;  ///< simultaneous_children is forced on (§4 A1)
  GossipMaxConfig gossip_max;
  PushSumConfig push_sum;
  bool broadcast_result = true;
};

/// Maximum over alive nodes on the Chord overlay.
[[nodiscard]] AggregateOutcome sparse_drr_gossip_max(const ChordOverlay& chord,
                                                     const Graph& links,
                                                     std::span<const double> values,
                                                     std::uint64_t seed,
                                                     sim::FaultModel faults = {},
                                                     const SparseGossipConfig& config = {});

/// Average over alive nodes on the Chord overlay (Algorithm 8 shape).
[[nodiscard]] AggregateOutcome sparse_drr_gossip_ave(const ChordOverlay& chord,
                                                     const Graph& links,
                                                     std::span<const double> values,
                                                     std::uint64_t seed,
                                                     sim::FaultModel faults = {},
                                                     const SparseGossipConfig& config = {});

}  // namespace drrg
