// End-to-end tests of the DRR-gossip pipelines (Algorithms 7 and 8) --
// the library's public API.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "aggregate/drr_gossip.hpp"
#include "aggregate/quantile.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

std::vector<double> make_values(std::uint32_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_uniform(-25.0, 75.0);
  return v;
}

struct TrueAggregates {
  double max, min, sum, ave;
  std::uint32_t count;
};

TrueAggregates over_participants(const std::vector<double>& values,
                                 const std::vector<bool>& participating) {
  TrueAggregates t{-1e300, 1e300, 0.0, 0.0, 0};
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (!participating[v]) continue;
    t.max = std::max(t.max, values[v]);
    t.min = std::min(t.min, values[v]);
    t.sum += values[v];
    ++t.count;
  }
  t.ave = t.sum / t.count;
  return t;
}

// ---------------------------------------------------------------------------
// Exactness at delta = 0 over an (n, seed) grid.

class Pipelines
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(Pipelines, MaxExactWithConsensus) {
  const auto [n, seed] = GetParam();
  const auto values = make_values(n, seed);
  const auto r = drr_gossip_max(n, values, seed);
  const auto t = over_participants(values, r.participating);
  EXPECT_DOUBLE_EQ(r.value, t.max);
  EXPECT_TRUE(r.consensus);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (r.participating[v]) {
      ASSERT_DOUBLE_EQ(r.per_node[v], t.max);
    }
  }
}

TEST_P(Pipelines, MinExactWithConsensus) {
  const auto [n, seed] = GetParam();
  const auto values = make_values(n, seed + 1);
  const auto r = drr_gossip_min(n, values, seed);
  const auto t = over_participants(values, r.participating);
  EXPECT_DOUBLE_EQ(r.value, t.min);
  EXPECT_TRUE(r.consensus);
}

TEST_P(Pipelines, AveAccurate) {
  const auto [n, seed] = GetParam();
  const auto values = make_values(n, seed + 2);
  const auto r = drr_gossip_ave(n, values, seed);
  const auto t = over_participants(values, r.participating);
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.value, t.ave, 1e-3 * std::max(1.0, std::fabs(t.ave)));
}

TEST_P(Pipelines, SumAccurate) {
  const auto [n, seed] = GetParam();
  const auto values = make_values(n, seed + 3);
  const auto r = drr_gossip_sum(n, values, seed);
  const auto t = over_participants(values, r.participating);
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.value, t.sum, 1e-3 * std::max(1.0, std::fabs(t.sum)));
}

TEST_P(Pipelines, CountAccurate) {
  const auto [n, seed] = GetParam();
  const auto r = drr_gossip_count(n, seed);
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.value, static_cast<double>(n), 0.05 * n + 1.0);
}

TEST_P(Pipelines, RankAccurate) {
  const auto [n, seed] = GetParam();
  const auto values = make_values(n, seed + 4);
  const double x = 25.0;  // mid-range threshold
  const auto r = drr_gossip_rank(n, values, x, seed);
  double true_rank = 0;
  for (std::uint32_t v = 0; v < n; ++v)
    if (r.participating[v] && values[v] < x) ++true_rank;
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.value, true_rank, 0.02 * n + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, Pipelines,
                         ::testing::Combine(::testing::Values(64u, 256u, 1024u),
                                            ::testing::Values(1ull, 2ull, 3ull)));

// ---------------------------------------------------------------------------
// Fault tolerance (§2 model: delta < 1/8 loss, initial crashes).

class FaultyPipelines : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultyPipelines, MaxExactUnderModelLoss) {
  const std::uint64_t seed = GetParam();
  const std::uint32_t n = 1024;
  const auto values = make_values(n, seed);
  const auto r = drr_gossip_max(n, values, seed, sim::FaultModel{0.125, 0.0});
  const auto t = over_participants(values, r.participating);
  EXPECT_DOUBLE_EQ(r.value, t.max);
  EXPECT_TRUE(r.consensus);
}

TEST_P(FaultyPipelines, AveAccurateUnderModelLoss) {
  const std::uint64_t seed = GetParam();
  const std::uint32_t n = 1024;
  const auto values = make_values(n, seed + 9);
  DrrGossipConfig cfg;
  cfg.push_sum.rounds_multiplier = 8.0;  // loss slows convergence
  const auto r = drr_gossip_ave(n, values, seed, sim::FaultModel{0.125, 0.0}, cfg);
  const auto t = over_participants(values, r.participating);
  EXPECT_NEAR(r.value, t.ave, 0.15 * std::max(1.0, std::fabs(t.ave)));  // lossy push-sum drift
}

TEST_P(FaultyPipelines, MaxWithInitialCrashes) {
  const std::uint64_t seed = GetParam();
  const std::uint32_t n = 1024;
  const auto values = make_values(n, seed + 5);
  const auto r = drr_gossip_max(n, values, seed, sim::FaultModel{0.0, 0.2});
  const auto t = over_participants(values, r.participating);
  EXPECT_EQ(t.count, 820u);  // 1024 - floor(0.2 * 1024)
  EXPECT_DOUBLE_EQ(r.value, t.max);
  EXPECT_TRUE(r.consensus);
}

TEST_P(FaultyPipelines, AveWithCrashesAndLoss) {
  const std::uint64_t seed = GetParam();
  const std::uint32_t n = 2048;
  const auto values = make_values(n, seed + 6);
  DrrGossipConfig cfg;
  cfg.push_sum.rounds_multiplier = 8.0;
  const auto r = drr_gossip_ave(n, values, seed, sim::FaultModel{0.1, 0.1}, cfg);
  const auto t = over_participants(values, r.participating);
  EXPECT_NEAR(r.value, t.ave, 0.15 * std::max(1.0, std::fabs(t.ave)));  // lossy push-sum drift
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultyPipelines, ::testing::Values(21ull, 22ull, 23ull));

// ---------------------------------------------------------------------------
// Complexity observables.

TEST(PipelineComplexity, TimeLogarithmic) {
  // rounds_total across 64x growth in n should grow like log n, not n.
  const auto values_s = make_values(256, 1);
  const auto values_b = make_values(16384, 1);
  const auto rs = drr_gossip_max(256, values_s, 5);
  const auto rb = drr_gossip_max(16384, values_b, 5);
  EXPECT_LT(rb.rounds_total, 4u * rs.rounds_total);
}

TEST(PipelineComplexity, MessagesNearNLogLog) {
  // messages / (n log log n) bounded across 64x growth.
  const auto values_s = make_values(256, 2);
  const auto values_b = make_values(16384, 2);
  const auto rs = drr_gossip_max(256, values_s, 6);
  const auto rb = drr_gossip_max(16384, values_b, 6);
  const double cs = static_cast<double>(rs.metrics.total().sent) /
                    (256.0 * loglog2_clamped(256));
  const double cb = static_cast<double>(rb.metrics.total().sent) /
                    (16384.0 * loglog2_clamped(16384));
  EXPECT_LT(cb, 2.5 * cs);
}

TEST(PipelineComplexity, PhaseMetricsAddUp) {
  const auto values = make_values(512, 3);
  const auto r = drr_gossip_ave(512, values, 7);
  const auto total = r.metrics.total();
  const auto sum = r.metrics.drr.sent + r.metrics.convergecast.sent +
                   r.metrics.root_broadcast.sent + r.metrics.gossip.sent +
                   r.metrics.spread.sent + r.metrics.value_broadcast.sent;
  EXPECT_EQ(total.sent, sum);
  EXPECT_GT(r.metrics.drr.sent, 0u);
  EXPECT_GT(r.metrics.convergecast.sent, 0u);
  EXPECT_GT(r.metrics.gossip.sent, 0u);
  EXPECT_GT(r.metrics.value_broadcast.sent, 0u);
}

TEST(PipelineComplexity, ForestSummaryPopulated) {
  const auto values = make_values(1024, 4);
  const auto r = drr_gossip_max(1024, values, 8);
  EXPECT_GT(r.forest.num_trees, 0u);
  EXPECT_GT(r.forest.max_tree_size, 0u);
  EXPECT_NE(r.forest.largest_tree_root, kNoParent);
  EXPECT_LE(r.forest.max_tree_height, r.forest.max_tree_size);
}

TEST(Pipeline, Deterministic) {
  const auto values = make_values(512, 5);
  const auto a = drr_gossip_ave(512, values, 99);
  const auto b = drr_gossip_ave(512, values, 99);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.metrics.total().sent, b.metrics.total().sent);
  EXPECT_EQ(a.rounds_total, b.rounds_total);
}

TEST(Pipeline, SkippingFinalBroadcastLeavesPerNodeEmpty) {
  DrrGossipConfig cfg;
  cfg.broadcast_result = false;
  const auto values = make_values(256, 6);
  const auto r = drr_gossip_max(256, values, 9, {}, cfg);
  EXPECT_TRUE(r.per_node.empty());
  EXPECT_EQ(r.metrics.value_broadcast.sent, 0u);
  EXPECT_DOUBLE_EQ(r.value, *std::max_element(values.begin(), values.end()));
}

TEST(Pipeline, NegativeValuesOnly) {
  std::vector<double> values(300);
  Rng rng{17};
  for (auto& v : values) v = rng.next_uniform(-1000.0, -500.0);
  const auto mx = drr_gossip_max(300, values, 10);
  EXPECT_DOUBLE_EQ(mx.value, *std::max_element(values.begin(), values.end()));
  const auto av = drr_gossip_ave(300, values, 11);
  const double ave = std::accumulate(values.begin(), values.end(), 0.0) / 300.0;
  EXPECT_NEAR(av.value, ave, 1e-3 * std::fabs(ave));
}

TEST(Pipeline, ZeroAverage) {
  // xave = 0: gossip-ave still works (§3.3.2 discusses this case); the
  // error criterion becomes absolute.
  std::vector<double> values(400);
  for (std::size_t i = 0; i < 400; ++i) values[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const auto r = drr_gossip_ave(400, values, 12);
  EXPECT_NEAR(r.value, 0.0, 1e-3);
}

TEST(Pipeline, IdenticalValues) {
  std::vector<double> values(500, 3.25);
  const auto mx = drr_gossip_max(500, values, 13);
  EXPECT_DOUBLE_EQ(mx.value, 3.25);
  const auto av = drr_gossip_ave(500, values, 14);
  EXPECT_NEAR(av.value, 3.25, 1e-6);
}

TEST(Pipeline, TinyNetwork) {
  std::vector<double> values{5.0, 1.0, 9.0, 2.0};
  const auto r = drr_gossip_max(4, values, 15);
  EXPECT_DOUBLE_EQ(r.value, 9.0);
  EXPECT_TRUE(r.consensus);
}

TEST(Pipeline, ThrowsOnShortValues) {
  std::vector<double> values(10, 0.0);
  EXPECT_THROW((void)drr_gossip_max(100, values, 1), std::invalid_argument);
  EXPECT_THROW((void)drr_gossip_ave(100, values, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Quantiles.

TEST(Quantile, MedianOfUniformValues) {
  const std::uint32_t n = 512;
  const auto values = make_values(n, 77);
  QuantileConfig cfg;
  cfg.iterations = 24;
  const auto r = drr_gossip_median(n, values, 31, {}, cfg);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double true_median = sorted[n / 2];
  // The quantile is estimated through noisy rank counts: allow a small
  // rank-window around the true median.
  const double lo = sorted[n / 2 - n / 32], hi = sorted[n / 2 + n / 32];
  EXPECT_GE(r.value, lo) << "true median " << true_median;
  EXPECT_LE(r.value, hi);
  EXPECT_GT(r.pipeline_runs, 4u);
  EXPECT_GT(r.total.sent, 0u);
}

TEST(Quantile, ExtremesBracketed) {
  const std::uint32_t n = 256;
  const auto values = make_values(n, 78);
  QuantileConfig cfg;
  cfg.iterations = 16;
  const auto lo = drr_gossip_quantile(n, values, 0.05, 32, {}, cfg);
  const auto hi = drr_gossip_quantile(n, values, 0.95, 33, {}, cfg);
  EXPECT_LT(lo.value, hi.value);
}

TEST(Quantile, RejectsBadQ) {
  std::vector<double> values(16, 1.0);
  EXPECT_THROW((void)drr_gossip_quantile(16, values, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace drrg
