// Golden determinism tests: the bit-identity contract of the flat-core
// engine rewrite.
//
// The checksums below were generated from the PRE-rewrite tree (generic
// Network-only hot path, per-round queue allocation, eager per-node RNGs)
// and must keep matching forever: the pooled-queue engine, the flat
// fault-free executors, the CSR topology view and the intra-run fan-outs
// are required to be *observationally invisible*.  Two families:
//
//   * kPreRewriteGoldens -- bit-identical to the pre-rewrite binary (all
//     complete-topology runs, plus every faulty run, which exercises the
//     generic engine path);
//   * kExplicitTopologyGoldens -- pinned at the introduction of the
//     Phase III member relay + diameter-scaled budget (that feature
//     deliberately changed explicit-substrate traffic); they guard the
//     behavior from here on.
//
// A third family (sparse_engine_goldens) was pinned when chord-drr moved
// off its bespoke RoutedTransport onto the shared engine and the sparse
// pipeline opened to explicit substrates: hop-by-hop expansion changed
// that family's traffic by design, and these checksums freeze it.
//
// Every sweep is additionally checked at --threads 1/4/8 (and the median
// bisection at intra_threads 1/4): any divergence is a scheduling leak.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/registry.hpp"
#include "api/report_hash.hpp"
#include "support/parallel.hpp"

namespace drrg {
namespace {

struct GoldenCase {
  const char* name;
  const char* algo;
  std::uint64_t expected;
  api::RunSpec spec;
};

api::RunSpec spec_of(std::uint32_t n, api::Aggregate agg, std::uint64_t seed) {
  api::RunSpec s;
  s.n = n;
  s.aggregate = agg;
  s.seed = seed;
  return s;
}

/// The pre-rewrite pins: complete topology and/or faulty schedules.
std::vector<GoldenCase> pre_rewrite_goldens() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"drr_ave_complete", "drr", 0x3f2eb88241b9e20fULL,
                 spec_of(256, api::Aggregate::kAve, 77)};
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_count_faulty", "drr", 0xb942627d51402357ULL,
                 spec_of(256, api::Aggregate::kCount, 42)};
    c.spec.faults = sim::FaultSchedule{0.05, 0.2, {{8, 0.05}}};
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_median_crash", "drr", 0xbc6c9034675e67b9ULL,
                 spec_of(128, api::Aggregate::kMedian, 9)};
    c.spec.faults.crash_fraction = 0.3;
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_rank_complete", "drr", 0x5f79acccb0b08cceULL,
                 spec_of(256, api::Aggregate::kRank, 11)};
    c.spec.rank_threshold = 50.0;
    cases.push_back(c);
  }
  {
    GoldenCase c{"uniform_ave_lossy", "uniform", 0xd46d45a0b23c1c08ULL,
                 spec_of(256, api::Aggregate::kAve, 3)};
    c.spec.faults.loss_prob = 0.05;
    cases.push_back(c);
  }
  {
    GoldenCase c{"efficient_max", "efficient", 0x15ba9600b576e794ULL,
                 spec_of(256, api::Aggregate::kMax, 13)};
    cases.push_back(c);
  }
  {
    GoldenCase c{"pairwise_ave", "pairwise", 0x153b26bb62341637ULL,
                 spec_of(256, api::Aggregate::kAve, 17)};
    cases.push_back(c);
  }
  {
    GoldenCase c{"extrema_count_lossy", "extrema", 0x2b89a66114d3e330ULL,
                 spec_of(256, api::Aggregate::kCount, 19)};
    c.spec.faults.loss_prob = 0.1;
    cases.push_back(c);
  }
  {
    GoldenCase c{"chord_uniform_ave_crash", "chord-uniform", 0x4fd1c788c8ac7a21ULL,
                 spec_of(256, api::Aggregate::kAve, 23)};
    c.spec.faults.crash_fraction = 0.1;
    cases.push_back(c);
  }
  return cases;
}

/// Explicit-substrate pins (member relay + diameter budget era).
std::vector<GoldenCase> explicit_topology_goldens() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"drr_max_chord_ring", "drr", 0x31ede523ddd5adb2ULL,
                 spec_of(256, api::Aggregate::kMax, 7)};
    c.spec.topology.kind = sim::TopologyKind::kChordRing;
    c.spec.faults.loss_prob = 0.1;
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_leader_regular", "drr", 0x0f07a96dcd35f2b3ULL,
                 spec_of(256, api::Aggregate::kLeader, 5)};
    c.spec.topology.kind = sim::TopologyKind::kRandomRegular;
    c.spec.topology.degree = 8;
    cases.push_back(c);
  }
  return cases;
}

/// Sparse-pipeline pins, recorded at the engine port of chord-drr (the
/// RoutedTransport deletion deliberately changed this family's traffic;
/// these pin the hop-by-hop behavior from here on, thread-swept like all
/// the others).
std::vector<GoldenCase> sparse_engine_goldens() {
  std::vector<GoldenCase> cases;
  {
    GoldenCase c{"chord_drr_max_complete", "chord-drr", 0x3b9ad6d2d27bfd9aULL,
                 spec_of(256, api::Aggregate::kMax, 7)};
    cases.push_back(c);
  }
  {
    GoldenCase c{"chord_drr_ave_full_schedule", "chord-drr", 0x92ecd35dd494f817ULL,
                 spec_of(256, api::Aggregate::kAve, 23)};
    c.spec.faults = sim::FaultSchedule{0.05, 0.1, {{8, 0.05}}};
    cases.push_back(c);
  }
  {
    // Large-n pin for the flattened routed hot path (finger-table binary
    // search, cached owners, crash-free dispatch): recorded just before
    // that rewrite, so it freezes the pre-flattening traffic at a size
    // where every fast-path branch is exercised.
    GoldenCase c{"chord_drr_ave_full_schedule_4096", "chord-drr",
                 0xd54322ee964b463fULL, spec_of(4096, api::Aggregate::kAve, 23)};
    c.spec.faults = sim::FaultSchedule{0.05, 0.1, {{8, 0.05}}};
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_sparse_grid_ave", "drr", 0x8954db044cb19e27ULL,
                 spec_of(240, api::Aggregate::kAve, 31)};
    c.spec.topology.kind = sim::TopologyKind::kGrid2d;
    c.spec.pipeline = api::Pipeline::kSparse;
    cases.push_back(c);
  }
  {
    GoldenCase c{"drr_sparse_regular_max_churn", "drr", 0x6817253a138bafbfULL,
                 spec_of(256, api::Aggregate::kMax, 5)};
    c.spec.topology.kind = sim::TopologyKind::kRandomRegular;
    c.spec.topology.degree = 8;
    c.spec.pipeline = api::Pipeline::kSparse;
    c.spec.faults.churn = {{20, 0.1}};
    cases.push_back(c);
  }
  return cases;
}

void check_case(const GoldenCase& c) {
  const auto t1 = api::run_trials(c.algo, c.spec, 3, 1);
  const std::uint64_t h1 = api::sweep_checksum(t1);
  EXPECT_EQ(h1, c.expected) << c.name << ": golden drift (0x" << std::hex << h1 << ")";
  for (const unsigned threads : {4u, 8u}) {
    const auto ht = api::sweep_checksum(api::run_trials(c.algo, c.spec, 3, threads));
    EXPECT_EQ(ht, h1) << c.name << ": thread-count divergence at " << threads;
  }
}

TEST(GoldenDeterminism, PreRewriteSweepsAreBitIdentical) {
  for (const GoldenCase& c : pre_rewrite_goldens()) check_case(c);
}

TEST(GoldenDeterminism, ExplicitTopologySweepsAreBitIdentical) {
  for (const GoldenCase& c : explicit_topology_goldens()) check_case(c);
}

TEST(GoldenDeterminism, SparseEngineSweepsAreBitIdentical) {
  for (const GoldenCase& c : sparse_engine_goldens()) check_case(c);
}

TEST(GoldenDeterminism, GridSweepIsThreadCountInvariant) {
  api::RunSpec spec = spec_of(240, api::Aggregate::kAve, 31);
  spec.topology.kind = sim::TopologyKind::kGrid2d;
  const std::uint64_t h1 = api::sweep_checksum(api::run_trials("drr", spec, 3, 1));
  for (const unsigned threads : {4u, 8u})
    EXPECT_EQ(api::sweep_checksum(api::run_trials("drr", spec, 3, threads)), h1);
}

TEST(GoldenDeterminism, MedianIntraThreadsAreBitIdentical) {
  api::RunSpec spec = spec_of(128, api::Aggregate::kMedian, 5);
  const std::uint64_t inline_hash = api::report_checksum(api::run("drr", spec));
  spec.intra_threads = 4;
  EXPECT_EQ(api::report_checksum(api::run("drr", spec)), inline_hash);
  spec.intra_threads = 0;  // all cores
  EXPECT_EQ(api::report_checksum(api::run("drr", spec)), inline_hash);
}

// Intra-round sharding (engine-level, kShardable protocols, batches past
// the activation floor) must be byte-invisible: the same run hashed at
// intra_threads 1/4/8/0 on a batch size that actually activates the
// sharded scan and delivery paths (n >= 2048), with loss + crash so the
// serial drop pass and the tag merge are both exercised.
TEST(GoldenDeterminism, ShardedEngineIsIntraThreadInvariant) {
  for (const api::Aggregate agg : {api::Aggregate::kAve, api::Aggregate::kMax}) {
    api::RunSpec spec = spec_of(8192, agg, 7);
    spec.faults.loss_prob = 0.05;
    spec.faults.crash_fraction = 0.1;
    const std::uint64_t serial = api::report_checksum(api::run("uniform", spec));
    for (const unsigned intra : {4u, 8u, 0u}) {
      spec.intra_threads = intra;
      EXPECT_EQ(api::report_checksum(api::run("uniform", spec)), serial)
          << "agg " << static_cast<int>(agg) << " intra_threads " << intra;
    }
  }
}

// The flat fault-free executors must agree with the generic engine path
// byte for byte.  A vanishing loss probability forces the engine path
// (fault_free() is false) while leaving every delivery intact -- the loss
// stream feeds nothing else -- so the pair must hash equal on every
// substrate.
TEST(GoldenDeterminism, FlatExecutorsMatchEnginePath) {
  for (const sim::TopologyKind kind :
       {sim::TopologyKind::kComplete, sim::TopologyKind::kChordRing,
        sim::TopologyKind::kRandomRegular, sim::TopologyKind::kGrid2d}) {
    for (const api::Aggregate agg : {api::Aggregate::kAve, api::Aggregate::kMax}) {
      api::RunSpec flat = spec_of(256, agg, 97);
      flat.topology.kind = kind;
      api::RunSpec engine = flat;
      engine.faults.loss_prob = 1e-300;  // engine path, zero effective loss
      const api::RunReport a = api::run("drr", flat);
      const api::RunReport b = api::run("drr", engine);
      EXPECT_EQ(a.value, b.value) << sim::to_string(kind);
      EXPECT_EQ(a.consensus, b.consensus) << sim::to_string(kind);
      EXPECT_EQ(a.rounds, b.rounds) << sim::to_string(kind);
      EXPECT_EQ(a.cost.sent, b.cost.sent) << sim::to_string(kind);
      EXPECT_EQ(a.cost.delivered, b.cost.delivered) << sim::to_string(kind);
      EXPECT_EQ(a.cost.bits, b.cost.bits) << sim::to_string(kind);
      EXPECT_EQ(a.forest.num_trees, b.forest.num_trees) << sim::to_string(kind);
    }
  }
}

// CSR flat-view sampling must agree with a naive neighbor-span walk over
// every explicit topology family.
TEST(GoldenDeterminism, CsrSamplingMatchesNaiveNeighborSampling) {
  const std::uint32_t n = 192;
  for (const char* name : {"chord-ring", "random-regular", "grid", "torus"}) {
    const auto spec = sim::topology_from_name(name);
    ASSERT_TRUE(spec.has_value()) << name;
    const sim::Topology t = sim::make_topology(*spec, n, 13);
    ASSERT_NE(t.graph(), nullptr) << name;
    Rng csr_rng{99};
    Rng naive_rng{99};
    for (int i = 0; i < 4000; ++i) {
      const NodeId caller = static_cast<NodeId>(i % n);
      const NodeId fast = t.sample_peer(caller, n, csr_rng);
      const auto nbrs = t.graph()->neighbors(caller);
      const NodeId naive =
          nbrs.empty() ? caller : nbrs[naive_rng.next_below(nbrs.size())];
      ASSERT_EQ(fast, naive) << name << " caller " << caller;
      ASSERT_EQ(t.degree(caller), nbrs.size()) << name;
    }
  }
}

// Satellite regression: diameter-heavy substrates now converge (member
// relay + diameter-scaled Phase III budget); the knob disables cleanly.
TEST(DiameterBudget, GridAndTorusReachConsensus) {
  for (const bool torus : {false, true}) {
    api::RunSpec spec = spec_of(256, api::Aggregate::kAve, 42);
    spec.topology.kind = sim::TopologyKind::kGrid2d;
    spec.topology.torus = torus;
    const api::RunReport r = api::run("drr", spec);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.consensus) << (torus ? "torus" : "grid");
    EXPECT_LT(r.rel_error(), 0.1) << (torus ? "torus" : "grid");
  }
}

TEST(DiameterBudget, MultiplierScalesRounds) {
  api::RunSpec spec = spec_of(256, api::Aggregate::kAve, 42);
  spec.topology.kind = sim::TopologyKind::kGrid2d;
  DrrGossipConfig off;
  off.phase3_diameter_multiplier = 0.0;
  spec.config = off;
  const api::RunReport base = api::run("drr", spec);
  DrrGossipConfig big;
  big.phase3_diameter_multiplier = 2.0;
  spec.config = big;
  const api::RunReport scaled = api::run("drr", spec);
  ASSERT_TRUE(base.ok() && scaled.ok());
  EXPECT_GT(scaled.rounds, base.rounds);
  // The complete topology has diameter 1: the knob must be a no-op there.
  api::RunSpec complete_spec = spec_of(256, api::Aggregate::kAve, 42);
  const std::uint64_t plain = api::report_checksum(api::run("drr", complete_spec));
  complete_spec.config = big;
  EXPECT_EQ(api::report_checksum(api::run("drr", complete_spec)), plain);
}

// Satellite regression: parallel_map keeps first-error-by-index semantics
// with its per-worker (not per-task) error slots.
TEST(ParallelMap, FirstErrorByIndexIsRethrown) {
  try {
    (void)parallel_map(64, 8, [](std::size_t i) -> int {
      if (i == 7 || i == 23 || i == 51) throw std::runtime_error(std::to_string(i));
      return static_cast<int>(i);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
}

TEST(ParallelMap, SurvivingResultsAreOrdered) {
  const auto r = parallel_map(100, 8, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r[i], i * i);
}

}  // namespace
}  // namespace drrg
