// Million-node scale tests: the implicit topology backends, their
// bit-equivalence to the CSR cache, and the memory/time envelope of
// n = 1M single runs.
//
// The implicit backends (chord offset-table rotation, lattice coordinate
// arithmetic) must be *observationally identical* to the materialised CSR
// adjacency: same degrees, same sorted neighbor lists, same pseudo-
// diameter, same peer-sampling draws, and therefore byte-identical run
// reports with either backend forced.  The 1M smoke runs then pin the
// scaling claim itself: a dense push-sum and an implicit chord-ring DRR
// complete in-process under a peak-RSS budget that a materialised CSR
// build at that size would comfortably break.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "api/registry.hpp"
#include "api/report_hash.hpp"
#include "sim/topology.hpp"
#include "topology/builders.hpp"

namespace drrg {
namespace {

/// Peak resident set (VmHWM) of this process in MiB, from /proc/self/status;
/// 0 when unreadable (non-Linux), which disables the budget assertions.
std::size_t peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kib);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024;
}

sim::Topology build(sim::TopologyKind kind, sim::TopologyBackend backend,
                    std::uint32_t n, bool torus = false) {
  sim::TopologySpec spec;
  spec.kind = kind;
  spec.backend = backend;
  spec.torus = torus;
  return sim::make_topology(spec, n, 13);
}

void expect_backends_identical(sim::TopologyKind kind, std::uint32_t n,
                               bool torus, const char* name) {
  const sim::Topology csr = build(kind, sim::TopologyBackend::kCsr, n, torus);
  const sim::Topology imp = build(kind, sim::TopologyBackend::kImplicit, n, torus);
  ASSERT_NE(csr.graph(), nullptr) << name;
  ASSERT_EQ(imp.graph(), nullptr) << name;
  ASSERT_TRUE(imp.is_implicit()) << name;
  EXPECT_EQ(imp.diameter(), csr.diameter()) << name;
  EXPECT_EQ(imp.size(), csr.size()) << name;

  std::vector<NodeId> nbrs(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto slice = csr.graph()->neighbors(v);
    ASSERT_EQ(imp.degree(v), slice.size()) << name << " node " << v;
    const std::uint32_t deg = imp.implicit_neighbors(v, nbrs.data());
    ASSERT_EQ(deg, slice.size()) << name << " node " << v;
    for (std::uint32_t j = 0; j < deg; ++j)
      ASSERT_EQ(nbrs[j], slice[j]) << name << " node " << v << " slot " << j;
  }

  // Twin RNG streams must sample the same peers: the implicit rotation is
  // required to index the sorted neighbor list exactly like the CSR slice.
  Rng a{99};
  Rng b{99};
  for (int i = 0; i < 4000; ++i) {
    const NodeId caller = static_cast<NodeId>(i % n);
    ASSERT_EQ(imp.sample_peer(caller, n, a), csr.sample_peer(caller, n, b))
        << name << " caller " << caller;
  }
}

TEST(ImplicitTopology, ChordMatchesCsr) {
  expect_backends_identical(sim::TopologyKind::kChordRing, 256, false, "chord-256");
  expect_backends_identical(sim::TopologyKind::kChordRing, 250, false, "chord-250");
}

TEST(ImplicitTopology, GridAndTorusMatchCsr) {
  expect_backends_identical(sim::TopologyKind::kGrid2d, 256, false, "grid-256");
  expect_backends_identical(sim::TopologyKind::kGrid2d, 256, true, "torus-256");
  expect_backends_identical(sim::TopologyKind::kGrid2d, 240, false, "grid-240");
  expect_backends_identical(sim::TopologyKind::kGrid2d, 240, true, "torus-240");
}

TEST(ImplicitTopology, AutoSwitchesAtThreshold) {
  const std::uint32_t at = sim::kImplicitAutoThreshold;
  EXPECT_FALSE(build(sim::TopologyKind::kChordRing, sim::TopologyBackend::kAuto,
                     at / 2)
                   .is_implicit());
  EXPECT_TRUE(build(sim::TopologyKind::kChordRing, sim::TopologyBackend::kAuto, at)
                  .is_implicit());
  EXPECT_TRUE(build(sim::TopologyKind::kGrid2d, sim::TopologyBackend::kAuto, at)
                  .is_implicit());
}

TEST(ImplicitTopology, RandomRegularRejectsImplicit) {
  sim::TopologySpec spec;
  spec.kind = sim::TopologyKind::kRandomRegular;
  spec.backend = sim::TopologyBackend::kImplicit;
  EXPECT_THROW((void)sim::make_topology(spec, 256, 13), std::invalid_argument);
}

/// Whole-run equivalence: a DRR run on every structured family hashes
/// identically with either backend forced.
TEST(ImplicitTopology, RunChecksumsMatchCsr) {
  struct Case {
    sim::TopologyKind kind;
    bool torus;
    const char* name;
  };
  for (const Case c : {Case{sim::TopologyKind::kChordRing, false, "chord"},
                       Case{sim::TopologyKind::kGrid2d, false, "grid"},
                       Case{sim::TopologyKind::kGrid2d, true, "torus"}}) {
    api::RunSpec spec;
    spec.n = 256;
    spec.aggregate = api::Aggregate::kAve;
    spec.seed = 77;
    spec.topology.kind = c.kind;
    spec.topology.torus = c.torus;
    spec.faults.loss_prob = 0.05;
    spec.topology.backend = sim::TopologyBackend::kCsr;
    const api::RunReport csr = api::run("drr", spec);
    spec.topology.backend = sim::TopologyBackend::kImplicit;
    const api::RunReport imp = api::run("drr", spec);
    ASSERT_TRUE(csr.ok() && imp.ok()) << c.name;
    EXPECT_EQ(api::report_checksum(imp), api::report_checksum(csr)) << c.name;
  }
}

/// The sparse pipeline walks real adjacency: requesting the implicit
/// backend there is overridden back to CSR by the scenario layer rather
/// than crashing mid-run.
TEST(ImplicitTopology, SparsePipelineForcesCsr) {
  api::RunSpec spec;
  spec.n = 240;
  spec.aggregate = api::Aggregate::kAve;
  spec.seed = 31;
  spec.topology.kind = sim::TopologyKind::kGrid2d;
  spec.pipeline = api::Pipeline::kSparse;
  const api::RunReport csr_backed = api::run("drr", spec);
  ASSERT_TRUE(csr_backed.ok()) << csr_backed.error;
  spec.topology.backend = sim::TopologyBackend::kImplicit;
  const api::RunReport forced = api::run("drr", spec);
  ASSERT_TRUE(forced.ok()) << forced.error;
  EXPECT_EQ(api::report_checksum(forced), api::report_checksum(csr_backed));
}

// ---------------------------------------------------------------------------
// Satellite: Topology::degree() on complete topologies.

TEST(TopologyDegree, CompleteWithRecordedSizeAnswers) {
  EXPECT_EQ(sim::Topology::complete_of(256).degree(7), 255u);
  sim::TopologySpec spec;  // kComplete
  const sim::Topology t = sim::make_topology(spec, 512, 1);
  EXPECT_EQ(t.degree(0), 511u);
}

TEST(TopologyDegreeDeathTest, UnsizedCompleteAborts) {
  // Historically this dereferenced a null CSR offsets pointer; now it is a
  // diagnosable hard abort.
  EXPECT_DEATH((void)sim::Topology::complete().degree(0), "");
}

// ---------------------------------------------------------------------------
// Satellite: prime-n "grid" rejection.

TEST(GridShape, PrimeAndTinyHaveNoShape) {
  EXPECT_EQ(sim::grid_shape(251).rows, 1u);
  EXPECT_EQ(sim::grid_shape(7).rows, 1u);
  EXPECT_EQ(sim::grid_shape(240).rows, 15u);
  EXPECT_EQ(sim::grid_shape(240).cols, 16u);
  EXPECT_EQ(sim::grid_shape(256).rows, 16u);
}

TEST(GridShape, PrimeGridIsRejectedNotDegenerate) {
  sim::TopologySpec spec;
  spec.kind = sim::TopologyKind::kGrid2d;
  // A 1 x 251 "grid" is a path with diameter 250; building it silently
  // used to invalidate every grid-family result at prime n.
  EXPECT_THROW((void)sim::make_topology(spec, 251, 13), std::invalid_argument);
  EXPECT_THROW((void)sim::make_topology(spec, 3, 13), std::invalid_argument);
  // The api layer surfaces it as a failed report, not a crash.
  api::RunSpec rs;
  rs.n = 251;
  rs.aggregate = api::Aggregate::kAve;
  rs.topology.kind = sim::TopologyKind::kGrid2d;
  const api::RunReport r = api::run("drr", rs);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("grid"), std::string::npos) << r.error;
  // Composite n still builds fine.
  EXPECT_NO_THROW((void)sim::make_topology(spec, 15, 13));
}

// ---------------------------------------------------------------------------
// Tentpole smoke: n = 1M single runs complete in-process under a peak-RSS
// budget.  The budget is far above the measured footprint (~300 MiB for
// the pair) but far below what a materialised 1M-node chord CSR build
// (~20M edges plus construction scratch) plus eager per-node state would
// reach; it exists to catch accidental O(n log n) materialisation.

constexpr std::uint32_t kMillion = 1u << 20;
constexpr std::size_t kRssBudgetMib = 1024;

TEST(MillionNodeSmoke, ImplicitChordTopologyIsChosenAutomatically) {
  const sim::Topology t =
      build(sim::TopologyKind::kChordRing, sim::TopologyBackend::kAuto, kMillion);
  EXPECT_TRUE(t.is_implicit());
  EXPECT_EQ(t.graph(), nullptr);
  EXPECT_EQ(t.size(), kMillion);
  EXPECT_EQ(t.degree(0), 39u);  // 2*log2(n) - 1: {1,2,4,...,2^19} u {n-s}
  EXPECT_GE(t.diameter(), 10u);
}

TEST(MillionNodeSmoke, DensePushSumCompletes) {
  api::RunSpec spec;
  spec.n = kMillion;
  spec.aggregate = api::Aggregate::kAve;
  spec.seed = 1;
  const api::RunReport r = api::run("uniform", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_LT(r.rel_error(), 1e-9);
  const std::size_t rss = peak_rss_mib();
  if (rss != 0) EXPECT_LT(rss, kRssBudgetMib);
}

TEST(MillionNodeSmoke, ImplicitChordDrrCompletes) {
  api::RunSpec spec;
  spec.n = kMillion;
  spec.aggregate = api::Aggregate::kAve;
  spec.seed = 1;
  spec.topology.kind = sim::TopologyKind::kChordRing;
  const api::RunReport r = api::run("drr", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.consensus);
  EXPECT_LT(r.rel_error(), 1e-6);
  // O(n log n) messages: c * n * log2(n) with a generous constant.
  const double nlogn = static_cast<double>(kMillion) * 20.0;
  EXPECT_LT(static_cast<double>(r.cost.sent), 8.0 * nlogn);
  const std::size_t rss = peak_rss_mib();
  if (rss != 0) EXPECT_LT(rss, kRssBudgetMib);
}

}  // namespace
}  // namespace drrg
