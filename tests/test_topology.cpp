// Tests of the graph abstraction and topology builders.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/rng.hpp"
#include "topology/builders.hpp"
#include "topology/graph.hpp"

namespace drrg {
namespace {

TEST(Graph, FromEdgesBasics) {
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_FALSE(g.is_complete());
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, NeighborsSorted) {
  Graph g = Graph::from_edges(5, {{3, 1}, {3, 0}, {3, 4}, {3, 2}});
  auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 4u);
  for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_LT(nb[i - 1], nb[i]);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), std::invalid_argument);
}

TEST(Graph, CompleteImplicit) {
  Graph g = Graph::complete(1000);
  EXPECT_TRUE(g.is_complete());
  EXPECT_EQ(g.degree(0), 999u);
  EXPECT_EQ(g.edge_count(), 1000ull * 999 / 2);
  EXPECT_TRUE(g.has_edge(0, 999));
  EXPECT_FALSE(g.has_edge(5, 5));
  EXPECT_TRUE(g.connected());
}

TEST(Graph, DisconnectedDetected) {
  Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.connected());
}

TEST(Graph, InverseDegreeSum) {
  Graph g = make_ring(10);  // all degree 2 -> sum = 10/3
  EXPECT_NEAR(g.inverse_degree_plus_one_sum(), 10.0 / 3.0, 1e-12);
}

TEST(Builders, Ring) {
  Graph g = make_ring(17);
  EXPECT_EQ(g.size(), 17u);
  EXPECT_EQ(g.edge_count(), 17u);
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.has_edge(16, 0));
}

TEST(Builders, Path) {
  Graph g = make_path(10);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Builders, Star) {
  Graph g = make_star(10);
  EXPECT_EQ(g.degree(0), 9u);
  EXPECT_EQ(g.degree(5), 1u);
  EXPECT_TRUE(g.connected());
}

TEST(Builders, Grid) {
  Graph g = make_grid(4, 5);
  EXPECT_EQ(g.size(), 20u);
  EXPECT_EQ(g.edge_count(), 4u * 4 + 3 * 5);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.min_degree(), 2u);  // corners
}

TEST(Builders, Torus) {
  Graph g = make_grid(4, 5, /*torus=*/true);
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.edge_count(), 2u * 20);
  EXPECT_TRUE(g.connected());
}

TEST(Builders, Hypercube) {
  Graph g = make_hypercube(5);
  EXPECT_EQ(g.size(), 32u);
  EXPECT_EQ(g.min_degree(), 5u);
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.has_edge(0, 16));
}

TEST(Builders, BinaryTree) {
  Graph g = make_binary_tree(15);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(14), 1u);
}

TEST(Builders, RandomRegularDegrees) {
  Graph g = make_random_regular(100, 6, 42);
  EXPECT_EQ(g.min_degree(), 6u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(g.edge_count(), 300u);
}

TEST(Builders, RandomRegularDeterministic) {
  Graph a = make_random_regular(60, 4, 7);
  Graph b = make_random_regular(60, 4, 7);
  for (NodeId v = 0; v < 60; ++v) {
    auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(Builders, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(make_random_regular(5, 3, 1), std::invalid_argument);
}

TEST(Builders, ErdosRenyiDensity) {
  const double p = 0.02;
  Graph g = make_erdos_renyi(500, p, 11);
  const double expected = p * 500 * 499 / 2;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, 4 * std::sqrt(expected));
}

TEST(Builders, ErdosRenyiEdgeCasesOfP) {
  EXPECT_EQ(make_erdos_renyi(20, 0.0, 1).edge_count(), 0u);
  EXPECT_EQ(make_erdos_renyi(20, 1.0, 1).edge_count(), 190u);
}

TEST(Builders, GeometricMatchesBruteForce) {
  const std::uint32_t n = 200;
  const double radius = 0.15;
  Graph g = make_geometric(n, radius, 5);
  // Rebuild positions with the same stream and verify each edge length.
  Rng rng{derive_seed(5, 0x6e0ULL)};
  std::vector<double> x(n), y(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    x[v] = rng.next_unit();
    y[v] = rng.next_unit();
  }
  std::uint64_t brute_edges = 0;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) {
      const double d2 = (x[u] - x[v]) * (x[u] - x[v]) + (y[u] - y[v]) * (y[u] - y[v]);
      if (d2 <= radius * radius) {
        ++brute_edges;
        EXPECT_TRUE(g.has_edge(u, v)) << u << "," << v;
      }
    }
  EXPECT_EQ(g.edge_count(), brute_edges);
}

TEST(Builders, ChordGraphDegreesLogarithmic) {
  Graph g = make_chord_graph(1024);
  EXPECT_TRUE(g.connected());
  // Successor + fingers + reverse edges: degree Theta(log n).
  EXPECT_GE(g.min_degree(), 9u);
  EXPECT_LE(g.max_degree(), 22u);
}

TEST(Builders, InvalidArguments) {
  EXPECT_THROW(make_ring(2), std::invalid_argument);
  EXPECT_THROW(make_grid(1, 5), std::invalid_argument);
  EXPECT_THROW(make_hypercube(0), std::invalid_argument);
  EXPECT_THROW(make_erdos_renyi(10, 1.5, 0), std::invalid_argument);
  EXPECT_THROW(make_random_regular(10, 10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace drrg
