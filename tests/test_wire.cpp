// Wire-codec property tests: every message id round-trips bit-exactly,
// and decode_frame() rejects truncated / oversized / version-skewed /
// count-overflowing / garbage datagrams with a typed error and zero UB.
// The sanitize CI job runs this suite under ASan+UBSan, which is what
// actually pins the "no UB on arbitrary input" half of the contract.

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace drrg::net {
namespace {

/// A frame for `id` with every field the id encodes set to a non-zero
/// pseudo-random value (and nothing else, so decode(encode(f)) == f).
Frame sample_frame(MsgId id, Rng& rng) {
  Frame f;
  f.id = id;
  f.src = static_cast<std::uint32_t>(rng.next_below(1u << 20));
  f.dst = static_cast<std::uint32_t>(rng.next_below(1u << 20));
  f.seq = static_cast<std::uint32_t>(rng.next_below(1u << 30));
  switch (id) {
    case MsgId::kHello:
    case MsgId::kProbe:
      f.a = static_cast<std::uint32_t>(rng.next_below(65536));
      break;
    case MsgId::kPing:
    case MsgId::kPong:
      f.nonce = rng.next_below(~0ull);
      break;
    case MsgId::kMemberGossip:
      f.n_members = static_cast<std::uint8_t>(1 + rng.next_below(kMaxMemberEntries));
      for (std::size_t i = 0; i < f.n_members; ++i)
        f.members[i] = MemberEntry{static_cast<std::uint32_t>(rng.next_below(4096)),
                                   static_cast<PeerState>(rng.next_below(3)),
                                   static_cast<std::uint32_t>(rng.next_below(1u << 24))};
      break;
    case MsgId::kProbeAck:
      f.max = rng.next_unit();
      break;
    case MsgId::kTreeValue:
    case MsgId::kFinal:
      f.max = rng.next_unit() * 100.0;
      f.min = -rng.next_unit() * 100.0;
      f.sum = rng.next_unit() * 1e6;
      f.count = rng.next_below(1u << 20);
      f.ver = static_cast<std::uint32_t>(rng.next_below(1u << 16));
      break;
    case MsgId::kTreeAck:
    case MsgId::kTreeLeave:
    case MsgId::kTreeLeaveAck:
      f.ver = static_cast<std::uint32_t>(rng.next_below(1u << 16));
      break;
    case MsgId::kRootExchange:
      f.a = static_cast<std::uint32_t>(rng.next_below(64));
      [[fallthrough]];
    case MsgId::kRootAck:
      f.n_roots = static_cast<std::uint8_t>(1 + rng.next_below(kMaxRootEntries));
      for (std::size_t i = 0; i < f.n_roots; ++i)
        f.roots[i] = RootEntry{static_cast<std::uint32_t>(rng.next_below(4096)),
                               static_cast<std::uint32_t>(rng.next_below(1u << 16)),
                               rng.next_below(1u << 20),
                               rng.next_unit() * 10.0,
                               -rng.next_unit() * 10.0,
                               rng.next_unit() * 1e5};
      break;
    case MsgId::kHelloAck:
    case MsgId::kConnect:
    case MsgId::kConnectAck:
    case MsgId::kFinalAck:
      break;
  }
  return f;
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> bytes;
  encode_frame(f, bytes);
  return bytes;
}

TEST(Wire, RoundTripsEveryMessageId) {
  Rng rng{0x11ee22u};
  for (MsgId id : kAllMsgIds) {
    for (int rep = 0; rep < 16; ++rep) {
      const Frame f = sample_frame(id, rng);
      const auto bytes = encode(f);
      EXPECT_EQ(bytes.size(), encoded_size(f)) << to_string(id);
      Frame g;
      ASSERT_EQ(decode_frame(bytes, g), DecodeError::kOk) << to_string(id);
      EXPECT_EQ(g, f) << to_string(id);
    }
  }
}

TEST(Wire, RejectsEveryTruncatedPrefix) {
  Rng rng{0x77aau};
  for (MsgId id : kAllMsgIds) {
    const Frame f = sample_frame(id, rng);
    const auto bytes = encode(f);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      Frame g;
      const DecodeError err =
          decode_frame(std::span<const std::uint8_t>{bytes.data(), len}, g);
      ASSERT_NE(err, DecodeError::kOk) << to_string(id) << " at prefix " << len;
      if (len < kHeaderBytes) {
        EXPECT_EQ(err, DecodeError::kTooShort) << to_string(id) << " at " << len;
      } else {
        EXPECT_EQ(err, DecodeError::kTruncated) << to_string(id) << " at " << len;
      }
    }
  }
}

TEST(Wire, RejectsTrailingBytes) {
  Rng rng{0x31337u};
  for (MsgId id : kAllMsgIds) {
    auto bytes = encode(sample_frame(id, rng));
    bytes.push_back(0xab);
    Frame g;
    EXPECT_EQ(decode_frame(bytes, g), DecodeError::kOversized) << to_string(id);
  }
}

TEST(Wire, RejectsBadMagicAndVersion) {
  Rng rng{0x5eedu};
  auto bytes = encode(sample_frame(MsgId::kProbe, rng));
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  Frame g;
  EXPECT_EQ(decode_frame(bad_magic, g), DecodeError::kBadMagic);

  auto bad_version = bytes;
  bad_version[4] += 1;  // version is the u16 at offset 4
  EXPECT_EQ(decode_frame(bad_version, g), DecodeError::kBadVersion);
}

TEST(Wire, RejectsUnknownMessageIds) {
  Rng rng{0xf00du};
  auto bytes = encode(sample_frame(MsgId::kPing, rng));
  Frame g;
  for (std::uint16_t raw : {std::uint16_t{0}, std::uint16_t{18}, std::uint16_t{0xffff}}) {
    bytes[6] = static_cast<std::uint8_t>(raw);  // id is the u16 at offset 6
    bytes[7] = static_cast<std::uint8_t>(raw >> 8);
    EXPECT_EQ(decode_frame(bytes, g), DecodeError::kUnknownId) << raw;
  }
}

TEST(Wire, RejectsEntryCountsBeyondTheFormatBound) {
  Rng rng{0xc0deu};
  {
    auto bytes = encode(sample_frame(MsgId::kMemberGossip, rng));
    bytes[kHeaderBytes] = static_cast<std::uint8_t>(kMaxMemberEntries + 1);
    Frame g;
    EXPECT_EQ(decode_frame(bytes, g), DecodeError::kCountOverflow);
  }
  {
    auto bytes = encode(sample_frame(MsgId::kRootAck, rng));
    bytes[kHeaderBytes] = 0xff;
    Frame g;
    EXPECT_EQ(decode_frame(bytes, g), DecodeError::kCountOverflow);
  }
  {
    // kRootExchange's count sits after its 4-byte TTL.
    auto bytes = encode(sample_frame(MsgId::kRootExchange, rng));
    bytes[kHeaderBytes + 4] = static_cast<std::uint8_t>(kMaxRootEntries + 7);
    Frame g;
    EXPECT_EQ(decode_frame(bytes, g), DecodeError::kCountOverflow);
  }
}

TEST(Wire, EncoderClampsOverfullTables) {
  // The encoder's contract: counts beyond the bound are clamped, never
  // written -- the runtime chunks its tables instead of relying on this,
  // but a bug there must not produce an undecodable frame.
  Frame f;
  f.id = MsgId::kMemberGossip;
  f.n_members = 200;
  const auto bytes = encode(f);
  Frame g;
  ASSERT_EQ(decode_frame(bytes, g), DecodeError::kOk);
  EXPECT_EQ(g.n_members, kMaxMemberEntries);
}

TEST(Wire, SurvivesDeterministicGarbage) {
  // Purely random buffers: never kOk in practice (the magic gate), and
  // -- the real assertion, enforced by ASan/UBSan -- never UB.
  Rng rng{0xbadf00du};
  std::vector<std::uint8_t> bytes;
  for (int rep = 0; rep < 20000; ++rep) {
    bytes.resize(rng.next_below(120));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    Frame g;
    (void)decode_frame(bytes, g);
  }
}

TEST(Wire, RejectsEverySingleByteCorruption) {
  // Valid frames with one byte flipped at EVERY position: the FNV-1a
  // trailer (each step a bijection of the hash state) guarantees a
  // typed rejection -- never kOk -- which is the property the chaos
  // harness's corruption injection leans on.
  Rng rng{0x900du};
  for (MsgId id : kAllMsgIds) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto clean = encode(sample_frame(id, rng));
      for (std::size_t pos = 0; pos < clean.size(); ++pos) {
        auto bytes = clean;
        bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
        Frame g;
        ASSERT_NE(decode_frame(bytes, g), DecodeError::kOk)
            << to_string(id) << " at byte " << pos;
      }
    }
  }
}

TEST(Wire, ChecksumTrailerMatchesTheFrameBytes) {
  Rng rng{0xfeedu};
  for (MsgId id : kAllMsgIds) {
    const auto bytes = encode(sample_frame(id, rng));
    ASSERT_GE(bytes.size(), kHeaderBytes + kChecksumBytes);
    const std::size_t body = bytes.size() - kChecksumBytes;
    std::uint32_t trailer = 0;
    for (int i = 0; i < 4; ++i)
      trailer |= static_cast<std::uint32_t>(bytes[body + i]) << (8 * i);
    EXPECT_EQ(trailer, wire_checksum({bytes.data(), body})) << to_string(id);
  }
}

}  // namespace
}  // namespace drrg::net
