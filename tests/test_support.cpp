// Unit tests for the support layer: RNG, math helpers, statistics, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace drrg {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicFromSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{123}, b{124};
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UnitIntervalRange) {
  Rng r{7};
  for (int i = 0; i < 100000; ++i) {
    const double u = r.next_unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UnitIntervalMean) {
  Rng r{7};
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.next_unit());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, NextBelowInRangeAndUnbiased) {
  Rng r{11};
  std::vector<std::uint64_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Chi-square with 9 dof: 99.99th percentile is ~33.7.
  EXPECT_LT(chi_square_uniform(counts), 40.0);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r{3};
  for (int i = 0; i < 100; ++i) ASSERT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r{5};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{17};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.next_bernoulli(0.125);
  EXPECT_NEAR(hits / 100000.0, 0.125, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng r{29};
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(r.next_normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngFactory, NodeStreamsIndependent) {
  RngFactory f{99};
  Rng a = f.node_stream(1), b = f.node_stream(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngFactory, PurposeTagSeparatesStreams) {
  RngFactory f{99};
  Rng a = f.node_stream(1, 0), b = f.node_stream(1, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(RngFactory, Reproducible) {
  RngFactory f1{42}, f2{42};
  Rng a = f1.node_stream(5, 7), b = f2.node_stream(5, 7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(DeriveSeed, SensitiveToAllArguments) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 8; ++a)
    for (std::uint64_t b = 0; b < 8; ++b)
      for (std::uint64_t c = 0; c < 8; ++c) seen.insert(derive_seed(a, b, c));
  EXPECT_EQ(seen.size(), 8u * 8 * 8);
}

// ---------------------------------------------------------------------------
// mathutil

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(MathUtil, ClampedLogsAtLeastOne) {
  EXPECT_DOUBLE_EQ(log2_clamped(2.0), 1.0);
  EXPECT_DOUBLE_EQ(log2_clamped(1.0), 1.0);
  EXPECT_NEAR(log2_clamped(1024.0), 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(loglog2_clamped(4.0), 1.0);
  EXPECT_NEAR(loglog2_clamped(65536.0), 4.0, 1e-12);
  EXPECT_GE(ln_clamped(1.5), 1.0);
}

TEST(MathUtil, HarmonicSmall) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(MathUtil, HarmonicAsymptotic) {
  // H_n ~ ln n + gamma.
  EXPECT_NEAR(harmonic(10'000'000), std::log(1e7) + 0.5772156649, 1e-6);
}

TEST(MathUtil, DrrProbeBudget) {
  EXPECT_EQ(drr_probe_budget(2), 1u);     // log2(2)-1 = 0 -> clamped to 1
  EXPECT_EQ(drr_probe_budget(1024), 9u);  // log2-1
  EXPECT_EQ(drr_probe_budget(1 << 16), 15u);
}

TEST(MathUtil, AddressBits) {
  EXPECT_EQ(address_bits(2), 1u);
  EXPECT_EQ(address_bits(1024), 10u);
  EXPECT_EQ(address_bits(1025), 11u);
}

// ---------------------------------------------------------------------------
// stats

TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Summarize, Quantiles) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q25, 26.0);
  EXPECT_DOUBLE_EQ(s.q75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(QuantileSorted, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
}

TEST(FitLinear, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4}, ys{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  const LinearFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);  // exponent
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(-1.0);  // clamps into first
  h.add(0.5);
  h.add(9.9);
  h.add(42.0);  // clamps into last
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(ChiSquareUniform, ZeroForPerfectlyUniform) {
  std::vector<std::uint64_t> counts(10, 100);
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 0.0);
}

TEST(ChiSquareUniform, LargeForSkewed) {
  std::vector<std::uint64_t> counts(10, 0);
  counts[0] = 1000;
  EXPECT_GT(chi_square_uniform(counts), 1000.0);
}

// ---------------------------------------------------------------------------
// table

TEST(Table, AlignedRendering) {
  Table t{{"n", "messages"}};
  t.row().add_int(1024).add_real(3.14159, 2);
  t.row().add_int(65536).add_int(42);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("messages"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("65536"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, AddRowInitializer) {
  Table t{{"a", "b"}};
  t.add_row({"x", "y"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.to_string().find('x'), std::string::npos);
}

}  // namespace
}  // namespace drrg
