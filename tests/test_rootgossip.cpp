// Tests of Phase III: Gossip-max (Alg 4), Data-spread (Alg 5) and
// Gossip-ave / push-sum (Alg 6), plus the ordered-key encodings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "drr/drr.hpp"
#include "rootgossip/gossip_ave.hpp"
#include "rootgossip/gossip_max.hpp"
#include "rootgossip/ordered_key.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

// ---------------------------------------------------------------------------
// ordered_key

TEST(OrderedKey, RoundTrip) {
  for (double d : {0.0, -0.0, 1.0, -1.0, 3.141592653589793, -2.718281828459045,
                   1e-300, -1e-300, 1e300, -1e300,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(decode_ordered(encode_ordered(d)), d);
  }
}

TEST(OrderedKey, StrictlyMonotone) {
  Rng rng{5};
  for (int i = 0; i < 100000; ++i) {
    const double a = rng.next_normal() * std::pow(10.0, rng.next_range(-30, 30));
    const double b = rng.next_normal() * std::pow(10.0, rng.next_range(-30, 30));
    if (a < b) {
      ASSERT_LT(encode_ordered(a), encode_ordered(b)) << a << " " << b;
    } else if (a > b) {
      ASSERT_GT(encode_ordered(a), encode_ordered(b));
    }
  }
}

TEST(OrderedKey, BottomBelowEverything) {
  EXPECT_LT(kKeyBottom, encode_ordered(-std::numeric_limits<double>::infinity()));
  EXPECT_LT(kKeyBottom, encode_ordered(-1e308));
}

TEST(OrderedKey, SizeIdOrdering) {
  // Larger size wins; equal size -> smaller id wins under max.
  EXPECT_GT(encode_size_id(10, 3), encode_size_id(9, 0));
  EXPECT_GT(encode_size_id(10, 3), encode_size_id(10, 5));
  EXPECT_EQ(decode_size(encode_size_id(1234, 77)), 1234u);
  EXPECT_EQ(decode_id(encode_size_id(1234, 77)), 77u);
}

// ---------------------------------------------------------------------------
// Fixture: a DRR forest with values.

struct MaxSetup {
  RngFactory rngs;
  DrrResult drr;
  std::vector<std::uint64_t> keys;
  std::uint64_t true_max_key = kKeyBottom;

  MaxSetup(std::uint32_t n, std::uint64_t seed) : rngs{seed}, drr{run_drr(n, rngs)} {
    Rng vr{seed + 999};
    keys.assign(n, kKeyBottom);
    for (NodeId r : drr.forest.roots()) {
      keys[r] = encode_ordered(vr.next_uniform(-50, 50));
      true_max_key = std::max(true_max_key, keys[r]);
    }
  }
};

TEST(GossipMax, AllRootsReachConsensusAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    MaxSetup s{1024, seed};
    const auto r = run_gossip_max(s.drr.forest, s.keys, s.rngs);
    for (NodeId root : s.drr.forest.roots())
      ASSERT_EQ(r.key[root], s.true_max_key) << "seed " << seed << " root " << root;
  }
}

TEST(GossipMax, Theorem5ConstantFractionAfterGossipProcedure) {
  // After the gossip procedure alone (before sampling), a constant
  // fraction of the roots must hold Max.
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    MaxSetup s{2048, seed};
    const auto r = run_gossip_max(s.drr.forest, s.keys, s.rngs);
    const double frac =
        fraction_of_roots_with_key(s.drr.forest, r.key_after_gossip, s.true_max_key);
    EXPECT_GT(frac, 0.25) << seed;
  }
}

TEST(GossipMax, Theorem6ConsensusSurvivesModelLoss) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    MaxSetup s{1024, seed};
    const auto r =
        run_gossip_max(s.drr.forest, s.keys, s.rngs, sim::FaultModel{0.125, 0.0});
    for (NodeId root : s.drr.forest.roots()) ASSERT_EQ(r.key[root], s.true_max_key);
  }
}

TEST(GossipMax, PhaseIIIMessagesLinear) {
  // Gossip + sampling cost O(m log n) = O(n) messages: check messages/n
  // stays bounded as n grows 16x.
  MaxSetup small{1024, 3};
  MaxSetup big{16384, 3};
  const auto rs = run_gossip_max(small.drr.forest, small.keys, small.rngs);
  const auto rb = run_gossip_max(big.drr.forest, big.keys, big.rngs);
  const double per_small = static_cast<double>(rs.counters.sent) / 1024.0;
  const double per_big = static_cast<double>(rb.counters.sent) / 16384.0;
  EXPECT_LT(per_big, 2.0 * per_small);
}

TEST(GossipMax, RoundsLogarithmic) {
  MaxSetup s{4096, 21};
  const auto r = run_gossip_max(s.drr.forest, s.keys, s.rngs);
  // (gossip_mult + sampling_mult) * log2 n + drains.
  EXPECT_LE(r.rounds, 6 * 12 + 8 + 2);
}

TEST(DataSpread, ReachesAllRoots) {
  MaxSetup s{1024, 31};
  const NodeId src = s.drr.forest.largest_tree_root();
  const std::uint64_t key = encode_ordered(123.456);
  const auto r = run_data_spread(s.drr.forest, src, key, s.rngs);
  for (NodeId root : s.drr.forest.roots()) EXPECT_EQ(r.key[root], key);
}

TEST(DataSpread, RejectsNonRootSource) {
  MaxSetup s{256, 32};
  NodeId non_root = kNoParent;
  for (NodeId v = 0; v < 256; ++v)
    if (s.drr.forest.is_member(v) && !s.drr.forest.is_root(v)) {
      non_root = v;
      break;
    }
  ASSERT_NE(non_root, kNoParent);
  EXPECT_THROW(run_data_spread(s.drr.forest, non_root, 1, s.rngs), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Push-sum (Gossip-ave)

struct AveSetup {
  RngFactory rngs;
  DrrResult drr;
  std::vector<double> num0, den0;
  double true_ratio = 0.0;

  AveSetup(std::uint32_t n, std::uint64_t seed) : rngs{seed}, drr{run_drr(n, rngs)} {
    Rng vr{seed + 777};
    num0.assign(n, 0.0);
    den0.assign(n, 0.0);
    double ns = 0.0, ds = 0.0;
    for (NodeId r : drr.forest.roots()) {
      num0[r] = vr.next_uniform(-10, 30);
      den0[r] = static_cast<double>(drr.forest.tree_size(r));
      ns += num0[r];
      ds += den0[r];
    }
    true_ratio = ns / ds;
  }
};

TEST(PushSum, MassConservedAtZeroLoss) {
  AveSetup s{1024, 41};
  double n0 = 0.0, d0 = 0.0;
  for (NodeId r : s.drr.forest.roots()) {
    n0 += s.num0[r];
    d0 += s.den0[r];
  }
  const auto r = run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs);
  double n1 = 0.0, d1 = 0.0;
  for (NodeId root : s.drr.forest.roots()) {
    n1 += r.num[root];
    d1 += r.den[root];
  }
  EXPECT_NEAR(n1, n0, 1e-9 * std::max(1.0, std::fabs(n0)));
  EXPECT_NEAR(d1, d0, 1e-9 * d0);
}

TEST(PushSum, AllRootEstimatesConverge) {
  for (std::uint64_t seed : {42ull, 43ull, 44ull}) {
    AveSetup s{1024, seed};
    PushSumConfig cfg;
    cfg.rounds_multiplier = 8.0;
    const auto r = run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs, {}, cfg);
    for (NodeId root : s.drr.forest.roots()) {
      ASSERT_GT(r.den[root], 0.0);
      EXPECT_NEAR(r.estimate[root], s.true_ratio,
                  1e-3 * std::max(1.0, std::fabs(s.true_ratio)));
    }
  }
}

TEST(PushSum, RatioConsistentUnderLoss) {
  // (num, den) travel together, so the estimate stays *consistent* under
  // loss: all roots converge to the ratio of the surviving mass, which is
  // a small random drift away from the true ratio (each dropped message
  // removes a pair whose local ratio deviates from the global one).
  // Empirically the drift at delta = 1/8 is a few percent.
  AveSetup s{2048, 51};
  PushSumConfig cfg;
  cfg.rounds_multiplier = 8.0;
  const auto r =
      run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs, sim::FaultModel{0.125, 0.0}, cfg);
  const NodeId z = s.drr.forest.largest_tree_root();
  EXPECT_NEAR(r.estimate[z], s.true_ratio, 0.15 * std::max(1.0, std::fabs(s.true_ratio)));
  // Consistency: every root agrees with z (consensus on the drifted value).
  for (NodeId root : s.drr.forest.roots()) {
    if (r.den[root] > 0.0) {
      EXPECT_NEAR(r.estimate[root], r.estimate[z], 1e-2);
    }
  }
}

TEST(PushSum, Lemma8PotentialHalves) {
  // Analysis mode: Phi_{t+1} <= Phi_t always (in conditional expectation
  // it halves); check the measured decay over a window.
  AveSetup s{1024, 61};
  PushSumConfig cfg;
  cfg.forward_via_trees = false;
  cfg.track_potential = true;
  cfg.rounds_multiplier = 4.0;
  const auto r = run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs, {}, cfg);
  ASSERT_GE(r.potential_per_round.size(), 10u);
  // Geometric decay: after 10 rounds the potential should have dropped by
  // far more than 2^5 (expected 2^10).
  EXPECT_LT(r.potential_per_round[9], r.potential_per_round[0] / 32.0);
  // Monotone apart from numerical noise.
  for (std::size_t t = 1; t < std::min<std::size_t>(r.potential_per_round.size(), 20); ++t)
    EXPECT_LE(r.potential_per_round[t], r.potential_per_round[t - 1] * 1.5);
}

TEST(PushSum, Theorem7LargestRootErrorSmall) {
  AveSetup s{4096, 62};
  PushSumConfig cfg;
  cfg.forward_via_trees = false;
  cfg.track_potential = true;
  const auto r = run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs, {}, cfg);
  const double err = std::fabs(r.z_estimate_per_round.back() - s.true_ratio) /
                     std::max(1.0, std::fabs(s.true_ratio));
  EXPECT_LT(err, 1e-6);
}

TEST(PushSum, SumModeWithIndicatorDenominator) {
  // den concentrated on one root -> common ratio limit is the global sum.
  AveSetup s{1024, 63};
  std::vector<double> den(1024, 0.0);
  den[s.drr.forest.largest_tree_root()] = 1.0;
  double true_sum = 0.0;
  for (NodeId r : s.drr.forest.roots()) true_sum += s.num0[r];
  PushSumConfig cfg;
  cfg.rounds_multiplier = 8.0;
  const auto r = run_root_push_sum(s.drr.forest, s.num0, den, s.rngs, {}, cfg);
  const NodeId z = s.drr.forest.largest_tree_root();
  EXPECT_NEAR(r.estimate[z], true_sum, 1e-3 * std::max(1.0, std::fabs(true_sum)));
}

TEST(PushSum, TrackingRequiresAnalysisMode) {
  AveSetup s{128, 64};
  PushSumConfig cfg;
  cfg.track_potential = true;
  cfg.forward_via_trees = true;
  EXPECT_THROW(run_root_push_sum(s.drr.forest, s.num0, s.den0, s.rngs, {}, cfg),
               std::invalid_argument);
}

TEST(PushSum, DeterministicFromSeed) {
  AveSetup s1{512, 65}, s2{512, 65};
  const auto a = run_root_push_sum(s1.drr.forest, s1.num0, s1.den0, s1.rngs);
  const auto b = run_root_push_sum(s2.drr.forest, s2.num0, s2.den0, s2.rngs);
  EXPECT_EQ(a.counters.sent, b.counters.sent);
  for (NodeId r : s1.drr.forest.roots()) EXPECT_DOUBLE_EQ(a.num[r], b.num[r]);
}

}  // namespace
}  // namespace drrg
