// Tests of the Forest data structure (Phase I output representation).

#include <gtest/gtest.h>

#include <vector>

#include "forest/forest.hpp"

namespace drrg {
namespace {

// A small fixed forest:
//        4            5
//       / \           |      .
//      2   3          6
//     / \                    .
//    0   1
Forest sample_forest() {
  std::vector<NodeId> parent{2, 2, 4, 4, kNoParent, kNoParent, 5};
  return Forest::from_parents(parent);
}

TEST(Forest, RootsAndParents) {
  Forest f = sample_forest();
  EXPECT_EQ(f.size(), 7u);
  EXPECT_EQ(f.num_trees(), 2u);
  EXPECT_TRUE(f.is_root(4));
  EXPECT_TRUE(f.is_root(5));
  EXPECT_FALSE(f.is_root(2));
  EXPECT_EQ(f.parent(0), 2u);
  EXPECT_EQ(f.parent(4), kNoParent);
}

TEST(Forest, Children) {
  Forest f = sample_forest();
  auto c4 = f.children(4);
  EXPECT_EQ(std::vector<NodeId>(c4.begin(), c4.end()), (std::vector<NodeId>{2, 3}));
  auto c2 = f.children(2);
  EXPECT_EQ(std::vector<NodeId>(c2.begin(), c2.end()), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(f.children(0).empty());
}

TEST(Forest, RootOfAndDepth) {
  Forest f = sample_forest();
  EXPECT_EQ(f.root_of(0), 4u);
  EXPECT_EQ(f.root_of(3), 4u);
  EXPECT_EQ(f.root_of(6), 5u);
  EXPECT_EQ(f.root_of(4), 4u);
  EXPECT_EQ(f.depth(4), 0u);
  EXPECT_EQ(f.depth(2), 1u);
  EXPECT_EQ(f.depth(0), 2u);
}

TEST(Forest, SizesAndHeights) {
  Forest f = sample_forest();
  EXPECT_EQ(f.tree_size(0), 5u);
  EXPECT_EQ(f.tree_size(6), 2u);
  EXPECT_EQ(f.tree_height(1), 2u);
  EXPECT_EQ(f.tree_height(5), 1u);
  EXPECT_EQ(f.max_tree_size(), 5u);
  EXPECT_EQ(f.max_tree_height(), 2u);
  auto sizes = f.tree_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 7u);
}

TEST(Forest, LargestTreeRoot) {
  Forest f = sample_forest();
  EXPECT_EQ(f.largest_tree_root(), 4u);
}

TEST(Forest, LargestTreeRootTieBreaksToSmallerId) {
  // Two singleton trees: ids 0 and 1, equal size -> pick 0.
  Forest f = Forest::from_parents({kNoParent, kNoParent});
  EXPECT_EQ(f.largest_tree_root(), 0u);
}

TEST(Forest, DetectsCycle) {
  EXPECT_THROW(Forest::from_parents({1, 2, 0}), std::invalid_argument);
}

TEST(Forest, DetectsSelfParent) {
  EXPECT_THROW(Forest::from_parents({0}), std::invalid_argument);
}

TEST(Forest, DetectsParentOutOfRange) {
  EXPECT_THROW(Forest::from_parents({5, kNoParent}), std::invalid_argument);
}

TEST(Forest, MemberMaskExcludesNodes) {
  std::vector<NodeId> parent{kNoParent, 0, kNoParent, kNoParent};
  std::vector<bool> member{true, true, false, true};
  Forest f = Forest::from_parents(parent, member);
  EXPECT_TRUE(f.is_member(0));
  EXPECT_FALSE(f.is_member(2));
  EXPECT_FALSE(f.is_root(2));
  EXPECT_EQ(f.num_trees(), 2u);  // 0 and 3
}

TEST(Forest, ParentMustBeMember) {
  std::vector<NodeId> parent{kNoParent, 0};
  std::vector<bool> member{false, true};
  EXPECT_THROW(Forest::from_parents(parent, member), std::invalid_argument);
}

TEST(Forest, RespectsRanks) {
  Forest f = sample_forest();
  // parent rank must be strictly higher.
  std::vector<double> good{0.1, 0.2, 0.5, 0.4, 0.9, 0.8, 0.3};
  EXPECT_TRUE(f.respects_ranks(good));
  std::vector<double> bad{0.1, 0.2, 0.95, 0.4, 0.9, 0.8, 0.3};  // rank(2) > rank(4)
  EXPECT_FALSE(f.respects_ranks(bad));
}

TEST(Forest, DeepChainDepths) {
  // 0 <- 1 <- 2 <- ... <- 99 (parent of i is i-1): root is 0.
  const std::uint32_t n = 100;
  std::vector<NodeId> parent(n);
  parent[0] = kNoParent;
  for (NodeId v = 1; v < n; ++v) parent[v] = v - 1;
  Forest f = Forest::from_parents(parent);
  EXPECT_EQ(f.num_trees(), 1u);
  EXPECT_EQ(f.max_tree_height(), n - 1);
  EXPECT_EQ(f.depth(n - 1), n - 1);
  EXPECT_EQ(f.root_of(n - 1), 0u);
}

TEST(Forest, EmptyForest) {
  Forest f;
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.num_trees(), 0u);
  EXPECT_EQ(f.max_tree_size(), 0u);
}

TEST(Forest, AllSingletons) {
  Forest f = Forest::from_parents(std::vector<NodeId>(10, kNoParent));
  EXPECT_EQ(f.num_trees(), 10u);
  EXPECT_EQ(f.max_tree_size(), 1u);
  EXPECT_EQ(f.max_tree_height(), 0u);
}

}  // namespace
}  // namespace drrg
