// The multi-process runtime: seed-list parsing, the membership state
// machine, loopback UDP delivery, report serialisation, and -- the
// system-level property -- a real forked cluster on 127.0.0.1 agreeing
// with the lockstep simulator on the same fault schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/registry.hpp"
#include "net/membership.hpp"
#include "net/multiproc.hpp"
#include "net/node.hpp"
#include "net/transport.hpp"  // compiles the Transport concept static_assert
#include "net/udp_transport.hpp"
#include "support/rng.hpp"
#include "support/workload.hpp"

namespace drrg {
namespace {

// --- parse_seed_list --------------------------------------------------------

TEST(SeedList, ParsesBarePortsAndHostPortPairs) {
  const auto bare = net::parse_seed_list("7001,7002,7003");
  ASSERT_TRUE(bare.has_value());
  ASSERT_EQ(bare->size(), 3u);
  EXPECT_EQ((*bare)[0].host, "127.0.0.1");
  EXPECT_EQ((*bare)[0].port, 7001);
  EXPECT_EQ((*bare)[2].port, 7003);

  const auto pairs = net::parse_seed_list("10.0.0.1:9000,10.0.0.2:9001");
  ASSERT_TRUE(pairs.has_value());
  EXPECT_EQ((*pairs)[0].host, "10.0.0.1");
  EXPECT_EQ((*pairs)[1].port, 9001);
}

TEST(SeedList, RejectsMalformedInput) {
  EXPECT_FALSE(net::parse_seed_list("").has_value());
  EXPECT_FALSE(net::parse_seed_list("a:b:").has_value());
  EXPECT_FALSE(net::parse_seed_list("7001,,7002").has_value());
  EXPECT_FALSE(net::parse_seed_list("host:").has_value());
  EXPECT_FALSE(net::parse_seed_list(":7001").has_value());
  EXPECT_FALSE(net::parse_seed_list("7001,99999").has_value());
  EXPECT_FALSE(net::parse_seed_list("7001,0").has_value());
  EXPECT_FALSE(net::parse_seed_list("7001x").has_value());
}

// --- membership -------------------------------------------------------------

TEST(Membership, HigherHeartbeatWinsAndTiesTakeTheWorseState) {
  net::Membership m{4, /*self=*/0};
  m.merge(net::MemberEntry{1, net::PeerState::kAlive, 5}, 100);
  EXPECT_EQ(m.state(1), net::PeerState::kAlive);

  // A stale death (lower heartbeat) loses.
  m.merge(net::MemberEntry{1, net::PeerState::kDead, 3}, 110);
  EXPECT_EQ(m.state(1), net::PeerState::kAlive);

  // The same heartbeat with a worse state sticks.
  m.merge(net::MemberEntry{1, net::PeerState::kSuspect, 5}, 120);
  EXPECT_EQ(m.state(1), net::PeerState::kSuspect);

  // A higher heartbeat revives regardless of current state.
  m.merge(net::MemberEntry{1, net::PeerState::kAlive, 6}, 130);
  EXPECT_EQ(m.state(1), net::PeerState::kAlive);
}

TEST(Membership, SilenceAgesAlivePeersToSuspectThenDead) {
  net::MembershipConfig cfg;
  cfg.suspect_after_ms = 100;
  cfg.dead_after_ms = 300;
  cfg.suspect_confirm_ms = 150;
  net::Membership m{3, /*self=*/0, cfg};
  m.heard_from(1, 0);
  m.age(50);
  EXPECT_EQ(m.state(1), net::PeerState::kAlive);
  m.age(150);
  EXPECT_EQ(m.state(1), net::PeerState::kSuspect);
  m.age(350);  // silent 350 >= 300, suspect since 150: window met
  EXPECT_EQ(m.state(1), net::PeerState::kDead);
  EXPECT_TRUE(m.is_dead(1));

  // Direct evidence revives a locally-declared death.
  m.heard_from(1, 400);
  EXPECT_EQ(m.state(1), net::PeerState::kAlive);
  EXPECT_EQ(m.flaps(), 1u);
}

TEST(Membership, DelayedButAliveHeartbeatsNeverConfirmADeath) {
  // The hysteresis regression: a peer whose frames arrive late (heavy-
  // tail delay) keeps tripping the silence thresholds, but every landing
  // restarts the confirm window, so latency alone never evicts it.
  net::MembershipConfig cfg;
  cfg.suspect_after_ms = 100;
  cfg.dead_after_ms = 300;
  cfg.suspect_confirm_ms = 200;
  net::Membership m{2, /*self=*/0, cfg};
  std::int64_t heard = 0;
  for (std::int64_t now = 0; now <= 4000; now += 50) {
    m.age(now);
    EXPECT_FALSE(m.is_dead(1)) << "evicted at t=" << now;
    if (now - heard >= 250) {  // a straggler lands inside the confirm window
      m.heard_from(1, now);
      heard = now;
    }
  }
  EXPECT_GE(m.flaps(), 1u);  // each rescue from suspect is counted

  // Without the window (confirm = 0) the same pattern kills the peer.
  net::MembershipConfig old = cfg;
  old.suspect_confirm_ms = 0;
  net::Membership bare{2, /*self=*/0, old};
  bare.age(150);
  bare.age(350);
  EXPECT_TRUE(bare.is_dead(1));
}

TEST(Membership, DigestLeadsWithSelfAndRespectsTheWireBound) {
  net::Membership m{40, /*self=*/7};
  for (std::uint32_t v = 0; v < 40; ++v)
    if (v != 7) m.heard_from(v, 10 + v);
  net::Frame f;
  m.fill_digest(f);
  EXPECT_EQ(f.id, net::MsgId::kMemberGossip);
  ASSERT_EQ(f.n_members, net::kMaxMemberEntries);
  EXPECT_EQ(f.members[0].node, 7u);  // self first
  // Most recently heard peers follow.
  EXPECT_EQ(f.members[1].node, 39u);
}

TEST(Membership, SamplesOnlyPeersNotBelievedDead) {
  net::MembershipConfig cfg;
  cfg.suspect_after_ms = 10;
  cfg.dead_after_ms = 20;
  cfg.suspect_confirm_ms = 0;  // no hysteresis: this test is about sampling
  net::Membership m{4, /*self=*/0, cfg};
  m.heard_from(2, 1000);  // 1 and 3 stay silent since t=0
  m.age(1005);            // 1/3 silent past both thresholds, 2 heard 5ms ago
  EXPECT_TRUE(m.is_dead(1));
  EXPECT_FALSE(m.is_dead(2));
  Rng rng{99};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(m.sample_live_peer(rng), 2u);

  m.merge(net::MemberEntry{2, net::PeerState::kDead, 100}, 1010);
  EXPECT_EQ(m.sample_live_peer(rng), 4u);  // n = nobody left
  EXPECT_EQ(m.alive_count(), 1u);          // just self
}

// --- UDP loopback -----------------------------------------------------------

TEST(UdpTransport, DeliversFramesBetweenLoopbackSockets) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  net::UdpTransport a, b;
  ASSERT_TRUE(a.bind(0));
  ASSERT_TRUE(b.bind(0));
  const std::vector<net::PeerAddr> peers{{"127.0.0.1", a.port()},
                                         {"127.0.0.1", b.port()}};
  ASSERT_TRUE(a.set_peers(2, 0, peers));
  ASSERT_TRUE(b.set_peers(2, 0, peers));

  net::Frame f;
  f.id = net::MsgId::kProbeAck;
  f.src = 0;
  f.dst = 1;
  f.seq = 42;
  f.max = 0.625;
  ASSERT_TRUE(a.send(f));

  net::Frame got;
  bool delivered = false;
  for (int tries = 0; tries < 50 && !delivered; ++tries)
    delivered = b.poll(got, 20);
  ASSERT_TRUE(delivered);
  EXPECT_EQ(got, f);
  EXPECT_EQ(a.stats().sent, 1u);
  EXPECT_EQ(b.stats().delivered, 1u);
}

TEST(UdpTransport, InjectedLossDropsButStillCountsAsSent) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  net::UdpTransport a;
  ASSERT_TRUE(a.bind(0));
  ASSERT_TRUE(a.set_peers(1, 0, {{"127.0.0.1", a.port()}}));
  a.set_loss(1.0, Rng{7});
  net::Frame f;
  f.id = net::MsgId::kPing;
  f.src = 0;
  f.dst = 0;
  ASSERT_TRUE(a.send(f));
  EXPECT_EQ(a.stats().sent, 1u);
  EXPECT_EQ(a.stats().dropped, 1u);
  net::Frame got;
  EXPECT_FALSE(a.poll(got, 10));
}

// --- report serialisation ---------------------------------------------------

TEST(NodeReport, RoundTripsThroughThePipeEncoding) {
  net::NodeReport r;
  r.node = 13;
  r.ok = true;
  r.root = true;
  r.parent = 0xffffffffu;
  r.max = 74.844216058581296;
  r.min = -0.125;
  r.sum = 1e-300;
  r.count = 57;
  r.sent = 1234;
  r.delivered = 1200;
  r.bits = 99999;
  r.retries = 7;
  r.steps = 11;
  r.roots_seen = 3;
  r.wall_ms = 4321;
  r.duplicates_dropped = 21;
  r.corrupt_rejected = 5;
  r.reorders_buffered = 17;
  r.backoff_ms_total = 4096;
  r.suspect_flaps = 2;
  r.error = "pipe|chars\nare sanitised";
  net::NodeReport d;
  ASSERT_TRUE(net::decode_report(net::encode_report(r), d));
  EXPECT_EQ(d.node, r.node);
  EXPECT_EQ(d.ok, r.ok);
  EXPECT_EQ(d.root, r.root);
  EXPECT_EQ(d.parent, r.parent);
  EXPECT_EQ(d.max, r.max);  // full round-trip precision
  EXPECT_EQ(d.min, r.min);
  EXPECT_EQ(d.sum, r.sum);
  EXPECT_EQ(d.count, r.count);
  EXPECT_EQ(d.sent, r.sent);
  EXPECT_EQ(d.wall_ms, r.wall_ms);
  EXPECT_EQ(d.duplicates_dropped, r.duplicates_dropped);
  EXPECT_EQ(d.corrupt_rejected, r.corrupt_rejected);
  EXPECT_EQ(d.reorders_buffered, r.reorders_buffered);
  EXPECT_EQ(d.backoff_ms_total, r.backoff_ms_total);
  EXPECT_EQ(d.suspect_flaps, r.suspect_flaps);
  EXPECT_EQ(d.error, "pipe/chars/are sanitised");

  net::NodeReport bad;
  EXPECT_FALSE(net::decode_report("not a report", bad));
  EXPECT_FALSE(net::decode_report("1|2|3", bad));
}

// --- the cluster end to end -------------------------------------------------

TEST(Cluster, CleanRunComputesEveryAggregateExactly) {
  if (!net::multiproc_available()) GTEST_SKIP() << "no fork/UDP on this platform";
  constexpr std::uint32_t kN = 8;
  net::ClusterOptions opt;
  opt.n = kN;
  opt.seed = 3;
  opt.values = {5.0, 1.0, 9.0, 4.0, 8.0, 2.0, 7.0, 3.0};
  // Localhost is fast: shrink the wall-clock knobs so the suite stays
  // snappy (the CI smoke run exercises the defaults at N = 64).
  opt.node_template.bootstrap_min_ms = 150;
  opt.node_template.subtree_stable_ms = 250;
  opt.node_template.linger_ms = 300;
  opt.node_template.deadline_ms = 20000;
  const net::ClusterReport cluster = net::run_cluster(opt);
  ASSERT_TRUE(cluster.ok) << cluster.error;
  ASSERT_EQ(cluster.nodes.size(), kN);
  for (const net::NodeReport& r : cluster.nodes) {
    EXPECT_TRUE(r.ok) << "node " << r.node << ": " << r.error;
    EXPECT_EQ(r.max, 9.0) << "node " << r.node;
    EXPECT_EQ(r.min, 1.0) << "node " << r.node;
    EXPECT_EQ(r.sum, 39.0) << "node " << r.node;
    EXPECT_EQ(r.count, kN) << "node " << r.node;
  }
}

TEST(Cluster, ChurnDegradesButEveryNodeTerminatesWithAValue) {
  if (!net::multiproc_available()) GTEST_SKIP() << "no fork/UDP on this platform";
  // Mid-run churn kills parents *after* they acked tree values: children
  // end up passively waiting for a final that will never come.  The
  // failure detector must break that wait (orphan promotion), so every
  // scheduled survivor terminates ok well inside its deadline -- churn
  // degrades the answer, it must never hang the cluster.
  net::ClusterOptions opt;
  opt.n = 10;
  opt.seed = 11;
  opt.faults = sim::FaultSchedule{/*loss=*/0.0, /*crash=*/0.0, {{6, 0.3}}};
  opt.node_template.deadline_ms = 20000;
  const net::ClusterReport cluster = net::run_cluster(opt);
  ASSERT_TRUE(cluster.ok) << cluster.error;
  for (const net::NodeReport& r : cluster.nodes) {
    if (r.scheduled_crash) continue;
    EXPECT_TRUE(r.ok) << "node " << r.node << ": " << r.error;
    EXPECT_GE(r.count, 1u) << "node " << r.node;
  }
}

TEST(Cluster, MatchesTheSimulatorOnMaxUnderCrashes) {
  if (!net::multiproc_available()) GTEST_SKIP() << "no fork/UDP on this platform";
  api::RunSpec spec;
  spec.n = 12;
  spec.aggregate = api::Aggregate::kMax;
  spec.seed = 7;
  spec.faults = sim::FaultSchedule{/*loss=*/0.0, /*crash=*/0.25};

  spec.transport = api::Transport::kUdp;
  const api::RunReport udp = api::run("drr", spec);
  ASSERT_TRUE(udp.ok()) << udp.error;
  EXPECT_TRUE(udp.consensus);

  spec.transport = api::Transport::kSim;
  const api::RunReport simulated = api::run("drr", spec);
  ASSERT_TRUE(simulated.ok()) << simulated.error;

  // Same seed -> same fault timeline -> same survivor set; max over the
  // survivors is exact in both worlds, so the values agree bit for bit.
  EXPECT_EQ(udp.value, simulated.value);
  EXPECT_EQ(udp.truth, simulated.truth);
  EXPECT_EQ(udp.participating, simulated.participating);
}

TEST(Registry, GatesTheUdpTransportPerAlgorithm) {
  api::RunSpec spec;
  spec.n = 16;
  spec.aggregate = api::Aggregate::kMax;
  spec.transport = api::Transport::kUdp;
  const api::RunReport r = api::run("uniform", spec);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.error.find("transport"), std::string::npos);

  const api::AlgorithmInfo* drr = api::Registry::instance().find("drr");
  ASSERT_NE(drr, nullptr);
  EXPECT_TRUE(drr->supports(api::Transport::kUdp));
  const api::AlgorithmInfo* uniform = api::Registry::instance().find("uniform");
  ASSERT_NE(uniform, nullptr);
  EXPECT_FALSE(uniform->supports(api::Transport::kUdp));
  EXPECT_TRUE(uniform->supports(api::Transport::kSim));
}

}  // namespace
}  // namespace drrg
