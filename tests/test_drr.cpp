// Tests of Phase I: the DRR algorithm (Algorithm 1) and its Theorem 2/3/4
// observables.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "drr/drr.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

DrrResult run(std::uint32_t n, std::uint64_t seed, sim::FaultModel fm = {},
              DrrConfig cfg = {}) {
  RngFactory rngs{seed};
  return run_drr(n, rngs, fm, cfg);
}

// ---------------------------------------------------------------------------
// Structural invariants, parameterised over (n, seed, loss).

class DrrInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t, double>> {};

TEST_P(DrrInvariants, ForestIsValidAndRankRespecting) {
  const auto [n, seed, delta] = GetParam();
  const DrrResult r = run(n, seed, sim::FaultModel{delta, 0.0});
  // Forest::from_parents would have thrown on a cycle; check ranks.
  EXPECT_TRUE(r.forest.respects_ranks(r.ranks));
  // Every node is a member and in exactly one tree.
  std::uint32_t total = 0;
  for (NodeId root : r.forest.roots()) total += r.forest.tree_size(root);
  EXPECT_EQ(total, n);
}

TEST_P(DrrInvariants, TimeWithinBudget) {
  const auto [n, seed, delta] = GetParam();
  const DrrResult r = run(n, seed, sim::FaultModel{delta, 0.0});
  // Probe budget + connect retries + slack (the run_drr hard cap).
  EXPECT_LE(r.rounds, drr_probe_budget(n) + 8 + 2);
}

TEST_P(DrrInvariants, ProbeCountWithinPerNodeBudget) {
  const auto [n, seed, delta] = GetParam();
  const DrrResult r = run(n, seed, sim::FaultModel{delta, 0.0});
  EXPECT_LE(r.total_probes, static_cast<std::uint64_t>(n) * drr_probe_budget(n));
  EXPECT_GE(r.total_probes, static_cast<std::uint64_t>(n));  // everyone probes once
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DrrInvariants,
    ::testing::Combine(::testing::Values(64u, 256u, 1024u, 4096u),
                       ::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(0.0, 0.125)));

// ---------------------------------------------------------------------------
// Theorem 2: number of trees is Theta(n / log n).

TEST(DrrTheorem2, TreeCountNearPrediction) {
  // E[#trees] = sum_i (i/n)^(d) ~ n/(d+1) with d = log2(n)-1 probes.
  for (const std::uint32_t n : {1024u, 4096u}) {
    const double d = drr_probe_budget(n);
    const double expected = static_cast<double>(n) / (d + 1.0);
    double total = 0.0;
    const int trials = 8;
    for (int s = 0; s < trials; ++s)
      total += static_cast<double>(run(n, 100 + s).forest.num_trees());
    const double mean = total / trials;
    EXPECT_GT(mean, 0.5 * expected) << n;
    EXPECT_LT(mean, 2.5 * expected) << n;
  }
}

TEST(DrrTheorem2, TreeCountConcentrates) {
  // Theorem 2: #trees <= 6 E[X] whp; check a generous multiple.
  const std::uint32_t n = 2048;
  const double expected = static_cast<double>(n) / (drr_probe_budget(n) + 1.0);
  for (int s = 0; s < 12; ++s)
    EXPECT_LT(run(n, 500 + s).forest.num_trees(), 6 * expected);
}

// ---------------------------------------------------------------------------
// Theorem 3: every tree has O(log n) nodes.

TEST(DrrTheorem3, MaxTreeSizeLogarithmic) {
  for (const std::uint32_t n : {256u, 1024u, 4096u, 16384u}) {
    std::uint32_t worst = 0;
    for (int s = 0; s < 6; ++s) worst = std::max(worst, run(n, 900 + s).forest.max_tree_size());
    // c log2 n: the theorem's constant is large ("c sufficiently large");
    // empirically the max over seeds sits around 12-15 x log2 n.
    EXPECT_LE(worst, 30 * ceil_log2(n)) << n;
  }
}

TEST(DrrTheorem3, MaxSizeGrowsSublinearly) {
  // Ratio max_size/n must fall sharply with n (it is O(log n / n)).
  const double r1 =
      static_cast<double>(run(256, 42).forest.max_tree_size()) / 256.0;
  const double r2 =
      static_cast<double>(run(16384, 42).forest.max_tree_size()) / 16384.0;
  EXPECT_LT(r2, r1 / 8.0);
}

// ---------------------------------------------------------------------------
// Theorem 4: O(n log log n) messages, O(log n) rounds.

TEST(DrrTheorem4, ProbesPerNodeIsLogLog) {
  // E[probes per node] = O(log d) = O(log log n): check it grows much
  // slower than log n and stays within a small constant of log2 log2 n.
  for (const std::uint32_t n : {256u, 4096u, 65536u}) {
    const DrrResult r = run(n, 7);
    const double per_node = static_cast<double>(r.total_probes) / n;
    EXPECT_LT(per_node, 4.0 * loglog2_clamped(n)) << n;
    EXPECT_GE(per_node, 1.0) << n;
  }
}

TEST(DrrTheorem4, MessagesScaleAsNLogLog) {
  // messages / (n log log n) should stay bounded as n grows 256x.
  const DrrResult small = run(256, 9);
  const DrrResult big = run(65536, 9);
  const double c_small =
      static_cast<double>(small.counters.sent) / (256.0 * loglog2_clamped(256));
  const double c_big =
      static_cast<double>(big.counters.sent) / (65536.0 * loglog2_clamped(65536));
  EXPECT_LT(c_big, 3.0 * c_small);
  EXPECT_GT(c_big, c_small / 3.0);
}

// ---------------------------------------------------------------------------
// Determinism and configuration.

TEST(Drr, DeterministicFromSeed) {
  const DrrResult a = run(512, 1234), b = run(512, 1234);
  EXPECT_EQ(a.forest.num_trees(), b.forest.num_trees());
  EXPECT_EQ(a.counters.sent, b.counters.sent);
  for (NodeId v = 0; v < 512; ++v) {
    EXPECT_EQ(a.forest.parent(v), b.forest.parent(v));
    EXPECT_EQ(a.ranks[v], b.ranks[v]);
  }
}

TEST(Drr, SeedsProduceDifferentForests) {
  const DrrResult a = run(512, 1), b = run(512, 2);
  bool any_diff = false;
  for (NodeId v = 0; v < 512; ++v) any_diff |= a.forest.parent(v) != b.forest.parent(v);
  EXPECT_TRUE(any_diff);
}

TEST(Drr, ProbeBudgetAblation) {
  // More probes -> fewer roots (monotone in expectation).
  DrrConfig few, many;
  few.probe_budget = 2;
  many.probe_budget = 2 * ceil_log2(4096);
  double roots_few = 0, roots_many = 0;
  for (int s = 0; s < 5; ++s) {
    roots_few += run(4096, 50 + s, {}, few).forest.num_trees();
    roots_many += run(4096, 50 + s, {}, many).forest.num_trees();
  }
  EXPECT_GT(roots_few, roots_many * 1.5);
}

TEST(Drr, CrashedNodesExcluded) {
  const DrrResult r = run(1024, 77, sim::FaultModel{0.0, 0.25});
  std::uint32_t members = 0;
  for (NodeId v = 0; v < 1024; ++v) members += r.forest.is_member(v);
  EXPECT_EQ(members, 768u);
  // All trees consist of members only (from_parents enforced it).
  std::uint32_t total = 0;
  for (NodeId root : r.forest.roots()) total += r.forest.tree_size(root);
  EXPECT_EQ(total, 768u);
}

TEST(Drr, HeavyLossStillYieldsValidForest) {
  const DrrResult r = run(512, 5, sim::FaultModel{0.4, 0.0});  // far above delta<1/8
  EXPECT_TRUE(r.forest.respects_ranks(r.ranks));
  EXPECT_GE(r.forest.num_trees(), 1u);
}

TEST(Drr, LossIncreasesTreeCount) {
  // Lost probes waste attempts, so more nodes end up as roots.
  double clean = 0, lossy = 0;
  for (int s = 0; s < 6; ++s) {
    clean += run(2048, 200 + s).forest.num_trees();
    lossy += run(2048, 200 + s, sim::FaultModel{0.3, 0.0}).forest.num_trees();
  }
  EXPECT_GT(lossy, clean);
}

TEST(Drr, RejectsDegenerateN) {
  RngFactory rngs{1};
  EXPECT_THROW(run_drr(1, rngs), std::invalid_argument);
}

TEST(Drr, MessageSizeBounded) {
  // Mean bits per message must be O(log n + log s): ranks are 3 log n bits.
  const std::uint32_t n = 4096;
  const DrrResult r = run(n, 3);
  const double mean_bits = static_cast<double>(r.counters.bits) /
                           static_cast<double>(r.counters.sent);
  EXPECT_LE(mean_bits, 4.0 * address_bits(n));
}

}  // namespace
}  // namespace drrg
