// Tests of the drrg::api runner facade and algorithm registry: the
// registry (not a hand-written table) is the source of truth for which
// algorithm implements which aggregate, and every supported pair must
// produce a consensus value within the family's error bound at delta = 0.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/registry.hpp"

namespace drrg::api {
namespace {


/// Builds a spec without designated initializers (keeps -Wextra quiet).
RunSpec make_spec(std::uint32_t n, Aggregate agg = Aggregate::kAve,
                  std::uint64_t seed = 42) {
  RunSpec spec;
  spec.n = n;
  spec.aggregate = agg;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------------------
// Registry contents.

TEST(Registry, BuiltinAlgorithmsAreRegistered) {
  const std::vector<std::string> expected{"drr",     "uniform",   "efficient",
                                          "pairwise", "extrema",  "chord-drr",
                                          "chord-uniform"};
  const auto names = Registry::instance().names();
  for (const auto& name : expected)
    EXPECT_NE(Registry::instance().find(name), nullptr) << name;
  EXPECT_GE(names.size(), expected.size());
}

TEST(Registry, FindUnknownReturnsNull) {
  EXPECT_EQ(Registry::instance().find("no-such-algorithm"), nullptr);
}

TEST(Registry, DeclaredAggregateSets) {
  const auto* drr = Registry::instance().find("drr");
  ASSERT_NE(drr, nullptr);
  for (Aggregate agg : kAllAggregates) EXPECT_TRUE(drr->supports(agg));

  const auto* pairwise = Registry::instance().find("pairwise");
  ASSERT_NE(pairwise, nullptr);
  EXPECT_TRUE(pairwise->supports(Aggregate::kAve));
  EXPECT_FALSE(pairwise->supports(Aggregate::kMax));

  const auto* extrema = Registry::instance().find("extrema");
  ASSERT_NE(extrema, nullptr);
  EXPECT_TRUE(extrema->supports(Aggregate::kCount));
  EXPECT_TRUE(extrema->supports(Aggregate::kSum));
  EXPECT_FALSE(extrema->supports(Aggregate::kAve));
}

TEST(Registry, DuplicateRegistrationThrows) {
  AlgorithmInfo dup;
  dup.name = "drr";
  dup.invoke = [](const RunSpec&) { return RunReport{}; };
  EXPECT_THROW(Registry::instance().add(std::move(dup)), std::invalid_argument);
}

TEST(Registry, AggregateNamesRoundTrip) {
  for (Aggregate agg : kAllAggregates) {
    const auto back = aggregate_from_name(to_string(agg));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, agg);
  }
  EXPECT_FALSE(aggregate_from_name("no-such-aggregate").has_value());
}

// ---------------------------------------------------------------------------
// Error reporting through run().

TEST(Run, UnknownAlgorithmIsReported) {
  const RunReport r = run("no-such-algorithm", make_spec(64));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.error.find("unknown algorithm"), std::string::npos);
}

TEST(Run, UnsupportedPairIsReported) {
  const RunReport r = run("pairwise", make_spec(64, Aggregate::kMax));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.error.find("not supported"), std::string::npos);
}

TEST(Run, ConfigTypeMismatchIsReported) {
  RunSpec spec = make_spec(64);
  spec.config = PairwiseConfig{};  // wrong type for "drr"
  const RunReport r = run("drr", spec);
  EXPECT_TRUE(r.supported);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.error.empty());
}

TEST(Run, ExplicitValuesAreUsed) {
  RunSpec spec = make_spec(8, Aggregate::kMax, 3);
  spec.values = {1, 2, 3, 4, 5, 6, 7, 99};
  const RunReport r = run("drr", spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 99.0);
  EXPECT_EQ(r.truth, 99.0);
}

// ---------------------------------------------------------------------------
// run_trials determinism.

TEST(RunTrials, DistinctSeedsDeterministicReports) {
  const RunSpec spec = make_spec(128, Aggregate::kAve, 9);
  const auto a = run_trials("drr", spec, 3);
  const auto b = run_trials("drr", spec, 3);
  ASSERT_EQ(a.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(a[t].seed, trial_seed(spec.seed, t));  // derived, order-independent
    EXPECT_EQ(a[t].value, b[t].value);
    EXPECT_EQ(a[t].cost.sent, b[t].cost.sent);
  }
  EXPECT_EQ(a[0].seed, spec.seed);  // trial 0 runs the spec's own seed
}

// ---------------------------------------------------------------------------
// The full matrix at delta = 0: every pair is enumerated from the
// registry; unsupported pairs are reported (not skipped); supported pairs
// produce a value.

TEST(RunMatrix, EnumeratesEveryAlgorithmAggregatePair) {
  const RunSpec base = make_spec(256, Aggregate::kAve, 17);
  const auto reports = run_matrix(base);

  const auto algos = Registry::instance().algorithms();
  ASSERT_EQ(reports.size(), algos.size() * std::size(kAllAggregates));

  std::size_t supported_pairs = 0;
  for (const RunReport& r : reports) {
    const auto* algo = Registry::instance().find(r.algorithm);
    ASSERT_NE(algo, nullptr) << r.algorithm;
    const std::string label =
        r.algorithm + "/" + std::string{to_string(r.aggregate)};
    if (!algo->supports(r.aggregate)) {
      EXPECT_FALSE(r.supported) << label;
      EXPECT_FALSE(r.error.empty()) << label;
      continue;
    }
    ++supported_pairs;
    ASSERT_TRUE(r.ok()) << label << ": " << r.error;
    EXPECT_GT(r.cost.sent, 0u) << label;
  }
  // The seven built-ins implement 8 + 2 + 2 + 1 + 2 + 2 + 2 pairs.
  EXPECT_GE(supported_pairs, 19u);
}

// ---------------------------------------------------------------------------
// Consensus and truth-error bounds for every supported pair, with each
// family given the configuration its accuracy analysis assumes (the
// epsilon-averagers need more push rounds at small n, exactly as the
// failure benches configure them).

/// Per-algorithm config for the convergence matrix.
AlgorithmConfig convergence_config(const std::string& algo) {
  if (algo == "drr") {
    DrrGossipConfig cfg;
    cfg.push_sum.rounds_multiplier = 8.0;
    return cfg;
  }
  if (algo == "chord-drr") {
    SparseGossipConfig cfg;
    cfg.push_sum.rounds_multiplier = 8.0;
    return cfg;
  }
  if (algo == "pairwise") {
    PairwiseConfig cfg;
    cfg.round_multiplier = 12.0;
    cfg.extra_rounds = 16;
    return cfg;
  }
  if (algo == "chord-uniform") {
    ChordUniformConfig cfg;
    cfg.round_multiplier = 16.0;
    cfg.extra_rounds = 8;
    return cfg;
  }
  if (algo == "extrema") {
    ExtremaConfig cfg;
    cfg.k = 256;  // rse ~ 6.3%
    return cfg;
  }
  return {};
}

/// Relative-error bound (RunReport::rel_error) per pair at delta = 0.
/// Idempotent aggregates are exact; push-sum-based ones carry the
/// epsilon of their round budget; extrema Count/Sum is an estimator with
/// rse 1/sqrt(k-2) ~ 6.3% at k = 256 (bound ~4 sigma).
double error_bound(const std::string& algo, Aggregate agg) {
  if (algo == "extrema") return 0.25;
  if (agg == Aggregate::kMax || agg == Aggregate::kMin || agg == Aggregate::kLeader)
    return 0.0;
  if (agg == Aggregate::kMedian) return 0.05;  // bisection resolution
  return 1e-3;  // the push-sum / pairwise averaging family
}

TEST(RunMatrix, SupportedPairsReachConsensusWithinErrorBounds) {
  for (const AlgorithmInfo* algo : Registry::instance().algorithms()) {
    for (Aggregate agg : kAllAggregates) {
      if (!algo->supports(agg)) continue;
      RunSpec spec = make_spec(256, agg, 17);
      spec.rank_threshold = 25.0;
      spec.config = convergence_config(algo->name);
      const RunReport r = run(algo->name, spec);
      const std::string label = algo->name + "/" + std::string{to_string(agg)};
      ASSERT_TRUE(r.ok()) << label << ": " << r.error;
      EXPECT_TRUE(r.consensus) << label;
      EXPECT_LE(r.rel_error(), error_bound(algo->name, agg))
          << label << ": value " << r.value << " vs truth " << r.truth;
    }
  }
}

}  // namespace
}  // namespace drrg::api
