// Tests of the synchronous random-phone-call engine (src/sim).

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace drrg::sim {
namespace {

struct Ping {
  int tag = 0;
};

/// Node 0 sends one message to node 1 in round 0.
struct OneShot {
  bool sent = false;
  std::vector<std::pair<std::uint32_t, int>> received;  // (round, tag)

  void on_round(Network<Ping>& net, NodeId v) {
    if (v == 0 && !sent) {
      sent = true;
      net.send(0, 1, Ping{7}, 16);
    }
  }
  void on_message(Network<Ping>& net, NodeId, NodeId dst, const Ping& m) {
    if (dst == 1) received.push_back({net.round(), m.tag});
  }
};

TEST(Engine, DeliversWithinTheRound) {
  RngFactory rngs{1};
  Network<Ping> net{4, rngs};
  OneShot proto;
  net.run(proto, 3);
  ASSERT_EQ(proto.received.size(), 1u);
  EXPECT_EQ(proto.received[0].first, 0u);  // delivered in round 0
  EXPECT_EQ(proto.received[0].second, 7);
  EXPECT_EQ(net.counters().sent, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
  EXPECT_EQ(net.counters().bits, 16u);
  EXPECT_EQ(net.counters().rounds, 3u);
}

/// Forwarding: 0 -> 1 (round 0), 1 forwards -> 2 (arrives round 1).
struct ForwardChain {
  std::uint32_t arrival_round = 99;

  void on_round(Network<Ping>& net, NodeId v) {
    if (v == 0 && net.round() == 0) net.send(0, 1, Ping{1}, 8);
  }
  void on_message(Network<Ping>& net, NodeId, NodeId dst, const Ping& m) {
    if (dst == 1) net.send(1, 2, m, 8);  // forward costs one extra round
    if (dst == 2) arrival_round = net.round();
  }
};

TEST(Engine, ForwardingCostsOneRound) {
  RngFactory rngs{2};
  Network<Ping> net{3, rngs};
  ForwardChain proto;
  net.run(proto, 4);
  EXPECT_EQ(proto.arrival_round, 1u);
  EXPECT_EQ(net.counters().sent, 2u);
}

/// Replies are delivered in the same round via on_reply.
struct Echo {
  std::uint32_t reply_round = 99;
  int reply_tag = 0;

  void on_round(Network<Ping>& net, NodeId v) {
    if (v == 0 && net.round() == 0) net.send(0, 1, Ping{5}, 8);
  }
  void on_message(Network<Ping>& net, NodeId src, NodeId dst, const Ping& m) {
    net.reply(dst, src, Ping{m.tag + 1}, 8);
  }
  void on_reply(Network<Ping>& net, NodeId, NodeId dst, const Ping& m) {
    if (dst == 0) {
      reply_round = net.round();
      reply_tag = m.tag;
    }
  }
};

TEST(Engine, RepliesSameRound) {
  RngFactory rngs{3};
  Network<Ping> net{2, rngs};
  Echo proto;
  net.run(proto, 3);
  EXPECT_EQ(proto.reply_round, 0u);
  EXPECT_EQ(proto.reply_tag, 6);
}

TEST(Engine, RepliesAreReliableUnderLoss) {
  // loss_prob = 1 would drop every initiating call; replies never drop.
  // Use loss 0 for the initiating call by sending enough attempts.
  RngFactory rngs{4};
  FaultModel fm{0.5, 0.0};
  Network<Ping> net{2, rngs, fm};
  struct P {
    int got_reply = 0;
    int sent = 0;
    void on_round(Network<Ping>& net_, NodeId v) {
      if (v == 0) {
        ++sent;
        net_.send(0, 1, Ping{1}, 8);
      }
    }
    void on_message(Network<Ping>& net_, NodeId src, NodeId dst, const Ping& m) {
      net_.reply(dst, src, m, 8);
    }
    void on_reply(Network<Ping>&, NodeId, NodeId dst, const Ping&) {
      if (dst == 0) ++got_reply;
    }
  } proto;
  net.run(proto, 200);
  // Every delivered call produced a reply: delivered = 2 * (calls through).
  EXPECT_EQ(net.counters().delivered, 2 * static_cast<std::uint64_t>(proto.got_reply));
  EXPECT_GT(proto.got_reply, 40);   // ~half of 200
  EXPECT_LT(proto.got_reply, 160);
}

struct Flood {
  void on_round(Network<Ping>& net, NodeId v) { net.send(v, (v + 1) % net.size(), Ping{}, 4); }
  void on_message(Network<Ping>&, NodeId, NodeId, const Ping&) {}
};

TEST(Engine, LossRateMatchesModel) {
  RngFactory rngs{5};
  FaultModel fm{0.125, 0.0};
  Network<Ping> net{64, rngs, fm};
  Flood proto;
  net.run(proto, 500);
  const auto& c = net.counters();
  EXPECT_EQ(c.sent, 64u * 500);
  const double loss_rate = static_cast<double>(c.lost) / static_cast<double>(c.sent);
  EXPECT_NEAR(loss_rate, 0.125, 0.01);
  EXPECT_EQ(c.sent, c.delivered + c.lost);
}

TEST(Engine, CrashedNodesNeitherSendNorReceive) {
  RngFactory rngs{6};
  FaultModel fm{0.0, 0.25};
  Network<Ping> net{100, rngs, fm};
  EXPECT_EQ(net.alive_nodes().size(), 75u);
  for (NodeId v : net.alive_nodes()) EXPECT_TRUE(net.alive(v));

  struct P {
    std::vector<int> received;
    P() : received(100, 0) {}
    void on_round(Network<Ping>& net_, NodeId v) { net_.send(v, (v + 1) % 100, Ping{}, 4); }
    void on_message(Network<Ping>&, NodeId, NodeId dst, const Ping&) { ++received[dst]; }
  } proto;
  net.run(proto, 10);
  for (NodeId v = 0; v < 100; ++v) {
    if (!net.alive(v)) {
      EXPECT_EQ(proto.received[v], 0) << "crashed node received";
    }
  }
  // Messages to crashed nodes are counted lost.
  EXPECT_GT(net.counters().lost, 0u);
}

TEST(Engine, CrashSetConsistentAcrossPurposes) {
  RngFactory rngs{7};
  FaultModel fm{0.0, 0.3};
  Network<Ping> a{50, rngs, fm, /*purpose=*/1};
  Network<Ping> b{50, rngs, fm, /*purpose=*/2};
  ASSERT_EQ(a.alive_nodes().size(), b.alive_nodes().size());
  for (std::size_t i = 0; i < a.alive_nodes().size(); ++i)
    EXPECT_EQ(a.alive_nodes()[i], b.alive_nodes()[i]);
}

TEST(Engine, AtLeastOneNodeSurvives) {
  RngFactory rngs{8};
  FaultModel fm{0.0, 0.999};
  Network<Ping> net{10, rngs, fm};
  EXPECT_GE(net.alive_nodes().size(), 1u);
}

TEST(Engine, DoneStopsEarly) {
  RngFactory rngs{9};
  Network<Ping> net{4, rngs};
  struct P {
    int rounds_seen = 0;
    void on_round(Network<Ping>&, NodeId v) {
      if (v == 0) ++rounds_seen;
    }
    [[nodiscard]] bool done(const Network<Ping>&) const { return rounds_seen >= 3; }
  } proto;
  const std::uint32_t executed = net.run(proto, 100);
  EXPECT_EQ(executed, 3u);
  EXPECT_EQ(net.counters().rounds, 3u);
}

TEST(Engine, DeterministicTranscript) {
  auto run_once = [] {
    RngFactory rngs{10};
    FaultModel fm{0.1, 0.1};
    Network<Ping> net{32, rngs, fm};
    struct P {
      std::vector<std::uint32_t> log;
      void on_round(Network<Ping>& net_, NodeId v) {
        net_.send(v, net_.sample_uniform(v), Ping{}, 4);
      }
      void on_message(Network<Ping>&, NodeId src, NodeId dst, const Ping&) {
        log.push_back(src * 1000 + dst);
      }
    } proto;
    net.run(proto, 20);
    return proto.log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, SampleUniformCoversRange) {
  RngFactory rngs{11};
  Network<Ping> net{16, rngs};
  std::vector<bool> seen(16, false);
  for (int i = 0; i < 2000; ++i) seen[net.sample_uniform(3)] = true;
  for (NodeId v = 0; v < 16; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(Counters, Accumulate) {
  Counters a{10, 8, 2, 100, 5};
  Counters b{1, 1, 0, 10, 2};
  a += b;
  EXPECT_EQ(a.sent, 11u);
  EXPECT_EQ(a.delivered, 9u);
  EXPECT_EQ(a.lost, 2u);
  EXPECT_EQ(a.bits, 110u);
  EXPECT_EQ(a.rounds, 7u);
  a.reset();
  EXPECT_EQ(a.sent, 0u);
}

}  // namespace
}  // namespace drrg::sim
