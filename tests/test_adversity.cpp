// Tests of the structured-adversity vocabulary: per-link latency models
// (event-time delivery), correlated block crashes and partitions, mid-run
// joins with live-peer bootstrap, hop-level carry-acks on routed
// push-sum, and greedy perimeter detours around dead lattice nodes --
// all exercised through the api facade plus the schedule validation and
// timeline machinery underneath it.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/report_hash.hpp"
#include "api/scenario_text.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

api::RunSpec base_spec(std::uint32_t n, api::Aggregate agg = api::Aggregate::kAve) {
  api::RunSpec spec;
  spec.n = n;
  spec.aggregate = agg;
  spec.seed = 2026;
  return spec;
}

api::RunReport must_run(const char* algo, const api::RunSpec& spec) {
  const api::RunReport r = api::run(algo, spec);
  EXPECT_TRUE(r.ok()) << algo << ": " << r.error;
  return r;
}

std::uint32_t count_true(const std::vector<bool>& mask) {
  std::uint32_t c = 0;
  for (bool b : mask) c += b ? 1u : 0u;
  return c;
}

// ---------------------------------------------------------------------------
// Latency: event-time delivery.

TEST(Latency, ZeroBoundModelIsByteIdenticalToAbsent) {
  // A declared-but-zero model (uniform [0,0]) must leave the whole report
  // bit-identical to the historical lockstep run: zero() short-circuits
  // every latency draw, so not a single RNG stream advances differently.
  for (const char* algo : {"drr", "uniform", "chord-drr"}) {
    api::RunSpec plain = base_spec(512);
    api::RunSpec declared = plain;
    declared.faults.latency = {sim::LatencyModel::Kind::kUniform, 0, 0, 0.0};
    const api::RunReport a = must_run(algo, plain);
    const api::RunReport b = must_run(algo, declared);
    EXPECT_EQ(api::report_checksum(a), api::report_checksum(b)) << algo;
  }
}

TEST(Latency, FamiliesConvergeUnderEventTimeDelivery) {
  for (const char* algo : {"drr", "uniform", "pairwise"}) {
    api::RunSpec spec = base_spec(512);
    spec.faults.latency = {sim::LatencyModel::Kind::kUniform, 0, 2, 0.0};
    const api::RunReport r = must_run(algo, spec);
    EXPECT_TRUE(r.consensus) << algo;
    EXPECT_LT(r.rel_error(), 0.05) << algo << " value " << r.value << " truth "
                                   << r.truth;
  }
}

TEST(Latency, HeavyTailTrialsAreThreadInvariant) {
  api::RunSpec spec = base_spec(256);
  spec.faults.latency = {sim::LatencyModel::Kind::kHeavyTail, 0, 6, 0.1};
  const auto one = api::run_trials("drr", spec, 4, 1);
  const auto four = api::run_trials("drr", spec, 4, 4);
  const auto eight = api::run_trials("drr", spec, 4, 8);
  ASSERT_EQ(one.size(), 4u);
  for (std::size_t t = 0; t < one.size(); ++t) {
    EXPECT_EQ(api::report_checksum(one[t]), api::report_checksum(four[t])) << t;
    EXPECT_EQ(api::report_checksum(one[t]), api::report_checksum(eight[t])) << t;
  }
}

TEST(Latency, ChurnUnderLatencyKeepsTheGlobalClock) {
  // Satellite: Scenario::at_round threads one global clock through the
  // multi-phase pipeline, so a churn event scheduled deep into Phase III
  // fires exactly once even when every phase restarts its local round
  // numbering and latency stretches the budgets.
  api::RunSpec spec = base_spec(512);
  spec.faults.churn = {{40, 0.10}, {80, 0.10}};
  spec.faults.latency = {sim::LatencyModel::Kind::kUniform, 0, 2, 0.0};
  const api::RunReport r = must_run("drr", spec);
  // No consensus assertion: the pinned all-root agreement check counts
  // roots that crashed mid-run (their spread keys freeze at death), so
  // consensus is unattainable under churn by construction -- the accuracy
  // and membership bookkeeping below are the meaningful claims here.
  const RngFactory rngs{r.seed};
  const std::vector<bool> want =
      sim::survivor_mask(spec.n, rngs, spec.faults, r.rounds);
  ASSERT_EQ(r.participating.size(), want.size());
  EXPECT_EQ(r.participating, want);
  EXPECT_LT(count_true(r.participating), spec.n);
  EXPECT_LT(r.rel_error(), 0.05);
}

// ---------------------------------------------------------------------------
// Correlated failures: block crashes and partitions.

TEST(BlockCrash, RackCrashTruthTracksSurvivors) {
  api::RunSpec spec = base_spec(512);
  spec.faults.blocks = {{8, 64, 192, 0, 0}};  // ids [64, 192) die at round 8
  const api::RunReport r = must_run("drr", spec);
  EXPECT_TRUE(r.consensus);
  ASSERT_EQ(r.participating.size(), spec.n);
  EXPECT_EQ(count_true(r.participating), spec.n - 128);
  for (std::uint32_t v = 64; v < 192; ++v) EXPECT_FALSE(r.participating[v]) << v;
  EXPECT_LT(r.rel_error(), 0.05);
}

TEST(BlockCrash, GridRectangleOnTheSparsePipeline) {
  api::RunSpec spec = base_spec(1024);
  spec.topology = *sim::topology_from_name("grid");
  spec.pipeline = api::Pipeline::kSparse;
  // A rectangle on the 32-wide row-major lattice: rows 4..6, cols 4..8.
  spec.faults.blocks = {{8, 4 * 32 + 4, 6 * 32 + 8, 32, 4}};
  const api::RunReport r = must_run("drr", spec);
  EXPECT_TRUE(r.consensus);
  EXPECT_LT(r.rel_error(), 0.05);
}

TEST(Partition, HealedCutReconverges) {
  api::RunSpec max_spec = base_spec(512, api::Aggregate::kMax);
  max_spec.faults.partitions = {{5, 15, 256}};
  const api::RunReport m = must_run("uniform", max_spec);
  EXPECT_TRUE(m.consensus);
  EXPECT_DOUBLE_EQ(m.value, m.truth);

  api::RunSpec ave_spec = base_spec(512);
  ave_spec.faults.partitions = {{5, 15, 256}};
  const api::RunReport a = must_run("drr", ave_spec);
  EXPECT_TRUE(a.consensus);
  EXPECT_LT(a.rel_error(), 0.05);
}

TEST(Partition, UnhealedCutPreventsConsensus) {
  // The cut is physical and permanent: the side without the global max
  // can never learn it, so the run must report the disagreement instead
  // of claiming consensus.
  api::RunSpec spec = base_spec(512, api::Aggregate::kMax);
  spec.faults.partitions = {{0, sim::kNeverRound, 256}};
  const api::RunReport r = api::run("uniform", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.consensus);
}

// ---------------------------------------------------------------------------
// Mid-run joins: bootstrap from a live peer, truth = surviving founders.

TEST(Join, PushSumJoinersConserveTheFoundersAverage) {
  // Uniform push-sum: joiners enter as canonical (0, 0) states, so the
  // founders' sum -- and with it the average -- is conserved exactly, and
  // the reported population is the founding cohort.
  api::RunSpec spec = base_spec(512);
  spec.faults.joins = {{6, 0.05}};
  const api::RunReport r = must_run("uniform", spec);
  EXPECT_TRUE(r.consensus);
  EXPECT_LT(r.rel_error(), 1e-3);
  const RngFactory rngs{r.seed};
  const std::vector<bool> founders =
      sim::founder_mask(spec.n, rngs, spec.faults, r.rounds);
  ASSERT_EQ(r.participating.size(), founders.size());
  EXPECT_EQ(r.participating, founders);
  EXPECT_LT(count_true(r.participating), spec.n);
}

TEST(Join, DenseDrrAbsorbsEarlyJoinersAsParticipants) {
  // The dense pipeline fixes membership in Phase I: a joiner arriving
  // while the forest is still forming attaches to a tree and its value is
  // convergecast-summed like any founder's, so the pipeline honestly
  // reports the full population (and the matching all-n truth).
  api::RunSpec spec = base_spec(512);
  spec.faults.joins = {{6, 0.05}};
  const api::RunReport r = must_run("drr", spec);
  EXPECT_TRUE(r.consensus);
  ASSERT_EQ(r.participating.size(), spec.n);
  EXPECT_EQ(count_true(r.participating), spec.n);
  EXPECT_LT(r.rel_error(), 1e-3);
}

TEST(Join, MaxFamiliesBootstrapFromLivePeers) {
  for (const char* algo : {"uniform", "chord-uniform"}) {
    api::RunSpec spec = base_spec(512, api::Aggregate::kMax);
    spec.faults.joins = {{4, 0.10}};
    const api::RunReport r = must_run(algo, spec);
    EXPECT_TRUE(r.consensus) << algo;
    EXPECT_DOUBLE_EQ(r.value, r.truth) << algo;
  }
}

TEST(Join, CombinesWithChurnInOneTimeline) {
  api::RunSpec spec = base_spec(512);
  spec.faults.churn = {{12, 0.10}};
  spec.faults.joins = {{6, 0.10}};
  const api::RunReport r = must_run("drr", spec);
  // Crashed roots freeze their spread keys, so the pinned all-root
  // consensus check cannot pass under churn; and values absorbed into
  // tree sums before their owners crashed bias the estimate by O(churn
  // fraction), hence the loose accuracy bound.
  EXPECT_LT(r.rel_error(), 0.10);
  // Churn deaths hit founders and absorbed joiners alike: the dense
  // pipeline's population is everyone alive at the end (tree membership
  // restricted to the schedule's final survivors).
  const RngFactory rngs{r.seed};
  EXPECT_EQ(r.participating, sim::survivor_mask(spec.n, rngs, spec.faults, r.rounds));
  EXPECT_LT(count_true(r.participating), spec.n);
}

// ---------------------------------------------------------------------------
// Hop-level carry-ack: custody transfer on routed push-sum shares.

TEST(CarryAck, LossyRoutedPushSumStaysNearLossless) {
  // Loss rates sized so the *unacked* phases (the spread gossip has no
  // custody transfer) still complete: per-hop loss compounds over the
  // route, so the high-diameter grid gets 1% and the log-hop Chord ring
  // gets 5%.
  const auto run_case = [](const char* topo, double loss, bool ack) {
    api::RunSpec spec = base_spec(1024);
    spec.topology = *sim::topology_from_name(topo);
    spec.pipeline = api::Pipeline::kSparse;
    spec.faults.loss_prob = loss;
    SparseGossipConfig cfg;
    cfg.push_sum.hop_carry_ack = ack;
    spec.config = cfg;
    return api::run("drr", spec);
  };
  for (const auto& [topo, loss] : {std::pair{"grid", 0.01}, {"chord-ring", 0.05}}) {
    const api::RunReport lossless = run_case(topo, 0.0, false);
    const api::RunReport armed = run_case(topo, loss, true);
    ASSERT_TRUE(lossless.ok()) << lossless.error;
    ASSERT_TRUE(armed.ok()) << armed.error;
    EXPECT_TRUE(lossless.consensus) << topo;
    EXPECT_TRUE(armed.consensus) << topo;
    // Custody transfer retransmits every dropped share hop, so the only
    // cost of loss is extra mixing time -- the error stays within 2x of
    // the lossless run's convergence floor.
    EXPECT_LE(armed.abs_error(), 2.0 * lossless.abs_error() +
                                     1e-6 * (1.0 + std::fabs(armed.truth)))
        << topo << ": lossless " << lossless.abs_error() << " armed "
        << armed.abs_error();
  }
}

TEST(CarryAck, DisarmedRunIsByteIdenticalToHistorical) {
  // hop_carry_ack defaults off; an explicit default config must not
  // perturb the pinned schedules.
  api::RunSpec plain = base_spec(1024);
  plain.topology = *sim::topology_from_name("grid");
  plain.pipeline = api::Pipeline::kSparse;
  api::RunSpec declared = plain;
  declared.config = SparseGossipConfig{};
  EXPECT_EQ(api::report_checksum(api::run("drr", plain)),
            api::report_checksum(api::run("drr", declared)));
}

// ---------------------------------------------------------------------------
// Greedy perimeter detours: routed runs on lattices with dead nodes.

// True iff the survivors of a 5% random cull form one connected lattice
// component (4-neighbor adjacency; `wrap` for the torus).  Perimeter
// detours can only promise consensus on a connected live subgraph -- a
// live node walled in by dead neighbors is physically unreachable, and
// the run must honestly report the disagreement instead.
bool live_lattice_connected(const std::vector<bool>& alive, std::uint32_t side,
                            bool wrap) {
  const auto n = static_cast<std::uint32_t>(alive.size());
  std::uint32_t start = n;
  for (std::uint32_t v = 0; v < n; ++v)
    if (alive[v]) {
      start = v;
      break;
    }
  if (start == n) return false;
  std::vector<bool> seen(n, false);
  std::vector<std::uint32_t> queue{start};
  seen[start] = true;
  std::uint32_t reached = 0;
  while (!queue.empty()) {
    const std::uint32_t v = queue.back();
    queue.pop_back();
    ++reached;
    const std::uint32_t row = v / side, col = v % side;
    const auto visit = [&](std::uint32_t u) {
      if (!seen[u] && alive[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    };
    if (col > 0) visit(v - 1);
    else if (wrap) visit(v + side - 1);
    if (col + 1 < side) visit(v + 1);
    else if (wrap) visit(v - side + 1);
    if (row > 0) visit(v - side);
    else if (wrap) visit(v + side * (side - 1));
    if (row + 1 < side) visit(v + side);
    else if (wrap) visit(v - side * (side - 1));
  }
  std::uint32_t live = 0;
  for (std::uint32_t v = 0; v < n; ++v) live += alive[v] ? 1u : 0u;
  return reached == live;
}

TEST(GridDetours, RoutedConsensusWithDeadLatticeNodes) {
  for (const char* topo : {"grid", "torus"}) {
    std::uint32_t connected_seeds = 0;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      api::RunSpec spec = base_spec(1024);
      spec.seed = seed;
      spec.topology = *sim::topology_from_name(topo);
      spec.pipeline = api::Pipeline::kSparse;
      spec.faults.crash_fraction = 0.05;
      const std::vector<bool> alive =
          sim::survivor_mask(spec.n, RngFactory{seed}, spec.faults);
      if (!live_lattice_connected(alive, 32, std::string_view{topo} == "torus"))
        continue;
      ++connected_seeds;
      const api::RunReport r = must_run("drr", spec);
      EXPECT_TRUE(r.consensus) << topo << " seed " << seed;
      EXPECT_LT(r.rel_error(), 0.05) << topo << " seed " << seed;

      api::RunSpec max_spec = spec;
      max_spec.aggregate = api::Aggregate::kMax;
      const api::RunReport m = must_run("drr", max_spec);
      EXPECT_TRUE(m.consensus) << topo << " seed " << seed;
      EXPECT_DOUBLE_EQ(m.value, m.truth) << topo << " seed " << seed;
    }
    // The guard must not vacuously skip the whole family.
    EXPECT_GE(connected_seeds, 1u) << topo;
  }
}

// ---------------------------------------------------------------------------
// Schedule validation at the api seam.

TEST(Validation, RejectsMalformedSchedules) {
  const auto rejects = [](const sim::FaultSchedule& faults) {
    api::RunSpec spec = base_spec(256);
    spec.faults = faults;
    const api::RunReport r = api::run("drr", spec);
    EXPECT_NE(r.error.find("invalid fault schedule"), std::string::npos)
        << "error was: '" << r.error << "'";
  };
  sim::FaultSchedule f;
  f.loss_prob = -0.1;
  rejects(f);
  f = {};
  f.loss_prob = 1.5;
  rejects(f);
  f = {};
  f.crash_fraction = 1.0;
  rejects(f);
  f = {};
  f.crash_fraction = std::nan("");
  rejects(f);
  f = {};
  f.churn = {{0, 0.5}};  // round-0 churn belongs in crash_fraction
  rejects(f);
  f = {};
  f.churn = {{10, 1.5}};
  rejects(f);
  f = {};
  f.joins = {{0, 0.5}};
  rejects(f);
  f = {};
  f.joins = {{10, -0.5}};
  rejects(f);
  f = {};
  f.blocks = {{5, 100, 100, 0, 0}};  // empty range
  rejects(f);
  f = {};
  f.blocks = {{5, 0, 64, 8, 12}};  // width > stride
  rejects(f);
  f = {};
  f.partitions = {{10, 10, 128}};  // heal must follow the cut
  rejects(f);
  f = {};
  f.partitions = {{10, 20, 0}};  // boundary 0 cuts nothing
  rejects(f);
  f = {};
  f.latency = {sim::LatencyModel::Kind::kUniform, 4, 2, 0.0};  // min > max
  rejects(f);
  f = {};
  f.latency = {sim::LatencyModel::Kind::kHeavyTail, 0, 4, 1.5};  // bad prob
  rejects(f);
}

TEST(Validation, AcceptsTheFullCombinedSchedule) {
  api::RunSpec spec = base_spec(512);
  spec.faults.loss_prob = 0.05;
  spec.faults.crash_fraction = 0.05;
  spec.faults.churn = {{20, 0.05}};
  spec.faults.joins = {{10, 0.05}};
  spec.faults.blocks = {{15, 300, 330, 0, 0}};
  spec.faults.partitions = {{25, 35, 256}};
  spec.faults.latency = {sim::LatencyModel::Kind::kFixed, 1, 1, 0.0};
  const api::RunReport r = must_run("drr", spec);
  // No consensus assertion: the schedule has churn, and crashed roots
  // freeze their spread keys (see Join.CombinesWithChurnInOneTimeline).
  EXPECT_LT(r.rel_error(), 0.10);
}

// ---------------------------------------------------------------------------
// Timeline machinery: capped rejection sampling, event composition.

TEST(Timeline, PathologicalScheduleTerminates) {
  // Near-total extinction at every step used to spin the rejection
  // sampler unboundedly hunting for distinct victims; the capped draws
  // fall back to an ascending scan and must terminate fast.
  sim::FaultSchedule faults;
  faults.crash_fraction = 0.9;
  faults.churn = {{1, 0.99}, {2, 0.99}, {3, 0.99}, {4, 0.99}};
  faults.joins = {{2, 0.5}};
  const RngFactory rngs{7};
  const sim::FaultTimeline t = sim::full_timeline(4096, rngs, faults);
  ASSERT_EQ(t.death.size(), 4096u);
  // Every scheduled death round is one of the schedule's event rounds.
  for (std::uint32_t v = 0; v < 4096; ++v) {
    if (t.death[v] == sim::kNeverCrashes) continue;
    EXPECT_TRUE(t.death[v] == 0 || (t.death[v] >= 1 && t.death[v] <= 4)) << v;
    // No one dies before being born.
    if (t.birth[v] != sim::kBornAtStart) {
      EXPECT_GE(t.death[v], t.birth[v]) << v;
    }
  }
}

TEST(Timeline, BlockCrashComposesWithRandomChurn) {
  sim::FaultSchedule faults;
  faults.blocks = {{5, 10, 20, 0, 0}};
  faults.churn = {{8, 0.25}};
  const RngFactory rngs{11};
  const std::vector<std::uint32_t> death = sim::fault_timeline(64, rngs, faults);
  for (std::uint32_t v = 10; v < 20; ++v) EXPECT_EQ(death[v], 5u) << v;
  // The churn fraction applies to the then-alive population (54 nodes).
  std::uint32_t churned = 0;
  for (std::uint32_t v = 0; v < 64; ++v) churned += death[v] == 8 ? 1u : 0u;
  EXPECT_EQ(churned, static_cast<std::uint32_t>(54 * 0.25));
}

// ---------------------------------------------------------------------------
// Text round-trips for the new schedule families.

TEST(ScenarioText, NewFamiliesRoundTrip) {
  const auto joins = api::parse_joins("8:0.05,12:0.1");
  ASSERT_TRUE(joins.has_value());
  EXPECT_EQ(api::format_joins(*joins), "8:0.05,12:0.1");

  const auto blocks = api::parse_blocks("10:64-128,12:132-192:16/4");
  ASSERT_TRUE(blocks.has_value());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[1].stride, 16u);
  EXPECT_EQ(api::format_blocks(*blocks), "10:64-128,12:132-192:16/4");

  const auto partitions = api::parse_partitions("10:128:20,30:64");
  ASSERT_TRUE(partitions.has_value());
  EXPECT_EQ((*partitions)[1].heal_round, sim::kNeverRound);
  EXPECT_EQ(api::format_partitions(*partitions), "10:128:20,30:64");

  for (const char* text : {"fixed:3", "uniform:0-4", "tail:1-16:0.05"}) {
    const auto latency = api::parse_latency(text);
    ASSERT_TRUE(latency.has_value()) << text;
    EXPECT_EQ(api::format_latency(*latency), text);
  }
  const auto zero = api::parse_latency("");
  ASSERT_TRUE(zero.has_value());
  EXPECT_TRUE(zero->zero());
}

TEST(ScenarioText, MalformedInputsAreRejected) {
  EXPECT_FALSE(api::parse_joins("8").has_value());
  EXPECT_FALSE(api::parse_joins("8:1.5").has_value());
  EXPECT_FALSE(api::parse_blocks("10:128-64").has_value());  // hi < lo
  EXPECT_FALSE(api::parse_blocks("10:0-64:8/12").has_value());  // width > stride
  EXPECT_FALSE(api::parse_blocks("10:0-64:8").has_value());  // stride sans width
  EXPECT_FALSE(api::parse_partitions("10:128:5").has_value());  // heal <= cut
  EXPECT_FALSE(api::parse_latency("uniform:4-2").has_value());
  EXPECT_FALSE(api::parse_latency("tail:0-4").has_value());  // missing prob
  EXPECT_FALSE(api::parse_latency("gaussian:3").has_value());
}

}  // namespace
}  // namespace drrg
