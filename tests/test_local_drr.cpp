// Tests of Local-DRR (§4) and its Theorem 11/13 observables on arbitrary
// graphs.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "drr/local_drr.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "topology/builders.hpp"

namespace drrg {
namespace {

LocalDrrResult run(const Graph& g, std::uint64_t seed, sim::FaultModel fm = {},
                   LocalDrrConfig cfg = {}) {
  RngFactory rngs{seed};
  return run_local_drr(g, rngs, fm, cfg);
}

struct NamedGraph {
  std::string name;
  std::function<Graph(std::uint64_t)> build;
};

class LocalDrrOnGraphs : public ::testing::TestWithParam<int> {
 protected:
  static Graph build(int which, std::uint64_t seed) {
    switch (which) {
      case 0: return make_ring(2048);
      case 1: return make_grid(40, 50, /*torus=*/true);
      case 2: return make_random_regular(2048, 8, seed);
      case 3: return make_erdos_renyi(2048, 8.0 / 2048, seed);
      case 4: return make_chord_graph(2048);
      default: return make_hypercube(11);
    }
  }
};

TEST_P(LocalDrrOnGraphs, ParentsAreNeighborsWithHigherRank) {
  const Graph g = build(GetParam(), 11);
  const LocalDrrResult r = run(g, 21);
  EXPECT_TRUE(r.forest.respects_ranks(r.ranks));
  for (NodeId v = 0; v < g.size(); ++v) {
    const NodeId p = r.forest.parent(v);
    if (p != kNoParent) {
      EXPECT_TRUE(g.has_edge(v, p)) << v;
    }
  }
}

TEST_P(LocalDrrOnGraphs, RootsAreLocalRankMaxima) {
  // At delta = 0 every node hears every neighbor's rank, so a root must
  // outrank all neighbors and a non-root connects to its best neighbor.
  const Graph g = build(GetParam(), 13);
  const LocalDrrResult r = run(g, 23);
  for (NodeId v = 0; v < g.size(); ++v) {
    double best = -1.0;
    NodeId best_nb = kNoParent;
    for (NodeId w : g.neighbors(v)) {
      if (r.ranks[w] > best) {
        best = r.ranks[w];
        best_nb = w;
      }
    }
    if (r.forest.is_root(v)) {
      EXPECT_LT(best, r.ranks[v]) << v;
    } else {
      EXPECT_EQ(r.forest.parent(v), best_nb) << v;
    }
  }
}

TEST_P(LocalDrrOnGraphs, Theorem11HeightLogarithmic) {
  const Graph g = build(GetParam(), 17);
  std::uint32_t worst = 0;
  for (int s = 0; s < 4; ++s) worst = std::max(worst, run(g, 30 + s).forest.max_tree_height());
  EXPECT_LE(worst, 6 * ceil_log2(g.size()));
}

TEST_P(LocalDrrOnGraphs, Theorem13TreeCountMatchesDegreeFormula) {
  const Graph g = build(GetParam(), 19);
  const double expected = g.inverse_degree_plus_one_sum();
  double mean = 0.0;
  const int trials = 6;
  for (int s = 0; s < trials; ++s) mean += run(g, 40 + s).forest.num_trees();
  mean /= trials;
  EXPECT_GT(mean, 0.6 * expected);
  EXPECT_LT(mean, 1.6 * expected);
}

INSTANTIATE_TEST_SUITE_P(Graphs, LocalDrrOnGraphs, ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(LocalDrr, RingTreeCountExactExpectation) {
  // On a ring every degree is 2: E[#trees] = n/3 exactly.
  const Graph g = make_ring(3000);
  double mean = 0.0;
  const int trials = 10;
  for (int s = 0; s < trials; ++s) mean += run(g, 100 + s).forest.num_trees();
  mean /= trials;
  EXPECT_NEAR(mean, 1000.0, 60.0);
}

TEST(LocalDrr, StarCollapsesToOneTreeUsually) {
  // Star: the hub has n-1 neighbors; all leaves connect to the hub unless
  // the hub outranks them... every leaf's only neighbor is the hub, so
  // leaves with rank < hub connect to it; leaves with rank > hub become
  // roots.  The hub is a root iff it beats its best leaf.
  const Graph g = make_star(64);
  const LocalDrrResult r = run(g, 3);
  for (NodeId v = 1; v < 64; ++v) {
    if (r.ranks[v] < r.ranks[0]) {
      EXPECT_EQ(r.forest.parent(v), 0u);
    } else {
      EXPECT_TRUE(r.forest.is_root(v));
    }
  }
}

TEST(LocalDrr, MessageComplexityLinearInEdges) {
  const Graph g = make_random_regular(1024, 6, 5);
  const LocalDrrResult r = run(g, 6);
  // Two exchange rounds send one message per direction per edge per round
  // (4|E| total), plus at most a few connect/ack messages per node.
  EXPECT_LE(r.counters.sent, 4 * 2 * g.edge_count() + 4 * g.size());
  EXPECT_GE(r.counters.sent, 2 * g.edge_count());
}

TEST(LocalDrr, ConstantTimeAtZeroLoss) {
  const Graph g = make_grid(30, 30);
  const LocalDrrResult r = run(g, 7);
  // exchange_rounds (2) + connect round + slack; far below log n.
  EXPECT_LE(r.rounds, 6u);
}

TEST(LocalDrr, DeterministicFromSeed) {
  const Graph g = make_erdos_renyi(512, 0.02, 3);
  const LocalDrrResult a = run(g, 99), b = run(g, 99);
  for (NodeId v = 0; v < g.size(); ++v) EXPECT_EQ(a.forest.parent(v), b.forest.parent(v));
}

TEST(LocalDrr, LossKeepsForestValid) {
  const Graph g = make_random_regular(1024, 8, 9);
  const LocalDrrResult r = run(g, 10, sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(r.forest.respects_ranks(r.ranks));
  for (NodeId v = 0; v < g.size(); ++v) {
    const NodeId p = r.forest.parent(v);
    if (p != kNoParent) {
      EXPECT_TRUE(g.has_edge(v, p));
    }
  }
}

TEST(LocalDrr, CrashesExcludeNodes) {
  const Graph g = make_grid(32, 32, true);
  const LocalDrrResult r = run(g, 11, sim::FaultModel{0.0, 0.2});
  std::uint32_t members = 0;
  for (NodeId v = 0; v < g.size(); ++v) members += r.forest.is_member(v);
  EXPECT_LT(members, g.size());
  std::uint32_t total = 0;
  for (NodeId root : r.forest.roots()) total += r.forest.tree_size(root);
  EXPECT_EQ(total, members);
}

TEST(LocalDrr, RejectsCompleteGraph) {
  RngFactory rngs{1};
  EXPECT_THROW(run_local_drr(Graph::complete(16), rngs), std::invalid_argument);
}

}  // namespace
}  // namespace drrg
