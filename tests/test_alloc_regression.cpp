// Allocation-regression suite for the flattened routed hot path.
//
// This binary (alone among the tests) links drrg_alloc_counter, swapping
// in the counting global operator new that bench_engine uses to report
// allocs_per_run.  The contract under test: a routed run's heap traffic
// is O(1) in n.  Every per-run container is either pooled inside the
// engine (outbox/replies/scratch queues), served from a thread-local
// scratch buffer (support/scratch.hpp), or memoised across runs (the
// chord substrate, the topology in make_scenario) -- so quadrupling n
// twice must leave the allocation count essentially flat.  A rewrite
// that reintroduces a per-message or per-node allocation on the hot path
// fails here with an O(n) count long before it shows up in a bench.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "api/registry.hpp"
#include "support/alloc_counter.hpp"

namespace drrg {
namespace {

api::RunSpec routed_spec(std::uint32_t n, sim::TopologyKind kind,
                         api::Pipeline pipeline) {
  api::RunSpec spec;
  spec.n = n;
  spec.aggregate = api::Aggregate::kAve;
  spec.seed = 1000;
  spec.topology.kind = kind;
  spec.pipeline = pipeline;
  return spec;
}

/// Min allocation count of a single run over a few attempts, after an
/// untimed warmup run.  The warmup pays the one-time costs (memoised
/// substrate build, thread-local scratch growth, lazy RNG slots); the min
/// guards against an interleaved case evicting the memo cache, exactly as
/// bench_engine does.
std::uint64_t allocs_per_run(const char* algorithm, const api::RunSpec& spec) {
  {
    const api::RunReport warm = api::run(algorithm, spec);
    EXPECT_TRUE(warm.ok()) << warm.error;
    if (!warm.ok()) return 0;
  }
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t a0 = support::alloc_count();
    const api::RunReport r = api::run(algorithm, spec);
    const std::uint64_t a1 = support::alloc_count();
    EXPECT_TRUE(r.ok()) << r.error;
    best = std::min(best, a1 - a0);
  }
  return best;
}

/// Flatness bar: growing n 16x may not even double the steady-state
/// count (plus a small absolute slack for logarithmic stragglers such as
/// the forest's O(log n) level vectors).
void expect_flat(const char* what, std::uint64_t at_1024, std::uint64_t at_4096,
                 std::uint64_t at_16384) {
  const std::uint64_t bar = 2 * at_1024 + 128;
  EXPECT_LE(at_4096, bar) << what << ": allocs grew with n (1024: " << at_1024
                          << ", 4096: " << at_4096 << ")";
  EXPECT_LE(at_16384, bar) << what << ": allocs grew with n (1024: " << at_1024
                           << ", 16384: " << at_16384 << ")";
}

TEST(AllocRegression, ChordDrrAllocsAreFlatInN) {
  std::uint64_t counts[3] = {0, 0, 0};
  int i = 0;
  for (const std::uint32_t n : {1024u, 4096u, 16384u}) {
    counts[i++] = allocs_per_run(
        "chord-drr",
        routed_spec(n, sim::TopologyKind::kComplete, api::Pipeline::kDense));
  }
  expect_flat("chord-drr", counts[0], counts[1], counts[2]);
}

TEST(AllocRegression, SparseGridDrrAllocsAreFlatInN) {
  std::uint64_t counts[3] = {0, 0, 0};
  int i = 0;
  for (const std::uint32_t n : {1024u, 4096u, 16384u}) {
    counts[i++] = allocs_per_run(
        "drr", routed_spec(n, sim::TopologyKind::kGrid2d, api::Pipeline::kSparse));
  }
  expect_flat("sparse-grid drr", counts[0], counts[1], counts[2]);
}

// The counter itself must be live in this binary: a plain vector growth
// has to register.  (If the drrg_alloc_counter link is ever dropped, the
// flatness tests above would pass vacuously with count 0 -- this one
// fails loudly instead.)
TEST(AllocRegression, CountingAllocatorIsLinked) {
  const std::uint64_t a0 = support::alloc_count();
  std::vector<std::uint64_t>* v = new std::vector<std::uint64_t>(1024);
  const std::uint64_t a1 = support::alloc_count();
  delete v;
  EXPECT_GE(a1 - a0, 1u);
}

}  // namespace
}  // namespace drrg
