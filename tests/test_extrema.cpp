// Tests of the extrema-propagation Count/Sum extension
// (aggregate/extrema.hpp, after Mosk-Aoyama & Shah [16]).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aggregate/extrema.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

TEST(ExtremaCount, WithinPredictedError) {
  // The estimator's relative standard error is 1/sqrt(k-2); check the
  // mean over seeds lands within a few predicted sigmas.
  const std::uint32_t n = 2048;
  ExtremaConfig cfg;
  cfg.k = 128;  // rse ~ 0.089
  double sum = 0.0;
  const int trials = 8;
  for (int s = 0; s < trials; ++s) {
    const auto r = drr_gossip_count_extrema(n, 100 + s, {}, cfg);
    EXPECT_TRUE(r.consensus);
    EXPECT_NEAR(r.estimate, n, 4.0 * r.predicted_rse * n) << s;
    sum += r.estimate;
  }
  EXPECT_NEAR(sum / trials, n, 2.0 * (1.0 / std::sqrt(126.0)) / std::sqrt(trials) * n * 3);
}

TEST(ExtremaCount, LossInvariant) {
  // Min-diffusion is idempotent: once consensus is reached the estimate
  // cannot depend on delta (same seed => same draws => same minima).
  const auto clean = drr_gossip_count_extrema(1024, 7);
  const auto lossy = drr_gossip_count_extrema(1024, 7, sim::FaultModel{0.25, 0.0});
  ASSERT_TRUE(clean.consensus);
  ASSERT_TRUE(lossy.consensus);
  EXPECT_DOUBLE_EQ(clean.estimate, lossy.estimate);
}

TEST(ExtremaCount, CountsAliveNodesOnly) {
  ExtremaConfig cfg;
  cfg.k = 256;
  const auto r = drr_gossip_count_extrema(2048, 9, sim::FaultModel{0.0, 0.25}, cfg);
  EXPECT_NEAR(r.estimate, 1536.0, 4.0 * r.predicted_rse * 1536.0);
}

TEST(ExtremaSum, PositiveValues) {
  const std::uint32_t n = 1024;
  Rng rng{5};
  std::vector<double> values(n);
  double truth = 0.0;
  for (auto& v : values) {
    v = rng.next_uniform(0.5, 10.0);
    truth += v;
  }
  ExtremaConfig cfg;
  cfg.k = 200;
  const auto r = drr_gossip_sum_extrema(n, values, 11, {}, cfg);
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.estimate, truth, 4.0 * r.predicted_rse * truth);
}

TEST(ExtremaSum, RobustAtModelLossCeiling) {
  const std::uint32_t n = 1024;
  std::vector<double> values(n, 2.5);  // truth = 2560
  ExtremaConfig cfg;
  cfg.k = 200;
  const auto r = drr_gossip_sum_extrema(n, values, 13, sim::FaultModel{0.125, 0.0}, cfg);
  EXPECT_TRUE(r.consensus);
  EXPECT_NEAR(r.estimate, 2560.0, 4.0 * r.predicted_rse * 2560.0);
}

TEST(ExtremaSum, RejectsNonPositive) {
  std::vector<double> values(64, 1.0);
  values[5] = 0.0;
  EXPECT_THROW((void)drr_gossip_sum_extrema(64, values, 1), std::invalid_argument);
  values[5] = -2.0;
  EXPECT_THROW((void)drr_gossip_sum_extrema(64, values, 1), std::invalid_argument);
}

TEST(Extrema, DefaultKIsLogarithmic) {
  const auto r = drr_gossip_count_extrema(4096, 3);
  EXPECT_EQ(r.k, 4u * 12);
  EXPECT_NEAR(r.predicted_rse, 1.0 / std::sqrt(46.0), 1e-12);
}

TEST(Extrema, Deterministic) {
  const auto a = drr_gossip_count_extrema(512, 21);
  const auto b = drr_gossip_count_extrema(512, 21);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.counters.sent, b.counters.sent);
}

TEST(Extrema, MoreDrawsTightenTheEstimate) {
  // Mean absolute error over seeds should shrink roughly like 1/sqrt(k).
  const std::uint32_t n = 1024;
  auto mean_abs_err = [n](std::uint32_t k) {
    ExtremaConfig cfg;
    cfg.k = k;
    double err = 0.0;
    const int trials = 6;
    for (int s = 0; s < trials; ++s)
      err += std::fabs(drr_gossip_count_extrema(n, 300 + s, {}, cfg).estimate -
                       static_cast<double>(n));
    return err / trials;
  };
  EXPECT_LT(mean_abs_err(512), mean_abs_err(16));
}

TEST(Extrema, CostStaysNearDrrGossipShape) {
  // Message *count* keeps the pipeline shape (bits grow with k).
  const auto small = drr_gossip_count_extrema(512, 4);
  const auto big = drr_gossip_count_extrema(8192, 4);
  const double per_small = static_cast<double>(small.counters.sent) / 512.0;
  const double per_big = static_cast<double>(big.counters.sent) / 8192.0;
  EXPECT_LT(per_big, 2.0 * per_small);
}

}  // namespace
}  // namespace drrg
