// Tests of the comparison baselines: Kempe uniform gossip (push-max,
// push-sum), Karp push-pull rumor spreading, Kashyap-style efficient
// gossip, and uniform gossip on Chord.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "baselines/chord_uniform.hpp"
#include "baselines/efficient_gossip.hpp"
#include "baselines/uniform_gossip.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

std::vector<double> make_values(std::uint32_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_uniform(-10.0, 90.0);
  return v;
}

// ---------------------------------------------------------------------------
// uniform_push_max (Kempe / Table 1 row 2, and the Theorem 15 companion)

TEST(UniformPushMax, ReachesConsensusInLogRounds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::uint32_t n = 1024;
    const auto values = make_values(n, seed);
    const auto r = uniform_push_max(n, values, seed);
    EXPECT_TRUE(r.consensus);
    EXPECT_LE(r.rounds_to_consensus, 4 * ceil_log2(n));
    EXPECT_GE(r.rounds_to_consensus, ceil_log2(n) / 2);
  }
}

TEST(UniformPushMax, MessagesScaleAsNLogN) {
  // messages/(n log n) roughly flat; messages/n grows with n.
  const auto r1 = uniform_push_max(512, make_values(512, 4), 4);
  const auto r2 = uniform_push_max(8192, make_values(8192, 4), 4);
  const double k1 = static_cast<double>(r1.messages_to_consensus) / (512.0 * log2_clamped(512));
  const double k2 =
      static_cast<double>(r2.messages_to_consensus) / (8192.0 * log2_clamped(8192));
  EXPECT_LT(k2, 2.0 * k1);
  EXPECT_GT(k2, k1 / 2.0);
  const double per1 = static_cast<double>(r1.messages_to_consensus) / 512.0;
  const double per2 = static_cast<double>(r2.messages_to_consensus) / 8192.0;
  EXPECT_GT(per2, per1);  // strictly superlinear total
}

TEST(UniformPushMax, ConsensusUnderLoss) {
  const std::uint32_t n = 1024;
  const auto values = make_values(n, 5);
  const auto r = uniform_push_max(n, values, 5, sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(r.consensus);
}

TEST(UniformPushMax, HonoursRoundCap) {
  UniformPushMaxConfig cfg;
  cfg.round_multiplier = 0.1;  // far too few rounds
  cfg.stop_on_consensus = false;
  const auto r = uniform_push_max(4096, make_values(4096, 6), 6, {}, cfg);
  EXPECT_FALSE(r.consensus);
}

// ---------------------------------------------------------------------------
// uniform_push_sum (Kempe push-sum)

TEST(UniformPushSum, ConvergesToAverage) {
  const std::uint32_t n = 1024;
  const auto values = make_values(n, 7);
  const auto r = uniform_push_sum(n, values, 7);
  const double ave = std::accumulate(values.begin(), values.end(), 0.0) / n;
  for (std::uint32_t v = 0; v < n; ++v)
    ASSERT_NEAR(r.estimate[v], ave, 1e-3 * std::max(1.0, std::fabs(ave)));
}

TEST(UniformPushSum, ErrorDecaysGeometrically) {
  const std::uint32_t n = 2048;
  const auto values = make_values(n, 8);
  const auto r = uniform_push_sum(n, values, 8);
  ASSERT_GE(r.error_per_round.size(), 30u);
  // Error after 30 rounds should be orders of magnitude below round 2.
  EXPECT_LT(r.error_per_round[29], r.error_per_round[1] / 100.0);
}

TEST(UniformPushSum, MassConservation) {
  // With delta = 0 the final estimates are a convex recombination: the
  // weighted mean of estimates (weights w) equals the true average.
  const std::uint32_t n = 512;
  const auto values = make_values(n, 9);
  const auto r = uniform_push_sum(n, values, 9);
  // estimate-weighted mass: sum w_v * est_v = sum s_v = sum values.
  // (We only exposed estimates; reconstruct via the known invariant on
  // the final round error being tiny instead.)
  EXPECT_LT(r.max_relative_error, 1e-3);
}

TEST(UniformPushSum, EpsilonRoundRecorded) {
  UniformPushSumConfig cfg;
  cfg.epsilon = 1e-3;
  cfg.round_multiplier = 6.0;
  const auto r = uniform_push_sum(1024, make_values(1024, 10), 10, {}, cfg);
  EXPECT_GT(r.rounds_to_epsilon, 0u);
  EXPECT_GT(r.messages_to_epsilon, 0u);
  EXPECT_LE(r.rounds_to_epsilon, 6 * ceil_log2(1024) + 8);
}

// ---------------------------------------------------------------------------
// karp_push_pull (rumor spreading)

TEST(KarpPushPull, InformsEveryoneInLogRounds) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const std::uint32_t n = 4096;
    const auto r = karp_push_pull(n, seed);
    EXPECT_TRUE(r.all_informed) << seed;
    EXPECT_LE(r.rounds, 3 * ceil_log2(n));
  }
}

TEST(KarpPushPull, TransmissionsPerNodeIsLogLog) {
  // transmissions/n should grow like log log n: very slowly.
  const auto r1 = karp_push_pull(256, 14);
  const auto r2 = karp_push_pull(65536, 14);
  const double t1 = static_cast<double>(r1.transmissions) / 256.0;
  const double t2 = static_cast<double>(r2.transmissions) / 65536.0;
  EXPECT_LT(t2, 2.5 * t1);  // 256x more nodes, ~constant per-node cost
  // And strictly below the push-only cost which is Theta(log n) per node.
  EXPECT_LT(t2, log2_clamped(65536));
}

TEST(KarpPushPull, RobustToLoss) {
  const auto r = karp_push_pull(2048, 15, sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(r.all_informed);
}

// ---------------------------------------------------------------------------
// efficient_gossip (Kashyap reconstruction)

TEST(EfficientGossip, MaxExact) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    const std::uint32_t n = 1024;
    const auto values = make_values(n, seed);
    const auto r = efficient_gossip_max(n, values, seed);
    EXPECT_DOUBLE_EQ(r.value, *std::max_element(values.begin(), values.end()));
    EXPECT_TRUE(r.consensus) << seed;
    // Every node fetched the result.
    for (std::uint32_t v = 0; v < n; ++v)
      ASSERT_DOUBLE_EQ(r.per_node[v], r.value) << v;
  }
}

TEST(EfficientGossip, AveAccurate) {
  const std::uint32_t n = 1024;
  const auto values = make_values(n, 23);
  EfficientGossipConfig cfg;
  cfg.push_sum.rounds_multiplier = 8.0;
  const auto r = efficient_gossip_ave(n, values, 23, {}, cfg);
  const double ave = std::accumulate(values.begin(), values.end(), 0.0) / n;
  EXPECT_NEAR(r.value, ave, 1e-2 * std::max(1.0, std::fabs(ave)));
  EXPECT_TRUE(r.consensus);
}

TEST(EfficientGossip, GroupsFormAndGrow) {
  const std::uint32_t n = 4096;
  const auto r = efficient_gossip_max(n, make_values(n, 24), 24);
  // Groups must be significantly consolidated (far fewer than n) and the
  // largest group must have grown to ~2^phases.
  EXPECT_LT(r.num_groups, n / 2);
  EXPECT_GE(r.max_group_size, 8u);
}

TEST(EfficientGossip, ScheduledTimeIsLogTimesLogLog) {
  // The merge stage runs its full schedule: phases * phase_rounds.
  const std::uint32_t n = 4096;  // log2 = 12, loglog = ceil(log2 12) = 4
  const auto r = efficient_gossip_max(n, make_values(n, 25), 25);
  EXPECT_GE(r.rounds_total, 4u * 12);
}

TEST(EfficientGossip, SlowerThanLogButMessageLean) {
  // Table 1 shape at a fixed n: efficient gossip uses more rounds than
  // uniform gossip's O(log n) but asymptotically fewer messages; check
  // messages/n grows slower than uniform's log n factor.
  const std::uint32_t n = 8192;
  const auto values = make_values(n, 26);
  const auto eg = efficient_gossip_max(n, values, 26);
  const auto um = uniform_push_max(n, values, 26);
  EXPECT_GT(eg.rounds_total, um.rounds_to_consensus);
}

TEST(EfficientGossip, SurvivesModelLoss) {
  const std::uint32_t n = 1024;
  const auto values = make_values(n, 27);
  const auto r = efficient_gossip_max(n, values, 27, sim::FaultModel{0.125, 0.0});
  EXPECT_DOUBLE_EQ(r.value, *std::max_element(values.begin(), values.end()));
}

TEST(EfficientGossip, Deterministic) {
  const auto values = make_values(512, 28);
  const auto a = efficient_gossip_ave(512, values, 28);
  const auto b = efficient_gossip_ave(512, values, 28);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.counters.sent, b.counters.sent);
}

// ---------------------------------------------------------------------------
// chord uniform gossip

TEST(ChordUniform, PushMaxConsensus) {
  const std::uint32_t n = 1024;
  ChordOverlay chord{n, 31};
  const auto values = make_values(n, 31);
  const auto r = chord_uniform_push_max(chord, values, 31);
  EXPECT_TRUE(r.consensus);
}

TEST(ChordUniform, PushSumAccurateWithLongerSchedule) {
  const std::uint32_t n = 512;
  ChordOverlay chord{n, 32};
  const auto values = make_values(n, 32);
  ChordUniformConfig cfg;
  cfg.round_multiplier = 24.0;
  const auto r = chord_uniform_push_sum(chord, values, 32, {}, cfg);
  EXPECT_LT(r.max_relative_error, 1e-2);
}

TEST(ChordUniform, MessagesCarryTheRoutingFactor) {
  // Each logical push costs Theta(log n) messages: total >> n * rounds.
  const std::uint32_t n = 1024;
  ChordOverlay chord{n, 33};
  const auto values = make_values(n, 33);
  const auto r = chord_uniform_push_max(chord, values, 33);
  const double logical_sends = static_cast<double>(n) * 8.0 * ceil_log2(n);
  EXPECT_GT(static_cast<double>(r.counters.sent), 2.0 * logical_sends);
}

}  // namespace
}  // namespace drrg
