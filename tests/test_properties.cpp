// Cross-cutting property matrix: every aggregate of the public API is run
// over a grid of fault settings and checked against the invariants that
// must hold regardless of configuration --
//   (1) the pipeline terminates and reports consistent metadata,
//   (2) the result lies within the participating values' hull (for
//       order/mean aggregates),
//   (3) all participating nodes receive the same value (broadcast
//       coherence, when consensus is reported),
//   (4) total message accounting is consistent (sent = delivered + lost),
//   (5) reruns with the same seed reproduce results bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "aggregate/drr_gossip.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

using Params = std::tuple<double /*loss*/, double /*crash*/, std::uint64_t /*seed*/>;

class FaultMatrix : public ::testing::TestWithParam<Params> {
 protected:
  static constexpr std::uint32_t kN = 768;

  std::vector<double> values() const {
    Rng rng{std::get<2>(GetParam()) * 17 + 5};
    std::vector<double> v(kN);
    for (auto& x : v) x = rng.next_uniform(-100.0, 300.0);
    return v;
  }

  sim::FaultModel faults() const {
    return sim::FaultModel{std::get<0>(GetParam()), std::get<1>(GetParam())};
  }

  std::uint64_t seed() const { return std::get<2>(GetParam()); }

  struct Hull {
    double lo = 1e300, hi = -1e300;
    std::uint32_t count = 0;
  };

  static Hull hull_of(const std::vector<double>& vals, const std::vector<bool>& part) {
    Hull h;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (!part[i]) continue;
      h.lo = std::min(h.lo, vals[i]);
      h.hi = std::max(h.hi, vals[i]);
      ++h.count;
    }
    return h;
  }

  static void check_counters(const PhaseMetrics& m) {
    for (const sim::Counters* c : {&m.drr, &m.convergecast, &m.root_broadcast,
                                   &m.gossip, &m.spread, &m.value_broadcast}) {
      EXPECT_EQ(c->sent, c->delivered + c->lost);
    }
  }
};

TEST_P(FaultMatrix, MaxInvariants) {
  const auto vals = values();
  const auto r = drr_gossip_max(kN, vals, seed(), faults());
  const Hull h = hull_of(vals, r.participating);
  EXPECT_GE(r.value, h.lo);
  EXPECT_LE(r.value, h.hi);
  EXPECT_EQ(r.value, h.hi);  // Max is exact under the §2 model
  check_counters(r.metrics);
  if (r.consensus) {
    for (std::uint32_t v = 0; v < kN; ++v) {
      if (r.participating[v]) {
        ASSERT_EQ(r.per_node[v], r.value);
      }
    }
  }
}

TEST_P(FaultMatrix, MinInvariants) {
  const auto vals = values();
  const auto r = drr_gossip_min(kN, vals, seed(), faults());
  const Hull h = hull_of(vals, r.participating);
  EXPECT_EQ(r.value, h.lo);
  check_counters(r.metrics);
}

TEST_P(FaultMatrix, AveInvariants) {
  const auto vals = values();
  DrrGossipConfig cfg;
  cfg.push_sum.rounds_multiplier = 8.0;
  const auto r = drr_gossip_ave(kN, vals, seed(), faults(), cfg);
  const Hull h = hull_of(vals, r.participating);
  // The average estimate must stay within the hull: push-sum is a convex
  // recombination of the inputs, loss or not.
  EXPECT_GE(r.value, h.lo - 1e-9);
  EXPECT_LE(r.value, h.hi + 1e-9);
  check_counters(r.metrics);
}

TEST_P(FaultMatrix, CountInvariants) {
  const auto r = drr_gossip_count(kN, seed(), faults());
  const Hull h = hull_of(std::vector<double>(kN, 1.0), r.participating);
  EXPECT_GT(r.value, 0.0);
  // Exact only in the fault-free case: crashed nodes act as implicit
  // message loss for push-sum (a push landing on a dead node loses its
  // mass), so any fault setting can drift the single-source-denominator
  // Count (see EXPERIMENTS.md).  Bound the drift loosely.
  if (std::get<0>(GetParam()) == 0.0 && std::get<1>(GetParam()) == 0.0) {
    EXPECT_NEAR(r.value, h.count, 0.05 * h.count + 1);
  } else {
    EXPECT_GT(r.value, 0.1 * h.count);
    EXPECT_LT(r.value, 10.0 * h.count);
  }
  check_counters(r.metrics);
}

TEST_P(FaultMatrix, Determinism) {
  const auto vals = values();
  const auto a = drr_gossip_ave(kN, vals, seed(), faults());
  const auto b = drr_gossip_ave(kN, vals, seed(), faults());
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.metrics.total().sent, b.metrics.total().sent);
  EXPECT_EQ(a.metrics.total().lost, b.metrics.total().lost);
  EXPECT_EQ(a.rounds_total, b.rounds_total);
  EXPECT_EQ(a.forest.num_trees, b.forest.num_trees);
}

TEST_P(FaultMatrix, ParticipationMatchesCrashFraction) {
  const auto vals = values();
  const auto r = drr_gossip_max(kN, vals, seed(), faults());
  const auto expected_alive =
      kN - static_cast<std::uint32_t>(std::get<1>(GetParam()) * kN);
  std::uint32_t alive = 0;
  for (std::uint32_t v = 0; v < kN; ++v) alive += r.participating[v];
  EXPECT_EQ(alive, expected_alive);
}

TEST_P(FaultMatrix, LossOnlyWhenConfigured) {
  const auto vals = values();
  const auto r = drr_gossip_max(kN, vals, seed(), faults());
  if (std::get<0>(GetParam()) == 0.0 && std::get<1>(GetParam()) == 0.0) {
    EXPECT_EQ(r.metrics.total().lost, 0u);
  }
  if (std::get<0>(GetParam()) >= 0.1) {
    EXPECT_GT(r.metrics.total().lost, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultMatrix,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.125),
                       ::testing::Values(0.0, 0.1, 0.3),
                       ::testing::Values(1ull, 2ull)));

}  // namespace
}  // namespace drrg
