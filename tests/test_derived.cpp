// Tests of the derived aggregates (Any/All, leader election, histogram)
// and the new baselines (pairwise averaging, push-pull max).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "aggregate/derived.hpp"
#include "baselines/pairwise_averaging.hpp"
#include "baselines/uniform_gossip.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"
#include "topology/builders.hpp"

namespace drrg {
namespace {

// ---------------------------------------------------------------------------
// Any / All

TEST(AnyAll, AnyDetectsSingleFlag) {
  const std::uint32_t n = 512;
  std::vector<bool> flags(n, false);
  flags[137] = true;
  const auto any = drr_gossip_any(n, flags, 3);
  EXPECT_TRUE(any.value);
  EXPECT_TRUE(any.detail.consensus);
  const auto all = drr_gossip_all(n, flags, 4);
  EXPECT_FALSE(all.value);
}

TEST(AnyAll, AllRequiresEveryFlag) {
  const std::uint32_t n = 256;
  std::vector<bool> flags(n, true);
  EXPECT_TRUE(drr_gossip_all(n, flags, 5).value);
  flags[200] = false;
  EXPECT_FALSE(drr_gossip_all(n, flags, 6).value);
  EXPECT_TRUE(drr_gossip_any(n, flags, 7).value);
}

TEST(AnyAll, AllFalse) {
  std::vector<bool> flags(128, false);
  EXPECT_FALSE(drr_gossip_any(128, flags, 8).value);
  EXPECT_FALSE(drr_gossip_all(128, flags, 9).value);
}

TEST(AnyAll, RobustToModelLoss) {
  std::vector<bool> flags(1024, false);
  flags[7] = true;
  const auto any = drr_gossip_any(1024, flags, 10, sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(any.value);
  EXPECT_TRUE(any.detail.consensus);
}

// ---------------------------------------------------------------------------
// Leader election

TEST(LeaderElection, ElectsHighestAliveId) {
  const auto r = drr_gossip_elect_leader(512, 11);
  EXPECT_EQ(r.leader, 511u);
  EXPECT_TRUE(r.detail.consensus);
}

TEST(LeaderElection, SkipsCrashedNodes) {
  const auto r = drr_gossip_elect_leader(512, 12, sim::FaultModel{0.0, 0.3});
  ASSERT_LT(r.leader, 512u);
  EXPECT_TRUE(r.detail.participating[r.leader]);
  // No participating node has a higher id.
  for (NodeId v = r.leader + 1; v < 512; ++v) EXPECT_FALSE(r.detail.participating[v]);
}

TEST(LeaderElection, AllNodesLearnTheLeader) {
  const auto r = drr_gossip_elect_leader(256, 13);
  for (NodeId v = 0; v < 256; ++v) {
    if (r.detail.participating[v]) {
      ASSERT_DOUBLE_EQ(r.detail.per_node[v], static_cast<double>(r.leader));
    }
  }
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, MatchesDirectCounts) {
  const std::uint32_t n = 1024;
  Rng rng{17};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(0.0, 100.0);
  const std::vector<double> edges{0.0, 25.0, 50.0, 75.0, 100.0001};
  const auto h = drr_gossip_histogram(n, values, edges, 21);
  ASSERT_EQ(h.counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    double truth = 0;
    for (double v : values)
      if (v >= edges[b] && v < edges[b + 1]) ++truth;
    EXPECT_NEAR(h.counts[b], truth, 0.06 * n) << b;
  }
  EXPECT_EQ(h.pipeline_runs, 5u);
  double total = std::accumulate(h.counts.begin(), h.counts.end(), 0.0);
  EXPECT_NEAR(total, n, 0.1 * n);
}

TEST(Histogram, ThreadedQueriesAreBitIdentical) {
  // The per-edge rank queries fan onto the deterministic executor; any
  // thread count (0 = all cores) must reproduce the inline result.
  const std::uint32_t n = 256;
  Rng rng{29};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(0.0, 100.0);
  const std::vector<double> edges{0.0, 30.0, 60.0, 100.0001};
  const auto inline_run = drr_gossip_histogram(n, values, edges, 7, {}, {}, 1);
  for (const unsigned threads : {3u, 0u}) {
    const auto h = drr_gossip_histogram(n, values, edges, 7, {}, {}, threads);
    ASSERT_EQ(h.counts.size(), inline_run.counts.size());
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      EXPECT_EQ(h.counts[b], inline_run.counts[b]) << "threads " << threads;
    EXPECT_EQ(h.total.sent, inline_run.total.sent);
    EXPECT_EQ(h.total.bits, inline_run.total.bits);
  }
}

TEST(Histogram, RejectsBadEdges) {
  std::vector<double> values(16, 1.0);
  EXPECT_THROW((void)drr_gossip_histogram(16, values, std::vector<double>{1.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      (void)drr_gossip_histogram(16, values, std::vector<double>{2.0, 1.0}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      (void)drr_gossip_histogram(16, values, std::vector<double>{1.0, 1.0}, 1),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pairwise averaging (Boyd et al.)

TEST(PairwiseAveraging, ConvergesOnCompleteGraph) {
  const std::uint32_t n = 1024;
  Rng rng{23};
  std::vector<double> values(n);
  double sum = 0.0;
  for (auto& v : values) {
    v = rng.next_uniform(-10.0, 30.0);
    sum += v;
  }
  PairwiseConfig cfg;
  cfg.round_multiplier = 10.0;
  const auto r = pairwise_average(n, values, 24, {}, cfg);
  const double ave = sum / n;
  for (double v : r.value) ASSERT_NEAR(v, ave, 1e-3 * std::max(1.0, std::fabs(ave)));
  EXPECT_LT(r.max_relative_error, 1e-4);
}

TEST(PairwiseAveraging, SumInvariantExactAtZeroLoss) {
  const std::uint32_t n = 512;
  Rng rng{25};
  std::vector<double> values(n);
  double sum = 0.0;
  for (auto& v : values) {
    v = rng.next_uniform(0.0, 9.0);
    sum += v;
  }
  PairwiseConfig cfg;
  cfg.round_multiplier = 1.0;  // stop early: invariant must hold anyway
  const auto r = pairwise_average(n, values, 26, {}, cfg);
  const double after = std::accumulate(r.value.begin(), r.value.end(), 0.0);
  EXPECT_NEAR(after, sum, 1e-7 * std::fabs(sum));
}

TEST(PairwiseAveraging, SumInvariantSurvivesLoss) {
  // A lost offer averages nothing, so the global sum is still conserved.
  const std::uint32_t n = 512;
  std::vector<double> values(n, 0.0);
  values[0] = 512.0;  // all mass at one node
  PairwiseConfig cfg;
  cfg.round_multiplier = 4.0;
  const auto r = pairwise_average(n, values, 27, sim::FaultModel{0.25, 0.0}, cfg);
  EXPECT_NEAR(std::accumulate(r.value.begin(), r.value.end(), 0.0), 512.0, 1e-6);
}

TEST(PairwiseAveraging, ErrorDecaysGeometrically) {
  const std::uint32_t n = 2048;
  Rng rng{29};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(-5.0, 15.0);
  const auto r = pairwise_average(n, values, 30);
  ASSERT_GE(r.error_per_round.size(), 70u);
  // Matching pairs only ~1/4 of the nodes per round, so the contraction
  // per round is mild (~0.93) but relentlessly geometric.
  EXPECT_LT(r.error_per_round[69], r.error_per_round[1] / 30.0);
  EXPECT_LT(r.error_per_round.back(), r.error_per_round[1] / 30.0);
}

TEST(PairwiseAveraging, WorksOnSparseGraphs) {
  const Graph g = make_grid(24, 24, /*torus=*/true);
  std::vector<double> values(g.size());
  Rng rng{31};
  double sum = 0.0;
  for (auto& v : values) {
    v = rng.next_uniform(0.0, 10.0);
    sum += v;
  }
  PairwiseConfig cfg;
  cfg.round_multiplier = 40.0;  // grid mixing is slower (spectral gap)
  const auto r = pairwise_average_on_graph(g, values, 32, {}, cfg);
  // Sparse mixing is slow; just require substantial contraction.
  EXPECT_LT(r.max_relative_error, 0.05);
  EXPECT_NEAR(std::accumulate(r.value.begin(), r.value.end(), 0.0), sum, 1e-6 * sum);
}

// ---------------------------------------------------------------------------
// Push-pull max

TEST(PushPullMax, ConsensusFasterThanPushOnly) {
  const std::uint32_t n = 4096;
  Rng rng{33};
  std::vector<double> values(n);
  for (auto& v : values) v = rng.next_uniform(0.0, 50.0);
  const auto push = uniform_push_max(n, values, 34);
  const auto pp = uniform_push_pull_max(n, values, 34);
  ASSERT_TRUE(push.consensus);
  ASSERT_TRUE(pp.consensus);
  EXPECT_LE(pp.rounds_to_consensus, push.rounds_to_consensus);
}

TEST(PushPullMax, StillNLogNMessages) {
  const auto r1 = uniform_push_pull_max(512, std::vector<double>(512, 1.0), 35);
  const auto r2 = uniform_push_pull_max(8192, std::vector<double>(8192, 1.0), 35);
  const double k1 =
      static_cast<double>(r1.messages_to_consensus) / (512.0 * log2_clamped(512));
  const double k2 =
      static_cast<double>(r2.messages_to_consensus) / (8192.0 * log2_clamped(8192));
  EXPECT_LT(k2, 2.5 * k1);
  EXPECT_GT(k2, k1 / 2.5);
}

// ---------------------------------------------------------------------------
// New topology builders

TEST(SmallWorld, DegreesAndConnectivity) {
  const Graph g = make_small_world(1000, 3, 0.1, 7);
  EXPECT_TRUE(g.connected());
  // Rewiring conserves edges up to abandoned rewires.
  EXPECT_NEAR(static_cast<double>(g.edge_count()), 3000.0, 50.0);
  EXPECT_GE(g.min_degree(), 1u);
}

TEST(SmallWorld, BetaZeroIsLattice) {
  const Graph g = make_small_world(100, 2, 0.0, 1);
  EXPECT_EQ(g.edge_count(), 200u);
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(SmallWorld, Deterministic) {
  const Graph a = make_small_world(300, 3, 0.3, 9);
  const Graph b = make_small_world(300, 3, 0.3, 9);
  for (NodeId v = 0; v < 300; ++v) {
    auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
  }
}

TEST(PreferentialAttachment, HeavyTail) {
  const Graph g = make_preferential_attachment(2000, 3, 11);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.min_degree(), 1u);
  // The hub degree dwarfs the median degree.
  std::vector<std::uint32_t> degs(g.size());
  for (NodeId v = 0; v < g.size(); ++v) degs[v] = g.degree(v);
  std::sort(degs.begin(), degs.end());
  EXPECT_GT(degs.back(), 6 * degs[g.size() / 2]);
}

TEST(PreferentialAttachment, EdgeBudget) {
  const std::uint32_t n = 500, m = 2;
  const Graph g = make_preferential_attachment(n, m, 13);
  // Seed clique edges + ~m per subsequent node (duplicates skipped).
  EXPECT_LE(g.edge_count(), static_cast<std::uint64_t>(m + 1) * m / 2 + (n - m - 1) * m);
  EXPECT_GE(g.edge_count(), (n - m - 1) * m / 2);
}

TEST(NewBuilders, InvalidArguments) {
  EXPECT_THROW(make_small_world(10, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(make_preferential_attachment(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(make_preferential_attachment(10, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace drrg
