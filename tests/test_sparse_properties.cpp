// Theorem-backed property tests for the §4 sparse pipeline.
//
//   * Theorem 11: every tree Local-DRR produces has height O(log n) on
//     any graph -- pinned as max-over-seeds height <= 1.5 * log2 n on the
//     Chord overlay, the grid and a random-regular graph (the measured
//     maxima sit near 0.6 * log2 n, so the bound has real teeth: any
//     height linear in n, or even polylog with a larger exponent, trips
//     it at these sizes).
//   * Theorem 13: E[#trees] = sum_i 1/(d_i + 1).  A node roots exactly
//     when it is a local rank maximum, which happens with probability
//     1/(d_i + 1) for i.i.d. ranks; the sample mean over seeds must sit
//     inside a 4-sigma confidence interval of the exact sum (and within
//     2% of it, whichever is looser).
//   * Assumption 2: the SparseRouter's begin_random/next_hop expansion
//     must land (near-)uniformly -- every node's landing frequency within
//     a constant factor of 1/n -- and begin_directed must arrive at its
//     target on the keyed substrates.
//
// These allocate the largest graphs in the suite (n = 4096), which is
// exactly why CI runs them under ASan + UBSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "aggregate/routing.hpp"
#include "aggregate/sparse.hpp"
#include "drr/local_drr.hpp"
#include "sim/topology.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

constexpr int kSeeds = 24;

struct GraphCase {
  const char* name;
  Graph graph;
};

std::vector<GraphCase> theorem_graphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"chord-overlay-1k", overlay_graph(ChordOverlay{1024, 5})});
  cases.push_back({"chord-overlay-4k", overlay_graph(ChordOverlay{4096, 5})});
  cases.push_back(
      {"grid-1k", *sim::make_topology({sim::TopologyKind::kGrid2d}, 1024, 3).graph()});
  {
    sim::TopologySpec spec{sim::TopologyKind::kRandomRegular};
    spec.degree = 8;
    cases.push_back({"random-regular-4k", *sim::make_topology(spec, 4096, 3).graph()});
  }
  return cases;
}

TEST(Theorem11, LocalDrrTreeHeightIsLogarithmic) {
  for (const GraphCase& c : theorem_graphs()) {
    const double bound = 1.5 * log2_clamped(c.graph.size());
    std::uint32_t worst = 0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto r = run_local_drr(c.graph, RngFactory{1000 + static_cast<std::uint64_t>(s)});
      worst = std::max(worst, r.forest.max_tree_height());
    }
    EXPECT_LE(static_cast<double>(worst), bound) << c.name;
    EXPECT_GT(worst, 0u) << c.name;  // trees are real, not all singletons
  }
}

TEST(Theorem13, ExpectedTreeCountIsSumOfInverseDegreePlusOne) {
  for (const GraphCase& c : theorem_graphs()) {
    const std::uint32_t n = c.graph.size();
    double expect = 0.0;
    for (NodeId v = 0; v < n; ++v)
      expect += 1.0 / (static_cast<double>(c.graph.degree(v)) + 1.0);

    double sum = 0.0, sum_sq = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      const auto r = run_local_drr(c.graph, RngFactory{2000 + static_cast<std::uint64_t>(s)});
      const auto trees = static_cast<double>(r.forest.num_trees());
      sum += trees;
      sum_sq += trees * trees;
    }
    const double mean = sum / kSeeds;
    const double var = std::max(0.0, sum_sq / kSeeds - mean * mean);
    const double sem = std::sqrt(var / kSeeds);
    const double margin = std::max(4.0 * sem, 0.02 * expect);
    EXPECT_NEAR(mean, expect, margin)
        << c.name << ": mean " << mean << " vs sum 1/(d+1) = " << expect;
  }
}

// ---------------------------------------------------------------------------
// Assumption 2: the routed sampler's landing distribution.

/// Expands one begin_random route to its landing node (no engine: static
/// liveness, hop count returned via *hops).
NodeId land(const SparseRouter& router, NodeId src, Rng& rng, std::uint32_t* hops) {
  RouteState st = router.begin_random(src, rng);
  NodeId at = src;
  *hops = 0;
  while (st.mode != RouteState::Mode::kDone) {
    const NodeId next = router.next_hop(at, st, rng);
    if (next == at) break;
    at = next;
    ++*hops;
  }
  return at;
}

void expect_near_uniform_landings(const char* name, const SparseRouter& router,
                                  std::uint32_t n, double spread,
                                  std::uint32_t hop_bound) {
  Rng rng{77};
  std::vector<std::uint32_t> hits(n, 0);
  const std::uint32_t draws_per_node = 256;
  std::uint64_t total_hops = 0;
  for (NodeId src = 0; src < n; src += 7) {
    for (std::uint32_t d = 0; d < draws_per_node; ++d) {
      std::uint32_t hops = 0;
      hits[land(router, src, rng, &hops)] += 1;
      total_hops += hops;
      EXPECT_LE(hops, hop_bound) << name;
    }
  }
  const double draws = static_cast<double>(draws_per_node) * ((n + 6) / 7);
  const auto [lo, hi] = std::minmax_element(hits.begin(), hits.end());
  // Every node is reachable and no node is grossly over-selected.
  EXPECT_GT(*lo, 0u) << name;
  EXPECT_LT(static_cast<double>(*hi), spread * draws / n) << name;
  EXPECT_GT(total_hops, 0u) << name;
}

TEST(Assumption2, ChordRoutedSamplingIsNearUniform) {
  const std::uint32_t n = 1024;
  ChordOverlay chord{n, 11};
  const SparseRouter router = SparseRouter::on_chord(chord);
  expect_near_uniform_landings("chord", router, n, /*spread=*/3.0,
                               router.max_route_hops());
}

TEST(Assumption2, GridRoutedSamplingIsExactlyUniform) {
  const sim::Topology t = sim::make_topology({sim::TopologyKind::kGrid2d}, 1024, 3);
  const SparseRouter router = SparseRouter::on_substrate(t);
  expect_near_uniform_landings("grid", router, 1024, /*spread=*/2.0,
                               router.max_route_hops());
}

TEST(Assumption2, ExpanderWalkSamplingIsNearUniform) {
  sim::TopologySpec spec{sim::TopologyKind::kRandomRegular};
  spec.degree = 8;
  const sim::Topology t = sim::make_topology(spec, 1024, 9);
  const SparseRouter router = SparseRouter::on_substrate(t);
  expect_near_uniform_landings("random-regular", router, 1024, /*spread=*/2.0,
                               router.max_route_hops());
}

TEST(Assumption2, DirectedRoutesArriveOnKeyedSubstrates) {
  const std::uint32_t n = 512;
  ChordOverlay chord{n, 13};
  const SparseRouter chord_router = SparseRouter::on_chord(chord);
  const sim::Topology grid = sim::make_topology({sim::TopologyKind::kGrid2d}, n, 3);
  const SparseRouter grid_router = SparseRouter::on_substrate(grid);
  Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(n));
    const auto dst = static_cast<NodeId>(rng.next_below(n));
    for (const SparseRouter* router : {&chord_router, &grid_router}) {
      RouteState st = router->begin_directed(dst);
      NodeId at = src;
      std::uint32_t guard = 0;
      while (st.mode != RouteState::Mode::kDone && guard++ < router->max_route_hops()) {
        const NodeId next = router->next_hop(at, st, rng);
        if (next == at) break;
        at = next;
      }
      EXPECT_EQ(at, dst) << "src " << src;
    }
  }
}

TEST(Assumption2, ChordRoutingDetoursAroundCrashedNodes) {
  // Kill a band of nodes; every route between surviving nodes must still
  // arrive (the stabilized successor/finger repair of routing.hpp).  The
  // static router would funnel through dead predecessors and stall.
  const std::uint32_t n = 512;
  ChordOverlay chord{n, 17};
  const SparseRouter router = SparseRouter::on_chord(chord);
  std::vector<std::uint8_t> dead(n, 0);
  for (NodeId v = 0; v < n; v += 3) dead[v] = 1;  // a third of the overlay
  const LivenessView alive{&dead, [](const void* ctx, NodeId v) {
                             return (*static_cast<const std::vector<std::uint8_t>*>(
                                        ctx))[v] == 0;
                           }};
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    NodeId src = static_cast<NodeId>(rng.next_below(n));
    NodeId dst = static_cast<NodeId>(rng.next_below(n));
    if (dead[src]) src = (src + 1) % n;
    if (dead[src]) src = (src + 1) % n;
    while (dead[dst]) dst = (dst + 1) % n;
    RouteState st = router.begin_directed(dst);
    NodeId at = src;
    std::uint32_t guard = 0;
    while (st.mode != RouteState::Mode::kDone && guard++ < 4 * router.max_route_hops()) {
      const NodeId next = router.next_hop(at, st, rng, alive);
      if (next == at) break;
      EXPECT_FALSE(dead[next]) << "route stepped on a crashed node";
      at = next;
    }
    EXPECT_EQ(at, dst);
  }
}

}  // namespace
}  // namespace drrg
