// Tests of the scenario engine: pluggable topologies, fault schedules
// (mid-run churn) through the sim core, and the deterministic parallel
// trial executor.

#include <gtest/gtest.h>

#include <vector>

#include "api/registry.hpp"
#include "api/report_hash.hpp"
#include "api/scenario_text.hpp"
#include "sim/engine.hpp"
#include "sim/topology.hpp"

namespace drrg {
namespace {

// ---------------------------------------------------------------------------
// Topology builders: invariants per family.

TEST(Topology, CompleteSamplesAllOfV) {
  sim::Topology t = sim::Topology::complete();
  Rng rng{7};
  std::vector<bool> seen(16, false);
  for (int i = 0; i < 2000; ++i) seen[t.sample_peer(3, 16, rng)] = true;
  for (NodeId v = 0; v < 16; ++v) EXPECT_TRUE(seen[v]) << v;
}

TEST(Topology, ChordRingInvariants) {
  const auto t = sim::make_topology({sim::TopologyKind::kChordRing}, 256, 1);
  ASSERT_NE(t.graph(), nullptr);
  EXPECT_TRUE(t.graph()->connected());
  // Successor edges alone make a cycle: minimum degree >= 2.
  EXPECT_GE(t.graph()->min_degree(), 2u);
  // Finger edges keep the degree logarithmic, not linear.
  EXPECT_LE(t.graph()->max_degree(), 64u);
}

TEST(Topology, RandomRegularInvariants) {
  sim::TopologySpec spec{sim::TopologyKind::kRandomRegular};
  spec.degree = 8;
  const auto t = sim::make_topology(spec, 200, 3);
  ASSERT_NE(t.graph(), nullptr);
  EXPECT_TRUE(t.graph()->connected());
  for (NodeId v = 0; v < 200; ++v) EXPECT_EQ(t.graph()->degree(v), 8u) << v;
}

TEST(Topology, OddDegreeSumIsBumpedToEven) {
  sim::TopologySpec spec{sim::TopologyKind::kRandomRegular};
  spec.degree = 3;
  const auto t = sim::make_topology(spec, 99, 3);  // 99 * 3 odd -> d = 4
  ASSERT_NE(t.graph(), nullptr);
  for (NodeId v = 0; v < 99; ++v) EXPECT_EQ(t.graph()->degree(v), 4u) << v;
}

TEST(Topology, GridInvariants) {
  const auto t = sim::make_topology({sim::TopologyKind::kGrid2d}, 12 * 16, 0);
  ASSERT_NE(t.graph(), nullptr);
  EXPECT_TRUE(t.graph()->connected());
  EXPECT_GE(t.graph()->min_degree(), 2u);
  EXPECT_LE(t.graph()->max_degree(), 4u);
  sim::TopologySpec torus{sim::TopologyKind::kGrid2d};
  torus.torus = true;
  const auto t2 = sim::make_topology(torus, 12 * 16, 0);
  for (NodeId v = 0; v < 12 * 16; ++v) EXPECT_EQ(t2.graph()->degree(v), 4u) << v;
}

TEST(Topology, GraphSamplingStaysOnEdges) {
  sim::TopologySpec spec{sim::TopologyKind::kRandomRegular};
  spec.degree = 6;
  const auto t = sim::make_topology(spec, 64, 9);
  Rng rng{11};
  for (int i = 0; i < 500; ++i) {
    const NodeId caller = static_cast<NodeId>(i % 64);
    const NodeId peer = t.sample_peer(caller, 64, rng);
    EXPECT_TRUE(t.graph()->has_edge(caller, peer)) << caller << "->" << peer;
  }
}

TEST(Topology, NamesRoundTrip) {
  for (const char* name : {"complete", "chord-ring", "random-regular", "grid", "torus"}) {
    const auto spec = sim::topology_from_name(name);
    ASSERT_TRUE(spec.has_value()) << name;
  }
  EXPECT_FALSE(sim::topology_from_name("no-such-topology").has_value());
  EXPECT_EQ(sim::to_string(sim::TopologyKind::kChordRing), "chord-ring");
}

// ---------------------------------------------------------------------------
// Churn: scheduled mid-run crashes through the engine.

struct Ping {
  int tag = 0;
};

/// Every node calls its ring successor each round; deliveries are logged.
struct RingFlood {
  std::vector<std::vector<std::uint32_t>> delivered_at;  // node -> rounds
  std::vector<std::vector<std::uint32_t>> sent_at;       // node -> rounds
  explicit RingFlood(std::uint32_t n) : delivered_at(n), sent_at(n) {}

  void on_round(sim::Network<Ping>& net, sim::NodeId v) {
    sent_at[v].push_back(net.global_round());
    net.send(v, (v + 1) % net.size(), Ping{}, 4);
  }
  void on_message(sim::Network<Ping>& net, sim::NodeId, sim::NodeId dst, const Ping&) {
    delivered_at[dst].push_back(net.global_round());
  }
};

TEST(Churn, CrashedNodeStopsAppearingInDeliveries) {
  const std::uint32_t n = 64;
  RngFactory rngs{21};
  sim::FaultSchedule faults;
  faults.churn = {{5, 0.25}};
  sim::Network<Ping> net{n, rngs, faults};
  EXPECT_EQ(net.alive_nodes().size(), n);  // nobody dead before round 5

  RingFlood proto{n};
  net.run(proto, 12);

  const auto death = sim::fault_timeline(n, rngs, faults);
  std::uint32_t crashed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (death[v] == sim::kNeverCrashes) continue;
    ++crashed;
    EXPECT_EQ(death[v], 5u);
    EXPECT_FALSE(net.alive(v));
    // The victim neither received nor initiated anything from round 5 on.
    for (std::uint32_t r : proto.delivered_at[v]) EXPECT_LT(r, 5u) << v;
    for (std::uint32_t r : proto.sent_at[v]) EXPECT_LT(r, 5u) << v;
    // ... but it did take part before the event.
    EXPECT_FALSE(proto.sent_at[v].empty()) << v;
  }
  EXPECT_EQ(crashed, 16u);  // 25% of 64
  EXPECT_EQ(net.alive_nodes().size(), n - crashed);
}

TEST(Churn, StartRoundOffsetsTheSchedule) {
  // A network whose clock starts at round 10 must see a round-5 event as
  // already applied at construction.
  const std::uint32_t n = 32;
  RngFactory rngs{22};
  sim::FaultSchedule faults;
  faults.churn = {{5, 0.5}};
  sim::Scenario late{sim::Topology::complete(), faults};
  late.start_round = 10;
  sim::Network<Ping> net{n, rngs, late};
  const auto survivors = sim::survivor_mask(n, rngs, faults);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(net.alive(v), survivors[v]) << v;
}

TEST(Churn, TimelineIsPurposeIndependentAndMatchesCrashMask) {
  const std::uint32_t n = 100;
  RngFactory rngs{23};
  sim::FaultSchedule faults;
  faults.crash_fraction = 0.3;
  const auto death = sim::fault_timeline(n, rngs, faults);
  const auto mask = sim::crash_mask(n, rngs, faults.crash_fraction);
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(death[v] == 0, mask[v]) << v;
}

TEST(Churn, ParseAndFormat) {
  const auto churn = api::parse_churn("10:0.1,20:0.05");
  ASSERT_TRUE(churn.has_value());
  ASSERT_EQ(churn->size(), 2u);
  EXPECT_EQ((*churn)[0].round, 10u);
  EXPECT_DOUBLE_EQ((*churn)[0].fraction, 0.1);
  EXPECT_EQ(api::format_churn(*churn), "10:0.1,20:0.05");
  EXPECT_FALSE(api::parse_churn("10").has_value());
  EXPECT_FALSE(api::parse_churn("10:2.0").has_value());
  EXPECT_FALSE(api::parse_churn(":0.1").has_value());
  EXPECT_TRUE(api::parse_churn("").has_value());
}

// ---------------------------------------------------------------------------
// End-to-end: scenario runs through the api facade.

api::RunSpec scenario_spec(std::uint32_t n, api::Aggregate agg) {
  api::RunSpec spec;
  spec.n = n;
  spec.aggregate = agg;
  spec.seed = 77;
  return spec;
}

TEST(ScenarioRuns, TopologiesRunEndToEnd) {
  for (const sim::TopologyKind kind :
       {sim::TopologyKind::kChordRing, sim::TopologyKind::kRandomRegular,
        sim::TopologyKind::kGrid2d}) {
    api::RunSpec spec = scenario_spec(256, api::Aggregate::kAve);
    spec.topology.kind = kind;
    const api::RunReport r = api::run("drr", spec);
    ASSERT_TRUE(r.ok()) << sim::to_string(kind) << ": " << r.error;
    EXPECT_GT(r.cost.sent, 0u);
    // Determinism on every substrate.
    const api::RunReport r2 = api::run("drr", spec);
    EXPECT_EQ(r.value, r2.value);
    EXPECT_EQ(r.cost.sent, r2.cost.sent);
  }
}

TEST(ScenarioRuns, ChordFamiliesRejectTopologySpec) {
  api::RunSpec spec = scenario_spec(128, api::Aggregate::kMax);
  spec.topology.kind = sim::TopologyKind::kGrid2d;
  for (const char* algo : {"chord-drr", "chord-uniform"}) {
    const api::RunReport r = api::run(algo, spec);
    EXPECT_FALSE(r.ok()) << algo;
    EXPECT_NE(r.error.find("topology"), std::string::npos) << algo;
  }
}

// ---------------------------------------------------------------------------
// chord-drr on the shared engine: the full fault schedule applies (the old
// RoutedTransport replay map rejected churn outright), and the sparse
// pipeline opens explicit substrates through --pipeline sparse.

TEST(ScenarioRuns, ChordDrrRunsMidRunChurn) {
  // Mirrors the chord-uniform churn cases: the run must *succeed* (no
  // "no churn yet" error report), report only final survivors as
  // participating, and the surviving roots must agree.  Under churn the
  // agreed maximum may legitimately exceed the survivor truth (a value
  // that circulated before its holder crashed), so agreement -- not
  // equality -- is the max criterion; Ave is additionally pinned to the
  // survivor truth within a few percent.
  for (const api::Aggregate agg : {api::Aggregate::kMax, api::Aggregate::kAve}) {
    api::RunSpec spec = scenario_spec(1024, agg);
    spec.seed = 42;
    spec.faults.churn = {{30, 0.1}, {120, 0.1}};
    const api::RunReport r = api::run("chord-drr", spec);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.consensus) << api::to_string(agg);
    const auto survivors =
        sim::survivor_mask(spec.n, RngFactory{spec.seed}, spec.faults);
    ASSERT_EQ(r.participating.size(), survivors.size());
    std::uint32_t alive = 0;
    for (NodeId v = 0; v < spec.n; ++v) {
      EXPECT_LE(r.participating[v], survivors[v]) << v;  // no dead "participant"
      alive += r.participating[v] ? 1 : 0;
    }
    EXPECT_LT(alive, spec.n);  // the schedule really killed someone
    if (agg == api::Aggregate::kAve) {
      EXPECT_LT(r.rel_error(), 0.05);
    }
  }
}

TEST(ScenarioRuns, ChordDrrSurvivesTheFullCombinedSchedule) {
  api::RunSpec spec = scenario_spec(1024, api::Aggregate::kAve);
  spec.seed = 42;
  spec.faults = sim::FaultSchedule{0.02, 0.1, {{30, 0.1}, {120, 0.1}}};
  const api::RunReport r = api::run("chord-drr", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.consensus);
  EXPECT_LT(r.rel_error(), 0.05);
}

// Pins the engine port against the recorded RoutedTransport semantics.
// Before deletion the old path measured, at n = 512 seed 7 loss 0 (CLI
// --algo chord-drr): Max = truth exactly with consensus, and Ave within
// 3e-3 of truth -- the outcome contract the engine path must preserve.
// The two paths cannot be message-identical (the replay map drew loss
// coins per logical send, the engine draws per hop), so the outcome, not
// the traffic, is the pin.  The 1e-300-loss half forces the lossy engine
// code path (coins drawn, none fire) and must reproduce the loss-free
// run byte for byte, proving the loss machinery itself perturbs nothing.
TEST(ScenarioRuns, ChordDrrEnginePathKeepsRoutedTransportSemantics) {
  for (const api::Aggregate agg : {api::Aggregate::kMax, api::Aggregate::kAve}) {
    api::RunSpec spec = scenario_spec(512, agg);
    spec.seed = 7;
    const api::RunReport r = api::run("chord-drr", spec);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.consensus);
    if (agg == api::Aggregate::kMax) {
      EXPECT_DOUBLE_EQ(r.value, r.truth);
    } else {
      EXPECT_LT(r.rel_error(), 3e-3);
    }

    api::RunSpec lossy = spec;
    lossy.faults.loss_prob = 1e-300;  // engine loss path, zero effective loss
    EXPECT_EQ(api::report_checksum(api::run("chord-drr", lossy)),
              api::report_checksum(r))
        << api::to_string(agg);
  }
}

TEST(ScenarioRuns, SparsePipelineRequiresAnExplicitSubstrate) {
  api::RunSpec spec = scenario_spec(256, api::Aggregate::kAve);
  spec.pipeline = api::Pipeline::kSparse;
  const api::RunReport complete = api::run("drr", spec);
  EXPECT_FALSE(complete.ok());
  EXPECT_NE(complete.error.find("explicit substrate"), std::string::npos);

  spec.topology.kind = sim::TopologyKind::kGrid2d;
  spec.aggregate = api::Aggregate::kMedian;
  const api::RunReport median = api::run("drr", spec);
  EXPECT_FALSE(median.ok());
  EXPECT_NE(median.error.find("max and ave"), std::string::npos);
}

TEST(ScenarioRuns, SparsePipelineComputesExactMaxOnSubstrates) {
  for (const sim::TopologyKind kind :
       {sim::TopologyKind::kGrid2d, sim::TopologyKind::kRandomRegular,
        sim::TopologyKind::kChordRing}) {
    api::RunSpec spec = scenario_spec(512, api::Aggregate::kMax);
    spec.topology.kind = kind;
    spec.pipeline = api::Pipeline::kSparse;
    const api::RunReport r = api::run("drr", spec);
    ASSERT_TRUE(r.ok()) << sim::to_string(kind) << ": " << r.error;
    EXPECT_TRUE(r.consensus) << sim::to_string(kind);
    EXPECT_DOUBLE_EQ(r.value, r.truth) << sim::to_string(kind);
  }
}

// The Ave-accuracy win the port was for: tree aggregation + *routed*
// near-uniform push-sum mixes like the complete graph, where the dense
// pipeline's neighbor-constrained member relay only diffuses (mixing time
// Theta(diam^2) against an O(diam log n) budget -- the PR 4 residual).
// Sparse must beat dense on value error at no larger a round budget.
TEST(ScenarioRuns, SparseAveBeatsDiffusivePushSumOnLattices) {
  for (const bool torus : {false, true}) {
    api::RunSpec spec = scenario_spec(1024, api::Aggregate::kAve);
    spec.seed = 42;
    spec.topology.kind = sim::TopologyKind::kGrid2d;
    spec.topology.torus = torus;
    const api::RunReport dense = api::run("drr", spec);
    spec.pipeline = api::Pipeline::kSparse;
    const api::RunReport sparse = api::run("drr", spec);
    ASSERT_TRUE(dense.ok() && sparse.ok()) << dense.error << sparse.error;
    EXPECT_TRUE(sparse.consensus);
    EXPECT_LE(sparse.rounds, dense.rounds) << (torus ? "torus" : "grid");
    EXPECT_LT(sparse.rel_error(), dense.rel_error()) << (torus ? "torus" : "grid");
    EXPECT_LT(sparse.rel_error(), 0.02) << (torus ? "torus" : "grid");
  }
}

TEST(ScenarioRuns, ChurnReportsFinalSurvivors) {
  api::RunSpec spec = scenario_spec(512, api::Aggregate::kCount);
  spec.faults.churn = {{6, 0.1}, {14, 0.1}};
  const api::RunReport r = api::run("drr", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  const auto survivors = sim::survivor_mask(spec.n, RngFactory{spec.seed}, spec.faults);
  std::uint32_t expected = 0;
  for (bool s : survivors) expected += s ? 1 : 0;
  EXPECT_LT(expected, 512u);  // the schedule really killed someone
  ASSERT_EQ(r.participating.size(), survivors.size());
  for (NodeId v = 0; v < spec.n; ++v)
    EXPECT_LE(r.participating[v], survivors[v]) << v;  // no dead "participant"
  EXPECT_DOUBLE_EQ(r.truth, static_cast<double>(expected));
}

// ---------------------------------------------------------------------------
// Satellite regressions: push-sum mass conservation under crashes, and the
// quantile bisection sharing one crash set.

TEST(ScenarioRuns, CountIsAccurateUnderInitialCrashes) {
  // The historical drift (ROADMAP): n=1024 seed=42 crash 0.1 -> 1048.6 vs
  // 922 true.  With lost-mass recovery the estimate tracks the survivor
  // count tightly at delta = 0.
  for (const double crash : {0.1, 0.25, 0.3}) {
    api::RunSpec spec = scenario_spec(1024, api::Aggregate::kCount);
    spec.seed = 42;
    spec.faults.crash_fraction = crash;
    const api::RunReport r = api::run("drr", spec);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_LT(r.rel_error(), 0.02) << "crash " << crash << ": " << r.value
                                   << " vs " << r.truth;
  }
}

TEST(ScenarioRuns, MedianSharesOneCrashSetAcrossSubRuns) {
  api::RunSpec spec = scenario_spec(512, api::Aggregate::kMedian);
  spec.faults.crash_fraction = 0.3;
  const api::RunReport r = api::run("drr", spec);
  ASSERT_TRUE(r.ok()) << r.error;
  // The adapter reports the shared survivor population again...
  const auto survivors = sim::survivor_mask(spec.n, RngFactory{spec.seed}, spec.faults);
  ASSERT_EQ(r.participating.size(), survivors.size());
  EXPECT_EQ(r.participating, survivors);
  // ... and the estimate brackets the survivor median, not the all-nodes
  // one (truth is computed over survivors).
  EXPECT_LT(r.rel_error(), 0.05);
}

// ---------------------------------------------------------------------------
// Deterministic parallel executor.

void expect_identical(const std::vector<api::RunReport>& a,
                      const std::vector<api::RunReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
    EXPECT_EQ(a[i].value, b[i].value) << i;
    EXPECT_EQ(a[i].truth, b[i].truth) << i;
    EXPECT_EQ(a[i].consensus, b[i].consensus) << i;
    EXPECT_EQ(a[i].rounds, b[i].rounds) << i;
    EXPECT_EQ(a[i].cost.sent, b[i].cost.sent) << i;
    EXPECT_EQ(a[i].cost.bits, b[i].cost.bits) << i;
    EXPECT_EQ(a[i].participating, b[i].participating) << i;
  }
}

TEST(ParallelTrials, BitIdenticalAcrossThreadCounts) {
  api::RunSpec spec = scenario_spec(256, api::Aggregate::kAve);
  spec.faults = sim::FaultSchedule{0.05, 0.1};
  spec.faults.churn = {{8, 0.05}};
  const auto serial = api::run_trials("drr", spec, 9, 1);
  ASSERT_EQ(serial.size(), 9u);
  for (const unsigned threads : {4u, 8u, 0u}) {
    const auto parallel = api::run_trials("drr", spec, 9, threads);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelTrials, MatrixBitIdenticalAcrossThreadCounts) {
  api::RunSpec base = scenario_spec(128, api::Aggregate::kAve);
  const auto serial = api::run_matrix(base, 1);
  const auto parallel = api::run_matrix(base, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].algorithm, parallel[i].algorithm) << i;
    EXPECT_EQ(serial[i].aggregate, parallel[i].aggregate) << i;
    EXPECT_EQ(serial[i].value, parallel[i].value) << i;
    EXPECT_EQ(serial[i].cost.sent, parallel[i].cost.sent) << i;
    EXPECT_EQ(serial[i].error, parallel[i].error) << i;
  }
}

TEST(ParallelTrials, TrialSeedsAreDerivedNotConsecutive) {
  EXPECT_EQ(api::trial_seed(42, 0), 42u);
  EXPECT_NE(api::trial_seed(42, 1), 43u);
  EXPECT_NE(api::trial_seed(42, 1), api::trial_seed(42, 2));
  EXPECT_NE(api::trial_seed(42, 1), api::trial_seed(43, 1));
}

}  // namespace
}  // namespace drrg
