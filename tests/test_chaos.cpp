// The chaos harness: the text grammar, the pure decision engine (its
// determinism is what makes a chaos run reproducible from the root
// seed), the transport decorator's injection mechanics over real
// loopback sockets, the backoff schedule, and -- end to end -- a small
// forked cluster that stays exact under duplication and reordering.

#include <gtest/gtest.h>

#include <vector>

#include "api/scenario_text.hpp"
#include "net/backoff.hpp"
#include "net/chaos.hpp"
#include "net/multiproc.hpp"
#include "net/wire.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

// --- the text grammar -------------------------------------------------------

TEST(ChaosGrammar, EmptyAndNoneParseToThePassthroughSpec) {
  const auto empty = api::parse_chaos("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->zero());
  const auto none = api::parse_chaos("none");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->zero());
  EXPECT_EQ(api::format_chaos(*empty), "");
}

TEST(ChaosGrammar, ParsesEveryTokenAndRoundTripsThroughFormat) {
  const auto spec = api::parse_chaos(
      "drop:0.1,dup:0.05,corrupt:0.02,reorder:0.2/6,delay:tail:5-150:0.1,"
      "cut:24@500-4000,cut:8@1000");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->drop, 0.1);
  EXPECT_DOUBLE_EQ(spec->dup, 0.05);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.02);
  EXPECT_DOUBLE_EQ(spec->reorder, 0.2);
  EXPECT_EQ(spec->reorder_span, 6u);
  EXPECT_EQ(spec->delay.kind, sim::LatencyModel::Kind::kHeavyTail);
  EXPECT_EQ(spec->delay.min_delay, 5u);
  EXPECT_EQ(spec->delay.max_delay, 150u);
  ASSERT_EQ(spec->cuts.size(), 2u);
  EXPECT_EQ(spec->cuts[0].boundary, 24u);
  EXPECT_EQ(spec->cuts[0].start_ms, 500);
  EXPECT_EQ(spec->cuts[0].heal_ms, 4000);
  EXPECT_EQ(spec->cuts[1].boundary, 8u);
  EXPECT_EQ(spec->cuts[1].heal_ms, net::ChaosCut::kNoHeal);

  const auto reparsed = api::parse_chaos(api::format_chaos(*spec));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, *spec);
}

TEST(ChaosGrammar, RejectsMalformedSpecs) {
  EXPECT_FALSE(api::parse_chaos("drop").has_value());        // no value
  EXPECT_FALSE(api::parse_chaos("drop:0").has_value());      // prob not in (0,1]
  EXPECT_FALSE(api::parse_chaos("drop:1.5").has_value());
  EXPECT_FALSE(api::parse_chaos("reorder:0.2/0").has_value());  // zero span
  EXPECT_FALSE(api::parse_chaos("delay:zero").has_value());     // no-op delay
  EXPECT_FALSE(api::parse_chaos("cut:24").has_value());         // missing @mark
  EXPECT_FALSE(api::parse_chaos("cut:24@500-400").has_value()); // heal <= start
  EXPECT_FALSE(api::parse_chaos("frobnicate:1").has_value());   // unknown key
}

// --- chaos_with_faults ------------------------------------------------------

TEST(ChaosWithFaults, MapsPartitionsAndLatencyOntoTheWallClock) {
  sim::FaultSchedule faults;
  faults.partitions.push_back(sim::PartitionEvent{/*round=*/2, /*heal_round=*/12,
                                                  /*boundary=*/24});
  faults.latency = sim::LatencyModel{sim::LatencyModel::Kind::kUniform, 1, 4, 0.0};

  const net::ChaosSpec spec = net::chaos_with_faults({}, faults, /*round_ms=*/250);
  ASSERT_EQ(spec.cuts.size(), 1u);
  EXPECT_EQ(spec.cuts[0].start_ms, 500);
  EXPECT_EQ(spec.cuts[0].heal_ms, 3000);
  EXPECT_EQ(spec.cuts[0].boundary, 24u);
  EXPECT_EQ(spec.delay.kind, sim::LatencyModel::Kind::kUniform);
  EXPECT_EQ(spec.delay.min_delay, 250u);  // rounds -> milliseconds
  EXPECT_EQ(spec.delay.max_delay, 1000u);
}

TEST(ChaosWithFaults, ExplicitDelayWinsAndZeroRoundMsIsIdentity) {
  sim::FaultSchedule faults;
  faults.latency = sim::LatencyModel{sim::LatencyModel::Kind::kFixed, 3, 3, 0.0};

  net::ChaosSpec base;
  base.delay = sim::LatencyModel{sim::LatencyModel::Kind::kFixed, 7, 7, 0.0};
  const net::ChaosSpec kept = net::chaos_with_faults(base, faults, 250);
  EXPECT_EQ(kept.delay.min_delay, 7u);  // the explicit ms model is not overwritten

  const net::ChaosSpec untouched = net::chaos_with_faults(base, faults, 0);
  EXPECT_EQ(untouched, base);
}

// --- the decision engine ----------------------------------------------------

TEST(ChaosEngine, SameSeedSameDecisionStream) {
  net::ChaosSpec spec;
  spec.drop = 0.2;
  spec.dup = 0.1;
  spec.corrupt = 0.1;
  spec.reorder = 0.3;
  spec.reorder_span = 4;

  net::ChaosEngine a{spec, Rng{0xc4a05}};
  net::ChaosEngine b{spec, Rng{0xc4a05}};
  bool perturbed = false;
  for (int i = 0; i < 512; ++i) {
    const net::ChaosDecision da = a.next();
    ASSERT_EQ(da, b.next()) << "decision " << i << " diverged";
    perturbed |= da.drop || da.duplicate || da.corrupt || da.hold_sends > 0;
    if (da.hold_sends > 0) {
      EXPECT_LE(da.hold_sends, spec.reorder_span);
    }
    if (da.corrupt) {
      EXPECT_NE(da.corrupt_mask, 0);  // XOR with 0 would be a no-op
    }
  }
  EXPECT_TRUE(perturbed) << "512 draws at these rates must perturb something";
}

TEST(ChaosEngine, ZeroSpecNeverPerturbs) {
  net::ChaosEngine e{net::ChaosSpec{}, Rng{1}};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(e.next(), net::ChaosDecision{});
}

TEST(ChaosEngine, CutsRespectTheBoundaryAndTheClock) {
  net::ChaosSpec spec;
  spec.cuts.push_back(net::ChaosCut{/*start_ms=*/500, /*heal_ms=*/4000,
                                    /*boundary=*/24});
  const net::ChaosEngine e{spec, Rng{1}};
  EXPECT_FALSE(e.cut(3, 30, 499));   // before the cut
  EXPECT_TRUE(e.cut(3, 30, 500));    // straddles, active
  EXPECT_TRUE(e.cut(30, 3, 3999));   // both directions
  EXPECT_FALSE(e.cut(3, 4, 1000));   // same side
  EXPECT_FALSE(e.cut(30, 40, 1000));
  EXPECT_FALSE(e.cut(3, 30, 4000));  // healed
}

// --- the transport decorator ------------------------------------------------

net::Frame ping(std::uint32_t src, std::uint32_t dst, std::uint32_t seq) {
  net::Frame f;
  f.id = net::MsgId::kPing;
  f.src = src;
  f.dst = dst;
  f.seq = seq;
  f.nonce = 0x5eedull + seq;
  return f;
}

bool poll_one(net::ChaosTransport& t, net::Frame& out, int tries = 50) {
  for (int i = 0; i < tries; ++i)
    if (t.poll(out, 20)) return true;
  return false;
}

struct LoopbackPair {
  net::ChaosTransport a, b;

  bool up() {
    if (!a.bind(0) || !b.bind(0)) return false;
    const std::vector<net::PeerAddr> peers{{"127.0.0.1", a.port()},
                                           {"127.0.0.1", b.port()}};
    return a.set_peers(2, 0, peers) && b.set_peers(2, 0, peers);
  }
};

TEST(ChaosTransport, ZeroSpecIsAPassthrough) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  p.a.set_chaos(net::ChaosSpec{}, /*self=*/0, Rng{1});
  EXPECT_FALSE(p.a.chaotic());

  const net::Frame f = ping(0, 1, 7);
  ASSERT_TRUE(p.a.send(f));
  net::Frame got;
  ASSERT_TRUE(poll_one(p.b, got));
  EXPECT_EQ(got, f);
  EXPECT_EQ(p.a.chaos_stats().injected_drops, 0u);
}

TEST(ChaosTransport, CertainCorruptionIsAlwaysRejectedByTheChecksum) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  net::ChaosSpec spec;
  spec.corrupt = 1.0;
  p.a.set_chaos(spec, 0, Rng{9});
  ASSERT_TRUE(p.a.chaotic());

  constexpr std::uint64_t kSends = 32;
  for (std::uint32_t i = 0; i < kSends; ++i) ASSERT_TRUE(p.a.send(ping(0, 1, i)));
  // Drain everything on the wire: each poll consumes (and rejects) at
  // most one datagram, so give it more rounds than there are sends.
  net::Frame got;
  for (std::uint64_t i = 0; i < kSends + 8; ++i)
    EXPECT_FALSE(p.b.poll(got, 10)) << "a flipped byte must never decode";
  EXPECT_EQ(p.a.chaos_stats().corruptions, kSends);
  EXPECT_EQ(p.b.stats().rejected, kSends);
  EXPECT_EQ(p.b.stats().delivered, 0u);
}

TEST(ChaosTransport, CertainDuplicationDeliversEveryFrameTwice) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  net::ChaosSpec spec;
  spec.dup = 1.0;
  p.a.set_chaos(spec, 0, Rng{9});

  const net::Frame f = ping(0, 1, 3);
  ASSERT_TRUE(p.a.send(f));
  net::Frame first, second;
  ASSERT_TRUE(poll_one(p.b, first));
  ASSERT_TRUE(poll_one(p.b, second));
  EXPECT_EQ(first, f);
  EXPECT_EQ(second, f);
  EXPECT_EQ(p.a.chaos_stats().duplicates, 1u);
}

TEST(ChaosTransport, CertainDropDeliversNothingButCountsTheSend) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  net::ChaosSpec spec;
  spec.drop = 1.0;
  p.a.set_chaos(spec, 0, Rng{9});

  ASSERT_TRUE(p.a.send(ping(0, 1, 0)));
  net::Frame got;
  EXPECT_FALSE(poll_one(p.b, got, 5));
  EXPECT_EQ(p.a.chaos_stats().injected_drops, 1u);
  EXPECT_EQ(p.a.stats().sent, 1u) << "a chaos drop still counts as sent";
}

TEST(ChaosTransport, ReorderHoldsAFrameBackUntilALaterSend) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  net::ChaosSpec hold;
  hold.reorder = 1.0;
  hold.reorder_span = 1;  // hold exactly one later send
  p.a.set_chaos(hold, 0, Rng{9});

  ASSERT_TRUE(p.a.send(ping(0, 1, 0)));
  net::Frame got;
  EXPECT_FALSE(poll_one(p.b, got, 5)) << "the held frame must not be on the wire yet";
  EXPECT_EQ(p.a.chaos_stats().reorders, 1u);

  // Swap to an armed-but-inert spec (a cut at boundary 0 separates
  // nothing): the second send still walks the chaos path, so it both
  // advances the send index past the held frame's release mark and
  // goes out untouched itself.
  net::ChaosSpec inert;
  inert.cuts.push_back(net::ChaosCut{/*start_ms=*/0, /*heal_ms=*/1, /*boundary=*/0});
  p.a.set_chaos(inert, 0, Rng{9});
  ASSERT_TRUE(p.a.send(ping(0, 1, 1)));
  ASSERT_TRUE(poll_one(p.b, got));
  EXPECT_EQ(got.seq, 1u) << "the later send overtakes the held frame";
  net::Frame held;
  (void)p.a.poll(held, 1);  // pump: the release mark has now passed
  ASSERT_TRUE(poll_one(p.b, held));
  EXPECT_EQ(held.seq, 0u) << "the held frame is released after the later send";
}

TEST(ChaosTransport, ActiveCutEatsStraddlingFrames) {
  if (!net::udp_available()) GTEST_SKIP() << "no UDP on this platform";
  LoopbackPair p;
  ASSERT_TRUE(p.up());
  net::ChaosSpec spec;
  spec.cuts.push_back(net::ChaosCut{/*start_ms=*/0, net::ChaosCut::kNoHeal,
                                    /*boundary=*/1});
  p.a.set_chaos(spec, /*self=*/0, Rng{9});

  ASSERT_TRUE(p.a.send(ping(0, 1, 0)));  // 0 -> 1 straddles boundary 1
  net::Frame got;
  EXPECT_FALSE(poll_one(p.b, got, 5));
  EXPECT_EQ(p.a.chaos_stats().cut_drops, 1u);
}

// --- backoff ----------------------------------------------------------------

TEST(Backoff, DoublesToTheCapWithoutJitter) {
  net::BackoffPolicy policy{/*base_ms=*/100, /*cap_ms=*/1000, /*jitter=*/0.0};
  Rng rng{1};
  EXPECT_EQ(policy.delay(0, rng), 100);
  EXPECT_EQ(policy.delay(1, rng), 200);
  EXPECT_EQ(policy.delay(2, rng), 400);
  EXPECT_EQ(policy.delay(3, rng), 800);
  EXPECT_EQ(policy.delay(4, rng), 1000);
  EXPECT_EQ(policy.delay(9, rng), 1000) << "capped forever after";
}

TEST(Backoff, JitterStretchesWithinItsFractionAndIsSeedDeterministic) {
  const net::BackoffPolicy policy{/*base_ms=*/100, /*cap_ms=*/1000, /*jitter=*/0.25};
  Rng a{42}, b{42};
  for (std::uint32_t attempt = 0; attempt < 16; ++attempt) {
    const std::int64_t raw = std::min<std::int64_t>(100 << attempt, 1000);
    const std::int64_t da = policy.delay(attempt, a);
    EXPECT_GE(da, raw);
    EXPECT_LT(da, raw + raw / 4 + 1);
    EXPECT_EQ(da, policy.delay(attempt, b)) << "same seed, same schedule";
  }
}

// --- end to end: a forked cluster stays exact under chaos -------------------

TEST(ChaosCluster, DupReorderCorruptClusterComputesEveryAggregateExactly) {
  if (!net::multiproc_available()) GTEST_SKIP() << "no fork/UDP on this platform";
  constexpr std::uint32_t kN = 8;
  net::ClusterOptions opt;
  opt.n = kN;
  opt.seed = 3;
  opt.values = {5.0, 1.0, 9.0, 4.0, 8.0, 2.0, 7.0, 3.0};
  const auto spec = api::parse_chaos("dup:0.2,reorder:0.25/4,corrupt:0.05");
  ASSERT_TRUE(spec.has_value());
  opt.node_template.chaos = *spec;
  opt.node_template.bootstrap_min_ms = 150;
  opt.node_template.subtree_stable_ms = 250;
  opt.node_template.linger_ms = 500;
  opt.node_template.deadline_ms = 20000;
  const net::ClusterReport cluster = net::run_cluster(opt);
  ASSERT_TRUE(cluster.ok) << cluster.error;
  std::uint64_t dups = 0, rejects = 0;
  for (const net::NodeReport& r : cluster.nodes) {
    EXPECT_TRUE(r.ok) << "node " << r.node << ": " << r.error;
    EXPECT_EQ(r.max, 9.0) << "node " << r.node;
    EXPECT_EQ(r.min, 1.0) << "node " << r.node;
    EXPECT_EQ(r.sum, 39.0) << "node " << r.node;
    EXPECT_EQ(r.count, kN) << "node " << r.node;
    dups += r.duplicates_dropped;
    rejects += r.corrupt_rejected;
  }
  // At these rates the cluster cannot have run adversity-free: the
  // degradation counters prove the harness actually injected.
  EXPECT_GT(dups + rejects, 0u);
}

}  // namespace
}  // namespace drrg
