// Tests of the Chord overlay: identifiers, routing, and the near-uniform
// sampler that implements §4 Assumption (2).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "chord/chord.hpp"
#include "support/mathutil.hpp"
#include "support/stats.hpp"

namespace drrg {
namespace {

TEST(Chord, DistinctIdentifiers) {
  ChordOverlay c{256, 3};
  std::set<std::uint64_t> ids;
  for (NodeId v = 0; v < c.size(); ++v) ids.insert(c.id_of(v));
  EXPECT_EQ(ids.size(), 256u);
  for (NodeId v = 0; v < c.size(); ++v) EXPECT_LT(c.id_of(v), c.ring_size());
}

TEST(Chord, OwnerOfKeyIsClockwiseSuccessor) {
  ChordOverlay c{64, 4};
  for (NodeId v = 0; v < c.size(); ++v) {
    // The owner of a node's own id is the node itself.
    EXPECT_EQ(c.owner_of_key(c.id_of(v)), v);
    // One past its id belongs to its successor (ids are distinct).
    const std::uint64_t next = (c.id_of(v) + 1) & (c.ring_size() - 1);
    EXPECT_EQ(c.owner_of_key(next), c.successor(v));
  }
}

TEST(Chord, SuccessorCyclesThroughAllNodes) {
  ChordOverlay c{50, 5};
  NodeId v = 0;
  std::set<NodeId> seen;
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    seen.insert(v);
    v = c.successor(v);
  }
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(v, 0u);  // back to start after n steps
}

TEST(Chord, ArcLengthsSumToRing) {
  ChordOverlay c{128, 6};
  std::uint64_t total = 0;
  for (NodeId v = 0; v < c.size(); ++v) total += c.arc_length(v);
  EXPECT_EQ(total, c.ring_size());
}

TEST(Chord, FingerIsOwnerOfOffset) {
  ChordOverlay c{64, 7};
  for (NodeId v = 0; v < c.size(); v += 7) {
    for (std::uint32_t k = 0; k < c.ring_bits(); k += 3) {
      const std::uint64_t target = (c.id_of(v) + (std::uint64_t{1} << k)) & (c.ring_size() - 1);
      EXPECT_EQ(c.finger(v, k), c.owner_of_key(target));
    }
  }
}

TEST(Chord, RouteReachesOwner) {
  ChordOverlay c{512, 8};
  Rng rng{99};
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(c.size()));
    const std::uint64_t key = rng.next_below(c.ring_size());
    const auto path = c.route(src, key);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), c.owner_of_key(key));
  }
}

TEST(Chord, RouteHopsLogarithmic) {
  ChordOverlay c{1024, 9};
  Rng rng{7};
  std::uint32_t max_hops = 0;
  double total = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(c.size()));
    const std::uint64_t key = rng.next_below(c.ring_size());
    const std::uint32_t h = c.route_hops(src, key);
    max_hops = std::max(max_hops, h);
    total += h;
  }
  // Greedy Chord: ~ (1/2) log2 n average, <= ~2 log2 n whp.
  EXPECT_LE(total / trials, 1.2 * 10.0);
  EXPECT_LE(max_hops, 2 * 10 + 4);
}

TEST(Chord, RouteFromOwnerIsZeroHops) {
  ChordOverlay c{64, 10};
  const std::uint64_t key = c.id_of(5);
  EXPECT_EQ(c.route_hops(5, key), 0u);
}

TEST(Chord, SamplerCoversEveryNode) {
  ChordOverlay c{256, 11};
  Rng rng{13};
  std::vector<std::uint64_t> counts(c.size(), 0);
  for (int i = 0; i < 100000; ++i)
    ++counts[c.sample_near_uniform(static_cast<NodeId>(rng.next_below(c.size())), rng)];
  const double expected = 100000.0 / c.size();
  for (NodeId v = 0; v < c.size(); ++v) {
    EXPECT_GT(counts[v], 0u) << "node " << v << " never sampled";
    // Smearing over S arcs keeps every node within a constant factor.
    EXPECT_GT(static_cast<double>(counts[v]), expected / 8.0);
    EXPECT_LT(static_cast<double>(counts[v]), expected * 8.0);
  }
}

TEST(Chord, SamplerHopsLogarithmic) {
  ChordOverlay c{1024, 12};
  Rng rng{17};
  double total = 0.0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    std::uint32_t hops = 0;
    (void)c.sample_near_uniform(static_cast<NodeId>(rng.next_below(c.size())), rng, &hops);
    total += hops;
  }
  // Routing ~ (1/2) log n plus the successor walk ~ S/2.
  EXPECT_LE(total / trials, 3.0 * 10.0);
}

TEST(Chord, SmearWidthLogarithmic) {
  EXPECT_EQ(ChordOverlay(256, 1).smear_width(), 8u);
  EXPECT_EQ(ChordOverlay(1 << 12, 1).smear_width(), 12u);
}

TEST(Chord, DeterministicFromSeed) {
  ChordOverlay a{100, 42}, b{100, 42};
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(a.id_of(v), b.id_of(v));
}

TEST(Chord, RejectsTinyNetworks) {
  EXPECT_THROW(ChordOverlay(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace drrg
