// Tests of the sparse-network pipeline (§4 / Theorem 14): Local-DRR +
// routed root gossip on the Chord overlay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "aggregate/sparse.hpp"
#include "baselines/chord_uniform.hpp"
#include "support/mathutil.hpp"
#include "support/rng.hpp"

namespace drrg {
namespace {

std::vector<double> make_values(std::uint32_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_uniform(0.0, 100.0);
  return v;
}

TEST(OverlayGraph, ConnectedWithLogDegrees) {
  ChordOverlay chord{1024, 3};
  const Graph g = overlay_graph(chord);
  EXPECT_EQ(g.size(), 1024u);
  EXPECT_TRUE(g.connected());
  // Successor + distinct fingers (+ incoming): Theta(log n).
  EXPECT_GE(g.min_degree(), 2u);
  EXPECT_LE(g.max_degree(), 12 * ceil_log2(1024));
  // Every overlay link is present as an edge.
  for (NodeId v = 0; v < chord.size(); v += 37) {
    EXPECT_TRUE(g.has_edge(v, chord.successor(v)) || v == chord.successor(v));
    for (std::uint32_t k = 0; k < chord.ring_bits(); k += 5) {
      const NodeId f = chord.finger(v, k);
      if (f != v) {
        EXPECT_TRUE(g.has_edge(v, f));
      }
    }
  }
}

TEST(SparsePipeline, MaxExactAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::uint32_t n = 512;
    ChordOverlay chord{n, seed};
    const Graph links = overlay_graph(chord);
    const auto values = make_values(n, seed + 100);
    const auto r = sparse_drr_gossip_max(chord, links, values, seed);
    EXPECT_DOUBLE_EQ(r.value, *std::max_element(values.begin(), values.end()));
    EXPECT_TRUE(r.consensus) << seed;
  }
}

TEST(SparsePipeline, AveAccurate) {
  for (std::uint64_t seed : {4ull, 5ull}) {
    const std::uint32_t n = 512;
    ChordOverlay chord{n, seed};
    const Graph links = overlay_graph(chord);
    const auto values = make_values(n, seed + 200);
    SparseGossipConfig cfg;
    cfg.push_sum.rounds_multiplier = 8.0;
    const auto r = sparse_drr_gossip_ave(chord, links, values, seed, {}, cfg);
    const double ave = std::accumulate(values.begin(), values.end(), 0.0) / n;
    EXPECT_TRUE(r.consensus) << seed;
    EXPECT_NEAR(r.value, ave, 1e-2 * ave);
  }
}

TEST(SparsePipeline, PerNodeDissemination) {
  const std::uint32_t n = 256;
  ChordOverlay chord{n, 9};
  const Graph links = overlay_graph(chord);
  const auto values = make_values(n, 500);
  const auto r = sparse_drr_gossip_max(chord, links, values, 9);
  const double mx = *std::max_element(values.begin(), values.end());
  for (std::uint32_t v = 0; v < n; ++v) ASSERT_DOUBLE_EQ(r.per_node[v], mx);
}

TEST(SparsePipeline, SurvivesModelLoss) {
  const std::uint32_t n = 512;
  ChordOverlay chord{n, 11};
  const Graph links = overlay_graph(chord);
  const auto values = make_values(n, 600);
  SparseGossipConfig cfg;
  cfg.gossip_max.gossip_multiplier = 6.0;
  cfg.gossip_max.sampling_multiplier = 4.0;
  const auto r = sparse_drr_gossip_max(chord, links, values, 11,
                                       sim::FaultModel{0.125, 0.0}, cfg);
  EXPECT_DOUBLE_EQ(r.value, *std::max_element(values.begin(), values.end()));
  EXPECT_TRUE(r.consensus);
}

TEST(SparsePipeline, Theorem14TimePolylog) {
  // Time O(log^2 n): across a 16x growth in n, rounds grow by at most
  // ~(log ratio)^2, nowhere near linearly.
  const std::uint32_t n1 = 256, n2 = 4096;
  ChordOverlay c1{n1, 7}, c2{n2, 7};
  const Graph g1 = overlay_graph(c1), g2 = overlay_graph(c2);
  const auto r1 = sparse_drr_gossip_max(c1, g1, make_values(n1, 1), 7);
  const auto r2 = sparse_drr_gossip_max(c2, g2, make_values(n2, 1), 7);
  const double lr = log2_clamped(n2) / log2_clamped(n1);  // 1.5
  EXPECT_LT(static_cast<double>(r2.rounds_total),
            3.0 * lr * lr * static_cast<double>(r1.rounds_total));
}

TEST(SparsePipeline, Theorem14MessagesNLogN) {
  // Messages O(n log n): normalised constant bounded across 16x growth.
  const std::uint32_t n1 = 256, n2 = 4096;
  ChordOverlay c1{n1, 8}, c2{n2, 8};
  const Graph g1 = overlay_graph(c1), g2 = overlay_graph(c2);
  const auto r1 = sparse_drr_gossip_max(c1, g1, make_values(n1, 2), 8);
  const auto r2 = sparse_drr_gossip_max(c2, g2, make_values(n2, 2), 8);
  const double k1 = static_cast<double>(r1.metrics.total().sent) / (n1 * log2_clamped(n1));
  const double k2 = static_cast<double>(r2.metrics.total().sent) / (n2 * log2_clamped(n2));
  EXPECT_LT(k2, 2.5 * k1);
}

TEST(SparsePipeline, BeatsUniformGossipOnMessages) {
  // The §4 headline: DRR-gossip needs a log n factor fewer messages than
  // uniform gossip on the same overlay.
  const std::uint32_t n = 2048;
  ChordOverlay chord{n, 12};
  const Graph links = overlay_graph(chord);
  const auto values = make_values(n, 700);
  const auto drr = sparse_drr_gossip_max(chord, links, values, 12);
  const auto uni = chord_uniform_push_max(chord, values, 12);
  EXPECT_TRUE(drr.consensus);
  EXPECT_TRUE(uni.consensus);
  EXPECT_LT(static_cast<double>(drr.metrics.total().sent) * 2.0,
            static_cast<double>(uni.counters.sent));
}

TEST(SparsePipeline, Deterministic) {
  const std::uint32_t n = 256;
  ChordOverlay chord{n, 13};
  const Graph links = overlay_graph(chord);
  const auto values = make_values(n, 800);
  const auto a = sparse_drr_gossip_ave(chord, links, values, 13);
  const auto b = sparse_drr_gossip_ave(chord, links, values, 13);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.metrics.total().sent, b.metrics.total().sent);
}

TEST(SparsePipeline, RejectsMismatchedGraph) {
  ChordOverlay chord{64, 1};
  const Graph wrong = overlay_graph(ChordOverlay{128, 1});
  std::vector<double> values(128, 1.0);
  EXPECT_THROW((void)sparse_drr_gossip_max(chord, wrong, values, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The substrate entry points: Local-DRR on the scenario topology's CSR
// adjacency, Phase III routed on the substrate.

TEST(SparsePipeline, SubstrateEntryComputesOnGridAndRegular) {
  for (const sim::TopologyKind kind :
       {sim::TopologyKind::kGrid2d, sim::TopologyKind::kRandomRegular}) {
    sim::TopologySpec spec{kind};
    spec.degree = 8;
    const sim::Scenario scenario{sim::make_topology(spec, 512, 3), {}};
    const auto values = make_values(512, 900);
    const auto mx = sparse_drr_gossip_max(values, 21, scenario);
    EXPECT_DOUBLE_EQ(mx.value, *std::max_element(values.begin(), values.end()))
        << sim::to_string(kind);
    EXPECT_TRUE(mx.consensus) << sim::to_string(kind);
    const auto av = sparse_drr_gossip_ave(values, 21, scenario);
    const double ave = std::accumulate(values.begin(), values.end(), 0.0) / 512;
    EXPECT_TRUE(av.consensus) << sim::to_string(kind);
    EXPECT_NEAR(av.value, ave, 0.03 * ave) << sim::to_string(kind);
  }
}

TEST(SparsePipeline, SubstrateEntryRejectsCompleteTopology) {
  std::vector<double> values(64, 1.0);
  EXPECT_THROW((void)sparse_drr_gossip_max(values, 1, sim::Scenario{}),
               std::invalid_argument);
}

TEST(SparsePipeline, ChordEntryRejectsExplicitScenarioTopology) {
  ChordOverlay chord{64, 1};
  const Graph links = overlay_graph(chord);
  std::vector<double> values(64, 1.0);
  const sim::Scenario scenario{
      sim::make_topology({sim::TopologyKind::kGrid2d}, 64, 1), {}};
  EXPECT_THROW((void)sparse_drr_gossip_max(chord, links, values, 1, scenario),
               std::invalid_argument);
}

}  // namespace
}  // namespace drrg
