// Tests of Phase II: Convergecast (Algorithms 2/3) and tree broadcast.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "drr/drr.hpp"
#include "support/rng.hpp"
#include "trees/broadcast.hpp"
#include "trees/convergecast.hpp"

namespace drrg {
namespace {

/// Fixed forest:  4 <- {2 <- {0,1}, 3}   and   5 <- 6.
Forest sample_forest() {
  return Forest::from_parents({2, 2, 4, 4, kNoParent, kNoParent, 5});
}

std::vector<double> sample_values() { return {3.0, -1.0, 7.0, 2.0, 0.5, 10.0, 4.0}; }

TEST(Convergecast, MaxExact) {
  RngFactory rngs{1};
  const Forest f = sample_forest();
  const auto r = run_convergecast(f, sample_values(), ConvergecastOp::kMax, rngs);
  EXPECT_TRUE(r.complete);
  EXPECT_DOUBLE_EQ(r.aggregate[4], 7.0);   // max of {3,-1,7,2,0.5}
  EXPECT_DOUBLE_EQ(r.aggregate[5], 10.0);  // max of {10,4}
}

TEST(Convergecast, MinExact) {
  RngFactory rngs{2};
  const Forest f = sample_forest();
  const auto r = run_convergecast(f, sample_values(), ConvergecastOp::kMin, rngs);
  EXPECT_DOUBLE_EQ(r.aggregate[4], -1.0);
  EXPECT_DOUBLE_EQ(r.aggregate[5], 4.0);
}

TEST(Convergecast, SumCarriesValueAndCount) {
  RngFactory rngs{3};
  const Forest f = sample_forest();
  const auto r = run_convergecast(f, sample_values(), ConvergecastOp::kSum, rngs);
  EXPECT_DOUBLE_EQ(r.aggregate[4], 3.0 - 1.0 + 7.0 + 2.0 + 0.5);
  EXPECT_DOUBLE_EQ(r.weight[4], 5.0);  // covsum(z, 2) = tree size
  EXPECT_DOUBLE_EQ(r.aggregate[5], 14.0);
  EXPECT_DOUBLE_EQ(r.weight[5], 2.0);
}

TEST(Convergecast, OneMessagePerNonRootAtZeroLoss) {
  RngFactory rngs{4};
  const Forest f = sample_forest();
  const auto r = run_convergecast(f, sample_values(), ConvergecastOp::kSum, rngs);
  // 5 non-roots: one value + one ack each.
  EXPECT_EQ(r.counters.sent, 10u);
}

TEST(Convergecast, TimeIsHeightBoundAtZeroLoss) {
  RngFactory rngs{5};
  const Forest f = sample_forest();
  const auto r = run_convergecast(f, sample_values(), ConvergecastOp::kMax, rngs);
  EXPECT_LE(r.rounds, f.max_tree_height() + 1);
}

TEST(Convergecast, ExactOnDrrForests) {
  for (std::uint64_t seed : {10ull, 11ull, 12ull}) {
    RngFactory rngs{seed};
    const std::uint32_t n = 1024;
    const DrrResult drr = run_drr(n, rngs);
    Rng vr{seed * 7 + 1};
    std::vector<double> values(n);
    for (auto& v : values) v = vr.next_uniform(-100, 100);

    const auto mx = run_convergecast(drr.forest, values, ConvergecastOp::kMax, rngs);
    ASSERT_TRUE(mx.complete);
    const auto sm = run_convergecast(drr.forest, values, ConvergecastOp::kSum, rngs);
    ASSERT_TRUE(sm.complete);

    // Verify each root against a direct per-tree computation.
    for (NodeId root : drr.forest.roots()) {
      double true_max = -1e300, true_sum = 0.0;
      std::uint32_t count = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (drr.forest.root_of(v) == root) {
          true_max = std::max(true_max, values[v]);
          true_sum += values[v];
          ++count;
        }
      }
      EXPECT_DOUBLE_EQ(mx.aggregate[root], true_max);
      EXPECT_NEAR(sm.aggregate[root], true_sum, 1e-9);
      EXPECT_DOUBLE_EQ(sm.weight[root], static_cast<double>(count));
      EXPECT_EQ(count, drr.forest.tree_size(root));
    }
  }
}

TEST(Convergecast, CompletesUnderLoss) {
  RngFactory rngs{20};
  const DrrResult drr = run_drr(512, rngs);
  std::vector<double> values(512, 1.0);
  const auto r = run_convergecast(drr.forest, values, ConvergecastOp::kSum, rngs,
                                  sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(r.complete);
  // Weights still exact: acked retries guarantee exactly-once absorption.
  double total = 0.0;
  for (NodeId root : drr.forest.roots()) total += r.weight[root];
  EXPECT_DOUBLE_EQ(total, 512.0);
  // Retries cost extra messages.
  EXPECT_GT(r.counters.lost, 0u);
}

TEST(Convergecast, ThrowsOnShortInput) {
  RngFactory rngs{1};
  const Forest f = sample_forest();
  std::vector<double> tooshort(3, 0.0);
  EXPECT_THROW(run_convergecast(f, tooshort, ConvergecastOp::kMax, rngs),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Broadcast

TEST(Broadcast, DeliversRootPayloadToAllMembers) {
  RngFactory rngs{30};
  const Forest f = sample_forest();
  std::vector<double> payload(7, 0.0);
  payload[4] = 42.0;
  payload[5] = 9.0;
  const auto r = run_broadcast(f, payload, rngs);
  EXPECT_TRUE(r.complete);
  for (NodeId v : {0u, 1u, 2u, 3u}) EXPECT_DOUBLE_EQ(r.received[v], 42.0) << v;
  EXPECT_DOUBLE_EQ(r.received[6], 9.0);
  EXPECT_DOUBLE_EQ(r.received[4], 42.0);  // roots keep their own
}

TEST(Broadcast, OneValueMessagePerNonRootAtZeroLoss) {
  RngFactory rngs{31};
  const Forest f = sample_forest();
  std::vector<double> payload(7, 1.0);
  const auto r = run_broadcast(f, payload, rngs);
  EXPECT_EQ(r.counters.sent, 10u);  // 5 values + 5 acks
}

TEST(Broadcast, SequentialRespectsOneCallPerRound) {
  // A root with k children takes k rounds in sequential mode.
  const std::uint32_t k = 9;
  std::vector<NodeId> parent(k + 1, 0);
  parent[0] = kNoParent;
  const Forest f = Forest::from_parents(parent);
  RngFactory rngs{32};
  std::vector<double> payload(k + 1, 3.0);
  const auto r = run_broadcast(f, payload, rngs);
  EXPECT_TRUE(r.complete);
  EXPECT_GE(r.rounds, k);
}

TEST(Broadcast, SimultaneousModeIsHeightBound) {
  const std::uint32_t k = 9;
  std::vector<NodeId> parent(k + 1, 0);
  parent[0] = kNoParent;
  const Forest f = Forest::from_parents(parent);
  RngFactory rngs{33};
  std::vector<double> payload(k + 1, 3.0);
  BroadcastConfig cfg;
  cfg.simultaneous_children = true;
  const auto r = run_broadcast(f, payload, rngs, {}, cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_LE(r.rounds, 2u);
}

TEST(Broadcast, CompletesUnderLoss) {
  RngFactory rngs{34};
  const DrrResult drr = run_drr(1024, rngs);
  std::vector<double> payload(1024, 0.0);
  for (NodeId root : drr.forest.roots()) payload[root] = static_cast<double>(root);
  const auto r = run_broadcast(drr.forest, payload, rngs, sim::FaultModel{0.125, 0.0});
  EXPECT_TRUE(r.complete);
  for (NodeId v = 0; v < 1024; ++v)
    EXPECT_DOUBLE_EQ(r.received[v], static_cast<double>(drr.forest.root_of(v))) << v;
}

TEST(Broadcast, DeterministicFromSeed) {
  RngFactory rngs{35};
  const DrrResult drr = run_drr(256, rngs);
  std::vector<double> payload(256, 1.5);
  const auto a = run_broadcast(drr.forest, payload, rngs, sim::FaultModel{0.1, 0.0});
  const auto b = run_broadcast(drr.forest, payload, rngs, sim::FaultModel{0.1, 0.0});
  EXPECT_EQ(a.counters.sent, b.counters.sent);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Broadcast, SingletonForestNeedsNoMessages) {
  const Forest f = Forest::from_parents(std::vector<NodeId>(5, kNoParent));
  RngFactory rngs{36};
  std::vector<double> payload(5, 2.0);
  const auto r = run_broadcast(f, payload, rngs);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.counters.sent, 0u);
}

}  // namespace
}  // namespace drrg
