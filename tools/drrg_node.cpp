// drrg_node -- one protocol node as one OS process.
//
// Runs the full DRR-gossip pipeline (Phase I DRR forest construction,
// Phase II convergecast, Phase III root gossip) over real UDP sockets on
// localhost, against n - 1 sibling processes started the same way:
//
//   for v in $(seq 0 63); do
//     drrg_node --id $v --n 64 --seed 42 --crash 0.15 --port-base 29600 &
//   done; wait
//
// Every process derives the workload, its DRR rank stream and the fault
// schedule from (--seed, --n, fault flags) alone -- the same pure
// functions the simulator evaluates -- so the cluster needs no
// coordinator and its survivor consensus is comparable to a simulated
// run field by field (bit-exact on --agg max/min over the same fault
// schedule).
//
// The process prints one JSON report line to stdout and exits 0 when it
// produced a final value (or was crashed by the schedule -- that is the
// experiment working, not failing), 1 otherwise.  --deadline-ms bounds
// the whole run: a wedged cluster degrades into failed reports, never
// hung processes.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/scenario_text.hpp"
#include "net/node.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: drrg_node --id V --n N [--seed S] [--loss D] [--crash F]\n"
               "                 [--churn R:F[,R:F...]] [--join R:F[,...]]\n"
               "                 [--block-crash R:LO-HI[:S/W][,...]]\n"
               "                 [--partition R:B[:H][,...]] [--latency MODEL]\n"
               "                 [--chaos SPEC] [--round-ms MS] [--no-self-halt]\n"
               "                 [--agg max|min|ave|sum|count]\n"
               "                 [--port-base P] [--bind-port P] [--seed-list L]\n"
               "                 [--bootstrap-min-ms MS] [--linger-ms MS]\n"
               "                 [--deadline-ms MS] [--quiet]\n"
               "  --id          this process's node id in [0, n)\n"
               "  --port-base   node v listens on 127.0.0.1:(P + v) (default 29600)\n"
               "  --bind-port   explicit own port (overrides --port-base for this node)\n"
               "  --seed-list   host:port,host:port,... with position i = node i\n"
               "                (overrides --port-base for the whole address table)\n"
               "  --chaos       deterministic datagram adversity: comma-joined\n"
               "                drop:P dup:P corrupt:P reorder:P[/SPAN]\n"
               "                delay:<latency-ms> cut:B@S[-H] tokens\n"
               "  --round-ms    wall-clock ms per scheduled round: maps churn /\n"
               "                block-crash deaths, partition cuts, join births\n"
               "                and latency onto the real clock (0 = step count)\n"
               "  --no-self-halt  never exit at the scheduled death mark (an\n"
               "                outer driver delivers the real SIGKILL instead)\n"
               "  --agg         selects which aggregate the report's 'value' field\n"
               "                renders; the pipeline always computes all of them\n"
               "  --quiet       suppress the report line (exit status only)\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace drrg;
  net::NodeOptions opt;
  bool have_id = false;
  bool quiet = false;
  std::string agg = "max";
  double loss = 0.0;
  double crash = 0.0;
  std::vector<sim::CrashEvent> churn;
  std::vector<sim::JoinEvent> joins;
  std::vector<sim::BlockCrashEvent> blocks;
  std::vector<sim::PartitionEvent> partitions;
  sim::LatencyModel latency{};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--id") { opt.node = static_cast<std::uint32_t>(std::atoll(next("--id"))); have_id = true; }
    else if (arg == "--n") opt.n = static_cast<std::uint32_t>(std::atoll(next("--n")));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    else if (arg == "--loss") loss = std::atof(next("--loss"));
    else if (arg == "--crash") crash = std::atof(next("--crash"));
    else if (arg == "--churn") {
      const auto parsed = api::parse_churn(next("--churn"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed churn schedule (want R:F[,R:F...])\n");
        usage(2);
      }
      churn = *parsed;
    }
    else if (arg == "--join") {
      const auto parsed = api::parse_joins(next("--join"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed join schedule (want R:F[,R:F...])\n");
        usage(2);
      }
      joins = *parsed;
    }
    else if (arg == "--block-crash") {
      const auto parsed = api::parse_blocks(next("--block-crash"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed block-crash schedule (want R:LO-HI[:S/W][,...])\n");
        usage(2);
      }
      blocks = *parsed;
    }
    else if (arg == "--partition") {
      const auto parsed = api::parse_partitions(next("--partition"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed partition schedule (want R:B[:H][,...])\n");
        usage(2);
      }
      partitions = *parsed;
    }
    else if (arg == "--latency") {
      const auto parsed = api::parse_latency(next("--latency"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed latency model (want fixed:D | uniform:A-B | tail:A-B:P)\n");
        usage(2);
      }
      latency = *parsed;
    }
    else if (arg == "--chaos") {
      const auto parsed = api::parse_chaos(next("--chaos"));
      if (!parsed.has_value()) {
        std::fprintf(stderr, "malformed chaos spec (see --help for the grammar)\n");
        usage(2);
      }
      opt.chaos = *parsed;
    }
    else if (arg == "--round-ms") opt.round_ms = std::atoll(next("--round-ms"));
    else if (arg == "--no-self-halt") opt.self_halt = false;
    else if (arg == "--bootstrap-min-ms") opt.bootstrap_min_ms = std::atoll(next("--bootstrap-min-ms"));
    else if (arg == "--linger-ms") opt.linger_ms = std::atoll(next("--linger-ms"));
    else if (arg == "--agg") agg = next("--agg");
    else if (arg == "--port-base") opt.port_base = static_cast<std::uint16_t>(std::atoi(next("--port-base")));
    else if (arg == "--bind-port") opt.bind_port = static_cast<std::uint16_t>(std::atoi(next("--bind-port")));
    else if (arg == "--seed-list") {
      const auto seeds = net::parse_seed_list(next("--seed-list"));
      if (!seeds.has_value()) {
        std::fprintf(stderr, "malformed seed list (want host:port,host:port,...)\n");
        usage(2);
      }
      opt.seed_list = *seeds;
    }
    else if (arg == "--deadline-ms") opt.deadline_ms = std::atoll(next("--deadline-ms"));
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") usage(0);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(2);
    }
  }
  if (!have_id || opt.n < 2 || opt.node >= opt.n) {
    std::fprintf(stderr, "--id and --n are required, with id < n and n >= 2\n");
    usage(2);
  }
  if (agg != "max" && agg != "min" && agg != "ave" && agg != "sum" && agg != "count") {
    std::fprintf(stderr, "unknown aggregate: %s (want max|min|ave|sum|count)\n",
                 agg.c_str());
    usage(2);
  }
  opt.faults = sim::FaultSchedule{loss, crash, churn};
  opt.faults.blocks = std::move(blocks);
  opt.faults.partitions = std::move(partitions);
  opt.faults.joins = std::move(joins);
  opt.faults.latency = latency;
  if ((opt.faults.has_blocks() || opt.faults.has_partitions() ||
       opt.faults.has_joins() || !opt.faults.latency.zero()) &&
      opt.round_ms <= 0) {
    std::fprintf(stderr,
                 "--block-crash/--partition/--join/--latency need --round-ms > 0 "
                 "to place rounds on the wall clock\n");
    usage(2);
  }

  const net::NodeReport report = net::run_node(opt);
  if (!quiet) {
    double value = 0.0;
    if (agg == "max") value = report.max;
    else if (agg == "min") value = report.min;
    else if (agg == "sum") value = report.sum;
    else if (agg == "count") value = static_cast<double>(report.count);
    else if (report.count != 0) value = report.sum / static_cast<double>(report.count);
    // The full report, plus the selected aggregate rendered for shell
    // one-liners that only want one number.
    std::string json = net::report_json(report);
    char extra[64];
    std::snprintf(extra, sizeof(extra), ",\"agg\":\"%s\",\"value\":%.17g}", agg.c_str(),
                  value);
    json.replace(json.size() - 1, 1, extra);
    std::printf("%s\n", json.c_str());
  }
  return (report.ok || report.scheduled_crash) ? 0 : 1;
}
