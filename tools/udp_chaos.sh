#!/usr/bin/env bash
# Chaos matrix for the real UDP runtime: seven scenario families, each a
# full drrg_cli --transport udp cluster run (n forked drrg_node
# processes on localhost) that must end with every survivor's folded
# value bit-exactly equal to the simulator-derived truth:
#
#   clean            no adversity (also checked on the count aggregate:
#                    every one of the n founders must be folded exactly once)
#   loss+corrupt     Bernoulli datagram drops + single-byte corruption
#                    (the wire checksum must reject every corrupted frame)
#   dup+reorder      duplicated datagrams + bounded-span reordering
#                    (per-peer dedup + idempotent handlers)
#   delay            heavy-tailed per-datagram latency (backoff, not loss)
#   block-kill       a correlated rack outage delivered as real SIGKILLs
#                    by the cluster parent at the scheduled wall mark
#   partition-heal   an id-space cut that heals mid-run; survivors must
#                    re-converge across the healed boundary
#   join             mid-run arrivals: late-spawned processes bootstrap
#                    into a running cluster without polluting the fold
#
#   tools/udp_chaos.sh [build-dir]
#
# Knobs (env): N=48 SEED=42 HARD_S=180 (per-family hard timeout), OUT
# (artifact directory; default a temp dir, removed on success, kept --
# with per-node NodeReport JSON dumps -- on failure).  FAMILIES may name
# a subset ("clean join") for local iteration.
set -euo pipefail

BUILD="${1:-build}"
N="${N:-48}"
SEED="${SEED:-42}"
HARD_S="${HARD_S:-180}"

if [[ ! -x "$BUILD/drrg_cli" ]]; then
  echo "udp_chaos: $BUILD/drrg_cli not built" >&2
  exit 2
fi

keep_out=0
if [[ -n "${OUT:-}" ]]; then
  out="$OUT"
  keep_out=1
  mkdir -p "$out"
else
  out="$(mktemp -d)"
fi

# Reap stragglers on any exit: drrg_cli forks one process per node and
# reaps them itself, but an interrupted matrix must not leave a cluster
# (or its timeout wrapper) behind.
cleanup() {
  local live
  live="$(jobs -pr)"
  if [[ -n "$live" ]]; then
    # shellcheck disable=SC2086  # pid list is intentionally word-split
    kill $live 2>/dev/null || true
    wait 2>/dev/null || true
  fi
  if ((!keep_out)) && [[ "$fail" == 0 ]]; then rm -rf "$out"; fi
}
fail=0
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# run_family NAME AGG [cli-args...]: one cluster run, then the verdict.
# The cli's --json line already carries the comparison: `truth` is the
# exact aggregate over the simulator's survivor (or founder) mask for
# the same (seed, schedule), so value == truth IS the bit-exactness
# assertion, and `consensus` certifies every survivor reported the same
# fold.  Per-node NodeReport JSON lands in $out/NAME/ for post-mortems.
run_family() {
  local name="$1" agg="$2"
  shift 2
  local dir="$out/$name"
  mkdir -p "$dir"
  echo "udp_chaos: [$name] n=$N seed=$SEED agg=$agg $*"
  if ! DRRG_UDP_REPORT_DIR="$dir" timeout -k 10 "$HARD_S" \
      "$BUILD/drrg_cli" --algo drr --agg "$agg" --n "$N" --seed "$SEED" \
      --transport udp --json "$@" > "$dir/run.json" 2> "$dir/run.err"; then
    echo "udp_chaos: [$name] FAIL -- drrg_cli exited non-zero" >&2
    sed 's/^/udp_chaos:   /' "$dir/run.err" >&2 || true
    fail=1
    return 0
  fi
  if ! python3 - "$dir/run.json" "$name" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
name = sys.argv[2]
problems = []
if not rep.get("consensus"):
    problems.append("survivors did not reach consensus")
if rep["value"] != rep["truth"]:
    problems.append(f"value {rep['value']!r} != simulator truth {rep['truth']!r}")
if problems:
    for p in problems:
        print(f"udp_chaos: [{name}] FAIL -- {p}", file=sys.stderr)
    sys.exit(1)
print(f"udp_chaos: [{name}] PASS -- value == truth == {rep['value']!r} "
      f"({rep['messages']} msgs)")
EOF
  then
    fail=1
  fi
  return 0
}

want() {
  [[ -z "${FAMILIES:-}" ]] || [[ " $FAMILIES " == *" $1 "* ]]
}

want clean          && run_family clean          max
want clean          && run_family clean-count    count
want loss-corrupt   && run_family loss-corrupt   max --chaos drop:0.15,corrupt:0.05
want dup-reorder    && run_family dup-reorder    max --chaos dup:0.15,reorder:0.25/4
want delay          && run_family delay          max --chaos delay:tail:5-120:0.1
want block-kill     && run_family block-kill     max --block-crash 2:8-16 --round-ms 250
want partition-heal && run_family partition-heal max --partition 2:24:12 --round-ms 250
want join           && run_family join           max --join 3:0.1 --round-ms 250

if [[ "$fail" != 0 ]]; then
  echo "udp_chaos: FAIL -- per-node reports kept in $out" >&2
  keep_out=1
  exit 1
fi
echo "udp_chaos: PASS -- all families bit-exact against the simulator truth"
