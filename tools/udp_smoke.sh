#!/usr/bin/env bash
# Multi-process smoke: N drrg_node processes on localhost (real UDP
# sockets, one process per protocol node) must reach the same survivor
# consensus as the lockstep simulator on the same (seed, fault schedule)
# -- bit-exact on the max aggregate, which both worlds compute exactly.
#
#   tools/udp_smoke.sh [build-dir]
#
# Knobs (env): N=64 SEED=42 CRASH=0.15 LOSS=0 PORT (default: derived
# from the pid), DEADLINE_MS=30000.  Every node self-bounds at
# DEADLINE_MS and each process is additionally wrapped in `timeout`, so
# a wedged cluster fails the script instead of hanging CI.
set -euo pipefail

BUILD="${1:-build}"
N="${N:-64}"
SEED="${SEED:-42}"
CRASH="${CRASH:-0.15}"
LOSS="${LOSS:-0}"
PORT="${PORT:-$((21000 + ($$ % 2000) * 16 % 30000))}"
DEADLINE_MS="${DEADLINE_MS:-30000}"
HARD_S="$((DEADLINE_MS / 1000 + 30))"

for bin in drrg_node drrg_cli; do
  if [[ ! -x "$BUILD/$bin" ]]; then
    echo "udp_smoke: $BUILD/$bin not built" >&2
    exit 2
  fi
done

out="$(mktemp -d)"
# Reap the whole brood on any exit: an interrupted run must not leave N
# orphaned drrg_node processes spinning on their sockets until their
# deadline.  `jobs -pr` lists the still-running background pids; killing
# the `timeout` wrapper forwards TERM to its drrg_node child.
cleanup() {
  local live
  live="$(jobs -pr)"
  if [[ -n "$live" ]]; then
    # shellcheck disable=SC2086  # pid list is intentionally word-split
    kill $live 2>/dev/null || true
    wait 2>/dev/null || true
  fi
  rm -rf "$out"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

echo "udp_smoke: simulator reference (n=$N seed=$SEED crash=$CRASH loss=$LOSS)"
"$BUILD/drrg_cli" --algo drr --agg max --n "$N" --seed "$SEED" \
  --crash "$CRASH" --loss "$LOSS" --json > "$out/sim.json"

echo "udp_smoke: launching $N drrg_node processes on 127.0.0.1:$PORT+"
for ((v = 0; v < N; ++v)); do
  timeout -k 5 "$HARD_S" "$BUILD/drrg_node" \
    --id "$v" --n "$N" --seed "$SEED" --crash "$CRASH" --loss "$LOSS" \
    --agg max --port-base "$PORT" --deadline-ms "$DEADLINE_MS" \
    > "$out/node_$v.json" 2> "$out/node_$v.err" &
done
wait || true

python3 - "$out" "$N" <<'EOF'
import json, sys, glob, os

out, n = sys.argv[1], int(sys.argv[2])
sim = json.load(open(os.path.join(out, "sim.json")))
expected = sim["value"]
assert sim["consensus"], "simulator reference run did not reach consensus"

survivors, crashed, bad = 0, 0, []
for v in range(n):
    path = os.path.join(out, f"node_{v}.json")
    try:
        rep = json.loads(open(path).read().strip())
    except Exception as e:
        bad.append((v, f"unreadable report: {e}"))
        continue
    if rep.get("crashed"):
        crashed += 1
        continue
    survivors += 1
    if not rep.get("ok"):
        bad.append((v, f"not ok: {rep.get('error', '?')}"))
    elif rep["value"] != expected:
        bad.append((v, f"value {rep['value']!r} != simulator {expected!r}"))

print(f"udp_smoke: {survivors} survivors, {crashed} scheduled crashes")
if bad:
    for v, why in bad[:10]:
        print(f"udp_smoke: node {v}: {why}", file=sys.stderr)
    sys.exit(1)
assert survivors > 0, "no survivors reported"
print(f"udp_smoke: PASS -- all {survivors} survivors agree with the simulator "
      f"(max = {expected!r})")
EOF
